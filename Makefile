# Check tiers. `check` is the tier-1 gate every PR must keep green;
# `check-race` additionally vets and runs the suite under the race
# detector (the parallel EPPP engine is exercised with forced worker
# counts even on single-core hosts).

.PHONY: check check-race fmt-check pkgdoc-check docs-check server-smoke bench-eppp bench-cover bench bench-smoke fuzz-smoke

check: fmt-check pkgdoc-check docs-check
	go vet ./...
	go build ./...
	go test ./...

check-race:
	go vet ./...
	go test -race ./...

# gofmt gate: fails listing the offending files (gofmt -l exits 0 even
# when files need formatting, so the failure has to be scripted).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# godoc gate: every library package needs a canonical "// Package x"
# comment, every main package a doc comment on its package clause.
pkgdoc-check:
	sh scripts/pkgdoc_check.sh

# docs gate: relative markdown links must resolve.
docs-check:
	sh scripts/check_links.sh

# End-to-end smoke of the HTTP service: cold vs cached latency (>=10x),
# batching, /statsz counters, graceful SIGTERM drain + stats flush.
server-smoke:
	sh scripts/server_smoke.sh

# Parallel EPPP speedup curve; writes BENCH_eppp.json (ops/sec and
# speedup vs serial per worker count).
bench-eppp:
	go test -run '^$$' -bench BenchmarkParallelEPPP -benchtime 3x .

# Covering-phase comparison (seed map-and-rescan path vs the bitset
# engine); writes BENCH_cover.json and asserts identical literal counts.
bench-cover:
	go test -run '^$$' -bench '^BenchmarkCover$$' -benchtime 200x .

bench:
	go test -run '^$$' -bench . -benchmem .

# CI smoke tiers: every benchmark once (compile + one iteration catches
# bit-rot without benchmarking anything), and a short fuzz run of the
# exact-cover round-trip property.
bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x ./...

fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzExactRoundTrip$$' -fuzztime 20s ./internal/cover
