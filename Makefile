# Check tiers. `check` is the tier-1 gate every PR must keep green;
# `check-race` additionally vets and runs the suite under the race
# detector (the parallel EPPP engine is exercised with forced worker
# counts even on single-core hosts).

.PHONY: check check-race bench-eppp bench-cover bench

check:
	go vet ./...
	go build ./...
	go test ./...

check-race:
	go vet ./...
	go test -race ./...

# Parallel EPPP speedup curve; writes BENCH_eppp.json (ops/sec and
# speedup vs serial per worker count).
bench-eppp:
	go test -run '^$$' -bench BenchmarkParallelEPPP -benchtime 3x .

# Covering-phase comparison (seed map-and-rescan path vs the bitset
# engine); writes BENCH_cover.json and asserts identical literal counts.
bench-cover:
	go test -run '^$$' -bench '^BenchmarkCover$$' -benchtime 200x .

bench:
	go test -run '^$$' -bench . -benchmem .
