# Check tiers. `check` is the tier-1 gate every PR must keep green;
# `check-race` additionally vets and runs the suite under the race
# detector (the parallel EPPP engine is exercised with forced worker
# counts even on single-core hosts).

.PHONY: check check-race lint artifact-check fmt-check pkgdoc-check docs-check server-smoke jobs-crash-smoke bench-eppp bench-cover bench bench-serve bench-serve-smoke bench-delta bench-delta-smoke bench-jobs bench-jobs-smoke bench-forms bench-forms-smoke bench-overload bench-overload-smoke bench-smoke fuzz-smoke fuzz-delta-smoke

# Pinned linter versions, fetched on demand by `go run` (network
# required; CI runs these in the `lint` job, they are not part of the
# offline tier-1 `check`).
STATICCHECK_VERSION := 2025.1.1
GOVULNCHECK_VERSION := v1.1.4

check: fmt-check pkgdoc-check docs-check artifact-check
	go vet ./...
	go build ./...
	go test ./...

# Static analysis beyond vet, plus the known-vulnerability scan. Both
# versions are pinned so CI cannot drift under a release.
lint:
	go run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	go run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# The serving hot path (coalescing group, sharded cache, concurrent
# batch pool) is correctness-critical under concurrency: run its
# packages under -race explicitly even if the full-suite invocation
# ever gets narrowed.
check-race:
	go vet ./...
	go test -race ./internal/fcache ./internal/service
	go test -race ./...

# Per-PR working artifacts (REVIEW.md, and ISSUE.md outside a PR
# branch) must not ship: REVIEW.md is review scratch space and is
# deleted before merge. See CONTRIBUTING.md.
artifact-check:
	@if [ -f REVIEW.md ]; then \
		echo "REVIEW.md is per-PR scratch and must be deleted before merge"; exit 1; fi

# gofmt gate: fails listing the offending files (gofmt -l exits 0 even
# when files need formatting, so the failure has to be scripted).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# godoc gate: every library package needs a canonical "// Package x"
# comment, every main package a doc comment on its package clause.
pkgdoc-check:
	sh scripts/pkgdoc_check.sh

# docs gate: relative markdown links must resolve.
docs-check:
	sh scripts/check_links.sh

# End-to-end smoke of the HTTP service: cold vs cached latency (>=10x),
# batching, /statsz counters, graceful SIGTERM drain + stats flush.
server-smoke:
	sh scripts/server_smoke.sh

# Kill-and-replay gate for the async job tier: submit jobs, SIGKILL the
# server mid-drain, restart on the same journal, and assert every
# accepted job reaches a terminal state exactly once with the replay
# warming the result cache (statsz jobs_replayed > 0).
jobs-crash-smoke:
	sh scripts/jobs_crash_smoke.sh

# Parallel EPPP speedup curve; writes BENCH_eppp.json (ops/sec and
# speedup vs serial per worker count).
bench-eppp:
	go test -run '^$$' -bench BenchmarkParallelEPPP -benchtime 3x .

# Covering-phase comparison (seed map-and-rescan path vs the bitset
# engine); writes BENCH_cover.json and asserts identical literal counts.
bench-cover:
	go test -run '^$$' -bench '^BenchmarkCover$$' -benchtime 200x .

bench:
	go test -run '^$$' -bench . -benchmem .

# Closed-loop serving benchmark: current hot path (coalescing, sharded
# cache, slot-free hits) vs the LegacySerial baseline under stampede
# and drifting-zipf mixes; writes BENCH_serve.json.
bench-serve:
	go run ./cmd/sppload -out BENCH_serve.json

# Small fast sppload run for CI: exercises both modes end to end.
# Throughput ratios are not asserted (shared runners are too noisy),
# but duplicate computes are load-independent: the run is gated against
# the checked-in baseline, failing if the coalescing path regresses.
bench-serve-smoke:
	go run ./cmd/sppload -quick -out /tmp/bench_serve_smoke.json \
		-baseline BENCH_serve.json -assert-dup-computes

# Incremental re-minimization benchmark: a 100-edit random walk per
# run, warm delta chaining vs full cold re-submissions on identical
# edit scripts; writes BENCH_delta.json with the edit_loop_speedup
# summary.
bench-delta:
	go run ./cmd/sppload -scenario edit-loop -out BENCH_delta.json

# The quick edit-loop run asserts the warm/cold covering split and,
# against the checked-in baseline, that the covering speedup keeps at
# least a third of the recorded ratio.
bench-delta-smoke:
	go run ./cmd/sppload -scenario edit-loop -quick -assert-cover-split \
		-baseline BENCH_delta.json -out /tmp/bench_delta_smoke.json

# Async job tier closed-loop benchmark: submit-to-done latency per
# priority class; merges a "jobs" section into BENCH_serve.json.
bench-jobs:
	go run ./cmd/sppload -scenario jobs -out BENCH_serve.json

bench-jobs-smoke:
	go run ./cmd/sppload -scenario jobs -quick -out /tmp/bench_jobs_smoke.json

# Portfolio engine benchmark (docs/forms.md): per-form cold latency and
# cost, form=auto win rates and race overhead; merges a "form_mix"
# section into BENCH_serve.json and fails if any auto race misses the
# best explicit cost (the determinism contract).
bench-forms:
	go run ./cmd/sppload -scenario form-mix -out BENCH_serve.json

bench-forms-smoke:
	go run ./cmd/sppload -scenario form-mix -quick -out /tmp/bench_forms_smoke.json

# Adaptive-admission benchmark: paired at-capacity vs 4x-overload
# rounds on a one-slot server; merges an "overload" section into
# BENCH_serve.json. -assert-goodput-flat is the QoS contract: goodput
# under overload within 10% of the at-capacity baseline (trimmed
# paired-round ratio), every 429 carrying Retry-After, sheds decided
# in under 10ms.
bench-overload:
	go run ./cmd/sppload -scenario overload -assert-goodput-flat -out BENCH_serve.json

bench-overload-smoke:
	go run ./cmd/sppload -scenario overload -quick -assert-goodput-flat \
		-out /tmp/bench_overload_smoke.json

# CI smoke tiers: every benchmark once (compile + one iteration catches
# bit-rot without benchmarking anything), and a short fuzz run of the
# exact-cover round-trip property.
bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x ./...

fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzExactRoundTrip$$' -fuzztime 20s ./internal/cover

# Short fuzz of delta-vs-cold byte identity: random function + edit
# script, resumed result must match a cold warm-engine run exactly.
fuzz-delta-smoke:
	go test -run '^$$' -fuzz '^FuzzDeltaEquivalence$$' -fuzztime 20s ./internal/core
