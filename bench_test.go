// Benchmark harness: one benchmark per table and figure of the paper
// (see DESIGN.md's experiment index), plus the ablation benches for the
// design choices called out there. Run with
//
//	go test -bench=. -benchmem
//
// Table/figure rows that need minutes of wall clock use the medium-size
// instances; cmd/spptables regenerates the complete tables.
package spp_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/bfunc"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/fprm"
	"repro/internal/harness"
	"repro/internal/pcube"
	"repro/internal/ptrie"
	"repro/internal/sp"
	"repro/internal/stats"
)

func cfg() harness.Config {
	c := harness.DefaultConfig()
	c.PerOutput = 30 * time.Second
	c.NaiveBudget = 30 * time.Second
	return c
}

// BenchmarkTable1 regenerates Table 1 rows (SP vs SPP minimization, all
// outputs summed). One sub-benchmark per representative function; the
// first iteration reports the row via b.Log.
func BenchmarkTable1(b *testing.B) {
	for _, name := range []string{"adr4", "life", "dist", "mlp4", "m3", "newtpla2"} {
		b.Run(name, func(b *testing.B) {
			m := bench.MustLoad(name)
			var r harness.FuncResult
			for i := 0; i < b.N; i++ {
				r = harness.MinimizeFunc(m, cfg())
			}
			b.ReportMetric(float64(r.SPLiterals), "SP-literals")
			b.ReportMetric(float64(r.SPPLiterals), "SPP-literals")
			b.ReportMetric(float64(r.EPPP), "EPPPs")
		})
	}
}

// BenchmarkTable2 regenerates Table 2 rows: EPPP construction with the
// naive [5] baseline vs partition-trie Algorithm 2.
func BenchmarkTable2(b *testing.B) {
	cases := []harness.OutputCase{
		{Func: "max128", Output: 20}, {Func: "m3", Output: 3},
		{Func: "m4", Output: 0}, {Func: "risc", Output: 2},
		{Func: "max512", Output: 5}, {Func: "ex5", Output: 50},
	}
	for _, c := range cases {
		f := bench.MustLoad(c.Func).Output(c.Output)
		b.Run(c.String()+"/naive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildEPPPNaive(f, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.String()+"/alg2", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildEPPP(f, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3 regenerates Table 3 rows: the SPP_0 heuristic vs the
// exact algorithm, per output summed.
func BenchmarkTable3(b *testing.B) {
	for _, name := range []string{"dist", "mlp4", "m4", "f51m"} {
		m := bench.MustLoad(name)
		b.Run(name+"/SPP0", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for o := 0; o < m.NOutputs(); o++ {
					if _, err := core.Heuristic(m.Output(o), 0, core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(name+"/exact", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for o := 0; o < m.NOutputs(); o++ {
					if _, err := core.MinimizeExact(m.Output(o), core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkFig3 and BenchmarkFig4 sample the SPP_k sweep of the paper's
// figures: literal counts (fig 3) come out as reported metrics, CPU time
// (fig 4) as the benchmark time itself, one sub-benchmark per k.
func BenchmarkFig3Fig4(b *testing.B) {
	for _, name := range []string{"dist", "f51m"} {
		m := bench.MustLoad(name)
		for k := 0; k <= 4; k++ {
			b.Run(fmt.Sprintf("%s/k=%d", name, k), func(b *testing.B) {
				lits := 0
				for i := 0; i < b.N; i++ {
					lits = 0
					for o := 0; o < m.NOutputs(); o++ {
						res, err := core.Heuristic(m.Output(o), k, core.Options{})
						if err != nil {
							b.Fatal(err)
						}
						lits += res.Form.Literals()
					}
				}
				b.ReportMetric(float64(lits), "SPP_k-literals")
			})
		}
	}
}

// BenchmarkAblationGrouping compares the paper's partition trie with a
// flat hash map as the structure-grouping data structure (DESIGN.md
// ablation 1): same algorithm, same outputs, different index.
func BenchmarkAblationGrouping(b *testing.B) {
	for _, c := range []harness.OutputCase{
		{Func: "m3", Output: 3}, {Func: "adr4", Output: 0}, {Func: "max512", Output: 5},
	} {
		f := bench.MustLoad(c.Func).Output(c.Output)
		b.Run(c.String()+"/trie", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildEPPP(f, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.String()+"/hashmap", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildEPPPHashGrouped(f, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationUnion compares Algorithm 1's symbolic union against
// recomputing the CEX from the merged point sets (DESIGN.md ablation 2).
func BenchmarkAblationUnion(b *testing.B) {
	// A same-structure pair of degree-4 pseudocubes in B^12.
	n := 12
	a := pcube.FromPoint(n, 0x5A5)
	for _, alpha := range []uint64{0x003, 0x00C, 0x030, 0x0C0} {
		a = pcube.Union(a, a.Transform(alpha))
	}
	d := a.Transform(0x700)
	b.Run("algorithm1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if pcube.Union(a, d) == nil {
				b.Fatal("union failed")
			}
		}
	})
	b.Run("from-points", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pts := append(a.Points(), d.Points()...)
			if _, ok := pcube.FromPoints(n, pts); !ok {
				b.Fatal("not a pseudocube")
			}
		}
	})
}

// BenchmarkPartitionTrieInsert measures raw trie insertion throughput.
func BenchmarkPartitionTrieInsert(b *testing.B) {
	f := bench.MustLoad("m4").Output(0)
	set, err := core.BuildEPPP(f, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := ptrie.New(f.N())
		for _, c := range set.Candidates {
			tr.Insert(c)
		}
	}
	b.ReportMetric(float64(len(set.Candidates)), "CEXs")
}

// BenchmarkSPBaseline measures the two-level pipeline on its own.
func BenchmarkSPBaseline(b *testing.B) {
	for _, name := range []string{"adr4", "life", "dist"} {
		m := bench.MustLoad(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for o := 0; o < m.NOutputs(); o++ {
					sp.Minimize(m.Output(o), sp.Options{})
				}
			}
		})
	}
}

// BenchmarkHarnessTable2Report exercises the full Table 2 harness path
// (including formatting) on the two fastest rows; it keeps the
// cmd/spptables plumbing itself under benchmark coverage.
func BenchmarkHarnessTable2Report(b *testing.B) {
	cases := []harness.OutputCase{{Func: "max128", Output: 20}, {Func: "risc", Output: 2}}
	for i := 0; i < b.N; i++ {
		harness.Table2(io.Discard, cases, cfg())
	}
}

// BenchmarkExtensionFPRM runs the §5 extension comparison: best
// fixed-polarity Reed-Muller forms next to SP and SPP (see
// harness.CompareForms for the reported literal counts).
func BenchmarkExtensionFPRM(b *testing.B) {
	for _, name := range []string{"adr4", "life", "mlp4"} {
		m := bench.MustLoad(name)
		b.Run(name, func(b *testing.B) {
			lits := 0
			for i := 0; i < b.N; i++ {
				lits = 0
				for o := 0; o < m.NOutputs(); o++ {
					lits += fprm.Minimize(m.Output(o)).Literals
				}
			}
			b.ReportMetric(float64(lits), "FPRM-literals")
		})
	}
}

// BenchmarkAblationSPEngine compares the two SP engines: exact
// Quine-McCluskey+cover vs the ESPRESSO-style heuristic loop.
func BenchmarkAblationSPEngine(b *testing.B) {
	for _, name := range []string{"adr4", "dist"} {
		m := bench.MustLoad(name)
		for _, eng := range []struct {
			label  string
			method sp.Method
		}{{"qm", sp.MethodQM}, {"espresso", sp.MethodEspresso}} {
			b.Run(name+"/"+eng.label, func(b *testing.B) {
				lits := 0
				for i := 0; i < b.N; i++ {
					lits = 0
					for o := 0; o < m.NOutputs(); o++ {
						lits += sp.Minimize(m.Output(o), sp.Options{Method: eng.method}).Form.Literals()
					}
				}
				b.ReportMetric(float64(lits), "SP-literals")
			})
		}
	}
}

// parallelBenchNsOp collects the per-worker-count timing of
// BenchmarkParallelEPPP's sub-benchmarks (which run in declaration
// order) so the trailing "report" step can emit BENCH_eppp.json.
var parallelBenchNsOp = map[int]float64{}

// BenchmarkParallelEPPP measures the worker-pool EPPP engine against
// the serial one on a mid-size Table 2 instance and writes the curve to
// BENCH_eppp.json (ops/sec per worker count, speedup vs serial). On a
// single-core host the parallel engine pays only its sharding overhead;
// the speedup column shows ~1.0 there and climbs with the core count.
func BenchmarkParallelEPPP(b *testing.B) {
	f := bench.MustLoad("max512").Output(5)
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildEPPP(f, core.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
			parallelBenchNsOp[w] = float64(time.Since(start).Nanoseconds()) / float64(b.N)
		})
	}
	b.Run("report", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Nothing to measure; this sub-benchmark exists to run after
			// the timed ones and persist their results.
		}
		type row struct {
			Workers int     `json:"workers"`
			CPUs    int     `json:"cpus"`
			SecOp   float64 `json:"sec_per_op"`
			OpsSec  float64 `json:"ops_per_sec"`
			Speedup float64 `json:"speedup_vs_serial"`
		}
		serial := parallelBenchNsOp[1]
		out := struct {
			Bench string `json:"bench"`
			CPUs  int    `json:"cpus"`
			Rows  []row  `json:"rows"`
		}{Bench: "BuildEPPP max512.5", CPUs: runtime.NumCPU()}
		for _, w := range counts {
			ns := parallelBenchNsOp[w]
			if ns == 0 {
				continue
			}
			// Each row carries the host CPU count so a speedup < 1 at
			// workers > cpus is interpretable in isolation.
			out.Rows = append(out.Rows, row{
				Workers: w,
				CPUs:    runtime.NumCPU(),
				SecOp:   ns / 1e9,
				OpsSec:  1e9 / ns,
				Speedup: serial / ns,
			})
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_eppp.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkStatsOverhead guards the observability tentpole's
// zero-overhead-when-disabled contract: the same parallel EPPP build as
// BenchmarkParallelEPPP with Options.Stats nil (hot paths pay one nil
// check) vs a live recorder. Compare stats=off here against
// BenchmarkParallelEPPP to confirm instrumented-but-disabled builds
// did not regress; stats=on shows the price of turning collection on.
func BenchmarkStatsOverhead(b *testing.B) {
	f := bench.MustLoad("max512").Output(5)
	workers := 4
	b.Run("stats=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BuildEPPP(f, core.Options{Workers: workers}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stats=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := stats.New()
			if _, err := core.BuildEPPP(f, core.Options{Workers: workers, Stats: rec}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationParallelExpansion is the DESIGN.md "serial vs
// parallel group expansion" ablation: the same construction across
// worker counts, for both the exact EPPP build and the SPP_2 heuristic
// (whose descendant/ascendant phases use the same worker pool).
func BenchmarkAblationParallelExpansion(b *testing.B) {
	for _, c := range []harness.OutputCase{
		{Func: "m3", Output: 3}, {Func: "max512", Output: 5},
	} {
		f := bench.MustLoad(c.Func).Output(c.Output)
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/eppp/workers=%d", c.String(), w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.BuildEPPP(f, core.Options{Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/spp2/workers=%d", c.String(), w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Heuristic(f, 2, core.Options{Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkExtensionSharedOutputs measures joint multi-output
// minimization with a shared pseudoproduct pool against stacked
// per-output minimization.
func BenchmarkExtensionSharedOutputs(b *testing.B) {
	m := bench.MustLoad("adr4")
	multi := bfunc.NewMulti("adr4", m.Inputs, m.Outputs)
	b.Run("shared", func(b *testing.B) {
		var res *core.MultiResult
		var err error
		for i := 0; i < b.N; i++ {
			res, err = core.MinimizeMulti(multi, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.SharedLiterals), "shared-literals")
		b.ReportMetric(float64(res.SeparateLiterals()), "stacked-literals")
	})
	b.Run("separate", func(b *testing.B) {
		lits := 0
		for i := 0; i < b.N; i++ {
			lits = 0
			for o := 0; o < multi.NOutputs(); o++ {
				res, err := core.MinimizeExact(multi.Output(o), core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				lits += res.Form.Literals()
			}
		}
		b.ReportMetric(float64(lits), "separate-literals")
	})
}

// --- covering-phase benchmark (BENCH_cover.json) ---------------------
//
// The seed covering path is reproduced here verbatim as the baseline:
// column construction enumerating every candidate's points through a
// map[uint64]int, and the full-rescan float-ratio greedy with the
// OR-rebuild redundancy elimination — exactly what internal/cover and
// SelectCover did before the word-parallel bitset engine.

type seedBits []uint64

func newSeedBits(n int) seedBits { return make(seedBits, (n+63)/64) }

func (b seedBits) set(i int) { b[i/64] |= 1 << uint(i%64) }

func (b seedBits) orWith(o seedBits) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b seedBits) countNew(o seedBits) int {
	n := 0
	for i := range b {
		n += bits.OnesCount64(o[i] &^ b[i])
	}
	return n
}

func (b seedBits) containsAll(o seedBits) bool {
	for i := range b {
		if o[i]&^b[i] != 0 {
			return false
		}
	}
	return true
}

func seedGreedyCover(in *cover.Instance) []int {
	bs := make([]seedBits, len(in.Cols))
	for j, c := range in.Cols {
		b := newSeedBits(in.NRows)
		for _, r := range c.Rows {
			b.set(r)
		}
		bs[j] = b
	}
	covered := newSeedBits(in.NRows)
	var picked []int
	remaining := in.NRows
	for remaining > 0 {
		best, bestNew := -1, 0
		var bestRatio float64
		for j := range in.Cols {
			nw := covered.countNew(bs[j])
			if nw == 0 {
				continue
			}
			ratio := float64(in.Cols[j].Cost) / float64(nw)
			if best == -1 || ratio < bestRatio ||
				(ratio == bestRatio && nw > bestNew) {
				best, bestNew, bestRatio = j, nw, ratio
			}
		}
		if best == -1 {
			panic("bench: uncoverable row")
		}
		picked = append(picked, best)
		covered.orWith(bs[best])
		remaining -= bestNew
	}
	order := append([]int(nil), picked...)
	sort.Slice(order, func(a, b int) bool {
		return in.Cols[order[a]].Cost > in.Cols[order[b]].Cost
	})
	alive := map[int]bool{}
	for _, j := range picked {
		alive[j] = true
	}
	for _, j := range order {
		without := newSeedBits(in.NRows)
		for k := range alive {
			if k != j && alive[k] {
				without.orWith(bs[k])
			}
		}
		if without.containsAll(bs[j]) {
			alive[j] = false
		}
	}
	out := picked[:0]
	for _, j := range picked {
		if alive[j] {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}

// seedCoverPhase runs the pre-bitset covering phase end to end
// (map-based column construction + seed greedy) and returns the
// selected form's literal count.
func seedCoverPhase(f *bfunc.Func, set *core.EPPPSet) (int, error) {
	on := f.On()
	rowOf := make(map[uint64]int, len(on))
	for i, p := range on {
		rowOf[p] = i
	}
	in := &cover.Instance{NRows: len(on)}
	var cols []*pcube.CEX
	for _, c := range set.Candidates {
		var rows []int
		for _, p := range c.Points() {
			if r, ok := rowOf[p]; ok {
				rows = append(rows, r)
			}
		}
		if len(rows) == 0 {
			continue
		}
		sort.Ints(rows)
		in.Cols = append(in.Cols, cover.Column{Cost: c.Literals(), Rows: rows})
		cols = append(cols, c)
	}
	if err := in.Validate(); err != nil {
		return 0, err
	}
	lits := 0
	for _, j := range seedGreedyCover(in) {
		lits += cols[j].Literals()
	}
	return lits, nil
}

// coverBench collects per-(function, implementation) timings and
// literal counts of BenchmarkCover's sub-benchmarks (declaration order)
// for the trailing "report" step.
var (
	coverBenchNsOp = map[string]float64{}
	coverBenchLits = map[string]int{}
)

var coverBenchCases = []harness.OutputCase{
	{Func: "adr4", Output: 0}, {Func: "dist", Output: 0},
	{Func: "m3", Output: 3}, {Func: "max512", Output: 5},
}

// BenchmarkCover measures the covering phase (Algorithm 2 step 3) on
// Table 1/2 functions: the seed map-and-rescan path against the
// word-parallel bitset engine at CoverWorkers=NumCPU, writing the
// comparison to BENCH_cover.json. The report step asserts both paths
// select forms with identical literal counts.
func BenchmarkCover(b *testing.B) {
	workers := runtime.NumCPU()
	for _, c := range coverBenchCases {
		f := bench.MustLoad(c.Func).Output(c.Output)
		set, err := core.BuildEPPP(f, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.String()+"/seed", func(b *testing.B) {
			lits := 0
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if lits, err = seedCoverPhase(f, set); err != nil {
					b.Fatal(err)
				}
			}
			coverBenchNsOp[c.String()+"/seed"] = float64(time.Since(start).Nanoseconds()) / float64(b.N)
			coverBenchLits[c.String()+"/seed"] = lits
		})
		b.Run(c.String()+"/bitset", func(b *testing.B) {
			opts := core.Options{CoverWorkers: workers}
			lits := 0
			start := time.Now()
			for i := 0; i < b.N; i++ {
				form, _, _, err := core.SelectCover(f, set, opts)
				if err != nil {
					b.Fatal(err)
				}
				lits = form.Literals()
			}
			coverBenchNsOp[c.String()+"/bitset"] = float64(time.Since(start).Nanoseconds()) / float64(b.N)
			coverBenchLits[c.String()+"/bitset"] = lits
		})
	}
	b.Run("report", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Runs after the timed sub-benchmarks to persist their results.
		}
		type row struct {
			Function  string  `json:"function"`
			Workers   int     `json:"workers"`
			CPUs      int     `json:"cpus"`
			SeedSec   float64 `json:"seed_sec_per_op"`
			BitsetSec float64 `json:"bitset_sec_per_op"`
			Speedup   float64 `json:"speedup_vs_seed"`
			Literals  int     `json:"literals"`
		}
		out := struct {
			Bench string `json:"bench"`
			CPUs  int    `json:"cpus"`
			Rows  []row  `json:"rows"`
		}{Bench: "covering phase: seed vs bitset engine", CPUs: runtime.NumCPU()}
		for _, c := range coverBenchCases {
			seedNs := coverBenchNsOp[c.String()+"/seed"]
			bitNs := coverBenchNsOp[c.String()+"/bitset"]
			if seedNs == 0 || bitNs == 0 {
				continue
			}
			if sl, bl := coverBenchLits[c.String()+"/seed"], coverBenchLits[c.String()+"/bitset"]; sl != bl {
				b.Fatalf("%s: literal counts diverge: seed %d, bitset %d", c.String(), sl, bl)
			}
			out.Rows = append(out.Rows, row{
				Function:  c.String(),
				Workers:   workers,
				CPUs:      runtime.NumCPU(),
				SeedSec:   seedNs / 1e9,
				BitsetSec: bitNs / 1e9,
				Speedup:   seedNs / bitNs,
				Literals:  coverBenchLits[c.String()+"/bitset"],
			})
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_cover.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	})
}
