// Benchmark harness: one benchmark per table and figure of the paper
// (see DESIGN.md's experiment index), plus the ablation benches for the
// design choices called out there. Run with
//
//	go test -bench=. -benchmem
//
// Table/figure rows that need minutes of wall clock use the medium-size
// instances; cmd/spptables regenerates the complete tables.
package spp_test

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/bfunc"
	"repro/internal/core"
	"repro/internal/fprm"
	"repro/internal/harness"
	"repro/internal/pcube"
	"repro/internal/ptrie"
	"repro/internal/sp"
)

func cfg() harness.Config {
	c := harness.DefaultConfig()
	c.PerOutput = 30 * time.Second
	c.NaiveBudget = 30 * time.Second
	return c
}

// BenchmarkTable1 regenerates Table 1 rows (SP vs SPP minimization, all
// outputs summed). One sub-benchmark per representative function; the
// first iteration reports the row via b.Log.
func BenchmarkTable1(b *testing.B) {
	for _, name := range []string{"adr4", "life", "dist", "mlp4", "m3", "newtpla2"} {
		b.Run(name, func(b *testing.B) {
			m := bench.MustLoad(name)
			var r harness.FuncResult
			for i := 0; i < b.N; i++ {
				r = harness.MinimizeFunc(m, cfg())
			}
			b.ReportMetric(float64(r.SPLiterals), "SP-literals")
			b.ReportMetric(float64(r.SPPLiterals), "SPP-literals")
			b.ReportMetric(float64(r.EPPP), "EPPPs")
		})
	}
}

// BenchmarkTable2 regenerates Table 2 rows: EPPP construction with the
// naive [5] baseline vs partition-trie Algorithm 2.
func BenchmarkTable2(b *testing.B) {
	cases := []harness.OutputCase{
		{Func: "max128", Output: 20}, {Func: "m3", Output: 3},
		{Func: "m4", Output: 0}, {Func: "risc", Output: 2},
		{Func: "max512", Output: 5}, {Func: "ex5", Output: 50},
	}
	for _, c := range cases {
		f := bench.MustLoad(c.Func).Output(c.Output)
		b.Run(c.String()+"/naive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildEPPPNaive(f, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.String()+"/alg2", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildEPPP(f, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3 regenerates Table 3 rows: the SPP_0 heuristic vs the
// exact algorithm, per output summed.
func BenchmarkTable3(b *testing.B) {
	for _, name := range []string{"dist", "mlp4", "m4", "f51m"} {
		m := bench.MustLoad(name)
		b.Run(name+"/SPP0", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for o := 0; o < m.NOutputs(); o++ {
					if _, err := core.Heuristic(m.Output(o), 0, core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(name+"/exact", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for o := 0; o < m.NOutputs(); o++ {
					if _, err := core.MinimizeExact(m.Output(o), core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkFig3 and BenchmarkFig4 sample the SPP_k sweep of the paper's
// figures: literal counts (fig 3) come out as reported metrics, CPU time
// (fig 4) as the benchmark time itself, one sub-benchmark per k.
func BenchmarkFig3Fig4(b *testing.B) {
	for _, name := range []string{"dist", "f51m"} {
		m := bench.MustLoad(name)
		for k := 0; k <= 4; k++ {
			b.Run(fmt.Sprintf("%s/k=%d", name, k), func(b *testing.B) {
				lits := 0
				for i := 0; i < b.N; i++ {
					lits = 0
					for o := 0; o < m.NOutputs(); o++ {
						res, err := core.Heuristic(m.Output(o), k, core.Options{})
						if err != nil {
							b.Fatal(err)
						}
						lits += res.Form.Literals()
					}
				}
				b.ReportMetric(float64(lits), "SPP_k-literals")
			})
		}
	}
}

// BenchmarkAblationGrouping compares the paper's partition trie with a
// flat hash map as the structure-grouping data structure (DESIGN.md
// ablation 1): same algorithm, same outputs, different index.
func BenchmarkAblationGrouping(b *testing.B) {
	for _, c := range []harness.OutputCase{
		{Func: "m3", Output: 3}, {Func: "adr4", Output: 0}, {Func: "max512", Output: 5},
	} {
		f := bench.MustLoad(c.Func).Output(c.Output)
		b.Run(c.String()+"/trie", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildEPPP(f, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.String()+"/hashmap", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildEPPPHashGrouped(f, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationUnion compares Algorithm 1's symbolic union against
// recomputing the CEX from the merged point sets (DESIGN.md ablation 2).
func BenchmarkAblationUnion(b *testing.B) {
	// A same-structure pair of degree-4 pseudocubes in B^12.
	n := 12
	a := pcube.FromPoint(n, 0x5A5)
	for _, alpha := range []uint64{0x003, 0x00C, 0x030, 0x0C0} {
		a = pcube.Union(a, a.Transform(alpha))
	}
	d := a.Transform(0x700)
	b.Run("algorithm1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if pcube.Union(a, d) == nil {
				b.Fatal("union failed")
			}
		}
	})
	b.Run("from-points", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pts := append(a.Points(), d.Points()...)
			if _, ok := pcube.FromPoints(n, pts); !ok {
				b.Fatal("not a pseudocube")
			}
		}
	})
}

// BenchmarkPartitionTrieInsert measures raw trie insertion throughput.
func BenchmarkPartitionTrieInsert(b *testing.B) {
	f := bench.MustLoad("m4").Output(0)
	set, err := core.BuildEPPP(f, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := ptrie.New(f.N())
		for _, c := range set.Candidates {
			tr.Insert(c)
		}
	}
	b.ReportMetric(float64(len(set.Candidates)), "CEXs")
}

// BenchmarkSPBaseline measures the two-level pipeline on its own.
func BenchmarkSPBaseline(b *testing.B) {
	for _, name := range []string{"adr4", "life", "dist"} {
		m := bench.MustLoad(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for o := 0; o < m.NOutputs(); o++ {
					sp.Minimize(m.Output(o), sp.Options{})
				}
			}
		})
	}
}

// BenchmarkHarnessTable2Report exercises the full Table 2 harness path
// (including formatting) on the two fastest rows; it keeps the
// cmd/spptables plumbing itself under benchmark coverage.
func BenchmarkHarnessTable2Report(b *testing.B) {
	cases := []harness.OutputCase{{Func: "max128", Output: 20}, {Func: "risc", Output: 2}}
	for i := 0; i < b.N; i++ {
		harness.Table2(io.Discard, cases, cfg())
	}
}

// BenchmarkExtensionFPRM runs the §5 extension comparison: best
// fixed-polarity Reed-Muller forms next to SP and SPP (see
// harness.CompareForms for the reported literal counts).
func BenchmarkExtensionFPRM(b *testing.B) {
	for _, name := range []string{"adr4", "life", "mlp4"} {
		m := bench.MustLoad(name)
		b.Run(name, func(b *testing.B) {
			lits := 0
			for i := 0; i < b.N; i++ {
				lits = 0
				for o := 0; o < m.NOutputs(); o++ {
					lits += fprm.Minimize(m.Output(o)).Literals
				}
			}
			b.ReportMetric(float64(lits), "FPRM-literals")
		})
	}
}

// BenchmarkAblationSPEngine compares the two SP engines: exact
// Quine-McCluskey+cover vs the ESPRESSO-style heuristic loop.
func BenchmarkAblationSPEngine(b *testing.B) {
	for _, name := range []string{"adr4", "dist"} {
		m := bench.MustLoad(name)
		for _, eng := range []struct {
			label  string
			method sp.Method
		}{{"qm", sp.MethodQM}, {"espresso", sp.MethodEspresso}} {
			b.Run(name+"/"+eng.label, func(b *testing.B) {
				lits := 0
				for i := 0; i < b.N; i++ {
					lits = 0
					for o := 0; o < m.NOutputs(); o++ {
						lits += sp.Minimize(m.Output(o), sp.Options{Method: eng.method}).Form.Literals()
					}
				}
				b.ReportMetric(float64(lits), "SP-literals")
			})
		}
	}
}

// parallelBenchNsOp collects the per-worker-count timing of
// BenchmarkParallelEPPP's sub-benchmarks (which run in declaration
// order) so the trailing "report" step can emit BENCH_eppp.json.
var parallelBenchNsOp = map[int]float64{}

// BenchmarkParallelEPPP measures the worker-pool EPPP engine against
// the serial one on a mid-size Table 2 instance and writes the curve to
// BENCH_eppp.json (ops/sec per worker count, speedup vs serial). On a
// single-core host the parallel engine pays only its sharding overhead;
// the speedup column shows ~1.0 there and climbs with the core count.
func BenchmarkParallelEPPP(b *testing.B) {
	f := bench.MustLoad("max512").Output(5)
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildEPPP(f, core.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
			parallelBenchNsOp[w] = float64(time.Since(start).Nanoseconds()) / float64(b.N)
		})
	}
	b.Run("report", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Nothing to measure; this sub-benchmark exists to run after
			// the timed ones and persist their results.
		}
		type row struct {
			Workers int     `json:"workers"`
			SecOp   float64 `json:"sec_per_op"`
			OpsSec  float64 `json:"ops_per_sec"`
			Speedup float64 `json:"speedup_vs_serial"`
		}
		serial := parallelBenchNsOp[1]
		out := struct {
			Bench string `json:"bench"`
			CPUs  int    `json:"cpus"`
			Rows  []row  `json:"rows"`
		}{Bench: "BuildEPPP max512.5", CPUs: runtime.NumCPU()}
		for _, w := range counts {
			ns := parallelBenchNsOp[w]
			if ns == 0 {
				continue
			}
			out.Rows = append(out.Rows, row{
				Workers: w,
				SecOp:   ns / 1e9,
				OpsSec:  1e9 / ns,
				Speedup: serial / ns,
			})
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_eppp.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkAblationParallelExpansion is the DESIGN.md "serial vs
// parallel group expansion" ablation: the same construction across
// worker counts, for both the exact EPPP build and the SPP_2 heuristic
// (whose descendant/ascendant phases use the same worker pool).
func BenchmarkAblationParallelExpansion(b *testing.B) {
	for _, c := range []harness.OutputCase{
		{Func: "m3", Output: 3}, {Func: "max512", Output: 5},
	} {
		f := bench.MustLoad(c.Func).Output(c.Output)
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/eppp/workers=%d", c.String(), w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.BuildEPPP(f, core.Options{Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/spp2/workers=%d", c.String(), w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Heuristic(f, 2, core.Options{Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkExtensionSharedOutputs measures joint multi-output
// minimization with a shared pseudoproduct pool against stacked
// per-output minimization.
func BenchmarkExtensionSharedOutputs(b *testing.B) {
	m := bench.MustLoad("adr4")
	multi := bfunc.NewMulti("adr4", m.Inputs, m.Outputs)
	b.Run("shared", func(b *testing.B) {
		var res *core.MultiResult
		var err error
		for i := 0; i < b.N; i++ {
			res, err = core.MinimizeMulti(multi, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.SharedLiterals), "shared-literals")
		b.ReportMetric(float64(res.SeparateLiterals()), "stacked-literals")
	})
	b.Run("separate", func(b *testing.B) {
		lits := 0
		for i := 0; i < b.N; i++ {
			lits = 0
			for o := 0; o < multi.NOutputs(); o++ {
				res, err := core.MinimizeExact(multi.Output(o), core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				lits += res.Form.Literals()
			}
		}
		b.ReportMetric(float64(lits), "separate-literals")
	})
}
