// Command sppload is a closed-loop load benchmark for the minimization
// service: it drives an in-process httptest server with concurrent
// clients and compares the current serving path (request coalescing,
// sharded cache, slot-free hits, concurrent batch items) against the
// pre-coalescing baseline (service.Config.LegacySerial) at equal
// admission width.
//
// Two scenarios run in both modes:
//
//	stampede — every client requests the same cold key at once, for a
//	           series of fresh keys: the pathological thundering herd.
//	           The headline number is duplicate_computes: identical
//	           concurrent requests that each ran the engines. Coalescing
//	           drives it to 0; the baseline computes once per client.
//	zipf     — a zipf-distributed repeat-heavy key mix, the steady-state
//	           shape of real traffic. The headline number is
//	           throughput_rps: slot-free cache hits and coalesced
//	           waiters let hot keys be served at client concurrency
//	           instead of admission width.
//
// Results are written as JSON (default BENCH_serve.json) with per-run
// throughput, p50/p99 latency, coalesce rate and duplicate-compute
// counts, plus baseline-vs-current speedup summaries.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
)

type runResult struct {
	Scenario   string `json:"scenario"`
	Mode       string `json:"mode"`
	Clients    int    `json:"clients"`
	Requests   int    `json:"requests"`
	UniqueKeys int    `json:"unique_keys"`

	ElapsedMS     float64 `json:"elapsed_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`

	// CoalesceRate is coalesce_waiters / served: the share of requests
	// answered by riding a concurrent identical computation.
	CoalesceRate float64 `json:"coalesce_rate"`
	// DuplicateComputes counts engine runs beyond one per distinct
	// function: cache_misses - unique_keys. The coalescing path keeps
	// this at 0.
	DuplicateComputes int64 `json:"duplicate_computes"`

	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	CoalesceWaiters int64 `json:"coalesce_waiters"`
	Errors          int64 `json:"errors"`
}

type report struct {
	Schema    string            `json:"schema"`
	Generated string            `json:"generated"`
	Config    map[string]any    `json:"config"`
	Results   []runResult       `json:"results"`
	Summary   map[string]string `json:"summary"`
}

func main() {
	out := flag.String("out", "BENCH_serve.json", "output JSON path (- for stdout)")
	clients := flag.Int("clients", 8, "concurrent closed-loop clients")
	keys := flag.Int("keys", 40, "distinct functions in the zipf mix")
	requests := flag.Int("requests", 400, "total requests in the zipf scenario")
	rounds := flag.Int("rounds", 10, "cold keys in the stampede scenario")
	maxConcurrent := flag.Int("max-concurrent", 8, "zipf-scenario admission width, equal for both modes")
	zipfS := flag.Float64("zipf-s", 1.2, "zipf skew (s > 1)")
	nvars := flag.Int("nvars", 9, "variables per benchmark function")
	onBase := flag.Int("on-base", 128, "smallest ON-set size")
	window := flag.Int("window", 32, "zipf requests between hot-set shifts")
	quick := flag.Bool("quick", false, "small fast run for CI smoke")
	flag.Parse()

	if *quick {
		*clients, *keys, *requests, *rounds, *window = 4, 10, 64, 3, 16
	}

	bodies := makeBodies(max(*keys, *rounds), *nvars, *onBase, 2)
	modes := []struct {
		name   string
		legacy bool
	}{
		{"baseline", true},
		{"current", false},
	}

	rep := report{
		Schema:    "spp-bench-serve/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Config: map[string]any{
			"clients":        *clients,
			"keys":           *keys,
			"requests":       *requests,
			"rounds":         *rounds,
			"max_concurrent": *maxConcurrent,
			"zipf_s":         *zipfS,
			"window":         *window,
			"nvars":          *nvars,
			"on_base":        *onBase,
			"quick":          *quick,
		},
		Summary: map[string]string{},
	}

	for _, m := range modes {
		// The stampede runs at admission width == clients in both
		// modes, so duplicate computes measure coalescing rather than
		// admission-gate serialization.
		res := runStampede(m.name, m.legacy, *clients, *clients, *rounds, bodies)
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-9s %-8s  %7.1f req/s  p50 %6.2fms  p99 %7.2fms  dup-computes %3d  coalesce %4.0f%%\n",
			res.Scenario, res.Mode, res.ThroughputRPS, res.P50MS, res.P99MS,
			res.DuplicateComputes, 100*res.CoalesceRate)
	}
	for _, m := range modes {
		res := runZipf(m.name, m.legacy, *maxConcurrent, *clients, *requests, *keys, *window, *zipfS, bodies)
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-9s %-8s  %7.1f req/s  p50 %6.2fms  p99 %7.2fms  dup-computes %3d  coalesce %4.0f%%\n",
			res.Scenario, res.Mode, res.ThroughputRPS, res.P50MS, res.P99MS,
			res.DuplicateComputes, 100*res.CoalesceRate)
	}

	for _, scenario := range []string{"stampede", "zipf"} {
		base, cur := find(rep.Results, scenario, "baseline"), find(rep.Results, scenario, "current")
		if base != nil && cur != nil && base.ThroughputRPS > 0 {
			rep.Summary[scenario+"_speedup"] = fmt.Sprintf("%.2fx", cur.ThroughputRPS/base.ThroughputRPS)
			rep.Summary[scenario+"_duplicate_computes"] = fmt.Sprintf("%d -> %d", base.DuplicateComputes, cur.DuplicateComputes)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sppload:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "sppload:", err)
		os.Exit(1)
	}
	for k, v := range rep.Summary {
		fmt.Printf("summary %s = %s\n", k, v)
	}
}

// makeBodies builds count distinct request bodies whose functions are
// pairwise P-inequivalent (distinct ON-set sizes cannot permute onto
// each other), so each body occupies its own cache key. The ON sets are
// pseudo-random over nvars variables and sized to make each cold
// compute take real engine time — a cache hit must be measurably
// cheaper than a compute for the scenarios to mean anything.
func makeBodies(count, nvars, onBase, onStep int) []string {
	rng := rand.New(rand.NewSource(1))
	space := 1 << nvars
	bodies := make([]string, count)
	for i := range bodies {
		size := onBase + i*onStep
		if size > space/2 {
			size = space / 2
		}
		seen := make(map[int]bool)
		pts := make([]string, 0, size)
		for len(pts) < size {
			p := rng.Intn(space)
			if !seen[p] {
				seen[p] = true
				pts = append(pts, fmt.Sprint(p))
			}
		}
		bodies[i] = fmt.Sprintf(`{"n":%d,"on":[%s]}`, nvars, strings.Join(pts, ","))
	}
	return bodies
}

func newServer(legacy bool, maxConcurrent int) (*httptest.Server, func() service.Statsz) {
	cfg := service.Config{
		Core:          harness.DefaultConfig(),
		MaxConcurrent: maxConcurrent,
		CacheSize:     1024,
		LegacySerial:  legacy,
	}
	srv := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	statsz := func() service.Statsz {
		resp, err := http.Get(ts.URL + "/statsz")
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		var st service.Statsz
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			panic(err)
		}
		return st
	}
	return ts, statsz
}

func post(client *http.Client, url, body string) (time.Duration, bool) {
	start := time.Now()
	resp, err := client.Post(url+"/v1/minimize", "application/json", strings.NewReader(body))
	if err != nil {
		return time.Since(start), false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return time.Since(start), resp.StatusCode == http.StatusOK
}

// runStampede fires all clients at the same cold key simultaneously,
// once per round with a fresh key each round.
func runStampede(mode string, legacy bool, maxConcurrent, clients, rounds int, bodies []string) runResult {
	ts, statsz := newServer(legacy, maxConcurrent)
	defer ts.Close()
	client := &http.Client{}

	var mu sync.Mutex
	var lats []time.Duration
	start := time.Now()
	for r := 0; r < rounds; r++ {
		body := bodies[r]
		begin := make(chan struct{})
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-begin
				d, _ := post(client, ts.URL, body)
				mu.Lock()
				lats = append(lats, d)
				mu.Unlock()
			}()
		}
		close(begin)
		wg.Wait()
	}
	elapsed := time.Since(start)

	st := statsz()
	return summarize("stampede", mode, clients, rounds, lats, elapsed, st)
}

// runZipf is the steady-state closed loop: each client draws its next
// key from a zipf distribution as soon as the previous request
// completes. The hot set drifts — every window requests the whole key
// distribution shifts by one — so the mix stays repeat-heavy while new
// hot keys keep arriving cold at all clients at once, the way real
// traffic rolls its working set. (On every shift, the baseline computes
// the new hot key once per concurrent client; coalescing computes it
// once.)
func runZipf(mode string, legacy bool, maxConcurrent, clients, requests, keys, window int, s float64, bodies []string) runResult {
	ts, statsz := newServer(legacy, maxConcurrent)
	defer ts.Close()
	client := &http.Client{}

	perClient := requests / clients
	var mu sync.Mutex
	var lats []time.Duration
	touched := make(map[int]bool)
	var total int
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			zipf := rand.NewZipf(rng, s, 1, uint64(keys-1))
			for i := 0; i < perClient; i++ {
				mu.Lock()
				shift := total / window
				total++
				mu.Unlock()
				// Hot key (draw 0) is the newest key; larger draws walk
				// back into older, already-warm keys.
				k := ((shift-int(zipf.Uint64()))%len(bodies) + len(bodies)) % len(bodies)
				d, _ := post(client, ts.URL, bodies[k])
				mu.Lock()
				lats = append(lats, d)
				touched[k] = true
				mu.Unlock()
			}
		}(int64(c + 1))
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := statsz()
	return summarize("zipf", mode, clients, len(touched), lats, elapsed, st)
}

func summarize(scenario, mode string, clients, uniqueKeys int, lats []time.Duration, elapsed time.Duration, st service.Statsz) runResult {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := min(int(p*float64(len(lats))), len(lats)-1)
		return float64(lats[i].Microseconds()) / 1000
	}
	rate := 0.0
	if st.Served > 0 {
		rate = float64(st.CoalesceWaiters) / float64(st.Served)
	}
	return runResult{
		Scenario:          scenario,
		Mode:              mode,
		Clients:           clients,
		Requests:          len(lats),
		UniqueKeys:        uniqueKeys,
		ElapsedMS:         float64(elapsed.Microseconds()) / 1000,
		ThroughputRPS:     float64(len(lats)) / elapsed.Seconds(),
		P50MS:             pct(0.50),
		P99MS:             pct(0.99),
		CoalesceRate:      rate,
		DuplicateComputes: st.CacheMisses - int64(uniqueKeys),
		CacheHits:         st.CacheHits,
		CacheMisses:       st.CacheMisses,
		CoalesceWaiters:   st.CoalesceWaiters,
		Errors:            st.Errors,
	}
}

func find(rs []runResult, scenario, mode string) *runResult {
	for i := range rs {
		if rs[i].Scenario == scenario && rs[i].Mode == mode {
			return &rs[i]
		}
	}
	return nil
}
