// Command sppload is a closed-loop load benchmark for the minimization
// service: it drives an in-process httptest server with concurrent
// clients and compares the current serving path (request coalescing,
// sharded cache, slot-free hits, concurrent batch items) against the
// pre-coalescing baseline (service.Config.LegacySerial) at equal
// admission width.
//
// Two scenarios run in both modes:
//
//	stampede — every client requests the same cold key at once, for a
//	           series of fresh keys: the pathological thundering herd.
//	           The headline number is duplicate_computes: identical
//	           concurrent requests that each ran the engines. Coalescing
//	           drives it to 0; the baseline computes once per client.
//	zipf     — a zipf-distributed repeat-heavy key mix, the steady-state
//	           shape of real traffic. The headline number is
//	           throughput_rps: slot-free cache hits and coalesced
//	           waiters let hot keys be served at client concurrency
//	           instead of admission width.
//
// Results are written as JSON (default BENCH_serve.json) with per-run
// throughput, p50/p99 latency, coalesce rate and duplicate-compute
// counts, plus baseline-vs-current speedup summaries.
//
// A third scenario, selected with -scenario edit-loop, benchmarks the
// incremental re-minimization path instead: every client owns a
// distinct base function and random-walks it, changing -edit-k minterms
// per step. Warm mode chains delta requests ({"base": ..., "add": ...,
// "remove": ...}) against a -warm-cache server; cold mode re-submits
// the full edited function each step. Both modes walk identical edit
// scripts, so they minimize the same functions. Results go to
// BENCH_delta.json (spp-bench-delta/v1) with an edit_loop_speedup
// summary.
//
// A fourth scenario, -scenario jobs, drives the async job tier: each
// closed-loop client owns a priority class, submits jobs through POST
// /v1/jobs and long-polls each to a terminal state, recording
// submit-to-done latency per class. The results merge into the
// existing BENCH_serve.json (a "jobs" section plus jobs_* summary
// keys) rather than replacing the serve results.
//
// A fifth scenario, -scenario form-mix, measures the portfolio engine
// (docs/forms.md): every function is minimized once per explicit form
// (spp, sop, esop, dsop) on one server, then raced with form=auto on a
// fresh server. Per-form win rates (from /statsz engine_wins_by_form),
// mean costs and the race overhead — auto latency over the winning
// form's own explicit latency — merge into BENCH_serve.json as a
// "form_mix" section, and every auto cost is checked against the
// minimum explicit cost (the determinism contract).
//
// A sixth scenario, -scenario overload, measures the adaptive
// admission layer: phase 1 runs distinct cold computes with clients ==
// admission width (the at-capacity goodput baseline), phase 2 re-runs
// identical work on a fresh server at several times capacity with
// deadlines too tight for the queue, where the deadline-aware shed
// path must reject doomed requests instantly (429 + Retry-After)
// instead of letting them queue into 504s and waste slots. The merged
// report (section "overload", overload_* summary keys) records goodput
// in both phases, the shed count and the shed-response latency;
// -assert-goodput-flat turns the three contract points into a CI gate
// (goodput within 10% of at-capacity, every 429 carries Retry-After,
// sheds answered in under 10ms).
//
// With -baseline pointing at a checked-in report, sppload doubles as a
// CI regression gate: -assert-dup-computes fails the serve scenario if
// the current mode's duplicate computes exceed the baseline's, and
// -assert-cover-split additionally fails the edit-loop if the warm
// covering speedup collapses below a third of the baseline's.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/stats"
)

type runResult struct {
	Scenario   string `json:"scenario"`
	Mode       string `json:"mode"`
	Clients    int    `json:"clients"`
	Requests   int    `json:"requests"`
	UniqueKeys int    `json:"unique_keys"`

	ElapsedMS     float64 `json:"elapsed_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`

	// CoalesceRate is coalesce_waiters / served: the share of requests
	// answered by riding a concurrent identical computation.
	CoalesceRate float64 `json:"coalesce_rate"`
	// DuplicateComputes counts engine runs beyond one per distinct
	// function: cache_misses - unique_keys. The coalescing path keeps
	// this at 0.
	DuplicateComputes int64 `json:"duplicate_computes"`

	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	CoalesceWaiters int64 `json:"coalesce_waiters"`
	Errors          int64 `json:"errors"`
}

type report struct {
	Schema    string            `json:"schema"`
	Generated string            `json:"generated"`
	Config    map[string]any    `json:"config"`
	Results   []runResult       `json:"results"`
	Jobs      []jobRunResult    `json:"jobs,omitempty"`
	FormMix   []formMixResult   `json:"form_mix,omitempty"`
	Overload  []overloadResult  `json:"overload,omitempty"`
	Summary   map[string]string `json:"summary"`
}

// overloadResult is one phase of the overload scenario: identical cold
// work at capacity ("at-capacity") and at a multiple of it
// ("overload"), where goodput must hold and doomed requests must be
// shed fast.
type overloadResult struct {
	Scenario string `json:"scenario"` // always "overload"
	Phase    string `json:"phase"`    // "at-capacity" or "overload"
	Clients  int    `json:"clients"`
	Gate     int    `json:"gate"`

	Successes int     `json:"successes"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// GoodputRPS counts full-size computes per second. In the overload
	// phase that is the patient work only: impatient probes carry tiny
	// functions, and any that slip through a free slot are excluded so
	// cheap computes cannot pad the ratio against at-capacity.
	GoodputRPS float64 `json:"goodput_rps"`
	// SuccessP50MS is the p50 latency of successful requests (queue
	// wait included).
	SuccessP50MS float64 `json:"success_p50_ms"`

	// Shed429 counts requests rejected by the admission layer;
	// ShedP50MS is how fast those rejections came back (the shed
	// contract: before the queue wait, not after) and ShedRetryAfterOK
	// how many carried a Retry-After header.
	Shed429          int     `json:"shed_429"`
	ShedP50MS        float64 `json:"shed_p50_ms"`
	ShedRetryAfterOK int     `json:"shed_retry_after_ok"`
	// Timeouts counts 504s: requests that queued (or computed) into
	// their deadline instead of being shed up front.
	Timeouts int `json:"timeouts"`

	ShedDeadline   int64 `json:"statsz_shed_deadline"`
	QueueWaitP99MS int64 `json:"statsz_queue_wait_p99_ms"`
}

// formMixResult is one form's slice of the form-mix scenario: cold
// explicit-request latency and cost per backend, plus — on the "auto"
// row — the race's win share and overhead against the winning form's
// own explicit latency.
type formMixResult struct {
	Scenario string `json:"scenario"` // always "form-mix"
	Form     string `json:"form"`
	Requests int    `json:"requests"`

	P50MS        float64 `json:"p50_ms"`
	MeanMS       float64 `json:"mean_ms"`
	MeanLiterals float64 `json:"mean_literals"`
	// WinRate is the share of auto races this backend won (explicit
	// rows; from /statsz engine_wins_by_form after the auto phase).
	WinRate float64 `json:"win_rate,omitempty"`
	// RaceOverhead (auto row only) is mean(auto latency / the winning
	// form's explicit latency on the same function): the price of
	// racing everyone versus knowing the right backend in advance.
	RaceOverhead float64 `json:"race_overhead,omitempty"`
	// BestCostMatches (auto row only) counts functions whose auto cost
	// equaled the minimum over the explicit runs — the determinism
	// contract, which must hold for every function.
	BestCostMatches int `json:"best_cost_matches,omitempty"`

	Errors int `json:"errors"`
}

// jobRunResult is one priority class's slice of the jobs scenario:
// closed-loop submit-to-done latency through the async tier.
type jobRunResult struct {
	Scenario string `json:"scenario"` // always "jobs"
	Priority string `json:"priority"`
	Jobs     int    `json:"jobs"`

	ElapsedMS float64 `json:"elapsed_ms"`
	JobsPerS  float64 `json:"jobs_per_s"`
	// Submit-to-done wall time: 202 accept through the terminal state
	// observed by the poller, queue wait included.
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`

	Failed int `json:"failed"`
}

func main() {
	out := flag.String("out", "", "output JSON path (- for stdout; default BENCH_serve.json, or BENCH_delta.json for -scenario edit-loop)")
	scenario := flag.String("scenario", "serve", "benchmark scenario: serve (stampede+zipf), edit-loop (delta vs cold re-submits), jobs (async tier) or form-mix (portfolio race win rates and overhead)")
	clients := flag.Int("clients", 8, "concurrent closed-loop clients")
	keys := flag.Int("keys", 40, "distinct functions in the zipf mix")
	requests := flag.Int("requests", 400, "total requests in the zipf scenario")
	rounds := flag.Int("rounds", 10, "cold keys in the stampede scenario")
	maxConcurrent := flag.Int("max-concurrent", 8, "zipf-scenario admission width, equal for both modes")
	zipfS := flag.Float64("zipf-s", 1.2, "zipf skew (s > 1)")
	nvars := flag.Int("nvars", 9, "variables per benchmark function")
	onBase := flag.Int("on-base", 128, "smallest ON-set size")
	window := flag.Int("window", 32, "zipf requests between hot-set shifts")
	edits := flag.Int("edits", 25, "edit-loop steps per client")
	editK := flag.Int("edit-k", 2, "minterms changed per edit-loop step (alternating add/remove)")
	quick := flag.Bool("quick", false, "small fast run for CI smoke")
	assertCoverSplit := flag.Bool("assert-cover-split", false, "edit-loop only: exit 1 unless the warm per-run covering time beats cold (CI regression gate)")
	baseline := flag.String("baseline", "", "checked-in report to gate against (BENCH_serve.json for serve, BENCH_delta.json for edit-loop)")
	assertDup := flag.Bool("assert-dup-computes", false, "serve only: exit 1 if current-mode duplicate computes exceed the -baseline report's (CI regression gate)")
	assertFlat := flag.Bool("assert-goodput-flat", false, "overload only: exit 1 unless goodput at 4x capacity stays within 10% of at-capacity, every 429 carries Retry-After and shed p50 < 10ms (CI regression gate)")
	flag.Parse()

	if *scenario == "edit-loop" {
		if *quick {
			*clients, *edits = 2, 6
		} else if *clients == 8 {
			*clients = 4 // default: 4 clients x 25 edits = a 100-edit loop
		}
		if *out == "" {
			*out = "BENCH_delta.json"
		}
		runEditLoopScenario(*out, *clients, *edits, *editK, *nvars, *onBase, *quick, *assertCoverSplit, *baseline)
		return
	}
	if *scenario == "form-mix" {
		if *quick {
			*keys, *nvars, *onBase = 5, 7, 24
		} else if *keys == 40 {
			*keys = 12 // every key runs once per form plus one auto race
		}
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		runFormMixScenario(*out, *keys, *nvars, *onBase, *maxConcurrent, *quick)
		return
	}
	if *scenario == "jobs" {
		if *quick {
			*clients, *requests = 3, 18
		} else if *requests == 400 {
			// The zipf default would mean 400 distinct cold computes
			// growing to the ON-size cap; 60 keeps the full run in
			// tens of seconds while still loading every class.
			*requests = 60
		}
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		runJobsScenario(*out, *clients, *requests, *maxConcurrent, *nvars, *onBase, *quick)
		return
	}
	if *scenario == "overload" {
		if *quick {
			*requests = 32
		} else if *requests == 400 {
			// requests here is the per-phase success target; 64 cold
			// computes per phase keeps the full run under a minute
			// while giving each of the paired rounds a sample big
			// enough that box noise does not dominate the ratio.
			*requests = 64
		}
		// The shed-latency contract is graded in wall-clock
		// milliseconds, so the default function size is tuned for
		// boxes with few cores: computes of tens of milliseconds keep
		// the admission gate saturated without drowning the core the
		// shed responses also need.
		if *nvars == 9 {
			*nvars = 8
		}
		if *onBase == 128 {
			*onBase = 56
		}
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		runOverloadScenario(*out, *requests, *nvars, *onBase, *quick, *assertFlat)
		return
	}
	if *out == "" {
		*out = "BENCH_serve.json"
	}

	if *quick {
		*clients, *keys, *requests, *rounds, *window = 4, 10, 64, 3, 16
	}

	bodies := makeBodies(max(*keys, *rounds), *nvars, *onBase, 2)
	modes := []struct {
		name   string
		legacy bool
	}{
		{"baseline", true},
		{"current", false},
	}

	rep := report{
		Schema:    "spp-bench-serve/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Config: map[string]any{
			"clients":        *clients,
			"keys":           *keys,
			"requests":       *requests,
			"rounds":         *rounds,
			"max_concurrent": *maxConcurrent,
			"zipf_s":         *zipfS,
			"window":         *window,
			"nvars":          *nvars,
			"on_base":        *onBase,
			"quick":          *quick,
		},
		Summary: map[string]string{},
	}

	for _, m := range modes {
		// The stampede runs at admission width == clients in both
		// modes, so duplicate computes measure coalescing rather than
		// admission-gate serialization.
		res := runStampede(m.name, m.legacy, *clients, *clients, *rounds, bodies)
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-9s %-8s  %7.1f req/s  p50 %6.2fms  p99 %7.2fms  dup-computes %3d  coalesce %4.0f%%\n",
			res.Scenario, res.Mode, res.ThroughputRPS, res.P50MS, res.P99MS,
			res.DuplicateComputes, 100*res.CoalesceRate)
	}
	for _, m := range modes {
		res := runZipf(m.name, m.legacy, *maxConcurrent, *clients, *requests, *keys, *window, *zipfS, bodies)
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-9s %-8s  %7.1f req/s  p50 %6.2fms  p99 %7.2fms  dup-computes %3d  coalesce %4.0f%%\n",
			res.Scenario, res.Mode, res.ThroughputRPS, res.P50MS, res.P99MS,
			res.DuplicateComputes, 100*res.CoalesceRate)
	}

	for _, scenario := range []string{"stampede", "zipf"} {
		base, cur := find(rep.Results, scenario, "baseline"), find(rep.Results, scenario, "current")
		if base != nil && cur != nil && base.ThroughputRPS > 0 {
			rep.Summary[scenario+"_speedup"] = fmt.Sprintf("%.2fx", cur.ThroughputRPS/base.ThroughputRPS)
			rep.Summary[scenario+"_duplicate_computes"] = fmt.Sprintf("%d -> %d", base.DuplicateComputes, cur.DuplicateComputes)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sppload:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "sppload:", err)
		os.Exit(1)
	}
	for k, v := range rep.Summary {
		fmt.Printf("summary %s = %s\n", k, v)
	}

	if *assertDup {
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "sppload: -assert-dup-computes needs -baseline")
			os.Exit(1)
		}
		base, err := loadServeReport(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sppload: baseline:", err)
			os.Exit(1)
		}
		failed := false
		for _, scenario := range []string{"stampede", "zipf"} {
			want := find(base.Results, scenario, "current")
			got := find(rep.Results, scenario, "current")
			if want == nil || got == nil {
				continue
			}
			if got.DuplicateComputes > want.DuplicateComputes {
				fmt.Fprintf(os.Stderr, "sppload: dup-computes assertion failed: %s current %d > baseline %d\n",
					scenario, got.DuplicateComputes, want.DuplicateComputes)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
	}
}

// loadServeReport reads a spp-bench-serve/v1 report from disk.
func loadServeReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	if rep.Schema != "spp-bench-serve/v1" {
		return nil, fmt.Errorf("%s: schema %q, want spp-bench-serve/v1", path, rep.Schema)
	}
	return &rep, nil
}

// makeBodies builds count distinct request bodies whose functions are
// pairwise P-inequivalent (distinct ON-set sizes cannot permute onto
// each other), so each body occupies its own cache key. The ON sets are
// pseudo-random over nvars variables and sized to make each cold
// compute take real engine time — a cache hit must be measurably
// cheaper than a compute for the scenarios to mean anything.
func makeBodies(count, nvars, onBase, onStep int) []string {
	rng := rand.New(rand.NewSource(1))
	space := 1 << nvars
	bodies := make([]string, count)
	for i := range bodies {
		size := onBase + i*onStep
		if size > space/2 {
			size = space / 2
		}
		seen := make(map[int]bool)
		pts := make([]string, 0, size)
		for len(pts) < size {
			p := rng.Intn(space)
			if !seen[p] {
				seen[p] = true
				pts = append(pts, fmt.Sprint(p))
			}
		}
		bodies[i] = fmt.Sprintf(`{"n":%d,"on":[%s]}`, nvars, strings.Join(pts, ","))
	}
	return bodies
}

func newServer(legacy bool, maxConcurrent int) (*httptest.Server, func() service.Statsz) {
	cfg := service.Config{
		Core:          harness.DefaultConfig(),
		MaxConcurrent: maxConcurrent,
		CacheSize:     1024,
		LegacySerial:  legacy,
	}
	srv := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	statsz := func() service.Statsz {
		resp, err := http.Get(ts.URL + "/statsz")
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		var st service.Statsz
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			panic(err)
		}
		return st
	}
	return ts, statsz
}

func post(client *http.Client, url, body string) (time.Duration, bool) {
	start := time.Now()
	resp, err := client.Post(url+"/v1/minimize", "application/json", strings.NewReader(body))
	if err != nil {
		return time.Since(start), false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return time.Since(start), resp.StatusCode == http.StatusOK
}

// runStampede fires all clients at the same cold key simultaneously,
// once per round with a fresh key each round.
func runStampede(mode string, legacy bool, maxConcurrent, clients, rounds int, bodies []string) runResult {
	ts, statsz := newServer(legacy, maxConcurrent)
	defer ts.Close()
	client := &http.Client{}

	var mu sync.Mutex
	var lats []time.Duration
	start := time.Now()
	for r := 0; r < rounds; r++ {
		body := bodies[r]
		begin := make(chan struct{})
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-begin
				d, _ := post(client, ts.URL, body)
				mu.Lock()
				lats = append(lats, d)
				mu.Unlock()
			}()
		}
		close(begin)
		wg.Wait()
	}
	elapsed := time.Since(start)

	st := statsz()
	return summarize("stampede", mode, clients, rounds, lats, elapsed, st)
}

// runZipf is the steady-state closed loop: each client draws its next
// key from a zipf distribution as soon as the previous request
// completes. The hot set drifts — every window requests the whole key
// distribution shifts by one — so the mix stays repeat-heavy while new
// hot keys keep arriving cold at all clients at once, the way real
// traffic rolls its working set. (On every shift, the baseline computes
// the new hot key once per concurrent client; coalescing computes it
// once.)
func runZipf(mode string, legacy bool, maxConcurrent, clients, requests, keys, window int, s float64, bodies []string) runResult {
	ts, statsz := newServer(legacy, maxConcurrent)
	defer ts.Close()
	client := &http.Client{}

	perClient := requests / clients
	var mu sync.Mutex
	var lats []time.Duration
	touched := make(map[int]bool)
	var total int
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			zipf := rand.NewZipf(rng, s, 1, uint64(keys-1))
			for i := 0; i < perClient; i++ {
				mu.Lock()
				shift := total / window
				total++
				mu.Unlock()
				// Hot key (draw 0) is the newest key; larger draws walk
				// back into older, already-warm keys.
				k := ((shift-int(zipf.Uint64()))%len(bodies) + len(bodies)) % len(bodies)
				d, _ := post(client, ts.URL, bodies[k])
				mu.Lock()
				lats = append(lats, d)
				touched[k] = true
				mu.Unlock()
			}
		}(int64(c + 1))
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := statsz()
	return summarize("zipf", mode, clients, len(touched), lats, elapsed, st)
}

func summarize(scenario, mode string, clients, uniqueKeys int, lats []time.Duration, elapsed time.Duration, st service.Statsz) runResult {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := min(int(p*float64(len(lats))), len(lats)-1)
		return float64(lats[i].Microseconds()) / 1000
	}
	rate := 0.0
	if st.Served > 0 {
		rate = float64(st.CoalesceWaiters) / float64(st.Served)
	}
	return runResult{
		Scenario:          scenario,
		Mode:              mode,
		Clients:           clients,
		Requests:          len(lats),
		UniqueKeys:        uniqueKeys,
		ElapsedMS:         float64(elapsed.Microseconds()) / 1000,
		ThroughputRPS:     float64(len(lats)) / elapsed.Seconds(),
		P50MS:             pct(0.50),
		P99MS:             pct(0.99),
		CoalesceRate:      rate,
		DuplicateComputes: st.CacheMisses - int64(uniqueKeys),
		CacheHits:         st.CacheHits,
		CacheMisses:       st.CacheMisses,
		CoalesceWaiters:   st.CoalesceWaiters,
		Errors:            st.Errors,
	}
}

func find(rs []runResult, scenario, mode string) *runResult {
	for i := range rs {
		if rs[i].Scenario == scenario && rs[i].Mode == mode {
			return &rs[i]
		}
	}
	return nil
}

// --- jobs scenario ------------------------------------------------------

// runJobsScenario drives the async job tier closed-loop: clients split
// across the priority classes, each submitting distinct functions via
// POST /v1/jobs and long-polling every job to a terminal state. The
// per-class submit-to-done latencies merge into the serve report at
// `out` (section "jobs" plus jobs_* summary keys); existing serve
// results in that file are preserved.
func runJobsScenario(out string, clients, totalJobs, workers, nvars, onBase int, quick bool) {
	jobsDir, err := os.MkdirTemp("", "sppload-jobs-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sppload:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(jobsDir)

	// Fewer workers than clients keeps a queue standing (closed-loop
	// clients have one job outstanding each, so queue depth is
	// clients - workers): without one, priority classes would never
	// differ.
	if half := max(clients/2, 1); workers > half {
		workers = half
	}
	cfg := service.Config{
		Core:          harness.DefaultConfig(),
		MaxConcurrent: workers,
		CacheSize:     4096,
		JobsDir:       jobsDir,
		JobWorkers:    workers,
	}
	srv := service.New(cfg)
	if _, err := srv.StartJobs(); err != nil {
		fmt.Fprintln(os.Stderr, "sppload: jobs:", err)
		os.Exit(1)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{}

	priorities := []string{"interactive", "batch", "bulk"}
	// Step 1 keeps ON sizes under the space/2 cap (distinct sizes stay
	// P-inequivalent) so compute cost grows gently across the fleet.
	bodies := makeBodies(totalJobs, nvars, onBase, 1)
	perClient := totalJobs / clients

	type sample struct {
		priority string
		d        time.Duration
		failed   bool
	}
	var mu sync.Mutex
	var samples []sample
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			prio := priorities[c%len(priorities)]
			for i := 0; i < perClient; i++ {
				// Interleave bodies across clients so every priority
				// class sees the same ON-size (= compute cost) spread.
				body := bodies[i*clients+c]
				// Splice the priority class into the minimize body.
				jb := fmt.Sprintf(`{"priority":%q,%s`, prio, body[1:])
				d, failed := submitAndAwaitJob(client, ts.URL, jb)
				mu.Lock()
				samples = append(samples, sample{prio, d, failed})
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.StopJobs(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "sppload: jobs shutdown:", err)
		os.Exit(1)
	}

	rep, err := loadServeReport(out)
	if err != nil {
		// No (usable) prior serve report: start a fresh one that carries
		// only the jobs section.
		rep = &report{Schema: "spp-bench-serve/v1", Config: map[string]any{}, Summary: map[string]string{}}
	}
	rep.Generated = time.Now().UTC().Format(time.RFC3339)
	rep.Config["jobs_clients"] = clients
	rep.Config["jobs_total"] = totalJobs
	rep.Config["jobs_workers"] = workers
	rep.Config["jobs_quick"] = quick
	rep.Jobs = nil

	for _, prio := range priorities {
		var lats []time.Duration
		failed := 0
		for _, s := range samples {
			if s.priority != prio {
				continue
			}
			lats = append(lats, s.d)
			if s.failed {
				failed++
			}
		}
		if len(lats) == 0 {
			continue
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) float64 {
			i := min(int(p*float64(len(lats))), len(lats)-1)
			return float64(lats[i].Microseconds()) / 1000
		}
		var total time.Duration
		for _, d := range lats {
			total += d
		}
		res := jobRunResult{
			Scenario:  "jobs",
			Priority:  prio,
			Jobs:      len(lats),
			ElapsedMS: float64(elapsed.Microseconds()) / 1000,
			JobsPerS:  float64(len(lats)) / elapsed.Seconds(),
			P50MS:     pct(0.50),
			P99MS:     pct(0.99),
			MeanMS:    float64(total.Microseconds()) / 1000 / float64(len(lats)),
			Failed:    failed,
		}
		rep.Jobs = append(rep.Jobs, res)
		rep.Summary["jobs_p50_"+prio] = fmt.Sprintf("%.2fms", res.P50MS)
		fmt.Printf("jobs %-11s  %5.1f jobs/s  p50 %7.2fms  p99 %8.2fms  mean %7.2fms  failed %d\n",
			prio, res.JobsPerS, res.P50MS, res.P99MS, res.MeanMS, res.Failed)
	}

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sppload:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "sppload:", err)
		os.Exit(1)
	}
	for _, prio := range priorities {
		if v, ok := rep.Summary["jobs_p50_"+prio]; ok {
			fmt.Printf("summary jobs_p50_%s = %s\n", prio, v)
		}
	}
	var totalFailed int
	for _, r := range rep.Jobs {
		totalFailed += r.Failed
	}
	if totalFailed > 0 {
		fmt.Fprintf(os.Stderr, "sppload: %d jobs failed\n", totalFailed)
		os.Exit(1)
	}
}

// runOverloadScenario grades the adaptive admission layer. Phase 1
// runs `total` distinct cold computes with clients == admission width
// (every acquire takes the fast path: the at-capacity goodput
// ceiling). Phase 2 re-runs the same success target on a fresh server
// at 4x capacity with a mixed deadline population: patient clients
// whose budgets comfortably cover the queue (they keep the slots busy
// and feed the queue-wait predictor) and impatient clients whose
// budgets cannot cover a queued wait. Once the predictor warms up, the
// impatient requests must be shed up front — 429 + Retry-After in
// single-digit milliseconds — instead of queuing into 504s, so slot
// time keeps going to requests that can still make their deadlines and
// goodput holds flat. The report gains an "overload" section and
// overload_* summary keys; assertFlat turns the contract into a CI
// gate.
//
// The shape is deliberately small — one admission slot, two patient
// and two impatient clients, impatient probes spaced by a backoff —
// because the shed contract is graded in wall-clock milliseconds: on a
// one-core box every runnable goroutine adds scheduler queueing delay
// to every response, so the runnable set must stay near one compute
// plus one short-lived handler for the measurement to reflect the shed
// path rather than the scheduler.
func runOverloadScenario(out string, total, nvars, onBase int, quick, assertFlat bool) {
	const gate = 1
	const patientN, impatientN = 2, 2
	// Alternating rounds of the two phases: throughput noise on a
	// shared box drifts on a sub-second scale, so each overload round
	// is paired with the at-capacity round right before it and the
	// goodput gate is the median of the per-pair ratios — one noisy
	// window can skew a pair, not the median.
	const rounds = 4
	if r := total % (2 * rounds * patientN); r != 0 {
		total += 2*rounds*patientN - r
	}
	perRound := total / rounds

	// The shed contract is graded in client-observed milliseconds.
	// With GOMAXPROCS=1 a finished response waits out the running
	// compute's preemption quantum before the client goroutine can
	// even stamp the clock, billing tens of ms of scheduler queueing
	// to every request; a few extra Ps let the short handlers and
	// client wakeups slip in beside the compute.
	if runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}

	// The two phases run on separate servers with separate caches, so
	// the patient clients can serve the exact bodies the at-capacity
	// phase ran: each paired round compares identical work, not two
	// same-size random draws — random ON sets of one size still differ
	// in minimization cost, and a pool that drew expensive functions
	// would bias every round of its phase the same way. The impatient
	// probes get their own pool of much smaller functions: the shed
	// decision only weighs the deadline, and a probe that carries an
	// expensive body would bill its decode-and-canonicalize cost to
	// the one core the admitted computes run on.
	bodies := makeBodies(total, nvars, onBase, 0)
	impBodies := makeBodies(total, nvars, max(onBase/8, 8), 0)

	// One connection per client goroutine: the default transport keeps
	// only two idle conns per host, and on a busy box every re-dial
	// waits for the accept loop to win a scheduler slice — noise that
	// would be billed to the shed latencies under measurement.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 64,
	}}

	var mu sync.Mutex
	var baseLats []time.Duration
	type attempt struct {
		class      string
		code       int
		d          time.Duration
		retryAfter bool
	}
	var attempts []attempt
	record := func(class string, code int, d time.Duration, hdr string) {
		mu.Lock()
		attempts = append(attempts, attempt{class, code, d, hdr != ""})
		mu.Unlock()
	}
	var baseElapsed, overElapsed time.Duration
	var baseRounds, overRounds []time.Duration
	var shedDeadline, queueP99 int64

	// Each phase keeps one server for all of its rounds: the overload
	// server's wait ring stays warm between rounds — round N>0 sheds
	// from its first probe instead of re-learning the queue — and no
	// round bills server or connection setup to its timed window. All
	// bodies are distinct, so the shared result cache never short-cuts
	// a compute.
	baseTS, _ := newServer(false, gate)
	defer baseTS.Close()
	overTS, overStatsz := newServer(false, gate)
	defer overTS.Close()

	// runBase is one at-capacity round: a single closed-loop client on
	// the one-slot baseline server, so every acquire takes the fast
	// path and the goodput is the pure compute ceiling.
	runBase := func(pool []string) {
		start := time.Now()
		for _, b := range pool {
			d, ok := post(client, baseTS.URL, b)
			if !ok {
				fmt.Fprintln(os.Stderr, "sppload: overload at-capacity request failed")
				os.Exit(1)
			}
			baseLats = append(baseLats, d)
		}
		baseRounds = append(baseRounds, time.Since(start))
		baseElapsed += baseRounds[len(baseRounds)-1]
	}

	// runOver is one 4x-capacity round: the patient clients drive the
	// round (it ends when their quota of successes lands), the
	// impatient clients probe until then.
	runOver := func(patientPool, impatientPool []string, patientMS, impatientMS int64) {
		var done atomic.Bool
		var patientWG, impatientWG sync.WaitGroup
		start := time.Now()
		for c := 0; c < patientN; c++ {
			share := patientPool[c*len(patientPool)/patientN : (c+1)*len(patientPool)/patientN]
			patientWG.Add(1)
			go func(share []string) {
				defer patientWG.Done()
				for _, b := range share {
					body := fmt.Sprintf(`{"timeout_ms":%d,%s`, patientMS, b[1:])
					for {
						d, code, hdr, _ := postOverload(client, overTS.URL, body)
						record("patient", code, d, hdr)
						if code == http.StatusOK {
							break
						}
						time.Sleep(5 * time.Millisecond)
					}
				}
			}(share)
		}
		for c := 0; c < impatientN; c++ {
			share := impatientPool[c*len(impatientPool)/impatientN : (c+1)*len(impatientPool)/impatientN]
			impatientWG.Add(1)
			go func(share []string) {
				defer impatientWG.Done()
				next := 0
				for !done.Load() && next < len(share) {
					body := fmt.Sprintf(`{"timeout_ms":%d,%s`, impatientMS, share[next][1:])
					d, code, hdr, resp := postOverload(client, overTS.URL, body)
					record("impatient", code, d, hdr)
					switch code {
					case http.StatusOK, http.StatusGatewayTimeout:
						// An impatient client gives its deadline one
						// try: served or timed out, it moves to fresh
						// work.
						next++
					case http.StatusTooManyRequests:
						// Back off for at least the Retry-After hint:
						// probes that return too eagerly bill their
						// handling to the core the admitted computes
						// need.
						pause := 75 * time.Millisecond
						if hint := time.Duration(resp.RetryAfterMS) * time.Millisecond; hint > pause {
							pause = min(hint, 150*time.Millisecond)
						}
						time.Sleep(pause)
					}
				}
			}(share)
		}
		patientWG.Wait()
		overRounds = append(overRounds, time.Since(start))
		overElapsed += overRounds[len(overRounds)-1]
		done.Store(true)
		impatientWG.Wait()
	}

	// The first at-capacity round calibrates the phase-2 budgets off
	// the measured compute cost. An impatient budget of half the
	// median compute cannot cover a queued wait — or even a fast-path
	// compute, so the rare impatient probe that does win a free slot
	// is cancelled quickly instead of holding it — and the predictor
	// (which sees the patient queue waits) must shed it; the patient
	// budget covers the whole queue many times over.
	runBase(bodies[:perRound])
	cal := append([]time.Duration(nil), baseLats...)
	sort.Slice(cal, func(i, j int) bool { return cal[i] < cal[j] })
	p50cal := cal[len(cal)/2]
	impatientMS := max(p50cal.Milliseconds()/2, 10)
	patientMS := max(p50cal.Milliseconds()*20, 250)

	for r := 0; r < rounds; r++ {
		if r > 0 {
			runBase(bodies[r*perRound : (r+1)*perRound])
		}
		runOver(bodies[r*perRound:(r+1)*perRound],
			impBodies[r*perRound:(r+1)*perRound],
			patientMS, impatientMS)
	}
	st := overStatsz()
	shedDeadline = st.ShedDeadline
	queueP99 = st.QueueWaitP99MS

	if os.Getenv("SPPLOAD_DEBUG_OVERLOAD") != "" {
		type key struct {
			class string
			code  int
		}
		agg := map[key]struct {
			n int
			d time.Duration
		}{}
		for _, a := range attempts {
			e := agg[key{a.class, a.code}]
			e.n++
			e.d += a.d
			agg[key{a.class, a.code}] = e
		}
		for k, e := range agg {
			fmt.Printf("DEBUG %-10s %d  n=%3d  mean %6.2fms\n", k.class, k.code, e.n, float64(e.d.Microseconds())/1000/float64(e.n))
		}
		for i := range overRounds {
			fmt.Printf("DEBUG round %d  base %6.1fms  over %6.1fms  ratio %.2f\n",
				i, float64(baseRounds[i].Microseconds())/1000, float64(overRounds[i].Microseconds())/1000,
				baseRounds[i].Seconds()/overRounds[i].Seconds())
		}
		fmt.Printf("DEBUG statsz shed=%d p99=%dms\n", shedDeadline, queueP99)
	}

	sort.Slice(baseLats, func(i, j int) bool { return baseLats[i] < baseLats[j] })
	p50 := baseLats[len(baseLats)/2]
	baseRes := overloadResult{
		Scenario: "overload", Phase: "at-capacity", Clients: gate, Gate: gate,
		Successes:    total,
		ElapsedMS:    float64(baseElapsed.Microseconds()) / 1000,
		GoodputRPS:   float64(total) / baseElapsed.Seconds(),
		SuccessP50MS: float64(p50.Microseconds()) / 1000,
	}

	var shedLats []time.Duration
	overRes := overloadResult{
		Scenario: "overload", Phase: "overload",
		Clients: patientN + impatientN, Gate: gate,
		ShedDeadline:   shedDeadline,
		QueueWaitP99MS: queueP99,
	}
	var okLats []time.Duration
	for _, a := range attempts {
		switch a.code {
		case http.StatusOK:
			overRes.Successes++
			okLats = append(okLats, a.d)
		case http.StatusTooManyRequests:
			overRes.Shed429++
			shedLats = append(shedLats, a.d)
			if a.retryAfter {
				overRes.ShedRetryAfterOK++
			}
		case http.StatusGatewayTimeout:
			overRes.Timeouts++
		}
	}
	// Goodput for the overload phase counts the heavy patient work
	// only — it is the same-size work the at-capacity phase ran, so
	// the ratio compares like with like. Impatient successes are tiny
	// probe functions that happened to catch a free slot; counting
	// them would let cheap computes pad the ratio.
	overRes.ElapsedMS = float64(overElapsed.Microseconds()) / 1000
	overRes.GoodputRPS = float64(total) / overElapsed.Seconds()
	pctMS := func(lats []time.Duration, p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		i := min(int(p*float64(len(lats))), len(lats)-1)
		return float64(lats[i].Microseconds()) / 1000
	}
	overRes.SuccessP50MS = pctMS(okLats, 0.50)
	overRes.ShedP50MS = pctMS(shedLats, 0.50)

	rep, err := loadServeReport(out)
	if err != nil {
		// No (usable) prior serve report: start a fresh one that
		// carries only the overload section.
		rep = &report{Schema: "spp-bench-serve/v1", Config: map[string]any{}, Summary: map[string]string{}}
	}
	rep.Generated = time.Now().UTC().Format(time.RFC3339)
	rep.Config["overload_total"] = total
	rep.Config["overload_gate"] = gate
	rep.Config["overload_patient_timeout_ms"] = patientMS
	rep.Config["overload_impatient_timeout_ms"] = impatientMS
	rep.Config["overload_quick"] = quick
	rep.Overload = []overloadResult{baseRes, overRes}

	// The gated ratio pairs each overload round with the at-capacity
	// round that ran just before it — both serve the same count of
	// same-size computes under the same slice of box noise — drops the
	// single worst pair, and compares the summed elapsed of the rest.
	// Trimming one pair absorbs a noise spike in one window (shared
	// boxes drift ±20% on a sub-second scale); a real admission-layer
	// regression depresses every pair and still fails the gate.
	worst, worstRatio := 0, math.Inf(1)
	for i := range overRounds {
		if r := baseRounds[i].Seconds() / overRounds[i].Seconds(); r < worstRatio {
			worst, worstRatio = i, r
		}
	}
	var keptBase, keptOver time.Duration
	for i := range overRounds {
		if i != worst {
			keptBase += baseRounds[i]
			keptOver += overRounds[i]
		}
	}
	ratio := keptBase.Seconds() / keptOver.Seconds()
	rep.Summary["overload_goodput"] = fmt.Sprintf("%.1f -> %.1f req/s (trimmed round ratio %.0f%%)",
		baseRes.GoodputRPS, overRes.GoodputRPS, 100*ratio)
	rep.Summary["overload_sheds"] = fmt.Sprintf("%d shed in p50 %.2fms, %d/%d with Retry-After, %d timeouts",
		overRes.Shed429, overRes.ShedP50MS, overRes.ShedRetryAfterOK, overRes.Shed429, overRes.Timeouts)
	for _, r := range rep.Overload {
		fmt.Printf("overload %-12s  %d clients/%d slots  %5.1f req/s  success p50 %7.2fms  shed %3d (p50 %5.2fms)  504s %d\n",
			r.Phase, r.Clients, r.Gate, r.GoodputRPS, r.SuccessP50MS, r.Shed429, r.ShedP50MS, r.Timeouts)
	}

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sppload:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "sppload:", err)
		os.Exit(1)
	}
	fmt.Printf("summary overload_goodput = %s\n", rep.Summary["overload_goodput"])
	fmt.Printf("summary overload_sheds = %s\n", rep.Summary["overload_sheds"])

	if assertFlat {
		failed := false
		if ratio < 0.90 {
			fmt.Fprintf(os.Stderr, "sppload: goodput-flat assertion failed: trimmed round ratio %.0f%% (overload %.1f vs at-capacity %.1f req/s, want >= 90%%)\n",
				100*ratio, overRes.GoodputRPS, baseRes.GoodputRPS)
			failed = true
		}
		if overRes.Shed429 == 0 {
			fmt.Fprintln(os.Stderr, "sppload: goodput-flat assertion failed: no requests were shed at 4x capacity")
			failed = true
		}
		if overRes.ShedRetryAfterOK != overRes.Shed429 {
			fmt.Fprintf(os.Stderr, "sppload: goodput-flat assertion failed: %d of %d 429s missing Retry-After\n",
				overRes.Shed429-overRes.ShedRetryAfterOK, overRes.Shed429)
			failed = true
		}
		if overRes.Shed429 > 0 && overRes.ShedP50MS >= 10 {
			fmt.Fprintf(os.Stderr, "sppload: goodput-flat assertion failed: shed p50 %.2fms (want < 10ms)\n", overRes.ShedP50MS)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
	}
}

// postOverload posts one minimize body and keeps the pieces the
// overload scenario grades sheds on: latency, status, the Retry-After
// header and the decoded envelope (whose RetryAfterMS is the backoff
// hint). Success bodies are discarded undecoded — parsing result
// payloads would bill client-side CPU to the phase under measurement.
func postOverload(client *http.Client, url, body string) (time.Duration, int, string, service.Response) {
	start := time.Now()
	resp, err := client.Post(url+"/v1/minimize", "application/json", strings.NewReader(body))
	if err != nil {
		return time.Since(start), 0, "", service.Response{}
	}
	defer resp.Body.Close()
	var r service.Response
	if resp.StatusCode != http.StatusOK {
		_ = json.NewDecoder(resp.Body).Decode(&r)
	}
	io.Copy(io.Discard, resp.Body)
	return time.Since(start), resp.StatusCode, resp.Header.Get("Retry-After"), r
}

// submitAndAwaitJob submits one job and long-polls it to a terminal
// state, returning the submit-to-done wall time.
func submitAndAwaitJob(client *http.Client, url, body string) (time.Duration, bool) {
	start := time.Now()
	resp, err := client.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return time.Since(start), true
	}
	var st service.JobStatus
	derr := json.NewDecoder(resp.Body).Decode(&st)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if derr != nil || resp.StatusCode != http.StatusAccepted || st.ID == "" {
		return time.Since(start), true
	}
	for {
		resp, err := client.Get(url + "/v1/jobs/" + st.ID + "?wait_ms=2000")
		if err != nil {
			return time.Since(start), true
		}
		var cur service.JobStatus
		derr := json.NewDecoder(resp.Body).Decode(&cur)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if derr != nil || resp.StatusCode != http.StatusOK {
			return time.Since(start), true
		}
		switch cur.State {
		case "done":
			return time.Since(start), false
		case "failed":
			return time.Since(start), true
		}
	}
}

// --- form-mix scenario --------------------------------------------------

// runFormMixScenario benchmarks the portfolio engine. Phase 1 runs
// every function through each explicit form on one server (each form
// salts its own cache key, so every request is a cold compute); phase
// 2 races the same functions with form=auto on a fresh server, so the
// races never reuse phase 1's entries. The auto cost must equal the
// per-function minimum over the explicit runs — a violated check fails
// the benchmark, because it falsifies the determinism contract rather
// than just slowing it down.
func runFormMixScenario(out string, keys, nvars, onBase, maxConcurrent int, quick bool) {
	forms := engine.Names()
	bodies := makeBodies(keys, nvars, onBase, 2)
	withForm := func(body, form string) string {
		return fmt.Sprintf(`{"form":%q,%s`, form, body[1:])
	}

	// Phase 1: explicit forms, serially for clean latencies.
	ts, _ := newServer(false, maxConcurrent)
	client := &http.Client{}
	lat := make(map[string][]time.Duration, len(forms))
	cost := make(map[string][]int, len(forms))
	explicitErrs := map[string]int{}
	for _, form := range forms {
		lat[form] = make([]time.Duration, keys)
		cost[form] = make([]int, keys)
		for k, body := range bodies {
			d, code, resp := postResp(client, ts.URL, withForm(body, form))
			if code != http.StatusOK {
				explicitErrs[form]++
				cost[form][k] = -1
				continue
			}
			lat[form][k], cost[form][k] = d, resp.Literals
		}
	}
	ts.Close()

	// Phase 2: auto races on a fresh server.
	ts, statsz := newServer(false, maxConcurrent)
	defer ts.Close()
	autoLat := make([]time.Duration, keys)
	autoCost := make([]int, keys)
	autoErrs, bestMatches := 0, 0
	var overheadSum float64
	var overheadN int
	for k, body := range bodies {
		d, code, resp := postResp(client, ts.URL, withForm(body, "auto"))
		if code != http.StatusOK {
			autoErrs++
			autoCost[k] = -1
			continue
		}
		autoLat[k], autoCost[k] = d, resp.Literals

		// The winner's own explicit latency is the overhead baseline:
		// racing should cost little more than having known the answer.
		best, bestForm := -1, ""
		for _, form := range forms {
			if c := cost[form][k]; c >= 0 && (best == -1 || c < best) {
				best, bestForm = c, form
			}
		}
		if best >= 0 && autoCost[k] == best {
			bestMatches++
		}
		if bestForm != "" && lat[bestForm][k] > 0 {
			overheadSum += float64(d) / float64(lat[bestForm][k])
			overheadN++
		}
	}
	st := statsz()

	rep, err := loadServeReport(out)
	if err != nil {
		rep = &report{Schema: "spp-bench-serve/v1", Config: map[string]any{}, Summary: map[string]string{}}
	}
	rep.Generated = time.Now().UTC().Format(time.RFC3339)
	rep.Config["form_mix_keys"] = keys
	rep.Config["form_mix_nvars"] = nvars
	rep.Config["form_mix_on_base"] = onBase
	rep.Config["form_mix_quick"] = quick
	rep.FormMix = nil

	row := func(form string, lats []time.Duration, costs []int, errs int) formMixResult {
		var ok []time.Duration
		var costSum, costN int
		for k := range lats {
			if costs[k] >= 0 {
				ok = append(ok, lats[k])
				costSum += costs[k]
				costN++
			}
		}
		sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
		r := formMixResult{Scenario: "form-mix", Form: form, Requests: len(lats), Errors: errs}
		if len(ok) > 0 {
			var total time.Duration
			for _, d := range ok {
				total += d
			}
			r.P50MS = float64(ok[len(ok)/2].Microseconds()) / 1000
			r.MeanMS = float64(total.Microseconds()) / 1000 / float64(len(ok))
			r.MeanLiterals = float64(costSum) / float64(costN)
		}
		return r
	}

	races := st.EngineRaces
	for _, form := range forms {
		r := row(form, lat[form], cost[form], explicitErrs[form])
		if races > 0 {
			r.WinRate = float64(st.EngineWinsByForm[form]) / float64(races)
		}
		rep.FormMix = append(rep.FormMix, r)
		fmt.Printf("form-mix %-5s  p50 %7.2fms  mean %7.2fms  #L %6.1f  wins %4.0f%%  errors %d\n",
			r.Form, r.P50MS, r.MeanMS, r.MeanLiterals, 100*r.WinRate, r.Errors)
	}
	auto := row("auto", autoLat, autoCost, autoErrs)
	auto.BestCostMatches = bestMatches
	if overheadN > 0 {
		auto.RaceOverhead = overheadSum / float64(overheadN)
	}
	rep.FormMix = append(rep.FormMix, auto)
	fmt.Printf("form-mix %-5s  p50 %7.2fms  mean %7.2fms  #L %6.1f  overhead %.2fx  best-cost %d/%d\n",
		auto.Form, auto.P50MS, auto.MeanMS, auto.MeanLiterals, auto.RaceOverhead, bestMatches, keys-autoErrs)

	rep.Summary["form_mix_race_overhead"] = fmt.Sprintf("%.2fx", auto.RaceOverhead)
	rep.Summary["form_mix_best_cost"] = fmt.Sprintf("%d/%d", bestMatches, keys-autoErrs)
	var winParts []string
	for _, form := range forms {
		if races > 0 {
			winParts = append(winParts, fmt.Sprintf("%s %.0f%%", form, 100*float64(st.EngineWinsByForm[form])/float64(races)))
		}
	}
	rep.Summary["form_mix_wins"] = strings.Join(winParts, ", ")

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sppload:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "sppload:", err)
		os.Exit(1)
	}
	for _, k := range []string{"form_mix_wins", "form_mix_race_overhead", "form_mix_best_cost"} {
		fmt.Printf("summary %s = %s\n", k, rep.Summary[k])
	}
	if bestMatches != keys-autoErrs {
		fmt.Fprintf(os.Stderr, "sppload: form-mix: %d/%d auto races missed the best explicit cost\n",
			keys-autoErrs-bestMatches, keys-autoErrs)
		os.Exit(1)
	}
	if autoErrs > 0 {
		fmt.Fprintf(os.Stderr, "sppload: form-mix: %d auto races failed\n", autoErrs)
		os.Exit(1)
	}
}

// --- edit-loop scenario -------------------------------------------------

type editResult struct {
	Scenario string `json:"scenario"`
	Mode     string `json:"mode"`
	Clients  int    `json:"clients"`
	// Edits is the total number of edit steps across all clients (the
	// initial full submissions are excluded from the latencies).
	Edits int `json:"edits"`
	EditK int `json:"edit_k"`

	ElapsedMS float64 `json:"elapsed_ms"`
	EditsPerS float64 `json:"edits_per_s"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`

	DeltaWarm     int64 `json:"delta_warm"`
	DeltaCold     int64 `json:"delta_cold_fallback"`
	DeltaBaseMiss int64 `json:"delta_base_miss"`
	// DeltaCoverReused / DeltaCoverResolved split the warm resumes by
	// covering outcome: served entirely from the previous cover snapshot
	// vs. partially re-solved.
	DeltaCoverReused   int64 `json:"delta_cover_reused"`
	DeltaCoverResolved int64 `json:"delta_cover_resolved"`
	CacheBytes         int64 `json:"cache_bytes"`
	Errors             int64 `json:"errors"`

	// CoverMSMean is the mean covering-phase wall time ("cover.*" phases
	// summed) per edit-phase engine run: delta resumes in warm mode, full
	// re-minimizations in cold mode. Seed submissions are excluded.
	CoverMSMean float64 `json:"cover_ms_mean"`
	// CoverRuns is how many engine runs CoverMSMean averages over.
	CoverRuns int `json:"cover_runs"`
}

type deltaReport struct {
	Schema    string            `json:"schema"`
	Generated string            `json:"generated"`
	Config    map[string]any    `json:"config"`
	Results   []editResult      `json:"results"`
	Summary   map[string]string `json:"summary"`
}

func runEditLoopScenario(out string, clients, edits, editK, nvars, onBase int, quick, assertCoverSplit bool, baseline string) {
	onSets := makeOnSets(clients, nvars, onBase, 2)
	rep := deltaReport{
		Schema:    "spp-bench-delta/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Config: map[string]any{
			"clients": clients,
			"edits":   edits,
			"edit_k":  editK,
			"nvars":   nvars,
			"on_base": onBase,
			"quick":   quick,
		},
		Summary: map[string]string{},
	}

	for _, warm := range []bool{false, true} {
		res := runEditLoop(warm, clients, edits, editK, nvars, onSets)
		rep.Results = append(rep.Results, res)
		fmt.Printf("edit-loop %-5s  %6.1f edits/s  p50 %6.2fms  p99 %7.2fms  cover %7.2fms/run  warm %3d (replay %d)  fallback %d  base-miss %d\n",
			res.Mode, res.EditsPerS, res.P50MS, res.P99MS, res.CoverMSMean,
			res.DeltaWarm, res.DeltaCoverReused, res.DeltaCold, res.DeltaBaseMiss)
	}

	cold, warm := &rep.Results[0], &rep.Results[1]
	if warm.ElapsedMS > 0 {
		rep.Summary["edit_loop_speedup"] = fmt.Sprintf("%.2fx", cold.ElapsedMS/warm.ElapsedMS)
		rep.Summary["edit_loop_p50"] = fmt.Sprintf("%.2fms -> %.2fms", cold.P50MS, warm.P50MS)
	}
	if cold.CoverMSMean > 0 && warm.CoverMSMean > 0 {
		rep.Summary["edit_loop_cover_speedup"] = fmt.Sprintf("%.2fx", cold.CoverMSMean/warm.CoverMSMean)
		rep.Summary["edit_loop_cover_split"] = fmt.Sprintf("%.3fms -> %.3fms per run", cold.CoverMSMean, warm.CoverMSMean)
	}

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sppload:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "sppload:", err)
		os.Exit(1)
	}
	for k, v := range rep.Summary {
		fmt.Printf("summary %s = %s\n", k, v)
	}
	if assertCoverSplit {
		// Regression gate: a warm resume must spend strictly less time in
		// the covering phases than a cold run of the same edit.
		switch {
		case cold.CoverMSMean <= 0 || warm.CoverMSMean <= 0:
			fmt.Fprintf(os.Stderr, "sppload: cover-split assertion failed: missing cover phase data (cold %.3fms over %d runs, warm %.3fms over %d runs)\n",
				cold.CoverMSMean, cold.CoverRuns, warm.CoverMSMean, warm.CoverRuns)
			os.Exit(1)
		case warm.CoverMSMean >= cold.CoverMSMean:
			fmt.Fprintf(os.Stderr, "sppload: cover-split assertion failed: warm cover %.3fms/run >= cold %.3fms/run\n",
				warm.CoverMSMean, cold.CoverMSMean)
			os.Exit(1)
		}
		if baseline != "" {
			// Stronger gate against the checked-in numbers: the current
			// covering speedup may not collapse below a third of the
			// recorded one (3x slack absorbs CI machine noise while still
			// catching a real regression of the incremental path).
			want, err := loadDeltaCoverSpeedup(baseline)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sppload: baseline:", err)
				os.Exit(1)
			}
			got := cold.CoverMSMean / warm.CoverMSMean
			if floor := want / 3; got < floor {
				fmt.Fprintf(os.Stderr, "sppload: cover-split assertion failed: speedup %.2fx below floor %.2fx (baseline %.2fx / 3)\n",
					got, floor, want)
				os.Exit(1)
			}
		}
	}
}

// loadDeltaCoverSpeedup reads the cold/warm covering speedup out of a
// checked-in spp-bench-delta/v1 report.
func loadDeltaCoverSpeedup(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rep deltaReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return 0, err
	}
	if rep.Schema != "spp-bench-delta/v1" {
		return 0, fmt.Errorf("%s: schema %q, want spp-bench-delta/v1", path, rep.Schema)
	}
	var cold, warm *editResult
	for i := range rep.Results {
		switch rep.Results[i].Mode {
		case "cold":
			cold = &rep.Results[i]
		case "warm":
			warm = &rep.Results[i]
		}
	}
	if cold == nil || warm == nil || warm.CoverMSMean <= 0 {
		return 0, fmt.Errorf("%s: no usable cold/warm cover data", path)
	}
	return cold.CoverMSMean / warm.CoverMSMean, nil
}

// coverSeconds sums the wall time of the covering phases ("cover.*")
// in one run report.
func coverSeconds(rep *stats.Report) float64 {
	var s float64
	for _, p := range rep.Phases {
		if strings.HasPrefix(p.Phase, "cover.") {
			s += p.Seconds
		}
	}
	return s
}

// editCoverStats aggregates the per-run covering time over the
// edit-phase engine runs in the /statsz history: delta resumes in warm
// mode, everything after the per-client seed submissions in cold mode.
func editCoverStats(st service.Statsz, warm bool, clients int) (runs int, meanMS float64) {
	if st.Runs == nil {
		return 0, 0
	}
	var total float64
	for i, rep := range st.Runs.Reports {
		if warm {
			if !strings.HasSuffix(rep.Name, "/delta") {
				continue
			}
		} else if i < clients { // seed submissions, untimed setup
			continue
		}
		total += coverSeconds(rep)
		runs++
	}
	if runs == 0 {
		return 0, 0
	}
	return runs, total * 1000 / float64(runs)
}

// runEditLoop walks every client's function through `edits` random
// steps of editK minterm changes. Both modes replay identical edit
// scripts (same per-client seeds); only the request shape differs:
// warm mode chains deltas on base_key, cold mode re-submits the full
// ON set. Only the edit steps are timed.
func runEditLoop(warm bool, clients, edits, editK, nvars int, onSets [][]int) editResult {
	cfg := service.Config{
		Core:          harness.DefaultConfig(),
		MaxConcurrent: clients,
		CacheSize:     4096,
		// Big enough for every client's current warm chain head with
		// room to spare; old generations get evicted, keeping the live
		// heap (and so GC pressure) bounded during long walks.
		CacheBytes: 512 << 20,
		WarmCache:  warm,
		// Retain every engine run of the scenario (seeds + edits + a few
		// cold fallbacks) so the cover-phase split can be aggregated from
		// the /statsz history afterwards.
		HistorySize: clients*(edits+2) + 8,
	}
	srv := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{}

	mode := "cold"
	if warm {
		mode = "warm"
	}

	var mu sync.Mutex
	var lats []time.Duration
	var errs int64
	// All clients submit their base function up front (untimed in both
	// modes — it is setup, not part of the edit loop), then rendezvous
	// so the timer covers exactly the edit phase.
	var seeded sync.WaitGroup
	seeded.Add(clients)
	begin := make(chan struct{})
	var start time.Time
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c + 1)))
			on := make(map[int]bool, len(onSets[c]))
			for _, p := range onSets[c] {
				on[p] = true
			}
			space := 1 << nvars

			// Initial full submission; in warm mode it seeds the warm
			// state and yields the base_key to chain on.
			_, code, resp := postResp(client, ts.URL, fullBody(nvars, on))
			seeded.Done()
			if code != http.StatusOK {
				mu.Lock()
				errs++
				mu.Unlock()
				return
			}
			base := resp.BaseKey
			<-begin

			for i := 0; i < edits; i++ {
				var adds, removes []int
				for j := 0; j < editK; j++ {
					if j%2 == 0 { // add a random OFF point
						for {
							p := rng.Intn(space)
							if !on[p] {
								on[p] = true
								adds = append(adds, p)
								break
							}
						}
					} else { // remove a random ON point
						var pts []int
						for p := range on {
							pts = append(pts, p)
						}
						sort.Ints(pts)
						p := pts[rng.Intn(len(pts))]
						delete(on, p)
						removes = append(removes, p)
					}
				}

				var body string
				if warm {
					body = deltaBody(base, adds, removes)
				} else {
					body = fullBody(nvars, on)
				}
				d, code, resp := postResp(client, ts.URL, body)
				if warm && code == http.StatusConflict {
					// Base evicted: fall back to a full submission and
					// resume chaining from its key.
					d2, code2, resp2 := postResp(client, ts.URL, fullBody(nvars, on))
					d, code, resp = d+d2, code2, resp2
				}
				mu.Lock()
				lats = append(lats, d)
				if code != http.StatusOK {
					errs++
				}
				mu.Unlock()
				if warm && resp.BaseKey != "" {
					base = resp.BaseKey
				}
			}
		}(c)
	}
	seeded.Wait()
	start = time.Now()
	close(begin)
	wg.Wait()
	elapsed := time.Since(start)

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var st service.Statsz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		panic(err)
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := min(int(p*float64(len(lats))), len(lats)-1)
		return float64(lats[i].Microseconds()) / 1000
	}
	coverRuns, coverMean := editCoverStats(st, warm, clients)
	debugPhaseMeans(st, warm, clients, mode)
	return editResult{
		Scenario:           "edit-loop",
		Mode:               mode,
		Clients:            clients,
		Edits:              len(lats),
		EditK:              editK,
		ElapsedMS:          float64(elapsed.Microseconds()) / 1000,
		EditsPerS:          float64(len(lats)) / elapsed.Seconds(),
		P50MS:              pct(0.50),
		P99MS:              pct(0.99),
		DeltaWarm:          st.DeltaWarm,
		DeltaCold:          st.DeltaCold,
		DeltaBaseMiss:      st.DeltaBaseMiss,
		DeltaCoverReused:   st.DeltaCoverReused,
		DeltaCoverResolved: st.DeltaCoverResolved,
		CacheBytes:         st.CacheBytes,
		Errors:             errs + st.Errors,
		CoverMSMean:        coverMean,
		CoverRuns:          coverRuns,
	}
}

// makeOnSets builds count pairwise P-inequivalent pseudo-random ON
// sets (distinct sizes), as int slices, mirroring makeBodies.
func makeOnSets(count, nvars, onBase, onStep int) [][]int {
	rng := rand.New(rand.NewSource(7))
	space := 1 << nvars
	sets := make([][]int, count)
	for i := range sets {
		size := onBase + i*onStep
		if size > space/2 {
			size = space / 2
		}
		seen := make(map[int]bool)
		for len(sets[i]) < size {
			p := rng.Intn(space)
			if !seen[p] {
				seen[p] = true
				sets[i] = append(sets[i], p)
			}
		}
	}
	return sets
}

func fullBody(nvars int, on map[int]bool) string {
	pts := make([]int, 0, len(on))
	for p := range on {
		pts = append(pts, p)
	}
	sort.Ints(pts)
	strs := make([]string, len(pts))
	for i, p := range pts {
		strs[i] = fmt.Sprint(p)
	}
	return fmt.Sprintf(`{"n":%d,"on":[%s]}`, nvars, strings.Join(strs, ","))
}

func deltaBody(base string, adds, removes []int) string {
	j := func(pts []int) string {
		strs := make([]string, len(pts))
		for i, p := range pts {
			strs[i] = fmt.Sprint(p)
		}
		return "[" + strings.Join(strs, ",") + "]"
	}
	return fmt.Sprintf(`{"base":%q,"add":%s,"remove":%s}`, base, j(adds), j(removes))
}

// postResp posts a body and decodes the JSON response envelope.
func postResp(client *http.Client, url, body string) (time.Duration, int, service.Response) {
	start := time.Now()
	resp, err := client.Post(url+"/v1/minimize", "application/json", strings.NewReader(body))
	if err != nil {
		return time.Since(start), 0, service.Response{}
	}
	defer resp.Body.Close()
	var r service.Response
	_ = json.NewDecoder(resp.Body).Decode(&r)
	io.Copy(io.Discard, resp.Body)
	return time.Since(start), resp.StatusCode, r
}

// debugPhaseMeans prints per-phase mean milliseconds over the selected
// edit-phase runs when SPPLOAD_DEBUG_PHASES is set.
func debugPhaseMeans(st service.Statsz, warm bool, clients int, mode string) {
	if os.Getenv("SPPLOAD_DEBUG_PHASES") == "" || st.Runs == nil {
		return
	}
	sums := map[string]float64{}
	runs := 0
	for i, rep := range st.Runs.Reports {
		if warm {
			if !strings.HasSuffix(rep.Name, "/delta") {
				continue
			}
		} else if i < clients {
			continue
		}
		runs++
		for _, p := range rep.Phases {
			sums[p.Phase] += p.Seconds
		}
	}
	fmt.Printf("DEBUG %s: %d runs\n", mode, runs)
	for k, v := range sums {
		fmt.Printf("DEBUG   %-16s %8.3f ms/run\n", k, v*1000/float64(runs))
	}
}
