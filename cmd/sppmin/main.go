// Command sppmin minimizes a Boolean function into an SPP (Sum of
// Pseudoproducts) form, the three-level AND-of-EXORs-then-OR network of
// the DAC'01 paper.
//
//	sppmin [flags] design.pla        # minimize a PLA file
//	sppmin [flags] -bench name       # minimize a built-in benchmark
//
// By default every output is minimized exactly (Algorithm 2); -k
// switches to the SPP_k heuristic, and -sp prints the two-level SP form
// instead. -show prints the minimized expressions.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro"
	"repro/internal/bench"
	"repro/internal/bfunc"
	"repro/internal/stats"
)

func main() {
	var (
		benchName = flag.String("bench", "", "minimize a built-in benchmark instead of a PLA file")
		output    = flag.Int("output", -1, "minimize a single output (default: all)")
		k         = flag.Int("k", -1, "SPP_k heuristic parameter (-1 = exact algorithm)")
		doSP      = flag.Bool("sp", false, "also minimize as a two-level SP form")
		doRM      = flag.Bool("rm", false, "also minimize as a fixed-polarity Reed-Muller form")
		verilog   = flag.String("verilog", "", "write the minimized design as structural Verilog to this file")
		blif      = flag.String("blif", "", "write the minimized design as BLIF to this file")
		show      = flag.Bool("show", false, "print the minimized expressions")
		budget    = flag.Duration("budget", 2*time.Minute, "per-output time budget")
		exactCov  = flag.Bool("exact-cover", false, "use exact (branch-and-bound) covering")
		share     = flag.Bool("share", false, "jointly minimize all outputs with a shared pseudoproduct pool")
		workers   = flag.Int("workers", 0, "parallel workers for EPPP construction (0 = all CPUs, 1 = serial)")
		coverWork = flag.Int("cover-workers", 0, "parallel workers for the covering phase (0 = follow -workers, 1 = serial)")
		maxNodes  = flag.Int64("cover-max-nodes", 0, "node budget for exact covering (0 = solver default)")
		statsPath = flag.String("stats", "", "write a machine-readable run report (JSON) to this file, - for stdout")
		verbose   = flag.Bool("v", false, "print a per-phase timing and counter summary to stderr")
	)
	flag.Parse()

	design, err := loadDesign(*benchName, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sppmin:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d inputs, %d outputs\n", design.Name(), design.Inputs(), design.NOutputs())

	opts := &spp.Options{
		MaxDuration:   *budget,
		ExactCover:    *exactCov,
		Workers:       *workers,
		CoverWorkers:  *coverWork,
		MaxCoverNodes: *maxNodes,
	}
	var rec *spp.StatsRecorder
	if *statsPath != "" || *verbose {
		rec = spp.NewLabeledStatsRecorder()
		opts.Stats = rec
	}
	emitStats := func() {
		if rec == nil {
			return
		}
		rep := rec.Report(design.Name())
		rep.Workers = *workers
		rep.CoverWorkers = *coverWork
		if *verbose {
			rep.Summary(os.Stderr)
		}
		if *statsPath == "" {
			return
		}
		if *statsPath == "-" {
			if err := rep.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "sppmin:", err)
				os.Exit(1)
			}
			return
		}
		if err := writeFile(*statsPath, rep.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "sppmin:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *statsPath)
	}
	if *share {
		shared, err := spp.MinimizeShared(design, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sppmin:", err)
			os.Exit(1)
		}
		stopVerify := rec.Phase(stats.PhaseVerify)
		err = shared.Verify()
		stopVerify()
		if err != nil {
			fmt.Fprintln(os.Stderr, "sppmin: internal verification failed:", err)
			os.Exit(1)
		}
		for o := 0; o < design.NOutputs(); o++ {
			form := shared.Output(o)
			fmt.Printf("  out %2d: %3d literals, %2d pseudoproducts", o, form.Literals(), form.NumTerms())
			if *show {
				fmt.Printf("  %v", form)
			}
			fmt.Println()
		}
		fmt.Printf("shared pool: %d pseudoproducts, %d literals paid once (%d if stacked per-output)\n",
			shared.NumTerms(), shared.SharedLiterals(), shared.SeparateLiterals())
		emitStats()
		return
	}
	first, last := 0, design.NOutputs()-1
	if *output >= 0 {
		if *output > last {
			fmt.Fprintf(os.Stderr, "sppmin: output %d out of range [0,%d]\n", *output, last)
			os.Exit(1)
		}
		first, last = *output, *output
	}

	totalL, totalPP, totalSPL, totalRML := 0, 0, 0, 0
	for o := first; o <= last; o++ {
		f := design.Output(o)
		var res *spp.Result
		var err error
		if *k >= 0 {
			res, err = spp.MinimizeK(f, *k, opts)
		} else {
			res, err = spp.Minimize(f, opts)
		}
		if err != nil {
			fmt.Printf("  out %2d: %v\n", o, err)
			continue
		}
		stopVerify := rec.Phase(stats.PhaseVerify)
		err = res.Form.Verify(f)
		stopVerify()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sppmin: internal verification failed on output %d: %v\n", o, err)
			os.Exit(1)
		}
		totalL += res.Form.Literals()
		totalPP += res.Form.NumTerms()
		line := fmt.Sprintf("  out %2d: SPP %3d literals, %2d pseudoproducts, %d candidates (%v build, %v cover)",
			o, res.Form.Literals(), res.Form.NumTerms(), res.EPPPCount,
			res.BuildTime.Round(time.Millisecond), res.CoverTime.Round(time.Millisecond))
		if *doSP {
			sr := spp.MinimizeSP(f, opts)
			totalSPL += sr.Literals
			line += fmt.Sprintf(" | SP %3d literals, %2d products", sr.Literals, sr.NumTerms)
		}
		if *doRM {
			rm := spp.MinimizeRM(f)
			totalRML += rm.Literals
			line += fmt.Sprintf(" | FPRM %3d literals, %2d terms", rm.Literals, rm.NumTerms)
		}
		fmt.Println(line)
		if *show {
			fmt.Printf("          %v\n", res.Form)
		}
	}
	summary := fmt.Sprintf("total: SPP %d literals, %d pseudoproducts", totalL, totalPP)
	if *doSP {
		summary += fmt.Sprintf(" | SP %d literals (ratio %.2f)", totalSPL, ratio(totalSPL, totalL))
	}
	if *doRM {
		summary += fmt.Sprintf(" | FPRM %d literals", totalRML)
	}
	fmt.Println(summary)

	if *verilog != "" || *blif != "" {
		// Re-minimize through the design API (parallel across outputs)
		// so the export includes every requested output.
		dr := spp.MinimizeDesign(design, *k, opts)
		if err := dr.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "sppmin: export skipped failed outputs:", err)
		}
		if *verilog != "" {
			if err := writeFile(*verilog, dr.WriteVerilog); err != nil {
				fmt.Fprintln(os.Stderr, "sppmin:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", *verilog)
		}
		if *blif != "" {
			if err := writeFile(*blif, dr.WriteBLIF); err != nil {
				fmt.Fprintln(os.Stderr, "sppmin:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", *blif)
		}
	}
	emitStats()
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func loadDesign(benchName string, args []string) (*spp.Design, error) {
	switch {
	case benchName != "":
		m, err := bench.Load(benchName)
		if err != nil {
			return nil, err
		}
		// Round-trip through the PLA writer: the public API consumes
		// PLA text, and this doubles as a live test of the writer.
		var buf bytes.Buffer
		if err := bfunc.WritePLA(&buf, m); err != nil {
			return nil, err
		}
		return spp.ParsePLA(&buf, benchName)
	case len(args) == 1:
		f, err := os.Open(args[0])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return spp.ParsePLA(f, args[0])
	default:
		return nil, fmt.Errorf("usage: sppmin [flags] design.pla | sppmin -bench name (see -h)")
	}
}
