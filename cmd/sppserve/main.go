// Command sppserve runs the SPP minimization HTTP service: a JSON API
// over the exact/naive/SPP_k engines with a canonical-function result
// cache, bounded concurrency, per-request deadlines and an spp-stats/v1
// observability endpoint (see internal/service and ARCHITECTURE.md).
//
//	sppserve -addr 127.0.0.1:8080
//	curl -s localhost:8080/healthz
//	curl -s -d '{"bench":"adr4"}' localhost:8080/v1/minimize
//	curl -s -d '{"bench":"adr4","form":"auto"}' localhost:8080/v1/minimize
//	curl -s -d '{"requests":[{"n":3,"on":[1,2,4,7]},{"bench":"life"}]}' \
//	    localhost:8080/v1/minimize
//	curl -s -d '{"base":"<base_key>","add":[5],"remove":[24]}' \
//	    localhost:8080/v1/minimize          # with -warm-cache
//	curl -s localhost:8080/statsz
//
// Minimization bounds share flag names with spptables (-budget,
// -workers, ...). On SIGINT/SIGTERM the server drains in-flight
// requests (refusing new ones with 503) and flushes a final
// spp-stats-run/v1 report of the recent runs to -stats.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		maxConc     = flag.Int("max-concurrent", 2, "admission gate width: engine computes in flight at once (cache hits and coalesced waiters are not gated)")
		batchWork   = flag.Int("batch-workers", 4, "batch items processed concurrently per request (1 = serial)")
		cacheSize   = flag.Int("cache-size", 256, "canonical-function result cache capacity (entries)")
		cacheBytes  = flag.Int64("cache-bytes", 256<<20, "result cache capacity in payload bytes (warm states charge their real footprint; 0 = unbounded)")
		cacheShards = flag.Int("cache-shards", 0, "result cache shard count, rounded to a power of two (0 = automatic)")
		warmCache   = flag.Bool("warm-cache", false, "retain warm EPPP state for exact runs and accept delta requests against it")
		maxDirty    = flag.Float64("delta-max-dirty", 0.25, "delta requests whose churn exceeds this fraction of the base care set fall back to a cold run")
		defTimeout  = flag.Duration("default-timeout", 30*time.Second, "per-request deadline when the request sets none")
		maxTimeout  = flag.Duration("max-timeout", 2*time.Minute, "cap on request-supplied timeouts")
		historySize = flag.Int("history", 32, "recent cold runs kept for /statsz")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight requests")
		statsPath   = flag.String("stats", "", "write the final run report (JSON) here on shutdown, - for stdout")
		maxBody     = flag.Int64("max-body", 8<<20, "request body size cap in bytes")
		maxBatch    = flag.Int("max-batch", 64, "max requests per batch envelope")
		jobsDir     = flag.String("jobs-dir", "", "enable the async job tier: journal accepted jobs here (POST /v1/jobs), replay on startup")
		jobWorkers  = flag.Int("job-workers", 2, "async job worker pool size (each compute still takes an admission slot)")
		jobRetries  = flag.Int("job-retries", 2, "lease-expiry retries before a job is parked as failed")
		jobLease    = flag.Duration("job-lease", 30*time.Second, "job lease TTL; a worker that misses heartbeats this long forfeits the job")
		jobTimeout  = flag.Duration("job-timeout", 10*time.Minute, "cap on a single async job compute")
		jobResTTL   = flag.Duration("job-result-ttl", 15*time.Minute, "keep a trimmed terminal job's outcome queryable this long (negative disables)")
		forms       = flag.String("forms", "", "comma-separated form backends to enable (spp,sop,esop,dsop; empty = all); see docs/forms.md")
		ftdcDir     = flag.String("ftdc-dir", "", "enable the telemetry ring: sample service counters into crash-tolerant segments here (GET /statsz/history)")
		ftdcIntvl   = flag.Duration("ftdc-interval", time.Second, "telemetry sampling period")
		quotaRPS    = flag.Float64("quota-rps", 0, "per-tenant admission quota in requests/sec (X-Tenant header; 0 = off)")
		quotaBurst  = flag.Int("quota-burst", 0, "per-tenant quota bucket depth (0 = ceil of -quota-rps)")
	)
	core := harness.DefaultConfig()
	core.BindFlags(flag.CommandLine)
	flag.Parse()

	var formList []string
	if *forms != "" {
		formList = strings.Split(*forms, ",")
		for i := range formList {
			formList[i] = strings.TrimSpace(formList[i])
		}
		if _, err := engine.NewRegistry(formList...); err != nil {
			fmt.Fprintln(os.Stderr, "sppserve:", err)
			os.Exit(1)
		}
	}

	svc := service.New(service.Config{
		Core:           core,
		MaxConcurrent:  *maxConc,
		BatchWorkers:   *batchWork,
		CacheSize:      *cacheSize,
		CacheBytes:     *cacheBytes,
		CacheShards:    *cacheShards,
		WarmCache:      *warmCache,
		DeltaMaxDirty:  *maxDirty,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		HistorySize:    *historySize,
		MaxBodyBytes:   *maxBody,
		MaxBatch:       *maxBatch,
		JobsDir:        *jobsDir,
		JobWorkers:     *jobWorkers,
		JobRetries:     *jobRetries,
		JobLeaseTTL:    *jobLease,
		JobTimeout:     *jobTimeout,
		JobResultTTL:   *jobResTTL,
		Forms:          formList,
		FTDCDir:        *ftdcDir,
		FTDCInterval:   *ftdcIntvl,
		QuotaRPS:       *quotaRPS,
		QuotaBurst:     *quotaBurst,
	})

	if *ftdcDir != "" {
		if err := svc.StartTelemetry(); err != nil {
			fmt.Fprintln(os.Stderr, "sppserve: telemetry:", err)
			os.Exit(1)
		}
		fmt.Printf("sppserve: telemetry enabled dir=%s interval=%s\n", *ftdcDir, *ftdcIntvl)
	}

	if *jobsDir != "" {
		replay, err := svc.StartJobs()
		if err != nil {
			fmt.Fprintln(os.Stderr, "sppserve: jobs:", err)
			os.Exit(1)
		}
		fmt.Printf("sppserve: jobs enabled dir=%s workers=%d replayed=%d requeued=%d\n",
			*jobsDir, *jobWorkers, len(replay.Completed), replay.Requeued)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sppserve:", err)
		os.Exit(1)
	}
	fmt.Printf("sppserve: listening on %s\n", ln.Addr())

	// Header/read deadlines cap slowloris-style connections; the body
	// itself is already size-capped by the service (-max-body).
	// ReadTimeout covers only reading the request, not the handler, so
	// it can be far shorter than -max-timeout; no WriteTimeout because
	// responses may legitimately take up to -max-timeout to compute.
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "sppserve:", err)
		os.Exit(1)
	}
	stop()

	fmt.Fprintln(os.Stderr, "sppserve: draining")
	svc.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "sppserve: shutdown:", err)
	}
	if *jobsDir != "" {
		// Stop workers after the HTTP drain so late submissions either
		// got their 503 or made it into the journal. Interrupted jobs
		// are released, not failed: the journal re-enqueues them on the
		// next start.
		if err := svc.StopJobs(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "sppserve: jobs shutdown:", err)
		}
	}
	if *ftdcDir != "" {
		svc.StopTelemetry()
	}

	if *statsPath != "" {
		rr := svc.FinalReport()
		out := os.Stdout
		if *statsPath != "-" {
			f, err := os.Create(*statsPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sppserve:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := rr.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, "sppserve:", err)
			os.Exit(1)
		}
		if *statsPath != "-" {
			fmt.Fprintln(os.Stderr, "sppserve: wrote", *statsPath)
		}
	}
}
