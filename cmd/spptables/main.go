// Command spptables regenerates the evaluation tables and figures of
// the DAC'01 SPP paper on the built-in benchmark registry (DESIGN.md
// maps each to its experiment id):
//
//	spptables -table 1            # Table 1: SP vs SPP
//	spptables -table 2            # Table 2: naive [5] vs Algorithm 2
//	spptables -table 3            # Table 3: SPP_0 vs exact
//	spptables -fig 34             # Figure 3/4 series for dist and f51m
//	spptables -all                # everything
//
// Flags -funcs, -budget, -naive-budget and -maxk scale the run; exceeded
// budgets are printed as the paper's "*" (did not terminate) entries.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
	"repro/internal/harness"
	"repro/internal/stats"
)

func main() {
	var (
		table     = flag.Int("table", 0, "table to regenerate (1, 2 or 3)")
		fig       = flag.String("fig", "", "figure series to regenerate (\"34\")")
		all       = flag.Bool("all", false, "regenerate every table and figure")
		funcs     = flag.String("funcs", "", "comma-separated benchmark subset (default: the paper's list)")
		maxK      = flag.Int("maxk", -1, "cap on k for the figure sweeps (-1 = up to n-1)")
		compare   = flag.Bool("compare", false, "run the extension comparison: SP vs Reed-Muller vs SPP")
		csvDir    = flag.String("csv", "", "also write results as CSV files into this directory")
		list      = flag.Bool("list", false, "list available benchmarks and exit")
		statsPath = flag.String("stats", "", "write per-row run reports (JSON) to this file, - for stdout")
		verbose   = flag.Bool("v", false, "print per-row phase/counter summaries to stderr")
	)
	cfg := harness.DefaultConfig()
	cfg.BindFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, name := range bench.Names() {
			info, _ := bench.Lookup(name)
			fmt.Printf("%-10s %2d in / %2d out  tier %d  %s\n",
				name, info.Inputs, info.Outputs, info.Tier, info.Desc)
		}
		return
	}

	var reports []*stats.Report
	collect := func(reps ...*stats.Report) {
		for _, rep := range reps {
			if rep == nil {
				continue
			}
			reports = append(reports, rep)
			if *verbose {
				rep.Summary(os.Stderr)
			}
		}
	}

	pick := func(def []string) []string {
		if *funcs == "" {
			return def
		}
		var out []string
		for _, f := range strings.Split(*funcs, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			if _, ok := bench.Lookup(f); !ok {
				fmt.Fprintf(os.Stderr, "spptables: unknown benchmark %q\n", f)
				os.Exit(2)
			}
			out = append(out, f)
		}
		return out
	}

	writeCSV := func(name string, write func(w *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "spptables:", err)
			os.Exit(1)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "spptables:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := write(f); err != nil {
			fmt.Fprintln(os.Stderr, "spptables:", err)
			os.Exit(1)
		}
	}

	ran := false
	if *all || *table == 1 {
		rows := harness.Table1(os.Stdout, pick(harness.Table1Functions), cfg)
		writeCSV("table1.csv", func(w *os.File) error { return harness.WriteTable1CSV(w, rows) })
		for _, r := range rows {
			collect(r.Stats)
		}
		fmt.Println()
		ran = true
	}
	if *all || *table == 2 {
		rows := harness.Table2(os.Stdout, harness.Table2Cases, cfg)
		writeCSV("table2.csv", func(w *os.File) error { return harness.WriteTable2CSV(w, rows) })
		for _, r := range rows {
			collect(r.TrieStats, r.NaiveStats)
		}
		fmt.Println()
		ran = true
	}
	if *all || *table == 3 {
		rows := harness.Table3(os.Stdout, pick(harness.Table3Functions), cfg)
		writeCSV("table3.csv", func(w *os.File) error { return harness.WriteTable3CSV(w, rows) })
		for _, r := range rows {
			collect(r.Stats)
		}
		fmt.Println()
		ran = true
	}
	if *all || *fig == "34" || *fig == "3" || *fig == "4" {
		sweeps := harness.Figures34(os.Stdout, pick([]string{"dist", "f51m"}), *maxK, cfg)
		writeCSV("figures34.csv", func(w *os.File) error { return harness.WriteSweepCSV(w, sweeps) })
		fmt.Println()
		ran = true
	}
	if *all || *compare {
		harness.CompareForms(os.Stdout, pick(harness.CompareFunctions), cfg)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if *statsPath != "" {
		rr := stats.NewRunReport(reports...)
		out := os.Stdout
		if *statsPath != "-" {
			f, err := os.Create(*statsPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spptables:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := rr.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, "spptables:", err)
			os.Exit(1)
		}
		if *statsPath != "-" {
			fmt.Println("wrote", *statsPath)
		}
	}
}
