// Command sppverify checks functional equivalence between Boolean
// specifications, output by output:
//
//	sppverify a.pla b.pla              # two PLA designs
//	sppverify -n 4 -expr 'x1·(x0⊕x̄2)' -against a.pla -output 0
//	sppverify -verilog m.v -against a.pla      # gate-level netlist vs PLA
//	sppverify -blif m.blif -against a.pla
//
// Two incompletely specified outputs are compatible when neither
// asserts ON where the other asserts OFF; don't-care points match
// anything. The exit status is 0 when everything matches.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/bdd"
	"repro/internal/sim"
)

func main() {
	var (
		n       = flag.Int("n", 0, "input count for -expr")
		expr    = flag.String("expr", "", "SPP expression to check instead of a first PLA")
		against = flag.String("against", "", "PLA file to check -expr against")
		output  = flag.Int("output", 0, "output index for -expr checks")
		verilog = flag.String("verilog", "", "structural Verilog netlist to check against -against")
		blif    = flag.String("blif", "", "BLIF netlist to check against -against")
	)
	flag.Parse()

	switch {
	case *verilog != "" || *blif != "":
		if *against == "" {
			fail("sppverify: netlist checks need -against")
		}
		ckt := loadNetlist(*verilog, *blif)
		d := loadPLA(*against)
		if ckt.Inputs != d.Inputs() {
			fail("sppverify: netlist has %d inputs, design %d", ckt.Inputs, d.Inputs())
		}
		outs := ckt.Outputs()
		if len(outs) != d.NOutputs() {
			fail("sppverify: netlist has %d outputs, design %d", len(outs), d.NOutputs())
		}
		if checkNetlist(ckt, d, outs) > 0 {
			os.Exit(1)
		}
		fmt.Printf("equivalent: netlist matches %s on all specified points\n", *against)

	case *expr != "":
		if *n <= 0 || *against == "" {
			fail("sppverify: -expr needs -n and -against")
		}
		form, err := spp.ParseForm(*n, *expr)
		if err != nil {
			fail("sppverify: %v", err)
		}
		d := loadPLA(*against)
		if d.Inputs() != *n {
			fail("sppverify: expression over B^%d, design has %d inputs", *n, d.Inputs())
		}
		if *output < 0 || *output >= d.NOutputs() {
			fail("sppverify: output %d out of range", *output)
		}
		f := d.Output(*output)
		if err := form.Verify(f); err != nil {
			fail("NOT EQUIVALENT: %v", err)
		}
		fmt.Printf("equivalent: expression matches %s output %d on all care points\n",
			*against, *output)

	case flag.NArg() == 2:
		a := loadPLA(flag.Arg(0))
		b := loadPLA(flag.Arg(1))
		if a.Inputs() != b.Inputs() || a.NOutputs() != b.NOutputs() {
			fail("sppverify: shape mismatch: %d/%d vs %d/%d inputs/outputs",
				a.Inputs(), a.NOutputs(), b.Inputs(), b.NOutputs())
		}
		bad := 0
		for o := 0; o < a.NOutputs(); o++ {
			if p, ok := firstConflict(a.Output(o), b.Output(o), a.Inputs()); !ok {
				fmt.Printf("output %d: CONFLICT at input %0*b\n", o, a.Inputs(), p)
				bad++
			} else {
				fmt.Printf("output %d: compatible\n", o)
			}
		}
		if bad > 0 {
			os.Exit(1)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

// firstConflict finds a point where one function asserts ON and the
// other asserts OFF (don't-cares match anything).
func firstConflict(f, g *spp.Function, n int) (uint64, bool) {
	for p := uint64(0); p < 1<<uint(n); p++ {
		if f.IsSpecified(p) && g.IsSpecified(p) && f.IsOn(p) != g.IsOn(p) {
			return p, false
		}
	}
	return 0, true
}

// checkNetlist compares the circuit against the design. When every
// output is completely specified the comparison is symbolic — each
// output's BDD must be the identical node as the specification's — so
// no 2^n enumeration happens; designs with don't-cares fall back to
// pointwise checking of the specified points.
func checkNetlist(ckt *sim.Circuit, d *spp.Design, outs []string) int {
	bad := 0
	allSpecified := true
	for o := 0; o < d.NOutputs(); o++ {
		if d.Output(o).HasDC() {
			allSpecified = false
			break
		}
	}
	if allSpecified {
		m := bdd.New(ckt.Inputs)
		nodes, err := ckt.ToBDD(m)
		if err != nil {
			fail("sppverify: symbolic simulation: %v", err)
		}
		for o := range outs {
			spec := d.Output(o).BDD(m)
			if nodes[o] != spec {
				fmt.Printf("output %d (%s): NOT EQUIVALENT (symbolic check)\n", o, outs[o])
				bad++
			}
		}
		return bad
	}
	for p := uint64(0); p < 1<<uint(ckt.Inputs); p++ {
		vals := ckt.Eval(p)
		for o := range outs {
			f := d.Output(o)
			if f.IsSpecified(p) && vals[o] != f.IsOn(p) {
				fmt.Printf("output %d (%s): MISMATCH at input %0*b\n", o, outs[o], ckt.Inputs, p)
				bad++
			}
		}
	}
	return bad
}

func loadNetlist(verilogPath, blifPath string) *sim.Circuit {
	var (
		ckt *sim.Circuit
		err error
	)
	switch {
	case verilogPath != "":
		var f *os.File
		if f, err = os.Open(verilogPath); err == nil {
			defer f.Close()
			ckt, err = sim.ReadVerilog(f)
		}
	default:
		var f *os.File
		if f, err = os.Open(blifPath); err == nil {
			defer f.Close()
			ckt, err = sim.ReadBLIF(f)
		}
	}
	if err != nil {
		fail("sppverify: %v", err)
	}
	return ckt
}

func loadPLA(path string) *spp.Design {
	f, err := os.Open(path)
	if err != nil {
		fail("sppverify: %v", err)
	}
	defer f.Close()
	d, err := spp.ParsePLA(f, path)
	if err != nil {
		fail("sppverify: %v", err)
	}
	return d
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
