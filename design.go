package spp

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/netlist"
)

// DesignResult holds the minimized forms of every output of a Design,
// ready for inspection or netlist export.
type DesignResult struct {
	name    string
	inputs  int
	results []*Result
	// Errors[i] is non-nil when output i exceeded the budget; its form
	// is absent from exports.
	Errors []error
}

// Output returns the minimization result for output i (nil if that
// output failed; see Errors).
func (r *DesignResult) Output(i int) *Result { return r.results[i] }

// NOutputs returns the number of outputs.
func (r *DesignResult) NOutputs() int { return len(r.results) }

// TotalLiterals sums the literal counts of the successfully minimized
// outputs (the paper's per-function #L).
func (r *DesignResult) TotalLiterals() int {
	total := 0
	for _, res := range r.results {
		if res != nil {
			total += res.Form.Literals()
		}
	}
	return total
}

// TotalTerms sums the pseudoproduct counts (the paper's #PP).
func (r *DesignResult) TotalTerms() int {
	total := 0
	for _, res := range r.results {
		if res != nil {
			total += res.Form.NumTerms()
		}
	}
	return total
}

// Err returns the first per-output error, or nil if every output
// minimized within budget.
func (r *DesignResult) Err() error {
	for i, err := range r.Errors {
		if err != nil {
			return fmt.Errorf("spp: output %d: %w", i, err)
		}
	}
	return nil
}

// MinimizeDesign minimizes every output of the design separately (the
// paper's protocol) with the exact algorithm, or with the SPP_k
// heuristic when k ≥ 0. Outputs are processed on parallel workers —
// results are deterministic because outputs are independent. Per-output
// budget errors are recorded in DesignResult.Errors rather than
// aborting the whole design.
func MinimizeDesign(d *Design, k int, opts *Options) *DesignResult {
	nOut := d.NOutputs()
	r := &DesignResult{
		name:    d.Name(),
		inputs:  d.Inputs(),
		results: make([]*Result, nOut),
		Errors:  make([]error, nOut),
	}
	workers := runtime.GOMAXPROCS(0)
	if opts != nil && opts.Workers != 0 {
		workers = opts.Workers
		if workers < 1 {
			workers = 1
		}
	}
	if workers > nOut {
		workers = nOut
	}
	// Split the worker budget: outputs across the outer pool, the rest
	// down into each per-output build (Workers=1 inside when the outer
	// pool already uses them all) so the CPUs are not oversubscribed.
	inner := &Options{}
	if opts != nil {
		c := *opts
		inner = &c
	}
	inner.Workers = 1
	if opts != nil && opts.Workers != 0 {
		if w := opts.Workers / workers; w > 1 {
			inner.Workers = w
		}
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for o := range jobs {
				f := d.Output(o)
				var res *Result
				var err error
				if k >= 0 {
					res, err = MinimizeK(f, k, inner)
				} else {
					res, err = Minimize(f, inner)
				}
				// Slots are disjoint per worker; no lock needed.
				r.results[o], r.Errors[o] = res, err
			}
		}()
	}
	for o := 0; o < nOut; o++ {
		jobs <- o
	}
	close(jobs)
	wg.Wait()
	return r
}

// module assembles the exporter input from the successful outputs.
func (r *DesignResult) module() *netlist.Module {
	m := &netlist.Module{Name: r.name, Inputs: r.inputs}
	for i, res := range r.results {
		if res == nil {
			continue
		}
		m.Outputs = append(m.Outputs, netlist.Output{
			Name: fmt.Sprintf("y%d", i),
			Form: res.Form.form,
		})
	}
	return m
}

// WriteVerilog exports the minimized design as structural Verilog: one
// assign per output with the three-level EXOR/AND/OR structure intact.
func (r *DesignResult) WriteVerilog(w io.Writer) error {
	return netlist.WriteVerilog(w, r.module())
}

// WriteBLIF exports the minimized design in Berkeley Logic Interchange
// Format with explicit XOR chains, AND and OR gates.
func (r *DesignResult) WriteBLIF(w io.Writer) error {
	return netlist.WriteBLIF(w, r.module())
}

// SharedResult is a jointly minimized design: one pool of
// pseudoproducts with free OR-plane fanout, so terms used by several
// outputs are paid once (the natural PLA-style extension of the paper's
// per-output protocol).
type SharedResult struct {
	res    *core.MultiResult
	design *Design
}

// MinimizeShared jointly minimizes all outputs of the design with a
// shared pseudoproduct pool. The covering instance spans every
// (output, minterm) pair, so the solver discovers sharing on its own.
func MinimizeShared(d *Design, opts *Options) (*SharedResult, error) {
	res, err := core.MinimizeMulti(d.m, opts.toCore())
	if err != nil {
		return nil, err
	}
	return &SharedResult{res: res, design: d}, nil
}

// SharedLiterals is the joint cost: each distinct pseudoproduct's
// literals counted once regardless of fanout.
func (r *SharedResult) SharedLiterals() int { return r.res.SharedLiterals }

// SeparateLiterals is what the same selection would cost without
// sharing (terms counted once per output they drive).
func (r *SharedResult) SeparateLiterals() int { return r.res.SeparateLiterals() }

// NumTerms returns the size of the shared pseudoproduct pool.
func (r *SharedResult) NumTerms() int { return len(r.res.Terms) }

// Output materializes output o as a standalone SPP form.
func (r *SharedResult) Output(o int) Form { return Form{form: r.res.Form(o)} }

// Verify checks every output against the design.
func (r *SharedResult) Verify() error {
	for o := 0; o < r.design.NOutputs(); o++ {
		if err := r.Output(o).Verify(r.design.Output(o)); err != nil {
			return err
		}
	}
	return nil
}
