package spp_test

import (
	"bytes"
	"strings"
	"testing"

	"repro"
)

func adderDesign(t *testing.T) *spp.Design {
	t.Helper()
	// A 2+2-bit adder as a PLA (16 minterms, 3 outputs), exercising the
	// full Design path.
	var sb strings.Builder
	sb.WriteString(".i 4\n.o 3\n")
	for a := uint64(0); a < 4; a++ {
		for b := uint64(0); b < 4; b++ {
			sum := a + b
			in := []byte{'0', '0', '0', '0'}
			if a&2 != 0 {
				in[0] = '1'
			}
			if a&1 != 0 {
				in[1] = '1'
			}
			if b&2 != 0 {
				in[2] = '1'
			}
			if b&1 != 0 {
				in[3] = '1'
			}
			out := []byte{'0', '0', '0'}
			if sum&4 != 0 {
				out[0] = '1'
			}
			if sum&2 != 0 {
				out[1] = '1'
			}
			if sum&1 != 0 {
				out[2] = '1'
			}
			sb.Write(in)
			sb.WriteByte(' ')
			sb.Write(out)
			sb.WriteByte('\n')
		}
	}
	sb.WriteString(".e\n")
	d, err := spp.ParsePLA(strings.NewReader(sb.String()), "add2")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMinimizeDesign(t *testing.T) {
	d := adderDesign(t)
	r := spp.MinimizeDesign(d, -1, &spp.Options{ExactCover: true})
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.NOutputs() != 3 {
		t.Fatalf("NOutputs = %d", r.NOutputs())
	}
	for o := 0; o < 3; o++ {
		res := r.Output(o)
		if res == nil {
			t.Fatalf("output %d missing", o)
		}
		if err := res.Form.Verify(d.Output(o)); err != nil {
			t.Fatalf("output %d: %v", o, err)
		}
	}
	// The LSB of a 2-bit adder is x1⊕x3: 2 literals. The SPP total must
	// beat the SP total (2-bit adder is already XOR-shaped).
	if lsb := r.Output(2); lsb.Form.Literals() != 2 {
		t.Fatalf("adder LSB = %v, want a single 2-literal EXOR", lsb.Form)
	}
	spTotal := 0
	for o := 0; o < 3; o++ {
		spTotal += spp.MinimizeSP(d.Output(o), nil).Literals
	}
	if r.TotalLiterals() >= spTotal {
		t.Fatalf("SPP total %d not better than SP total %d", r.TotalLiterals(), spTotal)
	}
	if r.TotalTerms() <= 0 {
		t.Fatal("TotalTerms not positive")
	}
}

func TestMinimizeDesignHeuristicMode(t *testing.T) {
	d := adderDesign(t)
	r := spp.MinimizeDesign(d, 0, nil) // SPP_0
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	for o := 0; o < 3; o++ {
		if err := r.Output(o).Form.Verify(d.Output(o)); err != nil {
			t.Fatalf("output %d: %v", o, err)
		}
	}
}

func TestMinimizeDesignBudgetErrorsPerOutput(t *testing.T) {
	d := adderDesign(t)
	r := spp.MinimizeDesign(d, -1, &spp.Options{MaxCandidates: 2})
	if r.Err() == nil {
		t.Fatal("expected budget errors")
	}
	// Exports skip failed outputs but still produce a valid file.
	var buf bytes.Buffer
	if err := r.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "module add2") {
		t.Fatalf("verilog:\n%s", buf.String())
	}
}

func TestDesignNetlistExports(t *testing.T) {
	d := adderDesign(t)
	r := spp.MinimizeDesign(d, -1, nil)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	var v, b bytes.Buffer
	if err := r.WriteVerilog(&v); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteBLIF(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"module add2", "assign y0", "assign y1", "assign y2", "endmodule"} {
		if !strings.Contains(v.String(), want) {
			t.Fatalf("verilog missing %q:\n%s", want, v.String())
		}
	}
	for _, want := range []string{".model add2", ".inputs x0 x1 x2 x3", ".outputs y0 y1 y2", ".end"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("blif missing %q:\n%s", want, b.String())
		}
	}
}

func TestMinimizeRMFacade(t *testing.T) {
	d := adderDesign(t)
	// The adder LSB is x1⊕x3: its best FPRM form is two 1-literal terms.
	rm := spp.MinimizeRM(d.Output(2))
	if rm.Literals != 2 || rm.NumTerms != 2 || !rm.Exhaustive {
		t.Fatalf("RM adder LSB: %+v", rm)
	}
	for p := uint64(0); p < 16; p++ {
		if rm.Eval(p) != d.Output(2).IsOn(p) {
			t.Fatalf("RM eval wrong at %04b", p)
		}
	}
	if rm.Expr == "" {
		t.Fatal("empty RM expression")
	}
}

func TestMinimizeSharedFacade(t *testing.T) {
	d := adderDesign(t)
	shared, err := spp.MinimizeShared(d, &spp.Options{ExactCover: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := shared.Verify(); err != nil {
		t.Fatal(err)
	}
	if shared.SharedLiterals() > shared.SeparateLiterals() {
		t.Fatalf("shared %d > separate %d", shared.SharedLiterals(), shared.SeparateLiterals())
	}
	if shared.NumTerms() <= 0 {
		t.Fatal("no terms in shared pool")
	}
	// Budget errors surface.
	if _, err := spp.MinimizeShared(d, &spp.Options{MaxCandidates: 2}); err == nil {
		t.Fatal("expected budget error")
	}
}

func TestSimplifyFacade(t *testing.T) {
	f := spp.New(2, []uint64{2, 3}) // x0
	form, err := spp.ParseForm(2, "x0 + x0·x1")
	if err != nil {
		t.Fatal(err)
	}
	s := form.Simplify(f)
	if s.NumTerms() != 1 {
		t.Fatalf("Simplify kept %d terms", s.NumTerms())
	}
}
