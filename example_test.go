package spp_test

import (
	"fmt"
	"math/bits"
	"strings"

	"repro"
)

// The headline behaviour: EXOR-shaped functions collapse from
// exponentially many products to a single pseudoproduct.
func ExampleMinimize() {
	parity := spp.FromPredicate(4, func(p uint64) bool {
		return bits.OnesCount64(p)%2 == 1
	})
	res, err := spp.Minimize(parity, &spp.Options{ExactCover: true})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Form)
	fmt.Println(res.Form.Literals(), "literals vs", spp.MinimizeSP(parity, nil).Literals, "as SP")
	// Output:
	// (x0⊕x1⊕x2⊕x3)
	// 4 literals vs 32 as SP
}

// SPP_k interpolates between speed (k=0) and the exact form (k=n−1).
func ExampleMinimizeK() {
	f := spp.New(3, []uint64{0b110, 0b011}) // x0·x1·x̄2 + x̄0·x1·x2
	res, err := spp.MinimizeK(f, 0, &spp.Options{ExactCover: true})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Form)
	// Output:
	// x1·(x0⊕x2)
}

// Textual forms round-trip through the parser.
func ExampleParseForm() {
	form, err := spp.ParseForm(4, "x1*(x0^!x2) + !x0*x2")
	if err != nil {
		panic(err)
	}
	fmt.Println(form)
	// Output:
	// x1·(x0⊕x̄2) + x̄0·x2
}

// PLA designs minimize output by output.
func ExampleParsePLA() {
	src := `.i 2
.o 1
01 1
10 1
.e
`
	d, err := spp.ParsePLA(strings.NewReader(src), "xor2")
	if err != nil {
		panic(err)
	}
	res, err := spp.Minimize(d.Output(0), nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Form)
	// Output:
	// (x0⊕x1)
}
