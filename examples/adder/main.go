// Adder: reproduce the paper's flagship Table 1 row. The 4+4-bit adder
// adr4 minimizes to 340 literals as a two-level SP form but only 72
// literals as a three-level SPP form — the 4.72× ratio quoted in the
// paper's introduction — because carry propagation is EXOR-shaped.
//
//	go run ./examples/adder
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const w = 4 // adder width
	n := 2 * w

	// Build each sum output as a predicate over the packed inputs
	// (a = x0..x3 with x0 the MSB, b = x4..x7).
	field := func(p uint64, lo int) uint64 {
		var v uint64
		for i := 0; i < w; i++ {
			v = v<<1 | p>>uint(n-1-lo-i)&1
		}
		return v
	}
	outputs := make([]*spp.Function, w+1)
	for o := range outputs {
		bit := uint(w - o) // output 0 is the carry, output w the LSB
		outputs[o] = spp.FromPredicate(n, func(p uint64) bool {
			return (field(p, 0)+field(p, w))>>bit&1 == 1
		})
	}

	fmt.Printf("adr4: %d-bit adder, %d inputs, %d outputs (minimized separately)\n\n", w, n, w+1)
	fmt.Println("out   #PI  L(SP)    #EPPP  L(SPP)  #PP   expression")
	totalSP, totalSPP, totalPP, totalPI := 0, 0, 0, 0
	for o, f := range outputs {
		spRes := spp.MinimizeSP(f, nil)
		res, err := spp.Minimize(f, &spp.Options{MaxDuration: time.Minute})
		if err != nil {
			log.Fatalf("output %d: %v", o, err)
		}
		if err := res.Form.Verify(f); err != nil {
			log.Fatalf("output %d: %v", o, err)
		}
		totalSP += spRes.Literals
		totalSPP += res.Form.Literals()
		totalPP += res.Form.NumTerms()
		totalPI += spRes.NumPrimes
		expr := res.Form.String()
		if len(expr) > 60 {
			expr = expr[:57] + "..."
		}
		fmt.Printf("s%d  %5d  %5d  %7d  %6d  %3d   %s\n",
			o, spRes.NumPrimes, spRes.Literals, res.EPPPCount,
			res.Form.Literals(), res.Form.NumTerms(), expr)
	}
	fmt.Printf("\ntotals: SP %d literals (%d primes) vs SPP %d literals (%d pseudoproducts)\n",
		totalSP, totalPI, totalSPP, totalPP)
	fmt.Printf("paper Table 1 row adr4: SP 340 literals, 75 primes; SPP 72 literals, 14 pseudoproducts\n")
	fmt.Printf("SP/SPP literal ratio: %.2f (paper: 4.72)\n", float64(totalSP)/float64(totalSPP))
}
