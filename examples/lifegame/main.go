// Lifegame: minimize Conway's game-of-life next-state rule (9 inputs:
// the 3×3 neighbourhood, centre x4) as an SPP form and then use the
// minimized network to simulate a glider, demonstrating that the form
// is a drop-in replacement for the rule.
//
//	go run ./examples/lifegame
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro"
)

const n = 9

func rule(p uint64) bool {
	alive := p>>uint(n-1-4)&1 == 1
	count := 0
	for i := 0; i < n; i++ {
		if i != 4 && p>>uint(n-1-i)&1 == 1 {
			count++
		}
	}
	return count == 3 || (alive && count == 2)
}

func main() {
	life := spp.FromPredicate(n, rule)

	start := time.Now()
	res, err := spp.Minimize(life, &spp.Options{MaxDuration: time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Form.Verify(life); err != nil {
		log.Fatal(err)
	}
	sp := spp.MinimizeSP(life, nil)
	fmt.Printf("life rule (9 inputs): SP %d literals / %d products, SPP %d literals / %d pseudoproducts\n",
		sp.Literals, sp.NumTerms, res.Form.Literals(), res.Form.NumTerms())
	fmt.Printf("EPPP candidates: %d (paper Table 1: 2100), minimized in %v\n\n",
		res.EPPPCount, time.Since(start).Round(time.Millisecond))

	// Simulate a glider for a few generations, computing every next
	// state through the minimized SPP network.
	const size = 8
	grid := map[[2]int]bool{{1, 2}: true, {2, 3}: true, {3, 1}: true, {3, 2}: true, {3, 3}: true}
	for gen := 0; gen < 4; gen++ {
		fmt.Printf("generation %d\n%s\n", gen, render(grid, size))
		next := map[[2]int]bool{}
		for r := 0; r < size; r++ {
			for c := 0; c < size; c++ {
				var p uint64
				i := 0
				for dr := -1; dr <= 1; dr++ {
					for dc := -1; dc <= 1; dc++ {
						if grid[[2]int{r + dr, c + dc}] {
							p |= 1 << uint(n-1-i)
						}
						i++
					}
				}
				if res.Form.Eval(p) {
					next[[2]int{r, c}] = true
				}
				// The network must agree with the rule everywhere.
				if res.Form.Eval(p) != rule(p) {
					log.Fatalf("SPP network disagrees with the rule at %09b", p)
				}
			}
		}
		grid = next
	}
	fmt.Println("SPP network agreed with the life rule on every evaluated neighbourhood.")
}

func render(grid map[[2]int]bool, size int) string {
	var sb strings.Builder
	for r := 0; r < size; r++ {
		for c := 0; c < size; c++ {
			if grid[[2]int{r, c}] {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
