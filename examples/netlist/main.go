// Netlist: minimize a design and export it as structural Verilog and
// BLIF — the three-level EXOR/AND/OR network the paper describes, ready
// for downstream synthesis tools.
//
//	go run ./examples/netlist
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro"
)

// A 3-bit Gray-code encoder: gray = bin ^ (bin >> 1), an EXOR-shaped
// function where SPP forms shine.
const plaSource = `# 3-bit binary-to-gray
.i 3
.o 3
000 000
001 001
010 011
011 010
100 110
101 111
110 101
111 100
.e
`

func main() {
	design, err := spp.ParsePLA(strings.NewReader(plaSource), "bin2gray")
	if err != nil {
		log.Fatal(err)
	}
	res := spp.MinimizeDesign(design, -1, &spp.Options{ExactCover: true})
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	for o := 0; o < res.NOutputs(); o++ {
		r := res.Output(o)
		fmt.Printf("y%d = %v   (%d literals)\n", o, r.Form, r.Form.Literals())
	}

	fmt.Println("\n--- structural Verilog ---")
	if err := res.WriteVerilog(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- BLIF ---")
	if err := res.WriteBLIF(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The form parser closes the loop: expressions print, parse back,
	// and re-verify.
	expr := res.Output(1).Form.String()
	parsed, err := spp.ParseForm(design.Inputs(), expr)
	if err != nil {
		log.Fatal(err)
	}
	if err := parsed.Verify(design.Output(1)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nround-trip: %q parsed and re-verified against the design\n", expr)
}
