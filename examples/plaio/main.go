// Plaio: parse an Espresso-format PLA with don't-cares, minimize each
// output as an SPP form, and show how don't-cares shrink the result
// (DC points may be covered or not, whichever costs fewer literals).
//
//	go run ./examples/plaio
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

// A 7-segment-style decoder fragment: 4-bit BCD input, 3 outputs, with
// inputs 10-15 declared don't-care (type fd PLA, '-' outputs).
const source = `# bcd segment fragment
.i 4
.o 3
.type fd
0000 101
0001 001
0010 110
0011 011
0100 010
0101 111
0110 100
0111 001
1000 111
1001 011
1010 ---
1011 ---
1100 ---
1101 ---
1110 ---
1111 ---
.e
`

func main() {
	design, err := spp.ParsePLA(strings.NewReader(source), "bcdseg")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d inputs, %d outputs (inputs 10-15 are don't-care)\n\n",
		design.Name(), design.Inputs(), design.NOutputs())

	for o := 0; o < design.NOutputs(); o++ {
		f := design.Output(o)
		res, err := spp.Minimize(f, &spp.Options{ExactCover: true})
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Form.Verify(f); err != nil {
			log.Fatal(err)
		}
		sp := spp.MinimizeSP(f, &spp.Options{ExactCover: true})
		fmt.Printf("out %d: SP %2d literals (%s)\n", o, sp.Literals, sp.Expr)
		fmt.Printf("       SPP %2d literals: %v\n", res.Form.Literals(), res.Form)

		// Don't-cares are free: the SPP network may disagree with the
		// spec only on the DC points 10-15.
		for p := uint64(0); p < 10; p++ {
			if res.Form.Eval(p) != f.IsOn(p) {
				log.Fatalf("output %d wrong on care point %d", o, p)
			}
		}
	}
}
