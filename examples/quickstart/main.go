// Quickstart: minimize a small Boolean function as a three-level SPP
// form and compare it with the classical two-level SP form.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/bits"

	"repro"
)

func main() {
	// The 4-variable odd-parity function: the worst case for two-level
	// logic (every minterm is its own prime implicant) and the best
	// case for EXOR-based forms.
	parity := spp.FromPredicate(4, func(p uint64) bool {
		return bits.OnesCount64(p)%2 == 1
	})

	res, err := spp.Minimize(parity, &spp.Options{ExactCover: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Form.Verify(parity); err != nil {
		log.Fatal(err)
	}
	sp := spp.MinimizeSP(parity, nil)

	fmt.Println("odd parity of 4 variables")
	fmt.Printf("  SP  form: %3d literals, %2d products:  %s\n", sp.Literals, sp.NumTerms, sp.Expr)
	fmt.Printf("  SPP form: %3d literals, %2d pseudoproduct: %v\n",
		res.Form.Literals(), res.Form.NumTerms(), res.Form)

	// A function mixing cube and EXOR structure: f = x0·x1 ⊕-friendly
	// band plus a plain product.
	mixed := spp.FromPredicate(5, func(p uint64) bool {
		x := func(i int) uint64 { return p >> uint(4-i) & 1 }
		return (x(0)^x(2)^x(3)) == 1 && x(1) == 1 || x(0) == 1 && x(4) == 1
	})
	mres, err := spp.Minimize(mixed, &spp.Options{ExactCover: true})
	if err != nil {
		log.Fatal(err)
	}
	msp := spp.MinimizeSP(mixed, nil)
	fmt.Println("\nmixed cube/EXOR function of 5 variables")
	fmt.Printf("  SP  form: %3d literals, %2d products\n", msp.Literals, msp.NumTerms)
	fmt.Printf("  SPP form: %3d literals, %2d pseudoproducts: %v\n",
		mres.Form.Literals(), mres.Form.NumTerms(), mres.Form)

	// The SPP_k heuristic trades quality for speed; k=0 starts from the
	// SP prime implicants and only applies bottom-up unions.
	h0, err := spp.MinimizeK(mixed, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  SPP_0  : %3d literals (heuristic, %v build)\n",
		h0.Form.Literals(), h0.BuildTime)
}
