// Shared: jointly minimize a multi-output design with one shared
// pseudoproduct pool (OR-plane fanout is free, so a term driving
// several outputs is paid once), then check every output symbolically.
//
//	go run ./examples/shared
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

// A 4-bit incrementer next to a 4-bit decrementer: the two share the
// borrow/carry chains' EXOR structure, so joint minimization finds
// common pseudoproducts.
func buildPLA() string {
	var sb strings.Builder
	sb.WriteString(".i 4\n.o 8\n")
	for x := uint64(0); x < 16; x++ {
		inc := (x + 1) & 15
		dec := (x - 1) & 15
		fmt.Fprintf(&sb, "%04b %04b%04b\n", x, inc, dec)
	}
	sb.WriteString(".e\n")
	return sb.String()
}

func main() {
	design, err := spp.ParsePLA(strings.NewReader(buildPLA()), "incdec")
	if err != nil {
		log.Fatal(err)
	}

	// Per-output minimization (the paper's protocol)...
	separate := spp.MinimizeDesign(design, -1, &spp.Options{ExactCover: true})
	if err := separate.Err(); err != nil {
		log.Fatal(err)
	}

	// ...versus joint minimization with a shared pool.
	shared, err := spp.MinimizeShared(design, &spp.Options{ExactCover: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := shared.Verify(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d inputs, %d outputs\n\n", design.Name(), design.Inputs(), design.NOutputs())
	for o := 0; o < design.NOutputs(); o++ {
		fmt.Printf("  y%d = %v\n", o, shared.Output(o))
	}
	fmt.Printf("\nper-output total: %d literals\n", separate.TotalLiterals())
	fmt.Printf("shared pool:      %d pseudoproducts, %d literals paid once (%d stacked)\n",
		shared.NumTerms(), shared.SharedLiterals(), shared.SeparateLiterals())
	if shared.SharedLiterals() < shared.SeparateLiterals() {
		fmt.Println("joint minimization found cross-output sharing.")
	}
}
