// Tradeoff: sweep the SPP_k heuristic parameter on the dist benchmark
// (|a−b| of two 4-bit values), reproducing the shape of the paper's
// Figures 3 and 4: literals decrease monotonically with k while CPU
// time grows sharply, so small k already buys most of the win.
//
//	go run ./examples/tradeoff [maxK]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"repro"
)

const n = 8

func outputs() []*spp.Function {
	field := func(p uint64, lo int) uint64 {
		var v uint64
		for i := 0; i < 4; i++ {
			v = v<<1 | p>>uint(n-1-lo-i)&1
		}
		return v
	}
	dist := func(p uint64) uint64 {
		a, b := field(p, 0), field(p, 4)
		if a < b {
			return 1<<4 | (b - a)
		}
		return a - b
	}
	outs := make([]*spp.Function, 5)
	for o := range outs {
		bit := uint(4 - o)
		outs[o] = spp.FromPredicate(n, func(p uint64) bool {
			return dist(p)>>bit&1 == 1
		})
	}
	return outs
}

func main() {
	maxK := n - 1
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil || v < 0 || v >= n {
			log.Fatalf("usage: tradeoff [maxK in 0..%d]", n-1)
		}
		maxK = v
	}

	outs := outputs()
	spL := 0
	spT := time.Duration(0)
	for _, f := range outs {
		t0 := time.Now()
		spL += spp.MinimizeSP(f, nil).Literals
		spT += time.Since(t0)
	}
	fmt.Printf("dist (8 inputs, 5 outputs): SP reference %d literals in %v\n\n", spL, spT.Round(time.Millisecond))
	fmt.Println("  k   #L(SPP_k)   time        (SP line stays flat; paper fig. 3/4)")
	for k := 0; k <= maxK; k++ {
		lits := 0
		elapsed := time.Duration(0)
		for _, f := range outs {
			res, err := spp.MinimizeK(f, k, &spp.Options{MaxDuration: 5 * time.Minute})
			if err != nil {
				log.Fatalf("k=%d: %v", k, err)
			}
			if err := res.Form.Verify(f); err != nil {
				log.Fatalf("k=%d: %v", k, err)
			}
			lits += res.Form.Literals()
			elapsed += res.BuildTime + res.CoverTime
		}
		fmt.Printf("  %d   %6d      %v\n", k, lits, elapsed.Round(time.Millisecond))
	}
	fmt.Printf("\nSPP_%d is the exact SPP form (k = n−1 descends to single points).\n", n-1)
}
