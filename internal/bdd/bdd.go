// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs) with an ITE-based apply, hash-consed unique table and
// operation cache. The fixed variable order is x0 < x1 < … < x_{n-1}
// (the bitvec packing order).
//
// In this repository BDDs are the third, independent representation of
// Boolean functions — next to explicit minterm sets (bfunc) and
// minimized forms — and serve as the symbolic equivalence oracle:
// canonical ROBDDs make equality a pointer comparison, so verification
// does not require enumerating B^n.
package bdd

import (
	"fmt"

	"repro/internal/bfunc"
	"repro/internal/bitvec"
	"repro/internal/pcube"
)

// Node is a BDD node reference (an index into the manager). The
// constants are valid in every manager.
type Node int32

// Const0 and Const1 are the terminal nodes.
const (
	Const0 Node = 0
	Const1 Node = 1
)

type nodeData struct {
	level  int32 // variable index; terminals use level = nvars
	lo, hi Node
}

type triple struct {
	level  int32
	lo, hi Node
}

type iteKey struct{ f, g, h Node }

// Manager owns the node store for one variable order.
type Manager struct {
	nvars  int
	nodes  []nodeData
	unique map[triple]Node
	cache  map[iteKey]Node
}

// New creates a manager for n variables.
func New(n int) *Manager {
	if n < 1 || n > bitvec.MaxVars {
		panic(fmt.Sprintf("bdd: invalid variable count %d", n))
	}
	m := &Manager{
		nvars:  n,
		unique: map[triple]Node{},
		cache:  map[iteKey]Node{},
	}
	// Terminals live at level nvars.
	m.nodes = append(m.nodes,
		nodeData{level: int32(n)}, // Const0
		nodeData{level: int32(n)}, // Const1
	)
	return m
}

// NumVars returns the manager's variable count.
func (m *Manager) NumVars() int { return m.nvars }

// Size returns the number of live nodes (including terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// mk returns the canonical node for (level, lo, hi).
func (m *Manager) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	key := triple{level, lo, hi}
	if n, ok := m.unique[key]; ok {
		return n
	}
	n := Node(len(m.nodes))
	m.nodes = append(m.nodes, nodeData{level: level, lo: lo, hi: hi})
	m.unique[key] = n
	return n
}

// Var returns the BDD of the single variable x_i.
func (m *Manager) Var(i int) Node {
	if i < 0 || i >= m.nvars {
		panic(fmt.Sprintf("bdd: variable x%d out of range", i))
	}
	return m.mk(int32(i), Const0, Const1)
}

// Ite computes if-then-else(f, g, h), the universal connective.
func (m *Manager) Ite(f, g, h Node) Node {
	switch {
	case f == Const1:
		return g
	case f == Const0:
		return h
	case g == Const1 && h == Const0:
		return f
	case g == h:
		return g
	}
	key := iteKey{f, g, h}
	if r, ok := m.cache[key]; ok {
		return r
	}
	top := m.nodes[f].level
	if l := m.nodes[g].level; l < top {
		top = l
	}
	if l := m.nodes[h].level; l < top {
		top = l
	}
	f0, f1 := m.cofactor(f, top)
	g0, g1 := m.cofactor(g, top)
	h0, h1 := m.cofactor(h, top)
	r := m.mk(top, m.Ite(f0, g0, h0), m.Ite(f1, g1, h1))
	m.cache[key] = r
	return r
}

func (m *Manager) cofactor(n Node, level int32) (lo, hi Node) {
	d := m.nodes[n]
	if d.level != level {
		return n, n
	}
	return d.lo, d.hi
}

// Not returns ¬a.
func (m *Manager) Not(a Node) Node { return m.Ite(a, Const0, Const1) }

// And returns a ∧ b.
func (m *Manager) And(a, b Node) Node { return m.Ite(a, b, Const0) }

// Or returns a ∨ b.
func (m *Manager) Or(a, b Node) Node { return m.Ite(a, Const1, b) }

// Xor returns a ⊕ b.
func (m *Manager) Xor(a, b Node) Node { return m.Ite(a, m.Not(b), b) }

// Eval computes the function value on a packed point.
func (m *Manager) Eval(n Node, p uint64) bool {
	for n != Const0 && n != Const1 {
		d := m.nodes[n]
		if bitvec.Bit(p, m.nvars, int(d.level)) == 1 {
			n = d.hi
		} else {
			n = d.lo
		}
	}
	return n == Const1
}

// SatCount returns the number of satisfying assignments over all
// 2^nvars points.
func (m *Manager) SatCount(n Node) uint64 {
	memo := map[Node]uint64{}
	var count func(n Node) uint64 // over variables below n's level
	count = func(n Node) uint64 {
		if n == Const0 {
			return 0
		}
		if n == Const1 {
			return 1
		}
		if c, ok := memo[n]; ok {
			return c
		}
		d := m.nodes[n]
		lo := count(d.lo) << uint(m.nodes[d.lo].level-d.level-1)
		hi := count(d.hi) << uint(m.nodes[d.hi].level-d.level-1)
		c := lo + hi
		memo[n] = c
		return c
	}
	root := m.nodes[n].level
	return count(n) << uint(root)
}

// FromFunc builds the BDD of a completely specified function from its
// ON-set, one minterm at a time (adequate for the explicit-minterm
// representations used throughout this repository).
func (m *Manager) FromFunc(f *bfunc.Func) Node {
	if f.N() != m.nvars {
		panic("bdd: variable count mismatch")
	}
	if len(f.DC()) > 0 {
		panic("bdd: FromFunc requires a completely specified function")
	}
	acc := Const0
	for _, p := range f.On() {
		term := Const1
		// Build the minterm bottom-up (highest variable first) so each
		// mk call is O(1) at the correct level.
		for i := m.nvars - 1; i >= 0; i-- {
			if bitvec.Bit(p, m.nvars, i) == 1 {
				term = m.mk(int32(i), Const0, term)
			} else {
				term = m.mk(int32(i), term, Const0)
			}
		}
		acc = m.Or(acc, term)
	}
	return acc
}

// FromFactor builds the BDD of one EXOR factor.
func (m *Manager) FromFactor(f pcube.Factor) Node {
	acc := Const0
	if f.Comp == 1 {
		acc = Const1
	}
	for _, v := range bitvec.Vars(f.Vars, m.nvars) {
		acc = m.Xor(acc, m.Var(v))
	}
	return acc
}

// FromCEX builds the BDD of a pseudoproduct (AND of its factors).
func (m *Manager) FromCEX(c *pcube.CEX) Node {
	acc := Const1
	for _, f := range c.Factors {
		acc = m.And(acc, m.FromFactor(f))
	}
	return acc
}

// Branches exposes node n's decision structure for external
// traversals: its variable level and the lo (x_level = 0) and hi
// (x_level = 1) cofactor nodes. Terminals report level == NumVars()
// with lo == hi == n. The DSOP extraction in internal/dsop walks
// 1-paths through this accessor.
func (m *Manager) Branches(n Node) (level int, lo, hi Node) {
	d := m.nodes[n]
	if n == Const0 || n == Const1 {
		return int(d.level), n, n
	}
	return int(d.level), d.lo, d.hi
}

// NodeCount returns the number of internal nodes reachable from n (the
// size of that function's diagram, excluding terminals).
func (m *Manager) NodeCount(n Node) int {
	seen := map[Node]bool{}
	var walk func(n Node)
	walk = func(n Node) {
		if n == Const0 || n == Const1 || seen[n] {
			return
		}
		seen[n] = true
		walk(m.nodes[n].lo)
		walk(m.nodes[n].hi)
	}
	walk(n)
	return len(seen)
}
