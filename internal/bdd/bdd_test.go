package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfunc"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/pcube"
)

func randomFunc(rng *rand.Rand, n int) *bfunc.Func {
	var on []uint64
	for p := uint64(0); p < 1<<uint(n); p++ {
		if rng.Intn(2) == 0 {
			on = append(on, p)
		}
	}
	return bfunc.New(n, on)
}

func TestFromFuncPointwise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		fn := randomFunc(rng, n)
		m := New(n)
		node := m.FromFunc(fn)
		for p := uint64(0); p < 1<<uint(n); p++ {
			if m.Eval(node, p) != fn.IsOn(p) {
				return false
			}
		}
		return m.SatCount(node) == uint64(fn.OnCount())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicity(t *testing.T) {
	// Equal functions get the identical node, independent of how they
	// were built.
	n := 4
	m := New(n)
	// x0 ⊕ x1 built two ways.
	a := m.Xor(m.Var(0), m.Var(1))
	b := m.Or(m.And(m.Var(0), m.Not(m.Var(1))), m.And(m.Not(m.Var(0)), m.Var(1)))
	if a != b {
		t.Fatal("canonicity violated: equal functions, different nodes")
	}
	// Double negation.
	if m.Not(m.Not(a)) != a {
		t.Fatal("double negation not identity")
	}
	// Constants.
	if m.And(a, Const0) != Const0 || m.Or(a, Const1) != Const1 {
		t.Fatal("constant absorption broken")
	}
	if m.Xor(a, a) != Const0 {
		t.Fatal("a ⊕ a must be 0")
	}
}

func TestOpsAgreeWithBfunc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 4
		fa := randomFunc(rng, n)
		fb := randomFunc(rng, n)
		m := New(n)
		a, b := m.FromFunc(fa), m.FromFunc(fb)
		checks := []struct {
			bddNode Node
			fn      *bfunc.Func
		}{
			{m.And(a, b), fa.And(fb)},
			{m.Or(a, b), fa.Or(fb)},
			{m.Xor(a, b), fa.Xor(fb)},
			{m.Not(a), fa.Not()},
		}
		for ci, c := range checks {
			for p := uint64(0); p < 1<<uint(n); p++ {
				if m.Eval(c.bddNode, p) != c.fn.IsOn(p) {
					t.Fatalf("op %d disagrees with bfunc at %b", ci, p)
				}
			}
		}
	}
}

func TestFromCEXMatchesPseudocube(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(5)
		c := pcube.FromPoint(n, rng.Uint64()&bitvec.SpaceMask(n))
		for c.Degree() < rng.Intn(n+1) {
			nc := bitvec.SpaceMask(n) &^ c.Canon
			var alpha uint64
			for alpha == 0 {
				alpha = rng.Uint64() & nc
			}
			c = pcube.Union(c, c.Transform(alpha))
		}
		m := New(n)
		node := m.FromCEX(c)
		if m.SatCount(node) != 1<<uint(c.Degree()) {
			t.Fatalf("SatCount = %d, want 2^%d", m.SatCount(node), c.Degree())
		}
		for p := uint64(0); p < 1<<uint(n); p++ {
			if m.Eval(node, p) != c.Contains(p) {
				t.Fatalf("FromCEX disagrees at %b", p)
			}
		}
	}
}

// TestSymbolicEquivalenceOfMinimizedForms verifies minimizer output
// without enumeration: BDD(source) must be the identical node as
// OR of BDD(term) over the minimized form.
func TestSymbolicEquivalenceOfMinimizedForms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(2)
		fn := randomFunc(rng, n)
		res, err := core.MinimizeExact(fn, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m := New(n)
		want := m.FromFunc(fn)
		got := Const0
		for _, term := range res.Form.Terms {
			got = m.Or(got, m.FromCEX(term))
		}
		if got != want {
			t.Fatalf("minimized form not symbolically equivalent to source")
		}
	}
}

func TestParityBDDSize(t *testing.T) {
	// Parity has the classic linear-size BDD: 2 internal nodes per
	// variable (minus shared terminals).
	n := 10
	m := New(n)
	acc := Const0
	for i := 0; i < n; i++ {
		acc = m.Xor(acc, m.Var(i))
	}
	if m.SatCount(acc) != 1<<uint(n-1) {
		t.Fatalf("parity SatCount wrong")
	}
	// Parity's diagram has exactly 2 internal nodes per level except
	// the root level (1): 2n−1 nodes.
	if got := m.NodeCount(acc); got != 2*n-1 {
		t.Fatalf("parity BDD has %d reachable nodes, want %d", got, 2*n-1)
	}
}

func TestVarRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3).Var(3)
}

func TestSatCountFullAndEmpty(t *testing.T) {
	m := New(6)
	if m.SatCount(Const1) != 64 || m.SatCount(Const0) != 0 {
		t.Fatalf("terminal SatCounts wrong: %d %d",
			m.SatCount(Const1), m.SatCount(Const0))
	}
}
