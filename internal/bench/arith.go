package bench

import (
	"repro/internal/bfunc"
	"repro/internal/bitvec"
)

// field extracts the unsigned integer in variables [lo, lo+width) of
// point p over B^n, with the variable of smallest index as the most
// significant bit (matching the display order of PLA files).
func field(p uint64, n, lo, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		v = v<<1 | bitvec.Bit(p, n, lo+i)
	}
	return v
}

// outputsOf builds one bfunc per output of a word-valued circuit: out
// returns a value whose bit (width-1-j) becomes output j (most
// significant output first, like the sum of an adder listed carry
// first).
func outputsOf(n, width int, out func(p uint64) uint64) []*bfunc.Func {
	fns := make([]*bfunc.Func, width)
	for j := 0; j < width; j++ {
		bit := uint(width - 1 - j)
		fns[j] = bfunc.FromPredicate(n, func(p uint64) bool {
			return out(p)>>bit&1 == 1
		})
	}
	return fns
}

func buildAdder(name string, w int) *bfunc.Multi {
	n := 2 * w
	return bfunc.NewMulti(name, n, outputsOf(n, w+1, func(p uint64) uint64 {
		return field(p, n, 0, w) + field(p, n, w, w)
	}))
}

// buildCS8 reconstructs an 8-input carry-save-style adder slice: the
// four ripple sum bits and the four internal carries of a 4+4-bit
// addition, exposed as separate outputs (the paper uses single outputs
// cs8(1) and cs8(2) in Table 2).
func buildCS8() *bfunc.Multi {
	const n = 8
	return bfunc.NewMulti("cs8", n, outputsOf(n, 8, func(p uint64) uint64 {
		a, b := field(p, n, 0, 4), field(p, n, 4, 4)
		var carry, sums, carries uint64
		for i := 0; i < 4; i++ { // i = bit position from LSB
			ai, bi := a>>uint(i)&1, b>>uint(i)&1
			s := ai ^ bi ^ carry
			carry = ai&bi | ai&carry | bi&carry
			sums |= s << uint(i)
			carries |= carry << uint(i)
		}
		return sums<<4 | carries
	}))
}

// buildLife implements Conway's game-of-life next-state rule over a 3×3
// neighbourhood: 9 inputs (x4 is the centre cell), 1 output.
func buildLife() *bfunc.Multi {
	const n = 9
	f := bfunc.FromPredicate(n, func(p uint64) bool {
		alive := bitvec.Bit(p, n, 4) == 1
		count := 0
		for i := 0; i < n; i++ {
			if i != 4 && bitvec.Bit(p, n, i) == 1 {
				count++
			}
		}
		return count == 3 || (alive && count == 2)
	})
	return bfunc.NewMulti("life", n, []*bfunc.Func{f})
}

func buildMlp4() *bfunc.Multi {
	const n = 8
	return bfunc.NewMulti("mlp4", n, outputsOf(n, 8, func(p uint64) uint64 {
		return field(p, n, 0, 4) * field(p, n, 4, 4)
	}))
}

// buildRoot computes the integer square root of the 8-bit input: four
// value bits plus the parity of the remainder as the historical fifth
// output.
func buildRoot() *bfunc.Multi {
	const n = 8
	return bfunc.NewMulti("root", n, outputsOf(n, 5, func(p uint64) uint64 {
		x := field(p, n, 0, 8)
		s := uint64(0)
		for (s+1)*(s+1) <= x {
			s++
		}
		return s<<1 | (x-s*s)&1
	}))
}

// buildDist computes the distance |a−b| between two 4-bit values, plus
// the comparison bit a<b as the leading output.
func buildDist() *bfunc.Multi {
	const n = 8
	return bfunc.NewMulti("dist", n, outputsOf(n, 5, func(p uint64) uint64 {
		a, b := field(p, n, 0, 4), field(p, n, 4, 4)
		if a < b {
			return 1<<4 | (b - a)
		}
		return a - b
	}))
}

// buildF51m is an arithmetic reconstruction with f51m's historical 8/8
// dimensions: the 5-bit sum a+b and the 3-bit difference (a−b) mod 8.
func buildF51m() *bfunc.Multi {
	const n = 8
	return bfunc.NewMulti("f51m", n, outputsOf(n, 8, func(p uint64) uint64 {
		a, b := field(p, n, 0, 4), field(p, n, 4, 4)
		return (a+b)<<3 | (a-b)&7
	}))
}

func init() {
	register(Info{Name: "adr4", Inputs: 8, Outputs: 5, Tier: 1,
		Desc:  "4+4-bit adder (8in/5out), the paper's flagship SPP win (340→72 literals)",
		build: func() *bfunc.Multi { return buildAdder("adr4", 4) }})
	register(Info{Name: "radd", Inputs: 8, Outputs: 5, Tier: 1,
		Desc:  "4+4-bit adder, historically identical results to adr4",
		build: func() *bfunc.Multi { return buildAdder("radd", 4) }})
	register(Info{Name: "add6", Inputs: 12, Outputs: 7, Tier: 1,
		Desc:  "6+6-bit adder (12in/7out), Table 3 heuristic-only row",
		build: func() *bfunc.Multi { return buildAdder("add6", 6) }})
	register(Info{Name: "cs8", Inputs: 8, Outputs: 8, Tier: 1,
		Desc:  "carry-save adder slice: ripple sums and internal carries",
		build: buildCS8})
	register(Info{Name: "life", Inputs: 9, Outputs: 1, Tier: 1,
		Desc:  "Conway's life next-state rule (9in/1out)",
		build: buildLife})
	register(Info{Name: "mlp4", Inputs: 8, Outputs: 8, Tier: 1,
		Desc:  "4×4-bit multiplier (8in/8out)",
		build: buildMlp4})
	register(Info{Name: "root", Inputs: 8, Outputs: 5, Tier: 1,
		Desc:  "integer square root of an 8-bit value (8in/5out)",
		build: buildRoot})
	register(Info{Name: "dist", Inputs: 8, Outputs: 5, Tier: 1,
		Desc:  "|a−b| of two 4-bit values plus compare bit (8in/5out)",
		build: buildDist})
	register(Info{Name: "f51m", Inputs: 8, Outputs: 8, Tier: 1,
		Desc:  "sum and modular difference of two 4-bit values (8in/8out)",
		build: buildF51m})
}
