// Package bench provides the benchmark functions for the experiment
// harness. The paper evaluates on the Espresso/MCNC suite, whose PLA
// files cannot be redistributed here; per DESIGN.md §4 the registry
// substitutes two tiers with the historical input/output dimensions:
//
//   - tier 1, known semantics: arithmetic and cellular functions whose
//     logic is public knowledge (adders, multiplier, square root,
//     distance, Conway's life) — exactly the XOR-rich class on which the
//     paper highlights SPP wins (adr4, radd, life, …);
//   - tier 2, deterministic synthetics: seeded unions of random
//     pseudoproducts and cubes for names whose logic content is not
//     public, preserving the size/density the algorithms are stressed
//     with. newtpla2 is generated from scattered minterms to reproduce
//     its historical "SPP equals SP" worst-case behaviour.
//
// Real .pla files, when available, can be loaded with LoadPLA and used
// with the same harness.
package bench

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/bfunc"
)

// Info describes a registered benchmark.
type Info struct {
	Name    string
	Inputs  int
	Outputs int
	// Tier is 1 for known-semantics reconstructions, 2 for seeded
	// synthetics (see the package comment).
	Tier int
	// Desc is a one-line description of what the generator builds.
	Desc string

	build func() *bfunc.Multi
}

var registry = map[string]Info{}

func register(info Info) {
	if _, dup := registry[info.Name]; dup {
		panic("bench: duplicate benchmark " + info.Name)
	}
	registry[info.Name] = info
}

// Names lists the registered benchmarks in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the registration info for name.
func Lookup(name string) (Info, bool) {
	i, ok := registry[name]
	return i, ok
}

// Load builds the named benchmark. Generation is deterministic: the
// same name always yields the same function.
func Load(name string) (*bfunc.Multi, error) {
	info, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q (have %v)", name, Names())
	}
	m := info.build()
	if m.Inputs != info.Inputs || m.NOutputs() != info.Outputs {
		panic(fmt.Sprintf("bench: %s generator produced %d/%d, registered %d/%d",
			name, m.Inputs, m.NOutputs(), info.Inputs, info.Outputs))
	}
	return m, nil
}

// MustLoad is Load, panicking on unknown names (registry is static, so
// failure is a programming error).
func MustLoad(name string) *bfunc.Multi {
	m, err := Load(name)
	if err != nil {
		panic(err)
	}
	return m
}

// LoadPLA reads an external Espresso-format PLA benchmark, so the real
// MCNC files drop into the harness when present.
func LoadPLA(path string) (*bfunc.Multi, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f, path)
}

func parse(r io.Reader, name string) (*bfunc.Multi, error) {
	return bfunc.ParsePLA(r, name)
}
