package bench

import (
	"strings"
	"testing"

	"repro/internal/bitvec"
)

func TestRegistryDimensions(t *testing.T) {
	for _, name := range Names() {
		info, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		m, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Inputs != info.Inputs || m.NOutputs() != info.Outputs {
			t.Errorf("%s: got %d/%d, registered %d/%d",
				name, m.Inputs, m.NOutputs(), info.Inputs, info.Outputs)
		}
		if info.Tier != 1 && info.Tier != 2 {
			t.Errorf("%s: bad tier %d", name, info.Tier)
		}
		if info.Desc == "" {
			t.Errorf("%s: missing description", name)
		}
	}
}

func TestLoadDeterministic(t *testing.T) {
	for _, name := range []string{"adr4", "addm4", "newtpla2", "dist"} {
		a := MustLoad(name)
		b := MustLoad(name)
		for o := 0; o < a.NOutputs(); o++ {
			if !a.Output(o).Equal(b.Output(o)) {
				t.Errorf("%s output %d not deterministic", name, o)
			}
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nope"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("expected unknown-benchmark error, got %v", err)
	}
}

func TestAdr4IsAnAdder(t *testing.T) {
	m := MustLoad("adr4")
	n := m.Inputs
	for p := uint64(0); p < 1<<uint(n); p++ {
		a := field(p, n, 0, 4)
		b := field(p, n, 4, 4)
		sum := a + b
		for o := 0; o < 5; o++ {
			want := sum>>uint(4-o)&1 == 1
			if m.Output(o).IsOn(p) != want {
				t.Fatalf("adr4 output %d wrong at a=%d b=%d", o, a, b)
			}
		}
	}
	// adr4 and radd must be the same function.
	r := MustLoad("radd")
	for o := 0; o < 5; o++ {
		if !m.Output(o).Equal(r.Output(o)) {
			t.Fatalf("radd output %d differs from adr4", o)
		}
	}
}

func TestLifeRule(t *testing.T) {
	m := MustLoad("life")
	f := m.Output(0)
	// Dead cell with exactly 3 neighbours is born: neighbours are all
	// vars but x4.
	p := bitvec.MaskOf(9, 0, 1, 2)
	if !f.IsOn(p) {
		t.Error("dead cell with 3 neighbours must live")
	}
	// Alive with 2 neighbours survives.
	p = bitvec.MaskOf(9, 4, 0, 8)
	if !f.IsOn(p) {
		t.Error("alive cell with 2 neighbours must survive")
	}
	// Alive with 4 neighbours dies.
	p = bitvec.MaskOf(9, 4, 0, 1, 2, 3)
	if f.IsOn(p) {
		t.Error("alive cell with 4 neighbours must die")
	}
	// Dead with 2 neighbours stays dead.
	p = bitvec.MaskOf(9, 0, 1)
	if f.IsOn(p) {
		t.Error("dead cell with 2 neighbours must stay dead")
	}
}

func TestMlp4Multiplies(t *testing.T) {
	m := MustLoad("mlp4")
	n := m.Inputs
	for _, c := range []struct{ a, b uint64 }{{3, 5}, {15, 15}, {0, 7}, {9, 11}} {
		p := c.a<<4 | c.b
		prod := c.a * c.b
		for o := 0; o < 8; o++ {
			want := prod>>uint(7-o)&1 == 1
			if m.Output(o).IsOn(p) != want {
				t.Fatalf("mlp4 output %d wrong at %d*%d", o, c.a, c.b)
			}
		}
	}
	_ = n
}

func TestRootValues(t *testing.T) {
	m := MustLoad("root")
	for _, c := range []struct{ x, s uint64 }{{0, 0}, {1, 1}, {4, 2}, {15, 3}, {16, 4}, {255, 15}} {
		for o := 0; o < 4; o++ {
			want := c.s>>uint(3-o)&1 == 1
			if m.Output(o).IsOn(c.x) != want {
				t.Fatalf("root output %d wrong at x=%d (sqrt=%d)", o, c.x, c.s)
			}
		}
	}
}

func TestDistValues(t *testing.T) {
	m := MustLoad("dist")
	// a=3 (0011), b=9 (1001): |a−b| = 6, a<b = 1.
	p := uint64(3)<<4 | 9
	if !m.Output(0).IsOn(p) {
		t.Error("dist compare bit wrong")
	}
	for o, want := range []bool{false, true, true, false} { // 6 = 0110
		if m.Output(1+o).IsOn(p) != want {
			t.Errorf("dist magnitude bit %d wrong", o)
		}
	}
}

func TestCS8InternalCarries(t *testing.T) {
	m := MustLoad("cs8")
	// a=15, b=1: ripple sums 0000, carries 1111.
	p := uint64(15)<<4 | 1
	for o := 0; o < 4; o++ {
		if m.Output(o).IsOn(p) {
			t.Errorf("cs8 sum bit %d should be 0 for 15+1", o)
		}
	}
	for o := 4; o < 8; o++ {
		if !m.Output(o).IsOn(p) {
			t.Errorf("cs8 carry bit %d should be 1 for 15+1", o)
		}
	}
}

func TestSyntheticDensityReasonable(t *testing.T) {
	// Synthetic outputs should be neither empty nor near-constant; the
	// minimizers need real work.
	for _, name := range []string{"addm4", "m4", "max512", "p1", "prom2"} {
		m := MustLoad(name)
		for o := 0; o < m.NOutputs(); o++ {
			f := m.Output(o)
			total := 1 << uint(f.N())
			if f.OnCount() == 0 {
				t.Errorf("%s(%d): empty output", name, o)
			}
			if f.OnCount() > total*95/100 {
				t.Errorf("%s(%d): near-constant output (%d/%d)", name, o, f.OnCount(), total)
			}
		}
	}
}

func TestNewtpla2IsSparseCubeUnion(t *testing.T) {
	m := MustLoad("newtpla2")
	for o := 0; o < m.NOutputs(); o++ {
		f := m.Output(o)
		if c := f.OnCount(); c == 0 || c > 150 {
			t.Errorf("newtpla2(%d): %d minterms, want a sparse cube union", o, c)
		}
	}
}
