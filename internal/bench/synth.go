package bench

import (
	"repro/internal/bfunc"
	"repro/internal/bitvec"
)

// xorshift is a tiny deterministic PRNG (Marsaglia xorshift64*), used so
// that the tier-2 synthetic benchmarks are reproducible across runs and
// Go versions (math/rand's stream is not guaranteed stable).
type xorshift struct{ s uint64 }

func newXorshift(seed uint64) *xorshift {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &xorshift{s: seed}
}

func (r *xorshift) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a value in [0, n).
func (r *xorshift) intn(n int) int {
	return int(r.next() % uint64(n))
}

// affineTerm generates the point set of a random pseudocube of the
// given degree: a random RREF basis plus a random offset.
func affineTerm(r *xorshift, n, degree int) []uint64 {
	basis := bitvec.NewBasis(n)
	for basis.Dim() < degree {
		v := r.next() & bitvec.SpaceMask(n)
		if v != 0 {
			basis.Insert(v)
		}
	}
	off := r.next() & bitvec.SpaceMask(n)
	pts := basis.Span()
	for i := range pts {
		pts[i] ^= off
	}
	return pts
}

// cubeTerm generates the point set of a random cube binding n/2+{0,1}
// variables (a fixed count, so no term can swamp the ON-set the way an
// unconstrained random mask occasionally would).
func cubeTerm(r *xorshift, n int) []uint64 {
	bound := n/2 + r.intn(2)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	var care uint64
	for _, v := range perm[:bound] {
		care |= bitvec.VarMask(n, v)
	}
	val := r.next() & care
	free := bitvec.SpaceMask(n) &^ care
	var pts []uint64
	sub := uint64(0)
	for {
		pts = append(pts, val|sub)
		sub = (sub - free) & free
		if sub == 0 {
			break
		}
	}
	return pts
}

// synthOutput builds one output as a union of `terms` random terms, a
// mix of pseudocubes (xor-rich structure the SPP minimizer can exploit)
// and cubes. affinePct is the percentage of terms drawn as pseudocubes
// rather than plain cubes.
func synthOutput(r *xorshift, n, terms, affinePct int) *bfunc.Func {
	var on []uint64
	for t := 0; t < terms; t++ {
		// Terms cover 1/8 or 1/16 of the space (1/16 or 1/32 for wide
		// inputs) so the union lands near the ~25-35% ON density of the
		// paper's benchmarks; denser functions make EPPP generation
		// blow up for every algorithm, matching the paper's starred
		// (did-not-terminate) rows.
		degree := n - 3 - r.intn(2)
		if n >= 10 {
			degree = n - 4 - r.intn(2)
		}
		if degree < 1 {
			degree = 1
		}
		if r.intn(100) < affinePct {
			on = append(on, affineTerm(r, n, degree)...)
		} else {
			on = append(on, cubeTerm(r, n)...)
		}
	}
	return bfunc.New(n, on)
}

// synthetic registers a tier-2 benchmark generated as term unions with
// the default 70% pseudocube / 30% cube term mix.
func synthetic(name string, n, outs int, seed uint64, terms int, desc string) {
	syntheticMix(name, n, outs, seed, terms, 70, desc)
}

// syntheticMix registers a tier-2 benchmark with an explicit pseudocube
// percentage. Control-logic-like names (amd) use a cube-only mix: their
// historical PLAs are sparse control tables, and an affine-rich mix at
// 14 inputs makes even the paper's heuristic blow up, which is not the
// shape Table 3 reports for them.
func syntheticMix(name string, n, outs int, seed uint64, terms, affinePct int, desc string) {
	register(Info{Name: name, Inputs: n, Outputs: outs, Tier: 2, Desc: desc,
		build: func() *bfunc.Multi {
			fns := make([]*bfunc.Func, outs)
			for o := 0; o < outs; o++ {
				r := newXorshift(seed + uint64(o)*0x9E3779B97F4A7C15)
				fns[o] = synthOutput(r, n, terms, affinePct)
			}
			return bfunc.NewMulti(name, n, fns)
		}})
}

func init() {
	// Historical Espresso-suite dimensions; logic content synthesized
	// (DESIGN.md §4). Seeds are arbitrary fixed constants.
	synthetic("addm4", 9, 8, 0xadd4, 4, "synthetic, addm4's 9in/8out dimensions")
	synthetic("m3", 8, 16, 0x33, 3, "synthetic, m3's 8in/16out dimensions")
	synthetic("m4", 8, 16, 0x44, 3, "synthetic, m4's 8in/16out dimensions")
	synthetic("max128", 7, 24, 0x128, 3, "synthetic, max128's 7in/24out dimensions")
	synthetic("max512", 9, 6, 0x512, 3, "synthetic, max512's 9in/6out dimensions")
	synthetic("max1024", 10, 6, 0x1024, 3, "synthetic, max1024's 10in/6out dimensions")
	synthetic("ex5", 8, 63, 0xe5, 3, "synthetic, ex5's 8in/63out dimensions")
	synthetic("exps", 8, 38, 0xe75, 3, "synthetic, exps's 8in/38out dimensions")
	synthetic("p1", 8, 18, 0x91, 3, "synthetic, p1's 8in/18out dimensions")
	synthetic("prom1", 9, 40, 0x9701, 3, "synthetic ROM, prom1's 9in/40out dimensions")
	synthetic("prom2", 9, 21, 0x9702, 4, "synthetic ROM, prom2's 9in/21out dimensions")
	synthetic("newcond", 11, 2, 0xc0d, 3, "synthetic, newcond's 11in/2out dimensions")
	synthetic("test1", 8, 10, 0x7e57, 3, "synthetic, test1's 8in/10out dimensions")
	synthetic("lin.rom", 7, 36, 0x117, 3, "synthetic ROM, lin.rom's 7in/36out dimensions")
	synthetic("risc", 8, 31, 0x815c, 3, "synthetic, risc's 8in/31out dimensions")
	syntheticMix("amd", 14, 24, 0xa3d, 16, 0, "synthetic control PLA, amd's 14in/24out dimensions")
	synthetic("alu", 12, 8, 0xa1f, 4, "synthetic, an ALU-sized 12in/8out function")

	// newtpla2: a few cubes with pairwise different care masks — no two
	// share a structure, so no union saves literals and SPP ≈ SP,
	// reproducing the historical worst case (paper Table 1: 74 literals
	// both ways, ~5 literals per product). Scattered single minterms
	// would NOT reproduce it: any two points of B^n pair into a
	// degree-1 pseudocube with fewer literals than the two minterm
	// products.
	syntheticMix("newtpla2", 10, 4, 0x2714, 4, 0,
		"mask-disjoint cubes: the SPP = SP worst case of Table 1")
}
