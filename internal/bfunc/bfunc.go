// Package bfunc represents single- and multi-output Boolean functions as
// explicit minterm sets, with ON/DC (don't care) semantics matching the
// Espresso PLA conventions used by the DAC'01 SPP paper's benchmarks.
//
// Points are packed uint64 values using the bitvec convention (x_0 most
// significant). A Func is immutable after construction; all accessors
// return shared slices that must not be modified by callers.
package bfunc

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
)

// Func is a single-output incompletely specified Boolean function over
// B^n: an ON-set and an optional DC-set (disjoint from ON). Points not
// in either set are OFF.
type Func struct {
	n  int
	on []uint64 // sorted, unique
	dc []uint64 // sorted, unique, disjoint from on
}

// New builds a function from its ON-set minterms (duplicates allowed).
func New(n int, on []uint64) *Func {
	return NewDC(n, on, nil)
}

// NewDC builds a function from ON and DC minterm sets. DC points that
// also appear in ON are treated as ON.
func NewDC(n int, on, dc []uint64) *Func {
	if n < 1 || n > bitvec.MaxVars {
		panic(fmt.Sprintf("bfunc: invalid variable count %d", n))
	}
	f := &Func{n: n, on: dedupSorted(n, on)}
	if len(dc) > 0 {
		d := dedupSorted(n, dc)
		// Remove ON points from DC.
		kept := d[:0]
		for _, p := range d {
			if !f.IsOn(p) {
				kept = append(kept, p)
			}
		}
		f.dc = kept
	}
	return f
}

// FromTruthTable builds a completely specified function from a table of
// 2^n booleans indexed by packed point value.
func FromTruthTable(n int, tt []bool) *Func {
	if len(tt) != 1<<uint(n) {
		panic(fmt.Sprintf("bfunc: truth table length %d != 2^%d", len(tt), n))
	}
	var on []uint64
	for p, v := range tt {
		if v {
			on = append(on, uint64(p))
		}
	}
	return New(n, on)
}

// FromPredicate builds a completely specified function by evaluating
// pred on every point of B^n. Intended for benchmark construction; n
// should be modest (≤ ~22).
func FromPredicate(n int, pred func(p uint64) bool) *Func {
	var on []uint64
	for p := uint64(0); p < 1<<uint(n); p++ {
		if pred(p) {
			on = append(on, p)
		}
	}
	return New(n, on)
}

func dedupSorted(n int, pts []uint64) []uint64 {
	if len(pts) == 0 {
		return nil
	}
	mask := bitvec.SpaceMask(n)
	out := make([]uint64, len(pts))
	copy(out, pts)
	for i, p := range out {
		if p&^mask != 0 {
			panic(fmt.Sprintf("bfunc: point %x outside B^%d", p, n))
		}
		out[i] = p
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// N returns the number of input variables.
func (f *Func) N() int { return f.n }

// On returns the sorted ON-set (shared; do not modify).
func (f *Func) On() []uint64 { return f.on }

// DC returns the sorted DC-set (shared; do not modify).
func (f *Func) DC() []uint64 { return f.dc }

// Care returns ON ∪ DC as a fresh sorted slice: the set over which
// implicants and pseudoproducts may lie.
func (f *Func) Care() []uint64 {
	if len(f.dc) == 0 {
		return append([]uint64(nil), f.on...)
	}
	out := make([]uint64, 0, len(f.on)+len(f.dc))
	i, j := 0, 0
	for i < len(f.on) && j < len(f.dc) {
		if f.on[i] < f.dc[j] {
			out = append(out, f.on[i])
			i++
		} else {
			out = append(out, f.dc[j])
			j++
		}
	}
	out = append(out, f.on[i:]...)
	out = append(out, f.dc[j:]...)
	return out
}

// OnCount returns |ON|.
func (f *Func) OnCount() int { return len(f.on) }

// IsOn reports whether p is in the ON-set.
func (f *Func) IsOn(p uint64) bool { return member(f.on, p) }

// IsDC reports whether p is in the DC-set.
func (f *Func) IsDC(p uint64) bool { return member(f.dc, p) }

// IsCare reports whether p is ON or DC.
func (f *Func) IsCare(p uint64) bool { return f.IsOn(p) || f.IsDC(p) }

func member(s []uint64, p uint64) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= p })
	return i < len(s) && s[i] == p
}

// IsConstantOne reports whether every point of B^n is ON or DC and at
// least one point is ON.
func (f *Func) IsConstantOne() bool {
	return len(f.on) > 0 && len(f.on)+len(f.dc) == 1<<uint(f.n)
}

// Equal reports whether g has the same n, ON and DC sets.
func (f *Func) Equal(g *Func) bool {
	if f.n != g.n || len(f.on) != len(g.on) || len(f.dc) != len(g.dc) {
		return false
	}
	for i := range f.on {
		if f.on[i] != g.on[i] {
			return false
		}
	}
	for i := range f.dc {
		if f.dc[i] != g.dc[i] {
			return false
		}
	}
	return true
}

// String summarizes the function.
func (f *Func) String() string {
	return fmt.Sprintf("bfunc(n=%d, |on|=%d, |dc|=%d)", f.n, len(f.on), len(f.dc))
}

// Multi is a multi-output Boolean function: a shared input space and one
// Func per output. The DAC'01 paper minimizes each output separately;
// Multi is the container the harness iterates over.
type Multi struct {
	Name    string
	Inputs  int
	Outputs []*Func
}

// NewMulti builds a multi-output function, checking input consistency.
func NewMulti(name string, inputs int, outputs []*Func) *Multi {
	for i, o := range outputs {
		if o.N() != inputs {
			panic(fmt.Sprintf("bfunc: output %d has %d inputs, want %d", i, o.N(), inputs))
		}
	}
	return &Multi{Name: name, Inputs: inputs, Outputs: outputs}
}

// NOutputs returns the number of outputs.
func (m *Multi) NOutputs() int { return len(m.Outputs) }

// Output returns output i.
func (m *Multi) Output(i int) *Func { return m.Outputs[i] }
