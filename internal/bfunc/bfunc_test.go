package bfunc

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewDedup(t *testing.T) {
	f := New(4, []uint64{3, 1, 3, 7, 1})
	if f.OnCount() != 3 {
		t.Fatalf("OnCount = %d, want 3", f.OnCount())
	}
	on := f.On()
	if !sort.SliceIsSorted(on, func(i, j int) bool { return on[i] < on[j] }) {
		t.Fatalf("ON not sorted: %v", on)
	}
}

func TestNewDCDisjoint(t *testing.T) {
	f := NewDC(4, []uint64{1, 2}, []uint64{2, 3, 3})
	if !f.IsOn(2) {
		t.Fatalf("2 should be ON")
	}
	if f.IsDC(2) {
		t.Fatalf("2 should not be DC (it is ON)")
	}
	if !f.IsDC(3) {
		t.Fatalf("3 should be DC")
	}
	care := f.Care()
	want := []uint64{1, 2, 3}
	if len(care) != len(want) {
		t.Fatalf("Care = %v", care)
	}
	for i := range want {
		if care[i] != want[i] {
			t.Fatalf("Care = %v, want %v", care, want)
		}
	}
}

func TestFromTruthTable(t *testing.T) {
	tt := []bool{false, true, true, false} // XOR of two vars
	f := FromTruthTable(2, tt)
	if f.OnCount() != 2 || !f.IsOn(1) || !f.IsOn(2) {
		t.Fatalf("truth table parse wrong: %v", f.On())
	}
}

func TestFromPredicate(t *testing.T) {
	f := FromPredicate(3, func(p uint64) bool { return p%2 == 0 })
	if f.OnCount() != 4 {
		t.Fatalf("OnCount = %d", f.OnCount())
	}
}

func TestIsConstantOne(t *testing.T) {
	if !New(2, []uint64{0, 1, 2, 3}).IsConstantOne() {
		t.Fatal("full ON should be constant one")
	}
	if !NewDC(2, []uint64{0}, []uint64{1, 2, 3}).IsConstantOne() {
		t.Fatal("ON+DC covering space should be constant one")
	}
	if New(2, []uint64{0, 1}).IsConstantOne() {
		t.Fatal("partial function is not constant one")
	}
	if NewDC(2, nil, []uint64{0, 1, 2, 3}).IsConstantOne() {
		t.Fatal("all-DC function has empty ON")
	}
}

func TestEqual(t *testing.T) {
	a := NewDC(3, []uint64{1, 2}, []uint64{4})
	b := NewDC(3, []uint64{2, 1}, []uint64{4})
	c := NewDC(3, []uint64{1, 2}, nil)
	if !a.Equal(b) {
		t.Fatal("a should equal b")
	}
	if a.Equal(c) {
		t.Fatal("a should differ from c")
	}
}

func TestCareMergeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6
		var on, dc []uint64
		for i := 0; i < 20; i++ {
			on = append(on, uint64(rng.Intn(64)))
			dc = append(dc, uint64(rng.Intn(64)))
		}
		fn := NewDC(n, on, dc)
		care := fn.Care()
		if !sort.SliceIsSorted(care, func(i, j int) bool { return care[i] < care[j] }) {
			return false
		}
		for i := 1; i < len(care); i++ {
			if care[i] == care[i-1] {
				return false
			}
		}
		for _, p := range care {
			if !fn.IsCare(p) {
				return false
			}
		}
		for p := uint64(0); p < 64; p++ {
			if fn.IsCare(p) {
				found := false
				for _, c := range care {
					if c == p {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range point")
		}
	}()
	New(2, []uint64{4})
}

func TestMultiChecksInputs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched inputs")
		}
	}()
	NewMulti("bad", 3, []*Func{New(2, nil)})
}
