package bfunc

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParsePLA checks that arbitrary input never panics the parser and
// that anything it accepts survives a write/re-parse round trip.
func FuzzParsePLA(f *testing.F) {
	f.Add(samplePLA)
	f.Add(".i 2\n.o 1\n11 1\n.e\n")
	f.Add(".i 3\n.o 2\n.type fr\n1-0 01\n--- 11\n.end\n")
	f.Add(".i 1\n.o 1\n0 -\n")
	f.Add("# only a comment\n")
	f.Add(".i 64\n.o 1\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParsePLA(strings.NewReader(src), "fuzz")
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WritePLA(&buf, m); err != nil {
			t.Fatalf("accepted design failed to serialize: %v", err)
		}
		m2, err := ParsePLA(bytes.NewReader(buf.Bytes()), "fuzz2")
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, buf.String())
		}
		if m2.Inputs != m.Inputs || m2.NOutputs() != m.NOutputs() {
			t.Fatalf("round trip changed shape")
		}
		for o := 0; o < m.NOutputs(); o++ {
			if !m.Output(o).Equal(m2.Output(o)) {
				t.Fatalf("round trip changed output %d", o)
			}
		}
	})
}
