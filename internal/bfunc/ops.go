package bfunc

import (
	"fmt"

	"repro/internal/bitvec"
)

// This file provides the function algebra used by tooling around the
// minimizers: pointwise combinators, Shannon cofactors, and structural
// predicates. Combinators require completely specified operands (no DC
// set) because pointwise semantics of don't-cares are ambiguous; the
// minimizers themselves handle DC via the care-set discipline instead.

func requireSpecified(op string, fs ...*Func) {
	for _, f := range fs {
		if len(f.dc) > 0 {
			panic(fmt.Sprintf("bfunc: %s requires completely specified operands", op))
		}
	}
}

func requireSameSpace(op string, f, g *Func) {
	if f.n != g.n {
		panic(fmt.Sprintf("bfunc: %s operands over B^%d and B^%d", op, f.n, g.n))
	}
}

// Not returns the pointwise complement of a completely specified f.
func (f *Func) Not() *Func {
	requireSpecified("Not", f)
	var on []uint64
	for p := uint64(0); p < 1<<uint(f.n); p++ {
		if !f.IsOn(p) {
			on = append(on, p)
		}
	}
	return New(f.n, on)
}

// And returns f ∧ g (both completely specified, same space).
func (f *Func) And(g *Func) *Func {
	requireSpecified("And", f, g)
	requireSameSpace("And", f, g)
	var on []uint64
	i, j := 0, 0
	for i < len(f.on) && j < len(g.on) {
		switch {
		case f.on[i] < g.on[j]:
			i++
		case f.on[i] > g.on[j]:
			j++
		default:
			on = append(on, f.on[i])
			i++
			j++
		}
	}
	return New(f.n, on)
}

// Or returns f ∨ g.
func (f *Func) Or(g *Func) *Func {
	requireSpecified("Or", f, g)
	requireSameSpace("Or", f, g)
	on := make([]uint64, 0, len(f.on)+len(g.on))
	on = append(on, f.on...)
	on = append(on, g.on...)
	return New(f.n, on)
}

// Xor returns f ⊕ g.
func (f *Func) Xor(g *Func) *Func {
	requireSpecified("Xor", f, g)
	requireSameSpace("Xor", f, g)
	var on []uint64
	i, j := 0, 0
	for i < len(f.on) || j < len(g.on) {
		switch {
		case j >= len(g.on) || (i < len(f.on) && f.on[i] < g.on[j]):
			on = append(on, f.on[i])
			i++
		case i >= len(f.on) || g.on[j] < f.on[i]:
			on = append(on, g.on[j])
			j++
		default: // equal: cancels
			i++
			j++
		}
	}
	return New(f.n, on)
}

// Cofactor returns the Shannon cofactor f|_{x_i = v}: a function over
// the same B^n whose value is independent of x_i. Points are kept in
// the full space (x_i forced to v in every retained minterm) so
// cofactors compose with the other operations without reindexing. DC
// points restrict along with ON points.
func (f *Func) Cofactor(i int, v uint64) *Func {
	if i < 0 || i >= f.n {
		panic(fmt.Sprintf("bfunc: cofactor variable x%d out of range", i))
	}
	mask := bitvec.VarMask(f.n, i)
	keepOrMove := func(pts []uint64) []uint64 {
		var out []uint64
		for _, p := range pts {
			if bitvec.Bit(p, f.n, i) == v&1 {
				out = append(out, p)
				out = append(out, p^mask)
			}
		}
		return out
	}
	return NewDC(f.n, keepOrMove(f.on), keepOrMove(f.dc))
}

// DependsOn reports whether the completely specified f depends on x_i:
// whether the two cofactors differ.
func (f *Func) DependsOn(i int) bool {
	requireSpecified("DependsOn", f)
	mask := bitvec.VarMask(f.n, i)
	for _, p := range f.on {
		if !f.IsOn(p ^ mask) {
			return true
		}
	}
	return false
}

// Support returns the variables the completely specified f depends on.
func (f *Func) Support() []int {
	var vars []int
	for i := 0; i < f.n; i++ {
		if f.DependsOn(i) {
			vars = append(vars, i)
		}
	}
	return vars
}

// SymmetricIn reports whether the completely specified f is invariant
// under swapping x_i and x_j.
func (f *Func) SymmetricIn(i, j int) bool {
	requireSpecified("SymmetricIn", f)
	mi, mj := bitvec.VarMask(f.n, i), bitvec.VarMask(f.n, j)
	for _, p := range f.on {
		bi, bj := p&mi != 0, p&mj != 0
		if bi != bj {
			swapped := p ^ mi ^ mj
			if !f.IsOn(swapped) {
				return false
			}
		}
	}
	return true
}

// IsParityLike reports whether f equals an affine function of its
// inputs (a single EXOR factor, possibly complemented): the class on
// which SPP forms maximally beat SP forms. It returns the factor's
// variable mask and complement when true.
func (f *Func) IsParityLike() (vars uint64, comp bool, ok bool) {
	requireSpecified("IsParityLike", f)
	total := uint64(1) << uint(f.n)
	if len(f.on) == 0 || uint64(len(f.on)) != total/2 {
		return 0, false, false
	}
	// Candidate linear part: x_i participates iff flipping it at the
	// witness point changes membership.
	for i := 0; i < f.n; i++ {
		m := bitvec.VarMask(f.n, i)
		if !f.IsOn(f.on[0] ^ m) {
			vars |= m
		}
	}
	comp = bitvec.Parity(f.on[0]&vars) == 0
	for p := uint64(0); p < total; p++ {
		val := bitvec.Parity(p&vars) == 1
		if comp {
			val = !val
		}
		if val != f.IsOn(p) {
			return 0, false, false
		}
	}
	return vars, comp, true
}
