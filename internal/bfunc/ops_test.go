package bfunc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
)

func randomSpecified(rng *rand.Rand, n int) *Func {
	var on []uint64
	for p := uint64(0); p < 1<<uint(n); p++ {
		if rng.Intn(2) == 0 {
			on = append(on, p)
		}
	}
	return New(n, on)
}

func TestPointwiseOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		a := randomSpecified(rng, n)
		b := randomSpecified(rng, n)
		not := a.Not()
		and := a.And(b)
		or := a.Or(b)
		xor := a.Xor(b)
		for p := uint64(0); p < 1<<uint(n); p++ {
			av, bv := a.IsOn(p), b.IsOn(p)
			if not.IsOn(p) != !av {
				return false
			}
			if and.IsOn(p) != (av && bv) {
				return false
			}
			if or.IsOn(p) != (av || bv) {
				return false
			}
			if xor.IsOn(p) != (av != bv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeMorganLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 4
		a := randomSpecified(rng, n)
		b := randomSpecified(rng, n)
		lhs := a.And(b).Not()
		rhs := a.Not().Or(b.Not())
		if !lhs.Equal(rhs) {
			t.Fatal("De Morgan violated")
		}
	}
}

func TestOpsRejectDC(t *testing.T) {
	f := NewDC(3, []uint64{1}, []uint64{2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on DC operand")
		}
	}()
	f.Not()
}

func TestOpsRejectMismatchedSpaces(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on space mismatch")
		}
	}()
	New(3, nil).And(New(4, nil))
}

func TestCofactorShannon(t *testing.T) {
	// Shannon expansion: f = x_i·f|1 ∨ x̄_i·f|0, verified pointwise.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 4
		f := randomSpecified(rng, n)
		i := rng.Intn(n)
		c0 := f.Cofactor(i, 0)
		c1 := f.Cofactor(i, 1)
		for p := uint64(0); p < 1<<uint(n); p++ {
			var want bool
			if bitvec.Bit(p, n, i) == 1 {
				want = c1.IsOn(p)
			} else {
				want = c0.IsOn(p)
			}
			if f.IsOn(p) != want {
				t.Fatalf("Shannon expansion broken at %b (var %d)", p, i)
			}
			// Cofactors are independent of x_i.
			m := bitvec.VarMask(n, i)
			if c0.IsOn(p) != c0.IsOn(p^m) || c1.IsOn(p) != c1.IsOn(p^m) {
				t.Fatalf("cofactor depends on restricted variable")
			}
		}
	}
}

func TestCofactorKeepsDC(t *testing.T) {
	f := NewDC(3, []uint64{0b100}, []uint64{0b101})
	c := f.Cofactor(0, 1)
	if !c.IsOn(0b100) || !c.IsOn(0b000) {
		t.Fatal("cofactor ON set wrong")
	}
	if !c.IsDC(0b101) || !c.IsDC(0b001) {
		t.Fatal("cofactor DC set wrong")
	}
}

func TestDependsOnSupport(t *testing.T) {
	// f = x0 ⊕ x2 over B^4.
	f := FromPredicate(4, func(p uint64) bool {
		return (bitvec.Bit(p, 4, 0) ^ bitvec.Bit(p, 4, 2)) == 1
	})
	sup := f.Support()
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 2 {
		t.Fatalf("Support = %v", sup)
	}
	if f.DependsOn(1) || f.DependsOn(3) {
		t.Fatal("false dependency")
	}
	if !f.DependsOn(0) || !f.DependsOn(2) {
		t.Fatal("missing dependency")
	}
}

func TestSymmetricIn(t *testing.T) {
	// Majority of 3 is totally symmetric.
	maj := FromPredicate(3, func(p uint64) bool {
		c := 0
		for i := 0; i < 3; i++ {
			c += int(bitvec.Bit(p, 3, i))
		}
		return c >= 2
	})
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if !maj.SymmetricIn(i, j) {
				t.Fatalf("majority not symmetric in %d,%d", i, j)
			}
		}
	}
	// f = x0·x̄1 is not symmetric in (0,1).
	f := FromPredicate(2, func(p uint64) bool {
		return bitvec.Bit(p, 2, 0) == 1 && bitvec.Bit(p, 2, 1) == 0
	})
	if f.SymmetricIn(0, 1) {
		t.Fatal("asymmetric function reported symmetric")
	}
}

func TestIsParityLike(t *testing.T) {
	// x0 ⊕ x2 ⊕ x3 complemented and not.
	for _, comp := range []bool{false, true} {
		f := FromPredicate(4, func(p uint64) bool {
			v := bitvec.Parity(p&bitvec.MaskOf(4, 0, 2, 3)) == 1
			if comp {
				v = !v
			}
			return v
		})
		vars, gotComp, ok := f.IsParityLike()
		if !ok {
			t.Fatalf("parity not recognized (comp=%v)", comp)
		}
		if vars != bitvec.MaskOf(4, 0, 2, 3) || gotComp != comp {
			t.Fatalf("vars=%04b comp=%v, want x0,x2,x3 comp=%v", vars, gotComp, comp)
		}
	}
	// Majority is not parity-like.
	maj := FromPredicate(3, func(p uint64) bool {
		c := 0
		for i := 0; i < 3; i++ {
			c += int(bitvec.Bit(p, 3, i))
		}
		return c >= 2
	})
	if _, _, ok := maj.IsParityLike(); ok {
		t.Fatal("majority misclassified as parity")
	}
	// AND has the wrong ON count.
	and := FromPredicate(2, func(p uint64) bool { return p == 3 })
	if _, _, ok := and.IsParityLike(); ok {
		t.Fatal("AND misclassified as parity")
	}
}
