package bfunc

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bitvec"
)

// ParsePLA reads a Boolean function in the Berkeley/Espresso PLA format
// (the format of the benchmark suite the paper evaluates on). Supported
// directives: .i, .o, .p (ignored count), .ilb, .ob, .type (f, fr, fd,
// fdr), .e/.end. Product terms use 0/1/- for inputs and 0/1/-/~/2/4 for
// outputs per Espresso conventions:
//
//	1 → term in ON-set of that output
//	0 → OFF (type fr/fdr) or ignored (type f/fd)
//	- or 2 → term in DC-set of that output (types fd, fdr)
//	~ or 4 → no meaning for this output
//
// Input cubes with '-' expand to all covered minterms, so functions must
// be small enough to enumerate (the SPP algorithms are explicit anyway).
func ParsePLA(r io.Reader, name string) (*Multi, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	ni, no := -1, -1
	typ := "fd"
	var onSets, dcSets [][]uint64
	lineNo := 0

	addTerm := func(in string, out string) error {
		if len(in) != ni {
			return fmt.Errorf("input part %q has %d columns, want %d", in, len(in), ni)
		}
		if len(out) != no {
			return fmt.Errorf("output part %q has %d columns, want %d", out, len(out), no)
		}
		// Expand the input cube into minterms.
		pts := []uint64{0}
		for i := 0; i < ni; i++ {
			switch in[i] {
			case '0':
				// leave bit 0
			case '1':
				for j := range pts {
					pts[j] = bitvec.SetBit(pts[j], ni, i, 1)
				}
			case '-', '2':
				ext := make([]uint64, len(pts))
				for j, p := range pts {
					ext[j] = bitvec.SetBit(p, ni, i, 1)
				}
				pts = append(pts, ext...)
			default:
				return fmt.Errorf("invalid input character %q", in[i])
			}
		}
		for o := 0; o < no; o++ {
			switch out[o] {
			case '1':
				onSets[o] = append(onSets[o], pts...)
			case '-', '2':
				if typ == "fd" || typ == "fdr" {
					dcSets[o] = append(dcSets[o], pts...)
				}
			case '0', '~', '4':
				// OFF or no-meaning: nothing to record (explicit OFF is
				// the complement for fr-type; we reconstruct OFF as the
				// complement of ON ∪ DC, which is equivalent once all
				// terms are read).
			default:
				return fmt.Errorf("invalid output character %q", out[o])
			}
		}
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, ".") {
			fields := strings.Fields(line)
			switch fields[0] {
			case ".i":
				if len(fields) != 2 {
					return nil, fmt.Errorf("pla %s:%d: malformed .i", name, lineNo)
				}
				v, err := strconv.Atoi(fields[1])
				if err != nil || v < 1 || v > bitvec.MaxVars {
					return nil, fmt.Errorf("pla %s:%d: bad input count %q", name, lineNo, fields[1])
				}
				ni = v
			case ".o":
				if len(fields) != 2 {
					return nil, fmt.Errorf("pla %s:%d: malformed .o", name, lineNo)
				}
				v, err := strconv.Atoi(fields[1])
				if err != nil || v < 1 {
					return nil, fmt.Errorf("pla %s:%d: bad output count %q", name, lineNo, fields[1])
				}
				no = v
				onSets = make([][]uint64, no)
				dcSets = make([][]uint64, no)
			case ".type":
				if len(fields) == 2 {
					typ = fields[1]
				}
			case ".p", ".ilb", ".ob", ".lb", ".phase", ".pair", ".symbolic":
				// Counts and labels are informational for us.
			case ".e", ".end":
				goto done
			default:
				// Unknown directive: skip, as Espresso tools do.
			}
			continue
		}
		if ni < 0 || no < 0 {
			return nil, fmt.Errorf("pla %s:%d: product term before .i/.o", name, lineNo)
		}
		// A term is "inputs outputs" with optional whitespace split; some
		// files run them together when there is exactly one space.
		fields := strings.Fields(line)
		var in, out string
		switch len(fields) {
		case 2:
			in, out = fields[0], fields[1]
		case 1:
			if len(fields[0]) != ni+no {
				return nil, fmt.Errorf("pla %s:%d: cannot split term %q", name, lineNo, line)
			}
			in, out = fields[0][:ni], fields[0][ni:]
		default:
			// Inputs may be space-separated from outputs with inner
			// spaces in some dialects: join all but last.
			in = strings.Join(fields[:len(fields)-1], "")
			out = fields[len(fields)-1]
		}
		if err := addTerm(in, out); err != nil {
			return nil, fmt.Errorf("pla %s:%d: %v", name, lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pla %s: %v", name, err)
	}
done:
	if ni < 0 || no < 0 {
		return nil, fmt.Errorf("pla %s: missing .i or .o", name)
	}
	outs := make([]*Func, no)
	for o := 0; o < no; o++ {
		outs[o] = NewDC(ni, onSets[o], dcSets[o])
	}
	return NewMulti(name, ni, outs), nil
}

// WritePLA writes m in minterm-per-line PLA format (type fd). The output
// is canonical: terms sorted by input value, one line per care minterm
// of any output.
func WritePLA(w io.Writer, m *Multi) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n.i %d\n.o %d\n.type fd\n", m.Name, m.Inputs, len(m.Outputs))

	type rowT struct {
		pt  uint64
		out []byte
	}
	rows := map[uint64][]byte{}
	blank := func() []byte {
		b := make([]byte, len(m.Outputs))
		for i := range b {
			b[i] = '~'
		}
		return b
	}
	for o, f := range m.Outputs {
		for _, p := range f.On() {
			r, ok := rows[p]
			if !ok {
				r = blank()
				rows[p] = r
			}
			r[o] = '1'
		}
		for _, p := range f.DC() {
			r, ok := rows[p]
			if !ok {
				r = blank()
				rows[p] = r
			}
			r[o] = '-'
		}
	}
	sorted := make([]rowT, 0, len(rows))
	for p, out := range rows {
		sorted = append(sorted, rowT{p, out})
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].pt < sorted[j].pt })
	inBuf := make([]byte, m.Inputs)
	for _, r := range sorted {
		for i := 0; i < m.Inputs; i++ {
			inBuf[i] = byte('0' + bitvec.Bit(r.pt, m.Inputs, i))
		}
		fmt.Fprintf(bw, "%s %s\n", inBuf, r.out)
	}
	fmt.Fprintln(bw, ".e")
	return bw.Flush()
}
