package bfunc

import (
	"bytes"
	"strings"
	"testing"
)

const samplePLA = `# tiny test pla
.i 3
.o 2
.ilb a b c
.ob f g
.p 4
110 10
-01 11
111 0-
000 01
.e
`

func TestParsePLABasic(t *testing.T) {
	m, err := ParsePLA(strings.NewReader(samplePLA), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if m.Inputs != 3 || m.NOutputs() != 2 {
		t.Fatalf("dims %d/%d", m.Inputs, m.NOutputs())
	}
	f, g := m.Output(0), m.Output(1)
	// 110 -> point with a=1,b=1,c=0 -> packed 0b110 = 6
	if !f.IsOn(6) {
		t.Errorf("f(110) should be ON")
	}
	// -01 expands to 001=1 and 101=5, both outputs ON
	for _, p := range []uint64{1, 5} {
		if !f.IsOn(p) || !g.IsOn(p) {
			t.Errorf("point %03b should be ON for both", p)
		}
	}
	// 111 -> f OFF (char 0), g DC (char -)
	if f.IsOn(7) || f.IsDC(7) {
		t.Errorf("f(111) should be OFF")
	}
	if !g.IsDC(7) {
		t.Errorf("g(111) should be DC")
	}
	// 000 -> g ON
	if !g.IsOn(0) || f.IsOn(0) {
		t.Errorf("000 outputs wrong")
	}
}

func TestParsePLAJoined(t *testing.T) {
	src := ".i 2\n.o 1\n101\n.e\n"
	m, err := ParsePLA(strings.NewReader(src), "joined")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Output(0).IsOn(2) {
		t.Fatalf("joined term 101 should put 10 in ON")
	}
	// A term whose run-together width is wrong must error.
	if _, err := ParsePLA(strings.NewReader(".i 2\n.o 1\n1101\n.e\n"), "bad"); err == nil {
		t.Fatal("expected error for unsplittable term")
	}
}

func TestParsePLAErrors(t *testing.T) {
	cases := []string{
		".o 1\n10 1\n",            // .i missing
		".i 2\n.o 1\n10x 1\n.e\n", // bad width
		".i 2\n.o 1\n1x 1\n.e\n",  // bad char
		".i 2\n.o 1\n10 x\n.e\n",  // bad output char
		".i abc\n.o 1\n",          // bad .i
		".i 2\n.o 1\n10 11\n.e\n", // output too wide
	}
	for i, src := range cases {
		if _, err := ParsePLA(strings.NewReader(src), "bad"); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPLARoundTrip(t *testing.T) {
	m, err := ParsePLA(strings.NewReader(samplePLA), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePLA(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := ParsePLA(bytes.NewReader(buf.Bytes()), "tiny2")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	for o := 0; o < m.NOutputs(); o++ {
		if !m.Output(o).Equal(m2.Output(o)) {
			t.Errorf("output %d not preserved by round trip\n%s", o, buf.String())
		}
	}
}

func TestParsePLATypeFR(t *testing.T) {
	// In type fr, '-' outputs are not DC.
	src := ".i 2\n.o 1\n.type fr\n11 -\n10 1\n.e\n"
	m, err := ParsePLA(strings.NewReader(src), "fr")
	if err != nil {
		t.Fatal(err)
	}
	f := m.Output(0)
	if f.IsDC(3) {
		t.Errorf("type fr must not create DC entries")
	}
	if !f.IsOn(2) {
		t.Errorf("10 should be ON")
	}
}
