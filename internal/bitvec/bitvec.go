// Package bitvec provides the GF(2) substrate used throughout the SPP
// minimizer: parity and popcount helpers on variable masks, Gaussian
// elimination and reduced row echelon form over uint64 row vectors, and
// the "normal vector" predicates of Luccio–Pagli canonical matrices.
//
// A point of the Boolean space B^n is packed into a uint64 with variable
// x_0 stored in the MOST significant of the n used bits: bit (n-1-i)
// holds x_i. This matches the paper's convention that rows of a
// canonical matrix, "interpreted as binary numbers", are sorted
// increasingly with column c_0 leftmost. All code converts through
// Bit/SetBit so the packing is defined in exactly one place.
package bitvec

import (
	"math/bits"
)

// MaxVars is the largest number of Boolean variables supported by the
// uint64 packing. Practical minimization instances use n ≤ 20.
const MaxVars = 64

// Bit reports the value of variable x_i in point p of B^n.
func Bit(p uint64, n, i int) uint64 {
	return (p >> uint(n-1-i)) & 1
}

// SetBit returns p with variable x_i set to v (0 or 1) in B^n.
func SetBit(p uint64, n, i int, v uint64) uint64 {
	mask := uint64(1) << uint(n-1-i)
	if v&1 == 1 {
		return p | mask
	}
	return p &^ mask
}

// VarMask returns the mask with only variable x_i set in B^n.
func VarMask(n, i int) uint64 {
	return 1 << uint(n-1-i)
}

// SpaceMask returns the mask covering all n variables.
func SpaceMask(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return (1 << uint(n)) - 1
}

// Parity returns the XOR of all bits of v (0 or 1).
func Parity(v uint64) uint64 {
	return uint64(bits.OnesCount64(v) & 1)
}

// OnesCount returns the number of set bits of v.
func OnesCount(v uint64) int {
	return bits.OnesCount64(v)
}

// LowestVar returns the index of the set variable with the smallest
// variable index in mask (i.e. the most significant set bit under the
// packing), or -1 if mask is zero.
func LowestVar(mask uint64, n int) int {
	if mask == 0 {
		return -1
	}
	return n - bits.Len64(mask)
}

// Vars lists the variable indices set in mask, in increasing order.
func Vars(mask uint64, n int) []int {
	vs := make([]int, 0, bits.OnesCount64(mask))
	for i := 0; i < n; i++ {
		if Bit(mask, n, i) == 1 {
			vs = append(vs, i)
		}
	}
	return vs
}

// MaskOf builds a mask from a list of variable indices.
func MaskOf(n int, vars ...int) uint64 {
	var m uint64
	for _, v := range vars {
		m |= VarMask(n, v)
	}
	return m
}

// Basis is a reduced basis of a linear subspace of GF(2)^n: rows in
// reduced row echelon form with strictly decreasing leading bits under
// the packing (i.e. strictly increasing pivot variable indices). The
// zero-length basis represents the trivial subspace {0}.
type Basis struct {
	n    int
	rows []uint64 // RREF rows, pivot variable index increasing
	piv  []int    // pivot variable index of each row
}

// NewBasis returns an empty basis over B^n.
func NewBasis(n int) *Basis {
	return &Basis{n: n}
}

// N returns the dimension of the ambient space.
func (b *Basis) N() int { return b.n }

// Dim returns the dimension of the spanned subspace.
func (b *Basis) Dim() int { return len(b.rows) }

// Rows returns the RREF rows (shared slice; callers must not modify).
func (b *Basis) Rows() []uint64 { return b.rows }

// Pivots returns the pivot variable indices, increasing (shared slice).
func (b *Basis) Pivots() []int { return b.piv }

// PivotMask returns the mask of pivot (canonical) variables.
func (b *Basis) PivotMask() uint64 {
	var m uint64
	for _, p := range b.piv {
		m |= VarMask(b.n, p)
	}
	return m
}

// Reduce returns v reduced against the basis: every pivot variable of
// the basis is eliminated from v. The result is zero iff v ∈ span(b).
func (b *Basis) Reduce(v uint64) uint64 {
	for i, r := range b.rows {
		if Bit(v, b.n, b.piv[i]) == 1 {
			v ^= r
		}
	}
	return v
}

// Contains reports whether v lies in the spanned subspace.
func (b *Basis) Contains(v uint64) bool { return b.Reduce(v) == 0 }

// Insert adds v to the basis if it is independent of the current rows,
// maintaining RREF, and reports whether the dimension grew.
func (b *Basis) Insert(v uint64) bool {
	v = b.Reduce(v)
	if v == 0 {
		return false
	}
	// Pivot of v: its lowest-index (leftmost) variable.
	pv := b.n - bits.Len64(v) // bits.Len64(v)-1 is bit position; var = n-1-pos
	// Back-substitute v into existing rows so RREF is maintained.
	for i, r := range b.rows {
		if Bit(r, b.n, pv) == 1 {
			b.rows[i] = r ^ v
		}
	}
	// Insert keeping pivot order increasing.
	at := len(b.rows)
	for i, p := range b.piv {
		if pv < p {
			at = i
			break
		}
	}
	b.rows = append(b.rows, 0)
	copy(b.rows[at+1:], b.rows[at:])
	b.rows[at] = v
	b.piv = append(b.piv, 0)
	copy(b.piv[at+1:], b.piv[at:])
	b.piv[at] = pv
	return true
}

// Clone returns an independent copy of the basis.
func (b *Basis) Clone() *Basis {
	nb := &Basis{n: b.n}
	nb.rows = append([]uint64(nil), b.rows...)
	nb.piv = append([]int(nil), b.piv...)
	return nb
}

// Span enumerates all 2^dim elements of the spanned subspace, in an
// order where element i is the XOR of the rows selected by the bits of
// i. The caller owns the returned slice.
func (b *Basis) Span() []uint64 {
	out := make([]uint64, 1, 1<<uint(len(b.rows)))
	out[0] = 0
	for _, r := range b.rows {
		for _, v := range out[:len(out):len(out)] {
			out = append(out, v^r)
		}
	}
	return out
}

// BasisOf builds the RREF basis of the span of the given vectors.
func BasisOf(n int, vecs []uint64) *Basis {
	b := NewBasis(n)
	for _, v := range vecs {
		b.Insert(v)
	}
	return b
}

// Rank returns the GF(2) rank of the given vectors over B^n.
func Rank(n int, vecs []uint64) int {
	return BasisOf(n, vecs).Dim()
}

// IsNormal reports whether the column vector u (given as u[0..len-1],
// values 0/1) is normal in the Luccio–Pagli sense: len(u) = 2^m and
// either m = 0, or u = v v' where v is normal and v' is v or its
// elementwise complement.
func IsNormal(u []uint64) bool {
	l := len(u)
	if l == 0 || l&(l-1) != 0 {
		return false
	}
	for _, x := range u {
		if x > 1 {
			return false
		}
	}
	for l > 1 {
		half := l / 2
		eq, ne := true, true
		for i := 0; i < half; i++ {
			if u[i] == u[half+i] {
				ne = false
			} else {
				eq = false
			}
		}
		if !eq && !ne {
			return false
		}
		l = half
	}
	return true
}

// IsKCanonical reports whether the normal vector u of length 2^m is
// k-canonical: u = v_0 … v_{2^{m-k}-1} with v_i = 0…0 for even i and
// 1…1 for odd i, each block of length 2^k.
func IsKCanonical(u []uint64, k int) bool {
	l := len(u)
	if l == 0 || l&(l-1) != 0 {
		return false
	}
	block := 1 << uint(k)
	if block > l {
		return false
	}
	for i, x := range u {
		want := uint64((i / block) & 1)
		if x != want {
			return false
		}
	}
	return true
}

// Log2 returns m for v = 2^m, or -1 if v is not a power of two.
func Log2(v int) int {
	if v <= 0 || v&(v-1) != 0 {
		return -1
	}
	return bits.TrailingZeros(uint(v))
}

// PermutePoint applies a variable permutation to a packed point (or
// mask): bit x_i of p becomes bit x_perm[i] of the result. perm must be
// a permutation of [0,n). Renaming variables this way is the substrate
// of the canonical-function cache: a pseudocube's offset and basis rows
// permute point-wise, and the permuted rows re-reduce to RREF.
func PermutePoint(p uint64, n int, perm []int) uint64 {
	var q uint64
	for i := 0; i < n; i++ {
		if p&VarMask(n, i) != 0 {
			q |= VarMask(n, perm[i])
		}
	}
	return q
}
