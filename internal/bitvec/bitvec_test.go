package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitSetBitRoundTrip(t *testing.T) {
	n := 11
	p := uint64(0)
	for i := 0; i < n; i++ {
		p = SetBit(p, n, i, uint64(i%2))
	}
	for i := 0; i < n; i++ {
		if got := Bit(p, n, i); got != uint64(i%2) {
			t.Fatalf("Bit(%d) = %d, want %d", i, got, i%2)
		}
	}
	// Clearing works too.
	p = SetBit(p, n, 1, 0)
	if Bit(p, n, 1) != 0 {
		t.Fatalf("SetBit clear failed")
	}
}

func TestPackingConvention(t *testing.T) {
	// x_0 is the most significant of the n bits: point with only x_0
	// set must be the largest single-variable point.
	n := 6
	if VarMask(n, 0) != 1<<5 {
		t.Fatalf("VarMask(6,0) = %b", VarMask(n, 0))
	}
	if VarMask(n, 5) != 1 {
		t.Fatalf("VarMask(6,5) = %b", VarMask(n, 5))
	}
}

func TestVarsMaskOf(t *testing.T) {
	n := 9
	m := MaskOf(n, 0, 3, 8)
	vs := Vars(m, n)
	if len(vs) != 3 || vs[0] != 0 || vs[1] != 3 || vs[2] != 8 {
		t.Fatalf("Vars = %v", vs)
	}
	if LowestVar(m, n) != 0 {
		t.Fatalf("LowestVar = %d", LowestVar(m, n))
	}
	if LowestVar(MaskOf(n, 4, 7), n) != 4 {
		t.Fatalf("LowestVar = %d", LowestVar(MaskOf(n, 4, 7), n))
	}
	if LowestVar(0, n) != -1 {
		t.Fatalf("LowestVar(0) = %d", LowestVar(0, n))
	}
}

func TestParity(t *testing.T) {
	cases := []struct {
		v    uint64
		want uint64
	}{{0, 0}, {1, 1}, {3, 0}, {7, 1}, {0xFF, 0}, {0x8000000000000001, 0}}
	for _, c := range cases {
		if got := Parity(c.v); got != c.want {
			t.Errorf("Parity(%x) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSpaceMask(t *testing.T) {
	if SpaceMask(3) != 7 {
		t.Fatalf("SpaceMask(3) = %d", SpaceMask(3))
	}
	if SpaceMask(64) != ^uint64(0) {
		t.Fatalf("SpaceMask(64) wrong")
	}
}

func TestBasisInsertRankSpan(t *testing.T) {
	n := 8
	b := NewBasis(n)
	v1 := MaskOf(n, 0, 3, 5)
	v2 := MaskOf(n, 2, 3)
	v3 := v1 ^ v2 // dependent
	if !b.Insert(v1) || !b.Insert(v2) {
		t.Fatalf("independent insert failed")
	}
	if b.Insert(v3) {
		t.Fatalf("dependent insert grew basis")
	}
	if b.Dim() != 2 {
		t.Fatalf("Dim = %d", b.Dim())
	}
	span := b.Span()
	if len(span) != 4 {
		t.Fatalf("Span size = %d", len(span))
	}
	seen := map[uint64]bool{}
	for _, s := range span {
		seen[s] = true
		if !b.Contains(s) {
			t.Fatalf("span elem %x not contained", s)
		}
	}
	for _, want := range []uint64{0, v1, v2, v3} {
		if !seen[want] {
			t.Fatalf("span missing %x", want)
		}
	}
}

func TestBasisRREFInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 16
	for trial := 0; trial < 200; trial++ {
		b := NewBasis(n)
		for j := 0; j < 10; j++ {
			b.Insert(rng.Uint64() & SpaceMask(n))
		}
		// RREF: pivots strictly increasing, each pivot variable appears
		// in exactly one row.
		piv := b.Pivots()
		for i := 1; i < len(piv); i++ {
			if piv[i] <= piv[i-1] {
				t.Fatalf("pivots not increasing: %v", piv)
			}
		}
		for i, r := range b.Rows() {
			for j, p := range piv {
				want := uint64(0)
				if i == j {
					want = 1
				}
				if Bit(r, n, p) != want {
					t.Fatalf("row %d has pivot bit %d = %d, want %d", i, p, Bit(r, n, p), want)
				}
			}
			if LowestVar(r, n) != piv[i] {
				t.Fatalf("row %d leading var %d != pivot %d", i, LowestVar(r, n), piv[i])
			}
		}
	}
}

func TestBasisReduceMembership(t *testing.T) {
	// Property: Reduce(v)==0 iff v is a XOR-combination of inserted rows.
	n := 12
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vecs := make([]uint64, 5)
		for i := range vecs {
			vecs[i] = rng.Uint64() & SpaceMask(n)
		}
		b := BasisOf(n, vecs)
		// Random combination must be contained.
		var comb uint64
		for _, v := range vecs {
			if rng.Intn(2) == 1 {
				comb ^= v
			}
		}
		if !b.Contains(comb) {
			return false
		}
		// Membership count must be exactly 2^dim over the whole space.
		count := 0
		for p := uint64(0); p < 1<<uint(n); p++ {
			if b.Contains(p) {
				count++
			}
		}
		return count == 1<<uint(b.Dim())
	}
	cfg := &quick.Config{MaxCount: 8}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBasisClone(t *testing.T) {
	n := 6
	b := BasisOf(n, []uint64{MaskOf(n, 0), MaskOf(n, 3)})
	c := b.Clone()
	c.Insert(MaskOf(n, 5))
	if b.Dim() != 2 || c.Dim() != 3 {
		t.Fatalf("clone not independent: %d %d", b.Dim(), c.Dim())
	}
}

func TestIsNormal(t *testing.T) {
	cases := []struct {
		u    []uint64
		want bool
	}{
		{[]uint64{0}, true},
		{[]uint64{1}, true},
		{[]uint64{0, 1}, true},
		{[]uint64{1, 1}, true},
		{[]uint64{0, 1, 1, 0}, true},
		{[]uint64{0, 1, 0, 1}, true},
		{[]uint64{0, 0, 1, 1}, true},
		{[]uint64{0, 1, 1, 1}, false},
		{[]uint64{0, 0, 0}, false}, // not power of two
		{[]uint64{0, 2}, false},    // non-boolean entry
		{[]uint64{}, false},        // empty
		{[]uint64{1, 0, 0, 1, 0, 1, 1, 0}, true},
		{[]uint64{1, 0, 0, 1, 0, 1, 0, 1}, false},
	}
	for i, c := range cases {
		if got := IsNormal(c.u); got != c.want {
			t.Errorf("case %d: IsNormal(%v) = %v, want %v", i, c.u, got, c.want)
		}
	}
}

func TestIsNormalMatchesPaperFigure1(t *testing.T) {
	// All six columns of the paper's Figure 1 matrix are normal.
	cols := [][]uint64{
		{0, 0, 0, 0, 1, 1, 1, 1}, // c0
		{1, 1, 1, 1, 1, 1, 1, 1}, // c1
		{0, 0, 1, 1, 0, 0, 1, 1}, // c2
		{1, 1, 0, 0, 0, 0, 1, 1}, // c3
		{0, 1, 0, 1, 0, 1, 0, 1}, // c4
		{1, 0, 1, 0, 0, 1, 0, 1}, // c5
	}
	for i, c := range cols {
		if !IsNormal(c) {
			t.Errorf("figure-1 column c%d not recognized as normal", i)
		}
	}
	// Canonical columns: c0 is 2-canonical, c2 is 1-canonical, c4 is
	// 0-canonical (paper, Section 2).
	if !IsKCanonical(cols[0], 2) {
		t.Errorf("c0 not 2-canonical")
	}
	if !IsKCanonical(cols[2], 1) {
		t.Errorf("c2 not 1-canonical")
	}
	if !IsKCanonical(cols[4], 0) {
		t.Errorf("c4 not 0-canonical")
	}
	if IsKCanonical(cols[3], 1) || IsKCanonical(cols[1], 0) {
		t.Errorf("non-canonical column misclassified")
	}
}

func TestLog2(t *testing.T) {
	if Log2(1) != 0 || Log2(2) != 1 || Log2(8) != 3 {
		t.Fatalf("Log2 powers wrong")
	}
	for _, v := range []int{0, -4, 3, 6, 12} {
		if Log2(v) != -1 {
			t.Fatalf("Log2(%d) should be -1", v)
		}
	}
}

func TestRank(t *testing.T) {
	n := 8
	if Rank(n, []uint64{0}) != 0 {
		t.Fatalf("rank of zero vector")
	}
	vs := []uint64{MaskOf(n, 0, 1), MaskOf(n, 1, 2), MaskOf(n, 0, 2)}
	if Rank(n, vs) != 2 {
		t.Fatalf("Rank = %d, want 2", Rank(n, vs))
	}
}

func BenchmarkBasisInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	vecs := make([]uint64, 64)
	for i := range vecs {
		vecs[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs := NewBasis(64)
		for _, v := range vecs {
			bs.Insert(v)
		}
	}
}
