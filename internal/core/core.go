// Package core implements the DAC'01 paper's primary contribution: SPP
// (Sum of Pseudoproducts) minimization of Boolean functions. It provides
//
//   - construction of the extended prime pseudoproduct (EPPP) set with
//     the partition-trie exact method (Algorithm 2),
//   - the quadratic pairwise baseline of Luccio–Pagli [5] for the
//     Table 2 comparison,
//   - the incremental heuristic producing SPP_k forms (Algorithm 3),
//   - the final set-covering selection, and
//   - SPP forms with evaluation/verification against the source function.
//
// All algorithms operate on single-output functions; multi-output
// benchmarks are minimized one output at a time, as in the paper.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/bfunc"
	"repro/internal/pcube"
	"repro/internal/stats"
)

// CostKind selects the covering cost function. The paper minimizes the
// number of literals; the number of factors is mentioned as the
// alternative cost.
type CostKind int

const (
	// CostLiterals counts literals in the CEX (paper default, #L).
	CostLiterals CostKind = iota
	// CostFactors counts EXOR factors.
	CostFactors
)

func (k CostKind) of(c *pcube.CEX) int {
	switch k {
	case CostFactors:
		return len(c.Factors)
	default:
		return c.Literals()
	}
}

// ErrBudget is returned when a limit in Options is exceeded before the
// computation finishes, mirroring the paper's "did not terminate after
// 2 days" stars.
var ErrBudget = errors.New("core: budget exhausted")

// Options configure minimization.
type Options struct {
	// Cost selects the covering objective. Default CostLiterals.
	Cost CostKind

	// MaxCandidates caps the total number of distinct pseudoproducts
	// generated during EPPP construction; 0 means DefaultMaxCandidates.
	MaxCandidates int

	// MaxDuration caps wall-clock time for EPPP construction; 0 means
	// no time limit.
	MaxDuration time.Duration

	// Ctx, when non-nil, cancels the whole pipeline: every phase
	// boundary and every long-running inner loop (EPPP level expansion,
	// the heuristic's descend/ascend steps, covering-column
	// construction and the exact branch and bound) polls it and returns
	// ctx.Err() — so context.DeadlineExceeded or context.Canceled, not
	// ErrBudget — when it fires. nil means no cancellation, exactly the
	// pre-context behaviour. Unlike MaxDuration (which bounds only EPPP
	// construction, mirroring the paper's per-phase timeout), Ctx bounds
	// wall-clock across phases, which is what a serving deadline needs.
	Ctx context.Context

	// CoverExact selects branch-and-bound covering (within
	// CoverMaxNodes) instead of the greedy heuristic. The paper used
	// covering heuristics for Table 1, so greedy is the default.
	CoverExact bool

	// CoverMaxNodes bounds the exact covering search (0 = solver
	// default).
	CoverMaxNodes int64

	// Workers sets the number of parallel workers used by EPPP
	// construction, the heuristic's descendant/ascendant phases and
	// multi-output minimization: 1 (or negative) means serial, 0 means
	// runtime.NumCPU(). Every worker count produces the same result —
	// the parallel engines are byte-identical to the serial ones.
	Workers int

	// CoverWorkers sets the worker count for the covering phase: the
	// column construction shards of SelectCover/MinimizeMulti and the
	// root branches of the exact branch and bound. 0 follows the
	// resolution of Workers; 1 (or negative) means serial. Every
	// setting produces the same forms.
	CoverWorkers int

	// Stats, when non-nil, receives per-phase wall times and counters
	// from every pipeline stage. nil (the default) disables the
	// observability layer entirely; the hot paths then pay only a nil
	// check (see BenchmarkStatsOverhead). The deterministic counter
	// section of the resulting report is identical for every
	// Workers/CoverWorkers setting, like the results themselves.
	Stats *stats.Recorder
}

func (o Options) workers() int {
	if o.Workers == 0 {
		return runtime.NumCPU()
	}
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

func (o Options) coverWorkers() int {
	if o.CoverWorkers == 0 {
		return o.workers()
	}
	if o.CoverWorkers < 1 {
		return 1
	}
	return o.CoverWorkers
}

// DefaultMaxCandidates bounds EPPP generation when Options.MaxCandidates
// is zero. The paper handles up to ~300k prime pseudoproducts plus
// intermediate levels; 4M keeps memory modest while covering that scale.
const DefaultMaxCandidates = 4_000_000

func (o Options) maxCandidates() int {
	if o.MaxCandidates == 0 {
		return DefaultMaxCandidates
	}
	return o.MaxCandidates
}

// ctxErr reports the options context's error, nil when no context was
// configured. Engines call it at phase boundaries so cancellation is
// honored even between budget polls.
func (o Options) ctxErr() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// budget tracks generation limits during EPPP construction. It is safe
// for concurrent use: the parallel engines have every worker spend
// against the same budget.
type budget struct {
	remaining atomic.Int64
	deadline  time.Time
	checkEach int64
	sinceLast atomic.Int64
	rec       *stats.Recorder
	ctx       context.Context // nil = not cancellable
}

func newBudget(o Options) *budget {
	b := &budget{checkEach: 1024, rec: o.Stats, ctx: o.Ctx}
	b.remaining.Store(int64(o.maxCandidates()))
	if o.MaxDuration > 0 {
		b.deadline = time.Now().Add(o.MaxDuration)
	}
	return b
}

// spend consumes n generation credits and reports whether the budget
// still holds. The deadline and the cancellation context are polled
// coarsely — every checkEach credits across all workers — to keep
// time.Now and the ctx.Err atomic out of the hot loop.
func (b *budget) spend(n int) bool {
	if b.remaining.Add(-int64(n)) < 0 {
		return false
	}
	if b.ctx != nil || !b.deadline.IsZero() {
		if b.sinceLast.Add(int64(n)) >= b.checkEach {
			b.sinceLast.Store(0)
			if b.ctx != nil && b.ctx.Err() != nil {
				return false
			}
			return !b.expired()
		}
	}
	return true
}

// failure returns the error a failed spend/expired check stands for:
// the context's error when cancellation tripped the budget, ErrBudget
// otherwise. Engines call it instead of returning ErrBudget directly so
// callers can tell a serving deadline from an exhausted search budget.
func (b *budget) failure() error {
	if b.ctx != nil {
		if err := b.ctx.Err(); err != nil {
			return err
		}
	}
	return ErrBudget
}

// refund returns n credits. The parallel engines charge optimistically
// for every pseudoproduct fresh in a worker-local shard and refund the
// cross-shard duplicates during the deterministic merge, so the net
// charge per level equals the serial engine's exactly.
func (b *budget) refund(n int) {
	b.remaining.Add(int64(n))
	b.rec.Add(stats.CtrBudgetRefunds, int64(n))
}

// expired reports whether the wall-clock deadline has passed.
func (b *budget) expired() bool {
	return !b.deadline.IsZero() && time.Now().After(b.deadline)
}

// Form is an SPP form: a sum (OR) of pseudoproducts.
type Form struct {
	N     int
	Terms []*pcube.CEX
}

// Literals returns the total number of literals (#L).
func (f Form) Literals() int {
	total := 0
	for _, t := range f.Terms {
		total += t.Literals()
	}
	return total
}

// NumTerms returns the number of pseudoproducts (#PP).
func (f Form) NumTerms() int { return len(f.Terms) }

// Eval reports the form's value on point p.
func (f Form) Eval(p uint64) bool {
	for _, t := range f.Terms {
		if t.Contains(p) {
			return true
		}
	}
	return false
}

// Verify checks that the form realizes fn: every ON point evaluates to
// 1, every OFF point to 0 (DC points are unconstrained). It walks all
// 2^n points, so it is meant for tests and the examples.
func (f Form) Verify(fn *bfunc.Func) error {
	if f.N != fn.N() {
		return fmt.Errorf("core: form over B^%d, function over B^%d", f.N, fn.N())
	}
	for p := uint64(0); p < 1<<uint(f.N); p++ {
		got := f.Eval(p)
		switch {
		case fn.IsOn(p) && !got:
			return fmt.Errorf("core: ON point %0*b not covered", f.N, p)
		case !fn.IsCare(p) && got:
			return fmt.Errorf("core: OFF point %0*b wrongly covered", f.N, p)
		}
	}
	return nil
}

// String renders the form as a sum of CEX expressions.
func (f Form) String() string {
	if len(f.Terms) == 0 {
		return "0"
	}
	parts := make([]string, len(f.Terms))
	for i, t := range f.Terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, " + ")
}
