package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bfunc"
	"repro/internal/pcube"
)

func randomFunc(rng *rand.Rand, n int, density float64, withDC bool) *bfunc.Func {
	var on, dc []uint64
	for p := uint64(0); p < 1<<uint(n); p++ {
		r := rng.Float64()
		switch {
		case r < density:
			on = append(on, p)
		case withDC && r < density+0.1:
			dc = append(dc, p)
		}
	}
	return bfunc.NewDC(n, on, dc)
}

func TestExactMinimizeVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(3)
		f := randomFunc(rng, n, 0.4, trial%2 == 0)
		res, err := MinimizeExact(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Form.Verify(f); err != nil {
			t.Fatalf("trial %d: %v\nform: %v", trial, err, res.Form)
		}
	}
}

func TestAllBuildersAgreeOnEPPP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keyset := func(set *EPPPSet) map[string]bool {
		m := map[string]bool{}
		for _, c := range set.Candidates {
			m[c.Key()] = true
		}
		return m
	}
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(2)
		f := randomFunc(rng, n, 0.45, trial%3 == 0)
		trie, err := BuildEPPP(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := BuildEPPPNaive(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		hash, err := BuildEPPPHashGrouped(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		kt, kn, kh := keyset(trie), keyset(naive), keyset(hash)
		if len(kt) != len(trie.Candidates) {
			t.Fatalf("trie candidates contain duplicates")
		}
		if len(kt) != len(kn) || len(kt) != len(kh) {
			t.Fatalf("EPPP sizes differ: trie=%d naive=%d hash=%d", len(kt), len(kn), len(kh))
		}
		for k := range kt {
			if !kn[k] || !kh[k] {
				t.Fatalf("EPPP sets differ in membership")
			}
		}
		// The trie algorithm performs no structure comparisons; the
		// naive baseline performs the full quadratic count.
		if trie.Stats.Comparisons != 0 {
			t.Fatalf("Algorithm 2 performed %d comparisons, want 0", trie.Stats.Comparisons)
		}
		if len(naive.Candidates) > 1 && naive.Stats.Comparisons == 0 {
			t.Fatalf("naive baseline reported no comparisons")
		}
		// Minimum-comparison property: every union the trie algorithm
		// performs is between same-structure pseudoproducts, so its
		// union count never exceeds the naive comparison count.
		if trie.Stats.Unions != naive.Stats.Unions {
			t.Fatalf("union counts differ: trie=%d naive=%d", trie.Stats.Unions, naive.Stats.Unions)
		}
	}
}

// allPseudoproducts enumerates every pseudocube contained in the care
// set of f by brute force over subset sizes 2^m. Exponential; n ≤ 4.
func allPseudoproducts(f *bfunc.Func) []*pcube.CEX {
	n := f.N()
	care := f.Care()
	var out []*pcube.CEX
	// Degree 0.
	for _, p := range care {
		out = append(out, pcube.FromPoint(n, p))
	}
	// Higher degrees: enumerate combinations of care points of size 2^m
	// via recursive selection, keeping affine ones.
	var rec func(start int, chosen []uint64, size int)
	rec = func(start int, chosen []uint64, size int) {
		if len(chosen) == size {
			if c, ok := pcube.FromPoints(n, chosen); ok {
				out = append(out, c)
			}
			return
		}
		for i := start; i < len(care); i++ {
			if len(care)-i < size-len(chosen) {
				break
			}
			rec(i+1, append(chosen, care[i]), size)
		}
	}
	for m := 1; 1<<uint(m) <= len(care); m++ {
		rec(0, nil, 1<<uint(m))
	}
	return out
}

func TestEPPPContainsAllPrimePseudoproducts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 3
		f := randomFunc(rng, n, 0.5, false)
		if f.OnCount() == 0 {
			continue
		}
		all := allPseudoproducts(f)
		// Prime pseudoproducts: maximal under containment.
		var primes []*pcube.CEX
		for i, c := range all {
			maximal := true
			for j, d := range all {
				if i != j && d.Degree() > c.Degree() && d.Covers(c) {
					maximal = false
					break
				}
			}
			if maximal {
				primes = append(primes, c)
			}
		}
		set, err := BuildEPPP(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		have := map[string]bool{}
		for _, c := range set.Candidates {
			have[c.Key()] = true
		}
		for _, p := range primes {
			if !have[p.Key()] {
				t.Fatalf("prime pseudoproduct %v missing from EPPP set", p)
			}
		}
	}
}

func TestDiscardRulePreservesOptimality(t *testing.T) {
	// The minimal literal cover over the EPPP candidates must equal the
	// minimal cover over ALL pseudoproducts of F (Definition 3's point).
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		n := 3
		f := randomFunc(rng, n, 0.5, trial%2 == 0)
		if f.OnCount() == 0 {
			continue
		}
		opts := Options{CoverExact: true, CoverMaxNodes: 10_000_000}
		res, err := MinimizeExact(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.CoverOptimal {
			t.Fatal("exact cover did not finish")
		}
		allSet := &EPPPSet{N: n, Candidates: allPseudoproducts(f)}
		form, _, optimal, err := SelectCover(f, allSet, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !optimal {
			t.Fatal("reference cover did not finish")
		}
		if res.Form.Literals() != form.Literals() {
			t.Fatalf("EPPP restriction lost optimality: %d vs %d literals",
				res.Form.Literals(), form.Literals())
		}
	}
}

func TestParityFunctionCollapsesToOneFactor(t *testing.T) {
	// Odd parity of n variables is a single pseudocube: one EXOR factor
	// with n literals. SP needs 2^{n-1} minterm products (n·2^{n-1}
	// literals) — the extreme case of the paper's SPP advantage.
	n := 4
	f := bfunc.FromPredicate(n, func(p uint64) bool {
		c := 0
		for i := 0; i < n; i++ {
			c += int(p >> uint(i) & 1)
		}
		return c%2 == 1
	})
	res, err := MinimizeExact(f, Options{CoverExact: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Form.Literals(); got != n {
		t.Fatalf("parity SPP literals = %d, want %d (%v)", got, n, res.Form)
	}
	if res.Form.NumTerms() != 1 {
		t.Fatalf("parity SPP terms = %d, want 1", res.Form.NumTerms())
	}
	if err := res.Form.Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestHeuristicPaperExample(t *testing.T) {
	// Paper §3.4: prime implicants x1·x2·x̄4 and x̄1·x2·x4 combine in the
	// ascendant phase into x2·(x1⊕x4). Relabel to B^3 (x0,x1,x2):
	// f = x0·x1·x̄2 + x̄0·x1·x2 = minterms {110, 011}.
	f := bfunc.New(3, []uint64{0b110, 0b011})
	res, err := Heuristic(f, 0, Options{CoverExact: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Form.Verify(f); err != nil {
		t.Fatal(err)
	}
	if got := res.Form.Literals(); got != 3 {
		t.Fatalf("SPP_0 literals = %d, want 3 (x1·(x0⊕x2))", got)
	}
	if res.Form.NumTerms() != 1 {
		t.Fatalf("SPP_0 = %v, want a single pseudoproduct", res.Form)
	}
}

func TestHeuristicFullDescentMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(2)
		f := randomFunc(rng, n, 0.4, false)
		if f.OnCount() == 0 {
			continue
		}
		opts := Options{CoverExact: true, CoverMaxNodes: 10_000_000}
		exact, err := MinimizeExact(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Heuristic(f, n-1, opts)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Form.Literals() != full.Form.Literals() {
			t.Fatalf("SPP_{n-1} literals %d != exact %d",
				full.Form.Literals(), exact.Form.Literals())
		}
	}
}

func TestHeuristicMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		n := 4
		f := randomFunc(rng, n, 0.45, false)
		if f.OnCount() == 0 {
			continue
		}
		opts := Options{CoverExact: true, CoverMaxNodes: 10_000_000}
		prev := -1
		for k := 0; k < n; k++ {
			res, err := Heuristic(f, k, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Form.Verify(f); err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			l := res.Form.Literals()
			if prev >= 0 && l > prev {
				t.Fatalf("literals increased from %d to %d at k=%d", prev, l, k)
			}
			prev = l
		}
	}
}

func TestHeuristicNeverWorseThanSPOnLiterals(t *testing.T) {
	// SPP_k candidates include every SP prime implicant, so with exact
	// covering the SPP_k literal count is at most the minimal SP count.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 4
		f := randomFunc(rng, n, 0.5, false)
		if f.OnCount() == 0 {
			continue
		}
		res, err := Heuristic(f, 0, Options{CoverExact: true, CoverMaxNodes: 10_000_000})
		if err != nil {
			t.Fatal(err)
		}
		spOnly := &EPPPSet{N: n}
		// Covering with the heuristic's own candidate pool restricted
		// to plain cubes reproduces an SP bound.
		for _, c := range allPseudoproducts(f) {
			isCube := true
			for _, fac := range c.Factors {
				if fac.Literals() != 1 {
					isCube = false
					break
				}
			}
			if isCube {
				spOnly.Candidates = append(spOnly.Candidates, c)
			}
		}
		spForm, _, _, err := SelectCover(f, spOnly, Options{CoverExact: true, CoverMaxNodes: 10_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Form.Literals() > spForm.Literals() {
			t.Fatalf("SPP_0 %d literals worse than SP %d", res.Form.Literals(), spForm.Literals())
		}
	}
}

func TestBudgetErrors(t *testing.T) {
	f := randomFunc(rand.New(rand.NewSource(8)), 5, 0.5, false)
	if _, err := BuildEPPP(f, Options{MaxCandidates: 10}); err != ErrBudget {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	if _, err := BuildEPPPNaive(f, Options{MaxCandidates: 10}); err != ErrBudget {
		t.Fatalf("naive: expected ErrBudget, got %v", err)
	}
	if _, err := Heuristic(f, 3, Options{MaxCandidates: 5}); err != ErrBudget {
		t.Fatalf("heuristic: expected ErrBudget, got %v", err)
	}
}

func TestHeuristicKRange(t *testing.T) {
	f := bfunc.New(3, []uint64{1})
	if _, err := Heuristic(f, -1, Options{}); err == nil {
		t.Fatal("negative k must error")
	}
	if _, err := Heuristic(f, 3, Options{}); err == nil {
		t.Fatal("k = n must error")
	}
}

func TestDegenerateFunctions(t *testing.T) {
	// Empty ON-set → empty form.
	empty := bfunc.New(3, nil)
	res, err := MinimizeExact(empty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Form.NumTerms() != 0 || res.Form.Literals() != 0 {
		t.Fatalf("empty function form = %v", res.Form)
	}

	// Constant one → single empty pseudoproduct, 0 literals.
	one := bfunc.FromPredicate(3, func(uint64) bool { return true })
	res, err = MinimizeExact(one, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Form.NumTerms() != 1 || res.Form.Literals() != 0 {
		t.Fatalf("constant-one form = %v", res.Form)
	}
	if err := res.Form.Verify(one); err != nil {
		t.Fatal(err)
	}
	hres, err := Heuristic(one, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hres.Form.Literals() != 0 {
		t.Fatalf("heuristic constant-one form = %v", hres.Form)
	}

	// Single minterm.
	single := bfunc.New(3, []uint64{5})
	res, err = MinimizeExact(single, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Form.Literals() != 3 || res.Form.NumTerms() != 1 {
		t.Fatalf("single minterm form = %v", res.Form)
	}
}

func TestNaiveMinimizeAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		f := randomFunc(rng, 3, 0.5, false)
		opts := Options{CoverExact: true, CoverMaxNodes: 1_000_000}
		a, err := MinimizeExact(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MinimizeNaive(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.Form.Literals() != b.Form.Literals() {
			t.Fatalf("naive pipeline literals %d != exact %d",
				b.Form.Literals(), a.Form.Literals())
		}
	}
}

func TestCostFactorsObjective(t *testing.T) {
	// With factor-count cost, parity of 4 vars still wins with a single
	// one-factor term.
	n := 4
	f := bfunc.FromPredicate(n, func(p uint64) bool {
		c := 0
		for i := 0; i < n; i++ {
			c += int(p >> uint(i) & 1)
		}
		return c%2 == 1
	})
	res, err := MinimizeExact(f, Options{Cost: CostFactors, CoverExact: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Form.Terms) != 1 || len(res.Form.Terms[0].Factors) != 1 {
		t.Fatalf("factor-cost parity form = %v", res.Form)
	}
}

func TestFormString(t *testing.T) {
	f := Form{N: 3}
	if f.String() != "0" {
		t.Fatalf("empty form renders %q", f.String())
	}
	f.Terms = append(f.Terms, pcube.FromPoint(3, 0b101))
	s := f.String()
	if s == "" || s == "0" {
		t.Fatalf("form renders %q", s)
	}
}

func TestLevelSizesDecomposition(t *testing.T) {
	// Sanity on the stats: level 0 size equals |care|, and the sum of
	// level sizes equals Candidates.
	f := bfunc.New(3, []uint64{0, 1, 2, 3, 6})
	set, err := BuildEPPP(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if set.Stats.LevelSizes[0] != 5 {
		t.Fatalf("level 0 = %d, want 5", set.Stats.LevelSizes[0])
	}
	sum := 0
	for _, s := range set.Stats.LevelSizes {
		sum += s
	}
	if sum != set.Stats.Candidates {
		t.Fatalf("sum(levels)=%d != candidates=%d", sum, set.Stats.Candidates)
	}
	if len(set.Stats.Groups) != len(set.Stats.LevelSizes) {
		t.Fatalf("groups/levels length mismatch")
	}
}

func sortedLiterals(cands []*pcube.CEX) []int {
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.Literals()
	}
	sort.Ints(out)
	return out
}

func TestCandidatesAreWithinCare(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := randomFunc(rng, 4, 0.4, true)
	set, err := BuildEPPP(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range set.Candidates {
		for _, p := range c.Points() {
			if !f.IsCare(p) {
				t.Fatalf("candidate %v leaves the care set at %04b", c, p)
			}
		}
	}
	_ = sortedLiterals(set.Candidates)
}
