package core

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bfunc"
)

func formKeys(f Form) []string {
	keys := make([]string, len(f.Terms))
	for i, c := range f.Terms {
		keys[i] = c.Key()
	}
	return keys
}

func sameForm(t *testing.T, label string, got, want Form) {
	t.Helper()
	g, w := formKeys(got), formKeys(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d terms, want %d", label, len(g), len(w))
	}
	for i := range w {
		if g[i] != w[i] {
			t.Fatalf("%s: term %d differs:\n got %q\nwant %q", label, i, g[i], w[i])
		}
	}
}

// TestSelectCoverWorkersIdentical: the sharded bitset column
// construction and the parallel exact solver produce the same form as
// CoverWorkers=1 for every worker count, with both greedy and exact
// covering, mirroring the EPPP determinism properties.
func TestSelectCoverWorkersIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	coverWorkerCounts := []int{1, 2, 4, runtime.NumCPU()}
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(3)
		f := randomFunc(rng, n, 0.45, trial%3 == 0)
		if f.OnCount() == 0 {
			continue
		}
		set, err := BuildEPPP(f, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, exact := range []bool{false, true} {
			base := Options{Workers: 1, CoverWorkers: 1, CoverExact: exact}
			want, _, wantOpt, err := SelectCover(f, set, base)
			if err != nil {
				t.Fatal(err)
			}
			if err := want.Verify(f); err != nil {
				t.Fatalf("trial %d exact=%v: serial form invalid: %v", trial, exact, err)
			}
			for _, w := range coverWorkerCounts {
				opts := base
				opts.CoverWorkers = w
				got, _, gotOpt, err := SelectCover(f, set, opts)
				if err != nil {
					t.Fatalf("trial %d exact=%v cover-workers=%d: %v", trial, exact, w, err)
				}
				if gotOpt != wantOpt {
					t.Fatalf("trial %d exact=%v cover-workers=%d: optimal=%v, want %v",
						trial, exact, w, gotOpt, wantOpt)
				}
				sameForm(t, "SelectCover", got, want)
			}
		}
	}
}

// TestMinimizeMultiCoverWorkersIdentical: the joint multi-output
// covering is likewise identical for every covering worker count.
func TestMinimizeMultiCoverWorkersIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	coverWorkerCounts := []int{1, 2, 4, runtime.NumCPU()}
	for trial := 0; trial < 6; trial++ {
		n := 3 + rng.Intn(2)
		outs := make([]*bfunc.Func, 2+rng.Intn(2))
		for o := range outs {
			outs[o] = randomFunc(rng, n, 0.4, trial%2 == 0)
		}
		m := &bfunc.Multi{Name: "t", Inputs: n, Outputs: outs}
		base := Options{Workers: 1, CoverWorkers: 1}
		want, err := MinimizeMulti(m, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range coverWorkerCounts {
			opts := base
			opts.CoverWorkers = w
			got, err := MinimizeMulti(m, opts)
			if err != nil {
				t.Fatalf("trial %d cover-workers=%d: %v", trial, w, err)
			}
			if got.SharedLiterals != want.SharedLiterals || len(got.Terms) != len(want.Terms) {
				t.Fatalf("trial %d cover-workers=%d: %d terms/%d literals, want %d/%d",
					trial, w, len(got.Terms), got.SharedLiterals, len(want.Terms), want.SharedLiterals)
			}
			for i := range want.Terms {
				if got.Terms[i].Key() != want.Terms[i].Key() {
					t.Fatalf("trial %d cover-workers=%d: term %d differs", trial, w, i)
				}
			}
			for o := range want.Drives {
				if len(got.Drives[o]) != len(want.Drives[o]) {
					t.Fatalf("trial %d cover-workers=%d: output %d drives differ", trial, w, o)
				}
				for i := range want.Drives[o] {
					if got.Drives[o][i] != want.Drives[o][i] {
						t.Fatalf("trial %d cover-workers=%d: output %d drive %d differs", trial, w, o, i)
					}
				}
			}
		}
	}
}
