package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bfunc"
	"repro/internal/cover"
	"repro/internal/pcube"
	"repro/internal/stats"
)

// This file is the incremental covering layer of the warm engine: the
// covering step shared by MinimizeExactWarm and ResumeExact, running
// entirely in point space (columns are the candidates' covered-ON point
// lists, never materialized as a cover.Instance on the greedy path),
// plus the snapshot machinery that lets a resume replay the previous
// run's greedy pick sequence instead of re-selecting it.
//
// Byte-identity argument. The cold greedy selects by the total order
// cover.Key.Better over exact (cost, new-count, column) keys; the lazy
// heap guarantees each committed pick is the true argmin. A resume
// replays the snapshot's pick trace and certifies each step against two
// facts: (1) columns whose point lists are untouched by the patch have
// the same true key at the same prefix of picks, and the recorded
// runner-up bound is optimistic for all of them (cached heap counts are
// upper bounds, so the cached key is a lower bound in the order); (2)
// the columns the patch did touch — shrunk, grown or freshly built —
// are few, and their exact keys are recomputed per step. A replayed
// pick is certified when it strictly beats the recorded bound in the
// column-independent part of the order and no dirty column's exact key
// beats it; the first step that fails falls back to the heap — which,
// run over all columns from the current coverage state, reproduces the
// cold selection's continuation exactly (already-picked columns pop at
// zero new count). The bound stored for the next generation is the old
// bound folded with the live dirty keys, which stays optimistic under
// composition of the two orders.

// coverSnap is the solved cover state persisted in a WarmState: the
// greedy pick trace (for replay) or the exact solution (for seeding),
// the final selected terms and their total cost. Immutable — concurrent
// resumes from one snapshot only read it.
type coverSnap struct {
	// picks is the greedy selection sequence before redundancy
	// elimination, each with the runner-up bound observed when it was
	// committed. Nil for exact solutions.
	picks []coverPick
	// final is the post-elimination (or exact) selection, in term order.
	final []*pcube.CEX
	cost  int
	exact bool
}

// coverPick is one recorded greedy selection: the winning candidate and
// an optimistic bound (in the cover.Key order, column index excluded)
// on every other column that was still live at that step. boundOK is
// false when the pick emptied the heap.
type coverPick struct {
	cex       *pcube.CEX
	boundCost int
	boundNW   int
	boundOK   bool
}

// pcol is one point-space covering column: a candidate, the sorted ON
// points it covers (non-empty), and its cost.
type pcol struct {
	cex  *pcube.CEX
	pts  []uint64
	cost int
}

// densePtSetMaxVars gates the dense point-set representation: for n
// variables up to this, membership is a 2^n-bit bitset (8 KiB at the
// gate); beyond it, a hash set.
const densePtSetMaxVars = 16

// ptSet is a set of points of B^n.
type ptSet struct {
	dense []uint64
	m     map[uint64]struct{}
	count int
}

func newPtSet(n int) *ptSet {
	if n <= densePtSetMaxVars {
		return &ptSet{dense: make([]uint64, ((uint64(1)<<uint(n))+63)/64)}
	}
	return &ptSet{m: make(map[uint64]struct{})}
}

func (s *ptSet) has(p uint64) bool {
	if s.dense != nil {
		return s.dense[p>>6]&(1<<(p&63)) != 0
	}
	_, ok := s.m[p]
	return ok
}

// add inserts p, reporting whether it was new.
func (s *ptSet) add(p uint64) bool {
	if s.dense != nil {
		w, b := p>>6, uint64(1)<<(p&63)
		if s.dense[w]&b != 0 {
			return false
		}
		s.dense[w] |= b
		s.count++
		return true
	}
	if _, ok := s.m[p]; ok {
		return false
	}
	s.m[p] = struct{}{}
	s.count++
	return true
}

// countNew returns how many of pts (sorted, unique) are not in the set.
func (s *ptSet) countNew(pts []uint64) int {
	nw := 0
	for _, p := range pts {
		if !s.has(p) {
			nw++
		}
	}
	return nw
}

func (s *ptSet) addAll(pts []uint64) {
	for _, p := range pts {
		s.add(p)
	}
}

// ptCounts is a multiset of points of B^n, for redundancy elimination.
type ptCounts struct {
	dense []int32
	m     map[uint64]int32
}

func newPtCounts(n int) *ptCounts {
	if n <= densePtSetMaxVars {
		return &ptCounts{dense: make([]int32, uint64(1)<<uint(n))}
	}
	return &ptCounts{m: make(map[uint64]int32)}
}

func (c *ptCounts) inc(p uint64) {
	if c.dense != nil {
		c.dense[p]++
	} else {
		c.m[p]++
	}
}

func (c *ptCounts) dec(p uint64) {
	if c.dense != nil {
		c.dense[p]--
	} else {
		c.m[p]--
	}
}

func (c *ptCounts) get(p uint64) int32 {
	if c.dense != nil {
		return c.dense[p]
	}
	return c.m[p]
}

// strictlyBetterNoCol reports whether a strictly precedes b in the
// column-independent prefix of the cover.Key order (cost-per-new-row
// ascending, then more new rows first). Equal ratio and equal count is
// a tie — not strictly better — which is the conservative answer for
// replay certification: the recorded bound might be the key of a column
// whose index precedes the winner's.
func strictlyBetterNoCol(a, b cover.Key) bool {
	l := int64(a.Cost) * int64(b.NW)
	r := int64(b.Cost) * int64(a.NW)
	if l != r {
		return l < r
	}
	return a.NW > b.NW
}

// minNoCol returns the smaller of a and b in the column-independent
// order, preferring a on ties (either is a valid optimistic bound).
func minNoCol(a, b cover.Key) cover.Key {
	if strictlyBetterNoCol(b, a) {
		return b
	}
	return a
}

// coverOut is warmSelectCover's result bundle.
type coverOut struct {
	form Form
	// pts is every candidate's sorted covered-ON point list, aligned
	// with the candidate list (empty for candidates covering only
	// don't-cares), for the next snapshot. Nil when the covering
	// short-circuited trivially and nothing was computed.
	pts     [][]uint64
	snap    *coverSnap
	time    time.Duration
	optimal bool
	// reused reports that the previous cover was served entirely from
	// the snapshot — every greedy pick replayed (or a trivial form) —
	// with no re-entry into heap selection.
	reused bool
}

// warmSelectCover is the covering step shared by MinimizeExactWarm
// (meta == nil: every candidate's ON intersection computed fresh) and
// ResumeExact (meta from resumeEPPP: carried point lists re-associated
// by index, patched only where the candidate's point signature
// intersects the edit, only new candidates computed, and the previous
// solution replayed or used as a seed). Both paths select over the same
// point-space columns in the same candidate order, which is what makes
// resume byte-identical to a cold warm run.
func warmSelectCover(f *bfunc.Func, candidates []*pcube.CEX, meta *resumeMeta, prevPts [][]uint64, prevSnap *coverSnap, patch coverPatch, opts Options) (coverOut, error) {
	start := time.Now()
	n := f.N()
	resumed := meta != nil
	if f.OnCount() == 0 {
		stop := opts.Stats.Phase(stats.PhaseCoverPatch)
		stop()
		return coverOut{form: Form{N: n},
			time: time.Since(start), optimal: true, reused: resumed}, nil
	}
	if f.IsConstantOne() {
		stop := opts.Stats.Phase(stats.PhaseCoverPatch)
		stop()
		one := &pcube.CEX{N: n, Canon: allMask(n)}
		return coverOut{form: Form{N: n, Terms: []*pcube.CEX{one}},
			time: time.Since(start), optimal: true, reused: resumed}, nil
	}
	if err := opts.ctxErr(); err != nil {
		return coverOut{}, err
	}

	on := f.On()
	ix := newPointIndex(n, on)
	pts := make([][]uint64, len(candidates))
	dirty := make([]bool, len(candidates))
	var fresh []int
	stopCols := opts.Stats.Phase(stats.PhaseCoverColumns)
	// A candidate whose cube contains no edited point keeps its list
	// verbatim: every point the patch can drop or add lies inside the
	// cube, so a clean signature intersection is a proof, not a guess.
	var patchSig uint64
	for _, p := range patch.removedOn {
		patchSig |= pointSig(p)
	}
	for _, p := range patch.dcToOn {
		patchSig |= pointSig(p)
	}
	// The association/patch pass is embarrassingly parallel (each slot
	// writes only pts[i]/dirty[i]); per-shard fresh lists concatenate in
	// shard order, which is ascending candidate order — the same list the
	// serial loop built, so dirtyOrds and everything downstream are
	// identical for every worker count.
	workers := opts.coverWorkers()
	freshSh := make([][]int, workers)
	shardSlice(len(candidates), workers, func(shard, lo, hi int) {
		opts.Stats.Do(stats.PhaseCoverColumns, func() {
			var fr []int
			for i := lo; i < hi; i++ {
				if resumed {
					if k := meta.oldIdx[i]; k >= 0 {
						old := prevPts[k]
						if meta.sigs[i]&patchSig == 0 {
							pts[i] = old
							continue
						}
						pts[i], dirty[i] = patchPoints(old, candidates[i], patch)
						continue
					}
				}
				fr = append(fr, i)
				dirty[i] = true
			}
			freshSh[shard] = fr
		})
	})
	for _, fr := range freshSh {
		fresh = append(fresh, fr...)
	}
	shardSlice(len(fresh), opts.coverWorkers(), func(_, lo, hi int) {
		opts.Stats.Do(stats.PhaseCoverColumns, func() {
			var rows []int
			var basis []uint64
			for _, i := range fresh[lo:hi] {
				rows, basis, _ = candidateRows(candidates[i], on, ix, rows[:0], basis)
				out := make([]uint64, len(rows))
				for k, row := range rows {
					out[k] = on[row]
				}
				pts[i] = out
			}
		})
	})
	pcols := make([]pcol, 0, len(candidates))
	var dirtyOrds []int
	for i, c := range candidates {
		if len(pts[i]) == 0 {
			continue // covers only don't-cares
		}
		if dirty[i] {
			dirtyOrds = append(dirtyOrds, len(pcols))
		}
		pcols = append(pcols, pcol{cex: c, pts: pts[i], cost: opts.Cost.of(c)})
	}
	var in *cover.Instance
	if opts.CoverExact {
		// The exact solver needs a real Instance (rows indexed into the
		// ON list); all column row lists share one backing array.
		in = &cover.Instance{NRows: len(on), Cols: make([]cover.Column, 0, len(pcols))}
		total := 0
		for i := range pcols {
			total += len(pcols[i].pts)
		}
		backing := make([]int, 0, total)
		for i := range pcols {
			lo := len(backing)
			for _, p := range pcols[i].pts {
				backing = append(backing, ix.lookup(p))
			}
			in.Cols = append(in.Cols, cover.Column{
				Cost: pcols[i].cost,
				Rows: backing[lo:len(backing):len(backing)],
			})
		}
	}
	stopCols()
	if resumed && opts.Stats != nil {
		opts.Stats.Add(stats.CtrCoverDirty, int64(len(dirtyOrds)))
	}
	if err := opts.ctxErr(); err != nil {
		return coverOut{}, err
	}

	if !opts.CoverExact {
		var snapIn *coverSnap
		if resumed && prevSnap != nil && !prevSnap.exact {
			snapIn = prevSnap
		}
		kept, snap, reused, err := warmGreedyCover(n, len(on), pcols, snapIn, dirtyOrds, resumed, opts)
		if err != nil {
			return coverOut{}, err
		}
		form := Form{N: n}
		for _, j := range kept {
			form.Terms = append(form.Terms, pcols[j].cex)
		}
		return coverOut{form: form, pts: pts, snap: snap,
			time: time.Since(start), optimal: false, reused: reused}, nil
	}

	if err := in.Validate(); err != nil {
		return coverOut{}, fmt.Errorf("core: candidate set does not cover ON-set: %v", err)
	}
	exOpts := cover.ExactOptions{
		MaxNodes: opts.CoverMaxNodes,
		Workers:  opts.coverWorkers(),
		Stats:    opts.Stats,
		Ctx:      opts.Ctx,
	}
	if resumed && prevSnap != nil && prevSnap.exact && exOpts.Workers > 1 {
		stopPatch := opts.Stats.Phase(stats.PhaseCoverPatch)
		opts.Stats.Do(stats.PhaseCoverPatch, func() {
			exOpts.WarmBound, exOpts.WarmFirst = warmExactSeed(n, len(on), prevSnap, candidates, pts, pcols, opts)
		})
		stopPatch()
	}
	res := cover.Exact(in, exOpts)
	form := Form{N: n}
	for _, j := range res.Picked {
		form.Terms = append(form.Terms, pcols[j].cex)
	}
	snap := &coverSnap{final: form.Terms, cost: res.Cost, exact: true}
	return coverOut{form: form, pts: pts, snap: snap,
		time: time.Since(start), optimal: res.Optimal, reused: false}, nil
}

// warmExactSeed re-validates the previous exact solution against the
// patched point lists and, when it still covers the edited ON-set,
// returns its cost as the incumbent bound plus the column ordinals of
// its picks as the branch-order seed. A dead pick (candidate no longer
// in the set) or an uncovered point voids the seed — (0, nil) means run
// unseeded. Picks whose patched point list went empty still cost into
// the bound (it stays a valid cover's cost, just looser) but cannot
// lead branches. Resolution maps only the few picks, never the whole
// column set: one pass over candidates and one over pcols against a
// pick-sized map.
func warmExactSeed(n, onCount int, snap *coverSnap, candidates []*pcube.CEX, pts [][]uint64, pcols []pcol, opts Options) (int, []int) {
	want := make(map[*pcube.CEX]int, len(snap.final))
	for i, c := range snap.final {
		want[c] = i
	}
	ptsOf := make([][]uint64, len(snap.final))
	found := make([]bool, len(snap.final))
	ords := make([]int, len(snap.final))
	for i := range ords {
		ords[i] = -1
	}
	for i, c := range candidates {
		if k, ok := want[c]; ok {
			ptsOf[k], found[k] = pts[i], true
		}
	}
	for j := range pcols {
		if k, ok := want[pcols[j].cex]; ok {
			ords[k] = j
		}
	}
	seen := newPtSet(n)
	bound := 0
	var first []int
	for k, c := range snap.final {
		if !found[k] {
			return 0, nil
		}
		bound += opts.Cost.of(c)
		seen.addAll(ptsOf[k])
		if ords[k] >= 0 {
			first = append(first, ords[k])
		}
	}
	if seen.count != onCount {
		return 0, nil
	}
	return bound, first
}

// warmGreedyCover runs the greedy covering over point-space columns:
// replay the snapshot's pick trace as far as it can be certified, then
// continue (or start, when snapIn is nil) with the lazy heap over all
// columns from the current coverage state, then eliminate redundant
// picks. Returns the kept column ordinals sorted ascending, the next
// snapshot, and whether the whole selection was served by replay.
func warmGreedyCover(n, nrows int, pcols []pcol, snapIn *coverSnap, dirtyOrds []int, resumed bool, opts Options) ([]int, *coverSnap, bool, error) {
	covd := newPtSet(n)
	remaining := nrows
	var pickSeq []int
	var trace []coverPick

	if snapIn != nil {
		stopPatch := opts.Stats.Phase(stats.PhaseCoverPatch)
		opts.Stats.Do(stats.PhaseCoverPatch, func() {
			pickSeq, trace, remaining = replayPicks(pcols, snapIn, dirtyOrds, covd, remaining)
		})
		stopPatch()
	}
	replayed := int64(len(pickSeq))

	var kept []int
	var reevals int64
	var lgErr error
	stopGreedy := opts.Stats.Phase(stats.PhaseCoverGreedy)
	opts.Stats.Do(stats.PhaseCoverGreedy, func() {
		if remaining > 0 {
			_, reevals, lgErr = cover.LazyGreedy(len(pcols), remaining,
				func(j int) int { return pcols[j].cost },
				func(j int) int { return len(pcols[j].pts) },
				func(j int) int { return covd.countNew(pcols[j].pts) },
				func(j int) { covd.addAll(pcols[j].pts) },
				func(p cover.GreedyPick) {
					pk := coverPick{cex: pcols[p.Col].cex}
					if p.BoundOK {
						pk.boundCost, pk.boundNW, pk.boundOK = p.Bound.Cost, p.Bound.NW, true
					}
					pickSeq = append(pickSeq, p.Col)
					trace = append(trace, pk)
				})
		}
		if lgErr == nil {
			kept = eliminateRedundantPts(n, pcols, pickSeq)
		}
	})
	stopGreedy()
	if lgErr != nil {
		return nil, nil, false, fmt.Errorf("core: candidate set does not cover ON-set: %v", lgErr)
	}
	resolved := int64(len(pickSeq)) - replayed
	sort.Ints(kept)
	cost := 0
	final := make([]*pcube.CEX, len(kept))
	for i, j := range kept {
		cost += pcols[j].cost
		final[i] = pcols[j].cex
	}
	if opts.Stats != nil {
		opts.Stats.Add(stats.CtrGreedyPicks, int64(len(pickSeq)))
		opts.Stats.Add(stats.CtrGreedyReevals, reevals)
		opts.Stats.Add(stats.CtrGreedyRedundant, int64(len(pickSeq)-len(kept)))
		if resumed {
			opts.Stats.Add(stats.CtrCoverReplayed, replayed)
			opts.Stats.Add(stats.CtrCoverResolved, resolved)
		}
	}
	snap := &coverSnap{picks: trace, final: final, cost: cost}
	reused := resumed && snapIn != nil && resolved == 0
	return kept, snap, reused, nil
}

// replayPicks replays the snapshot's greedy pick trace step by step,
// certifying each recorded winner as the true argmin of the current
// state. Clean winners (point list untouched by the patch) only need to
// beat the exact keys of the live dirty columns: at the identical
// covered prefix every clean column's key — including the winner's — is
// exactly what it was in the generation that certified this pick as the
// argmin over all of them, and the ordinal tiebreak between surviving
// candidates is preserved by the canonical candidate order, so no clean
// column can have overtaken a clean winner. A dirty winner's key DID
// change, so it must additionally strictly beat the recorded runner-up
// bound (optimistic over every clean column) in the column-independent
// order. The replay stops at the first step that fails — the heap
// continuation takes over from exactly that coverage state. Each
// certified step re-records its bound for the next generation: the old
// bound folded with the live dirty keys. A missing old bound (pick
// emptied the heap) means no untouched column was live, so only the
// dirty keys constrain the step.
func replayPicks(pcols []pcol, snap *coverSnap, dirtyOrds []int, covd *ptSet, remaining int) ([]int, []coverPick, int) {
	// Resolve ordinals for the recorded picks only: one pass over pcols
	// against a pick-sized map, not a column-sized index of everything.
	ordOf := make(map[*pcube.CEX]int, len(snap.picks))
	for i := range snap.picks {
		ordOf[snap.picks[i].cex] = -1
	}
	for i := range pcols {
		if _, ok := ordOf[pcols[i].cex]; ok {
			ordOf[pcols[i].cex] = i
		}
	}
	dirtySet := make(map[int]bool, len(dirtyOrds))
	for _, d := range dirtyOrds {
		dirtySet[d] = true
	}
	var pickSeq []int
	var trace []coverPick
	for i := range snap.picks {
		if remaining == 0 {
			break
		}
		pk := &snap.picks[i]
		ord := ordOf[pk.cex]
		if ord < 0 { // pick's candidate no longer exists (or covers no ON point)
			break
		}
		c := &pcols[ord]
		nw := covd.countNew(c.pts)
		if nw == 0 {
			break
		}
		w := cover.Key{Cost: c.cost, NW: nw, Col: ord}
		nb := cover.Key{Cost: pk.boundCost, NW: pk.boundNW}
		nbOK := pk.boundOK
		if dirtySet[ord] && nbOK && !strictlyBetterNoCol(w, nb) {
			break
		}
		certified := true
		for _, d := range dirtyOrds {
			if d == ord {
				continue
			}
			dc := &pcols[d]
			dnw := covd.countNew(dc.pts)
			if dnw == 0 {
				continue
			}
			dk := cover.Key{Cost: dc.cost, NW: dnw, Col: d}
			if dk.Better(w) {
				certified = false
				break
			}
			if nbOK {
				nb = minNoCol(nb, cover.Key{Cost: dk.Cost, NW: dk.NW})
			} else {
				nb, nbOK = cover.Key{Cost: dk.Cost, NW: dk.NW}, true
			}
		}
		if !certified {
			break
		}
		covd.addAll(c.pts)
		remaining -= nw
		pickSeq = append(pickSeq, ord)
		trace = append(trace, coverPick{cex: c.cex, boundCost: nb.Cost, boundNW: nb.NW, boundOK: nbOK})
	}
	return pickSeq, trace, remaining
}

// eliminateRedundantPts is cover's eliminateRedundant in point space:
// drop picked columns (most expensive first) every one of whose points
// is covered by at least two still-alive picks. Identical comparator
// and iteration order, so the kept set matches what the cold path's
// Instance-based elimination computes. Preserves pick order.
func eliminateRedundantPts(n int, pcols []pcol, picked []int) []int {
	if len(picked) <= 1 {
		return append([]int(nil), picked...)
	}
	order := append([]int(nil), picked...)
	sort.Slice(order, func(a, b int) bool {
		return pcols[order[a]].cost > pcols[order[b]].cost
	})
	cnt := newPtCounts(n)
	for _, j := range picked {
		for _, p := range pcols[j].pts {
			cnt.inc(p)
		}
	}
	var dropped map[int]bool
	for _, j := range order {
		redundant := true
		for _, p := range pcols[j].pts {
			if cnt.get(p) < 2 {
				redundant = false
				break
			}
		}
		if redundant {
			for _, p := range pcols[j].pts {
				cnt.dec(p)
			}
			if dropped == nil {
				dropped = make(map[int]bool, 4)
			}
			dropped[j] = true
		}
	}
	if dropped == nil {
		return append([]int(nil), picked...)
	}
	out := make([]int, 0, len(picked)-len(dropped))
	for _, j := range picked {
		if !dropped[j] {
			out = append(out, j)
		}
	}
	return out
}
