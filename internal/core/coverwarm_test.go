package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bfunc"
	"repro/internal/cover"
)

// deltaFromBits builds a valid edit script from a fuzz-supplied point
// mask: each set bit of bits moves that point between the ON / DC / OFF
// classes, with the direction drawn from rng.
func deltaFromBits(rng *rand.Rand, fn *bfunc.Func, bits uint64) Delta {
	var d Delta
	for p := uint64(0); p < 1<<uint(fn.N()); p++ {
		if bits&(1<<p) == 0 {
			continue
		}
		switch {
		case fn.IsOn(p):
			d.RemoveOn = append(d.RemoveOn, p)
			if rng.Intn(2) == 0 {
				d.AddDC = append(d.AddDC, p)
			}
		case fn.IsDC(p):
			if rng.Intn(2) == 0 {
				d.AddOn = append(d.AddOn, p)
			} else {
				d.RemoveDC = append(d.RemoveDC, p)
			}
		default:
			if rng.Intn(2) == 0 {
				d.AddOn = append(d.AddOn, p)
			} else {
				d.AddDC = append(d.AddDC, p)
			}
		}
	}
	return d
}

// FuzzIncrementalCover drives the incremental covering layer against
// the cold oracle: every resume's patched cover — certified greedy
// replay, heap continuation, or seeded exact search — must be
// byte-identical to a cold warm-engine run on the edited function.
// Chains two edits so the snapshot written by one resume feeds the
// next, and flips between the greedy and exact solver paths (including
// parallel exact, which takes the warm branch-and-bound seed).
func FuzzIncrementalCover(f *testing.F) {
	f.Add(uint64(0x9e37), uint64(0x3c5a), uint64(0x0180), uint64(0x41), uint64(0x212))
	f.Add(uint64(7), uint64(0xffff), uint64(0), uint64(0x8001), uint64(0x18))
	f.Add(uint64(3), uint64(0x00ff), uint64(0xff00), uint64(0x1111), uint64(0x2222))
	f.Add(uint64(1), uint64(0xaaaa), uint64(0x5555), uint64(0xf), uint64(0xf0))
	f.Fuzz(func(t *testing.T, seed, onBits, dcBits, editBits, editBits2 uint64) {
		const n = 4 // 16-point space: every mask bit is a point
		var on, dc []uint64
		for p := uint64(0); p < 1<<n; p++ {
			switch {
			case onBits&(1<<p) != 0:
				on = append(on, p)
			case dcBits&(1<<p) != 0:
				dc = append(dc, p)
			}
		}
		fn := bfunc.NewDC(n, on, dc)
		opts := Options{}
		if seed&1 != 0 {
			opts = Options{CoverExact: true, CoverMaxNodes: 1 << 16}
			if seed&2 != 0 {
				opts.CoverWorkers = 4 // parallel exact: warm seeding active
			}
		}
		res, ws, err := MinimizeExactWarm(fn, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.CoverReused {
			t.Fatal("cold run reported a reused cover")
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		for _, bits := range []uint64{editBits, editBits2} {
			d := deltaFromBits(rng, ws.f, bits)
			ws = requireResumeMatchesCold(t, ws, d, opts)
		}
	})
}

func TestResumeExactCoverSeeded(t *testing.T) {
	// With parallel workers the exact solver takes the warm-seed path:
	// the previous solution's cost becomes the incumbent bound and its
	// picks lead the root branch order. Identity against cold must hold
	// across chained resumes.
	rng := rand.New(rand.NewSource(13))
	opts := Options{CoverExact: true, CoverMaxNodes: 1 << 20, CoverWorkers: 4}
	for trial := 0; trial < 4; trial++ {
		f := randomFunc(rng, 5, 0.35, true)
		_, ws, err := MinimizeExactWarm(f, opts)
		if err != nil {
			t.Fatalf("trial %d: cold build: %v", trial, err)
		}
		for step := 0; step < 2; step++ {
			d := randomDelta(rng, ws.f, 2+step)
			ws = requireResumeMatchesCold(t, ws, d, opts)
		}
	}
}

func TestResumeConcurrentSharedSnapshot(t *testing.T) {
	// Eight concurrent resumes from ONE canonical snapshot: every
	// goroutine replays (and, on the exact path, seeds from) the same
	// immutable coverSnap. Must neither race nor diverge from the cold
	// oracle. Run under -race via make check-race.
	for _, tc := range []struct {
		name string
		n    int
		opts Options
	}{
		{"greedy", 6, Options{CoverWorkers: 4}},
		// Byte-identity of the exact path is only guaranteed when the
		// search completes, so the exact case stays small enough that the
		// node budget is never exhausted (asserted on the cold runs below).
		{"exact", 5, Options{CoverExact: true, CoverMaxNodes: 1 << 20, CoverWorkers: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(21))
			f := randomFunc(rng, tc.n, 0.3, true)
			_, ws, err := MinimizeExactWarm(f, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			type job struct {
				d    Delta
				want string
			}
			jobs := make([]job, 8)
			for i := range jobs {
				d := randomDelta(rng, f, 1+i%4)
				edited, err := ws.Apply(d)
				if err != nil {
					t.Fatal(err)
				}
				cold, _, err := MinimizeExactWarm(edited, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				if tc.opts.CoverExact && !cold.CoverOptimal {
					t.Fatalf("job %d: exact search exhausted its node budget; shrink the case", i)
				}
				jobs[i] = job{d: d, want: cold.Form.String()}
			}
			var wg sync.WaitGroup
			errs := make([]string, len(jobs))
			for i := range jobs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					res, _, err := ResumeExact(ws, jobs[i].d, tc.opts)
					if err != nil {
						errs[i] = err.Error()
						return
					}
					if got := res.Form.String(); got != jobs[i].want {
						errs[i] = "form mismatch: got " + got + " want " + jobs[i].want
					}
				}(i)
			}
			wg.Wait()
			for i, e := range errs {
				if e != "" {
					t.Errorf("job %d: %s", i, e)
				}
			}
		})
	}
}

func TestCoverReusedFlag(t *testing.T) {
	// A resume whose edit empties the ON-set is served trivially from
	// the warm state and reports CoverReused; cold runs never do.
	f := bfunc.New(4, []uint64{3, 5})
	res, ws, err := MinimizeExactWarm(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoverReused {
		t.Fatal("cold run reported a reused cover")
	}
	res2, _, err := ResumeExact(ws, Delta{RemoveOn: []uint64{3, 5}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.CoverReused {
		t.Fatal("trivial resume did not report a reused cover")
	}
}

func TestPtSetRepresentations(t *testing.T) {
	// Dense bitset below the gate, hash set above — same behavior.
	for _, n := range []int{4, densePtSetMaxVars + 1} {
		s := newPtSet(n)
		if n <= densePtSetMaxVars && s.dense == nil {
			t.Fatalf("n=%d: expected dense representation", n)
		}
		if n > densePtSetMaxVars && s.m == nil {
			t.Fatalf("n=%d: expected sparse representation", n)
		}
		if !s.add(3) || s.add(3) {
			t.Fatalf("n=%d: add dedup broken", n)
		}
		s.addAll([]uint64{1, 3, 7})
		if s.count != 3 {
			t.Fatalf("n=%d: count: got %d want 3", n, s.count)
		}
		if !s.has(7) || s.has(2) {
			t.Fatalf("n=%d: membership broken", n)
		}
		if got := s.countNew([]uint64{0, 1, 2, 3}); got != 2 {
			t.Fatalf("n=%d: countNew: got %d want 2", n, got)
		}
	}
}

func TestPtCountsRepresentations(t *testing.T) {
	for _, n := range []int{4, densePtSetMaxVars + 1} {
		c := newPtCounts(n)
		c.inc(5)
		c.inc(5)
		c.inc(9)
		c.dec(5)
		if got := c.get(5); got != 1 {
			t.Fatalf("n=%d: get(5): got %d want 1", n, got)
		}
		if got := c.get(9); got != 1 {
			t.Fatalf("n=%d: get(9): got %d want 1", n, got)
		}
		if got := c.get(0); got != 0 {
			t.Fatalf("n=%d: get(0): got %d want 0", n, got)
		}
	}
}

func TestStrictlyBetterNoCol(t *testing.T) {
	cases := []struct {
		a, b cover.Key
		want bool
	}{
		{cover.Key{Cost: 1, NW: 4}, cover.Key{Cost: 1, NW: 3}, true},  // better ratio
		{cover.Key{Cost: 1, NW: 3}, cover.Key{Cost: 1, NW: 4}, false}, // worse ratio
		{cover.Key{Cost: 2, NW: 4}, cover.Key{Cost: 1, NW: 2}, true},  // equal ratio, more rows
		{cover.Key{Cost: 1, NW: 2}, cover.Key{Cost: 2, NW: 4}, false}, // equal ratio, fewer rows
		{cover.Key{Cost: 3, NW: 5}, cover.Key{Cost: 3, NW: 5}, false}, // exact tie
	}
	for i, tc := range cases {
		if got := strictlyBetterNoCol(tc.a, tc.b); got != tc.want {
			t.Errorf("case %d: strictlyBetterNoCol(%v, %v) = %v want %v", i, tc.a, tc.b, got, tc.want)
		}
	}
	// minNoCol prefers its first argument on ties.
	a, b := cover.Key{Cost: 3, NW: 5, Col: 1}, cover.Key{Cost: 3, NW: 5, Col: 2}
	if got := minNoCol(a, b); got.Col != 1 {
		t.Errorf("minNoCol tie: got col %d want 1", got.Col)
	}
	if got := minNoCol(b, cover.Key{Cost: 1, NW: 4}); got.Cost != 1 {
		t.Errorf("minNoCol: expected the strictly better key to win")
	}
}
