package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bfunc"
)

// randFunc builds a dense random function: random ON-sets have large
// EPPP candidate spaces, so construction runs long enough to cancel.
func randFunc(n int, seed int64) *bfunc.Func {
	rng := rand.New(rand.NewSource(seed))
	var on []uint64
	for p := uint64(0); p < 1<<uint(n); p++ {
		if rng.Intn(2) == 0 {
			on = append(on, p)
		}
	}
	return bfunc.New(n, on)
}

func TestMinimizePreCancelledContext(t *testing.T) {
	f := randFunc(8, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range map[string]func() error{
		"exact": func() error { _, err := MinimizeExact(f, Options{Ctx: ctx, Workers: 1}); return err },
		"naive": func() error { _, err := MinimizeNaive(f, Options{Ctx: ctx, Workers: 1}); return err },
		"heur":  func() error { _, err := Heuristic(f, 1, Options{Ctx: ctx, Workers: 1}); return err },
		"par":   func() error { _, err := MinimizeExact(f, Options{Ctx: ctx, Workers: 4}); return err },
	} {
		if err := run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: got %v, want context.Canceled", name, err)
		}
	}
}

func TestMinimizeContextCancelMidRun(t *testing.T) {
	// n=13 random: EPPP construction takes seconds serially, so the
	// 30ms cancellation must land inside the level expansion (the
	// budget's coarse ctx poll), not at a phase boundary.
	f := randFunc(13, 2)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		time.AfterFunc(30*time.Millisecond, cancel)
		start := time.Now()
		_, err := MinimizeExact(f, Options{Ctx: ctx, Workers: workers})
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if elapsed > 5*time.Second {
			t.Fatalf("workers=%d: cancellation honored only after %v", workers, elapsed)
		}
	}
}

func TestMinimizeContextDeadline(t *testing.T) {
	f := randFunc(13, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := MinimizeExact(f, Options{Ctx: ctx, Workers: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// TestMinimizeContextUncancelledIdentical: passing a live context must
// not change results — same form as a run with no context at all.
func TestMinimizeContextUncancelledIdentical(t *testing.T) {
	f := randFunc(8, 4)
	ctx := context.Background()
	plain, err := MinimizeExact(f, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := MinimizeExact(f, Options{Ctx: ctx, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Form.String() != withCtx.Form.String() {
		t.Fatalf("ctx changed the result:\n  plain: %v\n  ctx:   %v", plain.Form, withCtx.Form)
	}
	if err := withCtx.Form.Verify(f); err != nil {
		t.Fatal(err)
	}
}
