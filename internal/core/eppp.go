package core

import (
	"time"

	"repro/internal/bfunc"
	"repro/internal/pcube"
	"repro/internal/ptrie"
	"repro/internal/stats"
)

// BuildStats records the work performed during EPPP construction; the
// paper's Table 2 compares this phase across the two algorithms, and the
// comparison counter makes the speedup machine-independent.
type BuildStats struct {
	// Candidates is the number of distinct pseudoproducts generated
	// across all degrees (the size of the search space materialized).
	Candidates int
	// EPPP is the number of retained extended prime pseudoproducts.
	EPPP int
	// Unions is the number of Algorithm-1 union operations performed.
	Unions int64
	// Fresh is the number of union successes: distinct pseudoproducts a
	// union (or heuristic descent) step admitted to the next level.
	// Like every other field except BuildTime it is identical for every
	// worker count.
	Fresh int64
	// Comparisons is the number of structure comparisons performed.
	// Algorithm 2 performs none (grouping makes every considered pair
	// unify); the naive baseline performs |X|(|X|−1)/2 per step.
	Comparisons int64
	// LevelSizes[k] is the number of distinct pseudoproducts of degree
	// k that were generated.
	LevelSizes []int
	// Groups[k] is the number of structure groups at degree k (the
	// paper's partition X^i = X^i_1 ∪ … ∪ X^i_k).
	Groups []int
	// BuildTime is the wall-clock duration of the construction.
	BuildTime time.Duration
}

// recordBuild publishes the deterministic construction statistics (and
// the per-degree layer sizes) to the recorder. Degree and level
// coincide for EPPP construction — level-k pseudoproducts have degree k
// — so BuildStats.LevelSizes indexes the recorder's layers directly.
func recordBuild(r *stats.Recorder, b *BuildStats) {
	if r == nil {
		return
	}
	r.Add(stats.CtrCandidates, int64(b.Candidates))
	r.Add(stats.CtrEPPP, int64(b.EPPP))
	r.Add(stats.CtrUnions, b.Unions)
	r.Add(stats.CtrFresh, b.Fresh)
	r.Add(stats.CtrComparisons, b.Comparisons)
	for d, size := range b.LevelSizes {
		groups := 0
		if d < len(b.Groups) {
			groups = b.Groups[d]
		}
		r.Layer(d, size, groups)
	}
}

// EPPPSet is the output of EPPP construction: the covering candidates
// (Definition 3 superset) for the final selection step.
type EPPPSet struct {
	N          int
	Candidates []*pcube.CEX
	Stats      BuildStats
}

// BuildEPPP constructs the extended prime pseudoproduct set of f with
// the paper's Algorithm 2 (steps 1 and 2): degree-0 pseudoproducts (the
// care minterms) are inserted in a partition trie; at each step all
// leaves sharing a parent — exactly the same-structure pseudoproducts —
// are pairwise unified into the next trie, and a pseudoproduct is
// discarded when some union result costs no more than it does.
//
// It returns ErrBudget if Options limits are exceeded, like the paper's
// two-day timeout stars, and the context's error if Options.Ctx is
// cancelled (polled at every level boundary and, coarsely, inside the
// level expansion via the generation budget).
//
// With Options.Workers != 1 the level expansion runs on a worker pool
// (see parallel.go); the candidate set, its order and all statistics
// except BuildTime are identical to the serial engine's.
func BuildEPPP(f *bfunc.Func, opts Options) (*EPPPSet, error) {
	if opts.workers() > 1 {
		return buildEPPPParallel(f, opts)
	}
	defer opts.Stats.Phase(stats.PhaseEPPP)()
	start := time.Now()
	n := f.N()
	b := newBudget(opts)
	bst := BuildStats{}

	cur := ptrie.New(n)
	for _, p := range f.Care() {
		cur.Insert(pcube.FromPoint(n, p))
	}
	if !b.spend(cur.Len()) {
		return nil, b.failure()
	}

	var candidates []*pcube.CEX
	for level := 0; cur.Len() > 0; level++ {
		if err := opts.ctxErr(); err != nil {
			return nil, err
		}
		bst.LevelSizes = append(bst.LevelSizes, cur.Len())
		bst.Groups = append(bst.Groups, cur.NumGroups())
		if opts.Stats != nil {
			opts.Stats.Add(stats.CtrTrieNodes, int64(cur.NumInternalNodes()))
		}
		next := ptrie.New(n)
		overBudget := false
		cur.Groups(func(entries []*ptrie.Entry) bool {
			for i := 0; i < len(entries); i++ {
				for j := i + 1; j < len(entries); j++ {
					u := pcube.Union(entries[i].CEX, entries[j].CEX)
					bst.Unions++
					h := opts.Cost.of(u)
					if h <= opts.Cost.of(entries[i].CEX) {
						entries[i].Mark = true
					}
					if h <= opts.Cost.of(entries[j].CEX) {
						entries[j].Mark = true
					}
					if _, fresh := next.Insert(u); fresh {
						if !b.spend(1) {
							overBudget = true
							return false
						}
					}
				}
			}
			return true
		})
		if overBudget {
			return nil, b.failure()
		}
		// Retain the unmarked pseudoproducts of this level.
		cur.Entries(func(e *ptrie.Entry) bool {
			if !e.Mark {
				candidates = append(candidates, e.CEX)
			}
			return true
		})
		bst.Candidates += cur.Len()
		bst.Fresh += int64(next.Len())
		cur = next
	}
	bst.EPPP = len(candidates)
	bst.BuildTime = time.Since(start)
	recordBuild(opts.Stats, &bst)
	return &EPPPSet{N: n, Candidates: candidates, Stats: bst}, nil
}

// BuildEPPPHashGrouped is the ablation variant of Algorithm 2 that
// replaces the partition trie with a flat hash map keyed on the
// structure (DESIGN.md ablation 1). The algorithmic behaviour — group by
// structure, unify within groups — is identical, so the resulting EPPP
// set matches BuildEPPP exactly; only the grouping data structure
// differs.
//
// With Options.Workers != 1 the groups fan out over a worker pool; the
// parallel variant additionally fixes the group iteration order (sorted
// structure keys), so its candidate order is deterministic where the
// serial map iteration is not. The candidate set is identical either
// way.
func BuildEPPPHashGrouped(f *bfunc.Func, opts Options) (*EPPPSet, error) {
	if opts.workers() > 1 {
		return buildEPPPHashGroupedParallel(f, opts)
	}
	defer opts.Stats.Phase(stats.PhaseEPPP)()
	start := time.Now()
	n := f.N()
	b := newBudget(opts)
	bst := BuildStats{}

	type entry struct {
		cex  *pcube.CEX
		mark bool
	}
	cur := map[string][]*entry{}
	curLen := 0
	seen := map[string]bool{}
	for _, p := range f.Care() {
		c := pcube.FromPoint(n, p)
		// Key and StructureKey are cached on the CEX at construction, so
		// the repeated lookups here and in the union loop below cost a
		// pointer read, not a re-serialization.
		if k := c.Key(); !seen[k] {
			seen[k] = true
			cur[c.StructureKey()] = append(cur[c.StructureKey()], &entry{cex: c})
			curLen++
		}
	}
	if !b.spend(curLen) {
		return nil, b.failure()
	}

	var candidates []*pcube.CEX
	for level := 0; curLen > 0; level++ {
		if err := opts.ctxErr(); err != nil {
			return nil, err
		}
		bst.LevelSizes = append(bst.LevelSizes, curLen)
		bst.Groups = append(bst.Groups, len(cur))
		next := map[string][]*entry{}
		nextSeen := map[string]bool{}
		nextLen := 0
		for _, group := range cur {
			for i := 0; i < len(group); i++ {
				for j := i + 1; j < len(group); j++ {
					u := pcube.Union(group[i].cex, group[j].cex)
					bst.Unions++
					h := opts.Cost.of(u)
					if h <= opts.Cost.of(group[i].cex) {
						group[i].mark = true
					}
					if h <= opts.Cost.of(group[j].cex) {
						group[j].mark = true
					}
					k := u.Key()
					if !nextSeen[k] {
						nextSeen[k] = true
						next[u.StructureKey()] = append(next[u.StructureKey()], &entry{cex: u})
						nextLen++
						if !b.spend(1) {
							return nil, b.failure()
						}
					}
				}
			}
		}
		for _, group := range cur {
			for _, e := range group {
				if !e.mark {
					candidates = append(candidates, e.cex)
				}
			}
		}
		bst.Candidates += curLen
		bst.Fresh += int64(nextLen)
		cur, curLen = next, nextLen
	}
	bst.EPPP = len(candidates)
	bst.BuildTime = time.Since(start)
	recordBuild(opts.Stats, &bst)
	return &EPPPSet{N: n, Candidates: candidates, Stats: bst}, nil
}
