package core

import (
	"testing"
)

// FuzzParseForm checks the SPP expression parser never panics and that
// accepted expressions round-trip through String and re-parse to an
// equivalent form.
func FuzzParseForm(f *testing.F) {
	f.Add(4, "x1·(x0⊕x̄2) + x̄0·x2")
	f.Add(4, "x1*(x0^!x2) + !x0*x2")
	f.Add(3, "0")
	f.Add(3, "1")
	f.Add(5, "(x0⊕x1⊕x2⊕x3⊕x4)")
	f.Add(2, "x0·x̄0")
	f.Add(6, "x0 | x1 & x2")
	f.Fuzz(func(t *testing.T, n int, src string) {
		if n < 1 || n > 16 {
			return
		}
		form, err := ParseForm(n, src)
		if err != nil {
			return
		}
		rendered := form.String()
		again, err := ParseForm(n, rendered)
		if err != nil {
			t.Fatalf("rendered form %q failed to re-parse: %v", rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("render not stable: %q -> %q", rendered, again.String())
		}
		for p := uint64(0); p < 1<<uint(n) && p < 256; p++ {
			if form.Eval(p) != again.Eval(p) {
				t.Fatalf("round trip changed semantics at %b", p)
			}
		}
	})
}
