package core

import (
	"fmt"
	"time"

	"repro/internal/bfunc"
	"repro/internal/pcube"
	"repro/internal/ptrie"
	"repro/internal/qm"
	"repro/internal/stats"
)

// Heuristic runs the paper's Algorithm 3, producing the SPP_k form:
//
//  1. the SP prime implicants of f seed n partition tries, one per
//     degree (an implicant with i literals has degree n−i);
//  2. a descendant phase of k steps (0 ≤ k < n) expands, top-down, the
//     pseudoproducts of degree n−i into all their degree-(n−i−1)
//     sub-pseudocubes (Theorem 2), cascading so that k = n−1 descends
//     all the way to single points;
//  3. an ascendant phase re-runs Algorithm 2's union step from the
//     lowest trie upward over the combined pool;
//  4. the covering step selects the SPP_k form.
//
// With k = n−1 the pool reaches every care minterm, so the ascendant
// phase regenerates the full EPPP set and SPP_{n−1} is the exact SPP
// form; with k = 0 the descendant phase is skipped and only unions of
// the prime implicants themselves (and their unions, recursively) are
// available — the paper's fast upper bound.
func Heuristic(f *bfunc.Func, k int, opts Options) (*Result, error) {
	if k < 0 || k >= f.N() {
		return nil, fmt.Errorf("core: heuristic parameter k=%d out of range [0,%d)", k, f.N())
	}
	start := time.Now()
	n := f.N()
	b := newBudget(opts)
	rec := opts.Stats
	bst := BuildStats{LevelSizes: make([]int, n+1), Groups: make([]int, n+1)}

	if f.IsConstantOne() {
		one := &pcube.CEX{N: n, Canon: allMask(n)}
		return &Result{
			Form:         Form{N: n, Terms: []*pcube.CEX{one}},
			Build:        BuildStats{BuildTime: time.Since(start)},
			CoverOptimal: true,
		}, nil
	}

	// Step 1: seed the tries with the SP prime implicants.
	stop := rec.Phase(stats.PhaseSeed)
	tries := make([]*ptrie.Trie, n+1)
	for d := range tries {
		tries[d] = ptrie.New(n)
	}
	total := 0
	for _, pi := range qm.Primes(f) {
		c := pcube.FromCube(n, pi)
		if _, fresh := tries[c.Degree()].Insert(c); fresh {
			total++
		}
	}
	stop()
	if !b.spend(total) {
		return nil, b.failure()
	}

	// Step 2: descendant phase. Step i expands the highest not-yet-
	// processed non-empty trie into the one below; since the next step
	// processes the trie just filled, expansion cascades k levels deep.
	// (Starting from the top *non-empty* level rather than degree n−1
	// makes every step productive — real prime implicants rarely reach
	// the top degrees — which is what gives the paper's Figure 3 its
	// decline from k = 1 onward.)
	top := -1
	for d := n; d >= 0; d-- {
		if tries[d].Len() > 0 {
			top = d
			break
		}
	}
	workers := opts.workers()
	stop = rec.Phase(stats.PhaseDescend)
	for i := 1; i <= k && top-i+1 >= 1; i++ {
		if err := opts.ctxErr(); err != nil {
			stop()
			return nil, err
		}
		d := top - i + 1
		if workers > 1 && tries[d].Len() > 1 {
			fresh, ok := descendParallel(n, tries[d], tries[d-1], b, workers, rec)
			if !ok {
				stop()
				return nil, b.failure()
			}
			bst.Fresh += int64(fresh)
			continue
		}
		overBudget := false
		tries[d].Entries(func(e *ptrie.Entry) bool {
			e.CEX.SubPseudocubes(func(s *pcube.CEX) bool {
				if _, fresh := tries[d-1].Insert(s); fresh {
					bst.Fresh++
					if !b.spend(1) {
						overBudget = true
						return false
					}
				}
				return true
			})
			return !overBudget
		})
		if overBudget {
			stop()
			return nil, b.failure()
		}
	}
	stop()

	// Step 3: ascendant phase (Algorithm 2 step 2 over the merged pool).
	stop = rec.Phase(stats.PhaseAscend)
	var candidates []*pcube.CEX
	for d := 0; d < n; d++ {
		if err := opts.ctxErr(); err != nil {
			stop()
			return nil, err
		}
		cur := tries[d]
		if cur.Len() == 0 {
			continue
		}
		bst.LevelSizes[d] = cur.Len()
		bst.Groups[d] = cur.NumGroups()
		if rec != nil {
			rec.Add(stats.CtrTrieNodes, int64(cur.NumInternalNodes()))
		}
		if workers > 1 && cur.Len() > 1 {
			// Same group-parallel shape as BuildEPPP: unify on workers
			// into shard tries, then merge into the (pre-seeded) trie of
			// degree d+1 in the serial insertion order.
			locals, ok := expandLevel(n, levelGroups(cur), opts, b, &bst.Unions, workers, stats.PhaseAscend)
			if !ok {
				stop()
				return nil, b.failure()
			}
			bst.Fresh += int64(mergeIntoTrie(tries[d+1], locals, b))
		} else {
			overBudget := false
			cur.Groups(func(entries []*ptrie.Entry) bool {
				for i := 0; i < len(entries); i++ {
					for j := i + 1; j < len(entries); j++ {
						u := pcube.Union(entries[i].CEX, entries[j].CEX)
						bst.Unions++
						h := opts.Cost.of(u)
						if h <= opts.Cost.of(entries[i].CEX) {
							entries[i].Mark = true
						}
						if h <= opts.Cost.of(entries[j].CEX) {
							entries[j].Mark = true
						}
						if _, fresh := tries[d+1].Insert(u); fresh {
							bst.Fresh++
							if !b.spend(1) {
								overBudget = true
								return false
							}
						}
					}
				}
				return true
			})
			if overBudget {
				stop()
				return nil, b.failure()
			}
		}
		cur.Entries(func(e *ptrie.Entry) bool {
			if !e.Mark {
				candidates = append(candidates, e.CEX)
			}
			return true
		})
		bst.Candidates += cur.Len()
	}
	// Degree-n trie: only the constant-one pseudocube could live there,
	// and the constant-one case returned early; nothing can be stored
	// at degree n here, but keep the accounting honest.
	if tries[n].Len() > 0 {
		tries[n].Entries(func(e *ptrie.Entry) bool {
			candidates = append(candidates, e.CEX)
			return true
		})
		bst.Candidates += tries[n].Len()
	}
	stop()
	bst.EPPP = len(candidates)
	bst.BuildTime = time.Since(start)
	recordBuild(rec, &bst)

	set := &EPPPSet{N: n, Candidates: candidates, Stats: bst}
	form, coverTime, optimal, err := SelectCover(f, set, opts)
	if err != nil {
		return nil, err
	}
	return &Result{Form: form, Build: bst, CoverTime: coverTime, CoverOptimal: optimal}, nil
}
