package core

import (
	"fmt"
	"math/bits"
	"sort"
	"time"

	"repro/internal/bfunc"
	"repro/internal/cover"
	"repro/internal/pcube"
	"repro/internal/stats"
)

// Result is a minimized SPP form together with the work statistics of
// both phases.
type Result struct {
	Form  Form
	Build BuildStats
	// CoverTime is the wall-clock duration of the covering phase.
	CoverTime time.Duration
	// CoverOptimal reports whether the covering solution was proven
	// minimum (exact solver within budget). When false the literal
	// count is an upper bound — exactly the caveat the paper states for
	// its Table 1.
	CoverOptimal bool
	// CoverReused reports that a warm resume served the covering
	// solution entirely from the previous snapshot — every greedy pick
	// replayed (or a trivial form) with no re-entry into heap
	// selection. Always false on cold runs and exact-solver runs.
	CoverReused bool
}

// Literals returns the cost of the selected form (#L).
func (r *Result) Literals() int { return r.Form.Literals() }

// SelectCover solves the covering problem of Algorithm 2 step 3: choose
// pseudoproducts from the candidate set covering every ON minterm of f
// at minimum total cost.
func SelectCover(f *bfunc.Func, set *EPPPSet, opts Options) (Form, time.Duration, bool, error) {
	start := time.Now()
	n := f.N()
	if f.OnCount() == 0 {
		return Form{N: n}, time.Since(start), true, nil
	}
	if f.IsConstantOne() {
		// The whole space is a pseudocube with the empty CEX.
		one := &pcube.CEX{N: n, Canon: allMask(n)}
		return Form{N: n, Terms: []*pcube.CEX{one}}, time.Since(start), true, nil
	}

	if err := opts.ctxErr(); err != nil {
		return Form{}, 0, false, err
	}
	on := f.On()
	stopCols := opts.Stats.Phase(stats.PhaseCoverColumns)
	in, cols := buildCoverColumns(n, on, set.Candidates, opts)
	stopCols()
	if err := in.Validate(); err != nil {
		return Form{}, 0, false, fmt.Errorf("core: candidate set does not cover ON-set: %v", err)
	}
	if err := opts.ctxErr(); err != nil {
		return Form{}, 0, false, err
	}
	var res cover.Result
	if opts.CoverExact {
		res = cover.Exact(in, cover.ExactOptions{
			MaxNodes: opts.CoverMaxNodes,
			Workers:  opts.coverWorkers(),
			Stats:    opts.Stats,
			Ctx:      opts.Ctx,
		})
	} else {
		res = cover.GreedyStats(in, opts.Stats)
	}
	form := Form{N: n}
	for _, j := range res.Picked {
		form.Terms = append(form.Terms, cols[j])
	}
	return form, time.Since(start), res.Optimal, nil
}

func allMask(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return (1 << uint(n)) - 1
}

// pointIndex maps points of B^n to their index in a sorted point list.
// For small n a dense array gives O(1) lookups; beyond the gate the
// fallback is binary search on the sorted list. Read-only after
// construction, so shared freely across workers.
type pointIndex struct {
	dense []int32
	pts   []uint64
}

// densePointIndexMaxVars caps the dense table at 4 MiB of int32.
const densePointIndexMaxVars = 20

func newPointIndex(n int, pts []uint64) *pointIndex {
	ix := &pointIndex{pts: pts}
	if n <= densePointIndexMaxVars {
		ix.dense = make([]int32, uint64(1)<<uint(n))
		for i := range ix.dense {
			ix.dense[i] = -1
		}
		for i, p := range pts {
			ix.dense[p] = int32(i)
		}
	}
	return ix
}

// lookup returns the index of p in the point list, or -1.
func (ix *pointIndex) lookup(p uint64) int {
	if ix.dense != nil {
		return int(ix.dense[p])
	}
	lo, hi := 0, len(ix.pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.pts[mid] < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ix.pts) && ix.pts[lo] == p {
		return lo
	}
	return -1
}

// affineOf computes the affine representation of c — the offset point
// and one basis row per canonical variable — into the reusable basis
// slice. It is c.Affine without the Gaussian elimination: each row
// carries a distinct canonical pivot bit no other row touches, so the
// rows are independent by construction, which is all the Gray-code walk
// of candidateRows needs.
func affineOf(c *pcube.CEX, basis []uint64) (uint64, []uint64) {
	// One row per canonical variable, seeded with its pivot bit; idx maps
	// a bit position to its row so factors can scatter into the rows they
	// touch (entries for non-canonical positions are never read).
	var idx [64]uint8
	base := len(basis)
	k := uint8(0)
	for canon := c.Canon; canon != 0; canon &= canon - 1 {
		b := canon & -canon
		idx[bits.TrailingZeros64(b)] = k
		basis = append(basis, b)
		k++
	}
	var off uint64
	for _, f := range c.Factors {
		nc := f.Vars &^ c.Canon
		if f.Comp == 0 {
			off |= nc
		}
		for vars := f.Vars & c.Canon; vars != 0; vars &= vars - 1 {
			basis[base+int(idx[bits.TrailingZeros64(vars)])] |= nc
		}
	}
	return off, basis
}

// candidateRows appends to rows the indices of the ON points covered by
// candidate c, sorted ascending. When the pseudocube is smaller than
// the ON-set its 2^m points are enumerated allocation-free by walking
// the affine basis in Gray-code order; otherwise the sorted ON points
// are filtered through c.Contains directly. basis is reusable scratch;
// gray reports which of the two enumeration paths ran.
func candidateRows(c *pcube.CEX, on []uint64, ix *pointIndex, rows []int, basis []uint64) (_ []int, _ []uint64, gray bool) {
	if m := uint(c.Degree()); m < 32 && uint64(1)<<m <= uint64(len(on)) {
		var off uint64
		off, basis = affineOf(c, basis[:0])
		br := basis
		size := uint64(1) << m
		p := off
		for i := uint64(0); ; i++ {
			if r := ix.lookup(p); r >= 0 {
				rows = append(rows, r)
			}
			if i+1 == size {
				break
			}
			p ^= br[bits.TrailingZeros64(i+1)]
		}
		sort.Ints(rows)
		return rows, basis, true
	}
	for r, p := range on {
		if c.Contains(p) {
			rows = append(rows, r)
		}
	}
	return rows, basis, false
}

// buildCoverColumns intersects every candidate's affine subspace with
// the ON-set to form the covering columns, sharding candidates
// contiguously over the covering worker pool. Shard outputs are
// concatenated in candidate order, so the instance — and everything
// downstream of it — is identical for every worker count.
func buildCoverColumns(n int, on []uint64, candidates []*pcube.CEX, opts Options) (*cover.Instance, []*pcube.CEX) {
	ix := newPointIndex(n, on)
	type shardOut struct {
		cols []cover.Column
		kept []*pcube.CEX
	}
	workers := opts.coverWorkers()
	if workers > len(candidates) {
		workers = len(candidates)
	}
	if workers < 1 {
		workers = 1
	}
	outs := make([]shardOut, workers)
	shards := make([]stats.Shard, workers)
	shardSlice(len(candidates), workers, func(shard, lo, hi int) {
		opts.Stats.Do(stats.PhaseCoverColumns, func() {
			out := &outs[shard]
			sh := &shards[shard]
			record := opts.Stats != nil
			var scratch []int
			var basis []uint64
			for _, c := range candidates[lo:hi] {
				var gray bool
				scratch, basis, gray = candidateRows(c, on, ix, scratch[:0], basis)
				if record {
					if gray {
						sh.Add(stats.CtrCoverGray, 1)
					} else {
						sh.Add(stats.CtrCoverContains, 1)
					}
				}
				if len(scratch) == 0 {
					if record {
						sh.Add(stats.CtrCoverDCOnly, 1)
					}
					continue // covers only don't-cares
				}
				out.cols = append(out.cols, cover.Column{
					Cost: opts.Cost.of(c),
					Rows: append([]int(nil), scratch...),
				})
				out.kept = append(out.kept, c)
			}
			if record {
				sh.Add(stats.CtrCoverColumns, int64(len(out.cols)))
			}
		})
	})
	in := &cover.Instance{NRows: len(on)}
	var cols []*pcube.CEX
	for i := range outs {
		in.Cols = append(in.Cols, outs[i].cols...)
		cols = append(cols, outs[i].kept...)
		opts.Stats.Merge(&shards[i])
	}
	return in, cols
}

// MinimizeExact runs the full exact SPP minimization (Algorithm 2):
// EPPP construction with partition tries followed by covering. The
// resulting literal count is the paper's SPP #L (an upper bound when the
// covering phase is heuristic or budget-limited).
func MinimizeExact(f *bfunc.Func, opts Options) (*Result, error) {
	set, err := BuildEPPP(f, opts)
	if err != nil {
		return nil, err
	}
	form, coverTime, optimal, err := SelectCover(f, set, opts)
	if err != nil {
		return nil, err
	}
	return &Result{Form: form, Build: set.Stats, CoverTime: coverTime, CoverOptimal: optimal}, nil
}

// MinimizeNaive runs the baseline pipeline: EPPP construction with the
// pairwise algorithm of [5], then the same covering step. Produces the
// same forms as MinimizeExact, much more slowly (Table 2).
func MinimizeNaive(f *bfunc.Func, opts Options) (*Result, error) {
	set, err := BuildEPPPNaive(f, opts)
	if err != nil {
		return nil, err
	}
	form, coverTime, optimal, err := SelectCover(f, set, opts)
	if err != nil {
		return nil, err
	}
	return &Result{Form: form, Build: set.Stats, CoverTime: coverTime, CoverOptimal: optimal}, nil
}
