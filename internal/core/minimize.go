package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bfunc"
	"repro/internal/cover"
	"repro/internal/pcube"
)

// Result is a minimized SPP form together with the work statistics of
// both phases.
type Result struct {
	Form  Form
	Build BuildStats
	// CoverTime is the wall-clock duration of the covering phase.
	CoverTime time.Duration
	// CoverOptimal reports whether the covering solution was proven
	// minimum (exact solver within budget). When false the literal
	// count is an upper bound — exactly the caveat the paper states for
	// its Table 1.
	CoverOptimal bool
}

// Literals returns the cost of the selected form (#L).
func (r *Result) Literals() int { return r.Form.Literals() }

// SelectCover solves the covering problem of Algorithm 2 step 3: choose
// pseudoproducts from the candidate set covering every ON minterm of f
// at minimum total cost.
func SelectCover(f *bfunc.Func, set *EPPPSet, opts Options) (Form, time.Duration, bool, error) {
	start := time.Now()
	n := f.N()
	if f.OnCount() == 0 {
		return Form{N: n}, time.Since(start), true, nil
	}
	if f.IsConstantOne() {
		// The whole space is a pseudocube with the empty CEX.
		one := &pcube.CEX{N: n, Canon: allMask(n)}
		return Form{N: n, Terms: []*pcube.CEX{one}}, time.Since(start), true, nil
	}

	on := f.On()
	rowOf := make(map[uint64]int, len(on))
	for i, p := range on {
		rowOf[p] = i
	}
	in := &cover.Instance{NRows: len(on)}
	var cols []*pcube.CEX
	for _, c := range set.Candidates {
		var rows []int
		for _, p := range c.Points() {
			if r, ok := rowOf[p]; ok {
				rows = append(rows, r)
			}
		}
		if len(rows) == 0 {
			continue // covers only don't-cares
		}
		sort.Ints(rows)
		in.Cols = append(in.Cols, cover.Column{Cost: opts.Cost.of(c), Rows: rows})
		cols = append(cols, c)
	}
	if err := in.Validate(); err != nil {
		return Form{}, 0, false, fmt.Errorf("core: candidate set does not cover ON-set: %v", err)
	}
	var res cover.Result
	if opts.CoverExact {
		res = cover.Exact(in, cover.ExactOptions{MaxNodes: opts.CoverMaxNodes})
	} else {
		res = cover.Greedy(in)
	}
	form := Form{N: n}
	for _, j := range res.Picked {
		form.Terms = append(form.Terms, cols[j])
	}
	return form, time.Since(start), res.Optimal, nil
}

func allMask(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return (1 << uint(n)) - 1
}

// MinimizeExact runs the full exact SPP minimization (Algorithm 2):
// EPPP construction with partition tries followed by covering. The
// resulting literal count is the paper's SPP #L (an upper bound when the
// covering phase is heuristic or budget-limited).
func MinimizeExact(f *bfunc.Func, opts Options) (*Result, error) {
	set, err := BuildEPPP(f, opts)
	if err != nil {
		return nil, err
	}
	form, coverTime, optimal, err := SelectCover(f, set, opts)
	if err != nil {
		return nil, err
	}
	return &Result{Form: form, Build: set.Stats, CoverTime: coverTime, CoverOptimal: optimal}, nil
}

// MinimizeNaive runs the baseline pipeline: EPPP construction with the
// pairwise algorithm of [5], then the same covering step. Produces the
// same forms as MinimizeExact, much more slowly (Table 2).
func MinimizeNaive(f *bfunc.Func, opts Options) (*Result, error) {
	set, err := BuildEPPPNaive(f, opts)
	if err != nil {
		return nil, err
	}
	form, coverTime, optimal, err := SelectCover(f, set, opts)
	if err != nil {
		return nil, err
	}
	return &Result{Form: form, Build: set.Stats, CoverTime: coverTime, CoverOptimal: optimal}, nil
}
