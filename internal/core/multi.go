package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bfunc"
	"repro/internal/cover"
	"repro/internal/pcube"
	"repro/internal/stats"
)

// MultiResult is a jointly minimized multi-output SPP network: a shared
// pool of pseudoproducts and, per output, the terms driving it. Sharing
// is the natural PLA-style extension of the paper's per-output protocol:
// the OR plane fans a pseudoproduct out to any output it is valid for at
// no extra literal cost, so shared terms are paid once.
type MultiResult struct {
	N int
	// Terms is the shared pseudoproduct pool.
	Terms []*pcube.CEX
	// Drives[o] lists indices into Terms selected for output o.
	Drives [][]int
	// SharedLiterals is the joint cost: each term's literals counted
	// once regardless of fanout.
	SharedLiterals int
	// Build and CoverTime aggregate the phase statistics.
	Build     BuildStats
	CoverTime time.Duration
}

// Form materializes output o as a standalone SPP form.
func (r *MultiResult) Form(o int) Form {
	f := Form{N: r.N}
	for _, t := range r.Drives[o] {
		f.Terms = append(f.Terms, r.Terms[t])
	}
	return f
}

// SeparateLiterals sums the per-output literal counts without sharing
// (what stacking the single-output results would cost).
func (r *MultiResult) SeparateLiterals() int {
	total := 0
	for o := range r.Drives {
		for _, t := range r.Drives[o] {
			total += r.Terms[t].Literals()
		}
	}
	return total
}

// MinimizeMulti jointly minimizes the outputs of m with shared
// pseudoproducts: the candidate pool is the union of the per-output
// EPPP sets; the covering instance has one row per (output, ON minterm)
// and one column per candidate, covering the rows of every output the
// candidate is a pseudoproduct of (its points within that output's care
// set). Column costs are literal counts paid once — the covering solver
// does the sharing automatically.
//
// With Options.Workers != 1 the per-output EPPP builds run concurrently
// (nested worker budget: outer workers split across outputs, the rest
// passed down into each build); the pool merge and all later phases are
// serial and performed in output order, so the result is identical to
// the Workers=1 run.
func MinimizeMulti(m *bfunc.Multi, opts Options) (*MultiResult, error) {
	n := m.Inputs
	res := &MultiResult{N: n, Drives: make([][]int, m.NOutputs())}

	// Per-output EPPP sets, built in parallel, then dedup'd into a
	// shared pool serially in output order (determinism).
	sets := make([]*EPPPSet, m.NOutputs())
	errs := make([]error, m.NOutputs())
	outer := opts.workers()
	if outer > m.NOutputs() {
		outer = m.NOutputs()
	}
	inner := opts
	inner.Workers = opts.workers() / outer
	if inner.Workers < 1 {
		inner.Workers = 1
	}
	if outer > 1 {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < outer; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				opts.Stats.Do(stats.PhaseEPPP, func() {
					for o := range jobs {
						sets[o], errs[o] = BuildEPPP(m.Output(o), inner)
					}
				})
			}()
		}
		for o := 0; o < m.NOutputs(); o++ {
			jobs <- o
		}
		close(jobs)
		wg.Wait()
	} else {
		for o := 0; o < m.NOutputs(); o++ {
			sets[o], errs[o] = BuildEPPP(m.Output(o), inner)
		}
	}

	pool := map[string]*pcube.CEX{}
	var keys []string
	for o := 0; o < m.NOutputs(); o++ {
		if errs[o] != nil {
			return nil, fmt.Errorf("core: output %d: %w", o, errs[o])
		}
		set := sets[o]
		res.Build.Candidates += set.Stats.Candidates
		res.Build.Unions += set.Stats.Unions
		res.Build.Fresh += set.Stats.Fresh
		res.Build.BuildTime += set.Stats.BuildTime
		for _, c := range set.Candidates {
			k := c.Key()
			if _, ok := pool[k]; !ok {
				pool[k] = c
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys) // deterministic column order
	res.Build.EPPP = len(keys)

	// Rows: (output, ON minterm). Each output's ON list is indexed by a
	// dense point index at a base offset, replacing the (output, point)
	// hash map of the seed implementation.
	start := time.Now()
	nOut := m.NOutputs()
	outFns := make([]*bfunc.Func, nOut)
	base := make([]int, nOut)
	onIdx := make([]*pointIndex, nOut)
	nRows := 0
	for o := 0; o < nOut; o++ {
		outFns[o] = m.Output(o)
		base[o] = nRows
		nRows += outFns[o].OnCount()
		onIdx[o] = newPointIndex(n, outFns[o].On())
	}
	if nRows == 0 {
		return res, nil
	}

	// One column per pooled candidate, covering the ON rows of every
	// output whose care set contains the whole pseudocube. Candidates
	// are sharded contiguously over the covering workers and the shard
	// outputs concatenated in pool order, so the instance is identical
	// for every worker count. Points are enumerated sorted, so the row
	// lists come out sorted without a final sort.
	cands := make([]*pcube.CEX, len(keys))
	for i, k := range keys {
		cands[i] = pool[k]
	}
	type shardOut struct {
		cols []cover.Column
		kept []*pcube.CEX
	}
	workers := opts.coverWorkers()
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers < 1 {
		workers = 1
	}
	stopCols := opts.Stats.Phase(stats.PhaseCoverColumns)
	outs := make([]shardOut, workers)
	shards := make([]stats.Shard, workers)
	shardSlice(len(cands), workers, func(shard, lo, hi int) {
		opts.Stats.Do(stats.PhaseCoverColumns, func() {
			out := &outs[shard]
			var rows []int
			for _, c := range cands[lo:hi] {
				pts := c.SortedPoints()
				rows = rows[:0]
				for o := 0; o < nOut; o++ {
					f := outFns[o]
					valid := true
					for _, p := range pts {
						if !f.IsCare(p) {
							valid = false
							break
						}
					}
					if !valid {
						continue
					}
					for _, p := range pts {
						if r := onIdx[o].lookup(p); r >= 0 {
							rows = append(rows, base[o]+r)
						}
					}
				}
				if len(rows) == 0 {
					if opts.Stats != nil {
						shards[shard].Add(stats.CtrCoverDCOnly, 1)
					}
					continue
				}
				cost := opts.Cost.of(c)
				if cost == 0 {
					cost = 1 // constant-one candidate on a non-constant instance
				}
				out.cols = append(out.cols, cover.Column{
					Cost: cost,
					Rows: append([]int(nil), rows...),
				})
				out.kept = append(out.kept, c)
			}
			if opts.Stats != nil {
				shards[shard].Add(stats.CtrCoverColumns, int64(len(out.cols)))
			}
		})
	})
	in := &cover.Instance{NRows: nRows}
	var cols []*pcube.CEX
	for i := range outs {
		in.Cols = append(in.Cols, outs[i].cols...)
		cols = append(cols, outs[i].kept...)
		opts.Stats.Merge(&shards[i])
	}
	stopCols()
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("core: joint candidate pool does not cover: %v", err)
	}
	var cres cover.Result
	if opts.CoverExact {
		cres = cover.Exact(in, cover.ExactOptions{
			MaxNodes: opts.CoverMaxNodes,
			Workers:  opts.coverWorkers(),
			Stats:    opts.Stats,
		})
	} else {
		cres = cover.GreedyStats(in, opts.Stats)
	}
	res.CoverTime = time.Since(start)

	// Materialize: each picked term drives every output where it is
	// valid and needed (attach wherever valid — DC coverage is free and
	// OFF violations are impossible within the care set; to keep the
	// per-output forms lean, attach only where the term covers at least
	// one of that output's ON minterms).
	for _, j := range cres.Picked {
		c := cols[j]
		ti := len(res.Terms)
		res.Terms = append(res.Terms, c)
		res.SharedLiterals += c.Literals()
		pts := c.Points()
		for o := 0; o < m.NOutputs(); o++ {
			f := m.Output(o)
			valid, useful := true, false
			for _, p := range pts {
				if !f.IsCare(p) {
					valid = false
					break
				}
				if f.IsOn(p) {
					useful = true
				}
			}
			if valid && useful {
				res.Drives[o] = append(res.Drives[o], ti)
			}
		}
	}
	return res, nil
}
