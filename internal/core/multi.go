package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bfunc"
	"repro/internal/cover"
	"repro/internal/pcube"
)

// MultiResult is a jointly minimized multi-output SPP network: a shared
// pool of pseudoproducts and, per output, the terms driving it. Sharing
// is the natural PLA-style extension of the paper's per-output protocol:
// the OR plane fans a pseudoproduct out to any output it is valid for at
// no extra literal cost, so shared terms are paid once.
type MultiResult struct {
	N int
	// Terms is the shared pseudoproduct pool.
	Terms []*pcube.CEX
	// Drives[o] lists indices into Terms selected for output o.
	Drives [][]int
	// SharedLiterals is the joint cost: each term's literals counted
	// once regardless of fanout.
	SharedLiterals int
	// Build and CoverTime aggregate the phase statistics.
	Build     BuildStats
	CoverTime time.Duration
}

// Form materializes output o as a standalone SPP form.
func (r *MultiResult) Form(o int) Form {
	f := Form{N: r.N}
	for _, t := range r.Drives[o] {
		f.Terms = append(f.Terms, r.Terms[t])
	}
	return f
}

// SeparateLiterals sums the per-output literal counts without sharing
// (what stacking the single-output results would cost).
func (r *MultiResult) SeparateLiterals() int {
	total := 0
	for o := range r.Drives {
		for _, t := range r.Drives[o] {
			total += r.Terms[t].Literals()
		}
	}
	return total
}

// MinimizeMulti jointly minimizes the outputs of m with shared
// pseudoproducts: the candidate pool is the union of the per-output
// EPPP sets; the covering instance has one row per (output, ON minterm)
// and one column per candidate, covering the rows of every output the
// candidate is a pseudoproduct of (its points within that output's care
// set). Column costs are literal counts paid once — the covering solver
// does the sharing automatically.
//
// With Options.Workers != 1 the per-output EPPP builds run concurrently
// (nested worker budget: outer workers split across outputs, the rest
// passed down into each build); the pool merge and all later phases are
// serial and performed in output order, so the result is identical to
// the Workers=1 run.
func MinimizeMulti(m *bfunc.Multi, opts Options) (*MultiResult, error) {
	n := m.Inputs
	res := &MultiResult{N: n, Drives: make([][]int, m.NOutputs())}

	// Per-output EPPP sets, built in parallel, then dedup'd into a
	// shared pool serially in output order (determinism).
	sets := make([]*EPPPSet, m.NOutputs())
	errs := make([]error, m.NOutputs())
	outer := opts.workers()
	if outer > m.NOutputs() {
		outer = m.NOutputs()
	}
	inner := opts
	inner.Workers = opts.workers() / outer
	if inner.Workers < 1 {
		inner.Workers = 1
	}
	if outer > 1 {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < outer; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for o := range jobs {
					sets[o], errs[o] = BuildEPPP(m.Output(o), inner)
				}
			}()
		}
		for o := 0; o < m.NOutputs(); o++ {
			jobs <- o
		}
		close(jobs)
		wg.Wait()
	} else {
		for o := 0; o < m.NOutputs(); o++ {
			sets[o], errs[o] = BuildEPPP(m.Output(o), inner)
		}
	}

	pool := map[string]*pcube.CEX{}
	var keys []string
	for o := 0; o < m.NOutputs(); o++ {
		if errs[o] != nil {
			return nil, fmt.Errorf("core: output %d: %w", o, errs[o])
		}
		set := sets[o]
		res.Build.Candidates += set.Stats.Candidates
		res.Build.Unions += set.Stats.Unions
		res.Build.BuildTime += set.Stats.BuildTime
		for _, c := range set.Candidates {
			k := c.Key()
			if _, ok := pool[k]; !ok {
				pool[k] = c
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys) // deterministic column order
	res.Build.EPPP = len(keys)

	// Rows: (output, ON minterm).
	start := time.Now()
	rowOf := map[[2]uint64]int{}
	nRows := 0
	for o := 0; o < m.NOutputs(); o++ {
		for _, p := range m.Output(o).On() {
			rowOf[[2]uint64{uint64(o), p}] = nRows
			nRows++
		}
	}
	if nRows == 0 {
		return res, nil
	}

	in := &cover.Instance{NRows: nRows}
	var cols []*pcube.CEX
	for _, k := range keys {
		c := pool[k]
		pts := c.Points()
		var rows []int
		for o := 0; o < m.NOutputs(); o++ {
			f := m.Output(o)
			valid := true
			for _, p := range pts {
				if !f.IsCare(p) {
					valid = false
					break
				}
			}
			if !valid {
				continue
			}
			for _, p := range pts {
				if r, ok := rowOf[[2]uint64{uint64(o), p}]; ok {
					rows = append(rows, r)
				}
			}
		}
		if len(rows) == 0 {
			continue
		}
		sort.Ints(rows)
		cost := opts.Cost.of(c)
		if cost == 0 {
			cost = 1 // constant-one candidate on a non-constant instance
		}
		in.Cols = append(in.Cols, cover.Column{Cost: cost, Rows: rows})
		cols = append(cols, c)
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("core: joint candidate pool does not cover: %v", err)
	}
	var cres cover.Result
	if opts.CoverExact {
		cres = cover.Exact(in, cover.ExactOptions{MaxNodes: opts.CoverMaxNodes})
	} else {
		cres = cover.Greedy(in)
	}
	res.CoverTime = time.Since(start)

	// Materialize: each picked term drives every output where it is
	// valid and needed (attach wherever valid — DC coverage is free and
	// OFF violations are impossible within the care set; to keep the
	// per-output forms lean, attach only where the term covers at least
	// one of that output's ON minterms).
	for _, j := range cres.Picked {
		c := cols[j]
		ti := len(res.Terms)
		res.Terms = append(res.Terms, c)
		res.SharedLiterals += c.Literals()
		pts := c.Points()
		for o := 0; o < m.NOutputs(); o++ {
			f := m.Output(o)
			valid, useful := true, false
			for _, p := range pts {
				if !f.IsCare(p) {
					valid = false
					break
				}
				if f.IsOn(p) {
					useful = true
				}
			}
			if valid && useful {
				res.Drives[o] = append(res.Drives[o], ti)
			}
		}
	}
	return res, nil
}
