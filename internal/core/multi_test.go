package core

import (
	"math/rand"
	"testing"

	"repro/internal/bfunc"
)

func verifyOutput(t *testing.T, form Form, f *bfunc.Func) {
	t.Helper()
	if err := form.Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestMinimizeMultiIdenticalOutputsShare(t *testing.T) {
	// Two identical outputs must share every term: joint cost = single
	// cost, half the stacked cost.
	f := bfunc.New(4, []uint64{1, 2, 4, 7, 8, 11, 13, 14}) // odd parity
	m := bfunc.NewMulti("twins", 4, []*bfunc.Func{f, f})
	res, err := MinimizeMulti(m, Options{CoverExact: true})
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < 2; o++ {
		verifyOutput(t, res.Form(o), f)
	}
	single, err := MinimizeExact(f, Options{CoverExact: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SharedLiterals != single.Form.Literals() {
		t.Fatalf("shared cost %d, single-output cost %d", res.SharedLiterals, single.Form.Literals())
	}
	if res.SeparateLiterals() != 2*single.Form.Literals() {
		t.Fatalf("separate cost %d, want %d", res.SeparateLiterals(), 2*single.Form.Literals())
	}
}

func TestMinimizeMultiRandomVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 4
		outs := make([]*bfunc.Func, 3)
		for o := range outs {
			var on []uint64
			for p := uint64(0); p < 16; p++ {
				if rng.Intn(3) == 0 {
					on = append(on, p)
				}
			}
			outs[o] = bfunc.New(n, on)
		}
		m := bfunc.NewMulti("rnd", n, outs)
		res, err := MinimizeMulti(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for o, f := range outs {
			verifyOutput(t, res.Form(o), f)
		}
		if res.SharedLiterals > res.SeparateLiterals() {
			t.Fatalf("shared %d > separate %d", res.SharedLiterals, res.SeparateLiterals())
		}
	}
}

func TestMinimizeMultiNeverWorseThanSeparateOnCost(t *testing.T) {
	// With exact covering, the joint optimum is at most the stacked
	// per-output optima (separate solutions are feasible jointly).
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 6; trial++ {
		n := 3
		outs := make([]*bfunc.Func, 2)
		for o := range outs {
			var on []uint64
			for p := uint64(0); p < 8; p++ {
				if rng.Intn(2) == 0 {
					on = append(on, p)
				}
			}
			outs[o] = bfunc.New(n, on)
		}
		m := bfunc.NewMulti("rnd", n, outs)
		opts := Options{CoverExact: true, CoverMaxNodes: 5_000_000}
		res, err := MinimizeMulti(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		separate := 0
		for _, f := range outs {
			r, err := MinimizeExact(f, opts)
			if err != nil {
				t.Fatal(err)
			}
			separate += r.Form.Literals()
		}
		if res.SharedLiterals > separate {
			t.Fatalf("joint %d worse than separate %d", res.SharedLiterals, separate)
		}
	}
}

func TestMinimizeMultiEmptyAndBudget(t *testing.T) {
	m := bfunc.NewMulti("empty", 3, []*bfunc.Func{bfunc.New(3, nil)})
	res, err := MinimizeMulti(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Terms) != 0 {
		t.Fatalf("empty design produced terms: %v", res.Terms)
	}
	big := bfunc.NewMulti("big", 5, []*bfunc.Func{
		bfunc.FromPredicate(5, func(p uint64) bool { return p%3 == 0 }),
	})
	if _, err := MinimizeMulti(big, Options{MaxCandidates: 4}); err == nil {
		t.Fatal("expected budget error")
	}
}
