package core

import (
	"time"

	"repro/internal/bfunc"
	"repro/internal/pcube"
	"repro/internal/stats"
)

// BuildEPPPNaive constructs the EPPP set with the original
// Quine–McCluskey-like algorithm of Luccio–Pagli [5], which the paper's
// Table 2 uses as the baseline: at every step, each pair of
// pseudoproducts generated in the previous step is compared — the
// structure test is paid |X^i|(|X^i|−1)/2 times — and the pairs that
// match are unified. The retained (extended prime) pseudoproducts are
// identical to BuildEPPP's; only the work differs.
func BuildEPPPNaive(f *bfunc.Func, opts Options) (*EPPPSet, error) {
	defer opts.Stats.Phase(stats.PhaseEPPPNaive)()
	start := time.Now()
	n := f.N()
	b := newBudget(opts)
	bst := BuildStats{}

	type entry struct {
		cex  *pcube.CEX
		mark bool
	}
	var cur []*entry
	seen := map[string]bool{}
	for _, p := range f.Care() {
		c := pcube.FromPoint(n, p)
		if !seen[c.Key()] {
			seen[c.Key()] = true
			cur = append(cur, &entry{cex: c})
		}
	}
	if !b.spend(len(cur)) {
		return nil, b.failure()
	}

	var candidates []*pcube.CEX
	for level := 0; len(cur) > 0; level++ {
		if err := opts.ctxErr(); err != nil {
			return nil, err
		}
		bst.LevelSizes = append(bst.LevelSizes, len(cur))
		var next []*entry
		nextSeen := map[string]bool{}
		for i := 0; i < len(cur); i++ {
			for j := i + 1; j < len(cur); j++ {
				// The baseline pays a comparison for every pair; most
				// fail the structure test.
				bst.Comparisons++
				if !cur[i].cex.SameStructure(cur[j].cex) {
					continue
				}
				u := pcube.Union(cur[i].cex, cur[j].cex)
				bst.Unions++
				h := opts.Cost.of(u)
				if h <= opts.Cost.of(cur[i].cex) {
					cur[i].mark = true
				}
				if h <= opts.Cost.of(cur[j].cex) {
					cur[j].mark = true
				}
				k := u.Key()
				if !nextSeen[k] {
					nextSeen[k] = true
					next = append(next, &entry{cex: u})
					bst.Fresh++
					if !b.spend(1) {
						return nil, b.failure()
					}
				}
			}
			// The quadratic pair loop dominates; check the clock and
			// the context even when no unions fire so oversized levels
			// still time out.
			if b.expired() {
				return nil, ErrBudget
			}
			if err := opts.ctxErr(); err != nil {
				return nil, err
			}
		}
		for _, e := range cur {
			if !e.mark {
				candidates = append(candidates, e.cex)
			}
		}
		bst.Candidates += len(cur)
		cur = next
	}
	bst.EPPP = len(candidates)
	bst.BuildTime = time.Since(start)
	recordBuild(opts.Stats, &bst)
	return &EPPPSet{N: n, Candidates: candidates, Stats: bst}, nil
}
