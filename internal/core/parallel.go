package core

import (
	"bytes"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bfunc"
	"repro/internal/pcube"
	"repro/internal/ptrie"
	"repro/internal/stats"
)

// This file implements the worker-pool parallel EPPP engine. Algorithm 2
// decomposes each level into independent same-structure groups (the
// partition X^i = X^i_1 ∪ … ∪ X^i_k of §3.2), so the O(g²) pairwise
// union work fans out across workers with no synchronization beyond the
// per-level barrier. Determinism is preserved end to end:
//
//   - the pair loop of a group (and, for large groups, contiguous
//     i-ranges of it) is a task; tasks are sharded contiguously over
//     workers in the serial engine's group order, weighted by pair
//     count, so the single large degree-0 group parallelizes too;
//   - each worker unifies into a worker-local partition trie, whose
//     within-group entry order is its generation order;
//   - discard marks are recorded in per-task bitsets and applied after
//     the barrier, making them scheduling-independent;
//   - the shard tries are k-way merged by trie path key (ptrie
//     .PathGroups), which reproduces exactly the DFS group order and the
//     within-group generation order the serial engine's single next-
//     level trie would have, so the resulting EPPP set is byte-identical
//     to Workers=1.
//
// Budget accounting: workers charge the shared atomic budget for every
// union fresh in their local shard; the merge refunds the cross-shard
// duplicates, so the net charge per completed level equals the serial
// engine's. Near the exact exhaustion boundary the transient overcharge
// can trip ErrBudget a few credits early — the tradeoff for aborting
// promptly inside the level instead of materializing it whole.

// pgroup is one structure group of the current level, in the serial
// engine's deterministic group order.
type pgroup struct {
	entries []*ptrie.Entry
}

// utask is one unit of parallel union work: the pair loop of group g
// restricted to first indices [lo, hi). Workers record discard marks in
// the bitset instead of writing Entry.Mark directly, because a large
// group split across workers shares its entries slice.
type utask struct {
	g      int
	lo, hi int
	marks  []uint64
}

func (t *utask) mark(i int) {
	t.marks[i>>6] |= 1 << uint(i&63)
}

// pairWeight is the number of unions task (g, lo, hi) performs.
func pairWeight(groupLen, lo, hi int) int64 {
	w := int64(0)
	for i := lo; i < hi; i++ {
		w += int64(groupLen - 1 - i)
	}
	return w
}

// planTasks slices the level's groups into tasks of roughly equal union
// counts, splitting groups whose pair count exceeds the chunk size into
// contiguous i-ranges. Deterministic: depends only on group sizes and
// the worker count.
func planTasks(groups []pgroup, workers int) []*utask {
	var total int64
	for _, g := range groups {
		m := int64(len(g.entries))
		total += m * (m - 1) / 2
	}
	chunk := total/int64(workers*4) + 1
	var tasks []*utask
	for gi, g := range groups {
		m := len(g.entries)
		if m < 2 {
			continue
		}
		words := (m + 63) / 64
		lo := int64(0) // running weight within the group
		start := 0
		for i := 0; i < m-1; i++ {
			lo += int64(m - 1 - i)
			if lo >= chunk || i == m-2 {
				tasks = append(tasks, &utask{g: gi, lo: start, hi: i + 1, marks: make([]uint64, words)})
				start, lo = i+1, 0
			}
		}
	}
	return tasks
}

// shardTasks partitions the task list into at most `workers` contiguous
// runs of roughly equal total weight. Contiguity is what keeps the merge
// deterministic: concatenating shard outputs in shard order replays the
// serial engine's group-by-group generation order.
func shardTasks(groups []pgroup, tasks []*utask, workers int) [][]*utask {
	weights := make([]int64, len(tasks))
	var total int64
	for i, t := range tasks {
		weights[i] = pairWeight(len(groups[t.g].entries), t.lo, t.hi)
		total += weights[i]
	}
	var shards [][]*utask
	start, acc, remaining := 0, int64(0), total
	for i := range tasks {
		acc += weights[i]
		if left := workers - len(shards); left > 1 && i+1 < len(tasks) && acc >= remaining/int64(left) {
			shards = append(shards, tasks[start:i+1])
			remaining -= acc
			start, acc = i+1, 0
		}
	}
	return append(shards, tasks[start:])
}

// expandLevel performs one union step of Algorithm 2 over the level's
// groups on parallel workers. It returns the worker-local tries in shard
// order and reports false when the budget was exhausted. Discard marks
// are applied to the group entries before returning, so the caller can
// collect the level's surviving candidates directly. phase tags the
// worker goroutines for pprof when the recorder labels them.
func expandLevel(n int, groups []pgroup, opts Options, b *budget, unions *int64, workers int, phase stats.Phase) ([]*ptrie.Trie, bool) {
	tasks := planTasks(groups, workers)
	if len(tasks) == 0 {
		return nil, true
	}
	shards := shardTasks(groups, tasks, workers)
	locals := make([]*ptrie.Trie, len(shards))
	var over atomic.Bool
	var wg sync.WaitGroup
	for s := range shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			opts.Stats.Do(phase, func() {
				local := ptrie.New(n)
				var count int64
				defer func() { atomic.AddInt64(unions, count) }()
				for _, t := range shards[s] {
					if over.Load() {
						return
					}
					es := groups[t.g].entries
					for i := t.lo; i < t.hi; i++ {
						ci := opts.Cost.of(es[i].CEX)
						for j := i + 1; j < len(es); j++ {
							u := pcube.Union(es[i].CEX, es[j].CEX)
							count++
							h := opts.Cost.of(u)
							if h <= ci {
								t.mark(i)
							}
							if h <= opts.Cost.of(es[j].CEX) {
								t.mark(j)
							}
							if _, fresh := local.Insert(u); fresh && !b.spend(1) {
								over.Store(true)
								return
							}
						}
					}
				}
				locals[s] = local
			})
		}(s)
	}
	wg.Wait()
	if over.Load() {
		return nil, false
	}
	for _, t := range tasks {
		es := groups[t.g].entries
		for w, word := range t.marks {
			for ; word != 0; word &= word - 1 {
				es[w*64+bits.TrailingZeros64(word)].Mark = true
			}
		}
	}
	return locals, true
}

// shardGroups materializes a shard trie's groups with copied path keys
// for the k-way merge.
type shardGroup struct {
	path    []byte
	entries []*ptrie.Entry
}

func pathGroupsOf(t *ptrie.Trie) []shardGroup {
	var gs []shardGroup
	if t == nil {
		return gs
	}
	t.PathGroups(func(path []byte, es []*ptrie.Entry) bool {
		gs = append(gs, shardGroup{append([]byte(nil), path...), es})
		return true
	})
	return gs
}

// mergeShards k-way merges the worker-local tries into the next level's
// group list, deduplicating cross-shard copies of the same pseudoproduct
// (same structure group, same complement vector) and refunding their
// optimistic budget charges. Merging sorted path-key streams in shard
// order reproduces exactly the DFS group order and within-group entry
// order of the serial engine's next-level trie.
func mergeShards(locals []*ptrie.Trie, b *budget) ([]pgroup, int) {
	streams := make([][]shardGroup, len(locals))
	idx := make([]int, len(locals))
	for s, lt := range locals {
		streams[s] = pathGroupsOf(lt)
	}
	var next []pgroup
	size := 0
	for {
		best := -1
		for s := range streams {
			if idx[s] >= len(streams[s]) {
				continue
			}
			if best < 0 || bytes.Compare(streams[s][idx[s]].path, streams[best][idx[best]].path) < 0 {
				best = s
			}
		}
		if best < 0 {
			return next, size
		}
		path := streams[best][idx[best]].path
		var parts [][]*ptrie.Entry
		for s := best; s < len(streams); s++ {
			if idx[s] < len(streams[s]) && bytes.Equal(streams[s][idx[s]].path, path) {
				parts = append(parts, streams[s][idx[s]].entries)
				idx[s]++
			}
		}
		merged := parts[0]
		if len(parts) > 1 {
			// Same structure appears in several shards: dedup by comp
			// vector, keeping the earliest shard's instance like the
			// serial trie's Insert would.
			seen := make(map[uint64]bool, len(merged))
			for _, e := range merged {
				seen[e.CEX.CompVector()] = true
			}
			for _, part := range parts[1:] {
				for _, e := range part {
					if cv := e.CEX.CompVector(); !seen[cv] {
						seen[cv] = true
						merged = append(merged, e)
					} else {
						b.refund(1)
					}
				}
			}
		}
		next = append(next, pgroup{merged})
		size += len(merged)
	}
}

// mergeIntoTrie drains the worker-local tries into an existing master
// trie in shard order, refunding duplicates, and returns the number of
// entries fresh in the master — the deterministic union-success count
// of the step. Within every destination group the master ends up with
// entries in the same order the serial engine's interleaved inserts
// would have produced, because each local trie keeps its entries in
// generation order and shards are contiguous runs of the source
// iteration.
func mergeIntoTrie(dst *ptrie.Trie, locals []*ptrie.Trie, b *budget) int {
	fresh := 0
	for _, lt := range locals {
		if lt == nil {
			continue
		}
		lt.Entries(func(e *ptrie.Entry) bool {
			if _, f := dst.Insert(e.CEX); f {
				fresh++
			} else {
				b.refund(1)
			}
			return true
		})
	}
	return fresh
}

// descendParallel runs one step of the heuristic's descendant phase on
// parallel workers: every pseudoproduct of src expands into its
// degree-(m−1) sub-pseudocubes (Theorem 2), sharded contiguously over
// the src iteration order, then merged into dst (which may already hold
// the seeded prime implicants of that degree) in the serial insertion
// order. Returns the number of sub-pseudocubes fresh in dst and
// reports false when the budget is exhausted.
func descendParallel(n int, src, dst *ptrie.Trie, b *budget, workers int, rec *stats.Recorder) (int, bool) {
	var entries []*ptrie.Entry
	src.Entries(func(e *ptrie.Entry) bool {
		entries = append(entries, e)
		return true
	})
	if workers > len(entries) {
		workers = len(entries)
	}
	locals := make([]*ptrie.Trie, workers)
	var over atomic.Bool
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rec.Do(stats.PhaseDescend, func() {
				local := ptrie.New(n)
				for _, e := range entries[len(entries)*s/workers : len(entries)*(s+1)/workers] {
					if over.Load() {
						return
					}
					ok := true
					e.CEX.SubPseudocubes(func(sub *pcube.CEX) bool {
						if _, fresh := local.Insert(sub); fresh && !b.spend(1) {
							over.Store(true)
							ok = false
						}
						return ok
					})
					if !ok {
						return
					}
				}
				locals[s] = local
			})
		}(s)
	}
	wg.Wait()
	if over.Load() {
		return 0, false
	}
	return mergeIntoTrie(dst, locals, b), true
}

// levelGroups snapshots a trie's structure groups in DFS order.
func levelGroups(t *ptrie.Trie) []pgroup {
	var gs []pgroup
	t.Groups(func(es []*ptrie.Entry) bool {
		gs = append(gs, pgroup{es})
		return true
	})
	return gs
}

// buildEPPPParallel is BuildEPPP with the level expansion fanned out
// over opts.workers() workers. The candidate set, its order, and every
// statistic except BuildTime are identical to the serial engine's.
func buildEPPPParallel(f *bfunc.Func, opts Options) (*EPPPSet, error) {
	defer opts.Stats.Phase(stats.PhaseEPPP)()
	start := time.Now()
	n := f.N()
	workers := opts.workers()
	b := newBudget(opts)
	bst := BuildStats{}

	seed := ptrie.New(n)
	for _, p := range f.Care() {
		seed.Insert(pcube.FromPoint(n, p))
	}
	if !b.spend(seed.Len()) {
		return nil, b.failure()
	}
	if opts.Stats != nil {
		opts.Stats.Add(stats.CtrTrieNodes, int64(seed.NumInternalNodes()))
	}
	groups := levelGroups(seed)
	size := seed.Len()

	var candidates []*pcube.CEX
	for level := 0; size > 0; level++ {
		if err := opts.ctxErr(); err != nil {
			return nil, err
		}
		bst.LevelSizes = append(bst.LevelSizes, size)
		bst.Groups = append(bst.Groups, len(groups))
		locals, ok := expandLevel(n, groups, opts, b, &bst.Unions, workers, stats.PhaseEPPP)
		if !ok {
			return nil, b.failure()
		}
		if opts.Stats != nil {
			// Shard tries duplicate path prefixes across workers, so this
			// node count is scheduling-dependent (unlike every BuildStats
			// field) and lands in the report's sched section.
			for _, lt := range locals {
				if lt != nil {
					opts.Stats.Add(stats.CtrTrieNodes, int64(lt.NumInternalNodes()))
				}
			}
		}
		for _, g := range groups {
			for _, e := range g.entries {
				if !e.Mark {
					candidates = append(candidates, e.CEX)
				}
			}
		}
		bst.Candidates += size
		groups, size = mergeShards(locals, b)
		bst.Fresh += int64(size)
	}
	bst.EPPP = len(candidates)
	bst.BuildTime = time.Since(start)
	recordBuild(opts.Stats, &bst)
	return &EPPPSet{N: n, Candidates: candidates, Stats: bst}, nil
}

// buildEPPPHashGroupedParallel parallelizes the hash-grouped ablation
// variant the same way: groups are sharded over workers, each worker
// unifies into shard-local structure maps, and a serial reduction
// dedups across shards. Group order is fixed by sorting structure keys,
// so unlike the serial map-iteration variant the output order here is
// deterministic; the candidate set is identical either way.
func buildEPPPHashGroupedParallel(f *bfunc.Func, opts Options) (*EPPPSet, error) {
	defer opts.Stats.Phase(stats.PhaseEPPP)()
	start := time.Now()
	n := f.N()
	workers := opts.workers()
	b := newBudget(opts)
	bst := BuildStats{}

	type hentry struct {
		cex  *pcube.CEX
		mark bool
	}
	type hgroup struct {
		skey    string
		entries []*hentry
	}

	sortGroups := func(gs []hgroup) {
		sort.Slice(gs, func(i, j int) bool { return gs[i].skey < gs[j].skey })
	}

	var cur []hgroup
	curLen := 0
	{
		bySkey := map[string][]*hentry{}
		seen := map[string]bool{}
		for _, p := range f.Care() {
			c := pcube.FromPoint(n, p)
			if k := c.Key(); !seen[k] {
				seen[k] = true
				bySkey[c.StructureKey()] = append(bySkey[c.StructureKey()], &hentry{cex: c})
				curLen++
			}
		}
		cur = make([]hgroup, 0, len(bySkey))
		for k, es := range bySkey {
			cur = append(cur, hgroup{k, es})
		}
		sortGroups(cur)
	}
	if !b.spend(curLen) {
		return nil, b.failure()
	}

	var candidates []*pcube.CEX
	for level := 0; curLen > 0; level++ {
		if err := opts.ctxErr(); err != nil {
			return nil, err
		}
		bst.LevelSizes = append(bst.LevelSizes, curLen)
		bst.Groups = append(bst.Groups, len(cur))

		// Contiguous group shards, weighted by pair count.
		var total int64
		for _, g := range cur {
			m := int64(len(g.entries))
			total += m * (m - 1) / 2
		}
		w := workers
		if w > len(cur) {
			w = len(cur)
		}
		bounds := []int{0}
		acc := int64(0)
		for i, g := range cur {
			m := int64(len(g.entries))
			acc += m * (m - 1) / 2
			if len(bounds) < w && acc >= total/int64(w) && i+1 < len(cur) {
				bounds = append(bounds, i+1)
				acc = 0
			}
		}
		bounds = append(bounds, len(cur))

		type shardOut struct {
			fresh []*hentry // shard-fresh unions in generation order
		}
		outs := make([]shardOut, len(bounds)-1)
		var over atomic.Bool
		var wg sync.WaitGroup
		for s := 0; s < len(bounds)-1; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				opts.Stats.Do(stats.PhaseEPPP, func() {
					var count int64
					defer func() { atomic.AddInt64(&bst.Unions, count) }()
					seen := map[string]bool{}
					for _, g := range cur[bounds[s]:bounds[s+1]] {
						if over.Load() {
							return
						}
						es := g.entries
						for i := 0; i < len(es); i++ {
							for j := i + 1; j < len(es); j++ {
								u := pcube.Union(es[i].cex, es[j].cex)
								count++
								h := opts.Cost.of(u)
								if h <= opts.Cost.of(es[i].cex) {
									es[i].mark = true
								}
								if h <= opts.Cost.of(es[j].cex) {
									es[j].mark = true
								}
								if k := u.Key(); !seen[k] {
									seen[k] = true
									outs[s].fresh = append(outs[s].fresh, &hentry{cex: u})
									if !b.spend(1) {
										over.Store(true)
										return
									}
								}
							}
						}
					}
				})
			}(s)
		}
		wg.Wait()
		if over.Load() {
			return nil, b.failure()
		}

		for _, g := range cur {
			for _, e := range g.entries {
				if !e.mark {
					candidates = append(candidates, e.cex)
				}
			}
		}
		bst.Candidates += curLen

		// Reduction: dedup across shards in shard order, regroup by
		// structure, restore the deterministic group order.
		seen := map[string]bool{}
		bySkey := map[string][]*hentry{}
		nextLen := 0
		for _, out := range outs {
			for _, e := range out.fresh {
				if k := e.cex.Key(); seen[k] {
					b.refund(1)
					continue
				} else {
					seen[k] = true
				}
				bySkey[e.cex.StructureKey()] = append(bySkey[e.cex.StructureKey()], e)
				nextLen++
			}
		}
		next := make([]hgroup, 0, len(bySkey))
		for k, es := range bySkey {
			next = append(next, hgroup{k, es})
		}
		sortGroups(next)
		cur, curLen = next, nextLen
		bst.Fresh += int64(nextLen)
	}
	bst.EPPP = len(candidates)
	bst.BuildTime = time.Since(start)
	recordBuild(opts.Stats, &bst)
	return &EPPPSet{N: n, Candidates: candidates, Stats: bst}, nil
}

// shardSlice splits [0, n) into contiguous order-preserving shards, one
// per worker (shard s covers [n*s/w, n*(s+1)/w)), and runs fn for each
// shard concurrently. With one worker (or n <= 1) fn runs inline. It is
// the shared fan-out primitive for embarrassingly parallel per-item
// passes whose outputs are concatenated back in shard order — e.g. the
// covering-column construction of SelectCover and MinimizeMulti.
func shardSlice(n, workers int, fn func(shard, lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		lo, hi := n*s/workers, n*(s+1)/workers
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
}
