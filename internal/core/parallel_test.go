package core

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bfunc"
)

// workerCounts exercised against the serial engine. NumCPU on the test
// host may be 1, so forcing several explicit counts (including one far
// above the group count) is what actually drives the parallel paths.
var workerCounts = []int{2, 3, 4, 8}

func keySeq(set *EPPPSet) []string {
	keys := make([]string, len(set.Candidates))
	for i, c := range set.Candidates {
		keys[i] = c.Key()
	}
	return keys
}

func sameStats(t *testing.T, label string, a, b BuildStats) {
	t.Helper()
	if a.Candidates != b.Candidates || a.EPPP != b.EPPP || a.Unions != b.Unions || a.Fresh != b.Fresh {
		t.Fatalf("%s: stats differ: serial {cand=%d eppp=%d unions=%d fresh=%d} parallel {cand=%d eppp=%d unions=%d fresh=%d}",
			label, a.Candidates, a.EPPP, a.Unions, a.Fresh, b.Candidates, b.EPPP, b.Unions, b.Fresh)
	}
	if len(a.LevelSizes) != len(b.LevelSizes) {
		t.Fatalf("%s: level count differs: %d vs %d", label, len(a.LevelSizes), len(b.LevelSizes))
	}
	for i := range a.LevelSizes {
		if a.LevelSizes[i] != b.LevelSizes[i] || a.Groups[i] != b.Groups[i] {
			t.Fatalf("%s: level %d differs: serial (%d pp, %d groups) parallel (%d pp, %d groups)",
				label, i, a.LevelSizes[i], a.Groups[i], b.LevelSizes[i], b.Groups[i])
		}
	}
}

// TestParallelEPPPIdentical is the tentpole property: for every worker
// count the parallel engine emits the exact candidate sequence — same
// pseudoproducts, same order — and the same statistics as Workers=1.
func TestParallelEPPPIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(3)
		f := randomFunc(rng, n, 0.45, trial%3 == 0)
		serial, err := BuildEPPP(f, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := keySeq(serial)
		for _, w := range workerCounts {
			par, err := BuildEPPP(f, Options{Workers: w})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, w, err)
			}
			got := keySeq(par)
			if len(got) != len(want) {
				t.Fatalf("trial %d workers %d: %d candidates, want %d", trial, w, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d workers %d: candidate %d differs:\n got %q\nwant %q",
						trial, w, i, got[i], want[i])
				}
			}
			sameStats(t, "BuildEPPP", serial.Stats, par.Stats)
		}
	}
}

// TestParallelHashGroupedIdentical checks the hash-grouped ablation
// variant: the parallel engine must produce the same candidate *set*
// (serial map iteration order is nondeterministic, so order is not
// comparable) and the same counters.
func TestParallelHashGroupedIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(2)
		f := randomFunc(rng, n, 0.5, trial%2 == 0)
		serial, err := BuildEPPPHashGrouped(f, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]bool{}
		for _, k := range keySeq(serial) {
			want[k] = true
		}
		for _, w := range workerCounts {
			par, err := BuildEPPPHashGrouped(f, Options{Workers: w})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, w, err)
			}
			got := keySeq(par)
			if len(got) != len(want) {
				t.Fatalf("trial %d workers %d: %d candidates, want %d", trial, w, len(got), len(want))
			}
			for _, k := range got {
				if !want[k] {
					t.Fatalf("trial %d workers %d: unexpected candidate %q", trial, w, k)
				}
			}
			sameStats(t, "BuildEPPPHashGrouped", serial.Stats, par.Stats)
		}
	}
}

// TestParallelHeuristicIdentical checks Algorithm 3 end to end: the
// parallel descendant and ascendant phases must leave the selected
// SPP_k form and the build statistics untouched for every k.
func TestParallelHeuristicIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(3)
		f := randomFunc(rng, n, 0.4, trial%3 == 0)
		for k := 0; k < n; k++ {
			serial, err := Heuristic(f, k, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts {
				par, err := Heuristic(f, k, Options{Workers: w})
				if err != nil {
					t.Fatalf("trial %d k=%d workers %d: %v", trial, k, w, err)
				}
				if len(par.Form.Terms) != len(serial.Form.Terms) {
					t.Fatalf("trial %d k=%d workers %d: %d terms, want %d",
						trial, k, w, len(par.Form.Terms), len(serial.Form.Terms))
				}
				for i := range serial.Form.Terms {
					if par.Form.Terms[i].Key() != serial.Form.Terms[i].Key() {
						t.Fatalf("trial %d k=%d workers %d: term %d differs", trial, k, w, i)
					}
				}
				sameStats(t, "Heuristic", serial.Build, par.Build)
			}
		}
	}
}

// TestParallelMinimizeMultiIdentical checks the joint multi-output
// minimizer: with parallel per-output builds the shared pool selection,
// drive lists and joint cost must match the serial run.
func TestParallelMinimizeMultiIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(2)
		outs := make([]*bfunc.Func, 2+rng.Intn(3))
		for i := range outs {
			outs[i] = randomFunc(rng, n, 0.4, trial%2 == 0)
		}
		m := bfunc.NewMulti("t", n, outs)
		serial, err := MinimizeMulti(m, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts {
			par, err := MinimizeMulti(m, Options{Workers: w})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, w, err)
			}
			if par.SharedLiterals != serial.SharedLiterals {
				t.Fatalf("trial %d workers %d: shared literals %d, want %d",
					trial, w, par.SharedLiterals, serial.SharedLiterals)
			}
			if len(par.Terms) != len(serial.Terms) {
				t.Fatalf("trial %d workers %d: pool size %d, want %d",
					trial, w, len(par.Terms), len(serial.Terms))
			}
			for i := range serial.Terms {
				if par.Terms[i].Key() != serial.Terms[i].Key() {
					t.Fatalf("trial %d workers %d: pool term %d differs", trial, w, i)
				}
			}
			for o := range serial.Drives {
				if len(par.Drives[o]) != len(serial.Drives[o]) {
					t.Fatalf("trial %d workers %d: output %d drives %v, want %v",
						trial, w, o, par.Drives[o], serial.Drives[o])
				}
				for i := range serial.Drives[o] {
					if par.Drives[o][i] != serial.Drives[o][i] {
						t.Fatalf("trial %d workers %d: output %d drives %v, want %v",
							trial, w, o, par.Drives[o], serial.Drives[o])
					}
				}
			}
			if par.Build.Unions != serial.Build.Unions || par.Build.Candidates != serial.Build.Candidates {
				t.Fatalf("trial %d workers %d: build stats differ", trial, w)
			}
		}
	}
}

// TestParallelBudgetExhaustion checks that budget limits keep working
// under parallelism: a tiny candidate cap must surface ErrBudget (never
// a wrong result, never a hang) and a tiny deadline likewise.
func TestParallelBudgetExhaustion(t *testing.T) {
	f := randomFunc(rand.New(rand.NewSource(15)), 5, 0.5, false)
	// The deadline is polled every 1024 credits, so the wall-clock check
	// needs a function that generates well past that many candidates.
	big := randomFunc(rand.New(rand.NewSource(16)), 8, 0.5, false)
	for _, w := range []int{1, 2, 4, 8} {
		if _, err := BuildEPPP(f, Options{Workers: w, MaxCandidates: 8}); !errors.Is(err, ErrBudget) {
			t.Fatalf("workers %d: MaxCandidates=8 returned %v, want ErrBudget", w, err)
		}
		if _, err := Heuristic(f, 2, Options{Workers: w, MaxCandidates: 8}); !errors.Is(err, ErrBudget) {
			t.Fatalf("workers %d: heuristic MaxCandidates=8 returned %v, want ErrBudget", w, err)
		}
		if _, err := BuildEPPP(big, Options{Workers: w, MaxDuration: time.Nanosecond}); !errors.Is(err, ErrBudget) {
			t.Fatalf("workers %d: MaxDuration=1ns returned %v, want ErrBudget", w, err)
		}
	}
}
