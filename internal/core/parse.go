package core

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/bitvec"
	"repro/internal/pcube"
)

// ParseForm parses the textual SPP syntax produced by Form.String back
// into a Form over B^n, re-canonicalizing every pseudoproduct. Both the
// unicode rendering and an ASCII equivalent are accepted:
//
//	x1·(x0⊕x̄2) + x̄0·x2        (unicode: · ⊕ x̄)
//	x1*(x0^!x2) + !x0*x2       (ascii:   * ^ !)
//
// "0" denotes the empty form and "1" the constant-one form. Factors may
// be written in any order and non-canonically (e.g. (x0⊕x1)·(x0⊕x̄1) is
// rejected as inconsistent, (x0⊕x1)·x1 canonicalizes to x1·x0... to the
// canonical x0-before-x1 CEX). Parsing is the inverse of String up to
// canonicalization.
func ParseForm(n int, src string) (Form, error) {
	p := &formParser{n: n, src: src}
	form, err := p.parse()
	if err != nil {
		return Form{}, fmt.Errorf("core: parse %q: %v", src, err)
	}
	return form, nil
}

type formParser struct {
	n   int
	src string
	pos int
}

func (p *formParser) ws() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

// lookingAt consumes tok if the input continues with it.
func (p *formParser) lookingAt(toks ...string) bool {
	p.ws()
	for _, tok := range toks {
		if strings.HasPrefix(p.src[p.pos:], tok) {
			p.pos += len(tok)
			return true
		}
	}
	return false
}

func (p *formParser) parse() (Form, error) {
	form := Form{N: p.n}
	if p.lookingAt("0") {
		p.ws()
		if p.pos != len(p.src) {
			return form, fmt.Errorf("trailing input after 0")
		}
		return form, nil
	}
	for {
		term, err := p.term()
		if err != nil {
			return form, err
		}
		form.Terms = append(form.Terms, term)
		if !p.lookingAt("+", "|") {
			break
		}
	}
	p.ws()
	if p.pos != len(p.src) {
		return form, fmt.Errorf("unexpected input at offset %d", p.pos)
	}
	return form, nil
}

func (p *formParser) term() (*pcube.CEX, error) {
	if p.lookingAt("1") {
		return &pcube.CEX{N: p.n, Canon: bitvec.SpaceMask(p.n)}, nil
	}
	var factors []pcube.Factor
	for {
		f, err := p.factor()
		if err != nil {
			return nil, err
		}
		factors = append(factors, f)
		if !p.lookingAt("·", "*", "&") {
			break
		}
	}
	cex, ok := pcube.FromFactors(p.n, factors)
	if !ok {
		return nil, fmt.Errorf("inconsistent pseudoproduct (constant 0)")
	}
	return cex, nil
}

func (p *formParser) factor() (pcube.Factor, error) {
	parens := p.lookingAt("(")
	var f pcube.Factor
	for {
		v, comp, err := p.literal()
		if err != nil {
			return f, err
		}
		f.Vars ^= bitvec.VarMask(p.n, v)
		f.Comp ^= comp
		if !p.lookingAt("⊕", "^") {
			break
		}
	}
	if parens && !p.lookingAt(")") {
		return f, fmt.Errorf("missing ) at offset %d", p.pos)
	}
	if f.Vars == 0 {
		return f, fmt.Errorf("empty EXOR factor")
	}
	return f, nil
}

func (p *formParser) literal() (int, uint8, error) {
	p.ws()
	comp := uint8(0)
	if p.lookingAt("!", "~") {
		comp = 1
	}
	if !p.lookingAt("x") {
		return 0, 0, fmt.Errorf("expected variable at offset %d", p.pos)
	}
	// Combining macron (x̄) marks complement in the unicode rendering.
	if strings.HasPrefix(p.src[p.pos:], "̄") {
		comp ^= 1
		p.pos += len("̄")
	}
	start := p.pos
	for p.pos < len(p.src) && unicode.IsDigit(rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return 0, 0, fmt.Errorf("expected variable index at offset %d", p.pos)
	}
	var idx int
	fmt.Sscanf(p.src[start:p.pos], "%d", &idx)
	if idx < 0 || idx >= p.n {
		return 0, 0, fmt.Errorf("variable x%d out of range for B^%d", idx, p.n)
	}
	return idx, comp, nil
}
