package core

import (
	"math/rand"
	"testing"

	"repro/internal/bfunc"
	"repro/internal/bitvec"
	"repro/internal/pcube"
)

func TestFromFactorsCanonicalizes(t *testing.T) {
	n := 6
	// Figure-1 CEX given as redundant, shuffled, non-canonical factors:
	// x1 · (x0⊕x2⊕x3) · (x0⊕x4⊕x5) · (x2⊕x3⊕x4⊕x5)   (last = xor of
	// factors 2 and 3, redundant).
	fs := []pcube.Factor{
		{Vars: bitvec.MaskOf(n, 2, 3, 4, 5), Comp: 1}, // redundant combo
		{Vars: bitvec.MaskOf(n, 0, 4, 5), Comp: 0},
		{Vars: bitvec.MaskOf(n, 1), Comp: 0},
		{Vars: bitvec.MaskOf(n, 0, 2, 3), Comp: 0},
	}
	c, ok := pcube.FromFactors(n, fs)
	if !ok {
		t.Fatal("FromFactors rejected a satisfiable product")
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if c.String() != "x1·(x0⊕x2⊕x3)·(x0⊕x4⊕x5)" {
		t.Fatalf("canonicalized to %q", c.String())
	}
}

func TestFromFactorsRedundantComplementMatters(t *testing.T) {
	n := 6
	// Same as above but the redundant factor has the WRONG complement:
	// the product is constant 0.
	fs := []pcube.Factor{
		{Vars: bitvec.MaskOf(n, 1), Comp: 0},
		{Vars: bitvec.MaskOf(n, 0, 2, 3), Comp: 0},
		{Vars: bitvec.MaskOf(n, 0, 4, 5), Comp: 0},
		{Vars: bitvec.MaskOf(n, 2, 3, 4, 5), Comp: 0}, // inconsistent
	}
	if _, ok := pcube.FromFactors(n, fs); ok {
		t.Fatal("inconsistent product accepted")
	}
	// x0 · x̄0 is the smallest inconsistent product.
	bad := []pcube.Factor{
		{Vars: bitvec.MaskOf(n, 0), Comp: 0},
		{Vars: bitvec.MaskOf(n, 0), Comp: 1},
	}
	if _, ok := pcube.FromFactors(n, bad); ok {
		t.Fatal("x0·x̄0 accepted")
	}
}

func TestFromFactorsMatchesFromPoints(t *testing.T) {
	// Random satisfiable factor systems: FromFactors must equal the CEX
	// recomputed from the solution points.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(5)
		var fs []pcube.Factor
		for i := 0; i < 1+rng.Intn(4); i++ {
			var vars uint64
			for vars == 0 {
				vars = rng.Uint64() & bitvec.SpaceMask(n)
			}
			fs = append(fs, pcube.Factor{Vars: vars, Comp: uint8(rng.Intn(2))})
		}
		c, ok := pcube.FromFactors(n, fs)
		if !ok {
			continue // inconsistent draw
		}
		if err := c.Verify(); err != nil {
			t.Fatalf("invalid CEX: %v", err)
		}
		// The point set must satisfy every original factor, and the CEX
		// must be canonical.
		pts := c.Points()
		for _, p := range pts {
			for _, f := range fs {
				if f.Eval(p) != 1 {
					t.Fatalf("solution point violates input factor")
				}
			}
		}
		c2, ok := pcube.FromPoints(n, pts)
		if !ok || !c.Equal(c2) {
			t.Fatalf("not canonical:\n got %v\n want %v", c, c2)
		}
		// Completeness: count solutions over the whole space.
		count := 0
		for p := uint64(0); p < 1<<uint(n); p++ {
			all := true
			for _, f := range fs {
				if f.Eval(p) != 1 {
					all = false
					break
				}
			}
			if all {
				count++
			}
		}
		if count != 1<<uint(c.Degree()) {
			t.Fatalf("solution count %d != 2^%d", count, c.Degree())
		}
	}
}

func TestParseFormRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(3)
		var on []uint64
		for p := uint64(0); p < 1<<uint(n); p++ {
			if rng.Intn(3) == 0 {
				on = append(on, p)
			}
		}
		f := bfunc.New(n, on)
		res, err := MinimizeExact(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseForm(n, res.Form.String())
		if err != nil {
			t.Fatalf("round trip parse: %v", err)
		}
		if parsed.String() != res.Form.String() {
			t.Fatalf("round trip mismatch:\n in  %s\n out %s", res.Form, parsed)
		}
	}
}

func TestParseFormASCII(t *testing.T) {
	form, err := ParseForm(4, "x1*(x0^!x2) + !x0*x2 | x3")
	if err != nil {
		t.Fatal(err)
	}
	if len(form.Terms) != 3 {
		t.Fatalf("terms = %d", len(form.Terms))
	}
	// Evaluate against the obvious definition.
	for p := uint64(0); p < 16; p++ {
		x := func(i int) bool { return bitvec.Bit(p, 4, i) == 1 }
		want := (x(1) && (x(0) != !x(2))) || (!x(0) && x(2)) || x(3)
		if form.Eval(p) != want {
			t.Fatalf("ascii parse wrong at %04b", p)
		}
	}
}

func TestParseFormConstants(t *testing.T) {
	zero, err := ParseForm(3, "0")
	if err != nil || zero.NumTerms() != 0 {
		t.Fatalf("zero: %v %v", zero, err)
	}
	one, err := ParseForm(3, "1")
	if err != nil || one.NumTerms() != 1 || one.Literals() != 0 {
		t.Fatalf("one: %v %v", one, err)
	}
	if !one.Eval(5) {
		t.Fatal("constant one evaluates to 0")
	}
}

func TestParseFormErrors(t *testing.T) {
	cases := []string{
		"",       // nothing
		"x9",     // out of range for n=4
		"x0·x̄0", // inconsistent product
		"x0 +",   // dangling +
		"(x0⊕x1", // missing paren
		"y0",     // not a variable
		"x0 x1",  // missing operator
		"x0·()",  // empty factor
		"0 x1",   // trailing after 0
	}
	for _, src := range cases {
		if _, err := ParseForm(4, src); err == nil {
			t.Errorf("ParseForm(%q) succeeded, want error", src)
		}
	}
}

func TestParseNonCanonicalInput(t *testing.T) {
	// (x1⊕x0)·x1 written badly: canonicalizes to x̄0... solve: x1⊕x0=1
	// and x1=1 → x0=0, x1=1 → CEX = x̄0·x1.
	form, err := ParseForm(3, "(x1⊕x0)·x1")
	if err != nil {
		t.Fatal(err)
	}
	if form.String() != "x̄0·x1" {
		t.Fatalf("canonicalized to %q", form.String())
	}
}
