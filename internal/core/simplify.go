package core

import (
	"sort"

	"repro/internal/bfunc"
)

// Simplify returns an equivalent form with redundant pseudoproducts
// removed: a term is dropped (most expensive first) when every ON point
// of fn it covers is covered by the remaining terms. Useful for forms
// that did not come out of a minimizer — hand-written or parsed — and
// as a final polish after heuristic covering. The result evaluates
// identically to f on fn's care points.
func (f Form) Simplify(fn *bfunc.Func) Form {
	if len(f.Terms) <= 1 {
		return f
	}
	// ON points each term is responsible for.
	on := fn.On()
	coverCount := make(map[uint64]int, len(on))
	covers := make([][]uint64, len(f.Terms))
	for i, t := range f.Terms {
		for _, p := range on {
			if t.Contains(p) {
				covers[i] = append(covers[i], p)
				coverCount[p]++
			}
		}
	}
	order := make([]int, len(f.Terms))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return f.Terms[order[a]].Literals() > f.Terms[order[b]].Literals()
	})
	alive := make([]bool, len(f.Terms))
	for i := range alive {
		alive[i] = true
	}
	for _, i := range order {
		redundant := true
		for _, p := range covers[i] {
			if coverCount[p] == 1 {
				redundant = false
				break
			}
		}
		if redundant {
			alive[i] = false
			for _, p := range covers[i] {
				coverCount[p]--
			}
		}
	}
	out := Form{N: f.N}
	for i, t := range f.Terms {
		if alive[i] {
			out.Terms = append(out.Terms, t)
		}
	}
	return out
}
