package core

import (
	"math/rand"
	"testing"

	"repro/internal/bfunc"
	"repro/internal/pcube"
)

func TestSimplifyDropsRedundantTerms(t *testing.T) {
	// f = x0 over B^2 written redundantly as x0 + x0·x1.
	n := 2
	fn := bfunc.New(n, []uint64{0b10, 0b11})
	form, err := ParseForm(n, "x0 + x0·x1")
	if err != nil {
		t.Fatal(err)
	}
	s := form.Simplify(fn)
	if s.NumTerms() != 1 || s.String() != "x0" {
		t.Fatalf("Simplify = %q", s.String())
	}
	if err := s.Verify(fn); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifyKeepsIrredundantForms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		n := 4
		var on []uint64
		for p := uint64(0); p < 16; p++ {
			if rng.Intn(3) == 0 {
				on = append(on, p)
			}
		}
		fn := bfunc.New(n, on)
		res, err := MinimizeExact(fn, Options{})
		if err != nil {
			t.Fatal(err)
		}
		s := res.Form.Simplify(fn)
		if s.NumTerms() != res.Form.NumTerms() {
			t.Fatalf("minimizer output lost terms in Simplify: %d -> %d",
				res.Form.NumTerms(), s.NumTerms())
		}
	}
}

func TestSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		n := 4
		var on []uint64
		for p := uint64(0); p < 16; p++ {
			if rng.Intn(2) == 0 {
				on = append(on, p)
			}
		}
		fn := bfunc.New(n, on)
		// An intentionally bloated form: the minimal one plus every
		// single ON minterm as a degree-0 term.
		res, err := MinimizeExact(fn, Options{})
		if err != nil {
			t.Fatal(err)
		}
		bloated := Form{N: n, Terms: append([]*pcube.CEX(nil), res.Form.Terms...)}
		for _, p := range on {
			bloated.Terms = append(bloated.Terms, pcube.FromPoint(n, p))
		}
		s := bloated.Simplify(fn)
		if err := s.Verify(fn); err != nil {
			t.Fatal(err)
		}
		// Greedy elimination is not guaranteed minimal, but it must
		// actually shrink a grossly redundant form, and the result must
		// itself be irredundant (a second pass changes nothing).
		if len(on) > 0 && res.Form.NumTerms() < len(bloated.Terms) &&
			s.NumTerms() >= len(bloated.Terms) {
			t.Fatalf("Simplify dropped nothing from a redundant form (%d terms)",
				len(bloated.Terms))
		}
		if again := s.Simplify(fn); again.NumTerms() != s.NumTerms() {
			t.Fatalf("Simplify not idempotent: %d -> %d", s.NumTerms(), again.NumTerms())
		}
	}
}

func TestSimplifyTrivialForms(t *testing.T) {
	fn := bfunc.New(3, []uint64{1})
	empty := Form{N: 3}
	if got := empty.Simplify(fn); got.NumTerms() != 0 {
		t.Fatal("empty form changed")
	}
	single := Form{N: 3, Terms: []*pcube.CEX{pcube.FromPoint(3, 1)}}
	if got := single.Simplify(fn); got.NumTerms() != 1 {
		t.Fatal("single-term form changed")
	}
}
