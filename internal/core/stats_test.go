package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bfunc"
	"repro/internal/stats"
)

// detParts extracts the worker-count-invariant sections of a report:
// the deterministic counters and the per-degree layer sizes. Phase
// times and the sched section are scheduling-dependent by design and
// excluded.
func detParts(rec *stats.Recorder) (map[string]int64, []stats.LayerSize) {
	rep := rec.Report("")
	return rep.Counters, rep.Layers
}

func sameDetParts(t *testing.T, label string, serial, par *stats.Recorder) {
	t.Helper()
	sc, sl := detParts(serial)
	pc, pl := detParts(par)
	if !reflect.DeepEqual(sc, pc) {
		t.Fatalf("%s: deterministic counters differ:\nserial   %v\nparallel %v", label, sc, pc)
	}
	if !reflect.DeepEqual(sl, pl) {
		t.Fatalf("%s: layers differ:\nserial   %v\nparallel %v", label, sl, pl)
	}
}

// TestStatsDeterministicAcrossWorkers is the observability counterpart
// of the byte-identical-results property: every counter in the
// deterministic section of the report, and the per-degree layer sizes,
// must be identical for every worker count — on the exact minimizer
// (greedy and exact covering), the SPP_k heuristic and the joint
// multi-output minimizer.
func TestStatsDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(3)
		f := randomFunc(rng, n, 0.45, trial%3 == 0)

		for _, exact := range []bool{false, true} {
			serialRec := stats.New()
			if _, err := MinimizeExact(f, Options{Workers: 1, CoverExact: exact, Stats: serialRec}); err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts {
				parRec := stats.New()
				if _, err := MinimizeExact(f, Options{Workers: w, CoverExact: exact, Stats: parRec}); err != nil {
					t.Fatalf("trial %d workers %d: %v", trial, w, err)
				}
				sameDetParts(t, "MinimizeExact", serialRec, parRec)
			}
			if serialRec.Get(stats.CtrCandidates) == 0 {
				t.Fatalf("trial %d: no candidates counted", trial)
			}
		}

		k := rng.Intn(n)
		serialRec := stats.New()
		if _, err := Heuristic(f, k, Options{Workers: 1, Stats: serialRec}); err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts {
			parRec := stats.New()
			if _, err := Heuristic(f, k, Options{Workers: w, Stats: parRec}); err != nil {
				t.Fatalf("trial %d k=%d workers %d: %v", trial, k, w, err)
			}
			sameDetParts(t, "Heuristic", serialRec, parRec)
		}
	}
}

// TestStatsDeterministicMulti covers the joint multi-output path, whose
// column construction and EPPP builds shard differently per worker
// count.
func TestStatsDeterministicMulti(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 5; trial++ {
		n := 3 + rng.Intn(2)
		outs := make([]*bfunc.Func, 2+rng.Intn(3))
		for i := range outs {
			outs[i] = randomFunc(rng, n, 0.4, trial%2 == 0)
		}
		m := bfunc.NewMulti("t", n, outs)
		serialRec := stats.New()
		if _, err := MinimizeMulti(m, Options{Workers: 1, Stats: serialRec}); err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts {
			parRec := stats.New()
			if _, err := MinimizeMulti(m, Options{Workers: w, Stats: parRec}); err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, w, err)
			}
			sameDetParts(t, "MinimizeMulti", serialRec, parRec)
		}
	}
}

// TestStatsPhasesRecorded checks the phase clock: an instrumented exact
// minimization must time the EPPP, column and covering phases, and a
// heuristic run the seed/descend/ascend split.
func TestStatsPhasesRecorded(t *testing.T) {
	f := randomFunc(rand.New(rand.NewSource(23)), 4, 0.45, true)
	rec := stats.New()
	if _, err := MinimizeExact(f, Options{Workers: 1, Stats: rec}); err != nil {
		t.Fatal(err)
	}
	rep := rec.Report("x")
	got := map[string]bool{}
	for _, p := range rep.Phases {
		got[p.Phase] = true
	}
	for _, want := range []string{"eppp", "cover.columns", "cover.greedy"} {
		if !got[want] {
			t.Fatalf("exact run phases %v missing %q", rep.Phases, want)
		}
	}
	if rep.PhaseSeconds() > rep.WallSeconds {
		t.Fatalf("phase sum %.6fs exceeds wall %.6fs (phases must be disjoint)",
			rep.PhaseSeconds(), rep.WallSeconds)
	}

	rec = stats.New()
	if _, err := Heuristic(f, 1, Options{Workers: 1, Stats: rec}); err != nil {
		t.Fatal(err)
	}
	rep = rec.Report("x")
	got = map[string]bool{}
	for _, p := range rep.Phases {
		got[p.Phase] = true
	}
	for _, want := range []string{"heuristic.seed", "heuristic.descend", "heuristic.ascend"} {
		if !got[want] {
			t.Fatalf("heuristic run phases %v missing %q", rep.Phases, want)
		}
	}
}
