package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/bfunc"
	"repro/internal/pcube"
	"repro/internal/ptrie"
	"repro/internal/stats"
)

// This file implements warm-state minimization: a cold run that
// snapshots its reusable intermediates (MinimizeExactWarm) and a resume
// path that patches the snapshot under a small ON/DC-set edit instead
// of rebuilding it (ResumeExact).
//
// The snapshot leans on a structural fact of Algorithm 2: level k of
// the construction is exactly the set of degree-k pseudocubes contained
// in the care set. (Induction: any degree-(k+1) pseudocube splits along
// each canonical direction into two same-structure halves inside care,
// so it is generated; conversely every union of two care-contained
// pseudocubes is care-contained.) The level sets are therefore pure
// functions of the care set — independent of generation history — and a
// care edit changes them in a local way:
//
//   - an entry dies iff it contains a removed care point;
//   - the new entries at level k are exactly the degree-k pseudocubes
//     containing at least one added point, and each is the union of a
//     new level-(k-1) half with a surviving (or earlier-new) half in
//     the same structure group — so they are reachable by unioning new
//     members against their group only;
//   - the discard marks of Algorithm 2 step 2 are maintained as counts
//     (partners that discard me), so a dying partner's contribution can
//     be retracted and a new partner's added without re-unioning the
//     whole group.
//
// Byte-identity of the patched result requires a candidate order that
// is itself history-independent, so the warm engines emit candidates in
// canonical order: levels ascending, structure groups in trie path-key
// order, entries within a group by complement vector. This differs from
// BuildEPPP's generation order (insertion order within groups), which
// is why warm capture is a separate code path: MinimizeExact and every
// pinned table number stay untouched, and "cold run" in the delta
// engine's correctness bar means MinimizeExactWarm.

// WarmState is the reusable intermediate state of one warm exact
// minimization: the per-level structure groups (with discard counts and
// point signatures for cheap invalidation) and the ON points covered by
// each covering candidate. It is immutable — ResumeExact copies the
// groups it dirties and shares the rest — so one WarmState may serve
// many concurrent resumes.
type WarmState struct {
	n      int
	f      *bfunc.Func
	cost   CostKind
	levels []warmLevel
	// cands is this generation's candidate list in canonical emission
	// order, and candPts its aligned sorted covered-ON point lists
	// (empty for candidates covering only don't-cares). Survivors keep
	// their CEX pointer identity across resumes, and surviving
	// candidates keep their relative order, so the next resume
	// re-associates point lists by a single monotone merge against this
	// list instead of a per-candidate map lookup. Both are nil when the
	// covering step short-circuited trivially (nothing was computed).
	cands   []*pcube.CEX
	candPts [][]uint64
	// cover is the solved cover state: the greedy pick trace (replayed
	// on resume) or the exact solution (seeded into the next B&B). Nil
	// when the covering step short-circuited trivially.
	cover *coverSnap
	bytes int64
}

// N returns the input arity of the snapshotted function.
func (ws *WarmState) N() int { return ws.n }

// Function returns the snapshotted function.
func (ws *WarmState) Function() *bfunc.Func { return ws.f }

// Bytes estimates the retained footprint of the warm state, the weight
// size-aware caches should charge it.
func (ws *WarmState) Bytes() int64 { return ws.bytes }

type warmLevel struct {
	groups []*warmGroup // sorted by trie path key
}

type warmGroup struct {
	path string
	sig  uint64 // OR of entry signatures
	// entries are sorted by complement vector (unique within a group),
	// the canonical within-group order.
	entries []warmEntry
}

type warmEntry struct {
	cex *pcube.CEX
	sig uint64 // OR of pointSig over the entry's points
	// markCnt counts same-group partners p with cost(union(e,p)) <=
	// cost(e); the entry is a covering candidate iff markCnt == 0.
	markCnt int32
	// prevCand records whether the entry was a covering candidate in
	// the generation that owns (created or last patched) its group. In
	// every committed WarmState the invariant prevCand == (markCnt ==
	// 0) holds — clean groups shared across generations keep it because
	// their mark counts never change. During a resume, patchGroup's
	// value copies carry the previous generation's bit while the new
	// mark counts are computed, which is exactly what candidate
	// emission needs to merge survivors against the previous candidate
	// list; the owning generation re-normalizes the bit afterwards.
	prevCand bool
}

// pointSig hashes a point into a 64-bit signature bit. Group and entry
// signatures are ORs of point signatures, so sig&removedSig == 0 proves
// no removed point touches the entry; a nonzero intersection is
// confirmed with exact Contains checks.
func pointSig(p uint64) uint64 {
	return 1 << ((p * 0x9E3779B97F4A7C15) >> 58)
}

// Delta is an edit script against a warm state's function. Points move
// between the ON, DC and OFF sets:
//
//	AddOn:    OFF or DC point becomes ON;
//	RemoveOn: ON point becomes OFF (or DC when also in AddDC);
//	AddDC:    OFF point (including one just removed from ON) becomes DC;
//	RemoveDC: DC point becomes OFF (or ON when also in AddOn).
//
// Validation is strict — adding a point that is already ON, or removing
// one that is not, is an error — so silent no-op edits cannot mask
// client bookkeeping bugs.
type Delta struct {
	AddOn, RemoveOn, AddDC, RemoveDC []uint64
}

// apply validates d against f and returns the edited function plus the
// care churn (points entering or leaving ON ∪ DC).
func (d Delta) apply(f *bfunc.Func) (*bfunc.Func, int, error) {
	n := f.N()
	limit := uint64(1) << uint(n)
	dedup := func(name string, pts []uint64) (map[uint64]bool, error) {
		m := make(map[uint64]bool, len(pts))
		for _, p := range pts {
			if p >= limit {
				return nil, fmt.Errorf("core: %s point %d outside B^%d", name, p, n)
			}
			m[p] = true
		}
		return m, nil
	}
	addOn, err := dedup("add", d.AddOn)
	if err != nil {
		return nil, 0, err
	}
	rmOn, err := dedup("remove", d.RemoveOn)
	if err != nil {
		return nil, 0, err
	}
	addDC, err := dedup("dc_add", d.AddDC)
	if err != nil {
		return nil, 0, err
	}
	rmDC, err := dedup("dc_remove", d.RemoveDC)
	if err != nil {
		return nil, 0, err
	}
	for p := range addOn {
		if rmOn[p] {
			return nil, 0, fmt.Errorf("core: point %d both added to and removed from ON", p)
		}
		if f.IsOn(p) {
			return nil, 0, fmt.Errorf("core: add point %d already in ON-set", p)
		}
	}
	for p := range rmOn {
		if !f.IsOn(p) {
			return nil, 0, fmt.Errorf("core: remove point %d not in ON-set", p)
		}
	}
	for p := range rmDC {
		if addDC[p] {
			return nil, 0, fmt.Errorf("core: point %d both added to and removed from DC", p)
		}
		if !f.IsDC(p) {
			return nil, 0, fmt.Errorf("core: dc_remove point %d not in DC-set", p)
		}
	}
	on := make([]uint64, 0, f.OnCount()+len(addOn))
	for _, p := range f.On() {
		if !rmOn[p] {
			on = append(on, p)
		}
	}
	for p := range addOn {
		on = append(on, p)
	}
	dc := make([]uint64, 0, len(f.DC())+len(addDC))
	for _, p := range f.DC() {
		// An ON-add of a DC point moves it; an explicit dc_remove drops it.
		if !rmDC[p] && !addOn[p] {
			dc = append(dc, p)
		}
	}
	for p := range addDC {
		if f.IsDC(p) {
			return nil, 0, fmt.Errorf("core: dc_add point %d already in DC-set", p)
		}
		if f.IsOn(p) && !rmOn[p] {
			return nil, 0, fmt.Errorf("core: dc_add point %d is in the ON-set", p)
		}
		if addOn[p] {
			return nil, 0, fmt.Errorf("core: point %d both added to ON and DC", p)
		}
		dc = append(dc, p)
	}
	edited := bfunc.NewDC(n, on, dc)
	churn := len(diffSorted(f.Care(), edited.Care())) + len(diffSorted(edited.Care(), f.Care()))
	return edited, churn, nil
}

// Apply returns the function d edits ws's snapshot into, without
// resuming; callers use it to inspect or size an edit before paying for
// the resume.
func (ws *WarmState) Apply(d Delta) (*bfunc.Func, error) {
	edited, _, err := d.apply(ws.f)
	return edited, err
}

// Churn returns the care-set churn of d against ws's snapshot: the
// number of points entering or leaving ON ∪ DC. Serving layers compare
// it against a dirty-fraction threshold to decide warm resume vs cold
// rerun.
func (ws *WarmState) Churn(d Delta) (int, error) {
	_, churn, err := d.apply(ws.f)
	return churn, err
}

// diffSorted returns the elements of a (sorted) not present in b
// (sorted).
func diffSorted(a, b []uint64) []uint64 {
	var out []uint64
	j := 0
	for _, p := range a {
		for j < len(b) && b[j] < p {
			j++
		}
		if j >= len(b) || b[j] != p {
			out = append(out, p)
		}
	}
	return out
}

// intersectSorted returns the elements present in both sorted slices.
func intersectSorted(a, b []uint64) []uint64 {
	var out []uint64
	j := 0
	for _, p := range a {
		for j < len(b) && b[j] < p {
			j++
		}
		if j < len(b) && b[j] == p {
			out = append(out, p)
		}
	}
	return out
}

// MinimizeExactWarm is MinimizeExact with warm-state capture: the same
// partition-trie EPPP construction and covering, but emitting covering
// candidates in canonical order (levels ascending, groups by trie path
// key, entries by complement vector) and returning a WarmState that
// ResumeExact can patch under a small edit. The form is equivalent to
// MinimizeExact's — same candidate set, same cost — but may differ
// textually where the covering heuristic broke a tie by candidate
// order. Capture forces the EPPP build serial (the discard counts are
// tallied inline); Options.CoverWorkers still parallelizes covering.
func MinimizeExactWarm(f *bfunc.Func, opts Options) (*Result, *WarmState, error) {
	set, ws, err := buildEPPPWarm(f, opts)
	if err != nil {
		return nil, nil, err
	}
	out, err := warmSelectCover(f, set.Candidates, nil, nil, nil, coverPatch{}, opts)
	if err != nil {
		return nil, nil, err
	}
	if out.pts != nil {
		ws.cands, ws.candPts = set.Candidates, out.pts
	}
	ws.cover = out.snap
	ws.computeBytes()
	return &Result{Form: out.form, Build: set.Stats, CoverTime: out.time,
		CoverOptimal: out.optimal, CoverReused: out.reused}, ws, nil
}

// buildEPPPWarm is the serial Algorithm 2 loop of BuildEPPP with
// MarkCnt bookkeeping, canonical candidate emission and per-level group
// capture.
func buildEPPPWarm(f *bfunc.Func, opts Options) (*EPPPSet, *WarmState, error) {
	defer opts.Stats.Phase(stats.PhaseEPPP)()
	start := time.Now()
	n := f.N()
	b := newBudget(opts)
	bst := BuildStats{}
	ws := &WarmState{n: n, f: f, cost: opts.Cost}

	cur := ptrie.New(n)
	for _, p := range f.Care() {
		cur.Insert(pcube.FromPoint(n, p))
	}
	if !b.spend(cur.Len()) {
		return nil, nil, b.failure()
	}

	var candidates []*pcube.CEX
	var pts []uint64
	for level := 0; cur.Len() > 0; level++ {
		if err := opts.ctxErr(); err != nil {
			return nil, nil, err
		}
		bst.LevelSizes = append(bst.LevelSizes, cur.Len())
		bst.Groups = append(bst.Groups, cur.NumGroups())
		if opts.Stats != nil {
			opts.Stats.Add(stats.CtrTrieNodes, int64(cur.NumInternalNodes()))
		}
		next := ptrie.New(n)
		wl := warmLevel{}
		overBudget := false
		cur.PathGroups(func(path []byte, entries []*ptrie.Entry) bool {
			for i := 0; i < len(entries); i++ {
				for j := i + 1; j < len(entries); j++ {
					u := pcube.Union(entries[i].CEX, entries[j].CEX)
					bst.Unions++
					h := opts.Cost.of(u)
					if h <= opts.Cost.of(entries[i].CEX) {
						entries[i].MarkCnt++
					}
					if h <= opts.Cost.of(entries[j].CEX) {
						entries[j].MarkCnt++
					}
					if _, fresh := next.Insert(u); fresh {
						if !b.spend(1) {
							overBudget = true
							return false
						}
					}
				}
			}
			// Capture the group canonically: entries by complement
			// vector, with point signatures for delta invalidation.
			g := &warmGroup{path: string(path), entries: make([]warmEntry, len(entries))}
			for i, e := range entries {
				var sig uint64
				pts = e.CEX.AppendPoints(pts[:0])
				for _, p := range pts {
					sig |= pointSig(p)
				}
				g.entries[i] = warmEntry{cex: e.CEX, sig: sig, markCnt: e.MarkCnt, prevCand: e.MarkCnt == 0}
				g.sig |= sig
			}
			sort.Slice(g.entries, func(a, b int) bool {
				return g.entries[a].cex.CompVector() < g.entries[b].cex.CompVector()
			})
			wl.groups = append(wl.groups, g)
			return true
		})
		if overBudget {
			return nil, nil, b.failure()
		}
		ws.levels = append(ws.levels, wl)
		for _, g := range wl.groups {
			for i := range g.entries {
				if g.entries[i].markCnt == 0 {
					candidates = append(candidates, g.entries[i].cex)
				}
			}
		}
		bst.Candidates += cur.Len()
		bst.Fresh += int64(next.Len())
		cur = next
	}
	bst.EPPP = len(candidates)
	bst.BuildTime = time.Since(start)
	recordBuild(opts.Stats, &bst)
	return &EPPPSet{N: n, Candidates: candidates, Stats: bst}, ws, nil
}

// ResumeExact patches ws under the edit d and returns the minimization
// of the edited function plus a fresh WarmState for it. The result is
// byte-identical to MinimizeExactWarm on the edited function (same
// form, same candidate order, same statistics-bearing candidate set);
// only BuildStats.Unions/Fresh and the timings reflect the smaller
// incremental work. ws is not modified: dirtied groups are copied,
// clean ones shared, so concurrent resumes from one snapshot are safe.
//
// The edit must keep the cost model: resuming with a different
// Options.Cost than the snapshot was built under is an error.
func ResumeExact(ws *WarmState, d Delta, opts Options) (*Result, *WarmState, error) {
	if ws == nil {
		return nil, nil, errors.New("core: nil warm state")
	}
	if opts.Cost != ws.cost {
		return nil, nil, fmt.Errorf("core: warm state built with cost kind %d, resume requested %d", ws.cost, opts.Cost)
	}
	edited, _, err := d.apply(ws.f)
	if err != nil {
		return nil, nil, err
	}
	set, nws, meta, err := resumeEPPP(ws, edited, opts)
	if err != nil {
		return nil, nil, err
	}
	patch := coverPatch{
		removedOn: diffSorted(ws.f.On(), edited.On()),
		dcToOn:    intersectSorted(edited.On(), ws.f.DC()),
	}
	out, err := warmSelectCover(edited, set.Candidates, meta, ws.candPts, ws.cover, patch, opts)
	if err != nil {
		return nil, nil, err
	}
	if out.pts != nil {
		nws.cands, nws.candPts = set.Candidates, out.pts
	}
	nws.cover = out.snap
	nws.computeBytes()
	return &Result{Form: out.form, Build: set.Stats, CoverTime: out.time,
		CoverOptimal: out.optimal, CoverReused: out.reused}, nws, nil
}

// resumer carries the per-resume state threaded through group patching.
type resumer struct {
	opts       Options
	b          *budget
	bst        *BuildStats
	removed    []uint64 // care points that left, sorted
	removedSig uint64
	// next-level accumulation: fresh unions keyed by structure path,
	// deduped by full CEX key. Every fresh union contains an added care
	// point, so it can never collide with a surviving old entry.
	nextIncoming map[string][]*pcube.CEX
	nextSeen     map[string]bool
	pathBuf      []byte
	ptsBuf       []uint64
	overBudget   bool
}

func (r *resumer) sigOf(c *pcube.CEX) uint64 {
	r.ptsBuf = c.AppendPoints(r.ptsBuf[:0])
	var sig uint64
	for _, p := range r.ptsBuf {
		sig |= pointSig(p)
	}
	return sig
}

// emit routes a fresh union to its next-level structure group. Reports
// false when the generation budget is exhausted.
func (r *resumer) emit(u *pcube.CEX) bool {
	k := u.Key()
	if r.nextSeen[k] {
		return true
	}
	r.nextSeen[k] = true
	r.pathBuf = ptrie.PathKey(u, r.pathBuf[:0])
	path := string(r.pathBuf)
	r.nextIncoming[path] = append(r.nextIncoming[path], u)
	r.bst.Fresh++
	if !r.b.spend(1) {
		r.overBudget = true
		return false
	}
	return true
}

// dies reports whether entry e contains a removed care point, using the
// signature as a negative filter before the exact membership checks.
func (r *resumer) dies(e *warmEntry) bool {
	if e.sig&r.removedSig == 0 {
		return false
	}
	for _, p := range r.removed {
		if e.cex.Contains(p) {
			return true
		}
	}
	return false
}

// patchGroup rebuilds one dirty group: drops entries that die, retracts
// their mark contributions from survivors, then folds the new members
// in one at a time — unioning each against the current entries exactly
// once per unordered pair, updating both sides' mark counts and
// emitting every union to the next level. Returns nil when the group
// empties. g may have no entries (a group that exists only after the
// edit).
func (r *resumer) patchGroup(g *warmGroup, news []*pcube.CEX) *warmGroup {
	entries := make([]warmEntry, 0, len(g.entries)+len(news))
	var dead []warmEntry
	for _, e := range g.entries {
		if r.dies(&e) {
			dead = append(dead, e)
		} else {
			entries = append(entries, e)
		}
	}
	for _, d := range dead {
		for i := range entries {
			u := pcube.Union(entries[i].cex, d.cex)
			r.bst.Unions++
			if r.opts.Cost.of(u) <= r.opts.Cost.of(entries[i].cex) {
				entries[i].markCnt--
			}
		}
	}
	for _, x := range news {
		xe := warmEntry{cex: x, sig: r.sigOf(x)}
		hx := r.opts.Cost.of(x)
		for i := range entries {
			u := pcube.Union(entries[i].cex, x)
			r.bst.Unions++
			h := r.opts.Cost.of(u)
			if h <= r.opts.Cost.of(entries[i].cex) {
				entries[i].markCnt++
			}
			if h <= hx {
				xe.markCnt++
			}
			if !r.emit(u) {
				return nil
			}
		}
		// Insert in canonical (complement vector) position.
		cv := x.CompVector()
		at := sort.Search(len(entries), func(i int) bool {
			return entries[i].cex.CompVector() > cv
		})
		entries = append(entries, warmEntry{})
		copy(entries[at+1:], entries[at:])
		entries[at] = xe
	}
	if len(entries) == 0 {
		return nil
	}
	ng := &warmGroup{path: g.path, entries: entries}
	for i := range entries {
		ng.sig |= entries[i].sig
	}
	return ng
}

// resumeMeta is the per-candidate bookkeeping resumeEPPP hands the
// covering patch, aligned with the emitted candidate list: each
// candidate's point signature (OR of pointSig over its cube's points,
// for cheap "untouched by this edit" proofs) and, for survivors that
// were candidates of the previous generation, the index of their
// covered-ON list in that generation's candPts (-1 for candidates with
// no carried list).
type resumeMeta struct {
	sigs   []uint64
	oldIdx []int32
}

// resumeEPPP recomputes the level structure of ws for the edited
// function, touching only groups whose signatures intersect the removed
// points or that receive new members.
func resumeEPPP(ws *WarmState, edited *bfunc.Func, opts Options) (*EPPPSet, *WarmState, *resumeMeta, error) {
	defer opts.Stats.Phase(stats.PhaseEPPP)()
	start := time.Now()
	n := ws.n
	bst := BuildStats{}
	r := &resumer{
		opts:    opts,
		b:       newBudget(opts),
		bst:     &bst,
		removed: diffSorted(ws.f.Care(), edited.Care()),
	}
	for _, p := range r.removed {
		r.removedSig |= pointSig(p)
	}
	added := diffSorted(edited.Care(), ws.f.Care())
	if !r.b.spend(len(added)) {
		return nil, nil, nil, r.b.failure()
	}

	nws := &WarmState{n: n, f: edited, cost: ws.cost}
	var candidates []*pcube.CEX
	meta := &resumeMeta{}
	// Cursor into the previous generation's candidate list for the
	// monotone survivor merge in the emission loop below. Surviving
	// candidates keep their relative order (levels ascending, groups by
	// unchanged path, entries by unchanged complement vector), so each
	// prevCand entry matches at or after the cursor; the skipped
	// positions are candidates that died or got marked.
	oldCands := ws.cands
	cursor := 0

	// incoming: new entries for the current level, keyed by path.
	incoming := map[string][]*pcube.CEX{}
	for _, p := range added {
		c := pcube.FromPoint(n, p)
		r.pathBuf = ptrie.PathKey(c, r.pathBuf[:0])
		incoming[string(r.pathBuf)] = append(incoming[string(r.pathBuf)], c)
	}
	bst.Fresh += int64(len(added))

	for lev := 0; ; lev++ {
		var old []*warmGroup
		if lev < len(ws.levels) {
			old = ws.levels[lev].groups
		}
		if len(old) == 0 && len(incoming) == 0 {
			break
		}
		if err := opts.ctxErr(); err != nil {
			return nil, nil, nil, err
		}
		r.nextIncoming = map[string][]*pcube.CEX{}
		r.nextSeen = map[string]bool{}

		// New-group paths in canonical order, merged against the (path
		// sorted) old groups below.
		paths := make([]string, 0, len(incoming))
		for p := range incoming {
			paths = append(paths, p)
		}
		sort.Strings(paths)

		outGroups := make([]*warmGroup, 0, len(old)+len(incoming))
		var owned []*warmGroup // groups patchGroup built: this generation may write to them
		pi := 0
		appendGroup := func(g *warmGroup) {
			if g != nil {
				outGroups = append(outGroups, g)
				owned = append(owned, g)
			}
		}
		for _, g := range old {
			for pi < len(paths) && paths[pi] < g.path {
				appendGroup(r.patchGroup(&warmGroup{path: paths[pi]}, incoming[paths[pi]]))
				pi++
			}
			var news []*pcube.CEX
			if pi < len(paths) && paths[pi] == g.path {
				news = incoming[paths[pi]]
				pi++
			}
			if len(news) == 0 && g.sig&r.removedSig == 0 {
				// Clean: shared with the previous generation, unions at
				// the next level already present in the old snapshot.
				outGroups = append(outGroups, g)
				continue
			}
			appendGroup(r.patchGroup(g, news))
		}
		for pi < len(paths) {
			appendGroup(r.patchGroup(&warmGroup{path: paths[pi]}, incoming[paths[pi]]))
			pi++
		}
		if r.overBudget {
			return nil, nil, nil, r.b.failure()
		}

		size := 0
		for _, g := range outGroups {
			size += len(g.entries)
			for i := range g.entries {
				e := &g.entries[i]
				if e.markCnt != 0 {
					continue
				}
				idx := int32(-1)
				if e.prevCand {
					// Was a candidate last generation: advance the merge
					// cursor to its position in the old list. The bounds
					// guard only fires when the old list is absent (the
					// previous cover short-circuited trivially); falling
					// back to -1 just rebuilds the list fresh.
					for cursor < len(oldCands) && oldCands[cursor] != e.cex {
						cursor++
					}
					if cursor < len(oldCands) {
						idx = int32(cursor)
						cursor++
					}
				}
				candidates = append(candidates, e.cex)
				meta.sigs = append(meta.sigs, e.sig)
				meta.oldIdx = append(meta.oldIdx, idx)
			}
		}
		// Restore the committed-state invariant prevCand == (markCnt ==
		// 0) on the groups this generation owns; shared groups already
		// satisfy it.
		for _, g := range owned {
			for i := range g.entries {
				g.entries[i].prevCand = g.entries[i].markCnt == 0
			}
		}
		if size > 0 {
			nws.levels = append(nws.levels, warmLevel{groups: outGroups})
			bst.LevelSizes = append(bst.LevelSizes, size)
			bst.Groups = append(bst.Groups, len(outGroups))
			bst.Candidates += size
		}
		incoming = r.nextIncoming
	}
	bst.EPPP = len(candidates)
	bst.BuildTime = time.Since(start)
	recordBuild(opts.Stats, &bst)
	return &EPPPSet{N: n, Candidates: candidates, Stats: bst}, nws, meta, nil
}

// coverPatch carries the ON-set part of an edit into the covering
// patch: points that left the ON-set, and points that moved DC → ON
// (the only added ON points an old candidate can contain — candidates
// live inside the old care set, which freshly-ON OFF points were not
// in).
type coverPatch struct {
	removedOn []uint64
	dcToOn    []uint64
}

// patchPoints updates one candidate's covered-ON list under the patch.
// The old list is shared (and returned as-is, changed == false) when
// nothing changes — which is also how the replay layer learns which
// columns the patch dirtied.
func patchPoints(old []uint64, c *pcube.CEX, patch coverPatch) (_ []uint64, changed bool) {
	var adds []uint64
	for _, p := range patch.dcToOn {
		if c.Contains(p) {
			adds = append(adds, p)
		}
	}
	drops := len(intersectSorted(old, patch.removedOn))
	if len(adds) == 0 && drops == 0 {
		return old, false
	}
	out := make([]uint64, 0, len(old)-drops+len(adds))
	i, j := 0, 0
	rm := patch.removedOn
	for _, p := range old {
		for i < len(rm) && rm[i] < p {
			i++
		}
		if i < len(rm) && rm[i] == p {
			continue
		}
		for j < len(adds) && adds[j] < p {
			out = append(out, adds[j])
			j++
		}
		out = append(out, p)
	}
	out = append(out, adds[j:]...)
	return out, true
}

// computeBytes estimates the retained footprint: group and entry
// bookkeeping, the CEX expressions kept alive, and the covered-ON
// lists. Sizes are struct-layout estimates, deliberately on the
// charged-too-much side.
func (ws *WarmState) computeBytes() {
	b := int64(192)
	b += int64(len(ws.f.On())+len(ws.f.DC())) * 8
	for _, wl := range ws.levels {
		for _, g := range wl.groups {
			b += 64 + int64(len(g.path))
			for i := range g.entries {
				c := g.entries[i].cex
				// entry + CEX header + factors + key/skey strings.
				b += 32 + 96 + int64(len(c.Factors))*25
			}
		}
	}
	b += int64(len(ws.cands)) * 8
	for _, pts := range ws.candPts {
		b += 56 + int64(len(pts))*8
	}
	if ws.cover != nil {
		b += 64 + int64(len(ws.cover.picks))*32 + int64(len(ws.cover.final))*8
	}
	ws.bytes = b
}
