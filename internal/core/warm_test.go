package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/bfunc"
)

// randomDelta builds a valid random edit script of ~k point moves
// against f.
func randomDelta(rng *rand.Rand, f *bfunc.Func, k int) Delta {
	n := f.N()
	var d Delta
	used := map[uint64]bool{}
	for i := 0; i < k; i++ {
		p := rng.Uint64() & ((1 << uint(n)) - 1)
		if used[p] {
			continue
		}
		used[p] = true
		switch {
		case f.IsOn(p):
			d.RemoveOn = append(d.RemoveOn, p)
			if rng.Intn(2) == 0 {
				d.AddDC = append(d.AddDC, p) // ON → DC
			}
		case f.IsDC(p):
			if rng.Intn(2) == 0 {
				d.AddOn = append(d.AddOn, p) // DC → ON
			} else {
				d.RemoveDC = append(d.RemoveDC, p) // DC → OFF
			}
		default:
			if rng.Intn(2) == 0 {
				d.AddOn = append(d.AddOn, p) // OFF → ON
			} else {
				d.AddDC = append(d.AddDC, p) // OFF → DC
			}
		}
	}
	return d
}

// requireWarmEqual asserts two warm states are structurally identical:
// same levels, groups in the same order, entries in the same order with
// the same expressions and mark counts, and the same covered-ON lists.
func requireWarmEqual(t *testing.T, got, want *WarmState) {
	t.Helper()
	if got.n != want.n {
		t.Fatalf("n: got %d want %d", got.n, want.n)
	}
	if !got.f.Equal(want.f) {
		t.Fatalf("snapshotted functions differ")
	}
	if len(got.levels) != len(want.levels) {
		t.Fatalf("levels: got %d want %d", len(got.levels), len(want.levels))
	}
	for li := range got.levels {
		g, w := got.levels[li].groups, want.levels[li].groups
		if len(g) != len(w) {
			t.Fatalf("level %d groups: got %d want %d", li, len(g), len(w))
		}
		for gi := range g {
			if g[gi].path != w[gi].path {
				t.Fatalf("level %d group %d path: got %q want %q", li, gi, g[gi].path, w[gi].path)
			}
			if len(g[gi].entries) != len(w[gi].entries) {
				t.Fatalf("level %d group %d entries: got %d want %d", li, gi, len(g[gi].entries), len(w[gi].entries))
			}
			for ei := range g[gi].entries {
				ge, we := &g[gi].entries[ei], &w[gi].entries[ei]
				if !ge.cex.Equal(we.cex) {
					t.Fatalf("level %d group %d entry %d: got %v want %v", li, gi, ei, ge.cex, we.cex)
				}
				if ge.markCnt != we.markCnt {
					t.Fatalf("level %d group %d entry %d (%v) markCnt: got %d want %d", li, gi, ei, ge.cex, ge.markCnt, we.markCnt)
				}
				if ge.sig != we.sig {
					t.Fatalf("level %d group %d entry %d sig mismatch", li, gi, ei)
				}
				if ge.prevCand != we.prevCand {
					t.Fatalf("level %d group %d entry %d prevCand: got %v want %v", li, gi, ei, ge.prevCand, we.prevCand)
				}
			}
		}
	}
	gc := coveredByKey(got)
	wc := coveredByKey(want)
	if len(gc) != len(wc) {
		t.Fatalf("covered: got %d candidates want %d", len(gc), len(wc))
	}
	for k, gp := range gc {
		wp, ok := wc[k]
		if !ok {
			t.Fatalf("covered candidate %q missing from oracle", k)
		}
		if fmt.Sprint(gp) != fmt.Sprint(wp) {
			t.Fatalf("covered points for %q: got %v want %v", k, gp, wp)
		}
	}
}

func coveredByKey(ws *WarmState) map[string][]uint64 {
	m := make(map[string][]uint64, len(ws.cands))
	for i, c := range ws.cands {
		m[c.Key()] = ws.candPts[i]
	}
	return m
}

// requireResumeMatchesCold runs the resume and the cold warm engine on
// the edited function and asserts byte-identity of form, build shape
// and warm state. Returns the resumed state for chaining.
func requireResumeMatchesCold(t *testing.T, ws *WarmState, d Delta, opts Options) *WarmState {
	t.Helper()
	edited, err := ws.Apply(d)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	warm, nws, err := ResumeExact(ws, d, opts)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	cold, cws, err := MinimizeExactWarm(edited, opts)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if got, want := warm.Form.String(), cold.Form.String(); got != want {
		t.Fatalf("form mismatch:\nwarm %s\ncold %s", got, want)
	}
	if warm.Build.EPPP != cold.Build.EPPP {
		t.Fatalf("EPPP count: warm %d cold %d", warm.Build.EPPP, cold.Build.EPPP)
	}
	if fmt.Sprint(warm.Build.LevelSizes) != fmt.Sprint(cold.Build.LevelSizes) {
		t.Fatalf("level sizes: warm %v cold %v", warm.Build.LevelSizes, cold.Build.LevelSizes)
	}
	if fmt.Sprint(warm.Build.Groups) != fmt.Sprint(cold.Build.Groups) {
		t.Fatalf("groups: warm %v cold %v", warm.Build.Groups, cold.Build.Groups)
	}
	if err := warm.Form.Verify(edited); err != nil {
		t.Fatalf("resumed form invalid: %v", err)
	}
	requireWarmEqual(t, nws, cws)
	return nws
}

func TestWarmMatchesExactCost(t *testing.T) {
	// The warm engine emits candidates in canonical rather than
	// generation order, so forms may differ textually from
	// MinimizeExact — but the candidate set and hence the achievable
	// cost are the same.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		f := randomFunc(rng, 5+i%3, 0.3, true)
		plain, err := MinimizeExact(f, Options{})
		if err != nil {
			t.Fatalf("plain: %v", err)
		}
		warm, ws, err := MinimizeExactWarm(f, Options{})
		if err != nil {
			t.Fatalf("warm: %v", err)
		}
		if warm.Build.EPPP != plain.Build.EPPP {
			t.Fatalf("EPPP count: warm %d plain %d", warm.Build.EPPP, plain.Build.EPPP)
		}
		if err := warm.Form.Verify(f); err != nil {
			t.Fatalf("warm form invalid: %v", err)
		}
		if ws.Bytes() <= 0 {
			t.Fatalf("warm state bytes not accounted")
		}
		// Candidate sets must be identical, not just equinumerous.
		set, err := BuildEPPP(f, Options{})
		if err != nil {
			t.Fatalf("BuildEPPP: %v", err)
		}
		want := map[string]bool{}
		for _, c := range set.Candidates {
			want[c.Key()] = true
		}
		got := coveredByKey(ws)
		if len(got) != len(want) {
			t.Fatalf("candidates: warm %d cold %d", len(got), len(want))
		}
		for k := range got {
			if !want[k] {
				t.Fatalf("warm candidate %q not produced by BuildEPPP", k)
			}
		}
	}
}

func TestResumeMatchesColdRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		n := 5 + trial%3
		f := randomFunc(rng, n, 0.35, true)
		_, ws, err := MinimizeExactWarm(f, Options{})
		if err != nil {
			t.Fatalf("trial %d: cold build: %v", trial, err)
		}
		// Chain several resumes, each checked against a cold oracle.
		for step := 0; step < 3; step++ {
			d := randomDelta(rng, ws.f, 1+rng.Intn(4))
			ws = requireResumeMatchesCold(t, ws, d, Options{})
		}
	}
}

func TestResumeMatchesColdBench(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale oracle comparison")
	}
	rng := rand.New(rand.NewSource(1))
	for _, name := range []string{"adr4", "radd", "life", "f51m"} {
		m := bench.MustLoad(name)
		for out := 0; out < m.NOutputs(); out++ {
			f := m.Output(out)
			if f.OnCount() == 0 {
				continue
			}
			_, ws, err := MinimizeExactWarm(f, Options{})
			if err != nil {
				t.Fatalf("%s/%d: cold build: %v", name, out, err)
			}
			d := randomDelta(rng, f, 3)
			t.Run(fmt.Sprintf("%s/%d", name, out), func(t *testing.T) {
				requireResumeMatchesCold(t, ws, d, Options{})
			})
		}
	}
}

func TestResumeExactCover(t *testing.T) {
	// The shared covering path must stay byte-identical under the
	// exact branch-and-bound solver too.
	rng := rand.New(rand.NewSource(11))
	opts := Options{CoverExact: true, CoverMaxNodes: 1 << 16}
	for trial := 0; trial < 4; trial++ {
		f := randomFunc(rng, 5, 0.3, true)
		_, ws, err := MinimizeExactWarm(f, opts)
		if err != nil {
			t.Fatalf("cold: %v", err)
		}
		d := randomDelta(rng, f, 3)
		requireResumeMatchesCold(t, ws, d, opts)
	}
}

func TestResumeEmptyOn(t *testing.T) {
	f := bfunc.New(4, []uint64{3, 5})
	_, ws, err := MinimizeExactWarm(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, nws, err := ResumeExact(ws, Delta{RemoveOn: []uint64{3, 5}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Form.NumTerms() != 0 || res.Form.String() != "0" {
		t.Fatalf("emptied ON-set should give the zero form, got %q", res.Form.String())
	}
	// Resuming from the emptied state must still work.
	res2, _, err := ResumeExact(nws, Delta{AddOn: []uint64{3}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res2.Form.Verify(bfunc.New(4, []uint64{3})); err != nil {
		t.Fatal(err)
	}
}

func TestResumeToConstantOne(t *testing.T) {
	n := 3
	var on []uint64
	for p := uint64(0); p < 1<<uint(n); p++ {
		if p != 5 {
			on = append(on, p)
		}
	}
	f := bfunc.New(n, on)
	_, ws, err := MinimizeExactWarm(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireResumeMatchesCold(t, ws, Delta{AddOn: []uint64{5}}, Options{})
}

func TestDeltaValidation(t *testing.T) {
	f := bfunc.NewDC(4, []uint64{1, 2}, []uint64{7})
	_, ws, err := MinimizeExactWarm(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		d    Delta
	}{
		{"add already ON", Delta{AddOn: []uint64{1}}},
		{"remove not ON", Delta{RemoveOn: []uint64{3}}},
		{"dc_add already DC", Delta{AddDC: []uint64{7}}},
		{"dc_add ON point", Delta{AddDC: []uint64{1}}},
		{"dc_remove not DC", Delta{RemoveDC: []uint64{3}}},
		{"add out of range", Delta{AddOn: []uint64{16}}},
		{"add and remove same", Delta{AddOn: []uint64{3}, RemoveOn: []uint64{3}}},
		{"on and dc same add", Delta{AddOn: []uint64{3}, AddDC: []uint64{3}}},
	}
	for _, tc := range cases {
		if _, _, err := ResumeExact(ws, tc.d, Options{}); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// Legal compound move: ON → DC.
	if _, _, err := ResumeExact(ws, Delta{RemoveOn: []uint64{1}, AddDC: []uint64{1}}, Options{}); err != nil {
		t.Errorf("ON→DC move rejected: %v", err)
	}
	// Legal compound move: DC → ON.
	if _, _, err := ResumeExact(ws, Delta{AddOn: []uint64{7}}, Options{}); err != nil {
		t.Errorf("DC→ON move rejected: %v", err)
	}
}

func TestResumeCostMismatch(t *testing.T) {
	f := bfunc.New(4, []uint64{1, 2, 3})
	_, ws, err := MinimizeExactWarm(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ResumeExact(ws, Delta{AddOn: []uint64{4}}, Options{Cost: CostFactors}); err == nil {
		t.Fatal("expected cost-kind mismatch error")
	}
	if _, _, err := ResumeExact(nil, Delta{}, Options{}); err == nil {
		t.Fatal("expected nil warm state error")
	}
}

func TestResumeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := randomFunc(rng, 6, 0.4, false)
	_, ws, err := MinimizeExactWarm(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := randomDelta(rng, f, 4)
	if _, _, err := ResumeExact(ws, d, Options{MaxCandidates: 2}); err != ErrBudget {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}

func TestWarmChurn(t *testing.T) {
	f := bfunc.NewDC(4, []uint64{1, 2}, []uint64{7})
	_, ws, err := MinimizeExactWarm(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// ON→OFF (1 leaves care), OFF→ON (1 enters), DC→ON (stays in care).
	churn, err := ws.Churn(Delta{RemoveOn: []uint64{1}, AddOn: []uint64{4, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if churn != 2 {
		t.Fatalf("churn: got %d want 2", churn)
	}
}

func TestResumeConcurrent(t *testing.T) {
	// Many concurrent resumes from one shared snapshot, with parallel
	// covering workers, must neither race nor diverge. Run under
	// -race via make check-race.
	rng := rand.New(rand.NewSource(9))
	f := randomFunc(rng, 7, 0.3, true)
	_, ws, err := MinimizeExactWarm(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	type job struct {
		d    Delta
		want string
	}
	jobs := make([]job, 8)
	opts := Options{Workers: 4, CoverWorkers: 4}
	for i := range jobs {
		d := randomDelta(rng, f, 2+i%3)
		edited, err := ws.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		cold, _, err := MinimizeExactWarm(edited, opts)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job{d: d, want: cold.Form.String()}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := ResumeExact(ws, jobs[i].d, opts)
			if err != nil {
				errs[i] = err
				return
			}
			if got := res.Form.String(); got != jobs[i].want {
				errs[i] = fmt.Errorf("form mismatch: got %s want %s", got, jobs[i].want)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
}

func TestDiffIntersectSorted(t *testing.T) {
	a := []uint64{1, 3, 5, 7}
	b := []uint64{3, 4, 7, 9}
	if got := fmt.Sprint(diffSorted(a, b)); got != "[1 5]" {
		t.Fatalf("diff: %s", got)
	}
	if got := fmt.Sprint(intersectSorted(a, b)); got != "[3 7]" {
		t.Fatalf("intersect: %s", got)
	}
	if got := diffSorted(nil, b); got != nil {
		t.Fatalf("diff nil: %v", got)
	}
}

func FuzzDeltaEquivalence(f *testing.F) {
	f.Add(uint64(0x1234), uint64(0x00ff), uint64(0x0f0f), uint64(0x3))
	f.Add(uint64(1), uint64(0xffff), uint64(0), uint64(0x8001))
	f.Add(uint64(99), uint64(0xaaaa), uint64(0x5555), uint64(0x1111))
	f.Fuzz(func(t *testing.T, seed, onBits, dcBits, editBits uint64) {
		const n = 4 // 16-point space: every mask bit is a point
		var on, dc []uint64
		for p := uint64(0); p < 1<<n; p++ {
			switch {
			case onBits&(1<<p) != 0:
				on = append(on, p)
			case dcBits&(1<<p) != 0:
				dc = append(dc, p)
			}
		}
		fn := bfunc.NewDC(n, on, dc)
		_, ws, err := MinimizeExactWarm(fn, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		var d Delta
		for p := uint64(0); p < 1<<n; p++ {
			if editBits&(1<<p) == 0 {
				continue
			}
			switch {
			case fn.IsOn(p):
				d.RemoveOn = append(d.RemoveOn, p)
				if rng.Intn(2) == 0 {
					d.AddDC = append(d.AddDC, p)
				}
			case fn.IsDC(p):
				if rng.Intn(2) == 0 {
					d.AddOn = append(d.AddOn, p)
				} else {
					d.RemoveDC = append(d.RemoveDC, p)
				}
			default:
				if rng.Intn(2) == 0 {
					d.AddOn = append(d.AddOn, p)
				} else {
					d.AddDC = append(d.AddDC, p)
				}
			}
		}
		edited, err := ws.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		warm, nws, err := ResumeExact(ws, d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cold, cws, err := MinimizeExactWarm(edited, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Form.String() != cold.Form.String() {
			t.Fatalf("form mismatch:\nwarm %s\ncold %s", warm.Form, cold.Form)
		}
		if warm.Build.EPPP != cold.Build.EPPP {
			t.Fatalf("EPPP: warm %d cold %d", warm.Build.EPPP, cold.Build.EPPP)
		}
		if err := warm.Form.Verify(edited); err != nil {
			t.Fatal(err)
		}
		// Structural identity of the two snapshots.
		if len(nws.levels) != len(cws.levels) {
			t.Fatalf("levels: warm %d cold %d", len(nws.levels), len(cws.levels))
		}
		for li := range nws.levels {
			g, w := nws.levels[li].groups, cws.levels[li].groups
			if len(g) != len(w) {
				t.Fatalf("level %d groups: warm %d cold %d", li, len(g), len(w))
			}
			for gi := range g {
				if g[gi].path != w[gi].path || len(g[gi].entries) != len(w[gi].entries) {
					t.Fatalf("level %d group %d shape mismatch", li, gi)
				}
				for ei := range g[gi].entries {
					if !g[gi].entries[ei].cex.Equal(w[gi].entries[ei].cex) ||
						g[gi].entries[ei].markCnt != w[gi].entries[ei].markCnt {
						t.Fatalf("level %d group %d entry %d mismatch", li, gi, ei)
					}
				}
			}
		}
	})
}
