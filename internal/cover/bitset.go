package cover

import "math/bits"

// bitset over rows, stored as dense machine words so covering-table
// operations (union, difference counts, subset tests) run word-parallel.
type bitset []uint64

func wordsFor(n int) int { return (n + 63) / 64 }

func newBitset(n int) bitset { return make(bitset, wordsFor(n)) }

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) unset(i int)    { b[i/64] &^= 1 << uint(i%64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }
func (b bitset) clone() bitset  { c := make(bitset, len(b)); copy(c, b); return c }

func (b bitset) zero() {
	for i := range b {
		b[i] = 0
	}
}

func (b bitset) orWith(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) andWith(o bitset) {
	for i := range b {
		b[i] &= o[i]
	}
}

func (b bitset) andNotWith(o bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

func (b bitset) isEmpty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// countNew returns |o \ b|: rows of o not already set in b.
func (b bitset) countNew(o bitset) int {
	n := 0
	for i := range b {
		n += bits.OnesCount64(o[i] &^ b[i])
	}
	return n
}

// anyNew reports whether o has at least one row not set in b
// (countNew(o) > 0, but with an early exit on the first such word).
func (b bitset) anyNew(o bitset) bool {
	for i := range b {
		if o[i]&^b[i] != 0 {
			return true
		}
	}
	return false
}

func (b bitset) containsAll(o bitset) bool {
	for i := range b {
		if o[i]&^b[i] != 0 {
			return false
		}
	}
	return true
}

// colBitsets builds one row-bitset per column, all views into a single
// backing allocation.
func (in *Instance) colBitsets() []bitset {
	words := wordsFor(in.NRows)
	backing := make([]uint64, words*len(in.Cols))
	bs := make([]bitset, len(in.Cols))
	for j, c := range in.Cols {
		b := bitset(backing[j*words : (j+1)*words : (j+1)*words])
		for _, r := range c.Rows {
			b.set(r)
		}
		bs[j] = b
	}
	return bs
}

// bitMatrix is a set of equally sized bitsets sharing one backing
// allocation, indexed by row.
type bitMatrix struct {
	words int
	bits  []uint64
}

func newBitMatrix(n, width int) bitMatrix {
	w := wordsFor(width)
	return bitMatrix{words: w, bits: make([]uint64, n*w)}
}

func (m bitMatrix) row(i int) bitset {
	return bitset(m.bits[i*m.words : (i+1)*m.words : (i+1)*m.words])
}

func (m bitMatrix) zero() {
	for i := range m.bits {
		m.bits[i] = 0
	}
}
