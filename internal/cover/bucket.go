package cover

import (
	"errors"
	"sort"
	"sync"
)

// This file is the bucket-queue engine behind LazyGreedy: an exact
// drop-in for the lazy heap on the instances that dominate practice,
// where column costs and column sizes are small integers.
//
// The observation is that a lazy-heap key is a (cost, new-count) pair
// drawn from a tiny grid — cost bounded by the worst column cost, count
// by the largest column — and that keys are monotone: coverage only
// grows, so a column's true key only moves later in the Better order.
// That makes Dial's trick apply. Rank every (cost, nw) pair of the grid
// once in the Better order (cost-per-row ascending, then more rows
// first), keep one bucket of column indices per rank, and walk a
// never-retreating finger over the ranks. A popped column is verified
// exactly like the heap top: a stale count re-files the column in its
// true — strictly later — bucket, so the finger never has to back up.
// Ties inside a bucket are identical keys, which Better breaks by
// column index: the bucket is sorted once when the finger arrives
// (after which nothing can enter it) and consumed in order.
//
// Every operation is O(1) plus amortized sorting of ints, against the
// heap's O(log ncols) Key sift per re-evaluation — and the engine
// choice is invisible: both maintain the same stored-key multiset and
// always verify its exact minimum, so picks, re-evaluation counts and
// recorded runner-up bounds are bit-identical.

// keyPair is one (cost, new-count) grid point.
type keyPair struct{ cost, nw int32 }

// ratioTable is the Better-order ranking of a (cost, nw) grid:
// rank[(cost-1)*nwCap+(nw-1)] is the pair's position, pairs the
// inverse. Tables are immutable and memoized per power-of-two grid
// shape, so the sort is paid once per process, not per cover.
type ratioTable struct {
	nwCap int32
	rank  []int32
	pairs []keyPair
}

func (t *ratioTable) rankOf(cost, nw int32) int32 {
	return t.rank[(cost-1)*t.nwCap+(nw-1)]
}

// maxBucketRanks caps the grid a bucket queue will rank: past it the
// per-cover bucket array and the memoized table stop being cheap, and
// LazyGreedy keeps the heap. 2^14 ranks is a 384 KiB bucket array.
const maxBucketRanks = 1 << 14

var (
	ratioTablesMu sync.Mutex
	ratioTables   = map[int64]*ratioTable{}
)

// bucketEnabled gates the bucket engine. Only tests flip it, to drive
// the same instance through both engines and assert bit-identity.
var bucketEnabled = true

func pow2AtLeast(x int) int {
	p := 1
	for p < x {
		p <<= 1
	}
	return p
}

func ratioTableFor(costCap, nwCap int) *ratioTable {
	key := int64(costCap)<<32 | int64(nwCap)
	ratioTablesMu.Lock()
	defer ratioTablesMu.Unlock()
	if t, ok := ratioTables[key]; ok {
		return t
	}
	pairs := make([]keyPair, 0, costCap*nwCap)
	for c := 1; c <= costCap; c++ {
		for w := 1; w <= nwCap; w++ {
			pairs = append(pairs, keyPair{int32(c), int32(w)})
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		pa, pb := pairs[a], pairs[b]
		l := int64(pa.cost) * int64(pb.nw)
		r := int64(pb.cost) * int64(pa.nw)
		if l != r {
			return l < r
		}
		return pa.nw > pb.nw
	})
	t := &ratioTable{nwCap: int32(nwCap), rank: make([]int32, costCap*nwCap), pairs: pairs}
	for i, p := range pairs {
		t.rank[(p.cost-1)*t.nwCap+(p.nw-1)] = int32(i)
	}
	ratioTables[key] = t
	return t
}

// bucketGreedy is the bucket-queue selection loop. Callers have already
// established that every live column's (cost, size) fits t's grid.
func bucketGreedy(t *ratioTable, live []int32, sizes []int32, remaining int, cost, countNew func(int) int, commit func(int), onPick func(GreedyPick)) ([]int, int64, error) {
	buckets := make([][]int32, len(t.pairs))
	for k, j := range live {
		r := t.rankOf(int32(cost(int(j))), sizes[k])
		buckets[r] = append(buckets[r], j)
	}
	picks := make([]int, 0, 8)
	var reevals int64
	cur, sorted := 0, -1
	for remaining > 0 {
		for cur < len(buckets) && len(buckets[cur]) == 0 {
			cur++
		}
		if cur == len(buckets) {
			return nil, reevals, errors.New("cover: columns do not cover all rows")
		}
		if sorted != cur {
			// First pop from this rank: order the ties by column index.
			// Nothing can be filed here afterwards — re-files from this
			// bucket are strictly staler, hence strictly later ranks.
			b := buckets[cur]
			sort.Slice(b, func(x, y int) bool { return b[x] < b[y] })
			sorted = cur
		}
		col := int(buckets[cur][0])
		pair := t.pairs[cur]
		nw := countNew(col)
		switch {
		case nw == 0:
			buckets[cur] = buckets[cur][1:]
			reevals++
		case int32(nw) != pair.nw:
			buckets[cur] = buckets[cur][1:]
			buckets[t.rankOf(pair.cost, int32(nw))] = append(buckets[t.rankOf(pair.cost, int32(nw))], int32(col))
			reevals++
		default:
			buckets[cur] = buckets[cur][1:]
			picks = append(picks, col)
			commit(col)
			remaining -= nw
			if onPick != nil {
				p := GreedyPick{Col: col}
				if bk, bcol, ok := bucketPeek(t, buckets, cur, sorted); ok {
					p.Bound, p.BoundOK = Key{Cost: int(bk.cost), NW: int(bk.nw), Col: bcol}, true
				}
				onPick(p)
			}
		}
	}
	return picks, reevals, nil
}

// bucketPeek returns the minimum stored key at or after rank cur
// without consuming it — the runner-up bound a pick records. Unsorted
// buckets are scanned, not sorted: sorting here would race the
// no-files-after-sort invariant, since later re-files may still land in
// the peeked rank.
func bucketPeek(t *ratioTable, buckets [][]int32, cur, sorted int) (keyPair, int, bool) {
	for ; cur < len(buckets); cur++ {
		b := buckets[cur]
		if len(b) == 0 {
			continue
		}
		col := b[0]
		if cur != sorted {
			for _, c := range b[1:] {
				if c < col {
					col = c
				}
			}
		}
		return t.pairs[cur], int(col), true
	}
	return keyPair{}, 0, false
}
