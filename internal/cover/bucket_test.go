package cover

import (
	"math/rand"
	"testing"
)

// TestBucketHeapEquivalence drives random instances through LazyGreedy
// with the bucket engine on and off and asserts the two engines are
// bit-identical observably: same picks in the same order, same
// re-evaluation count, and the same runner-up bound recorded at every
// pick. This is the contract warm-resume replay certification depends
// on — the engines must be interchangeable down to the recorded traces.
func TestBucketHeapEquivalence(t *testing.T) {
	type trace struct {
		picks   []int
		reevals int64
		bounds  []GreedyPick
	}
	run := func(in *Instance, bucket bool) trace {
		old := bucketEnabled
		bucketEnabled = bucket
		defer func() { bucketEnabled = old }()
		bs := in.colBitsets()
		covered := newBitset(in.NRows)
		var tr trace
		picks, reevals, err := LazyGreedy(len(in.Cols), in.NRows,
			func(j int) int { return in.Cols[j].Cost },
			func(j int) int { return len(in.Cols[j].Rows) },
			func(j int) int { return covered.countNew(bs[j]) },
			func(j int) { covered.orWith(bs[j]) },
			func(p GreedyPick) { tr.bounds = append(tr.bounds, p) })
		if err != nil {
			t.Fatalf("LazyGreedy(bucket=%v): %v", bucket, err)
		}
		tr.picks, tr.reevals = picks, reevals
		return tr
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nrows := 1 + rng.Intn(60)
		ncols := 1 + rng.Intn(80)
		in := &Instance{NRows: nrows}
		for j := 0; j < ncols; j++ {
			var rows []int
			for r := 0; r < nrows; r++ {
				if rng.Intn(3) == 0 {
					rows = append(rows, r)
				}
			}
			in.Cols = append(in.Cols, Column{Cost: 1 + rng.Intn(9), Rows: rows})
		}
		// Guarantee coverability with unit columns for a few rows, plus
		// one catch-all so every instance is solvable.
		all := make([]int, nrows)
		for r := range all {
			all[r] = r
		}
		in.Cols = append(in.Cols, Column{Cost: 2 + rng.Intn(6), Rows: all})
		b := run(in, true)
		h := run(in, false)
		if len(b.picks) != len(h.picks) || b.reevals != h.reevals {
			t.Fatalf("trial %d: bucket %v/%d reevals vs heap %v/%d reevals",
				trial, b.picks, b.reevals, h.picks, h.reevals)
		}
		for i := range b.picks {
			if b.picks[i] != h.picks[i] {
				t.Fatalf("trial %d pick %d: bucket col %d vs heap col %d", trial, i, b.picks[i], h.picks[i])
			}
		}
		for i := range b.bounds {
			if b.bounds[i] != h.bounds[i] {
				t.Fatalf("trial %d bound %d: bucket %+v vs heap %+v", trial, i, b.bounds[i], h.bounds[i])
			}
		}
	}
}

// TestBucketGateFallsBack forces a grid past maxBucketRanks and checks
// the heap path still solves it (and that both engines agree there,
// trivially, since the gate routes to the heap either way).
func TestBucketGateFallsBack(t *testing.T) {
	nrows := 20000
	rows := make([]int, nrows)
	for r := range rows {
		rows[r] = r
	}
	in := &Instance{NRows: nrows, Cols: []Column{{Cost: 1, Rows: rows}}}
	res := Greedy(in)
	if len(res.Picked) != 1 || res.Picked[0] != 0 {
		t.Fatalf("fallback greedy picked %v", res.Picked)
	}
}
