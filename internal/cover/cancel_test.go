package cover

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// hardInstance builds a dense random covering instance that the branch
// and bound cannot finish quickly: many overlapping near-equal-cost
// columns keep the independent-rows lower bound weak, so proving
// optimality means exploring a huge tree.
func hardInstance(rows, cols, perCol int, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	in := &Instance{NRows: rows}
	for j := 0; j < cols; j++ {
		picked := map[int]bool{}
		// Guarantee coverage: column j always covers row j%rows.
		picked[j%rows] = true
		for len(picked) < perCol {
			picked[rng.Intn(rows)] = true
		}
		var rs []int
		for r := range picked {
			rs = append(rs, r)
		}
		sortInts(rs)
		in.Cols = append(in.Cols, Column{Cost: 3 + rng.Intn(4), Rows: rs})
	}
	return in
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestExactContextCancellation is the regression test for the hung
// exact-cover bug: before ExactOptions.Ctx, a search on an instance
// like this could only be stopped by the node budget. A cancelled
// context must stop it within the ctx check interval and still return
// a valid (non-optimal) cover.
func TestExactContextCancellation(t *testing.T) {
	in := hardInstance(96, 420, 6, 1)
	if err := in.Validate(); err != nil {
		t.Fatalf("instance invalid: %v", err)
	}
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(50 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		res := Exact(in, ExactOptions{MaxNodes: 1 << 60, Workers: workers, Ctx: ctx})
		elapsed := time.Since(start)
		cancel()
		// Nodes run at well under a microsecond, so 1024-node polling
		// lands the stop within milliseconds; 5s leaves two orders of
		// magnitude of slack for loaded CI machines.
		if elapsed > 5*time.Second {
			t.Fatalf("workers=%d: cancelled search returned only after %v", workers, elapsed)
		}
		if res.Optimal {
			t.Errorf("workers=%d: cancelled search claims optimality", workers)
		}
		assertCovers(t, in, res)
	}
}

// TestExactContextPreCancelled: a context that is already done must
// short-circuit to the greedy cover without entering the search.
func TestExactContextPreCancelled(t *testing.T) {
	in := hardInstance(96, 420, 6, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res := Exact(in, ExactOptions{MaxNodes: 1 << 60, Ctx: ctx})
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pre-cancelled Exact took %v", elapsed)
	}
	assertCovers(t, in, res)
}

// TestExactNilCtxUnchanged: without a context the solver must behave
// exactly as before on a small instance — terminate and prove
// optimality within the node budget.
func TestExactNilCtxUnchanged(t *testing.T) {
	in := hardInstance(24, 60, 4, 3)
	res := Exact(in, ExactOptions{})
	if !res.Optimal {
		t.Fatalf("small instance not solved to optimality (nodes=%d)", res.Nodes)
	}
	assertCovers(t, in, res)
}

func assertCovers(t *testing.T, in *Instance, res Result) {
	t.Helper()
	covered := make([]bool, in.NRows)
	cost := 0
	for _, j := range res.Picked {
		cost += in.Cols[j].Cost
		for _, r := range in.Cols[j].Rows {
			covered[r] = true
		}
	}
	for r, ok := range covered {
		if !ok {
			t.Fatalf("row %d not covered", r)
		}
	}
	if cost != res.Cost {
		t.Fatalf("reported cost %d != recomputed %d", res.Cost, cost)
	}
}
