// Package cover solves the weighted unate set-covering problems at the
// heart of both SP and SPP minimization (paper §1): given rows X (the
// ON-set minterms), columns Y (prime implicants or extended prime
// pseudoproducts) and a column cost (literal count), select a minimum
// cost subset of Y covering X.
//
// Two solvers are provided: a greedy heuristic with redundancy
// elimination (the paper reports using covering heuristics for Table 1,
// making its #L figures upper bounds), and an exact branch-and-bound
// with classical essential/dominance reductions and an
// independent-rows lower bound, budgeted by a node limit.
//
// Both solvers run over dense word-parallel bitsets. Greedy uses a lazy
// re-evaluation heap (cached new-row counts are upper bounds, so the
// heap top with an up-to-date count is the true argmin) and does no
// per-pick allocation; the branch and bound undoes moves through a
// trail instead of cloning row sets, and can fan its root branches out
// over a worker pool (ExactOptions.Workers) deterministically.
package cover

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Instance is a covering problem. Rows are indexed 0..NRows-1; column j
// covers the rows listed in Cols[j].Rows (sorted, unique) at cost
// Cols[j].Cost (> 0).
type Instance struct {
	NRows int
	Cols  []Column
}

// Column is one selectable set.
type Column struct {
	Cost int
	Rows []int
}

// Result is a covering solution.
type Result struct {
	Picked  []int // indices into Instance.Cols, sorted
	Cost    int
	Optimal bool  // true if proven minimum
	Nodes   int64 // branch-and-bound nodes explored (exact solver)
}

// Validate checks structural sanity of the instance and that a cover
// exists (every row covered by at least one column).
func (in *Instance) Validate() error {
	seen := make([]bool, in.NRows)
	for j, c := range in.Cols {
		if c.Cost <= 0 {
			return fmt.Errorf("cover: column %d has non-positive cost %d", j, c.Cost)
		}
		prev := -1
		for _, r := range c.Rows {
			if r < 0 || r >= in.NRows {
				return fmt.Errorf("cover: column %d covers invalid row %d", j, r)
			}
			if r <= prev {
				return fmt.Errorf("cover: column %d rows not sorted/unique", j)
			}
			prev = r
			seen[r] = true
		}
	}
	for r, ok := range seen {
		if !ok {
			return fmt.Errorf("cover: row %d is uncoverable", r)
		}
	}
	return nil
}

// Key is one lazy-heap entry: column Col with its cost and a cached
// (possibly stale) count NW of rows it would newly cover. Coverage only
// grows, so the cached count is an upper bound on the true one and the
// cached key is an optimistic lower bound in the heap order. Keys are
// exported so warm-resume layers can replay and verify pick traces
// against the exact selection order.
type Key struct {
	Cost int
	NW   int
	Col  int
}

// Better is the greedy selection order: cost per newly covered row
// ascending (compared by integer cross-multiplication, so there is no
// float rounding and no overflow for any counts that fit an int32),
// then more new rows first, then lower column index. The index
// tie-break makes the order total, which keeps the lazy heap — and
// therefore the whole greedy — deterministic.
func (a Key) Better(b Key) bool {
	l := int64(a.Cost) * int64(b.NW)
	r := int64(b.Cost) * int64(a.NW)
	if l != r {
		return l < r
	}
	if a.NW != b.NW {
		return a.NW > b.NW
	}
	return a.Col < b.Col
}

type greedyHeap []Key

func (h greedyHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h greedyHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h[r].Better(h[l]) {
			m = r
		}
		if !h[m].Better(h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (h *greedyHeap) pop() {
	old := *h
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	h.down(0)
}

// Greedy computes a cover with the classic cost-effectiveness greedy
// (pick the column minimizing cost per newly covered row), followed by
// reverse redundancy elimination (drop any picked column whose rows are
// covered by the others). The result is always a valid cover; Optimal
// is false unless the cover is trivially a single column of minimum
// cost covering everything.
//
// Selection runs over a lazy heap: the cached new-row count of the heap
// top is recomputed on demand, and only a stale top forces a sift. All
// other entries hold optimistic keys, so a top whose cached count is
// exact is the true minimum — the same column a full rescan would pick.
func Greedy(in *Instance) Result { return GreedyStats(in, nil) }

// GreedyStats is Greedy with observability: when rec is non-nil it
// times the greedy phase and counts picks, lazy-heap re-evaluations
// (stale tops that had to be popped or re-keyed) and redundancy drops.
// All three are deterministic — the lazy heap's total order makes the
// greedy independent of everything but the instance.
func GreedyStats(in *Instance, rec *stats.Recorder) Result {
	defer rec.Phase(stats.PhaseCoverGreedy)()
	if in.NRows == 0 {
		return Result{Optimal: true}
	}
	bs := in.colBitsets()
	covered := newBitset(in.NRows)
	picked, reevals, err := LazyGreedy(len(in.Cols), in.NRows,
		func(j int) int { return in.Cols[j].Cost },
		func(j int) int { return len(in.Cols[j].Rows) },
		func(j int) int { return covered.countNew(bs[j]) },
		func(j int) { covered.orWith(bs[j]) },
		nil)
	if err != nil {
		panic("cover: uncoverable row in Greedy (call Validate first)")
	}
	nPicked := len(picked)
	picked = eliminateRedundant(in, picked)
	sort.Ints(picked)
	cost := 0
	for _, j := range picked {
		cost += in.Cols[j].Cost
	}
	if rec != nil {
		rec.Add(stats.CtrGreedyPicks, int64(nPicked))
		rec.Add(stats.CtrGreedyReevals, reevals)
		rec.Add(stats.CtrGreedyRedundant, int64(nPicked-len(picked)))
	}
	return Result{Picked: picked, Cost: cost}
}

// GreedyPick is one committed greedy selection as observed by a
// LazyGreedy onPick hook. Bound is the heap's cached top immediately
// after the pick was popped: because cached counts are upper bounds,
// Bound is an optimistic (never pessimistic) lower bound in the Better
// order on every other column still alive at that step. BoundOK is
// false when the pick emptied the heap, leaving nothing to bound.
type GreedyPick struct {
	Col     int
	Bound   Key
	BoundOK bool
}

// LazyGreedy is the reusable core of the greedy selection loop over an
// abstract column space: ncols columns identified by index, remaining
// uncovered rows, per-column cost and initial size accessors, countNew
// reporting how many uncovered rows column j would newly cover, and
// commit marking column j's rows covered. It returns the picked columns
// in selection order (no redundancy elimination, no sorting) and the
// number of lazy re-evaluations. Columns with size(j) == 0 never enter
// the heap. The selection sequence is a pure function of the instance —
// identical to GreedyStats on an equivalent Instance — which is what
// lets warm-resume layers replay recorded picks against it.
//
// An error (rather than GreedyStats's panic) is returned when the heap
// empties with rows still uncovered, so callers that skipped a
// Validate pass can surface the uncoverable-row condition.
func LazyGreedy(ncols, remaining int, cost, size, countNew func(int) int, commit func(int), onPick func(GreedyPick)) ([]int, int64, error) {
	// Small (cost, size) grids take the bucket-queue engine (bucket.go),
	// which pops in exactly the same order with O(1) operations. The
	// grid test is a pure function of the instance, so the engine choice
	// never perturbs determinism.
	costMin, costMax, sizeMax := 1<<30, 0, 0
	live := make([]int32, 0, ncols)
	sizes := make([]int32, 0, ncols)
	for j := 0; j < ncols; j++ {
		if s := size(j); s > 0 {
			live = append(live, int32(j))
			sizes = append(sizes, int32(s))
			if s > sizeMax {
				sizeMax = s
			}
			c := cost(j)
			if c > costMax {
				costMax = c
			}
			if c < costMin {
				costMin = c
			}
		}
	}
	if bucketEnabled && len(live) > 0 && costMin >= 1 {
		costCap, nwCap := pow2AtLeast(costMax), pow2AtLeast(sizeMax)
		if costCap*nwCap <= maxBucketRanks {
			return bucketGreedy(ratioTableFor(costCap, nwCap), live, sizes, remaining, cost, countNew, commit, onPick)
		}
	}
	h := make(greedyHeap, 0, len(live))
	for k, j := range live {
		h = append(h, Key{Cost: cost(int(j)), NW: int(sizes[k]), Col: int(j)})
	}
	h.init()
	picks := make([]int, 0, 8)
	var reevals int64
	for remaining > 0 {
		if len(h) == 0 {
			return nil, reevals, errors.New("cover: columns do not cover all rows")
		}
		top := h[0]
		nw := countNew(top.Col)
		switch {
		case nw == 0:
			h.pop()
			reevals++
		case nw != top.NW:
			h[0].NW = nw
			h.down(0)
			reevals++
		default:
			h.pop()
			picks = append(picks, top.Col)
			commit(top.Col)
			remaining -= nw
			if onPick != nil {
				p := GreedyPick{Col: top.Col}
				if len(h) > 0 {
					p.Bound, p.BoundOK = h[0], true
				}
				onPick(p)
			}
		}
	}
	return picks, reevals, nil
}

// eliminateRedundant drops picked columns (most expensive first) whose
// rows remain covered by the rest. A column is redundant exactly when
// every one of its rows is covered by at least two still-alive picks,
// so a per-row coverage count replaces the seed's rebuild of the union
// bitset for every candidate drop.
func eliminateRedundant(in *Instance, picked []int) []int {
	if len(picked) <= 1 {
		return picked
	}
	order := append([]int(nil), picked...)
	sort.Slice(order, func(a, b int) bool {
		return in.Cols[order[a]].Cost > in.Cols[order[b]].Cost
	})
	cnt := make([]int32, in.NRows)
	for _, j := range picked {
		for _, r := range in.Cols[j].Rows {
			cnt[r]++
		}
	}
	var dropped map[int]bool
	for _, j := range order {
		redundant := true
		for _, r := range in.Cols[j].Rows {
			if cnt[r] < 2 {
				redundant = false
				break
			}
		}
		if redundant {
			for _, r := range in.Cols[j].Rows {
				cnt[r]--
			}
			if dropped == nil {
				dropped = make(map[int]bool, 4)
			}
			dropped[j] = true
		}
	}
	if dropped == nil {
		return picked
	}
	out := picked[:0]
	for _, j := range picked {
		if !dropped[j] {
			out = append(out, j)
		}
	}
	return out
}
