// Package cover solves the weighted unate set-covering problems at the
// heart of both SP and SPP minimization (paper §1): given rows X (the
// ON-set minterms), columns Y (prime implicants or extended prime
// pseudoproducts) and a column cost (literal count), select a minimum
// cost subset of Y covering X.
//
// Two solvers are provided: a greedy heuristic with redundancy
// elimination (the paper reports using covering heuristics for Table 1,
// making its #L figures upper bounds), and an exact branch-and-bound
// with classical essential/dominance reductions and an
// independent-rows lower bound, budgeted by a node limit.
//
// Both solvers run over dense word-parallel bitsets. Greedy uses a lazy
// re-evaluation heap (cached new-row counts are upper bounds, so the
// heap top with an up-to-date count is the true argmin) and does no
// per-pick allocation; the branch and bound undoes moves through a
// trail instead of cloning row sets, and can fan its root branches out
// over a worker pool (ExactOptions.Workers) deterministically.
package cover

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Instance is a covering problem. Rows are indexed 0..NRows-1; column j
// covers the rows listed in Cols[j].Rows (sorted, unique) at cost
// Cols[j].Cost (> 0).
type Instance struct {
	NRows int
	Cols  []Column
}

// Column is one selectable set.
type Column struct {
	Cost int
	Rows []int
}

// Result is a covering solution.
type Result struct {
	Picked  []int // indices into Instance.Cols, sorted
	Cost    int
	Optimal bool  // true if proven minimum
	Nodes   int64 // branch-and-bound nodes explored (exact solver)
}

// Validate checks structural sanity of the instance and that a cover
// exists (every row covered by at least one column).
func (in *Instance) Validate() error {
	seen := make([]bool, in.NRows)
	for j, c := range in.Cols {
		if c.Cost <= 0 {
			return fmt.Errorf("cover: column %d has non-positive cost %d", j, c.Cost)
		}
		prev := -1
		for _, r := range c.Rows {
			if r < 0 || r >= in.NRows {
				return fmt.Errorf("cover: column %d covers invalid row %d", j, r)
			}
			if r <= prev {
				return fmt.Errorf("cover: column %d rows not sorted/unique", j)
			}
			prev = r
			seen[r] = true
		}
	}
	for r, ok := range seen {
		if !ok {
			return fmt.Errorf("cover: row %d is uncoverable", r)
		}
	}
	return nil
}

// greedyItem is one heap entry: column col with its cost and a cached
// (possibly stale) count of rows it would newly cover. Coverage only
// grows, so the cached count is an upper bound on the true one and the
// cached key is an optimistic lower bound in the heap order.
type greedyItem struct {
	cost int
	nw   int
	col  int
}

// better is the greedy selection order: cost per newly covered row
// ascending (compared by integer cross-multiplication, so there is no
// float rounding and no overflow for any counts that fit an int32),
// then more new rows first, then lower column index. The index
// tie-break makes the order total, which keeps the lazy heap — and
// therefore the whole greedy — deterministic.
func (a greedyItem) better(b greedyItem) bool {
	l := int64(a.cost) * int64(b.nw)
	r := int64(b.cost) * int64(a.nw)
	if l != r {
		return l < r
	}
	if a.nw != b.nw {
		return a.nw > b.nw
	}
	return a.col < b.col
}

type greedyHeap []greedyItem

func (h greedyHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h greedyHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h[r].better(h[l]) {
			m = r
		}
		if !h[m].better(h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (h *greedyHeap) pop() {
	old := *h
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	h.down(0)
}

// Greedy computes a cover with the classic cost-effectiveness greedy
// (pick the column minimizing cost per newly covered row), followed by
// reverse redundancy elimination (drop any picked column whose rows are
// covered by the others). The result is always a valid cover; Optimal
// is false unless the cover is trivially a single column of minimum
// cost covering everything.
//
// Selection runs over a lazy heap: the cached new-row count of the heap
// top is recomputed on demand, and only a stale top forces a sift. All
// other entries hold optimistic keys, so a top whose cached count is
// exact is the true minimum — the same column a full rescan would pick.
func Greedy(in *Instance) Result { return GreedyStats(in, nil) }

// GreedyStats is Greedy with observability: when rec is non-nil it
// times the greedy phase and counts picks, lazy-heap re-evaluations
// (stale tops that had to be popped or re-keyed) and redundancy drops.
// All three are deterministic — the lazy heap's total order makes the
// greedy independent of everything but the instance.
func GreedyStats(in *Instance, rec *stats.Recorder) Result {
	defer rec.Phase(stats.PhaseCoverGreedy)()
	if in.NRows == 0 {
		return Result{Optimal: true}
	}
	bs := in.colBitsets()
	covered := newBitset(in.NRows)
	h := make(greedyHeap, 0, len(in.Cols))
	for j, c := range in.Cols {
		if len(c.Rows) > 0 {
			h = append(h, greedyItem{cost: c.Cost, nw: len(c.Rows), col: j})
		}
	}
	h.init()
	picked := make([]int, 0, 8)
	remaining := in.NRows
	var reevals int64
	for remaining > 0 {
		if len(h) == 0 {
			panic("cover: uncoverable row in Greedy (call Validate first)")
		}
		top := h[0]
		nw := covered.countNew(bs[top.col])
		switch {
		case nw == 0:
			h.pop()
			reevals++
		case nw != top.nw:
			h[0].nw = nw
			h.down(0)
			reevals++
		default:
			h.pop()
			picked = append(picked, top.col)
			covered.orWith(bs[top.col])
			remaining -= nw
		}
	}
	nPicked := len(picked)
	picked = eliminateRedundant(in, picked)
	sort.Ints(picked)
	cost := 0
	for _, j := range picked {
		cost += in.Cols[j].Cost
	}
	if rec != nil {
		rec.Add(stats.CtrGreedyPicks, int64(nPicked))
		rec.Add(stats.CtrGreedyReevals, reevals)
		rec.Add(stats.CtrGreedyRedundant, int64(nPicked-len(picked)))
	}
	return Result{Picked: picked, Cost: cost}
}

// eliminateRedundant drops picked columns (most expensive first) whose
// rows remain covered by the rest. A column is redundant exactly when
// every one of its rows is covered by at least two still-alive picks,
// so a per-row coverage count replaces the seed's rebuild of the union
// bitset for every candidate drop.
func eliminateRedundant(in *Instance, picked []int) []int {
	if len(picked) <= 1 {
		return picked
	}
	order := append([]int(nil), picked...)
	sort.Slice(order, func(a, b int) bool {
		return in.Cols[order[a]].Cost > in.Cols[order[b]].Cost
	})
	cnt := make([]int32, in.NRows)
	for _, j := range picked {
		for _, r := range in.Cols[j].Rows {
			cnt[r]++
		}
	}
	var dropped map[int]bool
	for _, j := range order {
		redundant := true
		for _, r := range in.Cols[j].Rows {
			if cnt[r] < 2 {
				redundant = false
				break
			}
		}
		if redundant {
			for _, r := range in.Cols[j].Rows {
				cnt[r]--
			}
			if dropped == nil {
				dropped = make(map[int]bool, 4)
			}
			dropped[j] = true
		}
	}
	if dropped == nil {
		return picked
	}
	out := picked[:0]
	for _, j := range picked {
		if !dropped[j] {
			out = append(out, j)
		}
	}
	return out
}
