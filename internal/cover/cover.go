// Package cover solves the weighted unate set-covering problems at the
// heart of both SP and SPP minimization (paper §1): given rows X (the
// ON-set minterms), columns Y (prime implicants or extended prime
// pseudoproducts) and a column cost (literal count), select a minimum
// cost subset of Y covering X.
//
// Two solvers are provided: a greedy heuristic with redundancy
// elimination (the paper reports using covering heuristics for Table 1,
// making its #L figures upper bounds), and an exact branch-and-bound
// with classical essential/dominance reductions and an
// independent-rows lower bound, budgeted by a node limit.
package cover

import (
	"fmt"
	"math/bits"
	"sort"
)

// Instance is a covering problem. Rows are indexed 0..NRows-1; column j
// covers the rows listed in Cols[j].Rows (sorted, unique) at cost
// Cols[j].Cost (> 0).
type Instance struct {
	NRows int
	Cols  []Column
}

// Column is one selectable set.
type Column struct {
	Cost int
	Rows []int
}

// Result is a covering solution.
type Result struct {
	Picked  []int // indices into Instance.Cols, sorted
	Cost    int
	Optimal bool  // true if proven minimum
	Nodes   int64 // branch-and-bound nodes explored (exact solver)
}

// Validate checks structural sanity of the instance and that a cover
// exists (every row covered by at least one column).
func (in *Instance) Validate() error {
	seen := make([]bool, in.NRows)
	for j, c := range in.Cols {
		if c.Cost <= 0 {
			return fmt.Errorf("cover: column %d has non-positive cost %d", j, c.Cost)
		}
		prev := -1
		for _, r := range c.Rows {
			if r < 0 || r >= in.NRows {
				return fmt.Errorf("cover: column %d covers invalid row %d", j, r)
			}
			if r <= prev {
				return fmt.Errorf("cover: column %d rows not sorted/unique", j)
			}
			prev = r
			seen[r] = true
		}
	}
	for r, ok := range seen {
		if !ok {
			return fmt.Errorf("cover: row %d is uncoverable", r)
		}
	}
	return nil
}

// bitset over rows.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }
func (b bitset) clone() bitset  { c := make(bitset, len(b)); copy(c, b); return c }

func (b bitset) orWith(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// countNew returns |o \ b|: rows of o not already set in b.
func (b bitset) countNew(o bitset) int {
	n := 0
	for i := range b {
		n += bits.OnesCount64(o[i] &^ b[i])
	}
	return n
}

func (b bitset) containsAll(o bitset) bool {
	for i := range b {
		if o[i]&^b[i] != 0 {
			return false
		}
	}
	return true
}

func (in *Instance) colBitsets() []bitset {
	bs := make([]bitset, len(in.Cols))
	for j, c := range in.Cols {
		b := newBitset(in.NRows)
		for _, r := range c.Rows {
			b.set(r)
		}
		bs[j] = b
	}
	return bs
}

// Greedy computes a cover with the classic cost-effectiveness greedy
// (pick the column minimizing cost per newly covered row), followed by
// reverse redundancy elimination (drop any picked column whose rows are
// covered by the others). The result is always a valid cover; Optimal
// is false unless the cover is trivially a single column of minimum
// cost covering everything.
func Greedy(in *Instance) Result {
	if in.NRows == 0 {
		return Result{Optimal: true}
	}
	bs := in.colBitsets()
	covered := newBitset(in.NRows)
	var picked []int
	remaining := in.NRows
	for remaining > 0 {
		best, bestNew := -1, 0
		var bestRatio float64
		for j := range in.Cols {
			nw := covered.countNew(bs[j])
			if nw == 0 {
				continue
			}
			ratio := float64(in.Cols[j].Cost) / float64(nw)
			if best == -1 || ratio < bestRatio ||
				(ratio == bestRatio && nw > bestNew) {
				best, bestNew, bestRatio = j, nw, ratio
			}
		}
		if best == -1 {
			panic("cover: uncoverable row in Greedy (call Validate first)")
		}
		picked = append(picked, best)
		covered.orWith(bs[best])
		remaining -= bestNew
	}
	picked = eliminateRedundant(in, bs, picked)
	sort.Ints(picked)
	cost := 0
	for _, j := range picked {
		cost += in.Cols[j].Cost
	}
	return Result{Picked: picked, Cost: cost}
}

// eliminateRedundant drops picked columns (most expensive first) whose
// rows remain covered by the rest.
func eliminateRedundant(in *Instance, bs []bitset, picked []int) []int {
	order := append([]int(nil), picked...)
	sort.Slice(order, func(a, b int) bool {
		return in.Cols[order[a]].Cost > in.Cols[order[b]].Cost
	})
	alive := map[int]bool{}
	for _, j := range picked {
		alive[j] = true
	}
	for _, j := range order {
		// Coverage without j.
		without := newBitset(in.NRows)
		for k := range alive {
			if k != j && alive[k] {
				without.orWith(bs[k])
			}
		}
		if without.containsAll(bs[j]) {
			alive[j] = false
		}
	}
	out := picked[:0]
	for _, j := range picked {
		if alive[j] {
			out = append(out, j)
		}
	}
	return out
}
