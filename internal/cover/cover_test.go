package cover

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustValidate(t *testing.T, in *Instance) {
	t.Helper()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
}

func isCover(in *Instance, picked []int) bool {
	covered := make([]bool, in.NRows)
	for _, j := range picked {
		for _, r := range in.Cols[j].Rows {
			covered[r] = true
		}
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return true
}

// bruteForce finds the true minimum cost by subset enumeration.
func bruteForce(in *Instance) int {
	best := -1
	for mask := 0; mask < 1<<uint(len(in.Cols)); mask++ {
		cost := 0
		var picked []int
		for j := 0; j < len(in.Cols); j++ {
			if mask&(1<<uint(j)) != 0 {
				picked = append(picked, j)
				cost += in.Cols[j].Cost
			}
		}
		if best != -1 && cost >= best {
			continue
		}
		if isCover(in, picked) {
			best = cost
		}
	}
	return best
}

func randomInstance(rng *rand.Rand, nRows, nCols, maxCost int) *Instance {
	in := &Instance{NRows: nRows}
	for j := 0; j < nCols; j++ {
		var rows []int
		for r := 0; r < nRows; r++ {
			if rng.Intn(3) == 0 {
				rows = append(rows, r)
			}
		}
		if len(rows) == 0 {
			rows = []int{rng.Intn(nRows)}
		}
		in.Cols = append(in.Cols, Column{Cost: 1 + rng.Intn(maxCost), Rows: rows})
	}
	// Guarantee coverability with singleton columns.
	for r := 0; r < nRows; r++ {
		in.Cols = append(in.Cols, Column{Cost: maxCost, Rows: []int{r}})
	}
	return in
}

func TestGreedyProducesValidCover(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 1+rng.Intn(12), 1+rng.Intn(8), 5)
		if err := in.Validate(); err != nil {
			return false
		}
		res := Greedy(in)
		return isCover(in, res.Picked)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 1+rng.Intn(8), 1+rng.Intn(6), 4)
		res := Exact(in, ExactOptions{})
		if !isCover(in, res.Picked) || !res.Optimal {
			return false
		}
		return res.Cost == bruteForce(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExactNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng, 20, 25, 6)
		g := Greedy(in)
		e := Exact(in, ExactOptions{MaxNodes: 50000})
		if e.Cost > g.Cost {
			t.Fatalf("exact cost %d > greedy cost %d", e.Cost, g.Cost)
		}
		if !isCover(in, e.Picked) {
			t.Fatal("exact result is not a cover")
		}
	}
}

func TestEmptyInstance(t *testing.T) {
	in := &Instance{NRows: 0}
	mustValidate(t, in)
	if res := Greedy(in); len(res.Picked) != 0 || res.Cost != 0 {
		t.Fatalf("greedy on empty: %+v", res)
	}
	if res := Exact(in, ExactOptions{}); len(res.Picked) != 0 || !res.Optimal {
		t.Fatalf("exact on empty: %+v", res)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []*Instance{
		{NRows: 2, Cols: []Column{{Cost: 1, Rows: []int{0}}}},       // row 1 uncoverable
		{NRows: 1, Cols: []Column{{Cost: 0, Rows: []int{0}}}},       // zero cost
		{NRows: 1, Cols: []Column{{Cost: 1, Rows: []int{1}}}},       // bad row
		{NRows: 2, Cols: []Column{{Cost: 1, Rows: []int{1, 0}}}},    // unsorted
		{NRows: 2, Cols: []Column{{Cost: 1, Rows: []int{0, 0, 1}}}}, // dup
	}
	for i, in := range cases {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestRedundancyElimination(t *testing.T) {
	// Greedy may pick col 0 (covers rows 0,1) then need 1 and 2; after
	// picking {1,2} column 0 is redundant in some orders. Construct a
	// case where elimination must fire: two singletons plus their union
	// at higher cost picked first by ratio.
	in := &Instance{
		NRows: 2,
		Cols: []Column{
			{Cost: 1, Rows: []int{0, 1}}, // best ratio: picked first
			{Cost: 1, Rows: []int{0}},
			{Cost: 1, Rows: []int{1}},
		},
	}
	res := Greedy(in)
	if res.Cost != 1 || len(res.Picked) != 1 || res.Picked[0] != 0 {
		t.Fatalf("greedy = %+v", res)
	}
}

func TestExactTightCase(t *testing.T) {
	// Greedy ratio heuristic is suboptimal here; exact must find cost 2.
	// Rows 0..3. Col A covers {0,1,2} cost 3. Singletons cost 1 each for
	// rows 0..2, col B covers {3} cost 1... construct the classic trap:
	in := &Instance{
		NRows: 4,
		Cols: []Column{
			{Cost: 3, Rows: []int{0, 1, 2}},
			{Cost: 1, Rows: []int{0, 1}},
			{Cost: 1, Rows: []int{2, 3}},
			{Cost: 2, Rows: []int{3}},
		},
	}
	res := Exact(in, ExactOptions{})
	if res.Cost != 2 || !res.Optimal {
		t.Fatalf("exact = %+v, want cost 2", res)
	}
}

func BenchmarkGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	in := randomInstance(rng, 200, 400, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(in)
	}
}

func BenchmarkExact(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	in := randomInstance(rng, 40, 60, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(in, ExactOptions{MaxNodes: 100000})
	}
}
