package cover

import (
	"sort"
)

// ExactOptions configures the branch-and-bound solver.
type ExactOptions struct {
	// MaxNodes bounds the search; 0 means DefaultMaxNodes. When the
	// budget is exhausted the best cover found so far is returned with
	// Optimal=false (it is still a valid cover because the search is
	// seeded with the greedy solution).
	MaxNodes int64
}

// DefaultMaxNodes is the node budget used when ExactOptions.MaxNodes is 0.
const DefaultMaxNodes = 2_000_000

// Exact solves the covering problem by branch and bound after the
// classical essential-column and row/column-dominance reductions, with
// an independent-rows lower bound. It is seeded with the greedy cover,
// so even on budget exhaustion the result is valid.
func Exact(in *Instance, opts ExactOptions) Result {
	if in.NRows == 0 {
		return Result{Optimal: true}
	}
	budget := opts.MaxNodes
	if budget == 0 {
		budget = DefaultMaxNodes
	}
	red := reduceInstance(in)
	picked := append([]int(nil), red.forced...)
	cost := red.cost
	if red.residual.NRows == 0 {
		sort.Ints(picked)
		return Result{Picked: picked, Cost: cost, Optimal: true}
	}
	seed := Greedy(red.residual)
	s := &solver{
		in:      red.residual,
		bs:      red.residual.colBitsets(),
		best:    append([]int(nil), seed.Picked...),
		bestUB:  seed.Cost,
		budget:  budget,
		rowCols: rowToCols(red.residual),
	}
	covered := newBitset(red.residual.NRows)
	s.search(covered, nil, 0)
	for _, j := range s.best {
		picked = append(picked, red.colMap[j])
	}
	sort.Ints(picked)
	return Result{
		Picked:  picked,
		Cost:    cost + s.bestUB,
		Optimal: s.nodes < s.budget,
		Nodes:   s.nodes,
	}
}

func rowToCols(in *Instance) [][]int {
	rc := make([][]int, in.NRows)
	for j, c := range in.Cols {
		for _, r := range c.Rows {
			rc[r] = append(rc[r], j)
		}
	}
	return rc
}

type solver struct {
	in      *Instance
	bs      []bitset
	rowCols [][]int
	best    []int
	bestUB  int
	nodes   int64
	budget  int64
}

// lowerBound computes a simple independent-rows bound: greedily pick
// uncovered rows no two of which share a column, summing for each the
// cheapest column covering it.
func (s *solver) lowerBound(covered bitset) int {
	usedCols := map[int]bool{}
	lb := 0
	for r := 0; r < s.in.NRows; r++ {
		if covered.get(r) {
			continue
		}
		independent := true
		minCost := -1
		for _, j := range s.rowCols[r] {
			if usedCols[j] {
				independent = false
				break
			}
			if minCost == -1 || s.in.Cols[j].Cost < minCost {
				minCost = s.in.Cols[j].Cost
			}
		}
		if independent && minCost > 0 {
			lb += minCost
			for _, j := range s.rowCols[r] {
				usedCols[j] = true
			}
		}
	}
	return lb
}

func (s *solver) search(covered bitset, picked []int, cost int) {
	s.nodes++
	if s.nodes >= s.budget {
		return
	}
	if cost >= s.bestUB {
		return
	}
	// Find the uncovered row with the fewest candidate columns.
	branchRow := -1
	branchDeg := int(^uint(0) >> 1)
	for r := 0; r < s.in.NRows; r++ {
		if covered.get(r) {
			continue
		}
		deg := 0
		for _, j := range s.rowCols[r] {
			if covered.countNew(s.bs[j]) > 0 {
				deg++
			}
		}
		if deg < branchDeg {
			branchDeg, branchRow = deg, r
		}
		if deg <= 1 {
			break
		}
	}
	if branchRow == -1 {
		// Full cover found.
		if cost < s.bestUB {
			s.bestUB = cost
			s.best = append(s.best[:0], picked...)
		}
		return
	}
	if cost+s.lowerBound(covered) >= s.bestUB {
		return
	}
	// Branch on the columns covering branchRow, cheapest-per-new first.
	cands := make([]int, 0, len(s.rowCols[branchRow]))
	cands = append(cands, s.rowCols[branchRow]...)
	sort.Slice(cands, func(a, b int) bool {
		na := covered.countNew(s.bs[cands[a]])
		nb := covered.countNew(s.bs[cands[b]])
		ca, cb := s.in.Cols[cands[a]].Cost, s.in.Cols[cands[b]].Cost
		return ca*nb < cb*na // cost/new ascending without division
	})
	for _, j := range cands {
		nc := covered.clone()
		nc.orWith(s.bs[j])
		s.search(nc, append(picked, j), cost+s.in.Cols[j].Cost)
		if s.nodes >= s.budget {
			return
		}
	}
}
