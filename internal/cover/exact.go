package cover

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// ExactOptions configures the branch-and-bound solver.
type ExactOptions struct {
	// MaxNodes bounds the search; 0 means DefaultMaxNodes. When the
	// budget is exhausted the best cover found so far is returned with
	// Optimal=false (it is still a valid cover because the search is
	// seeded with the greedy solution).
	MaxNodes int64
	// Workers fans the root-level branches of the search out over this
	// many goroutines; <= 1 runs the serial solver, which visits
	// exactly the seed implementation's nodes. The parallel solver is
	// deterministic whenever the node budget is not exhausted: branches
	// are searched in a fixed order with per-branch local bounds and
	// strict pruning against the shared atomic upper bound, and the
	// final reduction breaks cost ties by lowest branch index (see
	// DESIGN.md, ablation 9). Nodes may exceed the serial count because
	// strict pruning re-explores some suboptimal subtrees.
	Workers int
	// Stats, when non-nil, receives the solver's phase times and
	// counters: the reduction's essential/dominance hits (deterministic)
	// and the search's node/prune/root-branch counts (scheduling-
	// dependent when Workers > 1, for the strict-pruning reason above).
	Stats *stats.Recorder
	// Ctx, when non-nil, cancels the search: the loop polls ctx.Err()
	// every ctxCheckNodes nodes (per worker) and stops like a budget
	// exhaustion, returning the best cover found so far with
	// Optimal=false. Without it a hung exact-cover run could only be
	// stopped by the node budget.
	Ctx context.Context
	// WarmBound, when > 0, is the cost of a known valid cover of the
	// full instance (typically a previous run's solution on a warm
	// resume). The parallel search publishes it as the initial shared
	// upper bound, so subtrees costlier than the previous solution prune
	// immediately. It must be the cost of a genuinely valid cover: the
	// strict-pruning determinism argument needs bound >= optimum.
	// Results are byte-identical with or without a valid WarmBound; only
	// the nodes explored change. Ignored by the serial solver (Workers
	// <= 1), whose node-for-node seed equivalence would not survive a
	// foreign bound.
	WarmBound int
	// WarmFirst lists full-instance column indices (typically the
	// previous solution's picks) whose root branches should be searched
	// first. It permutes only the order workers claim branches — the
	// branch list, per-branch search and final reduction are unchanged —
	// so results stay deterministic while good incumbents publish early.
	// Ignored by the serial solver.
	WarmFirst []int
}

// ctxCheckNodes is how many search nodes a solver expands between
// ctx.Err() polls: coarse enough to keep the atomic load of a context
// read out of the node hot path, fine enough that cancellation lands
// within milliseconds (nodes are sub-microsecond).
const ctxCheckNodes = 1024

// DefaultMaxNodes is the node budget used when ExactOptions.MaxNodes is 0.
const DefaultMaxNodes = 2_000_000

// Exact solves the covering problem by branch and bound after the
// classical essential-column and row/column-dominance reductions, with
// an independent-rows lower bound. It is seeded with the greedy cover,
// so even on budget exhaustion the result is valid.
func Exact(in *Instance, opts ExactOptions) Result {
	if in.NRows == 0 {
		return Result{Optimal: true}
	}
	rec := opts.Stats
	budget := opts.MaxNodes
	if budget == 0 {
		budget = DefaultMaxNodes
	}
	if opts.Ctx != nil && opts.Ctx.Err() != nil {
		// Already cancelled: the greedy cover is the cheapest valid
		// answer we can produce without entering the search.
		return GreedyStats(in, rec)
	}
	stopReduce := rec.Phase(stats.PhaseCoverReduce)
	red := reduceInstance(in)
	stopReduce()
	if rec != nil {
		rec.Add(stats.CtrReduceEssential, int64(len(red.forced)))
		rec.Add(stats.CtrReduceRowDom, int64(red.rowDrops))
		rec.Add(stats.CtrReduceColDom, int64(red.colDrops))
	}
	picked := append([]int(nil), red.forced...)
	cost := red.cost
	if red.residual.NRows == 0 {
		sort.Ints(picked)
		return Result{Picked: picked, Cost: cost, Optimal: true}
	}
	seed := GreedyStats(red.residual, rec)
	var best []int
	var bestUB int
	var nodes int64
	stopSearch := rec.Phase(stats.PhaseCoverExact)
	if opts.Workers > 1 {
		warmBound, warmFirst := 0, []int(nil)
		if opts.WarmBound > 0 {
			// The warm bound covers the full instance; the residual
			// search competes net of the forced columns' cost. Any valid
			// full cover contains every essential column, so the
			// difference still upper-bounds the residual optimum.
			warmBound = opts.WarmBound - red.cost
			if len(opts.WarmFirst) > 0 {
				inv := make(map[int]int, len(red.colMap))
				for rj, fj := range red.colMap {
					inv[fj] = rj
				}
				for _, fj := range opts.WarmFirst {
					if rj, ok := inv[fj]; ok {
						warmFirst = append(warmFirst, rj)
					}
				}
			}
		}
		best, bestUB, nodes = searchParallel(red.residual, seed, budget, opts.Workers, opts.Ctx, rec, warmBound, warmFirst)
	} else {
		s := newSolver(red.residual, red.residual.colBitsets(), rowToCols(red.residual), seed, budget)
		s.ctx = opts.Ctx
		s.search(0)
		best, bestUB, nodes = s.best, s.bestUB, s.nodes
		if rec != nil {
			rec.Add(stats.CtrExactBoundPrunes, s.boundPrunes)
			rec.Add(stats.CtrExactLBPrunes, s.lbPrunes)
		}
	}
	stopSearch()
	rec.Add(stats.CtrExactNodes, nodes)
	for _, j := range best {
		picked = append(picked, red.colMap[j])
	}
	sort.Ints(picked)
	cancelled := opts.Ctx != nil && opts.Ctx.Err() != nil
	return Result{
		Picked:  picked,
		Cost:    cost + bestUB,
		Optimal: nodes < budget && !cancelled,
		Nodes:   nodes,
	}
}

func rowToCols(in *Instance) [][]int {
	rc := make([][]int, in.NRows)
	for j, c := range in.Cols {
		for _, r := range c.Rows {
			rc[r] = append(rc[r], j)
		}
	}
	return rc
}

// trailEntry is one undo record: the previous contents of a covered
// word that a pick overwrote.
type trailEntry struct {
	word int32
	old  uint64
}

// candEntry is a branch candidate with its new-row count, kept in
// per-depth scratch so sorting the branch order allocates nothing.
type candEntry struct {
	col int
	nw  int
}

// parShared is the state the parallel root branches share: the global
// node budget counter, the best upper bound found anywhere, and the
// cancellation flag any worker raises when it observes the context
// done. Bounds only ever tighten, so reading them can only prune more,
// never less.
type parShared struct {
	nodes     atomic.Int64
	bestUB    atomic.Int64
	cancelled atomic.Bool
}

func (p *parShared) lowerBestUB(v int64) {
	for {
		cur := p.bestUB.Load()
		if v >= cur || p.bestUB.CompareAndSwap(cur, v) {
			return
		}
	}
}

type solver struct {
	in      *Instance
	bs      []bitset
	rowCols [][]int

	covered bitset
	trail   []trailEntry
	picked  []int
	cands   [][]candEntry // per-depth branch-ordering scratch

	best   []int
	bestUB int
	nodes  int64
	budget int64

	boundPrunes int64 // subtrees cut against the incumbent
	lbPrunes    int64 // subtrees cut by the independent-rows lower bound

	colMark []int64 // lowerBound scratch: epoch stamps instead of a map
	epoch   int64

	// Cancellation: ctx is polled every ctxCheckNodes entered nodes;
	// when it fires, stopped halts this solver (and, through
	// par.cancelled, every sibling branch) like a budget exhaustion.
	ctx      context.Context
	sinceCtx int64
	stopped  bool

	par *parShared // nil for the serial solver
}

func newSolver(in *Instance, bs []bitset, rowCols [][]int, seed Result, budget int64) *solver {
	return &solver{
		in:      in,
		bs:      bs,
		rowCols: rowCols,
		covered: newBitset(in.NRows),
		picked:  make([]int, 0, 16),
		best:    append([]int(nil), seed.Picked...),
		bestUB:  seed.Cost,
		budget:  budget,
		colMark: make([]int64, len(in.Cols)),
	}
}

// enterNode charges one node against the budget; false means the
// budget is exhausted (or the context cancelled) and the node must not
// be expanded.
func (s *solver) enterNode() bool {
	if s.ctx != nil {
		if s.sinceCtx++; s.sinceCtx >= ctxCheckNodes {
			s.sinceCtx = 0
			if s.ctx.Err() != nil {
				s.stopped = true
				if s.par != nil {
					s.par.cancelled.Store(true)
				}
			}
		}
	}
	if s.stopped {
		return false
	}
	if s.par != nil {
		return !s.par.cancelled.Load() && s.par.nodes.Add(1) < s.budget
	}
	s.nodes++
	return s.nodes < s.budget
}

func (s *solver) overBudget() bool {
	if s.par != nil {
		return s.par.cancelled.Load() || s.par.nodes.Load() >= s.budget
	}
	return s.stopped || s.nodes >= s.budget
}

// pruned reports whether a node of the given cost (or cost plus lower
// bound) cannot improve on the incumbent. The serial solver prunes
// cost >= bestUB, matching the seed node-for-node. A parallel branch
// also reads the shared upper bound but prunes strictly (cost > bound):
// a strict prune never cuts a path to a solution as cheap as any
// incumbent, so what a branch records does not depend on when other
// branches publish their bounds — only the work saved does.
func (s *solver) pruned(cost int) bool {
	if s.par == nil {
		return cost >= s.bestUB
	}
	b := s.bestUB
	if sb := int(s.par.bestUB.Load()); sb < b {
		b = sb
	}
	return cost > b
}

func (s *solver) record(cost int) {
	if cost >= s.bestUB {
		return
	}
	s.bestUB = cost
	s.best = append(s.best[:0], s.picked...)
	if s.par != nil {
		s.par.lowerBestUB(int64(cost))
	}
}

// cover ORs column j into the covered set, logging overwritten words on
// the trail; undo(mark) rolls back to the state before the matching
// cover call. This replaces the seed's per-node bitset.clone().
func (s *solver) cover(j int) (mark int) {
	mark = len(s.trail)
	b := s.bs[j]
	for w, bw := range b {
		if bw&^s.covered[w] != 0 {
			s.trail = append(s.trail, trailEntry{word: int32(w), old: s.covered[w]})
			s.covered[w] |= bw
		}
	}
	return mark
}

func (s *solver) undo(mark int) {
	for i := len(s.trail) - 1; i >= mark; i-- {
		s.covered[s.trail[i].word] = s.trail[i].old
	}
	s.trail = s.trail[:mark]
}

// lowerBound computes a simple independent-rows bound: greedily pick
// uncovered rows no two of which share a column, summing for each the
// cheapest column covering it. Columns are marked used with an epoch
// stamp, so the scratch is reset by bumping one counter.
func (s *solver) lowerBound() int {
	s.epoch++
	lb := 0
	for r := 0; r < s.in.NRows; r++ {
		if s.covered.get(r) {
			continue
		}
		independent := true
		minCost := -1
		for _, j := range s.rowCols[r] {
			if s.colMark[j] == s.epoch {
				independent = false
				break
			}
			if minCost == -1 || s.in.Cols[j].Cost < minCost {
				minCost = s.in.Cols[j].Cost
			}
		}
		if independent && minCost > 0 {
			lb += minCost
			for _, j := range s.rowCols[r] {
				s.colMark[j] = s.epoch
			}
		}
	}
	return lb
}

// selectRow finds the uncovered row with the fewest live candidate
// columns (first one hit wins, stopping early at degree <= 1).
func (s *solver) selectRow() int {
	branchRow := -1
	branchDeg := int(^uint(0) >> 1)
	for r := 0; r < s.in.NRows; r++ {
		if s.covered.get(r) {
			continue
		}
		deg := 0
		for _, j := range s.rowCols[r] {
			if s.covered.anyNew(s.bs[j]) {
				deg++
			}
		}
		if deg < branchDeg {
			branchDeg, branchRow = deg, r
		}
		if deg <= 1 {
			break
		}
	}
	return branchRow
}

// sortedCands orders the columns covering row cheapest-per-new first
// (integer cross-multiplication, as in the seed) into the scratch slice
// for the current depth.
func (s *solver) sortedCands(row int) []candEntry {
	depth := len(s.picked)
	for depth >= len(s.cands) {
		s.cands = append(s.cands, nil)
	}
	cs := s.cands[depth][:0]
	for _, j := range s.rowCols[row] {
		cs = append(cs, candEntry{col: j, nw: s.covered.countNew(s.bs[j])})
	}
	sort.Slice(cs, func(a, b int) bool {
		ca, cb := s.in.Cols[cs[a].col].Cost, s.in.Cols[cs[b].col].Cost
		return int64(ca)*int64(cs[b].nw) < int64(cb)*int64(cs[a].nw)
	})
	s.cands[depth] = cs
	return cs
}

func (s *solver) search(cost int) {
	if !s.enterNode() {
		return
	}
	if s.pruned(cost) {
		s.boundPrunes++
		return
	}
	branchRow := s.selectRow()
	if branchRow == -1 {
		// Full cover found.
		s.record(cost)
		return
	}
	if s.pruned(cost + s.lowerBound()) {
		s.lbPrunes++
		return
	}
	for _, c := range s.sortedCands(branchRow) {
		mark := s.cover(c.col)
		s.picked = append(s.picked, c.col)
		s.search(cost + s.in.Cols[c.col].Cost)
		s.picked = s.picked[:len(s.picked)-1]
		s.undo(mark)
		if s.overBudget() {
			return
		}
	}
}

// searchParallel fans the root-level branches out over a worker pool.
// The root node is expanded once (exactly as the serial solver would),
// its sorted candidate list becomes the fixed branch order, and each
// branch is searched independently: local incumbent reset per branch,
// strict pruning against min(local, shared) bound. The result reduction
// keeps the cheapest branch solution, lowest branch index first, which
// is the same solution the serial depth-first search commits to.
func searchParallel(in *Instance, seed Result, budget int64, workers int, ctx context.Context, rec *stats.Recorder, warmBound int, warmFirst []int) (best []int, bestUB int, nodes int64) {
	bs := in.colBitsets()
	rowCols := rowToCols(in)
	par := &parShared{}
	par.bestUB.Store(int64(seed.Cost))
	if warmBound > 0 && warmBound < seed.Cost {
		// A previous solution beats the greedy seed: publish it so every
		// branch prunes against it from node one. Local incumbents still
		// start at seed.Cost — a branch records only genuine
		// improvements over the seed, keeping the reduction identical to
		// the unseeded run.
		par.bestUB.Store(int64(warmBound))
	}

	root := newSolver(in, bs, rowCols, seed, budget)
	root.par = par
	root.ctx = ctx
	if !root.enterNode() || root.pruned(0) {
		return seed.Picked, seed.Cost, par.nodes.Load()
	}
	branchRow := root.selectRow() // NRows > 0, nothing covered: always a row
	if root.pruned(root.lowerBound()) {
		return seed.Picked, seed.Cost, par.nodes.Load()
	}
	cands := append([]candEntry(nil), root.sortedCands(branchRow)...)
	rec.Add(stats.CtrExactRootBranches, int64(len(cands)))

	type branchResult struct {
		cost   int
		picked []int
		found  bool
	}
	results := make([]branchResult, len(cands))
	if workers > len(cands) {
		workers = len(cands)
	}
	// order is the claim order workers take branches in: warm-led
	// branches (previous picks) first, everything else in canonical
	// order. results stays indexed by the canonical branch index, so the
	// reduction — and therefore the returned solution — is independent
	// of the permutation.
	order := make([]int, 0, len(cands))
	if len(warmFirst) > 0 {
		lead := make(map[int]bool, len(warmFirst))
		for _, j := range warmFirst {
			lead[j] = true
		}
		for i, c := range cands {
			if lead[c.col] {
				order = append(order, i)
			}
		}
		for i, c := range cands {
			if !lead[c.col] {
				order = append(order, i)
			}
		}
	} else {
		for i := range cands {
			order = append(order, i)
		}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec.Do(stats.PhaseCoverExact, func() {
				s := newSolver(in, bs, rowCols, seed, budget)
				s.par = par
				s.ctx = ctx
				defer func() {
					if rec != nil {
						var sh stats.Shard
						sh.Add(stats.CtrExactBoundPrunes, s.boundPrunes)
						sh.Add(stats.CtrExactLBPrunes, s.lbPrunes)
						rec.Merge(&sh)
					}
				}()
				for {
					idx := int(next.Add(1)) - 1
					if idx >= len(cands) || s.overBudget() {
						return
					}
					i := order[idx]
					j := cands[i].col
					// Reset all per-branch state: the local incumbent must
					// depend only on the branch index, not on which worker
					// ran it or what it ran before, or determinism is lost.
					s.covered.zero()
					s.trail = s.trail[:0]
					s.picked = append(s.picked[:0], j)
					s.bestUB = seed.Cost
					s.best = append(s.best[:0], seed.Picked...)
					s.cover(j)
					s.search(in.Cols[j].Cost)
					if s.bestUB < seed.Cost {
						results[i] = branchResult{
							cost:   s.bestUB,
							picked: append([]int(nil), s.best...),
							found:  true,
						}
					}
				}
			})
		}()
	}
	wg.Wait()
	best, bestUB = seed.Picked, seed.Cost
	for i := range results {
		if results[i].found && results[i].cost < bestUB {
			bestUB = results[i].cost
			best = results[i].picked
		}
	}
	return best, bestUB, par.nodes.Load()
}
