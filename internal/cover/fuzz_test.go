package cover

import (
	"reflect"
	"testing"
)

// FuzzExactRoundTrip decodes an instance from fuzz bytes, validates
// it, and round-trips it through Greedy and Exact (serial and
// parallel): every accepted instance must produce valid covers, Exact
// must never cost more than Greedy, the serial solver must agree
// byte-for-byte with the seed oracle, and the parallel solver must
// agree with the serial one.
func FuzzExactRoundTrip(f *testing.F) {
	f.Add(uint8(5), []byte{1, 0x07, 2, 0x18, 1, 0x11})
	f.Add(uint8(3), []byte{1, 0x01, 1, 0x02, 1, 0x04, 2, 0x07})
	f.Add(uint8(9), []byte{3, 0xff, 0x01, 1, 0x0f, 0x00, 2, 0xf0, 0x01})
	f.Fuzz(func(t *testing.T, rowsByte uint8, data []byte) {
		nRows := 1 + int(rowsByte)%12
		in := &Instance{NRows: nRows}
		for len(data) >= 3 && len(in.Cols) < 16 {
			cost := 1 + int(data[0])%9
			mask := uint16(data[1]) | uint16(data[2])<<8
			data = data[3:]
			var rows []int
			for r := 0; r < nRows; r++ {
				if mask&(1<<uint(r)) != 0 {
					rows = append(rows, r)
				}
			}
			in.Cols = append(in.Cols, Column{Cost: cost, Rows: rows})
		}
		if in.Validate() != nil {
			return
		}
		g := Greedy(in)
		if !isCover(in, g.Picked) {
			t.Fatalf("Greedy returned a non-cover: %+v", g)
		}
		e := Exact(in, ExactOptions{})
		if !isCover(in, e.Picked) {
			t.Fatalf("Exact returned a non-cover: %+v", e)
		}
		if e.Cost > g.Cost {
			t.Fatalf("Exact cost %d worse than Greedy %d", e.Cost, g.Cost)
		}
		want := seedExact(in, ExactOptions{})
		sameResult(t, "fuzz exact vs seed", e, want)
		par := Exact(in, ExactOptions{Workers: 3})
		if !reflect.DeepEqual(par.Picked, e.Picked) || par.Cost != e.Cost ||
			par.Optimal != e.Optimal {
			t.Fatalf("parallel Exact diverged: got %+v, want %+v", par, e)
		}
	})
}
