package cover

import (
	"math/bits"
	"sort"
)

// reduction is the outcome of the classical covering-table
// preprocessing: essential columns are forced, dominated rows and
// columns are removed, and the residual instance is handed to search.
type reduction struct {
	forced   []int // original column indices that must be in any optimum
	cost     int   // their total cost
	residual *Instance
	colMap   []int // residual column -> original column index
	rowDrops int   // rows removed by row dominance
	colDrops int   // columns removed by column dominance
}

// reduceInstance applies essential-column, row-dominance and
// column-dominance rules to a fixpoint over dense bitsets: columns as
// row-bitsets for the dominance subset tests, rows as column-bitsets
// for the row-dominance subset tests. The rules are the standard ones
// from two-level minimization (McCluskey) and preserve at least one
// optimal solution. The essential cascade is confluent (forcing one
// essential column never changes another active row's coverage count),
// so this deterministic lowest-row-first schedule reaches the same
// fixpoint as any other processing order.
func reduceInstance(in *Instance) reduction {
	nc := len(in.Cols)
	colBits := in.colBitsets() // owned; pruned in place as rows die
	alive := make([]bool, nc)
	for j := range alive {
		alive[j] = true
	}
	activeRows := newBitset(in.NRows)
	for r := 0; r < in.NRows; r++ {
		activeRows.set(r)
	}
	red := reduction{}
	rowCnt := make([]int32, in.NRows)
	var rowBits bitMatrix // row -> alive-column bitset, rebuilt per pass
	var rcCount []int     // popcounts of rowBits rows

	for changed := true; changed; {
		changed = false

		// Essential columns: an active row covered by exactly one alive
		// column forces that column.
		for r := range rowCnt {
			rowCnt[r] = 0
		}
		for j := 0; j < nc; j++ {
			if !alive[j] {
				continue
			}
			for wi, w := range colBits[j] {
				w &= activeRows[wi]
				for ; w != 0; w &= w - 1 {
					rowCnt[wi*64+bits.TrailingZeros64(w)]++
				}
			}
		}
		for r := 0; r < in.NRows; r++ {
			if !activeRows.get(r) || rowCnt[r] != 1 {
				continue
			}
			forced := -1
			for j := 0; j < nc; j++ {
				if alive[j] && colBits[j].get(r) {
					forced = j
					break
				}
			}
			red.forced = append(red.forced, forced)
			red.cost += in.Cols[forced].Cost
			activeRows.andNotWith(colBits[forced])
			alive[forced] = false
			changed = true
			break // row sets changed; restart scans
		}
		if changed {
			continue
		}

		// Prune columns to active rows; drop empty ones.
		for j := 0; j < nc; j++ {
			if !alive[j] {
				continue
			}
			colBits[j].andWith(activeRows)
			if colBits[j].isEmpty() {
				alive[j] = false
				changed = true
			}
		}
		if changed {
			continue
		}

		// Row dominance: if cols(r) ⊆ cols(s), any cover of r covers s;
		// drop s.
		if rowBits.words == 0 && in.NRows > 0 {
			rowBits = newBitMatrix(in.NRows, nc)
			rcCount = make([]int, in.NRows)
		}
		rowBits.zero()
		for j := 0; j < nc; j++ {
			if !alive[j] {
				continue
			}
			for wi, w := range colBits[j] {
				for ; w != 0; w &= w - 1 {
					rowBits.row(wi*64 + bits.TrailingZeros64(w)).set(j)
				}
			}
		}
		for r := 0; r < in.NRows; r++ {
			rcCount[r] = rowBits.row(r).count()
		}
	rowLoop:
		for r := 0; r < in.NRows; r++ {
			if !activeRows.get(r) {
				continue
			}
			for s := 0; s < in.NRows; s++ {
				if s == r || !activeRows.get(s) {
					continue
				}
				if rowBits.row(s).containsAll(rowBits.row(r)) &&
					(rcCount[r] < rcCount[s] || r < s) {
					activeRows.unset(s)
					red.rowDrops++
					changed = true
					continue rowLoop
				}
			}
		}
		if changed {
			continue
		}

		// Column dominance: drop i when rows(k) ⊇ rows(i) with
		// cost(k) ≤ cost(i) (ties keep the earlier index).
	colLoop:
		for i := 0; i < nc; i++ {
			if !alive[i] {
				continue
			}
			for k := 0; k < nc; k++ {
				if k == i || !alive[k] {
					continue
				}
				if in.Cols[k].Cost <= in.Cols[i].Cost && colBits[k].containsAll(colBits[i]) {
					if in.Cols[i].Cost == in.Cols[k].Cost && i < k &&
						colBits[i].count() == colBits[k].count() {
						continue // symmetric tie: keep the earlier column
					}
					alive[i] = false
					red.colDrops++
					changed = true
					break colLoop
				}
			}
		}
	}

	// Build the residual instance over the surviving rows/columns.
	rowIdx := make([]int, in.NRows)
	nActive := 0
	for r := 0; r < in.NRows; r++ {
		if activeRows.get(r) {
			rowIdx[r] = nActive
			nActive++
		}
	}
	red.residual = &Instance{NRows: nActive}
	for j := 0; j < nc; j++ {
		if !alive[j] {
			continue
		}
		rr := make([]int, 0, colBits[j].count())
		for wi, w := range colBits[j] {
			for ; w != 0; w &= w - 1 {
				rr = append(rr, rowIdx[wi*64+bits.TrailingZeros64(w)])
			}
		}
		red.residual.Cols = append(red.residual.Cols, Column{Cost: in.Cols[j].Cost, Rows: rr})
		red.colMap = append(red.colMap, j)
	}
	sort.Ints(red.forced)
	return red
}
