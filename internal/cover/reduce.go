package cover

import (
	"sort"
)

// reduction is the outcome of the classical covering-table
// preprocessing: essential columns are forced, dominated rows and
// columns are removed, and the residual instance is handed to search.
type reduction struct {
	forced   []int // original column indices that must be in any optimum
	cost     int   // their total cost
	residual *Instance
	colMap   []int // residual column -> original column index
}

// reduceInstance applies essential-column, row-dominance and
// column-dominance rules to a fixpoint. The reductions are the
// standard ones from two-level minimization (McCluskey): they preserve
// at least one optimal solution.
func reduceInstance(in *Instance) reduction {
	type col struct {
		orig int
		cost int
		rows map[int]bool
	}
	cols := make([]*col, 0, len(in.Cols))
	for j, c := range in.Cols {
		rows := make(map[int]bool, len(c.Rows))
		for _, r := range c.Rows {
			rows[r] = true
		}
		cols = append(cols, &col{orig: j, cost: c.Cost, rows: rows})
	}
	activeRows := map[int]bool{}
	for r := 0; r < in.NRows; r++ {
		activeRows[r] = true
	}
	red := reduction{}

	removeCoveredRows := func(c *col) {
		for r := range c.rows {
			delete(activeRows, r)
		}
	}

	for changed := true; changed; {
		changed = false

		// Essential columns: a row covered by exactly one column forces
		// that column.
		for r := range activeRows {
			var last *col
			count := 0
			for _, c := range cols {
				if c.rows[r] {
					count++
					last = c
				}
			}
			if count == 1 {
				red.forced = append(red.forced, last.orig)
				red.cost += last.cost
				removeCoveredRows(last)
				// Drop the column itself.
				for i, c := range cols {
					if c == last {
						cols = append(cols[:i], cols[i+1:]...)
						break
					}
				}
				changed = true
				break // row sets changed; restart scans
			}
		}
		if changed {
			continue
		}

		// Prune columns to active rows; drop empty ones.
		kept := cols[:0]
		for _, c := range cols {
			for r := range c.rows {
				if !activeRows[r] {
					delete(c.rows, r)
				}
			}
			if len(c.rows) > 0 {
				kept = append(kept, c)
			}
		}
		if len(kept) != len(cols) {
			cols = kept
			changed = true
			continue
		}

		// Row dominance: if cols(r) ⊆ cols(s), any cover of r covers s;
		// drop s.
		rowCols := map[int][]int{}
		for ci, c := range cols {
			for r := range c.rows {
				rowCols[r] = append(rowCols[r], ci)
			}
		}
		rows := make([]int, 0, len(activeRows))
		for r := range activeRows {
			rows = append(rows, r)
		}
		sort.Ints(rows)
	rowLoop:
		for _, r := range rows {
			for _, s := range rows {
				if r == s || !activeRows[r] || !activeRows[s] {
					continue
				}
				if subsetInts(rowCols[r], rowCols[s]) && (len(rowCols[r]) < len(rowCols[s]) || r < s) {
					delete(activeRows, s)
					changed = true
					continue rowLoop
				}
			}
		}
		if changed {
			continue
		}

		// Column dominance: drop j when rows(k) ⊇ rows(j) with
		// cost(k) ≤ cost(j) (ties keep the earlier original index).
	colLoop:
		for i := 0; i < len(cols); i++ {
			for k := 0; k < len(cols); k++ {
				if i == k {
					continue
				}
				a, b := cols[i], cols[k]
				if b.cost <= a.cost && subsetRows(a.rows, b.rows) {
					if len(a.rows) == len(b.rows) && a.cost == b.cost && a.orig < b.orig {
						continue // symmetric tie: keep the earlier one
					}
					cols = append(cols[:i], cols[i+1:]...)
					changed = true
					break colLoop
				}
			}
		}
	}

	// Build the residual instance over the surviving rows/columns.
	rowIdx := map[int]int{}
	rows := make([]int, 0, len(activeRows))
	for r := range activeRows {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	for i, r := range rows {
		rowIdx[r] = i
	}
	red.residual = &Instance{NRows: len(rows)}
	for _, c := range cols {
		var rr []int
		for r := range c.rows {
			rr = append(rr, rowIdx[r])
		}
		sort.Ints(rr)
		red.residual.Cols = append(red.residual.Cols, Column{Cost: c.cost, Rows: rr})
		red.colMap = append(red.colMap, c.orig)
	}
	sort.Ints(red.forced)
	return red
}

// subsetInts reports a ⊆ b for the (unordered) column-index lists.
func subsetInts(a, b []int) bool {
	set := make(map[int]bool, len(b))
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

func subsetRows(a, b map[int]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for r := range a {
		if !b[r] {
			return false
		}
	}
	return true
}
