package cover

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReduceEssentialColumns(t *testing.T) {
	// Row 0 is covered only by column 0: it must be forced.
	in := &Instance{
		NRows: 3,
		Cols: []Column{
			{Cost: 5, Rows: []int{0, 1}},
			{Cost: 1, Rows: []int{1, 2}},
			{Cost: 1, Rows: []int{2}},
		},
	}
	red := reduceInstance(in)
	// The fixpoint cascades: forcing column 0 leaves only row 2, where
	// dominance plus essentiality force one of the unit columns too —
	// the whole instance solves by reduction alone.
	if len(red.forced) != 2 || red.forced[0] != 0 || red.cost != 6 || red.residual.NRows != 0 {
		t.Fatalf("forced = %v cost = %d residual rows = %d", red.forced, red.cost, red.residual.NRows)
	}
	res := Exact(in, ExactOptions{})
	if res.Cost != 6 || !res.Optimal {
		t.Fatalf("exact = %+v, want cost 6", res)
	}
}

func TestReduceColumnDominance(t *testing.T) {
	// Column 1 is dominated by column 0 (superset rows, cheaper).
	in := &Instance{
		NRows: 2,
		Cols: []Column{
			{Cost: 1, Rows: []int{0, 1}},
			{Cost: 2, Rows: []int{0}},
			{Cost: 2, Rows: []int{1}},
		},
	}
	red := reduceInstance(in)
	// After dominance the single column is essential: nothing residual.
	if red.residual.NRows != 0 || len(red.forced) != 1 || red.forced[0] != 0 {
		t.Fatalf("reduction = %+v", red)
	}
}

func TestReduceRowDominance(t *testing.T) {
	// cols(row0) = {0} ⊂ cols(row1) = {0,1}: row 1 drops, column 0
	// becomes essential, column 1 empties.
	in := &Instance{
		NRows: 2,
		Cols: []Column{
			{Cost: 3, Rows: []int{0, 1}},
			{Cost: 1, Rows: []int{1}},
		},
	}
	red := reduceInstance(in)
	if len(red.forced) != 1 || red.forced[0] != 0 || red.residual.NRows != 0 {
		t.Fatalf("reduction = %+v", red)
	}
	res := Exact(in, ExactOptions{})
	if res.Cost != 3 || !res.Optimal {
		t.Fatalf("exact = %+v", res)
	}
}

func TestReducePreservesOptimum(t *testing.T) {
	// Dedicated check that reductions alone never change the optimum
	// (Exact vs brute force on instances engineered to trigger all
	// three rules).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 1+rng.Intn(7), 1+rng.Intn(5), 3)
		// Duplicate a column at higher cost (column dominance) and add
		// a singleton row cover (essential after dominance).
		if len(in.Cols) > 0 {
			dup := in.Cols[0]
			in.Cols = append(in.Cols, Column{Cost: dup.Cost + 1, Rows: dup.Rows})
		}
		res := Exact(in, ExactOptions{})
		return res.Optimal && res.Cost == bruteForce(in) && isCover(in, res.Picked)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceSymmetricTieKeepsOne(t *testing.T) {
	// Two identical columns: exactly one must survive the tie-break.
	in := &Instance{
		NRows: 1,
		Cols: []Column{
			{Cost: 2, Rows: []int{0}},
			{Cost: 2, Rows: []int{0}},
		},
	}
	res := Exact(in, ExactOptions{})
	if res.Cost != 2 || len(res.Picked) != 1 || !res.Optimal {
		t.Fatalf("exact = %+v", res)
	}
}
