package cover

// This file carries verbatim copies of the seed (pre-bitset-engine)
// solvers as test oracles: the float-ratio rescan greedy, the
// map-based reductions and the clone-per-node branch and bound. The
// property tests below assert the rewritten engine returns
// byte-identical Results on random instances.

import (
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"
)

// --- seed greedy -----------------------------------------------------

func seedGreedy(in *Instance) Result {
	if in.NRows == 0 {
		return Result{Optimal: true}
	}
	bs := seedColBitsets(in)
	covered := newBitset(in.NRows)
	var picked []int
	remaining := in.NRows
	for remaining > 0 {
		best, bestNew := -1, 0
		var bestRatio float64
		for j := range in.Cols {
			nw := covered.countNew(bs[j])
			if nw == 0 {
				continue
			}
			ratio := float64(in.Cols[j].Cost) / float64(nw)
			if best == -1 || ratio < bestRatio ||
				(ratio == bestRatio && nw > bestNew) {
				best, bestNew, bestRatio = j, nw, ratio
			}
		}
		if best == -1 {
			panic("cover: uncoverable row in seedGreedy")
		}
		picked = append(picked, best)
		covered.orWith(bs[best])
		remaining -= bestNew
	}
	picked = seedEliminateRedundant(in, bs, picked)
	sort.Ints(picked)
	cost := 0
	for _, j := range picked {
		cost += in.Cols[j].Cost
	}
	return Result{Picked: picked, Cost: cost}
}

func seedColBitsets(in *Instance) []bitset {
	bs := make([]bitset, len(in.Cols))
	for j, c := range in.Cols {
		b := newBitset(in.NRows)
		for _, r := range c.Rows {
			b.set(r)
		}
		bs[j] = b
	}
	return bs
}

func seedEliminateRedundant(in *Instance, bs []bitset, picked []int) []int {
	order := append([]int(nil), picked...)
	sort.Slice(order, func(a, b int) bool {
		return in.Cols[order[a]].Cost > in.Cols[order[b]].Cost
	})
	alive := map[int]bool{}
	for _, j := range picked {
		alive[j] = true
	}
	for _, j := range order {
		without := newBitset(in.NRows)
		for k := range alive {
			if k != j && alive[k] {
				without.orWith(bs[k])
			}
		}
		if without.containsAll(bs[j]) {
			alive[j] = false
		}
	}
	out := picked[:0]
	for _, j := range picked {
		if alive[j] {
			out = append(out, j)
		}
	}
	return out
}

// --- seed reductions -------------------------------------------------

func seedReduceInstance(in *Instance) reduction {
	type col struct {
		orig int
		cost int
		rows map[int]bool
	}
	cols := make([]*col, 0, len(in.Cols))
	for j, c := range in.Cols {
		rows := make(map[int]bool, len(c.Rows))
		for _, r := range c.Rows {
			rows[r] = true
		}
		cols = append(cols, &col{orig: j, cost: c.Cost, rows: rows})
	}
	activeRows := map[int]bool{}
	for r := 0; r < in.NRows; r++ {
		activeRows[r] = true
	}
	red := reduction{}

	removeCoveredRows := func(c *col) {
		for r := range c.rows {
			delete(activeRows, r)
		}
	}

	for changed := true; changed; {
		changed = false

		for r := range activeRows {
			var last *col
			count := 0
			for _, c := range cols {
				if c.rows[r] {
					count++
					last = c
				}
			}
			if count == 1 {
				red.forced = append(red.forced, last.orig)
				red.cost += last.cost
				removeCoveredRows(last)
				for i, c := range cols {
					if c == last {
						cols = append(cols[:i], cols[i+1:]...)
						break
					}
				}
				changed = true
				break
			}
		}
		if changed {
			continue
		}

		kept := cols[:0]
		for _, c := range cols {
			for r := range c.rows {
				if !activeRows[r] {
					delete(c.rows, r)
				}
			}
			if len(c.rows) > 0 {
				kept = append(kept, c)
			}
		}
		if len(kept) != len(cols) {
			cols = kept
			changed = true
			continue
		}

		rowCols := map[int][]int{}
		for ci, c := range cols {
			for r := range c.rows {
				rowCols[r] = append(rowCols[r], ci)
			}
		}
		rows := make([]int, 0, len(activeRows))
		for r := range activeRows {
			rows = append(rows, r)
		}
		sort.Ints(rows)
	rowLoop:
		for _, r := range rows {
			for _, s := range rows {
				if r == s || !activeRows[r] || !activeRows[s] {
					continue
				}
				if seedSubsetInts(rowCols[r], rowCols[s]) && (len(rowCols[r]) < len(rowCols[s]) || r < s) {
					delete(activeRows, s)
					changed = true
					continue rowLoop
				}
			}
		}
		if changed {
			continue
		}

	colLoop:
		for i := 0; i < len(cols); i++ {
			for k := 0; k < len(cols); k++ {
				if i == k {
					continue
				}
				a, b := cols[i], cols[k]
				if b.cost <= a.cost && seedSubsetRows(a.rows, b.rows) {
					if len(a.rows) == len(b.rows) && a.cost == b.cost && a.orig < b.orig {
						continue
					}
					cols = append(cols[:i], cols[i+1:]...)
					changed = true
					break colLoop
				}
			}
		}
	}

	rowIdx := map[int]int{}
	rows := make([]int, 0, len(activeRows))
	for r := range activeRows {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	for i, r := range rows {
		rowIdx[r] = i
	}
	red.residual = &Instance{NRows: len(rows)}
	for _, c := range cols {
		var rr []int
		for r := range c.rows {
			rr = append(rr, rowIdx[r])
		}
		sort.Ints(rr)
		red.residual.Cols = append(red.residual.Cols, Column{Cost: c.cost, Rows: rr})
		red.colMap = append(red.colMap, c.orig)
	}
	sort.Ints(red.forced)
	return red
}

func seedSubsetInts(a, b []int) bool {
	set := make(map[int]bool, len(b))
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

func seedSubsetRows(a, b map[int]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for r := range a {
		if !b[r] {
			return false
		}
	}
	return true
}

// --- seed exact ------------------------------------------------------

func seedExact(in *Instance, opts ExactOptions) Result {
	if in.NRows == 0 {
		return Result{Optimal: true}
	}
	budget := opts.MaxNodes
	if budget == 0 {
		budget = DefaultMaxNodes
	}
	red := seedReduceInstance(in)
	picked := append([]int(nil), red.forced...)
	cost := red.cost
	if red.residual.NRows == 0 {
		sort.Ints(picked)
		return Result{Picked: picked, Cost: cost, Optimal: true}
	}
	seed := seedGreedy(red.residual)
	s := &seedSolver{
		in:      red.residual,
		bs:      seedColBitsets(red.residual),
		best:    append([]int(nil), seed.Picked...),
		bestUB:  seed.Cost,
		budget:  budget,
		rowCols: rowToCols(red.residual),
	}
	covered := newBitset(red.residual.NRows)
	s.search(covered, nil, 0)
	for _, j := range s.best {
		picked = append(picked, red.colMap[j])
	}
	sort.Ints(picked)
	return Result{
		Picked:  picked,
		Cost:    cost + s.bestUB,
		Optimal: s.nodes < s.budget,
		Nodes:   s.nodes,
	}
}

type seedSolver struct {
	in      *Instance
	bs      []bitset
	rowCols [][]int
	best    []int
	bestUB  int
	nodes   int64
	budget  int64
}

func (s *seedSolver) lowerBound(covered bitset) int {
	usedCols := map[int]bool{}
	lb := 0
	for r := 0; r < s.in.NRows; r++ {
		if covered.get(r) {
			continue
		}
		independent := true
		minCost := -1
		for _, j := range s.rowCols[r] {
			if usedCols[j] {
				independent = false
				break
			}
			if minCost == -1 || s.in.Cols[j].Cost < minCost {
				minCost = s.in.Cols[j].Cost
			}
		}
		if independent && minCost > 0 {
			lb += minCost
			for _, j := range s.rowCols[r] {
				usedCols[j] = true
			}
		}
	}
	return lb
}

func (s *seedSolver) search(covered bitset, picked []int, cost int) {
	s.nodes++
	if s.nodes >= s.budget {
		return
	}
	if cost >= s.bestUB {
		return
	}
	branchRow := -1
	branchDeg := int(^uint(0) >> 1)
	for r := 0; r < s.in.NRows; r++ {
		if covered.get(r) {
			continue
		}
		deg := 0
		for _, j := range s.rowCols[r] {
			if covered.countNew(s.bs[j]) > 0 {
				deg++
			}
		}
		if deg < branchDeg {
			branchDeg, branchRow = deg, r
		}
		if deg <= 1 {
			break
		}
	}
	if branchRow == -1 {
		if cost < s.bestUB {
			s.bestUB = cost
			s.best = append(s.best[:0], picked...)
		}
		return
	}
	if cost+s.lowerBound(covered) >= s.bestUB {
		return
	}
	cands := make([]int, 0, len(s.rowCols[branchRow]))
	cands = append(cands, s.rowCols[branchRow]...)
	sort.Slice(cands, func(a, b int) bool {
		na := covered.countNew(s.bs[cands[a]])
		nb := covered.countNew(s.bs[cands[b]])
		ca, cb := s.in.Cols[cands[a]].Cost, s.in.Cols[cands[b]].Cost
		return ca*nb < cb*na
	})
	for _, j := range cands {
		nc := covered.clone()
		nc.orWith(s.bs[j])
		s.search(nc, append(picked, j), cost+s.in.Cols[j].Cost)
		if s.nodes >= s.budget {
			return
		}
	}
}

// --- properties ------------------------------------------------------

func sameResult(t *testing.T, what string, got, want Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Picked, want.Picked) || got.Cost != want.Cost ||
		got.Optimal != want.Optimal || got.Nodes != want.Nodes {
		t.Fatalf("%s: got %+v, want %+v", what, got, want)
	}
}

// TestGreedyMatchesSeed: the lazy-heap greedy returns byte-identical
// Results to the seed full-rescan float-ratio greedy.
func TestGreedyMatchesSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 400; trial++ {
		nRows := 1 + rng.Intn(40)
		nCols := 1 + rng.Intn(50)
		maxCost := 1 + rng.Intn(20)
		in := randomInstance(rng, nRows, nCols, maxCost)
		got := Greedy(in)
		want := seedGreedy(in)
		if !reflect.DeepEqual(got.Picked, want.Picked) || got.Cost != want.Cost {
			t.Fatalf("trial %d (%dx%d): got %+v, want %+v", trial, nRows, nCols, got, want)
		}
	}
}

// TestReduceMatchesSeed: the bitset reductions land on the same forced
// set, cost and residual as the seed map-based ones.
func TestReduceMatchesSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		nRows := 1 + rng.Intn(25)
		nCols := 1 + rng.Intn(30)
		in := randomInstance(rng, nRows, nCols, 1+rng.Intn(12))
		got := reduceInstance(in)
		want := seedReduceInstance(in)
		if !reflect.DeepEqual(got.forced, want.forced) || got.cost != want.cost {
			t.Fatalf("trial %d: forced %v cost %d, want %v cost %d",
				trial, got.forced, got.cost, want.forced, want.cost)
		}
		if !reflect.DeepEqual(got.colMap, want.colMap) {
			t.Fatalf("trial %d: colMap %v, want %v", trial, got.colMap, want.colMap)
		}
		if !reflect.DeepEqual(got.residual, want.residual) {
			t.Fatalf("trial %d: residual %+v, want %+v", trial, got.residual, want.residual)
		}
	}
}

// TestExactMatchesSeed: the trail-based serial branch and bound visits
// the seed solver's nodes exactly and returns byte-identical Results,
// including under tight node budgets.
func TestExactMatchesSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		nRows := 1 + rng.Intn(20)
		nCols := 1 + rng.Intn(25)
		in := randomInstance(rng, nRows, nCols, 1+rng.Intn(10))
		opts := ExactOptions{}
		if trial%4 == 3 {
			opts.MaxNodes = int64(1 + rng.Intn(50)) // exercise budget exhaustion
		}
		got := Exact(in, opts)
		want := seedExact(in, opts)
		sameResult(t, "exact", got, want)
	}
}

// TestExactWorkersDeterministic: within budget, the parallel solver
// returns the serial Picked/Cost/Optimal for every worker count.
func TestExactWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	workerCounts := []int{1, 2, 4, runtime.NumCPU()}
	for trial := 0; trial < 120; trial++ {
		nRows := 1 + rng.Intn(20)
		nCols := 1 + rng.Intn(25)
		in := randomInstance(rng, nRows, nCols, 1+rng.Intn(10))
		want := Exact(in, ExactOptions{Workers: 1})
		for _, w := range workerCounts {
			got := Exact(in, ExactOptions{Workers: w})
			if !reflect.DeepEqual(got.Picked, want.Picked) || got.Cost != want.Cost ||
				got.Optimal != want.Optimal {
				t.Fatalf("trial %d workers=%d: got %+v, want %+v", trial, w, got, want)
			}
		}
	}
}

// TestGreedyIntegerTieBreak pins the cross-multiplied comparator on a
// ratio tie the float path also sees as equal: cost 2 / 6 rows beats
// cost 1 / 3 rows (same ratio, more new rows).
func TestGreedyIntegerTieBreak(t *testing.T) {
	in := &Instance{
		NRows: 6,
		Cols: []Column{
			{Cost: 1, Rows: []int{0, 1, 2}},
			{Cost: 2, Rows: []int{0, 1, 2, 3, 4, 5}},
		},
	}
	mustValidate(t, in)
	res := Greedy(in)
	if !reflect.DeepEqual(res.Picked, []int{1}) || res.Cost != 2 {
		t.Fatalf("tie-break: got %+v, want Picked=[1] Cost=2", res)
	}
}
