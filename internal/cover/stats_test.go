package cover

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/stats"
)

// TestExactStatsDeterministic: the deterministic counter section of an
// instrumented exact solve (reductions, greedy seed) must not depend on
// the worker count; the sched section (nodes, prunes) may.
func TestExactStatsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 12+rng.Intn(10), 16+rng.Intn(12), 4)
		mustValidate(t, in)
		serialRec := stats.New()
		serial := Exact(in, ExactOptions{Workers: 1, Stats: serialRec})
		for _, w := range []int{2, 4, 8} {
			parRec := stats.New()
			par := Exact(in, ExactOptions{Workers: w, Stats: parRec})
			if par.Cost != serial.Cost || !reflect.DeepEqual(par.Picked, serial.Picked) {
				t.Fatalf("trial %d workers %d: result differs", trial, w)
			}
			sc, pc := serialRec.Report("").Counters, parRec.Report("").Counters
			if !reflect.DeepEqual(sc, pc) {
				t.Fatalf("trial %d workers %d: deterministic counters differ:\nserial   %v\nparallel %v",
					trial, w, sc, pc)
			}
		}
	}
}

// TestGreedyStatsCounted sanity-checks the greedy counters: picks match
// the pre-elimination selection size and the redundant-drop count is
// the difference to the final cover.
func TestGreedyStatsCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng, 10+rng.Intn(20), 12+rng.Intn(20), 3)
		mustValidate(t, in)
		rec := stats.New()
		res := GreedyStats(in, rec)
		picks := rec.Get(stats.CtrGreedyPicks)
		drops := rec.Get(stats.CtrGreedyRedundant)
		if picks-drops != int64(len(res.Picked)) {
			t.Fatalf("trial %d: picks %d - redundant %d != %d final columns",
				trial, picks, drops, len(res.Picked))
		}
		if picks == 0 {
			t.Fatalf("trial %d: no greedy picks counted", trial)
		}
	}
}

// TestExactStatsRecorded checks the exact solver's phase and counter
// wiring on an instance forced through both reduction and search.
func TestExactStatsRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	in := randomInstance(rng, 24, 30, 4)
	mustValidate(t, in)
	rec := stats.New()
	res := Exact(in, ExactOptions{Workers: 1, Stats: rec})
	if !res.Optimal {
		t.Fatal("expected optimal solve")
	}
	rep := rec.Report("")
	phases := map[string]bool{}
	for _, p := range rep.Phases {
		phases[p.Phase] = true
	}
	for _, want := range []string{"cover.reduce", "cover.greedy"} {
		if !phases[want] {
			t.Fatalf("phases %v missing %q", rep.Phases, want)
		}
	}
	// Nodes land in sched: the parallel search explores a schedule-
	// dependent number of them.
	if res.Nodes > 0 && rep.Sched["cover.exact_nodes"] != res.Nodes {
		t.Fatalf("sched nodes %d != result nodes %d", rep.Sched["cover.exact_nodes"], res.Nodes)
	}
}
