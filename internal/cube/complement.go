package cube

import (
	"repro/internal/bitvec"
)

// Intersects reports whether two cubes share a point: their bound
// variables must agree wherever both bind.
func Intersects(a, b Cube) bool {
	return (a.Val^b.Val)&a.Care&b.Care == 0
}

// CofactorLiteral restricts the cube to the half-space x_i = v and
// reports whether the restriction is non-empty. The variable is removed
// from the result's bound set (standard cofactor convention).
func (c Cube) CofactorLiteral(n, i int, v uint64) (Cube, bool) {
	m := bitvec.VarMask(n, i)
	if c.Care&m != 0 {
		bound := uint64(0)
		if c.Val&m != 0 {
			bound = 1
		}
		if bound != v&1 {
			return Cube{}, false
		}
	}
	return Cube{Care: c.Care &^ m, Val: c.Val &^ m}, true
}

// Complement computes a cover of the complement of the given cover over
// B^n by the classical Shannon/unate recursion: pick the most frequent
// bound variable, complement both cofactors, and reattach the literals.
// The result is a valid (not necessarily minimal) cover of ¬cover.
func Complement(n int, cover []Cube) []Cube {
	// Terminal cases.
	for _, c := range cover {
		if c.Care == 0 {
			return nil // tautology: empty complement
		}
	}
	if len(cover) == 0 {
		return []Cube{{}} // complement of 0 is the universe
	}
	if len(cover) == 1 {
		return complementOne(n, cover[0])
	}
	v := splitVar(n, cover)
	m := bitvec.VarMask(n, v)

	var lo, hi []Cube
	for _, c := range cover {
		if cc, ok := c.CofactorLiteral(n, v, 0); ok {
			lo = append(lo, cc)
		}
		if cc, ok := c.CofactorLiteral(n, v, 1); ok {
			hi = append(hi, cc)
		}
	}
	out := make([]Cube, 0, len(lo)+len(hi))
	for _, c := range Complement(n, lo) {
		out = append(out, Cube{Care: c.Care | m, Val: c.Val &^ m})
	}
	for _, c := range Complement(n, hi) {
		out = append(out, Cube{Care: c.Care | m, Val: c.Val | m})
	}
	return out
}

// complementOne expands ¬(l_1·l_2·…·l_k) as the disjoint cover
// ¬l_1 + l_1¬l_2 + l_1l_2¬l_3 + ….
func complementOne(n int, c Cube) []Cube {
	var out []Cube
	var prefixCare, prefixVal uint64
	for _, v := range bitvec.Vars(c.Care, n) {
		m := bitvec.VarMask(n, v)
		out = append(out, Cube{
			Care: prefixCare | m,
			Val:  prefixVal | (^c.Val & m),
		})
		prefixCare |= m
		prefixVal |= c.Val & m
	}
	return out
}

// splitVar picks the most frequently bound variable of the cover (the
// classical binate/most-active selection keeps the recursion shallow).
func splitVar(n int, cover []Cube) int {
	counts := make([]int, n)
	for _, c := range cover {
		for _, v := range bitvec.Vars(c.Care, n) {
			counts[v]++
		}
	}
	best, bestCount := 0, -1
	for v, ct := range counts {
		if ct > bestCount {
			best, bestCount = v, ct
		}
	}
	return best
}

// CoverContains reports whether the cover contains point p.
func CoverContains(cover []Cube, p uint64) bool {
	for _, c := range cover {
		if c.Contains(p) {
			return true
		}
	}
	return false
}
