package cube

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
)

func randomCover(rng *rand.Rand, n, count int) []Cube {
	var cover []Cube
	for i := 0; i < count; i++ {
		care := rng.Uint64() & bitvec.SpaceMask(n)
		val := rng.Uint64() & care
		cover = append(cover, New(care, val))
	}
	return cover
}

func TestComplementPointwise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		cover := randomCover(rng, n, rng.Intn(6))
		comp := Complement(n, cover)
		for p := uint64(0); p < 1<<uint(n); p++ {
			if CoverContains(cover, p) == CoverContains(comp, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestComplementTerminals(t *testing.T) {
	n := 4
	// Empty cover → universe.
	comp := Complement(n, nil)
	if len(comp) != 1 || comp[0].Care != 0 {
		t.Fatalf("complement of empty = %v", comp)
	}
	// Tautology → empty.
	if got := Complement(n, []Cube{{}}); len(got) != 0 {
		t.Fatalf("complement of universe = %v", got)
	}
	// Single cube x0·x̄2: complement is x̄0 + x0·x2.
	c := New(bitvec.MaskOf(n, 0, 2), bitvec.MaskOf(n, 0))
	comp = Complement(n, []Cube{c})
	if len(comp) != 2 {
		t.Fatalf("single-cube complement = %v", comp)
	}
	for p := uint64(0); p < 16; p++ {
		if c.Contains(p) == CoverContains(comp, p) {
			t.Fatalf("single-cube complement wrong at %04b", p)
		}
	}
}

func TestComplementOneIsDisjoint(t *testing.T) {
	n := 6
	c := New(bitvec.MaskOf(n, 0, 2, 5), bitvec.MaskOf(n, 2))
	comp := complementOne(n, c)
	if len(comp) != 3 {
		t.Fatalf("len = %d, want one cube per literal", len(comp))
	}
	for i := range comp {
		for j := i + 1; j < len(comp); j++ {
			if Intersects(comp[i], comp[j]) {
				t.Fatalf("complementOne cubes %d,%d overlap", i, j)
			}
		}
	}
}

func TestIntersects(t *testing.T) {
	n := 4
	a := New(bitvec.MaskOf(n, 0), bitvec.MaskOf(n, 0)) // x0
	b := New(bitvec.MaskOf(n, 0), 0)                   // x̄0
	c := New(bitvec.MaskOf(n, 1), bitvec.MaskOf(n, 1)) // x1
	if Intersects(a, b) {
		t.Fatal("x0 and x̄0 intersect")
	}
	if !Intersects(a, c) || !Intersects(b, c) {
		t.Fatal("orthogonal cubes must intersect")
	}
	if !Intersects(a, Cube{}) {
		t.Fatal("universe intersects everything")
	}
}

func TestIntersectsMatchesPointSets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		cover := randomCover(rng, n, 2)
		a, b := cover[0], cover[1]
		shared := false
		for p := uint64(0); p < 16; p++ {
			if a.Contains(p) && b.Contains(p) {
				shared = true
				break
			}
		}
		return Intersects(a, b) == shared
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCofactorLiteral(t *testing.T) {
	n := 4
	c := New(bitvec.MaskOf(n, 0, 1), bitvec.MaskOf(n, 0)) // x0·x̄1
	if _, ok := c.CofactorLiteral(n, 0, 0); ok {
		t.Fatal("conflicting cofactor must be empty")
	}
	cc, ok := c.CofactorLiteral(n, 0, 1)
	if !ok || cc.Care != bitvec.MaskOf(n, 1) || cc.Val != 0 {
		t.Fatalf("cofactor = %v", cc)
	}
	// Unbound variable: unchanged except nothing to drop.
	cc, ok = c.CofactorLiteral(n, 3, 1)
	if !ok || cc.Care != c.Care {
		t.Fatalf("free-var cofactor = %v", cc)
	}
}
