// Package cube implements classical cubes (products of literals), the
// two-level building block that SPP forms generalize. A cube is the
// special pseudocube whose non-canonical columns are constant (paper §2).
package cube

import (
	"fmt"
	"strings"

	"repro/internal/bitvec"
)

// Cube is a product of literals over B^n: the variables in Care are
// bound, with values given by the corresponding bits of Val (Val ⊆
// Care). The empty cube (Care == 0) is the constant-1 product covering
// all of B^n.
type Cube struct {
	Care uint64
	Val  uint64
}

// New builds a cube and normalizes Val to the Care mask.
func New(care, val uint64) Cube {
	return Cube{Care: care, Val: val & care}
}

// FromPoint returns the 0-degree cube containing exactly p.
func FromPoint(n int, p uint64) Cube {
	return Cube{Care: bitvec.SpaceMask(n), Val: p}
}

// Literals returns the number of literals in the product.
func (c Cube) Literals() int { return bitvec.OnesCount(c.Care) }

// Degree returns the cube's degree m (it covers 2^m points of B^n).
func (c Cube) Degree(n int) int { return n - c.Literals() }

// Contains reports whether point p satisfies the product.
func (c Cube) Contains(p uint64) bool { return p&c.Care == c.Val }

// Covers reports whether d's point set is a subset of c's.
func (c Cube) Covers(d Cube) bool {
	return c.Care&d.Care == c.Care && d.Val&c.Care == c.Val
}

// MergeDistance1 attempts the Quine–McCluskey merge: if c and d bind the
// same variables and differ in exactly one value bit, it returns the
// merged cube (that bit freed) and true.
func MergeDistance1(c, d Cube) (Cube, bool) {
	if c.Care != d.Care {
		return Cube{}, false
	}
	diff := c.Val ^ d.Val
	if diff == 0 || diff&(diff-1) != 0 {
		return Cube{}, false
	}
	return Cube{Care: c.Care &^ diff, Val: c.Val &^ diff}, true
}

// Points enumerates the cube's point set over B^n. The caller owns the
// returned slice.
func (c Cube) Points(n int) []uint64 {
	free := bitvec.SpaceMask(n) &^ c.Care
	out := make([]uint64, 0, 1<<uint(bitvec.OnesCount(free)))
	// Enumerate subsets of the free mask with the standard trick.
	sub := uint64(0)
	for {
		out = append(out, c.Val|sub)
		sub = (sub - free) & free
		if sub == 0 {
			break
		}
	}
	return out
}

// String renders the product, e.g. "x0·x̄2·x5", or "1" for the empty cube.
func (c Cube) String() string { return c.Format(64) }

// Format renders the product over an n-variable space.
func (c Cube) Format(n int) string {
	if c.Care == 0 {
		return "1"
	}
	var sb strings.Builder
	first := true
	for i := 0; i < n; i++ {
		m := bitvec.VarMask(n, i)
		if c.Care&m == 0 {
			continue
		}
		if !first {
			sb.WriteString("·")
		}
		first = false
		if c.Val&m == 0 {
			fmt.Fprintf(&sb, "x̄%d", i)
		} else {
			fmt.Fprintf(&sb, "x%d", i)
		}
	}
	return sb.String()
}

// Form is a sum of products over B^n.
type Form struct {
	N     int
	Cubes []Cube
}

// Literals returns the total literal count of the form (the paper's #L
// metric for SP expressions).
func (f Form) Literals() int {
	total := 0
	for _, c := range f.Cubes {
		total += c.Literals()
	}
	return total
}

// Eval reports whether the form evaluates to 1 on p.
func (f Form) Eval(p uint64) bool {
	for _, c := range f.Cubes {
		if c.Contains(p) {
			return true
		}
	}
	return false
}

// String renders the form as a sum of products.
func (f Form) String() string {
	if len(f.Cubes) == 0 {
		return "0"
	}
	parts := make([]string, len(f.Cubes))
	for i, c := range f.Cubes {
		parts[i] = c.Format(f.N)
	}
	return strings.Join(parts, " + ")
}
