package cube

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
)

func TestFromPointContains(t *testing.T) {
	n := 5
	c := FromPoint(n, 0b10110)
	if !c.Contains(0b10110) {
		t.Fatal("point cube must contain its point")
	}
	if c.Contains(0b10111) {
		t.Fatal("point cube must not contain other points")
	}
	if c.Literals() != n || c.Degree(n) != 0 {
		t.Fatalf("literals=%d degree=%d", c.Literals(), c.Degree(n))
	}
}

func TestMergeDistance1(t *testing.T) {
	n := 4
	a := FromPoint(n, 0b0110)
	b := FromPoint(n, 0b0100)
	m, ok := MergeDistance1(a, b)
	if !ok {
		t.Fatal("distance-1 points must merge")
	}
	if m.Literals() != 3 || !m.Contains(0b0110) || !m.Contains(0b0100) {
		t.Fatalf("merged cube wrong: %v", m)
	}
	if _, ok := MergeDistance1(a, FromPoint(n, 0b0101)); ok {
		t.Fatal("distance-2 points must not merge")
	}
	if _, ok := MergeDistance1(a, a); ok {
		t.Fatal("identical cubes must not merge")
	}
	// Different care masks never merge.
	c := New(bitvec.MaskOf(n, 0, 1), 0)
	d := New(bitvec.MaskOf(n, 0, 2), 0)
	if _, ok := MergeDistance1(c, d); ok {
		t.Fatal("different care masks must not merge")
	}
}

func TestPointsEnumeration(t *testing.T) {
	n := 4
	c := New(bitvec.MaskOf(n, 0, 3), bitvec.MaskOf(n, 0))
	pts := c.Points(n)
	if len(pts) != 4 {
		t.Fatalf("len(points) = %d, want 4", len(pts))
	}
	for _, p := range pts {
		if !c.Contains(p) {
			t.Fatalf("enumerated point %b not contained", p)
		}
	}
	// Degenerate: full-space cube.
	if got := len(Cube{}.Points(2)); got != 4 {
		t.Fatalf("empty cube over B^2 has %d points", got)
	}
}

func TestCovers(t *testing.T) {
	n := 4
	big := New(bitvec.MaskOf(n, 0), bitvec.MaskOf(n, 0))      // x0
	small := New(bitvec.MaskOf(n, 0, 2), bitvec.MaskOf(n, 0)) // x0·x̄2
	if !big.Covers(small) {
		t.Fatal("x0 must cover x0·x̄2")
	}
	if small.Covers(big) {
		t.Fatal("x0·x̄2 must not cover x0")
	}
	other := New(bitvec.MaskOf(n, 0), 0) // x̄0
	if big.Covers(other) || other.Covers(big) {
		t.Fatal("x0 and x̄0 are incomparable")
	}
}

func TestCoversMatchesPointSets(t *testing.T) {
	n := 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Cube {
			care := rng.Uint64() & bitvec.SpaceMask(n)
			val := rng.Uint64() & care
			return New(care, val)
		}
		a, b := mk(), mk()
		subset := true
		for p := uint64(0); p < 1<<uint(n); p++ {
			if b.Contains(p) && !a.Contains(p) {
				subset = false
				break
			}
		}
		return a.Covers(b) == subset
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFormEvalAndLiterals(t *testing.T) {
	n := 3
	f := Form{N: n, Cubes: []Cube{
		New(bitvec.MaskOf(n, 0, 1), bitvec.MaskOf(n, 0, 1)), // x0·x1
		New(bitvec.MaskOf(n, 2), 0),                         // x̄2
	}}
	if f.Literals() != 3 {
		t.Fatalf("Literals = %d", f.Literals())
	}
	if !f.Eval(0b110) || !f.Eval(0b000) || f.Eval(0b011) {
		t.Fatal("Eval wrong")
	}
	if (Form{N: n}).Eval(0) {
		t.Fatal("empty form is constant 0")
	}
}

func TestFormat(t *testing.T) {
	n := 4
	c := New(bitvec.MaskOf(n, 0, 2), bitvec.MaskOf(n, 0))
	if got := c.Format(n); got != "x0·x̄2" {
		t.Fatalf("Format = %q", got)
	}
	if got := (Cube{}).Format(n); got != "1" {
		t.Fatalf("empty cube Format = %q", got)
	}
}
