// Package dsop implements Disjoint Sum-of-Products (DSOP) extraction:
// an OR of products in which every pair of products is disjoint (no
// minterm is covered twice), the form Bernasconi, Ciriani, Luccio and
// Pagli study in "Compact DSOP and partial DSOP Forms". Disjointness
// is what makes the OR a free EXOR — a DSOP is simultaneously a valid
// ESOP — so the form is the bridge between the repo's SOP and AND-EXOR
// backends and a standard starting point for spectral methods.
//
// Cost model: literal count (the paper family's #L), like every other
// backend in internal/engine. The extraction is heuristic, not
// minimum: cubes are the 1-paths of a reduced ordered BDD of the
// function under the natural variable order (two distinct 1-paths
// disagree on the decision variable where they diverge, so path cubes
// are pairwise disjoint by construction), followed by a distance-1
// remerge pass — the union of two disjoint cubes differing in one
// literal is a single cube covering exactly their union, so merging
// preserves both disjointness and the covered set while removing
// 2(k-1) literals per merge. Work is O(paths · n) plus the BDD build;
// the path count is capped (Options.MaxCubes) because a diagram can
// hold exponentially many 1-paths.
package dsop

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bdd"
	"repro/internal/bfunc"
	"repro/internal/bitvec"
	"repro/internal/cube"
)

// ErrTooLarge reports that the function's BDD holds more 1-paths than
// Options.MaxCubes: the extraction was abandoned, not truncated.
var ErrTooLarge = errors.New("dsop: 1-path count exceeds the cube budget")

// DefaultMaxCubes bounds the extracted cube count when Options.MaxCubes
// is zero.
const DefaultMaxCubes = 1 << 16

// Options tune the extraction.
type Options struct {
	// MaxCubes caps the number of BDD 1-paths enumerated; exceeding it
	// fails with ErrTooLarge (0 = DefaultMaxCubes).
	MaxCubes int
	// Ctx, when non-nil, cancels the enumeration between paths.
	Ctx context.Context
}

// Result is an extracted DSOP form.
type Result struct {
	Form cube.Form
	// BDDNodes is the diagram size the paths were read from.
	BDDNodes int
	// Merged counts distance-1 cube merges applied after extraction.
	Merged int
}

// Literals returns the form's literal count (#L).
func (r *Result) Literals() int { return r.Form.Literals() }

// Minimize extracts a DSOP of the completely specified function f.
// Don't-care sets are rejected: a DSOP of an incompletely specified
// function would additionally choose DC assignments, which this
// extraction does not attempt.
func Minimize(f *bfunc.Func, opts Options) (*Result, error) {
	if len(f.DC()) > 0 {
		return nil, errors.New("dsop: don't-care sets unsupported; specify the function")
	}
	maxCubes := opts.MaxCubes
	if maxCubes <= 0 {
		maxCubes = DefaultMaxCubes
	}
	n := f.N()
	res := &Result{Form: cube.Form{N: n}}
	if f.OnCount() == 0 {
		return res, nil
	}
	if f.IsConstantOne() {
		res.Form.Cubes = []cube.Cube{{}}
		return res, nil
	}

	m := bdd.New(n)
	root := m.FromFunc(f)
	res.BDDNodes = m.NodeCount(root)

	// Enumerate 1-paths iteratively (explicit stack: node plus the cube
	// accumulated so far). Levels skipped between a node and its parent
	// stay absent from the cube's care mask — the path does not
	// constrain them.
	type frame struct {
		node bdd.Node
		c    cube.Cube
	}
	stack := []frame{{node: root}}
	var cubes []cube.Cube
	steps := 0
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if steps++; steps&1023 == 0 && opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		switch fr.node {
		case bdd.Const0:
			continue
		case bdd.Const1:
			if len(cubes) >= maxCubes {
				return nil, fmt.Errorf("%w (cap %d)", ErrTooLarge, maxCubes)
			}
			cubes = append(cubes, fr.c)
			continue
		}
		level, lo, hi := m.Branches(fr.node)
		mask := bitvec.VarMask(n, level)
		stack = append(stack,
			frame{node: lo, c: cube.New(fr.c.Care|mask, fr.c.Val)},
			frame{node: hi, c: cube.New(fr.c.Care|mask, fr.c.Val|mask)},
		)
	}

	res.Form.Cubes, res.Merged = remerge(cubes)
	return res, nil
}

// remerge greedily applies distance-1 merges until a fixpoint. Both
// inputs of a merge are disjoint from every other cube and their union
// is exactly the merged cube, so the form stays a DSOP of the same
// function throughout. The pairwise scan is quadratic per pass, which
// the MaxCubes cap keeps affordable.
func remerge(cubes []cube.Cube) ([]cube.Cube, int) {
	merged := 0
	for {
		again := false
		for i := 0; i < len(cubes); i++ {
			for j := i + 1; j < len(cubes); j++ {
				m, ok := cube.MergeDistance1(cubes[i], cubes[j])
				if !ok {
					continue
				}
				cubes[i] = m
				cubes[j] = cubes[len(cubes)-1]
				cubes = cubes[:len(cubes)-1]
				merged++
				again = true
				j--
			}
		}
		if !again {
			break
		}
	}
	sortCubes(cubes)
	return cubes, merged
}

// sortCubes orders deterministically by (Care, Val) so the extracted
// form is independent of enumeration order.
func sortCubes(cs []cube.Cube) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && less(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func less(a, b cube.Cube) bool {
	if a.Care != b.Care {
		return a.Care < b.Care
	}
	return a.Val < b.Val
}
