package dsop

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bfunc"
	"repro/internal/cube"
)

func randomFunc(rng *rand.Rand, n, onCount int) *bfunc.Func {
	size := 1 << uint(n)
	perm := rng.Perm(size)
	on := make([]uint64, 0, onCount)
	for _, p := range perm[:onCount] {
		on = append(on, uint64(p))
	}
	return bfunc.New(n, on)
}

// TestEquivalenceAndDisjointness checks the two defining properties on
// random functions: the form evaluates identically to f everywhere,
// and no two cubes share a minterm.
func TestEquivalenceAndDisjointness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(7)
		size := 1 << uint(n)
		f := randomFunc(rng, n, rng.Intn(size+1))
		res, err := Minimize(f, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for p := uint64(0); p < uint64(size); p++ {
			if res.Form.Eval(p) != f.IsOn(p) {
				t.Fatalf("n=%d iter=%d: form disagrees with f at %d\n  form=%v", n, iter, p, res.Form)
			}
			covered := 0
			for _, c := range res.Form.Cubes {
				if c.Contains(p) {
					covered++
				}
			}
			if covered > 1 {
				t.Fatalf("n=%d iter=%d: point %d covered %d times — not disjoint\n  form=%v",
					n, iter, p, covered, res.Form)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 50; iter++ {
		n := 3 + rng.Intn(6)
		f := randomFunc(rng, n, rng.Intn(1<<uint(n)))
		a, err := Minimize(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Minimize(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Form.String() != b.Form.String() {
			t.Fatalf("nondeterministic form:\n  a=%v\n  b=%v", a.Form, b.Form)
		}
	}
}

func TestConstants(t *testing.T) {
	zero := bfunc.New(3, nil)
	res, err := Minimize(zero, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Form.Cubes) != 0 || res.Form.String() != "0" {
		t.Fatalf("constant 0: got %v", res.Form)
	}

	on := make([]uint64, 8)
	for i := range on {
		on[i] = uint64(i)
	}
	one := bfunc.New(3, on)
	res, err = Minimize(one, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Form.Cubes) != 1 || res.Form.Cubes[0] != (cube.Cube{}) {
		t.Fatalf("constant 1: got %v", res.Form)
	}
}

func TestRejectsDC(t *testing.T) {
	f := bfunc.NewDC(3, []uint64{1}, []uint64{2})
	if _, err := Minimize(f, Options{}); err == nil {
		t.Fatal("expected an error for a DC set")
	}
}

func TestMaxCubes(t *testing.T) {
	// Odd parity on 6 variables has 32 one-paths and no distance-1
	// merges, so a cap of 8 must trip.
	n := 6
	var on []uint64
	for p := uint64(0); p < 64; p++ {
		if popcount(p)%2 == 1 {
			on = append(on, p)
		}
	}
	f := bfunc.New(n, on)
	if _, err := Minimize(f, Options{MaxCubes: 8}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
	res, err := Minimize(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Form.Cubes) != 32 {
		t.Fatalf("parity DSOP: want 32 cubes, got %d", len(res.Form.Cubes))
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(3))
	f := randomFunc(rng, 10, 512)
	if _, err := Minimize(f, Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		// Cancellation is polled every 1024 steps; tiny traversals can
		// legitimately finish first. This function's BDD walk is larger
		// than one poll interval, so a nil error means polling broke.
		if err == nil {
			t.Fatal("cancelled context ignored")
		}
	}
}

func popcount(p uint64) int {
	c := 0
	for ; p != 0; p &= p - 1 {
		c++
	}
	return c
}
