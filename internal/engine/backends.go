package engine

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bfunc"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/dsop"
	"repro/internal/fprm"
	"repro/internal/sp"
	"repro/internal/stats"
)

// ESOPMaxVars caps the ESOP backend's input width: fprm works on a
// 2^n truth table, so wider functions would allocate and scan
// gigabytes. Beyond the cap the backend fails with a budget error
// rather than stall the portfolio.
const ESOPMaxVars = 20

// sppBackend adapts internal/core (the paper's SPP minimizers).
type sppBackend struct{}

func (sppBackend) Name() string     { return "spp" }
func (sppBackend) SupportsDC() bool { return true }

// Salt reproduces the service's historical SPP option tag byte for
// byte, so pre-portfolio cache keys, warm pointers and journaled jobs
// stay valid across the upgrade. Do not reformat.
func (sppBackend) Salt(opts Options) string {
	alg := opts.Algorithm
	if alg == "" {
		alg = "exact"
	}
	return fmt.Sprintf("alg=%s;k=%d;xc=%t;fc=%t;cand=%d;nodes=%d",
		alg, opts.K, opts.Core.CoverExact, opts.Core.Cost == core.CostFactors,
		opts.Core.MaxCandidates, opts.Core.CoverMaxNodes)
}

func (sppBackend) Minimize(ctx context.Context, f *bfunc.Func, opts Options) (*Result, error) {
	copts := opts.Core
	copts.Ctx = ctx
	var (
		res *core.Result
		err error
	)
	switch opts.Algorithm {
	case "", "exact":
		res, err = core.MinimizeExact(f, copts)
	case "naive":
		res, err = core.MinimizeNaive(f, copts)
	case "sppk", "spp_k":
		res, err = core.Heuristic(f, opts.K, copts)
	default:
		return nil, fmt.Errorf("engine: unknown spp algorithm %q", opts.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Form:    SPPForm{F: res.Form},
		EPPP:    res.Build.EPPP,
		Optimal: res.CoverOptimal,
	}, nil
}

// sopBackend adapts internal/sp (Quine–McCluskey primes + covering for
// narrow inputs, the ESPRESSO-style loop for wide ones).
type sopBackend struct{}

func (sopBackend) Name() string     { return "sop" }
func (sopBackend) SupportsDC() bool { return true }

func (sopBackend) Salt(opts Options) string {
	return fmt.Sprintf("form=sop;xc=%t;nodes=%d",
		opts.Core.CoverExact, opts.Core.CoverMaxNodes)
}

func (sopBackend) Minimize(ctx context.Context, f *bfunc.Func, opts Options) (*Result, error) {
	// sp has no internal cancellation; honor ctx at the boundary so a
	// lost race is at least not charged twice.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	stop := opts.Core.Stats.Phase(stats.PhaseEngineSOP)
	res := sp.Minimize(f, sp.Options{
		CoverExact:    opts.Core.CoverExact,
		CoverMaxNodes: opts.Core.CoverMaxNodes,
	})
	stop()
	return &Result{
		Form:    SOPForm{F: cube.Form{N: res.Form.N, Cubes: res.Form.Cubes}},
		Optimal: res.CoverOptimal,
	}, nil
}

// esopBackend adapts internal/fprm: the minimized fixed-polarity
// Reed–Muller expression, the repo's AND-EXOR (ESOP-class) form.
type esopBackend struct{}

func (esopBackend) Name() string     { return "esop" }
func (esopBackend) SupportsDC() bool { return false }

func (esopBackend) Salt(Options) string { return "form=esop" }

func (esopBackend) Minimize(ctx context.Context, f *bfunc.Func, opts Options) (*Result, error) {
	if len(f.DC()) > 0 {
		return nil, fmt.Errorf("engine: esop backend requires a completely specified function")
	}
	if f.N() > ESOPMaxVars {
		return nil, fmt.Errorf("%w: esop backend limited to %d variables (truth-table spectrum), got %d",
			core.ErrBudget, ESOPMaxVars, f.N())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	stop := opts.Core.Stats.Phase(stats.PhaseEngineESOP)
	res := fprm.Minimize(f)
	stop()
	return &Result{
		Form:    ESOPForm{N: f.N(), Polarity: res.Polarity, Monomials: res.Monomials},
		Optimal: res.Exhaustive,
	}, nil
}

// dsopBackend adapts internal/dsop (BDD one-path extraction).
type dsopBackend struct{}

func (dsopBackend) Name() string     { return "dsop" }
func (dsopBackend) SupportsDC() bool { return false }

func (dsopBackend) Salt(Options) string {
	return fmt.Sprintf("form=dsop;cubes=%d", dsop.DefaultMaxCubes)
}

func (dsopBackend) Minimize(ctx context.Context, f *bfunc.Func, opts Options) (*Result, error) {
	stop := opts.Core.Stats.Phase(stats.PhaseEngineDSOP)
	res, err := dsop.Minimize(f, dsop.Options{Ctx: ctx})
	stop()
	if err != nil {
		if errors.Is(err, dsop.ErrTooLarge) {
			// A path-count blowup is a budget failure in the service's
			// vocabulary (422), not an internal error.
			return nil, fmt.Errorf("%w: %v", core.ErrBudget, err)
		}
		return nil, err
	}
	return &Result{Form: DSOPForm{F: res.Form}}, nil
}
