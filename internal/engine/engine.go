// Package engine is the portfolio layer that turns the SPP service
// into a general three-level-logic service: one Backend interface over
// the repo's minimizers — SPP (internal/core), SOP (internal/sp, which
// dispatches Quine–McCluskey or the ESPRESSO-style loop), ESOP
// (internal/fprm fixed-polarity Reed–Muller) and DSOP (internal/dsop
// BDD one-paths) — plus a Race that runs eligible backends in parallel
// under one budget and picks the best result by the shared cost model,
// literal count (#L).
//
// Contract highlights (docs/forms.md is normative):
//
//   - Every backend reports cost as Form.Literals(); forms from
//     different backends are directly comparable.
//   - Each backend declares a canonical cache-key salt (Salt) so its
//     results occupy their own cache entries: a warm SPP entry can
//     never mask a cheaper ESOP answer.
//   - Race's returned cost is deterministic: without an acceptance
//     target every backend runs to completion and the minimum literal
//     count wins, ties broken by registry order. Which backend produced
//     the winning cost may vary run to run only among cost-ties — a
//     scheduling property, split from the deterministic cost exactly
//     like the stats layer's deterministic-vs-sched counters. With a
//     Target set, the first result at or under the target wins and the
//     rest are cancelled via context ("first-acceptable" mode; the
//     returned cost is then only guaranteed ≤ Target).
package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/bfunc"
	"repro/internal/core"
)

// Options carries everything a backend run needs. Core holds the
// shared bounds (budgets, worker counts, Ctx, Stats, CoverExact, cost
// kind); Algorithm and K select the SPP engine variant and are ignored
// by every other backend.
type Options struct {
	Core core.Options
	// Algorithm is the SPP engine: "exact" (default), "naive" or
	// "sppk".
	Algorithm string
	// K is SPP_k's degree bound (Algorithm == "sppk" only).
	K int
	// Target, when positive, is Race's acceptance threshold: the first
	// result with Literals() <= Target wins immediately and the
	// remaining backends are cancelled.
	Target int
}

// Form is one minimized expression, independent of which backend
// produced it. Implementations are canonical-space values stored in
// the service cache; Permute maps them into a client's variable order
// on the way out (perm follows pcube.CEX.PermuteVars: variable x_i
// moves to x_perm[i]).
type Form interface {
	fmt.Stringer
	// Literals is the shared cost model (#L).
	Literals() int
	// NumTerms counts the summed products.
	NumTerms() int
	// Eval reports the form's value on a packed point.
	Eval(p uint64) bool
	// Permute returns the form over renamed variables.
	Permute(perm []int) Form
	// Bytes estimates the form's resident footprint for the size-aware
	// cache.
	Bytes() int64
}

// Result is one backend's answer.
type Result struct {
	Form Form
	// EPPP is the SPP backend's extended-prime count (0 elsewhere).
	EPPP int
	// Optimal reports a proven minimum within the backend's own form
	// class (exact covering, exhaustive polarity search); heuristic
	// answers report false.
	Optimal bool
}

// Backend is one minimization engine adapted onto the portfolio.
// Implementations are stateless and safe for concurrent use.
type Backend interface {
	// Name is the form tag served in the API ("spp", "sop", ...).
	Name() string
	// Salt is the backend's canonical cache-key salt under opts: it
	// spells every option that can change this backend's successful
	// result, and nothing else, so results cache per-(canonical key,
	// backend tag).
	Salt(opts Options) string
	// SupportsDC reports whether the backend accepts incompletely
	// specified functions.
	SupportsDC() bool
	// Minimize computes a minimized form of f. ctx overrides
	// opts.Core.Ctx; budget- and unsupported-shape failures return
	// errors (core.ErrBudget-wrapped where a larger budget could
	// succeed).
	Minimize(ctx context.Context, f *bfunc.Func, opts Options) (*Result, error)
}

// Names lists every backend in canonical registry order — also the
// deterministic tie-break order of Race.
func Names() []string { return []string{"spp", "sop", "esop", "dsop"} }

// Registry is an ordered set of enabled backends.
type Registry struct {
	backends []Backend
	byName   map[string]Backend
}

// NewRegistry builds a registry of the named backends in canonical
// order (duplicates collapse). An empty name list enables all of them.
func NewRegistry(names ...string) (*Registry, error) {
	all := map[string]Backend{
		"spp":  sppBackend{},
		"sop":  sopBackend{},
		"esop": esopBackend{},
		"dsop": dsopBackend{},
	}
	want := map[string]bool{}
	if len(names) == 0 {
		for n := range all {
			want[n] = true
		}
	}
	for _, n := range names {
		if _, ok := all[n]; !ok {
			return nil, fmt.Errorf("engine: unknown backend %q (have %v)", n, Names())
		}
		want[n] = true
	}
	r := &Registry{byName: map[string]Backend{}}
	for _, n := range Names() {
		if want[n] {
			b := all[n]
			r.backends = append(r.backends, b)
			r.byName[n] = b
		}
	}
	return r, nil
}

// Get returns the named backend if enabled.
func (r *Registry) Get(name string) (Backend, bool) {
	b, ok := r.byName[name]
	return b, ok
}

// Backends returns the enabled backends in canonical order. The caller
// must not mutate the slice.
func (r *Registry) Backends() []Backend { return r.backends }

// NamesEnabled returns the enabled backend names in canonical order.
func (r *Registry) NamesEnabled() []string {
	out := make([]string, len(r.backends))
	for i, b := range r.backends {
		out[i] = b.Name()
	}
	return out
}

// Eligible returns the enabled backends that can minimize f: all of
// them for completely specified functions, only the DC-capable ones
// otherwise.
func (r *Registry) Eligible(f *bfunc.Func) []Backend {
	if len(f.DC()) == 0 {
		return r.backends
	}
	var out []Backend
	for _, b := range r.backends {
		if b.SupportsDC() {
			out = append(out, b)
		}
	}
	return out
}

// RaceResult reports one portfolio race. Results, Errs and Elapsed are
// index-aligned with the raced backend slice; a backend that errored
// has a nil Result.
type RaceResult struct {
	// Winner indexes the winning backend, -1 when every backend failed.
	Winner int
	// Results holds each backend's answer (nil on error).
	Results []*Result
	// Errs holds each backend's failure (nil on success).
	Errs []error
	// Elapsed is each backend's wall time (cancelled backends report
	// time until cancellation).
	Elapsed []time.Duration
	// Cancelled counts backends cut off by an early acceptance win
	// before finishing.
	Cancelled int
}

// Race runs every backend on f concurrently and picks the winner.
// Without opts.Target, all backends run to completion and the minimum
// literal count wins (ties: lowest index — registry order), so the
// returned cost is deterministic under fixed budgets regardless of
// scheduling. With opts.Target > 0, the first result at or under the
// target wins immediately and still-running backends are cancelled via
// a shared child context (counted in Cancelled).
//
// An error is returned only when every backend fails; it is the first
// backend's error in index order, so the failure is deterministic too.
func Race(ctx context.Context, backends []Backend, f *bfunc.Func, opts Options) (*RaceResult, error) {
	rr := &RaceResult{
		Winner:  -1,
		Results: make([]*Result, len(backends)),
		Errs:    make([]error, len(backends)),
		Elapsed: make([]time.Duration, len(backends)),
	}
	if len(backends) == 0 {
		return rr, fmt.Errorf("engine: no eligible backends")
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex
	accepted := -1 // lowest-index accepted result so far (Target mode)
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			start := time.Now()
			res, err := b.Minimize(raceCtx, f, opts)
			elapsed := time.Since(start)
			mu.Lock()
			defer mu.Unlock()
			rr.Results[i], rr.Errs[i], rr.Elapsed[i] = res, err, elapsed
			if err != nil && raceCtx.Err() != nil && ctx.Err() == nil {
				// Lost to an early acceptance cancel, not to the caller's
				// deadline: not a real failure.
				rr.Results[i], rr.Errs[i] = nil, nil
				rr.Cancelled++
				return
			}
			if opts.Target > 0 && err == nil && res.Form.Literals() <= opts.Target {
				if accepted == -1 || i < accepted {
					accepted = i
				}
				cancel()
			}
		}(i, b)
	}
	wg.Wait()

	if accepted >= 0 {
		rr.Winner = accepted
		return rr, nil
	}
	// Best-cost mode (or no result met the target): deterministic pick —
	// minimum literal count, ties to the lowest index.
	for i, res := range rr.Results {
		if res == nil {
			continue
		}
		if rr.Winner == -1 || res.Form.Literals() < rr.Results[rr.Winner].Form.Literals() {
			rr.Winner = i
		}
	}
	if rr.Winner == -1 {
		for _, err := range rr.Errs {
			if err != nil {
				return rr, err
			}
		}
		return rr, ctx.Err()
	}
	return rr, nil
}
