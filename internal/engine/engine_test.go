package engine

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bfunc"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/dsop"
	"repro/internal/fprm"
	"repro/internal/sp"
)

func randomFunc(rng *rand.Rand, n, onCount int) *bfunc.Func {
	size := 1 << uint(n)
	perm := rng.Perm(size)
	on := make([]uint64, 0, onCount)
	for _, p := range perm[:onCount] {
		on = append(on, uint64(p))
	}
	return bfunc.New(n, on)
}

func mustBackend(t *testing.T, name string) Backend {
	t.Helper()
	r, err := NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	b, ok := r.Get(name)
	if !ok {
		t.Fatalf("backend %q missing from full registry", name)
	}
	return b
}

// TestOracles asserts each backend through the engine interface is
// byte-identical (rendered form, cost, term count) to calling the
// underlying package directly.
func TestOracles(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	funcs := make([]*bfunc.Func, 0, 12)
	for i := 0; i < 12; i++ {
		n := 3 + rng.Intn(5)
		funcs = append(funcs, randomFunc(rng, n, 1+rng.Intn(1<<uint(n))))
	}

	t.Run("spp", func(t *testing.T) {
		b := mustBackend(t, "spp")
		for _, f := range funcs {
			got, err := b.Minimize(ctx, f, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.MinimizeExact(f, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got.Form.String() != want.Form.String() ||
				got.Form.Literals() != want.Form.Literals() ||
				got.EPPP != want.Build.EPPP ||
				got.Optimal != want.CoverOptimal {
				t.Fatalf("engine spp diverges from core.MinimizeExact:\n  got  %v (#L=%d)\n  want %v (#L=%d)",
					got.Form, got.Form.Literals(), want.Form, want.Form.Literals())
			}
		}
	})

	t.Run("spp-sppk", func(t *testing.T) {
		b := mustBackend(t, "spp")
		f := funcs[0]
		got, err := b.Minimize(ctx, f, Options{Algorithm: "sppk", K: 2})
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Heuristic(f, 2, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Form.String() != want.Form.String() {
			t.Fatalf("engine sppk diverges:\n  got  %v\n  want %v", got.Form, want.Form)
		}
	})

	t.Run("sop", func(t *testing.T) {
		b := mustBackend(t, "sop")
		for _, f := range funcs {
			got, err := b.Minimize(ctx, f, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := sp.Minimize(f, sp.Options{})
			wantStr := cube.Form{N: want.Form.N, Cubes: want.Form.Cubes}.String()
			if got.Form.String() != wantStr ||
				got.Form.Literals() != want.Form.Literals() ||
				got.Optimal != want.CoverOptimal {
				t.Fatalf("engine sop diverges from sp.Minimize:\n  got  %v\n  want %v", got.Form, want.Form)
			}
		}
	})

	t.Run("esop", func(t *testing.T) {
		b := mustBackend(t, "esop")
		for _, f := range funcs {
			got, err := b.Minimize(ctx, f, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := fprm.Minimize(f)
			if got.Form.String() != want.Format(f.N()) ||
				got.Form.Literals() != want.Literals ||
				got.Form.NumTerms() != want.NumTerms() {
				t.Fatalf("engine esop diverges from fprm.Minimize:\n  got  %v\n  want %v",
					got.Form, want.Format(f.N()))
			}
		}
	})

	t.Run("dsop", func(t *testing.T) {
		b := mustBackend(t, "dsop")
		for _, f := range funcs {
			got, err := b.Minimize(ctx, f, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := dsop.Minimize(f, dsop.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Form.(DSOPForm).F.Cubes, want.Form.Cubes) {
				t.Fatalf("engine dsop diverges from dsop.Minimize:\n  got  %v\n  want %v", got.Form, want.Form)
			}
		}
	})
}

// TestFormsEvalAndPermute checks every backend's Form wrapper against
// the source function, before and after a variable permutation.
func TestFormsEvalAndPermute(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(12))
	reg, err := NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 8; iter++ {
		n := 3 + rng.Intn(4)
		size := 1 << uint(n)
		f := randomFunc(rng, n, 1+rng.Intn(size))
		perm := rng.Perm(n)
		for _, b := range reg.Backends() {
			res, err := b.Minimize(ctx, f, Options{})
			if err != nil {
				t.Fatalf("%s: %v", b.Name(), err)
			}
			pf := res.Form.Permute(perm)
			for p := uint64(0); p < uint64(size); p++ {
				if res.Form.Eval(p) != f.IsOn(p) {
					t.Fatalf("%s: form disagrees with f at %d", b.Name(), p)
				}
				var q uint64
				for i := 0; i < n; i++ {
					if p&(1<<uint(n-1-i)) != 0 {
						q |= 1 << uint(n-1-perm[i])
					}
				}
				if pf.Eval(q) != f.IsOn(p) {
					t.Fatalf("%s: permuted form disagrees at π(%d)=%d (perm=%v)", b.Name(), p, q, perm)
				}
			}
			if res.Form.Bytes() <= 0 {
				t.Fatalf("%s: nonpositive Bytes()", b.Name())
			}
		}
	}
}

// TestRaceBestCost pins the auto-race determinism contract: the
// winning cost equals the minimum over per-backend costs, every time.
func TestRaceBestCost(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(13))
	reg, err := NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 10; iter++ {
		n := 3 + rng.Intn(4)
		f := randomFunc(rng, n, 1+rng.Intn(1<<uint(n)))

		best := -1
		for _, b := range reg.Backends() {
			res, err := b.Minimize(ctx, f, Options{})
			if err != nil {
				t.Fatalf("%s: %v", b.Name(), err)
			}
			if best == -1 || res.Form.Literals() < best {
				best = res.Form.Literals()
			}
		}

		var costs []int
		for rep := 0; rep < 4; rep++ {
			rr, err := Race(ctx, reg.Backends(), f, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rr.Cancelled != 0 {
				t.Fatalf("best-cost race cancelled %d backends", rr.Cancelled)
			}
			costs = append(costs, rr.Results[rr.Winner].Form.Literals())
		}
		for _, c := range costs {
			if c != best {
				t.Fatalf("race cost %v, want every run = %d (min over backends)", costs, best)
			}
		}
	}
}

// TestRaceTarget checks first-acceptable mode: an immediately
// satisfiable target wins without waiting for slower backends.
func TestRaceTarget(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(14))
	f := randomFunc(rng, 6, 40)
	reg, err := NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	// Target high enough that any backend's answer is acceptable.
	rr, err := Race(ctx, reg.Backends(), f, Options{Target: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Winner < 0 {
		t.Fatal("no winner")
	}
	if got := rr.Results[rr.Winner].Form.Literals(); got > 1<<20 {
		t.Fatalf("winner cost %d exceeds target", got)
	}
}

func TestEligibility(t *testing.T) {
	reg, err := NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	full := bfunc.New(3, []uint64{1, 2})
	if got := len(reg.Eligible(full)); got != 4 {
		t.Fatalf("complete function: want 4 eligible backends, got %d", got)
	}
	dc := bfunc.NewDC(3, []uint64{1}, []uint64{2})
	var names []string
	for _, b := range reg.Eligible(dc) {
		names = append(names, b.Name())
	}
	if !reflect.DeepEqual(names, []string{"spp", "sop"}) {
		t.Fatalf("DC function: want [spp sop], got %v", names)
	}
}

func TestRegistry(t *testing.T) {
	reg, err := NewRegistry("dsop", "spp")
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.NamesEnabled(); !reflect.DeepEqual(got, []string{"spp", "dsop"}) {
		t.Fatalf("want canonical order [spp dsop], got %v", got)
	}
	if _, err := NewRegistry("pla"); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, ok := reg.Get("sop"); ok {
		t.Fatal("disabled backend resolvable")
	}
}

// TestSaltStability pins the spp salt to the service's historical
// option tag and checks the other salts are distinct per backend.
func TestSaltStability(t *testing.T) {
	reg, err := NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	spp, _ := reg.Get("spp")
	got := spp.Salt(Options{Algorithm: "sppk", K: 3,
		Core: core.Options{CoverExact: true, Cost: core.CostFactors, MaxCandidates: 7, CoverMaxNodes: 9}})
	want := "alg=sppk;k=3;xc=true;fc=true;cand=7;nodes=9"
	if got != want {
		t.Fatalf("spp salt drifted:\n  got  %q\n  want %q", got, want)
	}
	if got := spp.Salt(Options{}); got != "alg=exact;k=0;xc=false;fc=false;cand=0;nodes=0" {
		t.Fatalf("default spp salt drifted: %q", got)
	}
	seen := map[string]string{}
	for _, b := range reg.Backends() {
		s := b.Salt(Options{})
		if prev, dup := seen[s]; dup {
			t.Fatalf("salt %q shared by %s and %s", s, prev, b.Name())
		}
		seen[s] = b.Name()
	}
}

func TestESOPRejectsWideAndDC(t *testing.T) {
	b := mustBackend(t, "esop")
	dc := bfunc.NewDC(3, []uint64{1}, []uint64{2})
	if _, err := b.Minimize(context.Background(), dc, Options{}); err == nil {
		t.Fatal("esop accepted a DC set")
	}
	wide := bfunc.New(ESOPMaxVars+1, []uint64{0})
	_, err := b.Minimize(context.Background(), wide, Options{})
	if !errors.Is(err, core.ErrBudget) {
		t.Fatalf("want ErrBudget for %d vars, got %v", ESOPMaxVars+1, err)
	}
}

func TestRaceAllFail(t *testing.T) {
	reg, err := NewRegistry("esop", "dsop")
	if err != nil {
		t.Fatal(err)
	}
	dc := bfunc.NewDC(3, []uint64{1}, []uint64{2})
	rr, err := Race(context.Background(), reg.Backends(), dc, Options{})
	if err == nil {
		t.Fatal("want error when every backend fails")
	}
	if rr.Winner != -1 {
		t.Fatalf("winner %d on total failure", rr.Winner)
	}
}
