package engine

import (
	"strings"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/fprm"
	"repro/internal/pcube"
)

// SPPForm adapts a sum of pseudoproducts (the paper's form) onto the
// engine Form interface.
type SPPForm struct{ F core.Form }

func (s SPPForm) String() string { return s.F.String() }

// Literals reports the SPP #L cost.
func (s SPPForm) Literals() int { return s.F.Literals() }

// NumTerms reports the pseudoproduct count (#P).
func (s SPPForm) NumTerms() int { return s.F.NumTerms() }

// Eval reports the form's value on a packed point.
func (s SPPForm) Eval(p uint64) bool { return s.F.Eval(p) }

// Permute renames variables through pcube.CEX.PermuteVars.
func (s SPPForm) Permute(perm []int) Form {
	terms := make([]*pcube.CEX, len(s.F.Terms))
	for i, t := range s.F.Terms {
		terms[i] = t.PermuteVars(perm)
	}
	return SPPForm{F: core.Form{N: s.F.N, Terms: terms}}
}

// Bytes estimates the resident footprint (the legacy service cache
// weight formula for SPP entries).
func (s SPPForm) Bytes() int64 {
	var w int64
	for _, t := range s.F.Terms {
		w += 64 + int64(len(t.Factors))*25
	}
	return w
}

// SOPForm adapts a plain sum of products.
type SOPForm struct{ F cube.Form }

func (s SOPForm) String() string { return s.F.String() }

// Literals reports the SOP #L cost.
func (s SOPForm) Literals() int { return s.F.Literals() }

// NumTerms reports the product count.
func (s SOPForm) NumTerms() int { return len(s.F.Cubes) }

// Eval reports the form's value on a packed point.
func (s SOPForm) Eval(p uint64) bool { return s.F.Eval(p) }

// Permute renames variables on every cube's care/value masks.
func (s SOPForm) Permute(perm []int) Form {
	return SOPForm{F: permuteCubeForm(s.F, perm)}
}

// Bytes estimates the resident footprint.
func (s SOPForm) Bytes() int64 { return 32 + int64(len(s.F.Cubes))*16 }

// DSOPForm adapts a disjoint sum of products. Disjointness makes the
// sum a valid EXOR, so it renders with ⊕ to make the form class
// visible; Eval still ORs (equivalent on a DSOP, cheaper).
type DSOPForm struct{ F cube.Form }

func (d DSOPForm) String() string {
	if len(d.F.Cubes) == 0 {
		return "0"
	}
	parts := make([]string, len(d.F.Cubes))
	for i, c := range d.F.Cubes {
		parts[i] = c.Format(d.F.N)
	}
	return strings.Join(parts, " ⊕ ")
}

// Literals reports the DSOP #L cost.
func (d DSOPForm) Literals() int { return d.F.Literals() }

// NumTerms reports the product count.
func (d DSOPForm) NumTerms() int { return len(d.F.Cubes) }

// Eval reports the form's value on a packed point.
func (d DSOPForm) Eval(p uint64) bool { return d.F.Eval(p) }

// Permute renames variables on every cube's care/value masks.
func (d DSOPForm) Permute(perm []int) Form {
	return DSOPForm{F: permuteCubeForm(d.F, perm)}
}

// Bytes estimates the resident footprint.
func (d DSOPForm) Bytes() int64 { return 32 + int64(len(d.F.Cubes))*16 }

// permuteCubeForm remaps cube care/value masks (a cube's masks are
// point sets under bitvec packing, so PermutePoint applies to both)
// and re-sorts the cubes by (Care, Val). The sort makes the rendered
// form canonical: the service minimizes in canonical variable order
// and permutes back out, so without it the cube order would leak the
// cache's internal variable ordering.
func permuteCubeForm(f cube.Form, perm []int) cube.Form {
	cubes := make([]cube.Cube, len(f.Cubes))
	for i, c := range f.Cubes {
		cubes[i] = cube.Cube{
			Care: bitvec.PermutePoint(c.Care, f.N, perm),
			Val:  bitvec.PermutePoint(c.Val, f.N, perm),
		}
	}
	for i := 1; i < len(cubes); i++ {
		for j := i; j > 0 && cubeLess(cubes[j], cubes[j-1]); j-- {
			cubes[j], cubes[j-1] = cubes[j-1], cubes[j]
		}
	}
	return cube.Form{N: f.N, Cubes: cubes}
}

func cubeLess(a, b cube.Cube) bool {
	if a.Care != b.Care {
		return a.Care < b.Care
	}
	return a.Val < b.Val
}

// ESOPForm adapts a fixed-polarity Reed–Muller expression: an EXOR of
// products in which each variable appears with one global polarity.
type ESOPForm struct {
	N        int
	Polarity uint64
	// Monomials lists the nonzero spectrum coefficients in ascending
	// mask order (fprm's output order).
	Monomials []uint64
}

func (e ESOPForm) String() string {
	r := fprm.Result{Polarity: e.Polarity, Monomials: e.Monomials}
	return r.Format(e.N)
}

// Literals reports Σ |monomial|, the cost comparable to #L.
func (e ESOPForm) Literals() int {
	total := 0
	for _, m := range e.Monomials {
		total += bitvec.OnesCount(m)
	}
	return total
}

// NumTerms reports the EXOR-summed product count.
func (e ESOPForm) NumTerms() int { return len(e.Monomials) }

// Eval reports the form's value on a packed point.
func (e ESOPForm) Eval(p uint64) bool {
	r := fprm.Result{Polarity: e.Polarity, Monomials: e.Monomials}
	return r.Eval(p)
}

// Permute renames variables on the polarity and monomial masks (all
// are variable sets under bitvec packing). The monomial list is
// re-sorted to keep the ascending-mask rendering order canonical.
func (e ESOPForm) Permute(perm []int) Form {
	out := ESOPForm{
		N:         e.N,
		Polarity:  bitvec.PermutePoint(e.Polarity, e.N, perm),
		Monomials: make([]uint64, len(e.Monomials)),
	}
	for i, m := range e.Monomials {
		out.Monomials[i] = bitvec.PermutePoint(m, e.N, perm)
	}
	sortMasks(out.Monomials)
	return out
}

// Bytes estimates the resident footprint.
func (e ESOPForm) Bytes() int64 { return 48 + int64(len(e.Monomials))*8 }

// sortMasks orders ascending (insertion sort: monomial lists are
// short and usually nearly sorted).
func sortMasks(ms []uint64) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j] < ms[j-1]; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}
