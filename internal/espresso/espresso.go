// Package espresso implements a compact ESPRESSO-style heuristic
// two-level minimizer: the EXPAND / IRREDUNDANT / REDUCE improvement
// loop over a cube cover. The paper's SP reference results come from
// the ESPRESSO benchmark ecosystem [10]; Quine–McCluskey (internal/qm)
// is exact but explodes on wide inputs, while this heuristic handles
// them gracefully, so the SP pipeline can pick either engine.
//
// The implementation follows the classical structure:
//
//	EXPAND      each cube grows literal by literal as long as it stays
//	            inside ON ∪ DC (checked against a cube cover of the
//	            OFF-set computed by unate-recursion complement),
//	            preferring the literal whose removal covers the most
//	            currently-uncovered ON minterms;
//	REDUCE      each cube shrinks to the smallest cube covering its
//	            essential ON minterms, opening room for the next EXPAND;
//	IRREDUNDANT drops cubes whose ON minterms are covered by the rest.
//
// The loop runs until an iteration stops improving the literal count.
//
// Cost model: the loop minimizes the SOP literal count #L (the sum of
// care-bit counts over the cover's cubes), the same metric the
// Brayton–Hachtel–McMullen–Sangiovanni ESPRESSO book optimizes and the
// one the portfolio engine (internal/engine, docs/forms.md) uses to
// compare forms across backends. Term count #P falls out as a
// secondary effect of cube merging, it is never traded against #L.
package espresso

import (
	"sort"

	"repro/internal/bfunc"
	"repro/internal/bitvec"
	"repro/internal/cube"
)

// Options tune the minimizer.
type Options struct {
	// MaxIterations bounds the improvement loop (0 = default 12).
	MaxIterations int
}

// Result is a minimized cover with iteration statistics.
type Result struct {
	Cover      []cube.Cube
	Iterations int
	Literals   int
}

// Minimize computes a heuristic minimum-literal cover of f.
func Minimize(f *bfunc.Func, opts Options) *Result {
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = 12
	}
	n := f.N()
	on := f.On()
	if len(on) == 0 {
		return &Result{}
	}
	if f.IsConstantOne() {
		return &Result{Cover: []cube.Cube{{}}, Iterations: 0}
	}
	off := offCover(f)

	// Initial cover: one cube per ON minterm.
	cover := make([]cube.Cube, len(on))
	for i, p := range on {
		cover[i] = cube.FromPoint(n, p)
	}

	res := &Result{}
	best := literals(cover)
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		cover = expand(n, cover, on, off)
		cover = irredundant(n, cover, on)
		cover = reduce(n, cover, on)
		cover = expand(n, cover, on, off)
		cover = irredundant(n, cover, on)
		if l := literals(cover); l < best {
			best = l
		} else {
			break
		}
	}
	res.Cover = cover
	res.Literals = literals(cover)
	return res
}

func literals(cs []cube.Cube) int {
	total := 0
	for _, c := range cs {
		total += c.Literals()
	}
	return total
}

// offCover computes a cube cover of the OFF-set (complement of
// ON ∪ DC) with the unate-recursion complement, avoiding the 2^n
// enumeration of explicit OFF minterms.
func offCover(f *bfunc.Func) []cube.Cube {
	n := f.N()
	care := f.Care()
	careCubes := make([]cube.Cube, len(care))
	for i, p := range care {
		careCubes[i] = cube.FromPoint(n, p)
	}
	return cube.Complement(n, careCubes)
}

// intersectsOff reports whether the cube reaches the OFF-set.
func intersectsOff(c cube.Cube, off []cube.Cube) bool {
	for _, o := range off {
		if cube.Intersects(c, o) {
			return true
		}
	}
	return false
}

// expand grows every cube maximally: repeatedly drop the bound literal
// whose removal keeps the cube inside the care set and newly covers the
// most not-yet-covered ON minterms (ties: lowest variable). Cubes are
// processed smallest-first, the classical ESPRESSO order.
func expand(n int, cover []cube.Cube, on []uint64, off []cube.Cube) []cube.Cube {
	sort.Slice(cover, func(i, j int) bool {
		return cover[i].Literals() > cover[j].Literals()
	})
	covered := map[uint64]bool{}
	markCovered := func(c cube.Cube) {
		for _, p := range on {
			if c.Contains(p) {
				covered[p] = true
			}
		}
	}
	out := cover[:0]
	for _, c := range cover {
		for {
			bestVar, bestGain := -1, -1
			for _, v := range bitvec.Vars(c.Care, n) {
				trial := cube.New(c.Care&^bitvec.VarMask(n, v), c.Val)
				if intersectsOff(trial, off) {
					continue
				}
				gain := 0
				for _, p := range on {
					if !covered[p] && trial.Contains(p) {
						gain++
					}
				}
				if gain > bestGain {
					bestGain, bestVar = gain, v
				}
			}
			if bestVar < 0 {
				break
			}
			c = cube.New(c.Care&^bitvec.VarMask(n, bestVar), c.Val)
		}
		markCovered(c)
		out = append(out, c)
	}
	return out
}

// irredundant removes cubes (largest-literal-count first) whose ON
// minterms remain covered by the rest.
func irredundant(n int, cover []cube.Cube, on []uint64) []cube.Cube {
	order := make([]int, len(cover))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return cover[order[a]].Literals() > cover[order[b]].Literals()
	})
	alive := make([]bool, len(cover))
	for i := range alive {
		alive[i] = true
	}
	coveredBy := func(p uint64, skip int) bool {
		for j, c := range cover {
			if j != skip && alive[j] && c.Contains(p) {
				return true
			}
		}
		return false
	}
	for _, i := range order {
		redundant := true
		for _, p := range on {
			if cover[i].Contains(p) && !coveredBy(p, i) {
				redundant = false
				break
			}
		}
		if redundant {
			alive[i] = false
		}
	}
	out := cover[:0]
	for i, c := range cover {
		if alive[i] {
			out = append(out, c)
		}
	}
	return out
}

// reduce shrinks every cube to the smallest cube containing its
// essential ON minterms — the points no other cube of the cover
// currently covers — opening room for the next EXPAND to regrow it in a
// better direction. Cubes are processed sequentially against the
// partially reduced cover: once a cube sheds a point, that point is
// essential for whichever later cube still covers it, so coverage is
// preserved (reducing all cubes against the original cover could let
// two cubes shed a doubly-covered point simultaneously).
func reduce(n int, cover []cube.Cube, on []uint64) []cube.Cube {
	cur := append([]cube.Cube(nil), cover...)
	keep := make([]bool, len(cur))
	for i := range cur {
		c := cur[i]
		var mask, val uint64
		first := true
		for _, p := range on {
			if !c.Contains(p) {
				continue
			}
			essential := true
			for j := range cur {
				if j != i && keepOrPending(keep, j, i) && cur[j].Contains(p) {
					essential = false
					break
				}
			}
			if !essential {
				continue
			}
			if first {
				mask, val, first = bitvec.SpaceMask(n), p, false
				continue
			}
			// Smallest cube containing the accumulated cube and p:
			// free the differing bound bits.
			diff := (p ^ val) & mask
			mask &^= diff
			val &= mask
		}
		if first {
			// No essential points: collapse to the first covered ON
			// minterm (if any; otherwise the cube is dead weight).
			placed := false
			for _, p := range on {
				if c.Contains(p) {
					cur[i] = cube.FromPoint(n, p)
					placed = true
					break
				}
			}
			keep[i] = placed
		} else {
			cur[i] = cube.New(mask, val)
			keep[i] = true
		}
	}
	out := cur[:0]
	for i, c := range cur {
		if keep[i] {
			out = append(out, c)
		}
	}
	return out
}

// keepOrPending reports whether cube j still participates in coverage
// when reducing cube i: already-processed cubes (j < i) count only if
// kept; not-yet-processed cubes always count.
func keepOrPending(keep []bool, j, i int) bool {
	if j < i {
		return keep[j]
	}
	return true
}
