package espresso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfunc"
	"repro/internal/cover"
	"repro/internal/cube"
	"repro/internal/qm"
)

func validCover(f *bfunc.Func, cs []cube.Cube) bool {
	n := f.N()
	for p := uint64(0); p < 1<<uint(n); p++ {
		covered := false
		for _, c := range cs {
			if c.Contains(p) {
				covered = true
				break
			}
		}
		if f.IsOn(p) && !covered {
			return false
		}
		if !f.IsCare(p) && covered {
			return false
		}
	}
	return true
}

// qmMinimal computes the true minimum literal count via QM primes and
// exact covering (small n only).
func qmMinimal(t *testing.T, f *bfunc.Func) int {
	t.Helper()
	primes := qm.Primes(f)
	on := f.On()
	if len(on) == 0 {
		return 0
	}
	rowOf := map[uint64]int{}
	for i, p := range on {
		rowOf[p] = i
	}
	in := &cover.Instance{NRows: len(on)}
	for _, pi := range primes {
		var rows []int
		for _, p := range pi.Points(f.N()) {
			if r, ok := rowOf[p]; ok {
				rows = append(rows, r)
			}
		}
		if len(rows) == 0 {
			continue
		}
		cost := pi.Literals()
		if cost == 0 {
			cost = 1 // constant-one prime; Exact requires positive cost
		}
		in.Cols = append(in.Cols, cover.Column{Cost: cost, Rows: rows})
	}
	res := cover.Exact(in, cover.ExactOptions{MaxNodes: 5_000_000})
	if !res.Optimal {
		t.Fatal("reference covering did not finish")
	}
	return res.Cost
}

func randomFunc(rng *rand.Rand, n int, withDC bool) *bfunc.Func {
	var on, dc []uint64
	for p := uint64(0); p < 1<<uint(n); p++ {
		switch rng.Intn(4) {
		case 0:
			on = append(on, p)
		case 1:
			if withDC {
				dc = append(dc, p)
			}
		}
	}
	return bfunc.NewDC(n, on, dc)
}

func TestMinimizeProducesValidCovers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		fn := randomFunc(rng, n, seed%2 == 0)
		res := Minimize(fn, Options{})
		return validCover(fn, res.Cover)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimizeNearOptimal(t *testing.T) {
	// The heuristic should land within a modest factor of the QM+exact
	// minimum on small functions (ESPRESSO's classical behaviour; it is
	// usually optimal on these sizes).
	rng := rand.New(rand.NewSource(7))
	totalOpt, totalHeur := 0, 0
	for trial := 0; trial < 25; trial++ {
		fn := randomFunc(rng, 4, false)
		if fn.OnCount() == 0 {
			continue
		}
		opt := qmMinimal(t, fn)
		res := Minimize(fn, Options{})
		if !validCover(fn, res.Cover) {
			t.Fatal("invalid cover")
		}
		if res.Literals < opt {
			t.Fatalf("heuristic %d beat the proven minimum %d", res.Literals, opt)
		}
		totalOpt += opt
		totalHeur += res.Literals
	}
	if totalHeur > totalOpt*13/10 {
		t.Fatalf("heuristic too weak: %d literals vs %d optimal (+%.0f%%)",
			totalHeur, totalOpt, 100*float64(totalHeur-totalOpt)/float64(totalOpt))
	}
}

func TestMinimizeKnownFunctions(t *testing.T) {
	// Majority-of-3: minimum is 6 literals.
	maj := bfunc.FromPredicate(3, func(p uint64) bool {
		c := 0
		for i := 0; i < 3; i++ {
			c += int(p >> uint(i) & 1)
		}
		return c >= 2
	})
	res := Minimize(maj, Options{})
	if !validCover(maj, res.Cover) || res.Literals != 6 {
		t.Fatalf("majority: %d literals, cover %v", res.Literals, res.Cover)
	}

	// Single cube function: must collapse to that cube.
	cubeFn := bfunc.FromPredicate(5, func(p uint64) bool { return p&0b10001 == 0b10000 })
	res = Minimize(cubeFn, Options{})
	if len(res.Cover) != 1 || res.Literals != 2 {
		t.Fatalf("single cube: %v", res.Cover)
	}
}

func TestMinimizeDegenerate(t *testing.T) {
	if res := Minimize(bfunc.New(3, nil), Options{}); len(res.Cover) != 0 {
		t.Fatalf("empty: %v", res.Cover)
	}
	one := bfunc.FromPredicate(3, func(uint64) bool { return true })
	res := Minimize(one, Options{})
	if len(res.Cover) != 1 || res.Cover[0].Literals() != 0 {
		t.Fatalf("constant one: %v", res.Cover)
	}
	// Constant one via DC.
	oneDC := bfunc.NewDC(2, []uint64{0}, []uint64{1, 2, 3})
	res = Minimize(oneDC, Options{})
	if res.Literals != 0 {
		t.Fatalf("constant-one-with-DC: %v", res.Cover)
	}
}

func TestMinimizeWideInput(t *testing.T) {
	// n=16 with a few thousand minterms: far beyond QM's comfort zone;
	// the heuristic must both finish quickly and produce a valid,
	// compact cover. Function: a band comparator a > b on 8-bit halves
	// restricted to a thin band (sparse, cube-rich).
	n := 16
	var on []uint64
	for a := uint64(0); a < 256; a++ {
		for d := uint64(1); d <= 2; d++ {
			if a >= d {
				on = append(on, a<<8|(a-d))
			}
		}
	}
	f := bfunc.New(n, on)
	res := Minimize(f, Options{})
	// Validity check on care points plus random off points (2^16 full
	// sweep is still fine, do it).
	if !validCover(f, res.Cover) {
		t.Fatal("invalid cover on n=16")
	}
	if len(res.Cover) >= f.OnCount() {
		t.Fatalf("no compression: %d cubes for %d minterms", len(res.Cover), f.OnCount())
	}
}

func TestIterationCap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	fn := randomFunc(rng, 5, false)
	res := Minimize(fn, Options{MaxIterations: 1})
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	if !validCover(fn, res.Cover) {
		t.Fatal("invalid cover with capped iterations")
	}
}

func BenchmarkMinimize10(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var on []uint64
	for p := uint64(0); p < 1024; p++ {
		if rng.Intn(4) == 0 {
			on = append(on, p)
		}
	}
	f := bfunc.New(10, on)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Minimize(f, Options{})
	}
}
