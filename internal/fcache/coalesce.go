package fcache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Outcome reports how a Group.Do call was resolved.
type Outcome uint8

const (
	// Led: this call was elected leader and ran fn itself.
	Led Outcome = iota
	// Joined: this call waited on a concurrent leader for the same key
	// and received its (successful) result.
	Joined
	// Detached: this call's context expired before a result arrived.
	// The leader keeps computing; other waiters are unaffected.
	Detached
)

func (o Outcome) String() string {
	switch o {
	case Led:
		return "led"
	case Joined:
		return "joined"
	case Detached:
		return "detached"
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// flight is one in-progress leader computation plus its waiters.
type flight[V any] struct {
	done    chan struct{} // closed after val/err are set
	waiters atomic.Int64
	val     V
	err     error
}

// Group coalesces concurrent identical requests: calls to Do with the
// same key while a computation for that key is in flight wait for the
// leader instead of recomputing. Unlike x/sync/singleflight it is
// context-aware and failure-isolated:
//
//   - the leader runs fn under its *own* context only — a waiter
//     abandoning the flight (client gone, deadline hit) never cancels
//     or otherwise poisons the leader or the other waiters;
//   - a waiter whose context expires detaches with its own context
//     error, not the leader's eventual result;
//   - a leader error is never broadcast: the failure belongs to the
//     leader's budget, so each live waiter retries — re-checking its
//     own context — and one of them is elected the next leader.
//
// The zero Group is ready to use.
type Group[V any] struct {
	mu      sync.Mutex
	flights map[Key]*flight[V]
}

// Do executes fn for k, coalescing with any in-flight call for the same
// key. The leader's fn receives a live count of waiters currently
// coalesced onto it (detached waiters leave the count; informational).
// The
// leader's (value, error) is returned with Outcome Led; waiters get the
// leader's value with Joined on success, retry on leader failure, and
// (zero, ctx.Err()) with Detached when their own context dies first.
//
// fn runs exactly as often as leaders are elected: once if it succeeds
// or if no waiter outlives a failure, more if failures leave live
// waiters behind. Callers that cache fn's result should re-check their
// cache before calling Do.
func (g *Group[V]) Do(ctx context.Context, k Key, fn func(waiters func() int64) (V, error)) (V, Outcome, error) {
	var zero V
	for {
		if err := ctx.Err(); err != nil {
			return zero, Detached, err
		}
		g.mu.Lock()
		if g.flights == nil {
			g.flights = make(map[Key]*flight[V])
		}
		f, ok := g.flights[k]
		if !ok {
			f = &flight[V]{done: make(chan struct{})}
			g.flights[k] = f
			g.mu.Unlock()
			g.lead(k, f, fn)
			return f.val, Led, f.err
		}
		f.waiters.Add(1)
		g.mu.Unlock()
		select {
		case <-f.done:
			if f.err == nil {
				return f.val, Joined, nil
			}
			// Leader failed under its own budget; retry (and maybe
			// lead). The loop re-checks this waiter's context first.
		case <-ctx.Done():
			f.waiters.Add(-1)
			return zero, Detached, ctx.Err()
		}
	}
}

// Waiters reports how many callers are currently coalesced onto the
// in-flight computation for k, or 0 when no flight is active. Exposed
// for observability and deterministic tests.
func (g *Group[V]) Waiters(k Key) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[k]; ok {
		return f.waiters.Load()
	}
	return 0
}

// lead runs fn and publishes the flight's result. The flight is removed
// from the map before done is closed, so by the time any waiter (or any
// later caller) observes the result, a fresh call for the same key will
// start a fresh flight. A panicking fn is unregistered too — it must
// not wedge every future call for the key — and the panic is rethrown
// with the flight failed.
func (g *Group[V]) lead(k Key, f *flight[V], fn func(waiters func() int64) (V, error)) {
	finished := false
	defer func() {
		if !finished {
			f.err = fmt.Errorf("fcache: leader panicked for key %s", k)
		}
		g.mu.Lock()
		delete(g.flights, k)
		g.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = fn(f.waiters.Load)
	finished = true
}
