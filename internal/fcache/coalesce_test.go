package fcache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCoalesces: N concurrent calls for one key elect exactly one
// leader; everyone gets the leader's value.
func TestGroupCoalesces(t *testing.T) {
	var g Group[int]
	k := hashKey(1)
	const callers = 16

	var computes atomic.Int64
	enter := make(chan struct{}) // leader entered fn
	release := make(chan struct{})
	var wg sync.WaitGroup
	outcomes := make([]Outcome, callers)
	values := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, oc, err := g.Do(context.Background(), k, func(waiters func() int64) (int, error) {
				computes.Add(1)
				close(enter)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			outcomes[i], values[i] = oc, v
		}(i)
	}
	<-enter
	// Give waiters a moment to pile onto the flight, then release.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	led, joined := 0, 0
	for i := range outcomes {
		if values[i] != 42 {
			t.Errorf("caller %d got %d, want 42", i, values[i])
		}
		switch outcomes[i] {
		case Led:
			led++
		case Joined:
			joined++
		default:
			t.Errorf("caller %d outcome %v", i, outcomes[i])
		}
	}
	if led != 1 || joined != callers-1 {
		t.Errorf("led=%d joined=%d, want 1/%d", led, joined, callers-1)
	}
}

// TestGroupWaiterDetach: a waiter whose context expires detaches with
// its own error; the leader finishes undisturbed.
func TestGroupWaiterDetach(t *testing.T) {
	var g Group[int]
	k := hashKey(2)
	enter := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), k, func(func() int64) (int, error) {
			close(enter)
			<-release
			return 7, nil
		})
		leaderDone <- err
	}()
	<-enter

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, oc, err := g.Do(ctx, k, func(func() int64) (int, error) {
		t.Error("waiter computed despite live leader")
		return 0, nil
	})
	if oc != Detached || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter outcome %v err %v, want Detached/deadline", oc, err)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader poisoned by waiter detach: %v", err)
	}
}

// TestGroupLeaderErrorNotBroadcast: waiters never receive the leader's
// error; a live waiter retries and becomes the next leader.
func TestGroupLeaderErrorNotBroadcast(t *testing.T) {
	var g Group[int]
	k := hashKey(3)
	boom := errors.New("leader budget exhausted")
	enter := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, oc, err := g.Do(context.Background(), k, func(func() int64) (int, error) {
			calls.Add(1)
			close(enter)
			<-release
			return 0, boom
		})
		if oc != Led || !errors.Is(err, boom) {
			t.Errorf("first leader: outcome %v err %v", oc, err)
		}
	}()
	<-enter

	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		v, oc, err := g.Do(context.Background(), k, func(func() int64) (int, error) {
			calls.Add(1)
			return 99, nil
		})
		if err != nil || v != 99 || oc != Led {
			t.Errorf("retrying waiter: v=%d outcome %v err %v, want 99/Led/nil", v, oc, err)
		}
	}()
	close(release)
	<-leaderDone
	<-waiterDone
	if got := calls.Load(); got != 2 {
		t.Errorf("fn ran %d times, want 2 (failed leader + retried waiter)", got)
	}
}

// TestGroupDeadContextNeverLeads: a call whose context is already done
// must not be elected leader.
func TestGroupDeadContextNeverLeads(t *testing.T) {
	var g Group[int]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, oc, err := g.Do(ctx, hashKey(4), func(func() int64) (int, error) {
		t.Error("fn ran with dead context")
		return 0, nil
	})
	if oc != Detached || !errors.Is(err, context.Canceled) {
		t.Errorf("outcome %v err %v, want Detached/Canceled", oc, err)
	}
}

// TestGroupPanicUnblocks: a panicking leader must not wedge future
// calls for the key.
func TestGroupPanicUnblocks(t *testing.T) {
	var g Group[int]
	k := hashKey(5)
	func() {
		defer func() { recover() }()
		g.Do(context.Background(), k, func(func() int64) (int, error) { panic("kaboom") })
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, oc, err := g.Do(context.Background(), k, func(func() int64) (int, error) { return 5, nil })
		if v != 5 || oc != Led || err != nil {
			t.Errorf("post-panic Do: v=%d oc=%v err=%v", v, oc, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Do wedged after leader panic")
	}
}

// TestGroupWaiterCount: the leader observes how many waiters coalesced
// onto its flight.
func TestGroupWaiterCount(t *testing.T) {
	var g Group[int]
	k := hashKey(6)
	enter := make(chan struct{})
	release := make(chan struct{})
	seen := make(chan int64, 1)

	go g.Do(context.Background(), k, func(waiters func() int64) (int, error) {
		close(enter)
		<-release
		seen <- waiters()
		return 0, nil
	})
	<-enter
	const extra = 4
	var wg sync.WaitGroup
	for i := 0; i < extra; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Do(context.Background(), k, func(func() int64) (int, error) { return 0, nil })
		}()
	}
	// Wait for all waiters to register before releasing the leader.
	deadline := time.Now().Add(5 * time.Second)
	for g.Waiters(k) != extra {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never registered: %d", g.Waiters(k))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if got := <-seen; got != extra {
		t.Errorf("leader saw %d waiters, want %d", got, extra)
	}
	wg.Wait()
}
