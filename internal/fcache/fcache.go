// Package fcache provides a canonical-function cache for minimization
// results. Two requests whose Boolean functions differ only by a
// permutation of input variables (P-equivalence) or by the textual
// representation of their DC sets reduce to the same canonical function
// and therefore the same cache key, so the second request is served
// from the cache and its SPP form is mapped back to the request's
// variable order.
//
// Safety does not depend on the canonicalization being perfect: the key
// is a SHA-256 hash of the canonical point sets, so equal keys imply
// identical canonical functions (up to hash collision). When the
// tie-break search is cut off by its work budget the canonical form is
// merely best-effort — two equivalent functions may map to different
// keys and miss the cache — but a hit is always sound. Callers that
// want belt-and-braces safety can store the canonical *bfunc.Func in
// the cache value and Equal-check it on hit.
package fcache

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"repro/internal/bfunc"
	"repro/internal/bitvec"
)

// Key identifies a canonical function (plus, via Derive, any
// result-affecting options) in the cache.
type Key [32]byte

// String returns the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey decodes the 64-hex-digit form produced by Key.String. It is
// how serving layers turn a client-supplied base key (an opaque token
// from an earlier response) back into a cache key.
func ParseKey(s string) (Key, error) {
	var k Key
	if hex.DecodedLen(len(s)) != len(k) {
		return Key{}, fmt.Errorf("fcache: key must be %d hex digits, got %d characters", 2*len(k), len(s))
	}
	if _, err := hex.Decode(k[:], []byte(s)); err != nil {
		return Key{}, fmt.Errorf("fcache: bad key: %v", err)
	}
	return k, nil
}

// Derive returns a key that mixes in a tag describing result-affecting
// options (e.g. "k=2;exact=true"), so the same function minimized under
// different options occupies distinct cache slots.
func (k Key) Derive(tag string) Key {
	h := sha256.New()
	h.Write(k[:])
	io.WriteString(h, tag)
	var out Key
	h.Sum(out[:0])
	return out
}

// WarmStateKey derives the cache slot of the shared canonical-space
// warm state: one heavy snapshot per (canonical function, option tag),
// no matter how many permuted-equivalent client bases point at it.
// canonical must be a key from Canonicalize (or a Derive-free KeyOf of
// an already-canonical function).
func WarmStateKey(canonical Key, tag string) Key {
	return canonical.Derive("warmstate;" + tag)
}

// WarmPointerKey derives the cache slot of a per-client warm pointer
// entry: keyed by the client's exact (request-space) function key, it
// carries the client's permutation plus a WarmStateKey reference to the
// shared canonical snapshot. The "warm;" vs "warmstate;" tag prefixes
// keep the two keyspaces disjoint for every tag.
func WarmPointerKey(exact Key, tag string) Key {
	return exact.Derive("warm;" + tag)
}

// tieBreakWork bounds the point-mapping work spent enumerating
// permutations inside ambiguous variable classes. Small functions get
// thousands of candidates; huge ON sets fall back to a deterministic
// (but not permutation-invariant) order almost immediately.
const tieBreakWork = 1 << 22

// Canonicalize computes a canonical representative of f's
// P-equivalence class. It returns the cache key, the permutation perm
// such that canonical variable perm[i] corresponds to f's variable i
// (canon's points are bitvec.PermutePoint(p, n, perm) of f's points),
// and the canonical function itself. Results computed over canon map
// back to f's variable order via the inverse permutation.
//
// The canonicalization is exact — equivalent functions get equal keys —
// whenever the class refinement plus the bounded tie-break resolves
// every variable; beyond the work budget it degrades to a deterministic
// best effort (equal inputs still get equal keys, some equivalent
// inputs may not).
func Canonicalize(f *bfunc.Func) (Key, []int, *bfunc.Func) {
	k, perm, canon, _ := CanonicalizeCtx(context.Background(), f)
	return k, perm, canon
}

// CanonicalizeCtx is Canonicalize with cancellation: the refinement
// rounds and the tie-break enumeration poll ctx and abort with its
// error, so a per-request deadline bounds canonicalization of large or
// adversarial inputs. On error the other return values are unusable.
// Cancellation never yields a truncated key — truncation by the
// (deterministic) work budget does not report an error.
func CanonicalizeCtx(ctx context.Context, f *bfunc.Func) (Key, []int, *bfunc.Func, error) {
	class, err := refineClasses(ctx, f)
	if err != nil {
		return Key{}, nil, nil, err
	}
	perm, err := tieBreak(ctx, f, class)
	if err != nil {
		return Key{}, nil, nil, err
	}
	canon := applyPerm(f, perm)
	return keyOf(canon), perm, canon, nil
}

// KeyOf returns the cache key of f without canonicalizing: equal
// functions get equal keys, permuted ones do not. Useful for tests and
// for callers that have already canonicalized.
func KeyOf(f *bfunc.Func) Key { return keyOf(f) }

// refineClasses partitions variables into equivalence classes by
// iterated Weisfeiler–Leman-style refinement over the point/variable
// incidence structure: each round hashes, per variable, the multiset of
// point signatures (ON/DC tag + multiset of current classes of the
// point's set bits) of the points containing that variable, then splits
// classes that hash apart. Equivalent-under-permutation inputs produce
// identical class structures. The initial uniform class makes round one
// equivalent to the classic per-weight bit-count signature.
func refineClasses(ctx context.Context, f *bfunc.Func) ([]int, error) {
	n := f.N()
	class := make([]int, n)
	nclasses := 1
	for iter := 0; iter < n; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		varSigs := make([][]uint64, n)
		cancelled := false
		collect := func(pts []uint64, tag byte) {
			for j, p := range pts {
				if j&1023 == 1023 && ctx.Err() != nil {
					cancelled = true
					return
				}
				h := pointHash(p, n, class, tag)
				for i := 0; i < n; i++ {
					if p&bitvec.VarMask(n, i) != 0 {
						varSigs[i] = append(varSigs[i], h)
					}
				}
			}
		}
		collect(f.On(), 1)
		collect(f.DC(), 2)
		if cancelled {
			return nil, ctx.Err()
		}
		varHash := make([]uint64, n)
		for i := 0; i < n; i++ {
			sort.Slice(varSigs[i], func(a, b int) bool { return varSigs[i][a] < varSigs[i][b] })
			varHash[i] = hashSeq(uint64(class[i]), varSigs[i])
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ia, ib := order[a], order[b]
			if class[ia] != class[ib] {
				return class[ia] < class[ib]
			}
			return varHash[ia] < varHash[ib]
		})
		next := make([]int, n)
		nnext := 0
		for idx, v := range order {
			if idx > 0 {
				prev := order[idx-1]
				if class[prev] != class[v] || varHash[prev] != varHash[v] {
					nnext++
				}
			}
			next[v] = nnext
		}
		nnext++
		if nnext == nclasses {
			return class, nil
		}
		class, nclasses = next, nnext
		if nclasses == n {
			return class, nil
		}
	}
	return class, nil
}

// pointHash hashes a point's invariant view: its ON/DC tag plus the
// sorted multiset of variable classes at its set bits.
func pointHash(p uint64, n int, class []int, tag byte) uint64 {
	var classes []uint64
	for i := 0; i < n; i++ {
		if p&bitvec.VarMask(n, i) != 0 {
			classes = append(classes, uint64(class[i]))
		}
	}
	sort.Slice(classes, func(a, b int) bool { return classes[a] < classes[b] })
	return hashSeq(uint64(tag), classes)
}

func hashSeq(seed uint64, vals []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	h.Write(buf[:])
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// tieBreak turns the class partition into a concrete permutation.
// Classes are laid out in class order; within a class, every assignment
// of members to positions yields an equivalent candidate, so we
// enumerate all combinations (as long as the total point-mapping work
// stays under tieBreakWork) and keep the one whose permuted (ON, DC)
// point lists are lexicographically smallest. If the class structure is
// too ambiguous to afford enumeration, members keep their original
// relative order — deterministic, but not permutation-invariant. The
// walk itself meters the work actually spent, so even a wrong estimate
// cannot exceed the budget; ctx cancellation aborts with an error
// rather than a (nondeterministically) truncated permutation.
func tieBreak(ctx context.Context, f *bfunc.Func, class []int) ([]int, error) {
	n := f.N()
	groups := make([][]int, 0, n)
	byClass := map[int][]int{}
	for i := 0; i < n; i++ {
		byClass[class[i]] = append(byClass[class[i]], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	ambiguous := false
	overBudget := false
	candidates := 1
	pts := f.OnCount() + len(f.DC())
	if pts == 0 {
		pts = 1
	}
	for _, c := range classes {
		g := byClass[c]
		groups = append(groups, g)
		if len(g) > 1 {
			ambiguous = true
			// Once over budget, stop multiplying: candidates stays
			// bounded (no overflow) and the flag cannot be unset.
			for k := 2; k <= len(g) && !overBudget; k++ {
				candidates *= k
				if candidates > tieBreakWork/pts {
					overBudget = true
				}
			}
		}
	}

	// Fallback / unambiguous layout: group members in original index
	// order at the group's positions.
	layout := func() []int {
		perm := make([]int, n)
		pos := 0
		for _, g := range groups {
			for _, v := range g {
				perm[v] = pos
				pos++
			}
		}
		return perm
	}
	if !ambiguous || overBudget {
		return layout(), nil
	}

	best := layout()
	bestOn, bestDC := mapPoints(f, best)
	perm := make([]int, n)
	work, leaves := 0, 0
	var ctxErr error
	var walk func(gi, pos int) bool // false stops the enumeration
	walk = func(gi, pos int) bool {
		if gi == len(groups) {
			leaves++
			if leaves&255 == 0 {
				if err := ctx.Err(); err != nil {
					ctxErr = err
					return false
				}
			}
			work += pts
			if work > tieBreakWork {
				return false // hard cap: the estimate undercounted
			}
			on, dc := mapPoints(f, perm)
			if lessPoints(on, dc, bestOn, bestDC) {
				copy(best, perm)
				bestOn, bestDC = on, dc
			}
			return true
		}
		g := groups[gi]
		return permuteGroup(g, func(assign []int) bool {
			for k, v := range assign {
				perm[v] = pos + k
			}
			return walk(gi+1, pos+len(g))
		})
	}
	walk(0, 0)
	if ctxErr != nil {
		return nil, ctxErr
	}
	return best, nil
}

// permuteGroup calls fn with every ordering of g (Heap's algorithm)
// until fn returns false; it reports whether the enumeration ran to
// completion.
func permuteGroup(g []int, fn func([]int) bool) bool {
	a := append([]int(nil), g...)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == 1 {
			return fn(a)
		}
		for i := 0; i < k; i++ {
			if !rec(k - 1) {
				return false
			}
			if k%2 == 0 {
				a[i], a[k-1] = a[k-1], a[i]
			} else {
				a[0], a[k-1] = a[k-1], a[0]
			}
		}
		return true
	}
	return rec(len(a))
}

func mapPoints(f *bfunc.Func, perm []int) (on, dc []uint64) {
	n := f.N()
	on = make([]uint64, f.OnCount())
	for i, p := range f.On() {
		on[i] = bitvec.PermutePoint(p, n, perm)
	}
	sort.Slice(on, func(a, b int) bool { return on[a] < on[b] })
	if len(f.DC()) > 0 {
		dc = make([]uint64, len(f.DC()))
		for i, p := range f.DC() {
			dc[i] = bitvec.PermutePoint(p, n, perm)
		}
		sort.Slice(dc, func(a, b int) bool { return dc[a] < dc[b] })
	}
	return on, dc
}

func lessPoints(on1, dc1, on2, dc2 []uint64) bool {
	for i := range on1 {
		if on1[i] != on2[i] {
			return on1[i] < on2[i]
		}
	}
	for i := range dc1 {
		if dc1[i] != dc2[i] {
			return dc1[i] < dc2[i]
		}
	}
	return false
}

func applyPerm(f *bfunc.Func, perm []int) *bfunc.Func {
	on, dc := mapPoints(f, perm)
	return bfunc.NewDC(f.N(), on, dc)
}

func keyOf(f *bfunc.Func) Key {
	h := sha256.New()
	var buf [8]byte
	write := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	write(uint64(f.N()))
	write(uint64(f.OnCount()))
	for _, p := range f.On() {
		write(p)
	}
	write(^uint64(0)) // ON/DC separator
	write(uint64(len(f.DC())))
	for _, p := range f.DC() {
		write(p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// InversePerm returns the inverse of perm: if perm maps original
// variable i to canonical position perm[i], the inverse maps canonical
// variable j back to original position inv[j].
func InversePerm(perm []int) []int {
	inv := make([]int, len(perm))
	for i, v := range perm {
		inv[v] = i
	}
	return inv
}
