package fcache

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bfunc"
	"repro/internal/bitvec"
)

func permFunc(f *bfunc.Func, perm []int) *bfunc.Func {
	n := f.N()
	mapPts := func(pts []uint64) []uint64 {
		out := make([]uint64, len(pts))
		for i, p := range pts {
			out[i] = bitvec.PermutePoint(p, n, perm)
		}
		return out
	}
	return bfunc.NewDC(n, mapPts(f.On()), mapPts(f.DC()))
}

// TestCanonicalizeTable drives the ISSUE's key invariants: variable
// permutation and DC-set representation must not change the key;
// distinct functions must.
func TestCanonicalizeTable(t *testing.T) {
	key := func(f *bfunc.Func) Key {
		k, _, _ := Canonicalize(f)
		return k
	}
	cases := []struct {
		name string
		a, b *bfunc.Func
		same bool
	}{
		{
			name: "identical functions",
			a:    bfunc.New(3, []uint64{0, 3, 5}),
			b:    bfunc.New(3, []uint64{0, 3, 5}),
			same: true,
		},
		{
			name: "duplicate ON minterms normalize away",
			a:    bfunc.New(3, []uint64{0, 3, 5}),
			b:    bfunc.New(3, []uint64{5, 0, 3, 3, 0}),
			same: true,
		},
		{
			name: "swap x0 and x2",
			a:    bfunc.New(3, []uint64{0b100, 0b110}),
			b:    bfunc.New(3, []uint64{0b001, 0b011}),
			same: true,
		},
		{
			name: "rotate all three variables",
			a:    bfunc.New(3, []uint64{0b100, 0b010, 0b111}),
			b:    bfunc.New(3, []uint64{0b010, 0b001, 0b111}),
			same: true,
		},
		{
			name: "DC duplicates and ON-overlap normalize away",
			a:    bfunc.NewDC(3, []uint64{1, 2}, []uint64{4, 6}),
			b:    bfunc.NewDC(3, []uint64{1, 2}, []uint64{6, 4, 4, 1, 2}),
			same: true,
		},
		{
			name: "permutation with DC set",
			a:    bfunc.NewDC(3, []uint64{0b100}, []uint64{0b101}),
			b:    bfunc.NewDC(3, []uint64{0b001}, []uint64{0b101}),
			same: true,
		},
		{
			name: "different ON sets (inequivalent weight profile)",
			a:    bfunc.New(3, []uint64{0b000, 0b001, 0b010}),
			b:    bfunc.New(3, []uint64{0b000, 0b001, 0b111}),
			same: false,
		},
		{
			name: "equivalent under x1-x2 swap",
			a:    bfunc.New(3, []uint64{0, 3, 5}),
			b:    bfunc.New(3, []uint64{0, 3, 6}),
			same: true,
		},
		{
			name: "DC point is not an ON point",
			a:    bfunc.NewDC(3, []uint64{1, 2}, []uint64{4}),
			b:    bfunc.New(3, []uint64{1, 2, 4}),
			same: false,
		},
		{
			name: "ON-only vs same care set with DC",
			a:    bfunc.New(3, []uint64{1, 2, 4}),
			b:    bfunc.NewDC(3, []uint64{1, 2}, []uint64{4}),
			same: false,
		},
		{
			name: "different variable counts",
			a:    bfunc.New(3, []uint64{1, 2}),
			b:    bfunc.New(4, []uint64{1, 2}),
			same: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ka, kb := key(tc.a), key(tc.b)
			if (ka == kb) != tc.same {
				t.Errorf("keys equal=%v, want %v\n  a=%v key=%s\n  b=%v key=%s",
					ka == kb, tc.same, tc.a, ka, tc.b, kb)
			}
		})
	}
}

// TestCanonicalizeRandomPermutations: for random functions, every
// permutation of the inputs must land on the same key, and the
// returned perm must actually map f onto canon.
func TestCanonicalizeRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		var on, dc []uint64
		for p := uint64(0); p < 1<<uint(n); p++ {
			switch rng.Intn(4) {
			case 0:
				on = append(on, p)
			case 1:
				dc = append(dc, p)
			}
		}
		if len(on) == 0 {
			on = []uint64{uint64(rng.Intn(1 << uint(n)))}
		}
		f := bfunc.NewDC(n, on, dc)
		k0, perm, canon := Canonicalize(f)

		if got := permFunc(f, perm); !got.Equal(canon) {
			t.Fatalf("trial %d: perm does not map f onto canon\n  f=%v perm=%v", trial, f, perm)
		}
		if got := permFunc(canon, InversePerm(perm)); !got.Equal(f) {
			t.Fatalf("trial %d: inverse perm does not map canon back to f", trial)
		}
		for pi := 0; pi < 5; pi++ {
			shuffle := rng.Perm(n)
			g := permFunc(f, shuffle)
			kg, _, canonG := Canonicalize(g)
			if kg != k0 {
				t.Fatalf("trial %d: permuted function changed key\n  f=%v\n  shuffle=%v", trial, f, shuffle)
			}
			if !canonG.Equal(canon) {
				t.Fatalf("trial %d: canonical forms differ for equivalent inputs", trial)
			}
		}
	}
}

// TestTieBreakBudgetSinglePoint: a single-point function over many
// variables makes every variable ambiguous (13! candidate orderings)
// while pts==1 made the old poison-value budget check a no-op, so
// Canonicalize enumerated the full factorial. The budget fallback must
// kick in and return instantly — and deterministically.
func TestTieBreakBudgetSinglePoint(t *testing.T) {
	for _, f := range []*bfunc.Func{
		bfunc.New(13, []uint64{0}),
		bfunc.New(30, []uint64{0}),
		bfunc.New(20, []uint64{1}),
	} {
		start := time.Now()
		k1, perm, canon := Canonicalize(f)
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("n=%d: Canonicalize took %v; budget fallback did not trigger", f.N(), elapsed)
		}
		if got := permFunc(f, perm); !got.Equal(canon) {
			t.Errorf("n=%d: perm does not map f onto canon", f.N())
		}
		if k2, _, _ := Canonicalize(f); k2 != k1 {
			t.Errorf("n=%d: budget fallback is nondeterministic", f.N())
		}
	}
}

// TestTieBreakWalkWorkCap: many small ambiguous classes keep the
// estimated candidate count within budget, yet the walk must still be
// bounded by its own work meter and stay fast.
func TestTieBreakWalkWorkCap(t *testing.T) {
	// 8 fully symmetric variables: 8! = 40320 candidates over 4 points,
	// well under budget — the walk runs to completion and stays exact.
	on := []uint64{0b00000011, 0b00001100, 0b00110000, 0b11000000}
	f := bfunc.New(8, on)
	start := time.Now()
	k0, _, canon := Canonicalize(f)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("walk took %v", elapsed)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5; i++ {
		g := permFunc(f, rng.Perm(8))
		if kg, _, canonG := Canonicalize(g); kg != k0 || !canonG.Equal(canon) {
			t.Fatal("permuted symmetric function changed key")
		}
	}
}

// TestCanonicalizeCtxCancelled: a cancelled context aborts
// canonicalization with its error instead of returning a truncated
// (and so nondeterministic) key.
func TestCanonicalizeCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := CanonicalizeCtx(ctx, bfunc.New(4, []uint64{1, 2, 4, 8})); err != context.Canceled {
		t.Errorf("CanonicalizeCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
	k, perm, canon, err := CanonicalizeCtx(context.Background(), bfunc.New(4, []uint64{1, 2, 4, 8}))
	if err != nil || perm == nil || canon == nil {
		t.Fatalf("CanonicalizeCtx on live ctx failed: %v", err)
	}
	if k2, _, _ := Canonicalize(bfunc.New(4, []uint64{1, 2, 4, 8})); k2 != k {
		t.Error("CanonicalizeCtx and Canonicalize disagree")
	}
}

func TestKeyDerive(t *testing.T) {
	f := bfunc.New(3, []uint64{1, 2, 4})
	k, _, _ := Canonicalize(f)
	a, b := k.Derive("k=1;exact=true"), k.Derive("k=2;exact=true")
	if a == b {
		t.Error("different tags produced equal derived keys")
	}
	if a != k.Derive("k=1;exact=true") {
		t.Error("Derive is not deterministic")
	}
	if a == k {
		t.Error("derived key equals base key")
	}
}

// The shared-warm-state and per-client-pointer keyspaces must stay
// disjoint for every tag — a pointer entry colliding with a state entry
// would hand a client another client's permutation bookkeeping.
func TestWarmKeyspacesDisjoint(t *testing.T) {
	f := bfunc.New(3, []uint64{1, 2, 4})
	k, _, _ := Canonicalize(f)
	for _, tag := range []string{"", "alg=exact;k=2", "state;x"} {
		sk, pk := WarmStateKey(k, tag), WarmPointerKey(k, tag)
		if sk == pk {
			t.Errorf("tag %q: state and pointer keys collide", tag)
		}
		if sk == k || pk == k {
			t.Errorf("tag %q: warm key equals base key", tag)
		}
		if sk != WarmStateKey(k, tag) || pk != WarmPointerKey(k, tag) {
			t.Errorf("tag %q: warm keys not deterministic", tag)
		}
	}
	// A crafted tag must not alias one keyspace into the other.
	if WarmPointerKey(k, "state;x") == WarmStateKey(k, "x") {
		t.Error("pointer tag aliases into the state keyspace")
	}
}

func TestLRUCache(t *testing.T) {
	c := NewSharded[int](2, 1) // single shard: exact global LRU
	k := func(b byte) Key {
		var k Key
		k[0] = b
		return k
	}
	if _, ok := c.Get(k(1)); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put(k(1), 10)
	c.Put(k(2), 20)
	if v, ok := c.Get(k(1)); !ok || v != 10 {
		t.Fatalf("Get(1) = %d,%v want 10,true", v, ok)
	}
	c.Put(k(3), 30) // evicts 2 (LRU; 1 was just touched)
	if _, ok := c.Get(k(2)); ok {
		t.Error("entry 2 should have been evicted")
	}
	if v, ok := c.Get(k(1)); !ok || v != 10 {
		t.Errorf("entry 1 should have survived, got %d,%v", v, ok)
	}
	if v, ok := c.Get(k(3)); !ok || v != 30 {
		t.Errorf("entry 3 should be present, got %d,%v", v, ok)
	}
	c.Put(k(3), 33) // replace in place
	if v, _ := c.Get(k(3)); v != 33 {
		t.Errorf("replace failed, got %d", v)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	st := c.Stats()
	if st.Hits != 4 || st.Misses != 2 {
		t.Errorf("Stats = %d hits, %d misses; want 4, 2", st.Hits, st.Misses)
	}
	if st.Evictions != 1 {
		t.Errorf("Stats evictions = %d, want 1", st.Evictions)
	}
	if st.Shards != 1 {
		t.Errorf("Stats shards = %d, want 1", st.Shards)
	}
}

func TestLRUCacheEvictionOrder(t *testing.T) {
	c := NewSharded[int](3, 1)
	k := func(b byte) Key {
		var k Key
		k[0] = b
		return k
	}
	for i := byte(1); i <= 3; i++ {
		c.Put(k(i), int(i))
	}
	c.Get(k(1)) // order now 1,3,2 (MRU..LRU)
	c.Put(k(4), 4)
	if _, ok := c.Get(k(2)); ok {
		t.Error("2 was LRU and should be gone")
	}
	for _, b := range []byte{1, 3, 4} {
		if _, ok := c.Get(k(b)); !ok {
			t.Errorf("%d should still be cached", b)
		}
	}
}
