package fcache

import (
	"encoding/binary"
	"runtime"
	"sync"
)

// Cache is a thread-safe fixed-capacity LRU cache keyed by Key, split
// into power-of-two shards so concurrent lookups on different keys
// never contend on one mutex. Each shard is an independent LRU list
// with its own lock and hit/miss/eviction counters; Stats aggregates
// them. Keys are SHA-256 outputs (see Canonicalize), so the low 64 bits
// spread uniformly over the shards. The zero value is not usable;
// construct with New or NewSharded.
type Cache[V any] struct {
	shards []shard[V]
	mask   uint64
	// weigh, when non-nil, charges each entry its payload weight in
	// bytes; eviction then enforces the byte budget in addition to the
	// entry count. Weights are computed once at Put time.
	weigh func(V) int64
}

// shard is one independently locked LRU. Recency is tracked per shard:
// eviction picks the least recently used entry of the full shard, which
// approximates global LRU when keys hash uniformly.
type shard[V any] struct {
	mu                      sync.Mutex
	max                     int
	maxBytes                int64 // 0 = unlimited
	bytes                   int64 // sum of resident entry weights
	items                   map[Key]*node[V]
	head, tail              *node[V] // head = most recently used
	hits, misses, evictions uint64
	rejected                uint64
}

type node[V any] struct {
	key        Key
	val        V
	weight     int64
	prev, next *node[V]
}

// Stats is the aggregate of the per-shard counters, taken shard by
// shard (each shard's triple is internally consistent; the aggregate is
// exact whenever the cache is quiescent).
type Stats struct {
	Hits, Misses uint64
	// Evictions counts capacity evictions plus entries discarded by a
	// failed GetIf validation.
	Evictions uint64
	// Rejected counts Put calls dropped because a single entry outweighed
	// its shard's whole byte budget (weighted caches only).
	Rejected uint64
	// Bytes is the resident payload weight (weighted caches; 0 otherwise).
	Bytes int64
	// Shards is the shard count the cache was built with.
	Shards int
}

// New returns an empty cache holding at most (approximately) max
// entries (max ≥ 1), sharded for the current GOMAXPROCS. Capacity is
// divided evenly: each shard holds at most ceil(max/shards) entries, so
// the total can exceed max by up to shards-1 when keys hash unevenly.
func New[V any](max int) *Cache[V] {
	return NewSharded[V](max, 0)
}

// NewSharded is New with an explicit shard count, rounded up to a power
// of two and capped at max (so every shard holds at least one entry)
// and at 256. shards <= 0 selects the default: the smallest power of
// two >= GOMAXPROCS, capped at 64. NewSharded(max, 1) is an exact
// single-list LRU.
func NewSharded[V any](max, shards int) *Cache[V] {
	return NewWeighted[V](max, 0, shards, nil)
}

// NewWeighted is NewSharded with size-aware eviction: weigh reports each
// entry's payload weight in bytes, and eviction keeps every shard within
// both its entry budget and its share of maxBytes (ceil(maxBytes/shards);
// 0 or a nil weigh disables the byte limit). An entry outweighing a whole
// shard's byte budget is rejected at Put rather than flushing the shard,
// and counted in Stats.Rejected. Weights are computed once at insert, so
// values must not grow while cached.
func NewWeighted[V any](max int, maxBytes int64, shards int, weigh func(V) int64) *Cache[V] {
	if max < 1 {
		max = 1
	}
	if shards <= 0 {
		shards = min(runtime.GOMAXPROCS(0), 64)
	}
	shards = nextPow2(min(shards, max, 256))
	perShard := (max + shards - 1) / shards
	var perShardBytes int64
	if maxBytes > 0 && weigh != nil {
		perShardBytes = (maxBytes + int64(shards) - 1) / int64(shards)
	}
	c := &Cache[V]{shards: make([]shard[V], shards), mask: uint64(shards - 1), weigh: weigh}
	for i := range c.shards {
		c.shards[i].max = perShard
		c.shards[i].maxBytes = perShardBytes
		c.shards[i].items = make(map[Key]*node[V], perShard)
	}
	return c
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (c *Cache[V]) shardOf(k Key) *shard[V] {
	return &c.shards[binary.LittleEndian.Uint64(k[:8])&c.mask]
}

// Get returns the value for k and marks it most recently used.
func (c *Cache[V]) Get(k Key) (V, bool) {
	return c.GetIf(k, nil)
}

// GetIf is Get with an admission check: a present entry is returned (and
// counted as a hit) only if valid accepts it. A present entry that fails
// validation is evicted and counted as a miss plus an eviction — the
// caller observed a key collision, and keeping the colliding entry would
// make every future lookup of either function a recompute that still
// counts as a "hit". A nil valid accepts everything.
func (c *Cache[V]) GetIf(k Key, valid func(V) bool) (V, bool) {
	s := c.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.items[k]
	if !ok {
		s.misses++
		var zero V
		return zero, false
	}
	if valid != nil && !valid(n.val) {
		s.misses++
		s.evictions++
		s.unlink(n)
		s.bytes -= n.weight
		delete(s.items, k)
		var zero V
		return zero, false
	}
	s.hits++
	s.moveToFront(n)
	return n.val, true
}

// Put inserts or replaces the value for k, marking it most recently
// used and evicting least recently used entries while the shard is over
// its entry or byte capacity.
func (c *Cache[V]) Put(k Key, v V) {
	var w int64
	if c.weigh != nil {
		w = c.weigh(v)
	}
	s := c.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.maxBytes > 0 && w > s.maxBytes {
		// The entry alone would flush the whole shard; dropping it is
		// strictly better for every other caller. If it replaces a
		// resident entry, that entry is stale now — evict it.
		s.rejected++
		if n, ok := s.items[k]; ok {
			s.unlink(n)
			s.bytes -= n.weight
			delete(s.items, k)
			s.evictions++
		}
		return
	}
	if n, ok := s.items[k]; ok {
		s.bytes += w - n.weight
		n.val = v
		n.weight = w
		s.moveToFront(n)
	} else {
		n := &node[V]{key: k, val: v, weight: w}
		s.items[k] = n
		s.bytes += w
		s.pushFront(n)
	}
	for len(s.items) > s.max || (s.maxBytes > 0 && s.bytes > s.maxBytes) {
		lru := s.tail
		s.unlink(lru)
		s.bytes -= lru.weight
		delete(s.items, lru.key)
		s.evictions++
	}
}

// Len returns the number of cached entries across all shards.
func (c *Cache[V]) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.items)
		s.mu.Unlock()
	}
	return total
}

// Stats returns the aggregated per-shard counters.
func (c *Cache[V]) Stats() Stats {
	st := Stats{Shards: len(c.shards)}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Rejected += s.rejected
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

func (s *shard[V]) pushFront(n *node[V]) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *shard[V]) unlink(n *node[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *shard[V]) moveToFront(n *node[V]) {
	if s.head == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}
