package fcache

import "sync"

// Cache is a thread-safe fixed-capacity LRU cache keyed by Key. The
// zero value is not usable; construct with New.
type Cache[V any] struct {
	mu           sync.Mutex
	max          int
	items        map[Key]*node[V]
	head, tail   *node[V] // head = most recently used
	hits, misses uint64
}

type node[V any] struct {
	key        Key
	val        V
	prev, next *node[V]
}

// New returns an empty cache holding at most max entries (max ≥ 1).
func New[V any](max int) *Cache[V] {
	if max < 1 {
		max = 1
	}
	return &Cache[V]{max: max, items: make(map[Key]*node[V], max)}
}

// Get returns the value for k and marks it most recently used.
func (c *Cache[V]) Get(k Key) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.items[k]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.moveToFront(n)
	return n.val, true
}

// Put inserts or replaces the value for k, marking it most recently
// used and evicting the least recently used entry if over capacity.
func (c *Cache[V]) Put(k Key, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.items[k]; ok {
		n.val = v
		c.moveToFront(n)
		return
	}
	n := &node[V]{key: k, val: v}
	c.items[k] = n
	c.pushFront(n)
	if len(c.items) > c.max {
		lru := c.tail
		c.unlink(lru)
		delete(c.items, lru.key)
	}
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache[V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *Cache[V]) pushFront(n *node[V]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache[V]) unlink(n *node[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *Cache[V]) moveToFront(n *node[V]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
