package fcache

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"
)

// hashKey builds a realistic (uniformly distributed) key like the ones
// Canonicalize emits, so shard selection is exercised for real.
func hashKey(i int) Key {
	return Key(sha256.Sum256([]byte(fmt.Sprintf("key-%d", i))))
}

func TestShardedCacheBasics(t *testing.T) {
	c := NewSharded[int](1024, 8)
	if got := c.Stats().Shards; got != 8 {
		t.Fatalf("shards = %d, want 8", got)
	}
	const n = 500
	for i := 0; i < n; i++ {
		c.Put(hashKey(i), i)
	}
	if c.Len() != n {
		t.Fatalf("Len = %d, want %d", c.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := c.Get(hashKey(i)); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	st := c.Stats()
	if st.Hits != n || st.Misses != 0 || st.Evictions != 0 {
		t.Errorf("Stats = %+v, want %d hits only", st, n)
	}
}

func TestShardedCacheCapacity(t *testing.T) {
	// Capacity splits per shard: total entries never exceed
	// shards*ceil(max/shards), and overflow shows up as evictions.
	c := NewSharded[int](64, 4)
	const n = 1000
	for i := 0; i < n; i++ {
		c.Put(hashKey(i), i)
	}
	if got := c.Len(); got > 64 {
		t.Errorf("Len = %d after %d inserts, want <= 64", got, n)
	}
	st := c.Stats()
	if st.Evictions != uint64(n-c.Len()) {
		t.Errorf("evictions = %d, want %d (inserted %d, kept %d)",
			st.Evictions, n-c.Len(), n, c.Len())
	}
}

func TestShardCountSelection(t *testing.T) {
	cases := []struct {
		max, shards, want int
	}{
		{1024, 1, 1},
		{1024, 3, 4}, // rounded up to a power of two
		{1024, 8, 8},
		{2, 16, 2}, // capped at capacity
		{1, 16, 1},
		{1 << 20, 500, 256}, // hard cap
	}
	for _, tc := range cases {
		c := NewSharded[int](tc.max, tc.shards)
		if got := c.Stats().Shards; got != tc.want {
			t.Errorf("NewSharded(%d, %d): shards = %d, want %d", tc.max, tc.shards, got, tc.want)
		}
	}
	if got := New[int](1024).Stats().Shards; got < 1 || got&(got-1) != 0 {
		t.Errorf("New default shards = %d, want a power of two >= 1", got)
	}
}

// TestGetIfCollisionEviction pins the hit/miss accounting bugfix: an
// entry rejected by the validator must count as a miss (not a hit) and
// must be evicted, so the colliding slot is free for the recomputed
// entry.
func TestGetIfCollisionEviction(t *testing.T) {
	c := NewSharded[string](8, 1)
	k := hashKey(1)
	c.Put(k, "wrong-function")

	v, ok := c.GetIf(k, func(s string) bool { return s == "right-function" })
	if ok {
		t.Fatalf("GetIf accepted a rejected entry: %q", v)
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 1 {
		t.Errorf("after rejected hit: hits=%d misses=%d, want 0/1", st.Hits, st.Misses)
	}
	if st.Evictions != 1 {
		t.Errorf("rejected entry not evicted: evictions=%d", st.Evictions)
	}
	if c.Len() != 0 {
		t.Errorf("mismatched entry still cached: Len=%d", c.Len())
	}

	// The recomputed entry takes the slot and validates from then on.
	c.Put(k, "right-function")
	if v, ok := c.GetIf(k, func(s string) bool { return s == "right-function" }); !ok || v != "right-function" {
		t.Fatalf("replacement entry not served: %q,%v", v, ok)
	}
	st = c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("final stats hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines; run under
// -race this is the shard-locking regression test. The final counter
// check also guards torn counters: every Get is exactly one hit or one
// miss.
func TestCacheConcurrent(t *testing.T) {
	c := NewSharded[int](256, 8)
	const (
		goroutines = 32
		opsEach    = 2000
		keyspace   = 300 // > capacity: forces evictions too
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				k := hashKey((seed*31 + i) % keyspace)
				if i%3 == 0 {
					c.Put(k, i)
				} else {
					c.GetIf(k, func(int) bool { return true })
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	var gets uint64
	for g := 0; g < goroutines; g++ {
		for i := 0; i < opsEach; i++ {
			if i%3 != 0 {
				gets++
			}
		}
	}
	if st.Hits+st.Misses != gets {
		t.Errorf("hits(%d)+misses(%d) = %d, want %d gets", st.Hits, st.Misses, st.Hits+st.Misses, gets)
	}
	if c.Len() > 256+7 { // per-shard rounding can exceed max by shards-1
		t.Errorf("Len = %d exceeds capacity bound", c.Len())
	}
}

func BenchmarkCacheParallelGet(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := NewSharded[int](4096, shards)
			for i := 0; i < 4096; i++ {
				c.Put(hashKey(i), i)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					c.Get(hashKey(i % 4096))
					i++
				}
			})
		})
	}
}

func TestWeightedEviction(t *testing.T) {
	// Single shard, generous entry cap: eviction must be driven by the
	// byte budget alone.
	c := NewWeighted[int](1024, 100, 1, func(v int) int64 { return int64(v) })
	c.Put(hashKey(1), 40)
	c.Put(hashKey(2), 40)
	if st := c.Stats(); st.Bytes != 80 || st.Evictions != 0 {
		t.Fatalf("Stats = %+v, want 80 bytes, no evictions", st)
	}
	// 40+40+40 = 120 > 100: the least recently used entry (key 1) goes.
	c.Put(hashKey(3), 40)
	st := c.Stats()
	if st.Bytes != 80 || st.Evictions != 1 {
		t.Fatalf("Stats = %+v, want 80 bytes after 1 eviction", st)
	}
	if _, ok := c.Get(hashKey(1)); ok {
		t.Fatal("LRU entry should have been evicted by byte pressure")
	}
	for _, k := range []int{2, 3} {
		if _, ok := c.Get(hashKey(k)); !ok {
			t.Fatalf("entry %d should have survived", k)
		}
	}
	// One big entry can push out several small ones.
	c.Put(hashKey(4), 90)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after a 90-byte insert", c.Len())
	}
}

func TestWeightedReplaceAdjustsBytes(t *testing.T) {
	c := NewWeighted[int](10, 100, 1, func(v int) int64 { return int64(v) })
	k := hashKey(1)
	c.Put(k, 60)
	c.Put(k, 20) // replacement must not double-count
	if st := c.Stats(); st.Bytes != 20 {
		t.Fatalf("Bytes = %d, want 20 after replace", st.Bytes)
	}
	c.Put(k, 80)
	if st := c.Stats(); st.Bytes != 80 {
		t.Fatalf("Bytes = %d, want 80 after growing replace", st.Bytes)
	}
}

func TestWeightedOversizedRejected(t *testing.T) {
	c := NewWeighted[int](10, 100, 1, func(v int) int64 { return int64(v) })
	c.Put(hashKey(1), 30)
	c.Put(hashKey(2), 500) // outweighs the whole shard: rejected
	if _, ok := c.Get(hashKey(2)); ok {
		t.Fatal("oversized entry should have been rejected")
	}
	if _, ok := c.Get(hashKey(1)); !ok {
		t.Fatal("resident entry should not have been flushed by a rejected Put")
	}
	st := c.Stats()
	if st.Rejected != 1 || st.Bytes != 30 {
		t.Fatalf("Stats = %+v, want 1 rejection, 30 bytes", st)
	}
	// An oversized replacement evicts the stale resident value.
	c.Put(hashKey(1), 500)
	if _, ok := c.Get(hashKey(1)); ok {
		t.Fatal("stale entry must not survive an oversized replacement")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Rejected != 2 || st.Evictions != 1 {
		t.Fatalf("Stats = %+v, want empty cache, 2 rejections, 1 eviction", st)
	}
}

func TestWeightedGetIfEvictionAccounting(t *testing.T) {
	c := NewWeighted[int](10, 100, 1, func(v int) int64 { return int64(v) })
	c.Put(hashKey(1), 60)
	if _, ok := c.GetIf(hashKey(1), func(int) bool { return false }); ok {
		t.Fatal("validation failure must miss")
	}
	if st := c.Stats(); st.Bytes != 0 {
		t.Fatalf("Bytes = %d, want 0 after validation eviction", st.Bytes)
	}
}

func TestParseKey(t *testing.T) {
	k := hashKey(7)
	got, err := ParseKey(k.String())
	if err != nil || got != k {
		t.Fatalf("round trip: %v, %v", got, err)
	}
	for _, bad := range []string{"", "abc", k.String() + "00", "zz" + k.String()[2:]} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) should fail", bad)
		}
	}
}
