// Package fprm implements Fixed-Polarity Reed–Muller (FPRM) AND-EXOR
// minimization: the classical EXOR-based normal form the DAC'01 paper's
// conclusions propose comparing SPP forms against ("we plan to compare
// SPP forms with other three level forms"). An FPRM form is an EXOR of
// products in which every variable appears with a single fixed polarity;
// the positive-polarity special case is the Positive-Polarity Reed–
// Muller (PPRM) canonical form.
//
// The spectrum for one polarity is computed with the positive-Davio
// butterfly transform in O(n·2^n); the best polarity is found
// exhaustively for narrow functions (2^n polarities) and by greedy
// bit-flip hill climbing for wide ones.
//
// Cost model: a polarity's cost is Σ|monomial| — the literal count of
// the EXOR expression, each monomial contributing one literal per
// variable it contains. This is directly comparable to the SOP/SPP #L
// metric, which is what lets the portfolio engine (internal/engine,
// docs/forms.md) race the "esop" backend against the others under one
// cost. Exhaustive search proves the minimum over all 2^n fixed
// polarities; hill climbing beyond ExhaustiveLimit does not.
package fprm

import (
	"fmt"

	"repro/internal/bfunc"
	"repro/internal/bitvec"
)

// ExhaustiveLimit is the widest input count for which Minimize tries
// all 2^n polarities (n·4^n work overall).
const ExhaustiveLimit = 12

// Result describes a minimized FPRM form.
type Result struct {
	// Polarity is the chosen polarity mask in the bitvec packing: a set
	// bit means that variable appears complemented in every product.
	Polarity uint64
	// Monomials lists the nonzero spectrum coefficients: each mask
	// selects the variables of one product term (0 = the constant-1
	// term). Masks use the bitvec packing.
	Monomials []uint64
	// Literals is Σ |monomial| — the cost comparable to the paper's #L.
	Literals int
	// Exhaustive reports whether the polarity is a proven optimum.
	Exhaustive bool
}

// NumTerms returns the number of products in the EXOR sum.
func (r *Result) NumTerms() int { return len(r.Monomials) }

// Eval computes the FPRM form's value on a packed point.
func (r *Result) Eval(p uint64) bool {
	// A monomial m evaluates to 1 iff every selected (polarity-adjusted)
	// literal is 1: (p ^ Polarity) & m == m.
	q := p ^ r.Polarity
	v := uint64(0)
	for _, m := range r.Monomials {
		if q&m == m {
			v ^= 1
		}
	}
	return v == 1
}

// String renders the form, e.g. "x0·x̄2 ⊕ x̄2·x3 ⊕ 1".
func (r *Result) String() string {
	return r.Format(64)
}

// Format renders over an n-variable space.
func (r *Result) Format(n int) string {
	if len(r.Monomials) == 0 {
		return "0"
	}
	out := ""
	for i, m := range r.Monomials {
		if i > 0 {
			out += " ⊕ "
		}
		if m == 0 {
			out += "1"
			continue
		}
		first := true
		for _, v := range bitvec.Vars(m, n) {
			if !first {
				out += "·"
			}
			first = false
			if r.Polarity&bitvec.VarMask(n, v) != 0 {
				out += fmt.Sprintf("x̄%d", v)
			} else {
				out += fmt.Sprintf("x%d", v)
			}
		}
	}
	return out
}

// spectrum computes the PPRM coefficients of the truth table tt (which
// it overwrites) via the positive-Davio transform.
func spectrum(n int, tt []uint8) {
	for v := 0; v < n; v++ {
		mask := bitvec.VarMask(n, v)
		for p := uint64(0); p < uint64(len(tt)); p++ {
			if p&mask != 0 {
				tt[p] ^= tt[p^mask]
			}
		}
	}
}

// costOf evaluates one polarity: literal count and term count of the
// FPRM spectrum of f under polarity pol.
func costOf(f *bfunc.Func, pol uint64, scratch []uint8) (lits, terms int) {
	n := f.N()
	for p := range scratch {
		scratch[p] = 0
	}
	for _, q := range f.On() {
		scratch[q^pol] = 1
	}
	spectrum(n, scratch)
	for m, c := range scratch {
		if c == 1 {
			terms++
			lits += bitvec.OnesCount(uint64(m))
		}
	}
	return lits, terms
}

// Minimize finds a minimum-literal FPRM form of the completely
// specified function f: exhaustively over all polarities for
// n ≤ ExhaustiveLimit, by greedy polarity descent otherwise.
func Minimize(f *bfunc.Func) *Result {
	if len(f.DC()) > 0 {
		panic("fprm: don't-care minimization not supported; specify the function")
	}
	n := f.N()
	size := 1 << uint(n)
	scratch := make([]uint8, size)

	bestPol := uint64(0)
	bestLits, _ := costOf(f, 0, scratch)
	exhaustive := n <= ExhaustiveLimit
	if exhaustive {
		for pol := uint64(1); pol < uint64(size); pol++ {
			if lits, _ := costOf(f, pol, scratch); lits < bestLits {
				bestLits, bestPol = lits, pol
			}
		}
	} else {
		// Greedy descent: flip single polarity bits while improving.
		improved := true
		for improved {
			improved = false
			for v := 0; v < n; v++ {
				pol := bestPol ^ bitvec.VarMask(n, v)
				if lits, _ := costOf(f, pol, scratch); lits < bestLits {
					bestLits, bestPol = lits, pol
					improved = true
				}
			}
		}
	}

	// Recompute the winning spectrum and collect monomials.
	lits, _ := costOf(f, bestPol, scratch)
	res := &Result{Polarity: bestPol, Literals: lits, Exhaustive: exhaustive}
	for m, c := range scratch {
		if c == 1 {
			res.Monomials = append(res.Monomials, uint64(m))
		}
	}
	return res
}
