package fprm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfunc"
	"repro/internal/bitvec"
)

func parity(n int) *bfunc.Func {
	return bfunc.FromPredicate(n, func(p uint64) bool {
		return bitvec.OnesCount(p)%2 == 1
	})
}

func TestMinimizeEvaluatesCorrectly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		var on []uint64
		for p := uint64(0); p < 1<<uint(n); p++ {
			if rng.Intn(2) == 0 {
				on = append(on, p)
			}
		}
		fn := bfunc.New(n, on)
		res := Minimize(fn)
		for p := uint64(0); p < 1<<uint(n); p++ {
			if res.Eval(p) != fn.IsOn(p) {
				return false
			}
		}
		return res.Exhaustive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParityForm(t *testing.T) {
	// Parity's PPRM is x0 ⊕ x1 ⊕ … ⊕ x_{n-1}: n terms, n literals, and
	// no polarity can beat it.
	for n := 3; n <= 6; n++ {
		res := Minimize(parity(n))
		if res.Literals != n || res.NumTerms() != n {
			t.Fatalf("parity-%d: %d literals, %d terms", n, res.Literals, res.NumTerms())
		}
		for _, m := range res.Monomials {
			if bitvec.OnesCount(m) != 1 {
				t.Fatalf("parity monomial %b not a single variable", m)
			}
		}
	}
}

func TestAndIsOneMonomial(t *testing.T) {
	and := bfunc.FromPredicate(3, func(p uint64) bool { return p == 0b111 })
	res := Minimize(and)
	if res.NumTerms() != 1 || res.Literals != 3 || res.Polarity != 0 {
		t.Fatalf("AND: %+v", res)
	}
}

func TestComplementedAndPrefersNegativePolarity(t *testing.T) {
	// f = x̄0·x̄1·x̄2: positive polarity needs 2^3-ish terms, polarity
	// 111 needs exactly one monomial.
	f := bfunc.FromPredicate(3, func(p uint64) bool { return p == 0 })
	res := Minimize(f)
	if res.Polarity != bitvec.SpaceMask(3) || res.NumTerms() != 1 || res.Literals != 3 {
		t.Fatalf("NOR-cube: %+v (%s)", res, res.Format(3))
	}
}

func TestMajorityPPRM(t *testing.T) {
	maj := bfunc.FromPredicate(3, func(p uint64) bool {
		return bitvec.OnesCount(p) >= 2
	})
	res := Minimize(maj)
	// Majority's best FPRM has 3 two-literal terms (x0x1 ⊕ x0x2 ⊕ x1x2).
	if res.Literals != 6 || res.NumTerms() != 3 {
		t.Fatalf("majority: %d literals, %d terms (%s)", res.Literals, res.NumTerms(), res.Format(3))
	}
}

func TestConstantFunctions(t *testing.T) {
	zero := bfunc.New(3, nil)
	if res := Minimize(zero); res.NumTerms() != 0 || res.Format(3) != "0" {
		t.Fatalf("zero: %+v", res)
	}
	one := bfunc.FromPredicate(3, func(uint64) bool { return true })
	res := Minimize(one)
	if res.NumTerms() != 1 || res.Monomials[0] != 0 || res.Literals != 0 {
		t.Fatalf("one: %+v", res)
	}
	if res.Format(3) != "1" {
		t.Fatalf("one renders %q", res.Format(3))
	}
}

func TestGreedyWideInput(t *testing.T) {
	// n = 13 > ExhaustiveLimit: greedy path; must still be correct.
	n := 13
	f := bfunc.FromPredicate(n, func(p uint64) bool {
		// A sparse arithmetic-ish predicate.
		a := p >> 7
		b := p & 0x7F
		return a == b>>1
	})
	res := Minimize(f)
	if res.Exhaustive {
		t.Fatal("n=13 should use the greedy path")
	}
	for _, p := range f.On() {
		if !res.Eval(p) {
			t.Fatal("greedy FPRM wrong on an ON point")
		}
	}
	// spot-check some OFF points
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		p := rng.Uint64() & bitvec.SpaceMask(n)
		if res.Eval(p) != f.IsOn(p) {
			t.Fatalf("greedy FPRM wrong at %b", p)
		}
	}
}

func TestRejectsDontCares(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for DC input")
		}
	}()
	Minimize(bfunc.NewDC(3, []uint64{1}, []uint64{2}))
}

func BenchmarkMinimize8(b *testing.B) {
	f := parity(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Minimize(f)
	}
}
