// Package ftdc implements an FTDC-style ("full-time diagnostic data
// capture") compact time-series log for service counters: fixed-name
// int64 metric samples are delta-encoded against the previous sample,
// varint-compressed, and appended to numbered segment files that rotate
// at a sample count and are deleted oldest-first past a ring bound, so
// an always-on capture costs a few bytes per metric per tick and a
// bounded directory regardless of uptime.
//
// Durability is deliberately page-cache-grade: every sample is flushed
// to the OS (surviving kill -9 of the process) but only fsynced on
// segment rotation and Close, keeping the steady-state capture off the
// disk's sync path. The reader tolerates the resulting crash shapes: a
// final segment ending mid-record is decoded up to the damage and
// reported as truncated, never as an error.
//
// Segment format: one JSON header line naming the schema and the metric
// columns, then binary records of the form
//
//	uvarint(len(payload)) payload
//	payload = zigzag(t - prevT) zigzag(v[0]-prev[0]) ... zigzag(v[k]-prev[k])
//
// with timestamps in Unix milliseconds. The first record of a segment
// deltas against zero, so every segment is self-contained and the ring
// can drop old segments freely.
package ftdc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SchemaVersion names the segment header schema.
const SchemaVersion = "spp-ftdc/v1"

const segmentExt = ".ftdc"

// maxPayload bounds one record's payload; a length prefix beyond it is
// treated as tail damage, not an allocation request.
const maxPayload = 1 << 20

// Options tunes a Writer. Zero values get defaults from NewWriter.
type Options struct {
	// SegmentSamples is how many samples one segment holds before
	// rotation. Default 512.
	SegmentSamples int
	// MaxSegments bounds the on-disk ring; the oldest segment is deleted
	// when rotation would exceed it. Default 8.
	MaxSegments int
}

// segmentHeader is the JSON first line of every segment.
type segmentHeader struct {
	Schema  string   `json:"schema"`
	Metrics []string `json:"metrics"`
}

// Writer appends delta-encoded samples to a segment ring in one
// directory. Safe for concurrent use; create with NewWriter.
type Writer struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	segs   []string // live segment names, oldest first (current last)
	next   int      // next segment number
	names  []string
	prev   []int64
	prevT  int64
	n      int // samples in the current segment
	buf    []byte
	closed bool
}

// NewWriter opens dir (created if absent) for appending. Existing
// segments stay readable and count against MaxSegments; writing always
// starts a fresh segment, so a crash-torn tail is never appended to.
func NewWriter(dir string, opts Options) (*Writer, error) {
	if opts.SegmentSamples <= 0 {
		opts.SegmentSamples = 512
	}
	if opts.MaxSegments <= 0 {
		opts.MaxSegments = 8
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	next := 0
	if len(segs) > 0 {
		next = segmentNum(segs[len(segs)-1]) + 1
	}
	return &Writer{dir: dir, opts: opts, segs: segs, next: next}, nil
}

// Append records one sample. names must be parallel to values; a
// changed metric set (or a full segment) rotates to a new segment whose
// header names the new columns. The sample is flushed to the OS before
// Append returns, but not fsynced.
func (w *Writer) Append(t time.Time, names []string, values []int64) error {
	if len(names) != len(values) {
		return fmt.Errorf("ftdc: %d names for %d values", len(names), len(values))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("ftdc: writer closed")
	}
	if w.f == nil || w.n >= w.opts.SegmentSamples || !sameNames(w.names, names) {
		if err := w.rotateLocked(names); err != nil {
			return err
		}
	}
	ts := t.UnixMilli()
	payload := w.buf[:0]
	payload = appendZigzag(payload, ts-w.prevT)
	for i, v := range values {
		var base int64
		if w.prev != nil {
			base = w.prev[i]
		}
		payload = appendZigzag(payload, v-base)
	}
	w.buf = payload
	var frame [binary.MaxVarintLen64]byte
	fn := binary.PutUvarint(frame[:], uint64(len(payload)))
	if _, err := w.w.Write(frame[:fn]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.prev == nil {
		w.prev = make([]int64, len(values))
	}
	copy(w.prev, values)
	w.prevT = ts
	w.n++
	return nil
}

// rotateLocked finishes the current segment (fsynced: complete segments
// are durable) and starts the next, deleting the oldest past the ring
// bound.
func (w *Writer) rotateLocked(names []string) error {
	if w.f != nil {
		_ = w.w.Flush()
		_ = w.f.Sync()
		_ = w.f.Close()
		w.f, w.w = nil, nil
	}
	name := fmt.Sprintf("%08d%s", w.next, segmentExt)
	f, err := os.OpenFile(filepath.Join(w.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr, err := json.Marshal(segmentHeader{Schema: SchemaVersion, Metrics: names})
	if err != nil {
		f.Close()
		return err
	}
	bw := bufio.NewWriter(f)
	bw.Write(hdr)
	bw.WriteByte('\n')
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	w.f, w.w = f, bw
	w.next++
	w.segs = append(w.segs, name)
	for len(w.segs) > w.opts.MaxSegments {
		_ = os.Remove(filepath.Join(w.dir, w.segs[0]))
		w.segs = w.segs[1:]
	}
	w.names = append(w.names[:0], names...)
	w.prev, w.prevT, w.n = nil, 0, 0
	return nil
}

// Close flushes and fsyncs the current segment.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f == nil {
		return nil
	}
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	_ = w.f.Sync()
	return w.f.Close()
}

// Sample is one decoded capture tick.
type Sample struct {
	UnixMS int64
	Values map[string]int64
}

// History is the decoded contents of a segment directory.
type History struct {
	// Samples in capture order across all segments.
	Samples []Sample
	// Truncated reports that at least one segment ended mid-record (the
	// crash shape); everything before the damage is in Samples.
	Truncated bool
	// Segments is how many segment files were read.
	Segments int
}

// ReadDir decodes every segment in dir, oldest first. Tail damage in a
// segment truncates that segment's samples and sets Truncated; it is
// never an error, so a capture killed mid-write always replays.
func ReadDir(dir string) (*History, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	h := &History{Segments: len(segs)}
	for _, name := range segs {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		samples, trunc := decodeSegment(data)
		h.Samples = append(h.Samples, samples...)
		if trunc {
			h.Truncated = true
		}
	}
	return h, nil
}

// decodeSegment decodes one segment's bytes, stopping (and reporting
// truncation) at the first damaged record.
func decodeSegment(data []byte) ([]Sample, bool) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, true
	}
	var hdr segmentHeader
	if err := json.Unmarshal(data[:nl], &hdr); err != nil || len(hdr.Metrics) == 0 {
		return nil, true
	}
	var samples []Sample
	vals := make([]int64, len(hdr.Metrics))
	var ts int64
	off := nl + 1
	for off < len(data) {
		plen, n := binary.Uvarint(data[off:])
		if n <= 0 || plen > maxPayload || off+n+int(plen) > len(data) {
			return samples, true
		}
		payload := data[off+n : off+n+int(plen)]
		dt, ok := readZigzag(&payload)
		if !ok {
			return samples, true
		}
		next := make([]int64, len(vals))
		copy(next, vals)
		damaged := false
		for i := range next {
			d, ok := readZigzag(&payload)
			if !ok {
				damaged = true
				break
			}
			next[i] += d
		}
		if damaged {
			return samples, true
		}
		ts += dt
		copy(vals, next)
		m := make(map[string]int64, len(hdr.Metrics))
		for i, name := range hdr.Metrics {
			m[name] = vals[i]
		}
		samples = append(samples, Sample{UnixMS: ts, Values: m})
		off += n + int(plen)
	}
	return samples, false
}

// listSegments returns the segment file names in dir in numeric order.
// Non-segment files are ignored: the directory may be shared with
// editor droppings or future sidecar files.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentExt) {
			continue
		}
		if _, err := strconv.Atoi(strings.TrimSuffix(name, segmentExt)); err != nil {
			continue
		}
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return segmentNum(names[i]) < segmentNum(names[j]) })
	return names, nil
}

func segmentNum(name string) int {
	n, _ := strconv.Atoi(strings.TrimSuffix(name, segmentExt))
	return n
}

func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// appendZigzag appends v zigzag-mapped (so small magnitudes of either
// sign stay short) as a uvarint.
func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v<<1)^uint64(v>>63))
}

// readZigzag consumes one zigzag uvarint from *b.
func readZigzag(b *[]byte) (int64, bool) {
	u, n := binary.Uvarint(*b)
	if n <= 0 {
		return 0, false
	}
	*b = (*b)[n:]
	return int64(u>>1) ^ -int64(u&1), true
}
