package ftdc

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

var metrics = []string{"cache.hits", "serve.served", "serve.wait_ms"}

func at(ms int64) time.Time { return time.UnixMilli(ms) }

func appendAll(t *testing.T, w *Writer, rows [][]int64) {
	t.Helper()
	for i, vals := range rows {
		if err := w.Append(at(int64(1000+i*250)), metrics, vals); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, Options{SegmentSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]int64{
		{0, 1, 0},
		{3, 2, 120},
		{3, 5, 80},
		{10, 9, 0},
		{11, 9, -5}, // negative values must survive the zigzag coding
		{11, 12, 7},
	}
	appendAll(t, w, rows)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	h, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if h.Truncated {
		t.Error("clean close reported truncated")
	}
	if h.Segments != 2 { // 6 samples at 4 per segment
		t.Errorf("segments = %d, want 2", h.Segments)
	}
	if len(h.Samples) != len(rows) {
		t.Fatalf("samples = %d, want %d", len(h.Samples), len(rows))
	}
	for i, s := range h.Samples {
		if want := int64(1000 + i*250); s.UnixMS != want {
			t.Errorf("sample %d at %d, want %d", i, s.UnixMS, want)
		}
		for j, name := range metrics {
			if s.Values[name] != rows[i][j] {
				t.Errorf("sample %d %s = %d, want %d", i, name, s.Values[name], rows[i][j])
			}
		}
	}
}

func TestRingDropsOldSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, Options{SegmentSamples: 2, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]int64
	for i := 0; i < 20; i++ {
		rows = append(rows, []int64{int64(i), int64(i * 2), 0})
	}
	appendAll(t, w, rows)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	h, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if h.Segments != 3 {
		t.Errorf("segments = %d, want 3 (ring bound)", h.Segments)
	}
	if len(h.Samples) != 6 {
		t.Fatalf("samples = %d, want 6", len(h.Samples))
	}
	// The survivors are the newest samples, values intact (each segment
	// re-bases its deltas, so dropping predecessors loses nothing).
	last := h.Samples[len(h.Samples)-1]
	if last.Values["cache.hits"] != 19 || last.Values["serve.served"] != 38 {
		t.Errorf("last sample = %v, want counters 19/38", last.Values)
	}
}

func TestTruncatedTailRecovers(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, Options{SegmentSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]int64{{1, 1, 1}, {2, 2, 2}, {300, 4000, 50000}}
	appendAll(t, w, rows)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v err %v", segs, err)
	}
	path := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the last record, mid-payload: the kill -9 shape.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	h, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Truncated {
		t.Error("chopped tail not reported as truncated")
	}
	if len(h.Samples) != 2 {
		t.Fatalf("samples = %d, want the 2 intact ones", len(h.Samples))
	}
	if h.Samples[1].Values["serve.served"] != 2 {
		t.Errorf("intact sample damaged: %v", h.Samples[1].Values)
	}
}

func TestMetricSetChangeRotates(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, Options{SegmentSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(at(1000), []string{"a"}, []int64{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(at(2000), []string{"a", "b"}, []int64{2, 7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	h, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if h.Segments != 2 {
		t.Errorf("segments = %d, want 2 (schema change rotates)", h.Segments)
	}
	if len(h.Samples) != 2 || h.Samples[1].Values["b"] != 7 {
		t.Errorf("samples = %+v", h.Samples)
	}
}

func TestReopenStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, Options{SegmentSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, [][]int64{{1, 1, 1}})
	// No Close: simulate a killed process (the sample is flushed).
	w2, err := NewWriter(dir, Options{SegmentSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w2, [][]int64{{5, 5, 5}})
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	h, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if h.Segments != 2 || len(h.Samples) != 2 {
		t.Fatalf("segments=%d samples=%d, want 2/2", h.Segments, len(h.Samples))
	}
	if h.Samples[1].Values["cache.hits"] != 5 {
		t.Errorf("post-reopen sample = %v", h.Samples[1].Values)
	}
}
