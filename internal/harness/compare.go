package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fprm"
	"repro/internal/sp"
)

// CompareRow is one row of the extension experiment suggested by the
// paper's conclusions ("we plan to compare SPP forms with other three
// level forms"): literal counts of SP, best fixed-polarity Reed–Muller
// (AND-EXOR) and SPP forms of one benchmark, outputs summed.
type CompareRow struct {
	Name        string
	SPLiterals  int
	RMLiterals  int
	SPPLiterals int
	SPPIsExact  bool // false when the SPP figure is the SPP_0 bound
}

// CompareForms runs the extension experiment on the named benchmarks.
// SPP numbers come from the exact algorithm within the budget, falling
// back to SPP_0 when exceeded (flagged in the row).
func CompareForms(w io.Writer, names []string, cfg Config) []CompareRow {
	fmt.Fprintln(w, "Extension (paper §5): SP vs fixed-polarity Reed-Muller vs SPP literal counts")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "function\t#L(SP)\t#L(FPRM)\t#L(SPP)\tSPP kind\t")
	var rows []CompareRow
	for _, name := range names {
		m := bench.MustLoad(name)
		row := CompareRow{Name: name, SPPIsExact: true}
		opts := cfg.CoreOptions()
		for o := 0; o < m.NOutputs(); o++ {
			f := m.Output(o)
			row.SPLiterals += sp.Minimize(f, sp.Options{}).Form.Literals()
			row.RMLiterals += fprm.Minimize(f).Literals
			res, err := core.MinimizeExact(f, opts)
			if err != nil {
				row.SPPIsExact = false
				res, err = core.Heuristic(f, 0, opts)
			}
			if err == nil {
				row.SPPLiterals += res.Form.Literals()
			}
		}
		rows = append(rows, row)
		kind := "exact"
		if !row.SPPIsExact {
			kind = "SPP_0"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t\n",
			name, row.SPLiterals, row.RMLiterals, row.SPPLiterals, kind)
	}
	tw.Flush()
	return rows
}

// CompareFunctions is the default function list for CompareForms: the
// tier-1 (known semantics) benchmarks, where the comparison is about
// real circuits. FPRM needs completely specified functions, which all
// registry entries are.
var CompareFunctions = []string{"adr4", "dist", "life", "mlp4", "root", "f51m", "cs8"}
