package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV writers for the experiment results, so runs can be archived and
// plotted without re-parsing the human-readable tables. Each writer
// emits a header row followed by one record per result row; DNF cells
// are empty strings.

func dnfInt(v int, dnf bool) string {
	if dnf {
		return ""
	}
	return strconv.Itoa(v)
}

func dnfDur(v time.Duration, dnf bool) string {
	if dnf {
		return ""
	}
	return fmt.Sprintf("%.6f", v.Seconds())
}

// WriteTable1CSV serializes Table 1 rows.
func WriteTable1CSV(w io.Writer, rows []FuncResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"function", "sp_primes", "sp_literals", "sp_terms",
		"eppp", "spp_literals", "spp_terms", "dnf",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Name,
			strconv.Itoa(r.SPPrimes), strconv.Itoa(r.SPLiterals), strconv.Itoa(r.SPTerms),
			dnfInt(r.EPPP, r.DNF), dnfInt(r.SPPLiterals, r.DNF), dnfInt(r.SPPTerms, r.DNF),
			strconv.FormatBool(r.DNF),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable2CSV serializes Table 2 rows.
func WriteTable2CSV(w io.Writer, rows []Table2Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"case", "literals", "naive_seconds", "alg2_seconds",
		"naive_comparisons", "alg2_unions", "naive_dnf", "alg2_dnf",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Case.String(),
			dnfInt(r.Literals, r.TrieDNF),
			dnfDur(r.NaiveTime, r.NaiveDNF),
			dnfDur(r.TrieTime, r.TrieDNF),
			dnfInt(int(r.NaiveComparisons), r.NaiveDNF),
			strconv.FormatInt(r.TrieUnions, 10),
			strconv.FormatBool(r.NaiveDNF), strconv.FormatBool(r.TrieDNF),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable3CSV serializes Table 3 rows.
func WriteTable3CSV(w io.Writer, rows []Table3Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"function", "sp_literals", "av", "spp0_literals", "spp0_seconds",
		"exact_literals", "exact_seconds", "spp0_dnf", "exact_dnf",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Name, strconv.Itoa(r.SPLiterals),
			dnfInt(r.Av, !r.AvValid),
			dnfInt(r.H0Literals, r.H0DNF), dnfDur(r.H0Time, r.H0DNF),
			dnfInt(r.ExLiterals, r.ExDNF), dnfDur(r.ExTime, r.ExDNF),
			strconv.FormatBool(r.H0DNF), strconv.FormatBool(r.ExDNF),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSweepCSV serializes Figure 3/4 series.
func WriteSweepCSV(w io.Writer, sweeps []Sweep) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"function", "k", "spp_k_literals", "seconds", "sp_literals", "dnf",
	}); err != nil {
		return err
	}
	for _, sw := range sweeps {
		for _, pt := range sw.Points {
			rec := []string{
				sw.Name, strconv.Itoa(pt.K),
				dnfInt(pt.Literals, pt.DNF), dnfDur(pt.Time, pt.DNF),
				strconv.Itoa(sw.SPLiterals), strconv.FormatBool(pt.DNF),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
