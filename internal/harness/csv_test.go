package harness

import (
	"bytes"
	"encoding/csv"
	"testing"
	"time"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	recs, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestWriteTable1CSV(t *testing.T) {
	rows := []FuncResult{
		{Name: "adr4", SPPrimes: 75, SPLiterals: 340, SPTerms: 75,
			EPPP: 7158, SPPLiterals: 72, SPPTerms: 14},
		{Name: "huge", SPPrimes: 9, SPLiterals: 9, SPTerms: 9, DNF: true},
	}
	var buf bytes.Buffer
	if err := WriteTable1CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[1][0] != "adr4" || recs[1][4] != "7158" || recs[1][7] != "false" {
		t.Fatalf("row 1 = %v", recs[1])
	}
	if recs[2][4] != "" || recs[2][7] != "true" {
		t.Fatalf("DNF row = %v", recs[2])
	}
}

func TestWriteTable2CSV(t *testing.T) {
	rows := []Table2Row{
		{Case: OutputCase{Func: "cs8", Output: 1}, Literals: 16,
			NaiveTime: 15 * time.Second, TrieTime: 380 * time.Millisecond,
			NaiveComparisons: 1944090746, TrieUnions: 510563},
		{Case: OutputCase{Func: "addm4", Output: 4}, Literals: 31,
			TrieTime: time.Second, TrieUnions: 854790, NaiveDNF: true},
	}
	var buf bytes.Buffer
	if err := WriteTable2CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if recs[1][0] != "cs8(1)" || recs[1][5] != "510563" {
		t.Fatalf("row = %v", recs[1])
	}
	if recs[2][2] != "" || recs[2][6] != "true" {
		t.Fatalf("DNF naive cell should be empty: %v", recs[2])
	}
}

func TestWriteTable3CSV(t *testing.T) {
	rows := []Table3Row{
		{Name: "dist", SPLiterals: 556, Av: 339, AvValid: true,
			H0Literals: 420, H0Time: time.Second, ExLiterals: 122, ExTime: 2 * time.Second},
		{Name: "alu", SPLiterals: 9000, H0Literals: 1255, H0Time: time.Second, ExDNF: true},
	}
	var buf bytes.Buffer
	if err := WriteTable3CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if recs[1][2] != "339" || recs[2][2] != "" || recs[2][8] != "true" {
		t.Fatalf("rows = %v", recs[1:])
	}
}

func TestWriteSweepCSV(t *testing.T) {
	sweeps := []Sweep{{
		Name: "dist", SPLiterals: 556,
		Points: []SweepPoint{
			{K: 0, Literals: 420, Time: time.Second},
			{K: 1, DNF: true},
		},
	}}
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, sweeps); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 3 || recs[1][1] != "0" || recs[2][2] != "" {
		t.Fatalf("recs = %v", recs)
	}
}
