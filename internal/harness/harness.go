// Package harness drives the paper's experiments: it reproduces Table 1
// (SP vs SPP minimization), Table 2 (EPPP construction: naive baseline
// vs partition-trie Algorithm 2), Table 3 (SPP_0 heuristic vs exact) and
// the Figure 3/4 series (literals and CPU time of SPP_k vs k), printing
// rows in the paper's layout. Absolute times differ from the paper's
// Pentium III 450 — the reproduction target is the shape: who wins, by
// roughly what factor, and where the exact algorithm stops terminating.
package harness

import (
	"flag"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/bench"
	"repro/internal/bfunc"
	"repro/internal/core"
	"repro/internal/sp"
	"repro/internal/stats"
)

// Config bounds each per-output minimization, standing in for the
// paper's two-day timeout (exceeded budgets are reported as the paper's
// "*" entries).
type Config struct {
	// PerOutput bounds each single-output EPPP construction.
	PerOutput time.Duration
	// NaiveBudget bounds each run of the [5] baseline (Table 2 only).
	NaiveBudget time.Duration
	// MaxCandidates caps pseudoproduct generation per output.
	MaxCandidates int
	// CoverExact selects exact covering (small instances only).
	CoverExact bool
	// CoverMaxNodes bounds the exact covering search per instance
	// (0 = the solver default). Without it a CoverExact row had no node
	// budget at all — the paper's "*" timeout semantics only covered
	// EPPP construction time.
	CoverMaxNodes int64
	// Workers sets the EPPP construction worker count (0 = all CPUs,
	// 1 = serial); results are identical either way.
	Workers int
	// CoverWorkers sets the covering-phase worker count (0 = follow
	// Workers, 1 = serial); results are identical either way.
	CoverWorkers int
}

// DefaultConfig keeps every default table row finishing in minutes on a
// laptop while leaving room for the heavy rows to show real stars.
func DefaultConfig() Config {
	return Config{
		PerOutput:     60 * time.Second,
		NaiveBudget:   60 * time.Second,
		MaxCandidates: 4_000_000,
	}
}

// BindFlags registers the config's minimization bounds on fs under the
// flag names the tools share (-budget, -workers, ...), so cmd/spptables
// and cmd/sppserve parse identical knobs. Call on a config seeded with
// DefaultConfig (or other desired defaults) before fs.Parse.
func (c *Config) BindFlags(fs *flag.FlagSet) {
	fs.DurationVar(&c.PerOutput, "budget", c.PerOutput, "per-output budget for EPPP construction")
	fs.DurationVar(&c.NaiveBudget, "naive-budget", c.NaiveBudget, "per-output budget for the naive [5] baseline")
	fs.IntVar(&c.MaxCandidates, "max-candidates", c.MaxCandidates, "cap on generated pseudoproducts per output (0 = library default)")
	fs.IntVar(&c.Workers, "workers", c.Workers, "parallel workers for EPPP construction (0 = all CPUs, 1 = serial)")
	fs.IntVar(&c.CoverWorkers, "cover-workers", c.CoverWorkers, "parallel workers for the covering phase (0 = follow -workers, 1 = serial)")
	fs.Int64Var(&c.CoverMaxNodes, "cover-max-nodes", c.CoverMaxNodes, "node budget for exact covering (0 = solver default)")
}

// CoreOptions translates the config into the per-minimization options
// the core engines take. Shared by the table drivers here and by the
// serving layer (internal/service), which adds its own per-request
// context and stats recorder on top.
func (c Config) CoreOptions() core.Options {
	return core.Options{
		MaxDuration:   c.PerOutput,
		MaxCandidates: c.MaxCandidates,
		CoverExact:    c.CoverExact,
		CoverMaxNodes: c.CoverMaxNodes,
		Workers:       c.Workers,
		CoverWorkers:  c.CoverWorkers,
	}
}

// rowRecorder pairs a fresh recorder with the Report call every table
// row makes: phases and counters accumulate into rec during the row's
// minimizations and report(name) snapshots them, stamping the
// configured worker counts.
func (c Config) rowRecorder() (rec *stats.Recorder, report func(name string) *stats.Report) {
	rec = stats.New()
	return rec, func(name string) *stats.Report {
		rep := rec.Report(name)
		rep.Workers = c.Workers
		rep.CoverWorkers = c.CoverWorkers
		return rep
	}
}

// FuncResult aggregates per-output minimizations of one benchmark, the
// way the paper reports multi-output functions ("the different outputs
// of each function have been minimized separately").
type FuncResult struct {
	Name string
	// SP side (paper Table 1 columns #PI, #L, #P).
	SPPrimes   int
	SPLiterals int
	SPTerms    int
	SPTime     time.Duration
	// SPP side (paper Table 1 columns #EPPP, #L, #PP).
	EPPP        int
	SPPLiterals int
	SPPTerms    int
	SPPTime     time.Duration
	// DNF marks outputs whose EPPP construction exceeded the budget;
	// the row is reported with a star like the paper's.
	DNF bool
	// Stats is the machine-readable run report of the SPP side,
	// aggregated over all outputs.
	Stats *stats.Report
}

// MinimizeFunc runs SP and exact SPP minimization over every output of
// m and sums the metrics.
func MinimizeFunc(m *bfunc.Multi, cfg Config) FuncResult {
	res := FuncResult{Name: m.Name}
	rec, report := cfg.rowRecorder()
	opts := cfg.CoreOptions()
	opts.Stats = rec
	for o := 0; o < m.NOutputs(); o++ {
		f := m.Output(o)
		spRes := sp.Minimize(f, sp.Options{CoverExact: cfg.CoverExact})
		res.SPPrimes += spRes.NumPrimes
		res.SPLiterals += spRes.Form.Literals()
		res.SPTerms += spRes.Form.NumTerms()
		res.SPTime += spRes.Time

		start := time.Now()
		sppRes, err := core.MinimizeExact(f, opts)
		if err != nil {
			res.DNF = true
			res.SPPTime += time.Since(start)
			continue
		}
		res.EPPP += sppRes.Build.EPPP
		res.SPPLiterals += sppRes.Form.Literals()
		res.SPPTerms += sppRes.Form.NumTerms()
		res.SPPTime += sppRes.Build.BuildTime + sppRes.CoverTime
	}
	res.Stats = report("table1/" + m.Name)
	return res
}

// Table1Functions is the default benchmark list of the paper's Table 1.
var Table1Functions = []string{
	"addm4", "adr4", "dist", "ex5", "exps", "life", "lin.rom", "m3", "m4",
	"max128", "max512", "mlp4", "newcond", "newtpla2", "p1", "prom2",
	"radd", "root", "test1",
}

// Table1 reproduces the paper's Table 1 for the named benchmarks,
// writing one row per function and returning the results.
func Table1(w io.Writer, names []string, cfg Config) []FuncResult {
	fmt.Fprintln(w, "Table 1: SP forms vs SPP forms (outputs minimized separately)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "function\t#PI\t#L(SP)\t#P\t#EPPP\t#L(SPP)\t#PP\tSP/SPP\t")
	var out []FuncResult
	for _, name := range names {
		m := bench.MustLoad(name)
		r := MinimizeFunc(m, cfg)
		out = append(out, r)
		if r.DNF {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t*\t*\t*\t*\t\n",
				r.Name, r.SPPrimes, r.SPLiterals, r.SPTerms)
			continue
		}
		ratio := "-"
		if r.SPPLiterals > 0 {
			ratio = fmt.Sprintf("%.2f", float64(r.SPLiterals)/float64(r.SPPLiterals))
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t\n",
			r.Name, r.SPPrimes, r.SPLiterals, r.SPTerms,
			r.EPPP, r.SPPLiterals, r.SPPTerms, ratio)
	}
	tw.Flush()
	return out
}

// OutputCase names one single-output instance, e.g. cs8(1).
type OutputCase struct {
	Func   string
	Output int
}

func (c OutputCase) String() string { return fmt.Sprintf("%s(%d)", c.Func, c.Output) }

// Table2Cases is the paper's Table 2 instance list.
var Table2Cases = []OutputCase{
	{"cs8", 1}, {"cs8", 2}, {"addm4", 2}, {"addm4", 4},
	{"prom1", 15}, {"prom1", 31}, {"max128", 20}, {"m3", 3},
	{"m4", 0}, {"risc", 2}, {"ex5", 50}, {"max512", 5},
}

// Table2Row compares EPPP-construction CPU time between the naive
// baseline of [5] and the partition-trie Algorithm 2 on one output.
type Table2Row struct {
	Case      OutputCase
	Literals  int // #L of the minimal expression (from Algorithm 2)
	NaiveTime time.Duration
	NaiveDNF  bool
	TrieTime  time.Duration
	TrieDNF   bool
	// NaiveComparisons vs TrieUnions quantifies the speedup
	// machine-independently: the baseline pays a structure comparison
	// per pair, the trie algorithm only ever touches unifiable pairs.
	NaiveComparisons int64
	TrieUnions       int64
	// NaiveStats and TrieStats are the per-engine run reports (the two
	// engines get separate recorders so their phase times and counters
	// stay comparable side by side).
	NaiveStats *stats.Report
	TrieStats  *stats.Report
}

// Table2 reproduces the paper's Table 2.
func Table2(w io.Writer, cases []OutputCase, cfg Config) []Table2Row {
	fmt.Fprintln(w, "Table 2: EPPP construction time, naive [5] vs Algorithm 2 (single outputs)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "function\t#L\tnaive [5]\talg. 2\tspeedup\tnaive cmps\talg2 unions\t")
	var rows []Table2Row
	for _, c := range cases {
		f := bench.MustLoad(c.Func).Output(c.Output)
		row := Table2Row{Case: c}

		trieRec, trieReport := cfg.rowRecorder()
		opts := cfg.CoreOptions()
		opts.Stats = trieRec
		res, err := core.MinimizeExact(f, opts)
		if err != nil {
			row.TrieDNF = true
		} else {
			row.Literals = res.Form.Literals()
			row.TrieTime = res.Build.BuildTime
			row.TrieUnions = res.Build.Unions
		}
		row.TrieStats = trieReport(fmt.Sprintf("table2/%s/alg2", c))

		naiveRec, naiveReport := cfg.rowRecorder()
		nOpts := opts
		nOpts.MaxDuration = cfg.NaiveBudget
		nOpts.Stats = naiveRec
		start := time.Now()
		nres, err := core.BuildEPPPNaive(f, nOpts)
		if err != nil {
			row.NaiveDNF = true
			row.NaiveTime = time.Since(start)
		} else {
			row.NaiveTime = nres.Stats.BuildTime
			row.NaiveComparisons = nres.Stats.Comparisons
		}
		row.NaiveStats = naiveReport(fmt.Sprintf("table2/%s/naive", c))
		rows = append(rows, row)

		lit, naive, alg2, speed, cmps := "*", "*", "*", "*", "*"
		if !row.TrieDNF {
			lit = fmt.Sprintf("%d", row.Literals)
			alg2 = fmtDur(row.TrieTime)
		}
		if !row.NaiveDNF {
			naive = fmtDur(row.NaiveTime)
			cmps = fmt.Sprintf("%d", row.NaiveComparisons)
			if !row.TrieDNF && row.TrieTime > 0 {
				speed = fmt.Sprintf("%.0f×", float64(row.NaiveTime)/float64(row.TrieTime))
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%d\t\n",
			c, lit, naive, alg2, speed, cmps, row.TrieUnions)
	}
	tw.Flush()
	return rows
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
