package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
)

func fastCfg() Config {
	return Config{
		PerOutput:     30 * time.Second,
		NaiveBudget:   10 * time.Second,
		MaxCandidates: 2_000_000,
	}
}

func TestMinimizeFuncAdr4MatchesPaper(t *testing.T) {
	// The flagship row: adr4 is a true 4-bit adder, so the minimization
	// reproduces the paper's Table 1 numbers exactly.
	r := MinimizeFunc(bench.MustLoad("adr4"), fastCfg())
	if r.DNF {
		t.Fatal("adr4 must not DNF")
	}
	if r.SPPrimes != 75 || r.SPLiterals != 340 {
		t.Errorf("SP side: #PI=%d #L=%d, paper says 75/340", r.SPPrimes, r.SPLiterals)
	}
	if r.EPPP != 7158 {
		t.Errorf("#EPPP=%d, paper says 7158", r.EPPP)
	}
	if r.SPPLiterals != 72 || r.SPPTerms != 14 {
		t.Errorf("SPP side: #L=%d #PP=%d, paper says 72/14", r.SPPLiterals, r.SPPTerms)
	}
}

func TestTable1Rendering(t *testing.T) {
	var buf bytes.Buffer
	rows := Table1(&buf, []string{"life"}, fastCfg())
	if len(rows) != 1 || rows[0].Name != "life" {
		t.Fatalf("rows = %+v", rows)
	}
	out := buf.String()
	if !strings.Contains(out, "life") || !strings.Contains(out, "2100") {
		t.Fatalf("table output missing expected cells:\n%s", out)
	}
	// life's EPPP count is the paper's exact value.
	if rows[0].EPPP != 2100 {
		t.Errorf("life #EPPP=%d, paper says 2100", rows[0].EPPP)
	}
	if rows[0].SPLiterals != 672 || rows[0].SPPrimes != 224 {
		t.Errorf("life SP side %d/%d, paper says 224 primes / 672 literals",
			rows[0].SPPrimes, rows[0].SPLiterals)
	}
}

func TestTable1DNFRendersStar(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.MaxCandidates = 16 // guarantee DNF
	rows := Table1(&buf, []string{"life"}, cfg)
	if !rows[0].DNF {
		t.Fatal("expected DNF with tiny budget")
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatalf("DNF row must render stars:\n%s", buf.String())
	}
}

func TestTable2SmallCases(t *testing.T) {
	var buf bytes.Buffer
	cases := []OutputCase{{Func: "max128", Output: 20}, {Func: "risc", Output: 2}}
	rows := Table2(&buf, cases, fastCfg())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TrieDNF || r.NaiveDNF {
			t.Fatalf("small case DNF: %+v", r)
		}
		if r.TrieTime <= 0 || r.NaiveTime <= 0 {
			t.Fatalf("times not recorded: %+v", r)
		}
		// The mechanism of the paper's speedup: the baseline's
		// comparison count dwarfs the trie's union count.
		if r.NaiveComparisons <= r.TrieUnions {
			t.Fatalf("comparisons %d not > unions %d", r.NaiveComparisons, r.TrieUnions)
		}
	}
	if !strings.Contains(buf.String(), "max128(20)") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestTable3SmallCase(t *testing.T) {
	var buf bytes.Buffer
	rows := Table3(&buf, []string{"mlp4"}, fastCfg())
	r := rows[0]
	if r.H0DNF || r.ExDNF {
		t.Fatalf("mlp4 DNF: %+v", r)
	}
	// SPP_0 is an upper bound on the exact form; SP an upper bound on
	// SPP_0 (its candidate pool contains all SP primes).
	if r.ExLiterals > r.H0Literals {
		t.Fatalf("exact %d worse than SPP_0 %d", r.ExLiterals, r.H0Literals)
	}
	if r.H0Literals > r.SPLiterals {
		t.Fatalf("SPP_0 %d worse than SP %d", r.H0Literals, r.SPLiterals)
	}
	// SPP_0 must be much faster than exact on mlp4 (paper's point).
	if r.H0Time > r.ExTime {
		t.Fatalf("SPP_0 time %v not below exact %v", r.H0Time, r.ExTime)
	}
	if !r.AvValid || r.Av != (r.SPLiterals+r.ExLiterals)/2 {
		t.Fatalf("Av wrong: %+v", r)
	}
}

func TestSweepKShape(t *testing.T) {
	sw := SweepK("mlp4", 3, fastCfg())
	if len(sw.Points) != 4 {
		t.Fatalf("points = %d", len(sw.Points))
	}
	prev := sw.SPLiterals
	prevTime := time.Duration(0)
	for _, pt := range sw.Points {
		if pt.DNF {
			t.Fatalf("mlp4 sweep DNF at k=%d", pt.K)
		}
		if pt.Literals > prev {
			t.Fatalf("figure-3 shape violated: k=%d literals %d > previous %d",
				pt.K, pt.Literals, prev)
		}
		prev = pt.Literals
		_ = prevTime
		prevTime = pt.Time
	}
}

func TestFigures34Rendering(t *testing.T) {
	var buf bytes.Buffer
	sweeps := Figures34(&buf, []string{"mlp4"}, 2, fastCfg())
	if len(sweeps) != 1 || len(sweeps[0].Points) != 3 {
		t.Fatalf("sweeps = %+v", sweeps)
	}
	out := buf.String()
	if !strings.Contains(out, "mlp4") || !strings.Contains(out, "k") {
		t.Fatalf("figure output:\n%s", out)
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		2500 * time.Millisecond: "2.50s",
		15 * time.Millisecond:   "15.0ms",
		300 * time.Microsecond:  "300µs",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestExperimentListsResolve(t *testing.T) {
	// Every function named by a table/figure/extension driver must
	// exist in the registry with plausible dimensions.
	var all []string
	all = append(all, Table1Functions...)
	all = append(all, Table3Functions...)
	all = append(all, CompareFunctions...)
	for _, c := range Table2Cases {
		all = append(all, c.Func)
	}
	for _, name := range all {
		info, ok := bench.Lookup(name)
		if !ok {
			t.Errorf("experiment references unknown benchmark %q", name)
			continue
		}
		if info.Inputs < 3 || info.Outputs < 1 {
			t.Errorf("%s: implausible dimensions %d/%d", name, info.Inputs, info.Outputs)
		}
	}
	for _, c := range Table2Cases {
		info, _ := bench.Lookup(c.Func)
		if c.Output >= info.Outputs {
			t.Errorf("table 2 case %s out of range (%d outputs)", c, info.Outputs)
		}
	}
}

func TestCompareFormsSmall(t *testing.T) {
	var buf bytes.Buffer
	rows := CompareForms(&buf, []string{"adr4"}, fastCfg())
	r := rows[0]
	if !r.SPPIsExact {
		t.Fatal("adr4 must minimize exactly")
	}
	// The paper's ordering claim on the arithmetic flagship: SPP beats
	// the Reed-Muller form, which beats SP.
	if !(r.SPPLiterals < r.RMLiterals && r.RMLiterals < r.SPLiterals) {
		t.Fatalf("ordering violated: SPP=%d FPRM=%d SP=%d",
			r.SPPLiterals, r.RMLiterals, r.SPLiterals)
	}
	if !strings.Contains(buf.String(), "adr4") {
		t.Fatalf("output:\n%s", buf.String())
	}
}
