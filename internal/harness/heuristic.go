package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sp"
	"repro/internal/stats"
)

// Table3Functions is the paper's Table 3 benchmark list. alu, add6, amd
// and max1024 are the rows whose exact minimization the paper stars
// (did not terminate in two days); their sizes put them past our budget
// too, reproducing the shape.
var Table3Functions = []string{
	"alu", "addm4", "add6", "amd", "dist", "f51m",
	"max512", "max1024", "mlp4", "m4", "newcond",
}

// Table3Row compares the k=0 heuristic with the exact algorithm on one
// multi-output function (all outputs, summed, like Table 1).
type Table3Row struct {
	Name string
	// Av is the paper's reference point for SPP_0: the midpoint between
	// the SP and exact-SPP literal counts. (The paper prints the
	// formula as (|SP|−|SPP|)/2, but its own Table 3 values — e.g.
	// dist: Av 626 with |SP| 829 and |SPP| 422 — are midpoints.)
	Av         int
	AvValid    bool
	SPLiterals int
	H0Literals int
	H0Time     time.Duration
	H0DNF      bool
	ExLiterals int
	ExTime     time.Duration
	ExDNF      bool
	// Stats is the row's run report; the heuristic and exact passes
	// share one recorder (their phases are disjoint, so the report
	// keeps them apart by phase name).
	Stats *stats.Report
}

// Table3 reproduces the paper's Table 3: SPP_0 vs the exact algorithm.
func Table3(w io.Writer, names []string, cfg Config) []Table3Row {
	fmt.Fprintln(w, "Table 3: heuristic SPP_0 vs exact SPP (all outputs, summed)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "function\tAv\t#L(SPP0)\ttime(SPP0)\t#L(SPP)\ttime(SPP)\t")
	var rows []Table3Row
	for _, name := range names {
		m := bench.MustLoad(name)
		row := Table3Row{Name: name}
		rec, report := cfg.rowRecorder()
		opts := cfg.CoreOptions()
		opts.Stats = rec
		for o := 0; o < m.NOutputs(); o++ {
			f := m.Output(o)
			row.SPLiterals += sp.Minimize(f, sp.Options{}).Form.Literals()

			start := time.Now()
			h, err := core.Heuristic(f, 0, opts)
			if err != nil {
				row.H0DNF = true
				row.H0Time += time.Since(start)
			} else {
				row.H0Literals += h.Form.Literals()
				row.H0Time += h.Build.BuildTime + h.CoverTime
			}

			start = time.Now()
			ex, err := core.MinimizeExact(f, opts)
			if err != nil {
				row.ExDNF = true
				row.ExTime += time.Since(start)
			} else {
				row.ExLiterals += ex.Form.Literals()
				row.ExTime += ex.Build.BuildTime + ex.CoverTime
			}
		}
		if !row.ExDNF {
			row.Av = (row.SPLiterals + row.ExLiterals) / 2
			row.AvValid = true
		}
		row.Stats = report("table3/" + name)
		rows = append(rows, row)

		av, h0l, h0t, exl, ext := "*", "*", "*", "*", "*"
		if row.AvValid {
			av = fmt.Sprintf("%d", row.Av)
		}
		if !row.H0DNF {
			h0l = fmt.Sprintf("%d", row.H0Literals)
			h0t = fmtDur(row.H0Time)
		}
		if !row.ExDNF {
			exl = fmt.Sprintf("%d", row.ExLiterals)
			ext = fmtDur(row.ExTime)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t\n", name, av, h0l, h0t, exl, ext)
	}
	tw.Flush()
	return rows
}

// SweepPoint is one (k, literals, time) sample of the Figure 3/4 curves.
type SweepPoint struct {
	K        int
	Literals int
	Time     time.Duration
	DNF      bool
}

// Sweep is a full SPP_k sweep of one function plus its SP reference.
type Sweep struct {
	Name       string
	SPLiterals int
	SPTime     time.Duration
	Points     []SweepPoint
}

// SweepK computes the Figure 3/4 series for one multi-output function:
// total SPP_k literals and synthesis time for k = 0..n−1, plus the SP
// reference line. maxK < 0 sweeps all k.
func SweepK(name string, maxK int, cfg Config) Sweep {
	m := bench.MustLoad(name)
	sw := Sweep{Name: name}
	for o := 0; o < m.NOutputs(); o++ {
		res := sp.Minimize(m.Output(o), sp.Options{})
		sw.SPLiterals += res.Form.Literals()
		sw.SPTime += res.Time
	}
	top := m.Inputs - 1
	if maxK >= 0 && maxK < top {
		top = maxK
	}
	opts := cfg.CoreOptions()
	for k := 0; k <= top; k++ {
		pt := SweepPoint{K: k}
		for o := 0; o < m.NOutputs(); o++ {
			start := time.Now()
			res, err := core.Heuristic(m.Output(o), k, opts)
			if err != nil {
				pt.DNF = true
				pt.Time += time.Since(start)
				break
			}
			pt.Literals += res.Form.Literals()
			pt.Time += res.Build.BuildTime + res.CoverTime
		}
		sw.Points = append(sw.Points, pt)
		if pt.DNF {
			break
		}
	}
	return sw
}

// Figures34 reproduces the Figure 3 (literals vs k) and Figure 4 (time
// vs k, log scale in the paper) series for the named functions (the
// paper plots dist and f51m).
func Figures34(w io.Writer, names []string, maxK int, cfg Config) []Sweep {
	var sweeps []Sweep
	for _, name := range names {
		sw := SweepK(name, maxK, cfg)
		sweeps = append(sweeps, sw)
		fmt.Fprintf(w, "Figures 3 and 4 series: %s (SP: %d literals, %s)\n",
			sw.Name, sw.SPLiterals, fmtDur(sw.SPTime))
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "k\t#L(SPP_k)\ttime\t")
		for _, pt := range sw.Points {
			if pt.DNF {
				fmt.Fprintf(tw, "%d\t*\t*\t\n", pt.K)
				continue
			}
			fmt.Fprintf(tw, "%d\t%d\t%s\t\n", pt.K, pt.Literals, fmtDur(pt.Time))
		}
		tw.Flush()
	}
	return sweeps
}
