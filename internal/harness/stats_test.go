package harness

import (
	"bytes"
	"testing"

	"repro/internal/bench"
)

func TestCoreOptionsPlumbsCoverMaxNodes(t *testing.T) {
	cfg := fastCfg()
	cfg.CoverMaxNodes = 12345
	if got := cfg.CoreOptions().CoverMaxNodes; got != 12345 {
		t.Fatalf("CoreOptions().CoverMaxNodes = %d, want 12345", got)
	}
	cfg.CoverExact = true
	cfg.Workers = 3
	opts := cfg.CoreOptions()
	if !opts.CoverExact || opts.Workers != 3 || opts.CoverMaxNodes != 12345 {
		t.Fatalf("CoreOptions dropped fields: %+v", opts)
	}
}

func TestMinimizeFuncAttachesStats(t *testing.T) {
	r := MinimizeFunc(bench.MustLoad("life"), fastCfg())
	if r.Stats == nil {
		t.Fatal("FuncResult.Stats not attached")
	}
	if r.Stats.Name != "table1/life" {
		t.Fatalf("report name %q", r.Stats.Name)
	}
	if r.Stats.Counters["eppp.retained"] != int64(r.EPPP) {
		t.Fatalf("report eppp.retained %d != row EPPP %d",
			r.Stats.Counters["eppp.retained"], r.EPPP)
	}
	if len(r.Stats.Phases) == 0 || r.Stats.PhaseSeconds() <= 0 {
		t.Fatalf("no phases recorded: %+v", r.Stats.Phases)
	}
}

func TestTable2AttachesStats(t *testing.T) {
	var buf bytes.Buffer
	rows := Table2(&buf, []OutputCase{{Func: "risc", Output: 2}}, fastCfg())
	r := rows[0]
	if r.TrieStats == nil || r.NaiveStats == nil {
		t.Fatalf("per-engine reports missing: %+v", r)
	}
	if r.TrieStats.Name != "table2/risc(2)/alg2" || r.NaiveStats.Name != "table2/risc(2)/naive" {
		t.Fatalf("report names %q / %q", r.TrieStats.Name, r.NaiveStats.Name)
	}
	// The two engines count their work in different currencies; both
	// must show up in their own report.
	if r.TrieStats.Counters["eppp.unions"] != r.TrieUnions {
		t.Fatalf("trie report unions %d != row %d",
			r.TrieStats.Counters["eppp.unions"], r.TrieUnions)
	}
	if r.NaiveStats.Counters["eppp.naive_comparisons"] != r.NaiveComparisons {
		t.Fatalf("naive report comparisons %d != row %d",
			r.NaiveStats.Counters["eppp.naive_comparisons"], r.NaiveComparisons)
	}
}

func TestTable3AttachesStats(t *testing.T) {
	var buf bytes.Buffer
	rows := Table3(&buf, []string{"mlp4"}, fastCfg())
	r := rows[0]
	if r.Stats == nil || r.Stats.Name != "table3/mlp4" {
		t.Fatalf("report missing or misnamed: %+v", r.Stats)
	}
	phases := map[string]bool{}
	for _, p := range r.Stats.Phases {
		phases[p.Phase] = true
	}
	// The row runs both the heuristic and the exact pass on one
	// recorder; both pipelines' phases must be present.
	for _, want := range []string{"eppp", "heuristic.seed", "cover.greedy"} {
		if !phases[want] {
			t.Fatalf("phases %v missing %q", r.Stats.Phases, want)
		}
	}
}
