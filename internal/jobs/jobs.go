// Package jobs implements the journaled priority work queue behind the
// async minimization tier: jobs are accepted into an append-only
// journal (so a crash after the accept response loses nothing), drained
// by workers that hold heartbeat-renewed leases, and driven to exactly
// one terminal state (done or failed) apiece. On startup the journal is
// replayed: terminal jobs are restored with their results (the serving
// layer uses them to warm its result cache) and incomplete jobs are
// re-enqueued, so a kill -9 mid-drain only re-runs work, never loses
// or duplicates it.
//
// The queue orders jobs by priority class — "interactive" before
// "batch" before "bulk" — and FIFO within a class. A worker that stops
// heartbeating (stuck, killed, or partitioned from the queue) loses its
// lease after Options.LeaseTTL; the job is then retried up to
// Options.MaxRetries times and finally parked as failed with the lease
// history preserved in its error. Completion racing a lease expiry is
// resolved by lease tokens: a stale worker's Done/Fail is rejected, so
// a job can run more than once but terminates exactly once.
//
// Journal records are self-contained JSON lines. Replay tolerates a
// truncated final record (the partial write of a crash). The live state
// is compacted into a fresh snapshot journal at Open and again online
// whenever the active file outgrows Options.CompactEvery records or
// Options.CompactBytes, so a long-lived server's journal stays bounded
// without restarts. Snapshots are written to a temporary name and
// promoted by an fsynced rename, with a leading marker record replay
// keys on — a crash anywhere in a compaction leaves either the old
// files or a complete snapshot, never a double-counted mix.
package jobs

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// State is a job's lifecycle state. Transitions:
//
//	queued -> running           (leased by a worker)
//	running -> queued           (lease expired or released; retry)
//	running -> done | failed    (terminal, exactly once)
//	queued -> failed            (retry cap exhausted at reclaim)
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Priority classes, highest first. Within a class the queue is FIFO.
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
	PriorityBulk        = "bulk"
)

// priorityRank orders the classes; unknown classes are rejected at
// enqueue.
var priorityRank = map[string]int{
	PriorityInteractive: 0,
	PriorityBatch:       1,
	PriorityBulk:        2,
}

// Priorities returns the known classes, highest first.
func Priorities() []string {
	ps := make([]string, 0, len(priorityRank))
	for p := range priorityRank {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return priorityRank[ps[i]] < priorityRank[ps[j]] })
	return ps
}

// NormalizePriority maps the empty class to the default ("batch") and
// rejects unknown ones.
func NormalizePriority(p string) (string, error) {
	if p == "" {
		return PriorityBatch, nil
	}
	if _, ok := priorityRank[p]; !ok {
		return "", fmt.Errorf("jobs: unknown priority %q (want %s, %s or %s)",
			p, PriorityInteractive, PriorityBatch, PriorityBulk)
	}
	return p, nil
}

// Job is one unit of queued work. Payload and Result are opaque to the
// queue — the serving layer stores its request and response JSON there —
// and Warm is an optional side blob the owner uses to rebuild caches at
// replay. Snapshots returned by the queue are copies; mutating them
// does not affect queue state.
type Job struct {
	ID       string          `json:"id"`
	Priority string          `json:"priority"`
	State    State           `json:"state"`
	Payload  json.RawMessage `json:"payload,omitempty"`
	Attempts int             `json:"attempts,omitempty"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Warm     json.RawMessage `json:"warm,omitempty"`
}

// Options tunes a Queue. Zero values get defaults from Open.
type Options struct {
	// Dir holds the journal files; created if absent.
	Dir string
	// LeaseTTL is how long a lease survives without a heartbeat before
	// the job is reclaimed and retried. Default 30s.
	LeaseTTL time.Duration
	// MaxRetries caps lease-expiry retries; past it the job is parked
	// as failed. Default 2 (so a job runs at most 1+2 times).
	MaxRetries int
	// KeepDone bounds how many terminal jobs stay queryable (and are
	// carried through compaction); older ones are dropped oldest-first.
	// Default 4096.
	KeepDone int
	// ResultTTL keeps the outcome (result/error, not payload or warm
	// blob) of a terminal job trimmed past KeepDone queryable for this
	// long, so clients polling a recently finished job never see it
	// vanish. In-memory only. 0 disables.
	ResultTTL time.Duration
	// CompactEvery triggers an online journal compaction once the live
	// file holds this many records and a snapshot would at least halve
	// it; Open always compacts regardless. Default 4096; negative
	// disables online compaction.
	CompactEvery int
	// CompactBytes triggers the same compaction by live-file size.
	// Default 4 MiB; negative disables the size trigger.
	CompactBytes int64
	// NoSync skips the per-record fsync. Crash recovery then only
	// survives process death (the OS page cache persists), not machine
	// death. Tests use it for speed.
	NoSync bool
	// Clock overrides time.Now for lease-expiry tests.
	Clock func() time.Time
}

// Stats is a point-in-time counter snapshot. Accepted, Done, Failed and
// Retried are cumulative over the queue's lifetime including replayed
// history; Queued and Running are current occupancy.
type Stats struct {
	Queued   int
	Running  int
	Accepted int64
	Done     int64
	Failed   int64
	Retried  int64
	// Compactions counts journal compactions since Open (the startup
	// one included).
	Compactions int64
	// ByPriority counts accepted jobs per priority class.
	ByPriority map[string]int64
	// QueuedByPriority is the current backlog per priority class — the
	// admission layer's per-class pressure signal.
	QueuedByPriority map[string]int
}

// Replay summarizes what Open reconstructed from the journal.
type Replay struct {
	// Completed holds the replayed terminal jobs (done and failed),
	// journal order, results and warm blobs intact.
	Completed []Job
	// Requeued is how many non-terminal jobs went back into the queue
	// (accepted-but-unstarted and mid-run-at-crash jobs are
	// indistinguishable without lease journaling — both re-run).
	Requeued int
	// Truncated reports that the final journal record was a partial
	// write (the usual crash shape) and was ignored.
	Truncated bool
}
