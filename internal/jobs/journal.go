package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// record is one journal line. Records are self-contained: replay needs
// no state beyond the records themselves, in order.
//
//	enq   — job accepted (priority, payload, attempts on compaction)
//	retry — lease expired, job requeued (attempts updated)
//	done  — terminal success (result + optional warm blob)
//	fail  — terminal failure (error preserved)
type record struct {
	Op       string          `json:"op"`
	ID       string          `json:"id"`
	Priority string          `json:"priority,omitempty"`
	Payload  json.RawMessage `json:"payload,omitempty"`
	Attempts int             `json:"attempts,omitempty"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Warm     json.RawMessage `json:"warm,omitempty"`
}

// journal is the append-only record log: one active file, numbered so
// that compaction can write a successor and drop predecessors.
type journal struct {
	dir    string
	f      *os.File
	w      *bufio.Writer
	noSync bool
}

const journalExt = ".journal"

// journalFiles lists the journal files in dir in replay (numeric)
// order.
func journalFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type numbered struct {
		name string
		n    int
	}
	var files []numbered
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, journalExt) {
			continue
		}
		base := strings.TrimSuffix(name, journalExt)
		n, err := strconv.Atoi(base)
		if err != nil {
			return nil, fmt.Errorf("jobs: alien file %q in journal dir %s", name, dir)
		}
		files = append(files, numbered{name, n})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].n < files[j].n })
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.name
	}
	return out, nil
}

func journalNum(name string) int {
	n, _ := strconv.Atoi(strings.TrimSuffix(name, journalExt))
	return n
}

// replayJournal reads every journal file in dir in order and returns
// the records. A final record cut short by a crash — no trailing
// newline, or bytes that do not decode — is tolerated and reported via
// truncated; an undecodable record anywhere else is corruption and
// errors out.
func replayJournal(dir string) (recs []record, truncated bool, err error) {
	files, err := journalFiles(dir)
	if err != nil {
		return nil, false, err
	}
	for fi, name := range files {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, false, err
		}
		off := 0
		for off < len(data) {
			nl := bytes.IndexByte(data[off:], '\n')
			partial := nl < 0
			var line []byte
			if partial {
				line = data[off:]
				off = len(data)
			} else {
				line = data[off : off+nl]
				off += nl + 1
			}
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var rec record
			if derr := json.Unmarshal(line, &rec); derr != nil || rec.Op == "" || rec.ID == "" {
				// Only the very last bytes of the very last file may be a
				// crash-truncated partial write.
				if fi == len(files)-1 && off == len(data) {
					return recs, true, nil
				}
				return nil, false, fmt.Errorf("jobs: corrupt journal record in %s: %q", name, line)
			}
			if partial {
				// Decoded, but the newline never made it: treat as a
				// completed write (the record is whole) — this only
				// happens at the tail.
				recs = append(recs, rec)
				return recs, true, nil
			}
			recs = append(recs, rec)
		}
	}
	return recs, false, nil
}

// openJournal starts a fresh journal file numbered after the given
// predecessors.
func openJournal(dir string, after []string, noSync bool) (*journal, error) {
	next := 0
	if len(after) > 0 {
		next = journalNum(after[len(after)-1]) + 1
	}
	name := filepath.Join(dir, fmt.Sprintf("%08d%s", next, journalExt))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{dir: dir, f: f, w: bufio.NewWriter(f), noSync: noSync}, nil
}

// append writes one record durably (flushed, and fsynced unless
// NoSync).
func (j *journal) append(rec record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(data); err != nil {
		return err
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if !j.noSync {
		return j.f.Sync()
	}
	return nil
}

func (j *journal) close() error {
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// removeFiles deletes the named journal files (after a successful
// compaction).
func removeFiles(dir string, names []string) error {
	for _, name := range names {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}
