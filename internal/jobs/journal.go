package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// record is one journal line. Records are self-contained: replay needs
// no state beyond the records themselves, in order.
//
//	enq   — job accepted (priority, payload, attempts on compaction)
//	retry — lease expired, job requeued (attempts updated)
//	done  — terminal success (result + optional warm blob)
//	fail  — terminal failure (error preserved)
//	snap  — first record of a compacted journal: replay starts at the
//	        newest file opening with one, so predecessor files left
//	        behind by a crash between promote and cleanup are ignored
//	        instead of double-counted
type record struct {
	Op       string          `json:"op"`
	ID       string          `json:"id"`
	Priority string          `json:"priority,omitempty"`
	Payload  json.RawMessage `json:"payload,omitempty"`
	Attempts int             `json:"attempts,omitempty"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Warm     json.RawMessage `json:"warm,omitempty"`
}

// opSnap marks a compacted journal's leading snapshot record.
const opSnap = "snap"

// journal is the append-only record log: one active file, numbered so
// that compaction can write a successor and drop predecessors. records
// and bytes count what this file holds, so the queue can decide when an
// online compaction would pay for itself.
type journal struct {
	dir     string
	name    string // file name within dir (without the .tmp suffix)
	tmp     bool   // still under the .tmp name, awaiting promote
	f       *os.File
	w       *bufio.Writer
	noSync  bool
	records int
	bytes   int64
}

const (
	journalExt = ".journal"
	tmpSuffix  = ".tmp"
)

// journalFiles lists the journal files in dir in replay (numeric)
// order.
func journalFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type numbered struct {
		name string
		n    int
	}
	var files []numbered
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, journalExt) {
			continue
		}
		base := strings.TrimSuffix(name, journalExt)
		n, err := strconv.Atoi(base)
		if err != nil {
			return nil, fmt.Errorf("jobs: alien file %q in journal dir %s", name, dir)
		}
		files = append(files, numbered{name, n})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].n < files[j].n })
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.name
	}
	return out, nil
}

func journalNum(name string) int {
	n, _ := strconv.Atoi(strings.TrimSuffix(name, journalExt))
	return n
}

// replayJournal reads every journal file in dir and returns the records
// to rebuild state from. Files are read in numeric order, but replay
// starts at the newest file that opens with a snapshot record: earlier
// files are pre-compaction leftovers (a crash between promote and
// cleanup), already folded into the snapshot. A final record cut short
// by a crash — no trailing newline, or bytes that do not decode — is
// tolerated and reported via truncated; an undecodable record anywhere
// else is corruption and errors out.
func replayJournal(dir string) (recs []record, truncated bool, err error) {
	files, err := journalFiles(dir)
	if err != nil {
		return nil, false, err
	}
	perFile := make([][]record, len(files))
	for fi, name := range files {
		frecs, trunc, err := parseJournalFile(filepath.Join(dir, name), fi == len(files)-1)
		if err != nil {
			return nil, false, err
		}
		perFile[fi] = frecs
		if trunc {
			truncated = true
		}
	}
	start := 0
	for i, frecs := range perFile {
		if len(frecs) > 0 && frecs[0].Op == opSnap {
			start = i
		}
	}
	for _, frecs := range perFile[start:] {
		for _, rec := range frecs {
			if rec.Op == opSnap {
				continue
			}
			recs = append(recs, rec)
		}
	}
	return recs, truncated, nil
}

// parseJournalFile decodes one journal file's records. Only the last
// live file may end in a crash-truncated partial write.
func parseJournalFile(path string, last bool) (recs []record, truncated bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		partial := nl < 0
		var line []byte
		if partial {
			line = data[off:]
			off = len(data)
		} else {
			line = data[off : off+nl]
			off += nl + 1
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec record
		if derr := json.Unmarshal(line, &rec); derr != nil || rec.Op == "" || rec.ID == "" {
			// Only the very last bytes of the very last file may be a
			// crash-truncated partial write.
			if last && off == len(data) {
				return recs, true, nil
			}
			return nil, false, fmt.Errorf("jobs: corrupt journal record in %s: %q", filepath.Base(path), line)
		}
		if partial {
			// Decoded, but the newline never made it: a whole record at
			// the crash tail.
			if !last {
				return nil, false, fmt.Errorf("jobs: unterminated record mid-journal in %s", filepath.Base(path))
			}
			recs = append(recs, rec)
			return recs, true, nil
		}
		recs = append(recs, rec)
	}
	return recs, false, nil
}

// openJournal starts a fresh journal file numbered after the given
// predecessors.
func openJournal(dir string, after []string, noSync bool) (*journal, error) {
	name := nextJournalName(after)
	f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{dir: dir, name: name, f: f, w: bufio.NewWriter(f), noSync: noSync}, nil
}

// openJournalTmp starts the next numbered journal under a .tmp name for
// a compaction snapshot: records are buffered without per-record sync,
// and promote makes the file live atomically. A crash before promote
// leaves the predecessors untouched (journalFiles skips .tmp names;
// Open sweeps the leftovers).
func openJournalTmp(dir string, after []string) (*journal, error) {
	name := nextJournalName(after)
	f, err := os.OpenFile(filepath.Join(dir, name+tmpSuffix), os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{dir: dir, name: name, tmp: true, f: f, w: bufio.NewWriter(f), noSync: true}, nil
}

func nextJournalName(after []string) string {
	next := 0
	if len(after) > 0 {
		next = journalNum(after[len(after)-1]) + 1
	}
	return fmt.Sprintf("%08d%s", next, journalExt)
}

// promote flushes the snapshot, fsyncs it, renames it to its live name
// and fsyncs the directory, so the snapshot becomes visible to replay
// only as a complete file. The journal then appends normally with the
// queue's sync policy.
func (j *journal) promote(noSync bool) error {
	if !j.tmp {
		return errors.New("jobs: journal already promoted")
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if !noSync {
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	if err := os.Rename(filepath.Join(j.dir, j.name+tmpSuffix), filepath.Join(j.dir, j.name)); err != nil {
		return err
	}
	if !noSync {
		if d, err := os.Open(j.dir); err == nil {
			_ = d.Sync()
			d.Close()
		}
	}
	j.tmp = false
	j.noSync = noSync
	return nil
}

// abort discards an unpromoted snapshot.
func (j *journal) abort() {
	j.f.Close()
	_ = os.Remove(filepath.Join(j.dir, j.name+tmpSuffix))
}

// sweepTmp removes compaction snapshots that never got promoted.
func sweepTmp(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, journalExt+tmpSuffix) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// append writes one record durably (flushed, and fsynced unless
// NoSync).
func (j *journal) append(rec record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(data); err != nil {
		return err
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	j.records++
	j.bytes += int64(len(data)) + 1
	if !j.noSync {
		return j.f.Sync()
	}
	return nil
}

func (j *journal) close() error {
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// removeFiles deletes the named journal files (after a successful
// compaction).
func removeFiles(dir string, names []string) error {
	for _, name := range names {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}
