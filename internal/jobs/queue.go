package jobs

import (
	"container/heap"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// ErrClosed is returned by queue operations after Close.
var ErrClosed = errors.New("jobs: queue closed")

// job is the queue-internal state behind a Job snapshot.
type job struct {
	Job
	seq    uint64    // enqueue order, FIFO tiebreak within a priority
	index  int       // heap index; -1 when not queued
	token  int       // lease generation; stale leases are rejected
	expiry time.Time // lease deadline while running
	final  chan struct{}
}

// Queue is the journaled priority work queue. Open it with Open; every
// method is safe for concurrent use. Journal appends happen inside the
// critical section, so the in-memory state never runs ahead of the
// durable log.
type Queue struct {
	mu      sync.Mutex
	opts    Options
	jobs    map[string]*job
	pq      jobHeap
	running map[string]*job
	wake    chan struct{} // closed+replaced to broadcast "queue changed"
	log     *journal
	seq     uint64
	closed  bool

	terminal []string // terminal job IDs, oldest first, for KeepDone trimming

	// results holds TTL-retained terminal outcomes of jobs trimmed out
	// of the KeepDone window, so a client polling a recently finished
	// job still gets its result instead of a 404. Payload and warm blobs
	// are dropped (replay no longer needs them); in-memory only — a
	// restart retains nothing past KeepDone.
	results map[string]retained

	accepted, done, failed, retried int64
	compactions                     int64
	byPriority                      map[string]int64
}

// retained is a trimmed terminal job kept queryable until expiry.
type retained struct {
	job     Job
	expires time.Time
}

func (q *Queue) now() time.Time {
	if q.opts.Clock != nil {
		return q.opts.Clock()
	}
	return time.Now()
}

// Open creates or recovers a queue in opts.Dir: the journal is
// replayed, terminal jobs are restored (and reported in Replay for
// cache warming), non-terminal ones re-enqueued, and the live state is
// compacted into a fresh journal file.
func Open(opts Options) (*Queue, *Replay, error) {
	if opts.Dir == "" {
		return nil, nil, errors.New("jobs: Options.Dir is required")
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 30 * time.Second
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	} else if opts.MaxRetries == 0 {
		opts.MaxRetries = 2
	}
	if opts.KeepDone <= 0 {
		opts.KeepDone = 4096
	}
	if opts.CompactEvery == 0 {
		opts.CompactEvery = 4096
	}
	if opts.CompactBytes == 0 {
		opts.CompactBytes = 4 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	if err := sweepTmp(opts.Dir); err != nil {
		return nil, nil, err
	}

	recs, truncated, err := replayJournal(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	q := &Queue{
		opts:       opts,
		jobs:       make(map[string]*job),
		running:    make(map[string]*job),
		results:    make(map[string]retained),
		wake:       make(chan struct{}),
		byPriority: make(map[string]int64),
	}
	rep := &Replay{Truncated: truncated}
	var order []string // journal appearance order of accepted jobs
	for _, rec := range recs {
		switch rec.Op {
		case "enq":
			if _, dup := q.jobs[rec.ID]; dup {
				return nil, nil, fmt.Errorf("jobs: duplicate enqueue of %s in journal", rec.ID)
			}
			prio, err := NormalizePriority(rec.Priority)
			if err != nil {
				return nil, nil, err
			}
			q.seq++
			q.jobs[rec.ID] = &job{
				Job: Job{
					ID:       rec.ID,
					Priority: prio,
					State:    StateQueued,
					Payload:  rec.Payload,
					Attempts: rec.Attempts,
				},
				seq:   q.seq,
				index: -1,
				final: make(chan struct{}),
			}
			order = append(order, rec.ID)
			q.accepted++
			q.byPriority[prio]++
		case "retry":
			j := q.jobs[rec.ID]
			if j == nil || j.State.Terminal() {
				return nil, nil, fmt.Errorf("jobs: retry record for unknown or terminal job %s", rec.ID)
			}
			j.Attempts = rec.Attempts
			q.retried++
		case "done", "fail":
			j := q.jobs[rec.ID]
			if j == nil {
				return nil, nil, fmt.Errorf("jobs: terminal record for unknown job %s", rec.ID)
			}
			if j.State.Terminal() {
				return nil, nil, fmt.Errorf("jobs: job %s reached a terminal state twice in the journal", rec.ID)
			}
			if rec.Op == "done" {
				j.State = StateDone
				j.Result = rec.Result
				j.Warm = rec.Warm
				q.done++
			} else {
				j.State = StateFailed
				j.Error = rec.Error
				q.failed++
			}
			close(j.final)
			q.terminal = append(q.terminal, rec.ID)
		default:
			return nil, nil, fmt.Errorf("jobs: unknown journal op %q", rec.Op)
		}
	}
	// Requeue survivors in their original order and collect the replay
	// summary before trimming.
	for _, id := range order {
		j := q.jobs[id]
		if j.State.Terminal() {
			rep.Completed = append(rep.Completed, j.Job)
		} else {
			heap.Push(&q.pq, j)
			rep.Requeued++
		}
	}
	q.trimTerminalLocked()

	// Compact: the live state becomes a fresh snapshot journal; the
	// replayed files are removed only after the snapshot is promoted. An
	// empty directory just opens the first journal — nothing to fold in.
	old, err := journalFiles(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	if len(old) == 0 {
		log, err := openJournal(opts.Dir, nil, opts.NoSync)
		if err != nil {
			return nil, nil, err
		}
		q.log = log
	} else if err := q.compactLocked(old); err != nil {
		return nil, nil, err
	}
	return q, rep, nil
}

// compactLocked rewrites the live state as a fresh snapshot journal and
// removes the predecessors. The snapshot is written under a .tmp name
// and promoted (fsync + rename) only once complete, so a crash at any
// point leaves either the old files or a whole snapshot — replay never
// sees half of each, and leftovers on either side of the promote are
// ignored or swept at the next Open. Called by Open (with the replayed
// files as predecessors) and online past the growth thresholds.
func (q *Queue) compactLocked(old []string) error {
	nj, err := openJournalTmp(q.opts.Dir, old)
	if err != nil {
		return err
	}
	if err := nj.append(record{Op: opSnap, ID: "snapshot"}); err != nil {
		nj.abort()
		return err
	}
	for _, j := range q.snapshotJobsLocked() {
		if err := appendStateTo(nj, j); err != nil {
			nj.abort()
			return err
		}
	}
	if err := nj.promote(q.opts.NoSync); err != nil {
		nj.abort()
		return err
	}
	if q.log != nil {
		q.log.close()
	}
	q.log = nj
	q.compactions++
	// Leftover predecessors are harmless (replay starts at the
	// snapshot), so removal failures do not fail the compaction.
	return removeFiles(q.opts.Dir, old)
}

// snapshotJobsLocked returns every live job in enqueue-sequence order —
// the order replay expects queued jobs back in. Running jobs snapshot
// as plain enqueues (their lease is in-memory only): a crash re-runs
// them, matching the journal's crash semantics.
func (q *Queue) snapshotJobsLocked() []*job {
	js := make([]*job, 0, len(q.jobs))
	for _, j := range q.jobs {
		js = append(js, j)
	}
	sort.Slice(js, func(i, k int) bool { return js[i].seq < js[k].seq })
	return js
}

// maybeCompactLocked compacts the live journal online once it has grown
// past the configured thresholds and the snapshot would at least halve
// its record count. Failure is non-fatal: the current journal keeps
// appending and a later append retries.
func (q *Queue) maybeCompactLocked() {
	if q.closed || q.log == nil || q.log.tmp {
		return
	}
	overRecords := q.opts.CompactEvery > 0 && q.log.records >= q.opts.CompactEvery
	overBytes := q.opts.CompactBytes > 0 && q.log.bytes >= q.opts.CompactBytes
	if !overRecords && !overBytes {
		return
	}
	// Worst-case snapshot size: marker + enq per live job + terminal
	// record per finished one. Skip rewrites that wouldn't shrink.
	est := 1 + len(q.jobs) + len(q.terminal)
	if q.log.records < 2*est {
		return
	}
	_ = q.compactLocked([]string{q.log.name})
}

// appendStateTo writes the records that reconstruct j from scratch: an
// enqueue (with its attempt count) plus its terminal record if it has
// one.
func appendStateTo(log *journal, j *job) error {
	if err := log.append(record{
		Op: "enq", ID: j.ID, Priority: j.Priority,
		Payload: j.Payload, Attempts: j.Attempts,
	}); err != nil {
		return err
	}
	switch j.State {
	case StateDone:
		return log.append(record{Op: "done", ID: j.ID, Result: j.Result, Warm: j.Warm})
	case StateFailed:
		return log.append(record{Op: "fail", ID: j.ID, Error: j.Error})
	}
	return nil
}

// trimTerminalLocked drops terminal jobs beyond KeepDone, oldest
// first — stashing their outcome in the TTL retention map when one is
// configured — and purges retained results past their TTL.
func (q *Queue) trimTerminalLocked() {
	for len(q.terminal) > q.opts.KeepDone {
		id := q.terminal[0]
		if j := q.jobs[id]; j != nil && q.opts.ResultTTL > 0 {
			cp := j.Job
			cp.Payload, cp.Warm = nil, nil
			q.results[id] = retained{job: cp, expires: q.now().Add(q.opts.ResultTTL)}
		}
		delete(q.jobs, id)
		q.terminal = q.terminal[1:]
	}
	if len(q.results) == 0 {
		return
	}
	now := q.now()
	for id, r := range q.results {
		if !r.expires.After(now) {
			delete(q.results, id)
		}
	}
}

// broadcastLocked wakes every Lease waiter.
func (q *Queue) broadcastLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// Enqueue journals and queues a new job. The returned snapshot carries
// the assigned ID. The journal write happens before the job becomes
// visible, so an accepted job is always recoverable.
func (q *Queue) Enqueue(priority string, payload json.RawMessage) (Job, error) {
	prio, err := NormalizePriority(priority)
	if err != nil {
		return Job{}, err
	}
	var rnd [4]byte
	if _, err := rand.Read(rnd[:]); err != nil {
		return Job{}, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Job{}, ErrClosed
	}
	q.seq++
	id := fmt.Sprintf("j-%d-%s", q.seq, hex.EncodeToString(rnd[:]))
	if err := q.log.append(record{Op: "enq", ID: id, Priority: prio, Payload: payload}); err != nil {
		return Job{}, fmt.Errorf("jobs: journal: %w", err)
	}
	j := &job{
		Job: Job{
			ID:       id,
			Priority: prio,
			State:    StateQueued,
			Payload:  payload,
		},
		seq:   q.seq,
		index: -1,
		final: make(chan struct{}),
	}
	q.jobs[id] = j
	heap.Push(&q.pq, j)
	q.accepted++
	q.byPriority[prio]++
	q.broadcastLocked()
	q.maybeCompactLocked()
	return j.Job, nil
}

// Get returns a snapshot of the job and its 1-based queue position
// (0 when not queued). Jobs trimmed out of the KeepDone window but
// still inside the result TTL are served from the retention map.
func (q *Queue) Get(id string) (Job, int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		if r, ok := q.results[id]; ok {
			if r.expires.After(q.now()) {
				return r.job, 0, true
			}
			delete(q.results, id)
		}
		return Job{}, 0, false
	}
	return j.Job, q.positionLocked(j), true
}

// positionLocked counts queued jobs ahead of j (same-or-higher
// priority, earlier sequence) plus one; 0 if j is not queued.
func (q *Queue) positionLocked(j *job) int {
	if j.index < 0 {
		return 0
	}
	pos := 1
	for _, other := range q.pq {
		if other != j && jobLess(other, j) {
			pos++
		}
	}
	return pos
}

// Watch returns a channel closed when the job reaches a terminal
// state (already closed if it has). Watching allocates nothing and
// spawns nothing, so long-poll handlers can select on it against their
// request context without leaking anything on cancellation.
func (q *Queue) Watch(id string) (<-chan struct{}, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		if r, ok := q.results[id]; ok && r.expires.After(q.now()) {
			return closedCh, true // retained results are terminal by construction
		}
		return nil, false
	}
	return j.final, true
}

// closedCh is the already-terminal Watch result.
var closedCh = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// Stats snapshots the counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	by := make(map[string]int64, len(q.byPriority))
	for k, v := range q.byPriority {
		by[k] = v
	}
	qby := make(map[string]int, len(priorityRank))
	for _, j := range q.pq {
		qby[j.Priority]++
	}
	return Stats{
		Queued:           len(q.pq),
		Running:          len(q.running),
		Accepted:         q.accepted,
		Done:             q.done,
		Failed:           q.failed,
		Retried:          q.retried,
		Compactions:      q.compactions,
		ByPriority:       by,
		QueuedByPriority: qby,
	}
}

// Close stops the queue: blocked Lease calls return ErrClosed and the
// journal file is closed. Jobs in flight keep their in-memory state
// (their late Done/Fail is rejected); everything durable is already in
// the journal.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	q.broadcastLocked()
	return q.log.close()
}

// Lease blocks until a job is available (or ctx ends, or the queue
// closes) and returns it leased to the caller: the job is running, and
// the caller must Heartbeat the lease within LeaseTTL intervals until
// it resolves it with Done, Fail or Release. An expired lease is
// reclaimed and retried; the stale holder's late calls report false.
func (q *Queue) Lease(ctx context.Context) (*Lease, error) {
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return nil, ErrClosed
		}
		if err := q.reclaimLocked(); err != nil {
			q.mu.Unlock()
			return nil, err
		}
		if len(q.pq) > 0 {
			j := heap.Pop(&q.pq).(*job)
			j.State = StateRunning
			j.token++
			j.expiry = q.now().Add(q.opts.LeaseTTL)
			q.running[j.ID] = j
			l := &Lease{Job: j.Job, q: q, id: j.ID, token: j.token}
			q.mu.Unlock()
			return l, nil
		}
		wake := q.wake
		var expire <-chan time.Time
		var timer *time.Timer
		if next, ok := q.nextExpiryLocked(); ok {
			d := next.Sub(q.now())
			if d < 0 {
				d = 0
			}
			timer = time.NewTimer(d)
			expire = timer.C
		}
		q.mu.Unlock()
		select {
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return nil, ctx.Err()
		case <-wake:
		case <-expire:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// nextExpiryLocked returns the earliest lease deadline among running
// jobs.
func (q *Queue) nextExpiryLocked() (time.Time, bool) {
	var next time.Time
	for _, j := range q.running {
		if next.IsZero() || j.expiry.Before(next) {
			next = j.expiry
		}
	}
	return next, !next.IsZero()
}

// reclaimLocked expires dead leases: each reclaimed job either goes
// back into the queue (journaled as a retry) or, past MaxRetries, is
// parked as failed.
func (q *Queue) reclaimLocked() error {
	now := q.now()
	for id, j := range q.running {
		if j.expiry.After(now) {
			continue
		}
		delete(q.running, id)
		j.Attempts++
		q.retried++
		if j.Attempts > q.opts.MaxRetries {
			j.State = StateFailed
			j.Error = fmt.Sprintf("lease expired %d times (worker died or stalled); retry cap %d exhausted",
				j.Attempts, q.opts.MaxRetries)
			if err := q.log.append(record{Op: "fail", ID: id, Error: j.Error}); err != nil {
				return fmt.Errorf("jobs: journal: %w", err)
			}
			q.failed++
			q.terminal = append(q.terminal, id)
			q.trimTerminalLocked()
			close(j.final)
			continue
		}
		if err := q.log.append(record{Op: "retry", ID: id, Attempts: j.Attempts}); err != nil {
			return fmt.Errorf("jobs: journal: %w", err)
		}
		j.State = StateQueued
		heap.Push(&q.pq, j)
		q.broadcastLocked()
	}
	q.maybeCompactLocked()
	return nil
}

// Lease is a worker's claim on one job. All methods are safe for
// concurrent use with the queue; each reports whether the lease still
// held (false means the job was reclaimed — stop working on it, any
// result is discarded).
type Lease struct {
	// Job is the leased job snapshot (payload included).
	Job Job

	q     *Queue
	id    string
	token int
}

// holderLocked returns the internal job iff the lease still holds it.
func (l *Lease) holderLocked() *job {
	j := l.q.jobs[l.id]
	if j == nil || j.State != StateRunning || j.token != l.token {
		return nil
	}
	return j
}

// Heartbeat extends the lease by LeaseTTL.
func (l *Lease) Heartbeat() bool {
	l.q.mu.Lock()
	defer l.q.mu.Unlock()
	j := l.holderLocked()
	if j == nil {
		return false
	}
	j.expiry = l.q.now().Add(l.q.opts.LeaseTTL)
	return true
}

// Done resolves the job as succeeded, journaling the result and the
// optional warm blob.
func (l *Lease) Done(result, warm json.RawMessage) bool {
	return l.resolve(StateDone, result, warm, "")
}

// Fail resolves the job as failed, preserving the error.
func (l *Lease) Fail(errMsg string) bool {
	return l.resolve(StateFailed, nil, nil, errMsg)
}

func (l *Lease) resolve(state State, result, warm json.RawMessage, errMsg string) bool {
	l.q.mu.Lock()
	defer l.q.mu.Unlock()
	j := l.holderLocked()
	if j == nil || l.q.closed {
		return false
	}
	rec := record{ID: l.id}
	if state == StateDone {
		rec.Op, rec.Result, rec.Warm = "done", result, warm
	} else {
		rec.Op, rec.Error = "fail", errMsg
	}
	if err := l.q.log.append(rec); err != nil {
		// The terminal record did not land; keep the job running so the
		// lease expiry path retries it rather than losing the outcome.
		return false
	}
	delete(l.q.running, l.id)
	j.State = state
	j.Result, j.Warm, j.Error = result, warm, errMsg
	if state == StateDone {
		l.q.done++
	} else {
		l.q.failed++
	}
	l.q.terminal = append(l.q.terminal, l.id)
	l.q.trimTerminalLocked()
	close(j.final)
	l.q.maybeCompactLocked()
	return true
}

// Release puts the job back in the queue without burning a retry —
// the graceful-shutdown path for work interrupted mid-compute. Nothing
// is journaled: the enqueue record already covers the requeue.
func (l *Lease) Release() bool {
	l.q.mu.Lock()
	defer l.q.mu.Unlock()
	j := l.holderLocked()
	if j == nil {
		return false
	}
	delete(l.q.running, l.id)
	j.State = StateQueued
	heap.Push(&l.q.pq, j)
	l.q.broadcastLocked()
	return true
}

// jobHeap orders queued jobs by (priority rank, enqueue sequence).
type jobHeap []*job

func jobLess(a, b *job) bool {
	ra, rb := priorityRank[a.Priority], priorityRank[b.Priority]
	if ra != rb {
		return ra < rb
	}
	return a.seq < b.seq
}

func (h jobHeap) Len() int           { return len(h) }
func (h jobHeap) Less(i, j int) bool { return jobLess(h[i], h[j]) }
func (h jobHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *jobHeap) Push(x any)        { j := x.(*job); j.index = len(*h); *h = append(*h, j) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*h = old[:n-1]
	return j
}
