package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, dir string, opts Options) (*Queue, *Replay) {
	t.Helper()
	opts.Dir = dir
	opts.NoSync = true
	q, rep, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { q.Close() })
	return q, rep
}

func TestLifecycle(t *testing.T) {
	q, rep := openTest(t, t.TempDir(), Options{})
	if rep.Requeued != 0 || len(rep.Completed) != 0 || rep.Truncated {
		t.Fatalf("fresh dir replay = %+v, want empty", rep)
	}

	j, err := q.Enqueue("", json.RawMessage(`{"n":3}`))
	if err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	if j.Priority != PriorityBatch || j.State != StateQueued {
		t.Fatalf("enqueued job = %+v", j)
	}
	if got, pos, ok := q.Get(j.ID); !ok || got.State != StateQueued || pos != 1 {
		t.Fatalf("Get = %+v pos=%d ok=%v", got, pos, ok)
	}

	l, err := q.Lease(context.Background())
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}
	if l.Job.ID != j.ID {
		t.Fatalf("leased %s, want %s", l.Job.ID, j.ID)
	}
	if got, pos, _ := q.Get(j.ID); got.State != StateRunning || pos != 0 {
		t.Fatalf("running job = %+v pos=%d", got, pos)
	}
	if !l.Heartbeat() {
		t.Fatal("Heartbeat lost a live lease")
	}

	ch, ok := q.Watch(j.ID)
	if !ok {
		t.Fatal("Watch: unknown job")
	}
	select {
	case <-ch:
		t.Fatal("watch fired before terminal state")
	default:
	}
	if !l.Done(json.RawMessage(`{"literals":7}`), json.RawMessage(`{"w":1}`)) {
		t.Fatal("Done rejected a live lease")
	}
	select {
	case <-ch:
	default:
		t.Fatal("watch channel not closed at terminal transition")
	}
	got, _, _ := q.Get(j.ID)
	if got.State != StateDone || string(got.Result) != `{"literals":7}` {
		t.Fatalf("done job = %+v", got)
	}
	// Second resolution of any kind must be rejected.
	if l.Done(nil, nil) || l.Fail("again") {
		t.Fatal("a second terminal transition was accepted")
	}
	st := q.Stats()
	if st.Done != 1 || st.Accepted != 1 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPriorityOrder(t *testing.T) {
	q, _ := openTest(t, t.TempDir(), Options{})
	ids := map[string]string{}
	for _, p := range []string{PriorityBulk, PriorityBatch, PriorityInteractive, PriorityBatch} {
		j, err := q.Enqueue(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[j.ID] = p
	}
	var got []string
	for range 4 {
		l, err := q.Lease(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ids[l.Job.ID])
		l.Done(nil, nil)
	}
	want := []string{PriorityInteractive, PriorityBatch, PriorityBatch, PriorityBulk}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

func TestUnknownPriorityRejected(t *testing.T) {
	q, _ := openTest(t, t.TempDir(), Options{})
	if _, err := q.Enqueue("urgent", nil); err == nil {
		t.Fatal("unknown priority accepted")
	}
}

func TestLeaseBlocksUntilEnqueue(t *testing.T) {
	q, _ := openTest(t, t.TempDir(), Options{})
	leased := make(chan string, 1)
	go func() {
		l, err := q.Lease(context.Background())
		if err != nil {
			leased <- "err: " + err.Error()
			return
		}
		l.Done(nil, nil)
		leased <- l.Job.ID
	}()
	time.Sleep(20 * time.Millisecond)
	j, err := q.Enqueue("", nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-leased:
		if id != j.ID {
			t.Fatalf("leased %s, want %s", id, j.ID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Lease never woke on enqueue")
	}
}

func TestLeaseCtxCancel(t *testing.T) {
	q, _ := openTest(t, t.TempDir(), Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := q.Lease(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Lease on empty queue = %v, want deadline", err)
	}
}

// TestCrashReplay simulates a crash by reopening the journal dir
// without closing: done jobs come back terminal with results, the
// in-flight and queued ones are requeued.
func TestCrashReplay(t *testing.T) {
	dir := t.TempDir()
	q, _ := openTest(t, dir, Options{})
	jDone, _ := q.Enqueue(PriorityInteractive, json.RawMessage(`{"a":1}`))
	jRun, _ := q.Enqueue("", json.RawMessage(`{"b":2}`))
	jQueued, _ := q.Enqueue("", json.RawMessage(`{"c":3}`))

	l, err := q.Lease(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if l.Job.ID != jDone.ID {
		t.Fatalf("leased %s, want the interactive job", l.Job.ID)
	}
	if !l.Done(json.RawMessage(`{"ok":true}`), json.RawMessage(`{"warm":"blob"}`)) {
		t.Fatal("Done")
	}
	if _, err := q.Lease(context.Background()); err != nil { // jRun now mid-compute
		t.Fatal(err)
	}

	// kill -9: no Close, just reopen.
	q2, rep, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer q2.Close()
	if rep.Truncated {
		t.Fatal("clean journal reported truncated")
	}
	if len(rep.Completed) != 1 || rep.Completed[0].ID != jDone.ID {
		t.Fatalf("replay completed = %+v", rep.Completed)
	}
	if string(rep.Completed[0].Result) != `{"ok":true}` || string(rep.Completed[0].Warm) != `{"warm":"blob"}` {
		t.Fatalf("replayed result/warm = %s / %s", rep.Completed[0].Result, rep.Completed[0].Warm)
	}
	if rep.Requeued != 2 {
		t.Fatalf("requeued = %d, want 2 (mid-run + queued)", rep.Requeued)
	}
	for _, id := range []string{jRun.ID, jQueued.ID} {
		if got, _, ok := q2.Get(id); !ok || got.State != StateQueued {
			t.Fatalf("job %s after replay = %+v ok=%v, want queued", id, got, ok)
		}
	}
	if got, _, ok := q2.Get(jDone.ID); !ok || got.State != StateDone {
		t.Fatalf("done job after replay = %+v ok=%v", got, ok)
	}

	// Compaction must leave exactly one terminal record per job across
	// the whole dir.
	assertSingleTerminalRecords(t, dir)
}

func TestEmptyJournalDir(t *testing.T) {
	dir := t.TempDir()
	q, rep := openTest(t, dir, Options{})
	if rep.Requeued != 0 || len(rep.Completed) != 0 {
		t.Fatalf("empty dir replay = %+v", rep)
	}
	if _, err := q.Enqueue("", nil); err != nil {
		t.Fatal(err)
	}
}

func TestMissingDirCreated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "jobs")
	openTest(t, dir, Options{})
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("journal dir not created: %v", err)
	}
}

// TestTruncatedFinalRecord crashes mid-append: the partial last line is
// ignored and reported, everything before it replays.
func TestTruncatedFinalRecord(t *testing.T) {
	dir := t.TempDir()
	whole, _ := json.Marshal(record{Op: "enq", ID: "j-1-aa", Priority: PriorityBatch, Payload: json.RawMessage(`{"n":3}`)})
	partial := `{"op":"done","id":"j-1-aa","result":{"litera` // cut mid-write
	content := string(whole) + "\n" + partial
	if err := os.WriteFile(filepath.Join(dir, "00000000.journal"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	q, rep := openTest(t, dir, Options{})
	if !rep.Truncated {
		t.Fatal("truncated journal not reported")
	}
	if rep.Requeued != 1 || len(rep.Completed) != 0 {
		t.Fatalf("replay = %+v, want the enqueue to survive and the torn done to be dropped", rep)
	}
	if got, _, ok := q.Get("j-1-aa"); !ok || got.State != StateQueued {
		t.Fatalf("job after truncated replay = %+v ok=%v", got, ok)
	}
}

// TestWholeTailWithoutNewline: the record is complete but the newline
// never landed — it must still replay (and report truncation).
func TestWholeTailWithoutNewline(t *testing.T) {
	dir := t.TempDir()
	whole, _ := json.Marshal(record{Op: "enq", ID: "j-1-bb", Priority: PriorityBulk})
	if err := os.WriteFile(filepath.Join(dir, "00000000.journal"), whole, 0o644); err != nil {
		t.Fatal(err)
	}
	q, rep := openTest(t, dir, Options{})
	if !rep.Truncated || rep.Requeued != 1 {
		t.Fatalf("replay = %+v", rep)
	}
	if got, _, ok := q.Get("j-1-bb"); !ok || got.Priority != PriorityBulk {
		t.Fatalf("job = %+v ok=%v", got, ok)
	}
}

func TestCorruptMidJournalRejected(t *testing.T) {
	dir := t.TempDir()
	whole, _ := json.Marshal(record{Op: "enq", ID: "j-1-cc"})
	content := "garbage not json\n" + string(whole) + "\n"
	if err := os.WriteFile(filepath.Join(dir, "00000000.journal"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir, NoSync: true}); err == nil {
		t.Fatal("corrupt mid-journal record accepted")
	}
}

// TestLeaseExpiryRetryAndPark: a worker that never heartbeats loses the
// job; after MaxRetries reclaims the job is parked as failed with the
// lease history in its error.
func TestLeaseExpiryRetryAndPark(t *testing.T) {
	dir := t.TempDir()
	q, _ := openTest(t, dir, Options{LeaseTTL: 10 * time.Millisecond, MaxRetries: 2})
	j, _ := q.Enqueue("", nil)

	var leases []*Lease
	for i := 0; i < 3; i++ { // initial + 2 retries
		l, err := q.Lease(context.Background())
		if err != nil {
			t.Fatalf("lease %d: %v", i, err)
		}
		if l.Job.ID != j.ID || l.Job.Attempts != i {
			t.Fatalf("lease %d = %+v", i, l.Job)
		}
		leases = append(leases, l)
		time.Sleep(25 * time.Millisecond) // let the lease die un-heartbeaten
	}
	// Third expiry exhausts the cap: the next Lease call reclaims and
	// parks; it must then block (ctx deadline) because nothing is left.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := q.Lease(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Lease after park = %v, want deadline", err)
	}
	got, _, _ := q.Get(j.ID)
	if got.State != StateFailed || !strings.Contains(got.Error, "lease expired") {
		t.Fatalf("parked job = %+v", got)
	}
	if st := q.Stats(); st.Retried != 3 || st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// All the stale leases must be inert now.
	for _, l := range leases {
		if l.Heartbeat() || l.Done(nil, nil) || l.Fail("x") || l.Release() {
			t.Fatal("stale lease still live after park")
		}
	}
	// The journal must carry exactly one terminal record.
	assertSingleTerminalRecords(t, dir)
}

// TestLeaseExpiryRacesCompletion pins the exactly-once terminal
// guarantee under the race detector: many workers fight over one job
// with a tiny TTL, some completing, some stalling past expiry; the job
// must end terminal exactly once and every loser must see false.
func TestLeaseExpiryRacesCompletion(t *testing.T) {
	q, _ := openTest(t, t.TempDir(), Options{LeaseTTL: 2 * time.Millisecond, MaxRetries: 64})
	j, _ := q.Enqueue("", nil)

	var wg sync.WaitGroup
	var mu sync.Mutex
	resolved := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
				l, err := q.Lease(ctx)
				cancel()
				if err != nil {
					return // job went terminal (or stalled out): nothing left to lease
				}
				// Half the workers stall past the TTL before resolving, so
				// reclaim races Done on every iteration.
				if w%2 == 0 {
					time.Sleep(5 * time.Millisecond)
				}
				if l.Done(json.RawMessage(fmt.Sprintf(`{"worker":%d}`, w)), nil) {
					mu.Lock()
					resolved++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	got, _, _ := q.Get(j.ID)
	if !got.State.Terminal() {
		t.Fatalf("job never reached a terminal state: %+v", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if got.State == StateDone && resolved != 1 {
		t.Fatalf("Done succeeded %d times, want exactly 1", resolved)
	}
	if got.State == StateFailed && resolved != 0 {
		t.Fatalf("job parked as failed but %d Done calls also succeeded", resolved)
	}
}

func TestReleaseRequeuesWithoutRetry(t *testing.T) {
	q, _ := openTest(t, t.TempDir(), Options{})
	j, _ := q.Enqueue("", nil)
	l, err := q.Lease(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !l.Release() {
		t.Fatal("Release rejected a live lease")
	}
	got, pos, _ := q.Get(j.ID)
	if got.State != StateQueued || got.Attempts != 0 || pos != 1 {
		t.Fatalf("released job = %+v pos=%d", got, pos)
	}
	if l.Done(nil, nil) {
		t.Fatal("stale lease resolved a released job")
	}
	l2, err := q.Lease(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !l2.Done(nil, nil) {
		t.Fatal("re-lease after release could not resolve")
	}
}

func TestKeepDoneTrims(t *testing.T) {
	dir := t.TempDir()
	q, _ := openTest(t, dir, Options{KeepDone: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		j, _ := q.Enqueue("", nil)
		ids = append(ids, j.ID)
		l, err := q.Lease(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		l.Done(nil, nil)
	}
	for _, id := range ids[:2] {
		if _, _, ok := q.Get(id); ok {
			t.Fatalf("trimmed job %s still queryable", id)
		}
	}
	for _, id := range ids[2:] {
		if got, _, ok := q.Get(id); !ok || got.State != StateDone {
			t.Fatalf("retained job %s = %+v ok=%v", id, got, ok)
		}
	}
	// Cumulative counters survive trimming.
	if st := q.Stats(); st.Done != 4 || st.Accepted != 4 {
		t.Fatalf("stats after trim = %+v", st)
	}
}

func TestClosedQueue(t *testing.T) {
	q, _ := openTest(t, t.TempDir(), Options{})
	j, _ := q.Enqueue("", nil)
	l, err := q.Lease(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("", nil); err != ErrClosed {
		t.Fatalf("Enqueue after close = %v", err)
	}
	if _, err := q.Lease(context.Background()); err != ErrClosed {
		t.Fatalf("Lease after close = %v", err)
	}
	if l.Done(nil, nil) {
		t.Fatal("Done accepted after close (journal is gone)")
	}
	if got, _, _ := q.Get(j.ID); got.State != StateRunning {
		t.Fatalf("in-flight job after close = %+v", got)
	}
}

// assertSingleTerminalRecords scans every journal file in dir and
// fails if any job ID carries more than one done/fail record — the
// crash-smoke invariant, checked at the unit level.
func assertSingleTerminalRecords(t *testing.T, dir string) {
	t.Helper()
	recs, _, err := replayJournal(dir)
	if err != nil {
		t.Fatalf("replayJournal: %v", err)
	}
	seen := map[string]int{}
	for _, r := range recs {
		if r.Op == "done" || r.Op == "fail" {
			seen[r.ID]++
		}
	}
	for id, n := range seen {
		if n > 1 {
			t.Fatalf("job %s has %d terminal records in the journal", id, n)
		}
	}
}

func TestOnlineCompaction(t *testing.T) {
	dir := t.TempDir()
	q, _ := openTest(t, dir, Options{KeepDone: 2, CompactEvery: 10, CompactBytes: -1})
	var ids []string
	for i := 0; i < 20; i++ {
		j, err := q.Enqueue("", json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
		l, err := q.Lease(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !l.Done(json.RawMessage(`{"ok":true}`), nil) {
			t.Fatal("Done")
		}
	}
	st := q.Stats()
	if st.Compactions < 1 {
		t.Fatalf("no online compaction after 40 journal records (stats %+v)", st)
	}
	files, err := journalFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("journal files after compaction = %v, want exactly the live one", files)
	}
	if q.log.records >= 40 {
		t.Fatalf("live journal still holds %d records; compaction never shrank it", q.log.records)
	}
	assertSingleTerminalRecords(t, dir)

	// kill -9: the compacted journal must replay the retained window.
	q2, rep, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("reopen after online compaction: %v", err)
	}
	defer q2.Close()
	if rep.Truncated {
		t.Fatal("compacted journal reported truncated")
	}
	for _, id := range ids[len(ids)-2:] {
		if got, _, ok := q2.Get(id); !ok || got.State != StateDone {
			t.Fatalf("retained job %s after replay = %+v ok=%v", id, got, ok)
		}
	}
}

func TestCompactionMidstreamCrashArtifactsIgnored(t *testing.T) {
	// The two crash shapes of an online compaction: an unpromoted .tmp
	// (crash mid-snapshot) and a promoted snapshot whose predecessors
	// were never removed (crash between promote and cleanup). Replay
	// must start at the snapshot and Open must sweep the tmp.
	dir := t.TempDir()
	write := func(name string, lines ...string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("00000000.journal",
		`{"op":"enq","id":"pre-snap","priority":"batch"}`)
	write("00000001.journal",
		`{"op":"snap","id":"snapshot"}`,
		`{"op":"enq","id":"kept","priority":"batch"}`,
		`{"op":"done","id":"kept","result":{"ok":true}}`)
	write("00000002.journal.tmp",
		`{"op":"snap","id":"snapshot"}`,
		`{"op":"enq","id":"half-written`)

	q, rep := openTest(t, dir, Options{})
	if _, _, ok := q.Get("pre-snap"); ok {
		t.Fatal("pre-snapshot job replayed: the snapshot should supersede its file")
	}
	if got, _, ok := q.Get("kept"); !ok || got.State != StateDone {
		t.Fatalf("snapshot job = %+v ok=%v", got, ok)
	}
	if len(rep.Completed) != 1 || rep.Completed[0].ID != "kept" {
		t.Fatalf("replay = %+v", rep)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("unpromoted snapshot %s survived Open", e.Name())
		}
	}
}

func TestResultTTLRetainsTrimmedOutcomes(t *testing.T) {
	now := time.Unix(1000, 0)
	q, _ := openTest(t, t.TempDir(), Options{
		KeepDone:  1,
		ResultTTL: time.Minute,
		Clock:     func() time.Time { return now },
	})
	var ids []string
	for i := 0; i < 3; i++ {
		j, _ := q.Enqueue("", nil)
		ids = append(ids, j.ID)
		l, err := q.Lease(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		l.Done(json.RawMessage(`{"literals":7}`), json.RawMessage(`{"warm":"blob"}`))
	}

	// The poll-after-trim regression: ids[0] and ids[1] are past the
	// KeepDone window but inside the TTL — a poll must still see the
	// terminal result, and a long-poll must return immediately.
	for _, id := range ids[:2] {
		got, pos, ok := q.Get(id)
		if !ok || got.State != StateDone || pos != 0 {
			t.Fatalf("trimmed job %s = %+v pos=%d ok=%v, want retained done", id, got, pos, ok)
		}
		if string(got.Result) != `{"literals":7}` {
			t.Fatalf("retained result = %s", got.Result)
		}
		if got.Payload != nil || got.Warm != nil {
			t.Fatalf("retention kept heavy fields: payload=%v warm=%v", got.Payload, got.Warm)
		}
		ch, ok := q.Watch(id)
		if !ok {
			t.Fatalf("Watch(%s) lost the retained job", id)
		}
		select {
		case <-ch:
		default:
			t.Fatalf("Watch(%s) channel open for a terminal retained job", id)
		}
	}

	now = now.Add(2 * time.Minute)
	if _, _, ok := q.Get(ids[0]); ok {
		t.Fatal("retained result survived past its TTL")
	}
	if got, _, ok := q.Get(ids[2]); !ok || got.State != StateDone {
		t.Fatalf("in-window job %s = %+v ok=%v", ids[2], got, ok)
	}
}
