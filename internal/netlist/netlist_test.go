package netlist

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bfunc"
	"repro/internal/bitvec"
	"repro/internal/core"
)

// --- tiny structural-Verilog expression evaluator (test oracle) ---

type vparser struct {
	s   string
	pos int
}

func (p *vparser) ws() {
	for p.pos < len(p.s) && p.s[p.pos] == ' ' {
		p.pos++
	}
}

func (p *vparser) peek() byte {
	p.ws()
	if p.pos >= len(p.s) {
		return 0
	}
	return p.s[p.pos]
}

// grammar: or := and ('|' and)* ; and := xor ('&' xor)* ;
// xor := unary ('^' unary)* ; unary := '~' unary | '(' or ')' | lit | var
func (p *vparser) or(env func(int) bool) bool {
	v := p.and(env)
	for p.peek() == '|' {
		p.pos++
		v = p.and(env) || v
	}
	return v
}

func (p *vparser) and(env func(int) bool) bool {
	v := p.xor(env)
	for p.peek() == '&' {
		p.pos++
		w := p.xor(env)
		v = v && w
	}
	return v
}

func (p *vparser) xor(env func(int) bool) bool {
	v := p.unary(env)
	for p.peek() == '^' {
		p.pos++
		v = v != p.unary(env)
	}
	return v
}

func (p *vparser) unary(env func(int) bool) bool {
	switch c := p.peek(); {
	case c == '~':
		p.pos++
		return !p.unary(env)
	case c == '(':
		p.pos++
		v := p.or(env)
		if p.peek() != ')' {
			panic("missing )")
		}
		p.pos++
		return v
	case c == '1' || c == '0':
		// 1'b0 / 1'b1
		lit := p.s[p.pos:]
		p.pos += 4
		return strings.HasPrefix(lit, "1'b1")
	case c == 'x':
		p.pos++
		start := p.pos
		for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
			p.pos++
		}
		var idx int
		fmt.Sscanf(p.s[start:p.pos], "%d", &idx)
		return env(idx)
	default:
		panic(fmt.Sprintf("unexpected char %q in %q", c, p.s))
	}
}

func evalVerilogAssign(expr string, n int, point uint64) bool {
	p := &vparser{s: expr}
	return p.or(func(i int) bool { return bitvec.Bit(point, n, i) == 1 })
}

// --- tiny BLIF evaluator (test oracle) ---

type blifGate struct {
	inputs []string
	out    string
	rows   []string // cover rows, output always 1
}

func evalBLIF(t *testing.T, src string, n int, point uint64, output string) bool {
	t.Helper()
	var gates []blifGate
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if !strings.HasPrefix(line, ".names") {
			continue
		}
		fields := strings.Fields(line)
		g := blifGate{out: fields[len(fields)-1], inputs: fields[1 : len(fields)-1]}
		for i+1 < len(lines) && !strings.HasPrefix(strings.TrimSpace(lines[i+1]), ".") {
			row := strings.TrimSpace(lines[i+1])
			i++
			if row == "" {
				continue
			}
			parts := strings.Fields(row)
			if len(parts) == 2 && parts[1] == "1" {
				g.rows = append(g.rows, parts[0])
			} else if len(parts) == 1 && parts[0] == "1" && len(g.inputs) == 0 {
				g.rows = append(g.rows, "")
			}
		}
		gates = append(gates, g)
	}
	values := map[string]bool{}
	for i := 0; i < n; i++ {
		values[fmt.Sprintf("x%d", i)] = bitvec.Bit(point, n, i) == 1
	}
	// Gates are emitted in topological order; evaluate in sequence.
	for _, g := range gates {
		v := false
		if len(g.inputs) == 0 {
			v = len(g.rows) > 0 // constant-1 cover, else constant 0
		}
		for _, row := range g.rows {
			match := true
			for i, c := range row {
				in, ok := values[g.inputs[i]]
				if !ok {
					t.Fatalf("blif gate %s uses undefined net %s", g.out, g.inputs[i])
				}
				switch c {
				case '1':
					match = match && in
				case '0':
					match = match && !in
				}
			}
			if match {
				v = true
				break
			}
		}
		values[g.out] = v
	}
	out, ok := values[output]
	if !ok {
		t.Fatalf("blif output %s undefined", output)
	}
	return out
}

// --- the actual tests ---

func minimizeOutputs(t *testing.T, n int, fns []*bfunc.Func) *Module {
	t.Helper()
	m := &Module{Name: "dut", Inputs: n}
	for i, f := range fns {
		res, err := core.MinimizeExact(f, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m.Outputs = append(m.Outputs, Output{Name: fmt.Sprintf("y%d", i), Form: res.Form})
	}
	return m
}

func randomFns(rng *rand.Rand, n, outs int) []*bfunc.Func {
	fns := make([]*bfunc.Func, outs)
	for o := range fns {
		var on []uint64
		for p := uint64(0); p < 1<<uint(n); p++ {
			if rng.Intn(3) == 0 {
				on = append(on, p)
			}
		}
		fns[o] = bfunc.New(n, on)
	}
	return fns
}

func TestVerilogMatchesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(2)
		fns := randomFns(rng, n, 2)
		m := minimizeOutputs(t, n, fns)
		var buf bytes.Buffer
		if err := WriteVerilog(&buf, m); err != nil {
			t.Fatal(err)
		}
		src := buf.String()
		if !strings.Contains(src, "module dut(") || !strings.Contains(src, "endmodule") {
			t.Fatalf("malformed verilog:\n%s", src)
		}
		for o, f := range fns {
			expr := extractAssign(t, src, fmt.Sprintf("y%d", o))
			for p := uint64(0); p < 1<<uint(n); p++ {
				if evalVerilogAssign(expr, n, p) != f.IsOn(p) {
					t.Fatalf("verilog output y%d wrong at %b\nexpr: %s", o, p, expr)
				}
			}
		}
	}
}

func extractAssign(t *testing.T, src, port string) string {
	t.Helper()
	marker := fmt.Sprintf("assign %s = ", port)
	i := strings.Index(src, marker)
	if i < 0 {
		t.Fatalf("no assign for %s in\n%s", port, src)
	}
	rest := src[i+len(marker):]
	j := strings.Index(rest, ";")
	return rest[:j]
}

func TestBLIFMatchesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(2)
		fns := randomFns(rng, n, 2)
		m := minimizeOutputs(t, n, fns)
		var buf bytes.Buffer
		if err := WriteBLIF(&buf, m); err != nil {
			t.Fatal(err)
		}
		src := buf.String()
		if !strings.Contains(src, ".model dut") || !strings.Contains(src, ".end") {
			t.Fatalf("malformed blif:\n%s", src)
		}
		for o, f := range fns {
			for p := uint64(0); p < 1<<uint(n); p++ {
				if evalBLIF(t, src, n, p, fmt.Sprintf("y%d", o)) != f.IsOn(p) {
					t.Fatalf("blif output y%d wrong at %b\n%s", o, p, src)
				}
			}
		}
	}
}

func TestParityNetlists(t *testing.T) {
	// Parity minimizes to one wide EXOR factor: the exporters must
	// handle multi-literal factors (verilog parens, blif xor chains).
	n := 5
	f := bfunc.FromPredicate(n, func(p uint64) bool {
		return bitvec.OnesCount(p)%2 == 1
	})
	m := minimizeOutputs(t, n, []*bfunc.Func{f})
	var v, b bytes.Buffer
	if err := WriteVerilog(&v, m); err != nil {
		t.Fatal(err)
	}
	if err := WriteBLIF(&b, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v.String(), "^") {
		t.Fatalf("parity verilog has no xor:\n%s", v.String())
	}
	for p := uint64(0); p < 1<<uint(n); p++ {
		expr := extractAssign(t, v.String(), "y0")
		if evalVerilogAssign(expr, n, p) != f.IsOn(p) {
			t.Fatalf("verilog parity wrong at %b", p)
		}
		if evalBLIF(t, b.String(), n, p, "y0") != f.IsOn(p) {
			t.Fatalf("blif parity wrong at %b", p)
		}
	}
}

func TestConstantForms(t *testing.T) {
	n := 3
	zero := &Module{Name: "z", Inputs: n, Outputs: []Output{{Name: "y", Form: core.Form{N: n}}}}
	var v, b bytes.Buffer
	if err := WriteVerilog(&v, zero); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v.String(), "1'b0") {
		t.Fatalf("constant-zero verilog:\n%s", v.String())
	}
	if err := WriteBLIF(&b, zero); err != nil {
		t.Fatal(err)
	}
	one := bfunc.FromPredicate(n, func(uint64) bool { return true })
	m := minimizeOutputs(t, n, []*bfunc.Func{one})
	v.Reset()
	if err := WriteVerilog(&v, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v.String(), "1'b1") {
		t.Fatalf("constant-one verilog:\n%s", v.String())
	}
	b.Reset()
	if err := WriteBLIF(&b, m); err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 8; p++ {
		if !evalBLIF(t, b.String(), n, p, "y0") {
			t.Fatalf("constant-one blif wrong at %b\n%s", p, b.String())
		}
	}
}

func TestIdentifierSanitization(t *testing.T) {
	cases := map[string]string{
		"lin.rom": "lin_rom",
		"9lives":  "_9lives",
		"ok_name": "ok_name",
		"":        "_",
		"a-b c":   "a_b_c",
	}
	for in, want := range cases {
		if got := identifier(in); got != want {
			t.Errorf("identifier(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSingleComplementedLiteralBLIF(t *testing.T) {
	// x̄0 factor: the inverter path of writeExorChain.
	n := 2
	f := bfunc.New(n, []uint64{0, 1}) // x̄0
	m := minimizeOutputs(t, n, []*bfunc.Func{f})
	var b bytes.Buffer
	if err := WriteBLIF(&b, m); err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 4; p++ {
		if evalBLIF(t, b.String(), n, p, "y0") != f.IsOn(p) {
			t.Fatalf("inverter blif wrong at %b\n%s", p, b.String())
		}
	}
}
