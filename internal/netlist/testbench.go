package netlist

import (
	"fmt"
	"io"
	"strings"
)

// WriteTestbench emits a self-checking Verilog testbench for the
// module: it instantiates the DUT, applies the given input vectors and
// compares each output against the expected value computed from the
// module's forms. Vectors use the bitvec packing (x0 most significant).
// A nil vectors slice checks every point of B^n (n ≤ 20 guards against
// runaway files).
func WriteTestbench(w io.Writer, m *Module, vectors []uint64) error {
	if vectors == nil {
		if m.Inputs > 20 {
			return fmt.Errorf("netlist: exhaustive testbench over B^%d is too large; pass explicit vectors", m.Inputs)
		}
		vectors = make([]uint64, 1<<uint(m.Inputs))
		for i := range vectors {
			vectors[i] = uint64(i)
		}
	}
	name := identifier(m.Name)
	fmt.Fprintf(w, "// self-checking testbench for %s (%d vectors)\n", name, len(vectors))
	fmt.Fprintf(w, "module %s_tb;\n", name)
	fmt.Fprintf(w, "  reg [%d:0] in;\n", m.Inputs-1)
	var outWires []string
	for _, o := range m.Outputs {
		outWires = append(outWires, identifier(o.Name))
	}
	fmt.Fprintf(w, "  wire %s;\n", strings.Join(outWires, ", "))
	fmt.Fprintf(w, "  integer errors;\n\n")

	// DUT hookup: input bit x_i is in[m.Inputs-1-i] (x0 most
	// significant, matching the packing).
	conns := make([]string, 0, m.Inputs+len(m.Outputs))
	for i := 0; i < m.Inputs; i++ {
		conns = append(conns, fmt.Sprintf(".x%d(in[%d])", i, m.Inputs-1-i))
	}
	for _, o := range m.Outputs {
		id := identifier(o.Name)
		conns = append(conns, fmt.Sprintf(".%s(%s)", id, id))
	}
	fmt.Fprintf(w, "  %s dut(%s);\n\n", name, strings.Join(conns, ", "))

	fmt.Fprintf(w, "  task check;\n")
	fmt.Fprintf(w, "    input [%d:0] vec;\n", m.Inputs-1)
	fmt.Fprintf(w, "    input [%d:0] want;\n", len(m.Outputs)-1)
	fmt.Fprintf(w, "    begin\n      in = vec; #1;\n")
	for oi, o := range m.Outputs {
		id := identifier(o.Name)
		fmt.Fprintf(w, "      if (%s !== want[%d]) begin\n", id, len(m.Outputs)-1-oi)
		fmt.Fprintf(w, "        $display(\"FAIL %s at %%b: got %%b want %%b\", vec, %s, want[%d]);\n",
			id, id, len(m.Outputs)-1-oi)
		fmt.Fprintf(w, "        errors = errors + 1;\n      end\n")
	}
	fmt.Fprintf(w, "    end\n  endtask\n\n")

	fmt.Fprintf(w, "  initial begin\n    errors = 0;\n")
	for _, v := range vectors {
		fmt.Fprintf(w, "    check(%d'b%0*b, %d'b%0*b);\n",
			m.Inputs, m.Inputs, v, len(m.Outputs), len(m.Outputs), ExpectedVector(m, v))
	}
	fmt.Fprintf(w, "    if (errors == 0) $display(\"PASS: %d vectors\");\n", len(vectors))
	fmt.Fprintf(w, "    else $display(\"FAIL: %%0d errors\", errors);\n")
	fmt.Fprintf(w, "    $finish;\n  end\nendmodule\n")
	return nil
}

// ExpectedVector computes the packed expected-output word for one input
// vector, most significant output first — the value embedded in the
// generated testbench. Exposed for tests and tools.
func ExpectedVector(m *Module, v uint64) uint64 {
	want := uint64(0)
	for _, o := range m.Outputs {
		want <<= 1
		if o.Form.Eval(v) {
			want |= 1
		}
	}
	return want
}
