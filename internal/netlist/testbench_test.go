package netlist

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bfunc"
	"repro/internal/core"
)

func xorModule(t *testing.T) *Module {
	t.Helper()
	f := bfunc.New(3, []uint64{0b100, 0b010, 0b001, 0b111})
	res, err := core.MinimizeExact(f, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &Module{Name: "xor3", Inputs: 3,
		Outputs: []Output{{Name: "y", Form: res.Form}}}
}

func TestWriteTestbenchStructure(t *testing.T) {
	m := xorModule(t)
	var buf bytes.Buffer
	if err := WriteTestbench(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	tb := buf.String()
	for _, want := range []string{
		"module xor3_tb;",
		"xor3 dut(.x0(in[2]), .x1(in[1]), .x2(in[0]), .y(y));",
		"task check;",
		"$finish;",
	} {
		if !strings.Contains(tb, want) {
			t.Fatalf("testbench missing %q:\n%s", want, tb)
		}
	}
	// Exhaustive: 8 check calls with the right expected bits.
	if got := strings.Count(tb, "check(3'b"); got != 8 {
		t.Fatalf("%d check calls, want 8", got)
	}
	for p := uint64(0); p < 8; p++ {
		want := fmt.Sprintf("check(3'b%03b, 1'b%b);", p, ExpectedVector(m, p))
		if !strings.Contains(tb, want) {
			t.Fatalf("missing vector line %q", want)
		}
	}
}

func TestExpectedVectorMatchesForms(t *testing.T) {
	m := xorModule(t)
	f := bfunc.New(3, []uint64{0b100, 0b010, 0b001, 0b111})
	for p := uint64(0); p < 8; p++ {
		want := uint64(0)
		if f.IsOn(p) {
			want = 1
		}
		if ExpectedVector(m, p) != want {
			t.Fatalf("ExpectedVector(%03b) = %d, want %d", p, ExpectedVector(m, p), want)
		}
	}
}

func TestWriteTestbenchExplicitVectors(t *testing.T) {
	m := xorModule(t)
	var buf bytes.Buffer
	if err := WriteTestbench(&buf, m, []uint64{0b101, 0b111}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "check(3'b"); got != 2 {
		t.Fatalf("%d check calls, want 2", got)
	}
}

func TestWriteTestbenchWidthGuard(t *testing.T) {
	m := &Module{Name: "wide", Inputs: 24}
	if err := WriteTestbench(&bytes.Buffer{}, m, nil); err == nil {
		t.Fatal("expected error for exhaustive 24-input testbench")
	}
	if err := WriteTestbench(&bytes.Buffer{}, m, []uint64{0}); err != nil {
		t.Fatalf("explicit vectors must work: %v", err)
	}
}
