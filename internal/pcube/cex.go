package pcube

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/cube"
)

// CEX is the canonical expression of a pseudocube of degree m in B^n
// (paper Definition 1): a product of EXOR factors, one per non-canonical
// variable, sorted by increasing non-canonical variable index. Canon is
// the mask of canonical variables (|Canon| = m); each factor's variables
// are its own non-canonical variable plus a subset of canonical
// variables of smaller index... of canonical variables (pivots precede
// their dependents under the RREF-with-leftmost-pivots convention: every
// canonical variable in a factor has an index smaller than the factor's
// non-canonical variable).
//
// A CEX value is immutable after construction; Factors must not be
// modified by callers.
type CEX struct {
	N       int
	Canon   uint64
	Factors []Factor

	// Cached derived values, computed once by NewCEX (immutability makes
	// this safe to share across goroutines). lits stores Literals()+1 so
	// that 0 means "not sealed": a CEX built as a raw struct literal
	// still works — its accessors recompute on the fly without writing,
	// which keeps concurrent reads race-free.
	lits int
	cvec uint64
	key  string // skey is key[:8*len(Factors)]
	skey string
}

// NewCEX builds a sealed CEX: the literal count, complement vector and
// the Key/StructureKey strings are computed once here, making the
// accessors O(1) on the minimization hot paths. Every constructor in
// this package funnels through it; callers handing in factors transfer
// ownership of the slice.
func NewCEX(n int, canon uint64, factors []Factor) *CEX {
	c := &CEX{N: n, Canon: canon, Factors: factors}
	c.seal()
	return c
}

// seal computes the cached derived values. The full key is the
// structure bytes followed by one complement byte per factor, so the
// structure key is a prefix of it and the two share one allocation.
func (c *CEX) seal() {
	total := 0
	var cv uint64
	for i, f := range c.Factors {
		total += f.Literals()
		cv |= uint64(f.Comp) << uint(i)
	}
	buf := c.structureBytes(make([]byte, 0, 9*len(c.Factors)))
	for _, f := range c.Factors {
		buf = append(buf, f.Comp)
	}
	key := string(buf)
	c.lits = total + 1
	c.cvec = cv
	c.key = key
	c.skey = key[:8*len(c.Factors)]
}

// Degree returns the pseudocube's degree m (it has 2^m points).
func (c *CEX) Degree() int { return bitvec.OnesCount(c.Canon) }

// Literals returns the total number of literals (the paper's cost).
func (c *CEX) Literals() int {
	if c.lits != 0 {
		return c.lits - 1
	}
	total := 0
	for _, f := range c.Factors {
		total += f.Literals()
	}
	return total
}

// CompVector packs the complement bits of the factors into a mask
// (factor i → bit i); together with the structure it identifies the
// pseudocube, so same-structure CEX are equal iff their comp vectors
// are.
func (c *CEX) CompVector() uint64 {
	if c.lits != 0 {
		return c.cvec
	}
	var v uint64
	for i, f := range c.Factors {
		v |= uint64(f.Comp) << uint(i)
	}
	return v
}

// NCVar returns the non-canonical variable index of factor i.
func (c *CEX) NCVar(i int) int {
	return bitvec.LowestVar(c.Factors[i].Vars&^c.Canon, c.N)
}

// Contains reports whether point p belongs to the pseudocube.
func (c *CEX) Contains(p uint64) bool {
	for _, f := range c.Factors {
		if f.Eval(p) == 0 {
			return false
		}
	}
	return true
}

// FromPoint returns the degree-0 CEX of the single point p: one
// single-variable factor per variable.
func FromPoint(n int, p uint64) *CEX {
	fs := make([]Factor, n)
	for i := 0; i < n; i++ {
		fs[i] = Factor{
			Vars: bitvec.VarMask(n, i),
			Comp: uint8(1 ^ bitvec.Bit(p, n, i)),
		}
	}
	return NewCEX(n, 0, fs)
}

// FromCube converts a product of literals to its CEX: free variables are
// canonical, each bound literal is a single-variable factor.
func FromCube(n int, cb cube.Cube) *CEX {
	var fs []Factor
	for i := 0; i < n; i++ {
		m := bitvec.VarMask(n, i)
		if cb.Care&m == 0 {
			continue
		}
		comp := uint8(1)
		if cb.Val&m != 0 {
			comp = 0
		}
		fs = append(fs, Factor{Vars: m, Comp: comp})
	}
	return NewCEX(n, bitvec.SpaceMask(n)&^cb.Care, fs)
}

// FromPoints computes the CEX of the given point set if it is a
// pseudocube (an affine subspace of GF(2)^n), and reports success. The
// input need not be sorted; duplicates are rejected implicitly by the
// cardinality check.
func FromPoints(n int, pts []uint64) (*CEX, bool) {
	m := bitvec.Log2(len(pts))
	if m < 0 || m > n {
		return nil, false
	}
	// Offset: the minimum point (first row of the canonical matrix).
	off := pts[0]
	for _, p := range pts[1:] {
		if p < off {
			off = p
		}
	}
	basis := bitvec.NewBasis(n)
	for _, p := range pts {
		basis.Insert(p ^ off)
	}
	if basis.Dim() != m {
		return nil, false
	}
	// All diffs must be in the span; dim==m and |pts|==2^m with distinct
	// points would suffice, but duplicates could fake it — verify.
	seen := make(map[uint64]bool, len(pts))
	for _, p := range pts {
		if seen[p] {
			return nil, false
		}
		seen[p] = true
		if !basis.Contains(p ^ off) {
			return nil, false
		}
	}
	return fromAffine(n, off, basis), true
}

// fromAffine builds the CEX of the affine subspace off + span(basis).
// The basis must be in RREF (bitvec.Basis guarantees it).
func fromAffine(n int, off uint64, basis *bitvec.Basis) *CEX {
	canon := basis.PivotMask()
	rows := basis.Rows()
	pivs := basis.Pivots()
	nc := bitvec.SpaceMask(n) &^ canon
	fs := make([]Factor, 0, n-basis.Dim())
	for i := 0; i < n; i++ {
		vm := bitvec.VarMask(n, i)
		if nc&vm == 0 {
			continue
		}
		vars := vm
		for j, r := range rows {
			if r&vm != 0 {
				vars |= bitvec.VarMask(n, pivs[j])
			}
		}
		comp := uint8(1 ^ bitvec.Parity(off&vars))
		fs = append(fs, Factor{Vars: vars, Comp: comp})
	}
	return NewCEX(n, canon, fs)
}

// Points enumerates the pseudocube's 2^m points in unspecified order.
// The caller owns the returned slice.
func (c *CEX) Points() []uint64 {
	off, basis := c.Affine()
	pts := basis.Span()
	for i := range pts {
		pts[i] ^= off
	}
	return pts
}

// AppendPoints appends the pseudocube's 2^m points to dst and returns
// the extended slice. Like Points the order is unspecified; unlike
// Points the caller controls the allocation, which matters on paths
// that enumerate the points of many pseudocubes in a loop (the warm
// engine's point-signature pass).
func (c *CEX) AppendPoints(dst []uint64) []uint64 {
	off, basis := c.Affine()
	base := len(dst)
	dst = append(dst, off)
	for _, r := range basis.Rows() {
		for i, n := base, len(dst); i < n; i++ {
			dst = append(dst, dst[i]^r)
		}
	}
	return dst
}

// SortedPoints returns the points sorted ascending: the rows of the
// canonical matrix.
func (c *CEX) SortedPoints() []uint64 {
	pts := c.Points()
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	return pts
}

// Affine returns the offset point and RREF direction basis of the
// pseudocube. The offset is the point with all canonical variables 0.
func (c *CEX) Affine() (uint64, *bitvec.Basis) {
	// Offset: canonical vars 0; each NC var c must make its factor 1:
	// with canonical bits all 0, parity(off & Vars) = bit_c(off), so
	// bit_c(off) = 1 ^ Comp.
	var off uint64
	for _, f := range c.Factors {
		ncMask := f.Vars &^ c.Canon
		if f.Comp == 0 {
			off |= ncMask
		}
	}
	// Basis row for pivot p: unit(p) plus every NC variable whose
	// factor contains p (flipping p must flip those dependents).
	basis := bitvec.NewBasis(c.N)
	for _, p := range bitvec.Vars(c.Canon, c.N) {
		row := bitvec.VarMask(c.N, p)
		for _, f := range c.Factors {
			if f.Vars&bitvec.VarMask(c.N, p) != 0 {
				row |= f.Vars &^ c.Canon
			}
		}
		basis.Insert(row)
	}
	return off, basis
}

// structureBytes encodes the sequence of factor variable masks; two CEX
// have equal structure iff these bytes are equal (the factors are sorted
// by non-canonical variable, which is determined by the masks).
func (c *CEX) structureBytes(buf []byte) []byte {
	for _, f := range c.Factors {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], f.Vars)
		buf = append(buf, w[:]...)
	}
	return buf
}

// StructureKey returns a map key identifying STR(c), the structure of
// the pseudocube (paper Definition 2): the CEX without complementations.
func (c *CEX) StructureKey() string {
	if c.lits != 0 {
		return c.skey
	}
	return string(c.structureBytes(make([]byte, 0, 8*len(c.Factors))))
}

// Key returns a map key identifying the full CEX (structure plus
// complementations): equal keys mean equal pseudocubes.
func (c *CEX) Key() string {
	if c.lits != 0 {
		return c.key
	}
	buf := c.structureBytes(make([]byte, 0, 9*len(c.Factors)))
	for _, f := range c.Factors {
		buf = append(buf, f.Comp)
	}
	return string(buf)
}

// SameStructure reports STR(c) == STR(d) (Theorem 1's precondition).
func (c *CEX) SameStructure(d *CEX) bool {
	if c.N != d.N || len(c.Factors) != len(d.Factors) {
		return false
	}
	for i := range c.Factors {
		if c.Factors[i].Vars != d.Factors[i].Vars {
			return false
		}
	}
	return true
}

// Equal reports full CEX equality (same pseudocube).
func (c *CEX) Equal(d *CEX) bool {
	if !c.SameStructure(d) || c.Canon != d.Canon {
		return false
	}
	for i := range c.Factors {
		if c.Factors[i].Comp != d.Factors[i].Comp {
			return false
		}
	}
	return true
}

// Covers reports whether d's point set is a subset of c's: every factor
// of c must be constant 1 on d's affine subspace.
func (c *CEX) Covers(d *CEX) bool {
	if c.N != d.N {
		return false
	}
	off, basis := d.Affine()
	for _, f := range c.Factors {
		if f.Eval(off) == 0 {
			return false
		}
		for _, r := range basis.Rows() {
			if bitvec.Parity(r&f.Vars) == 1 {
				return false
			}
		}
	}
	return true
}

// Transform returns α(c): the pseudocube with the variables in the mask
// alpha complemented (paper Proposition 1). Complementing variable set
// alpha flips each factor's Comp by the parity of |Vars ∩ alpha|.
func (c *CEX) Transform(alpha uint64) *CEX {
	fs := make([]Factor, len(c.Factors))
	for i, f := range c.Factors {
		fs[i] = Factor{Vars: f.Vars, Comp: f.Comp ^ uint8(bitvec.Parity(f.Vars&alpha))}
	}
	return NewCEX(c.N, c.Canon, fs)
}

// String renders the CEX like the paper, complement on the
// non-canonical variable: e.g. "(x0⊕x̄1)·x4·(x0⊕x2⊕x̄5)".
func (c *CEX) String() string {
	if len(c.Factors) == 0 {
		return "1"
	}
	parts := make([]string, len(c.Factors))
	for i, f := range c.Factors {
		parts[i] = c.formatFactor(f)
	}
	return strings.Join(parts, "·")
}

func (c *CEX) formatFactor(f Factor) string {
	vars := bitvec.Vars(f.Vars, c.N)
	ncVar := bitvec.LowestVar(f.Vars&^c.Canon, c.N)
	var sb strings.Builder
	for i, v := range vars {
		if i > 0 {
			sb.WriteString("⊕")
		}
		if v == ncVar && f.Comp == 1 {
			fmt.Fprintf(&sb, "x̄%d", v)
		} else {
			fmt.Fprintf(&sb, "x%d", v)
		}
	}
	if len(vars) > 1 {
		return "(" + sb.String() + ")"
	}
	return sb.String()
}

// Verify checks the internal invariants of the CEX: factors sorted by
// strictly increasing non-canonical variable, exactly one non-canonical
// variable per factor, one factor per non-canonical variable, and every
// canonical variable in a factor having smaller index than the factor's
// non-canonical variable (the RREF leftmost-pivot property). It returns
// a descriptive error for the first violation.
func (c *CEX) Verify() error {
	if bitvec.OnesCount(c.Canon)+len(c.Factors) != c.N {
		return fmt.Errorf("pcube: %d canonical vars + %d factors != n=%d",
			bitvec.OnesCount(c.Canon), len(c.Factors), c.N)
	}
	prev := -1
	for i, f := range c.Factors {
		ncMask := f.Vars &^ c.Canon
		if bitvec.OnesCount(ncMask) != 1 {
			return fmt.Errorf("pcube: factor %d has %d non-canonical vars", i, bitvec.OnesCount(ncMask))
		}
		nc := bitvec.LowestVar(ncMask, c.N)
		if nc <= prev {
			return fmt.Errorf("pcube: factors not sorted by non-canonical var (%d after %d)", nc, prev)
		}
		prev = nc
		for _, v := range bitvec.Vars(f.Vars&c.Canon, c.N) {
			if v >= nc {
				return fmt.Errorf("pcube: factor %d: canonical var x%d ≥ non-canonical x%d", i, v, nc)
			}
		}
	}
	return nil
}
