// Package pcube implements the pseudocube/pseudoproduct algebra of
// Luccio–Pagli (ref. [5] of the paper) as used by the DAC'01 SPP
// minimization algorithms: canonical expressions (CEX), structures,
// the Algorithm-1 union, Theorem-2 sub-pseudocube enumeration, and
// pseudocube recognition.
//
// The implementation view is linear-algebraic: a pseudocube of degree m
// in B^n is an affine subspace of GF(2)^n of dimension m, and the CEX is
// the reduced-row-echelon solution of its defining affine system with
// leftmost pivots. The paper's combinatorial Definition 1 (canonical
// matrices and normal columns) is implemented separately in matrix.go
// and cross-checked against this view by the tests.
package pcube

import (
	"fmt"
	"strings"

	"repro/internal/bitvec"
)

// Factor is a single EXOR factor: the XOR of the variables in Vars,
// complemented iff Comp is 1. As a Boolean function of a packed point p
// its value is parity(p & Vars) XOR Comp. Complementations inside the
// written expression normalize to the single Comp bit via x̄ ⊕ y =
// (x ⊕ y)'.
type Factor struct {
	Vars uint64
	Comp uint8
}

// Eval returns the factor's value (0 or 1) on point p.
func (f Factor) Eval(p uint64) uint64 {
	return bitvec.Parity(p&f.Vars) ^ uint64(f.Comp)
}

// Literals returns the number of literals in the factor.
func (f Factor) Literals() int { return bitvec.OnesCount(f.Vars) }

// NormExor returns the normalized EXOR of two factors (the paper's
// NORM_EXOR): variables appearing in both cancel, complementations
// accumulate mod 2.
func NormExor(a, b Factor) Factor {
	return Factor{Vars: a.Vars ^ b.Vars, Comp: a.Comp ^ b.Comp}
}

// Format renders the factor over an n-variable space, complementing the
// last variable if Comp is set (any single literal may carry the
// complement; rendering it on the last matches reading order).
func (f Factor) Format(n int) string {
	vars := bitvec.Vars(f.Vars, n)
	if len(vars) == 0 {
		if f.Comp == 1 {
			return "1"
		}
		return "0"
	}
	var sb strings.Builder
	for i, v := range vars {
		if i > 0 {
			sb.WriteString("⊕")
		}
		if i == len(vars)-1 && f.Comp == 1 {
			fmt.Fprintf(&sb, "x̄%d", v)
		} else {
			fmt.Fprintf(&sb, "x%d", v)
		}
	}
	s := sb.String()
	if len(vars) > 1 {
		return "(" + s + ")"
	}
	return s
}
