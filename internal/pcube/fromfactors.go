package pcube

import (
	"math/bits"
	"sort"

	"repro/internal/bitvec"
)

// FromFactors builds the CEX of the pseudocube defined by an arbitrary
// product of EXOR factors — not necessarily canonical, possibly
// redundant. It returns ok=false when the factors are inconsistent (the
// product is the constant 0, hence not a pseudocube).
//
// Each factor is the affine constraint parity(p & Vars) = 1 ⊕ Comp.
// Canonicalization is Gaussian elimination with *rightmost* pivots
// (each reduced equation solves its highest-index variable in terms of
// lower-index ones), which is exactly the CEX convention: a factor's
// non-canonical variable is preceded by its canonical variables. The
// theorem-2 footnote ("expressions A_1…A_q·A_{q+1} … can be easily
// transformed in the equivalent CEX expressions") is this procedure.
func FromFactors(n int, fs []Factor) (*CEX, bool) {
	type row struct {
		vars uint64
		rhs  uint8
	}
	var rows []row
	reduce := func(r row) row {
		for _, e := range rows {
			pivot := e.vars & (^e.vars + 1) // lowest set bit = highest var
			if r.vars&pivot != 0 {
				r.vars ^= e.vars
				r.rhs ^= e.rhs
			}
		}
		return r
	}
	for _, f := range fs {
		if f.Vars&^bitvec.SpaceMask(n) != 0 {
			return nil, false
		}
		r := reduce(row{vars: f.Vars, rhs: 1 ^ f.Comp})
		if r.vars == 0 {
			if r.rhs != 0 {
				return nil, false // 0 = 1: inconsistent product
			}
			continue // redundant factor
		}
		// Back-substitute into existing rows to keep full reduction.
		pivot := r.vars & (^r.vars + 1)
		for i := range rows {
			if rows[i].vars&pivot != 0 {
				rows[i].vars ^= r.vars
				rows[i].rhs ^= r.rhs
			}
		}
		rows = append(rows, r)
	}
	// Pivot variables are non-canonical; order factors by their index.
	sort.Slice(rows, func(i, j int) bool {
		// Higher bit position = lower variable index; pivots are the
		// lowest set bits, so compare them descending by position.
		pi := bits.TrailingZeros64(rows[i].vars)
		pj := bits.TrailingZeros64(rows[j].vars)
		return pi > pj
	})
	canon := bitvec.SpaceMask(n)
	factors := make([]Factor, len(rows))
	for i, r := range rows {
		canon &^= r.vars & (^r.vars + 1)
		factors[i] = Factor{Vars: r.vars, Comp: 1 ^ r.rhs}
	}
	return NewCEX(n, canon, factors), true
}
