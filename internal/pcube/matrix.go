package pcube

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
)

// Matrix is the canonical-matrix view of a point set (paper §2): 2^m
// sorted distinct rows over n columns. It exists to implement the
// paper's combinatorial definitions literally, as a cross-check for the
// linear-algebra implementation in cex.go.
type Matrix struct {
	N    int
	Rows []uint64 // sorted ascending, distinct
}

// NewMatrix sorts and validates the rows.
func NewMatrix(n int, pts []uint64) (*Matrix, error) {
	rows := append([]uint64(nil), pts...)
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	for i := 1; i < len(rows); i++ {
		if rows[i] == rows[i-1] {
			return nil, fmt.Errorf("pcube: duplicate row %x", rows[i])
		}
	}
	if bitvec.Log2(len(rows)) < 0 {
		return nil, fmt.Errorf("pcube: %d rows is not a power of two", len(rows))
	}
	return &Matrix{N: n, Rows: rows}, nil
}

// Column extracts column i as a 0/1 vector.
func (m *Matrix) Column(i int) []uint64 {
	col := make([]uint64, len(m.Rows))
	for r, row := range m.Rows {
		col[r] = bitvec.Bit(row, m.N, i)
	}
	return col
}

// IsCanonical reports whether the matrix is canonical: distinct sorted
// rows (guaranteed by construction) with every column normal. A point
// set is a pseudocube iff its matrix is canonical up to row permutation,
// i.e. iff the sorted matrix is canonical.
func (m *Matrix) IsCanonical() bool {
	for i := 0; i < m.N; i++ {
		if !bitvec.IsNormal(m.Column(i)) {
			return false
		}
	}
	return true
}

// CanonicalColumns returns the indices of the m canonical columns:
// scanning left to right, the j-th canonical column is the first one
// that is (m−j−1)-canonical.
func (m *Matrix) CanonicalColumns() []int {
	deg := bitvec.Log2(len(m.Rows))
	var cols []int
	j := 0
	for i := 0; i < m.N && j < deg; i++ {
		if bitvec.IsKCanonical(m.Column(i), deg-j-1) {
			cols = append(cols, i)
			j++
		}
	}
	return cols
}

// CEXDefinition1 builds the canonical expression following the paper's
// Definition 1 verbatim: for each non-canonical column p_{m+i}, the
// factor contains the canonical variables x_{p_j} with
// M[0][p_{m+i}] ≠ M[2^{m−j−1}][p_{m+i}], plus x_{p_{m+i}} itself,
// complemented iff M[0][p_{m+i}] = 0. It returns an error if the matrix
// is not canonical or the canonical columns cannot be identified.
func (m *Matrix) CEXDefinition1() (*CEX, error) {
	if !m.IsCanonical() {
		return nil, fmt.Errorf("pcube: matrix is not canonical")
	}
	deg := bitvec.Log2(len(m.Rows))
	ccols := m.CanonicalColumns()
	if len(ccols) != deg {
		return nil, fmt.Errorf("pcube: found %d canonical columns, want %d", len(ccols), deg)
	}
	isCanon := make([]bool, m.N)
	var canonMask uint64
	for _, c := range ccols {
		isCanon[c] = true
		canonMask |= bitvec.VarMask(m.N, c)
	}
	var fs []Factor
	for i := 0; i < m.N; i++ {
		if isCanon[i] {
			continue
		}
		vars := bitvec.VarMask(m.N, i)
		first := bitvec.Bit(m.Rows[0], m.N, i)
		for j, c := range ccols {
			probe := m.Rows[1<<uint(deg-j-1)]
			if bitvec.Bit(probe, m.N, i) != first {
				vars |= bitvec.VarMask(m.N, c)
			}
		}
		comp := uint8(0)
		if first == 0 {
			comp = 1
		}
		fs = append(fs, Factor{Vars: vars, Comp: comp})
	}
	return NewCEX(m.N, canonMask, fs), nil
}

// IsPseudocube reports whether the point set is a pseudocube: |pts| is a
// power of two and the sorted matrix is canonical. Equivalent to (and
// tested against) the affine-subspace check in FromPoints.
func IsPseudocube(n int, pts []uint64) bool {
	m, err := NewMatrix(n, pts)
	if err != nil {
		return false
	}
	return m.IsCanonical()
}
