package pcube

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/cube"
)

// figure1Points are the eight points of the paper's Figure 1 pseudocube
// in B^6 (x0 most significant).
var figure1Points = []uint64{
	0b010101, 0b010110, 0b011001, 0b011010,
	0b110000, 0b110011, 0b111100, 0b111111,
}

func mustFromPoints(t *testing.T, n int, pts []uint64) *CEX {
	t.Helper()
	c, ok := FromPoints(n, pts)
	if !ok {
		t.Fatalf("FromPoints failed on %v", pts)
	}
	return c
}

func TestFigure1CEX(t *testing.T) {
	c := mustFromPoints(t, 6, figure1Points)
	// Paper: CEX = x1 · (x0⊕x2⊕x3) · (x0⊕x4⊕x5), canonical x0,x2,x4.
	if c.Canon != bitvec.MaskOf(6, 0, 2, 4) {
		t.Fatalf("canonical vars = %06b, want x0,x2,x4", c.Canon)
	}
	want := []Factor{
		{Vars: bitvec.MaskOf(6, 1), Comp: 0},
		{Vars: bitvec.MaskOf(6, 0, 2, 3), Comp: 0},
		{Vars: bitvec.MaskOf(6, 0, 4, 5), Comp: 0},
	}
	if len(c.Factors) != len(want) {
		t.Fatalf("factors = %v", c.Factors)
	}
	for i := range want {
		if c.Factors[i] != want[i] {
			t.Errorf("factor %d = %+v, want %+v", i, c.Factors[i], want[i])
		}
	}
	if got := c.String(); got != "x1·(x0⊕x2⊕x3)·(x0⊕x4⊕x5)" {
		t.Errorf("String = %q", got)
	}
	if c.Degree() != 3 || c.Literals() != 7 {
		t.Errorf("degree=%d literals=%d", c.Degree(), c.Literals())
	}
	if err := c.Verify(); err != nil {
		t.Error(err)
	}
}

func TestFigure1Definition1Agrees(t *testing.T) {
	m, err := NewMatrix(6, figure1Points)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsCanonical() {
		t.Fatal("figure-1 matrix must be canonical")
	}
	cols := m.CanonicalColumns()
	if len(cols) != 3 || cols[0] != 0 || cols[1] != 2 || cols[2] != 4 {
		t.Fatalf("canonical columns = %v, want [0 2 4]", cols)
	}
	def1, err := m.CEXDefinition1()
	if err != nil {
		t.Fatal(err)
	}
	rref := mustFromPoints(t, 6, figure1Points)
	if !def1.Equal(rref) {
		t.Fatalf("Definition 1 CEX %v != RREF CEX %v", def1, rref)
	}
}

func TestPointsRoundTrip(t *testing.T) {
	c := mustFromPoints(t, 6, figure1Points)
	pts := c.SortedPoints()
	want := append([]uint64(nil), figure1Points...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(pts) != len(want) {
		t.Fatalf("points = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("points[%d] = %06b, want %06b", i, pts[i], want[i])
		}
	}
	for _, p := range pts {
		if !c.Contains(p) {
			t.Errorf("Contains(%06b) = false", p)
		}
	}
	outside := 0
	for p := uint64(0); p < 64; p++ {
		if !c.Contains(p) {
			outside++
		}
	}
	if outside != 64-8 {
		t.Errorf("Contains matched %d points, want 8", 64-outside)
	}
}

// randomCEX builds a random pseudocube of the given degree by unioning
// random single points (rejection-free: start from a random point and
// repeatedly union with a transform by a random subset of non-canonical
// variables, per Proposition 1).
func randomCEX(rng *rand.Rand, n, degree int) *CEX {
	c := FromPoint(n, rng.Uint64()&bitvec.SpaceMask(n))
	for c.Degree() < degree {
		nc := bitvec.SpaceMask(n) &^ c.Canon
		var alpha uint64
		for alpha == 0 {
			alpha = rng.Uint64() & nc
		}
		d := c.Transform(alpha)
		u := Union(c, d)
		if u == nil {
			panic("transform by non-canonical subset must union")
		}
		c = u
	}
	return c
}

func TestRandomCEXInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(8)
		deg := rng.Intn(n + 1)
		c := randomCEX(rng, n, deg)
		if err := c.Verify(); err != nil {
			t.Fatalf("n=%d deg=%d: %v (%v)", n, deg, err, c)
		}
		pts := c.Points()
		if len(pts) != 1<<uint(deg) {
			t.Fatalf("point count %d, want 2^%d", len(pts), deg)
		}
		// Round trip: FromPoints must reproduce the identical CEX
		// (canonical-form fixpoint).
		c2 := mustFromPoints(t, n, pts)
		if !c.Equal(c2) {
			t.Fatalf("canonical fixpoint violated:\n  built %v\n  redid %v", c, c2)
		}
		// Definition-1 oracle must agree.
		m, err := NewMatrix(n, pts)
		if err != nil {
			t.Fatal(err)
		}
		d1, err := m.CEXDefinition1()
		if err != nil {
			t.Fatalf("Definition1 on valid pseudocube: %v", err)
		}
		if !d1.Equal(c) {
			t.Fatalf("Definition 1 disagrees:\n  def1 %v\n  rref %v", d1, c)
		}
	}
}

func TestTheorem1BothDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(6)
		deg := rng.Intn(n)
		a := randomCEX(rng, n, deg)
		b := randomCEX(rng, n, deg)
		if a.Equal(b) {
			continue
		}
		union := append(a.Points(), b.Points()...)
		isPC := IsPseudocube(n, union)
		same := a.SameStructure(b)
		if same != isPC {
			t.Fatalf("theorem 1 violated: sameStructure=%v isPseudocube=%v\n a=%v\n b=%v",
				same, isPC, a, b)
		}
		if same {
			u := Union(a, b)
			if u == nil {
				t.Fatal("Union returned nil for same-structure pair")
			}
			got := u.SortedPoints()
			want := append([]uint64(nil), union...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("union size %d want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("union points differ at %d", i)
				}
			}
			if err := u.Verify(); err != nil {
				t.Fatal(err)
			}
			// Union result must itself be canonical.
			u2 := mustFromPoints(t, n, got)
			if !u.Equal(u2) {
				t.Fatalf("Union not canonical:\n alg1 %v\n rref %v", u, u2)
			}
		}
	}
}

func TestUnionPaperExample(t *testing.T) {
	n := 9
	// Expression (1): (x0⊕x̄1)·x4·(x0⊕x2⊕x̄5)·(x3⊕x6)·(x3⊕x8)
	p1 := &CEX{N: n, Canon: bitvec.MaskOf(n, 0, 2, 3, 7), Factors: []Factor{
		{Vars: bitvec.MaskOf(n, 0, 1), Comp: 1},
		{Vars: bitvec.MaskOf(n, 4), Comp: 0},
		{Vars: bitvec.MaskOf(n, 0, 2, 5), Comp: 1},
		{Vars: bitvec.MaskOf(n, 3, 6), Comp: 0},
		{Vars: bitvec.MaskOf(n, 3, 8), Comp: 0},
	}}
	// Expression (2): (x0⊕x1)·x̄4·(x0⊕x2⊕x5)·(x3⊕x6)·(x3⊕x̄8)
	p2 := &CEX{N: n, Canon: bitvec.MaskOf(n, 0, 2, 3, 7), Factors: []Factor{
		{Vars: bitvec.MaskOf(n, 0, 1), Comp: 0},
		{Vars: bitvec.MaskOf(n, 4), Comp: 1},
		{Vars: bitvec.MaskOf(n, 0, 2, 5), Comp: 0},
		{Vars: bitvec.MaskOf(n, 3, 6), Comp: 0},
		{Vars: bitvec.MaskOf(n, 3, 8), Comp: 1},
	}}
	for _, p := range []*CEX{p1, p2} {
		if err := p.Verify(); err != nil {
			t.Fatal(err)
		}
		if p.Literals() != 10 {
			t.Fatalf("input literals = %d, want 10", p.Literals())
		}
	}
	alpha, ok := Alpha(p1, p2)
	if !ok || alpha != bitvec.MaskOf(n, 1, 4, 5, 8) {
		t.Fatalf("alpha = %09b, want x1,x4,x5,x8", alpha)
	}
	u := Union(p1, p2)
	if u == nil {
		t.Fatal("union failed")
	}
	// Paper: (x0⊕x1⊕x4)·(x1⊕x2⊕x̄5)·(x3⊕x6)·(x0⊕x1⊕x3⊕x8),
	// canonical x0,x1,x2,x3,x7, 12 literals.
	want := &CEX{N: n, Canon: bitvec.MaskOf(n, 0, 1, 2, 3, 7), Factors: []Factor{
		{Vars: bitvec.MaskOf(n, 0, 1, 4), Comp: 0},
		{Vars: bitvec.MaskOf(n, 1, 2, 5), Comp: 1},
		{Vars: bitvec.MaskOf(n, 3, 6), Comp: 0},
		{Vars: bitvec.MaskOf(n, 0, 1, 3, 8), Comp: 0},
	}}
	if !u.Equal(want) {
		t.Fatalf("union = %v\nwant %v", u, want)
	}
	if u.Literals() != 12 {
		t.Fatalf("union literals = %d, want 12 (paper §3.3)", u.Literals())
	}
}

func TestNormExorPaperExample(t *testing.T) {
	// f1 = (x0⊕x2⊕x5), f2 = (x0⊕x̄1) → NORM_EXOR = (x1⊕x2⊕x̄5).
	n := 6
	f1 := Factor{Vars: bitvec.MaskOf(n, 0, 2, 5), Comp: 0}
	f2 := Factor{Vars: bitvec.MaskOf(n, 0, 1), Comp: 1}
	got := NormExor(f1, f2)
	want := Factor{Vars: bitvec.MaskOf(n, 1, 2, 5), Comp: 1}
	if got != want {
		t.Fatalf("NormExor = %+v, want %+v", got, want)
	}
}

func TestUnionRejects(t *testing.T) {
	n := 4
	a := FromPoint(n, 0b0000)
	if Union(a, a) != nil {
		t.Fatal("union of identical pseudocubes must be nil")
	}
	b := FromPoint(n, 0b0001)
	u := Union(a, b)
	if u == nil || u.Degree() != 1 {
		t.Fatal("union of two points must be a degree-1 pseudocube")
	}
	// Different structure: a degree-1 cube vs a degree-1 xor pair.
	c1 := mustFromPoints(t, n, []uint64{0b0000, 0b0001})
	c2 := mustFromPoints(t, n, []uint64{0b0000, 0b0011})
	if c1.SameStructure(c2) {
		t.Fatal("structures should differ")
	}
	if Union(c1, c2) != nil {
		t.Fatal("union across structures must be nil")
	}
}

func TestStructureKeyMatchesSameStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(5)
		deg := rng.Intn(n)
		a := randomCEX(rng, n, deg)
		b := randomCEX(rng, n, deg)
		if (a.StructureKey() == b.StructureKey()) != a.SameStructure(b) {
			t.Fatalf("StructureKey inconsistent with SameStructure")
		}
		if (a.Key() == b.Key()) != a.Equal(b) {
			t.Fatalf("Key inconsistent with Equal")
		}
	}
}

func TestTransformProposition1(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(6)
		deg := rng.Intn(n)
		p := randomCEX(rng, n, deg)
		nc := bitvec.SpaceMask(n) &^ p.Canon
		if nc == 0 {
			continue
		}
		var alpha uint64
		for alpha == 0 {
			alpha = rng.Uint64() & nc
		}
		q := p.Transform(alpha)
		// α(P) point set == {α(s) : s ∈ P}.
		qp := q.SortedPoints()
		want := p.Points()
		for i := range want {
			want[i] ^= alpha
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if qp[i] != want[i] {
				t.Fatalf("transform points wrong")
			}
		}
		// Same structure, disjoint, union is a pseudocube of degree m+1.
		if !p.SameStructure(q) {
			t.Fatal("transform by non-canonical subset must preserve structure")
		}
		u := Union(p, q)
		if u == nil || u.Degree() != deg+1 {
			t.Fatalf("union degree wrong")
		}
	}
}

func TestTransformByCanonicalVarsKeepsPointsetShifted(t *testing.T) {
	// Complementing canonical variables maps the pseudocube to itself
	// shifted within the same structure... in fact complementing a
	// canonical variable alone maps P to itself (the direction space
	// contains a vector flipping it); α ⊆ canonical ⇒ α(P) may equal P.
	c := mustFromPoints(t, 6, figure1Points)
	q := c.Transform(bitvec.MaskOf(6, 0)) // x0 is canonical
	// α(P) for α={x0}: flipping x0 maps the point set to another set of
	// the same structure; verify the point images match.
	want := c.Points()
	for i := range want {
		want[i] ^= bitvec.MaskOf(6, 0)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := q.SortedPoints()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("canonical transform image wrong")
		}
	}
}

func TestTheorem2SubPseudocubes(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(5)
		deg := 1 + rng.Intn(n-1)
		p := randomCEX(rng, n, deg)
		seen := map[string]bool{}
		count := 0
		p.SubPseudocubes(func(s *CEX) bool {
			count++
			if err := s.Verify(); err != nil {
				t.Fatalf("sub CEX invalid: %v (%v)", err, s)
			}
			if s.Degree() != deg-1 {
				t.Fatalf("sub degree %d, want %d", s.Degree(), deg-1)
			}
			if !p.Covers(s) {
				t.Fatalf("sub %v not covered by parent %v", s, p)
			}
			// Canonical form.
			s2 := mustFromPoints(t, n, s.Points())
			if !s.Equal(s2) {
				t.Fatalf("sub not canonical:\n got %v\n want %v", s, s2)
			}
			seen[s.Key()] = true
			return true
		})
		want := 1<<uint(deg+1) - 2
		if count != want || len(seen) != want {
			t.Fatalf("theorem 2: %d subs (%d distinct), want %d", count, len(seen), want)
		}
	}
}

func TestSubPseudocubesEarlyStop(t *testing.T) {
	p := mustFromPoints(t, 6, figure1Points)
	calls := 0
	p.SubPseudocubes(func(*CEX) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("early stop ignored: %d calls", calls)
	}
	// Degree-0 pseudocubes have no subs.
	FromPoint(4, 0).SubPseudocubes(func(*CEX) bool {
		t.Fatal("degree-0 must not enumerate subs")
		return false
	})
}

func TestCoversMatchesPointSets(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(4)
		a := randomCEX(rng, n, rng.Intn(n+1))
		b := randomCEX(rng, n, rng.Intn(n+1))
		subset := true
		for _, p := range b.Points() {
			if !a.Contains(p) {
				subset = false
				break
			}
		}
		if a.Covers(b) != subset {
			t.Fatalf("Covers=%v, point subset=%v\n a=%v\n b=%v", a.Covers(b), subset, a, b)
		}
	}
}

func TestFromCube(t *testing.T) {
	n := 4
	cb := cube.New(bitvec.MaskOf(n, 0, 2), bitvec.MaskOf(n, 0)) // x0·x̄2
	c := FromCube(n, cb)
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if c.Degree() != 2 || c.Literals() != 2 {
		t.Fatalf("degree=%d literals=%d", c.Degree(), c.Literals())
	}
	for p := uint64(0); p < 16; p++ {
		if c.Contains(p) != cb.Contains(p) {
			t.Fatalf("FromCube disagrees at %04b", p)
		}
	}
}

func TestFromPointsRejectsNonPseudocubes(t *testing.T) {
	cases := [][]uint64{
		{0, 1, 2},                // not a power of two
		{0, 1, 2, 4},             // not affine
		{0, 0},                   // duplicates
		{0, 1, 2, 3, 4, 5, 6, 8}, // 8 points, not affine
	}
	for i, pts := range cases {
		if _, ok := FromPoints(4, pts); ok {
			t.Errorf("case %d: FromPoints accepted non-pseudocube %v", i, pts)
		}
		if IsPseudocube(4, pts) {
			t.Errorf("case %d: IsPseudocube accepted %v", i, pts)
		}
	}
	// But a full space is a pseudocube with empty CEX.
	all := make([]uint64, 16)
	for i := range all {
		all[i] = uint64(i)
	}
	c, ok := FromPoints(4, all)
	if !ok || c.Degree() != 4 || len(c.Factors) != 0 || c.Literals() != 0 {
		t.Fatalf("full space: %v ok=%v", c, ok)
	}
	if c.String() != "1" {
		t.Fatalf("full space renders %q", c.String())
	}
}

func TestStructureStringExample(t *testing.T) {
	// Paper §3.1: CEX = (x0⊕x1⊕x̄3)·(x0⊕x4⊕x5)·x̄7 in B^8.
	n := 8
	c := &CEX{N: n, Canon: bitvec.MaskOf(n, 0, 1, 2, 4, 6), Factors: []Factor{
		{Vars: bitvec.MaskOf(n, 0, 1, 3), Comp: 1},
		{Vars: bitvec.MaskOf(n, 0, 4, 5), Comp: 0},
		{Vars: bitvec.MaskOf(n, 7), Comp: 1},
	}}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := c.String(); got != "(x0⊕x1⊕x̄3)·(x0⊕x4⊕x5)·x̄7" {
		t.Fatalf("String = %q", got)
	}
	// Same structure with different complementations.
	d := c.Transform(bitvec.MaskOf(n, 3, 7))
	if !c.SameStructure(d) || c.Equal(d) {
		t.Fatal("transform must change comps only")
	}
}

func TestCubesAreSpecialPseudocubes(t *testing.T) {
	// Every cube's CEX has single-literal factors only; a cube is the
	// special pseudocube with constant non-canonical columns (paper §2).
	rng := rand.New(rand.NewSource(71))
	n := 6
	for trial := 0; trial < 50; trial++ {
		care := rng.Uint64() & bitvec.SpaceMask(n)
		val := rng.Uint64() & care
		cb := cube.New(care, val)
		c := mustFromPoints(t, n, cb.Points(n))
		for _, f := range c.Factors {
			if f.Literals() != 1 {
				t.Fatalf("cube CEX has multi-literal factor %v", c)
			}
		}
		if !c.Equal(FromCube(n, cb)) {
			t.Fatalf("FromCube != FromPoints for %v", cb)
		}
	}
}

func TestTheorem2Completeness(t *testing.T) {
	// SubPseudocubes must enumerate EVERY degree-(m−1) pseudocube
	// inside the parent: cross-check against brute-force enumeration of
	// all half-size point subsets that form affine subspaces.
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(3)
		deg := 2 + rng.Intn(2) // parents of 4 or 8 points
		p := randomCEX(rng, n, deg)
		pts := p.SortedPoints()
		size := len(pts) / 2

		want := map[string]bool{}
		var rec func(start int, chosen []uint64)
		rec = func(start int, chosen []uint64) {
			if len(chosen) == size {
				if c, ok := FromPoints(n, chosen); ok {
					want[c.Key()] = true
				}
				return
			}
			for i := start; i < len(pts); i++ {
				if len(pts)-i < size-len(chosen) {
					break
				}
				rec(i+1, append(chosen, pts[i]))
			}
		}
		rec(0, nil)

		got := map[string]bool{}
		p.SubPseudocubes(func(s *CEX) bool {
			got[s.Key()] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("theorem 2 incomplete: got %d subs, brute force found %d (deg %d)",
				len(got), len(want), deg)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("theorem 2 missed a sub-pseudocube")
			}
		}
	}
}

func TestIntersectionViaFromFactors(t *testing.T) {
	// The intersection of two pseudocubes is the solution set of the
	// combined factor systems: FromFactors of the concatenation.
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(3)
		a := randomCEX(rng, n, 1+rng.Intn(n-1))
		b := randomCEX(rng, n, 1+rng.Intn(n-1))
		both := append(append([]Factor{}, a.Factors...), b.Factors...)
		inter, ok := FromFactors(n, both)
		for p := uint64(0); p < 1<<uint(n); p++ {
			want := a.Contains(p) && b.Contains(p)
			got := ok && inter.Contains(p)
			if got != want {
				t.Fatalf("intersection wrong at %b (ok=%v)", p, ok)
			}
		}
	}
}

// genCEX wraps CEX with a testing/quick Generator so invariants can be
// property-tested idiomatically: a random pseudocube over 3-8 variables
// of random degree.
type genCEX struct{ c *CEX }

func (genCEX) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 3 + r.Intn(6)
	return reflect.ValueOf(genCEX{c: randomCEX(r, n, r.Intn(n+1))})
}

func TestQuickCanonicalFixpoint(t *testing.T) {
	f := func(g genCEX) bool {
		c2, ok := FromPoints(g.c.N, g.c.Points())
		return ok && g.c.Equal(c2) && g.c.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLiteralsMatchRendering(t *testing.T) {
	// Literal count must equal the number of variable occurrences in
	// the rendered expression.
	f := func(g genCEX) bool {
		rendered := g.c.String()
		count := strings.Count(rendered, "x")
		if g.c.Degree() == g.c.N { // constant one renders "1"
			return g.c.Literals() == 0 && rendered == "1"
		}
		return count == g.c.Literals()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionCommutes(t *testing.T) {
	// Union(a, α(a)) must equal Union(α(a), a): the result is the same
	// point set, and CEX canonical forms are unique.
	f := func(g genCEX, alphaSeed uint64) bool {
		nc := bitvec.SpaceMask(g.c.N) &^ g.c.Canon
		if nc == 0 {
			return true
		}
		alpha := alphaSeed & nc
		if alpha == 0 {
			alpha = nc
		}
		d := g.c.Transform(alpha)
		u1 := Union(g.c, d)
		u2 := Union(d, g.c)
		return u1 != nil && u2 != nil && u1.Equal(u2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransformInvolution(t *testing.T) {
	// α(α(P)) = P for any variable subset α.
	f := func(g genCEX, alphaSeed uint64) bool {
		alpha := alphaSeed & bitvec.SpaceMask(g.c.N)
		return g.c.Transform(alpha).Transform(alpha).Equal(g.c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
