package pcube

import (
	"repro/internal/bitvec"
)

// PermuteVars returns the pseudocube over the renamed variables: point
// set {π(p) : p ∈ c}, where π moves variable x_i to x_perm[i]. The
// result is rebuilt through the affine representation — offset and
// basis rows are permuted point-wise and re-reduced to RREF — so it
// satisfies every CEX invariant (Verify) regardless of how the
// permutation scrambles the canonical-variable choice.
//
// This is the bridge of the canonical-function cache: minimization
// results computed in canonical variable order are mapped back to the
// request's order term by term.
func (c *CEX) PermuteVars(perm []int) *CEX {
	off, basis := c.Affine()
	nb := bitvec.NewBasis(c.N)
	for _, r := range basis.Rows() {
		nb.Insert(bitvec.PermutePoint(r, c.N, perm))
	}
	return fromAffine(c.N, bitvec.PermutePoint(off, c.N, perm), nb)
}
