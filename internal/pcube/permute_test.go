package pcube

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bitvec"
)

func TestPermuteVars(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 3 + rng.Intn(8)
		m := rng.Intn(n + 1)
		c := randomCEX(rng, n, m)
		perm := rng.Perm(n)

		p := c.PermuteVars(perm)
		if err := p.Verify(); err != nil {
			t.Fatalf("n=%d m=%d perm=%v: permuted CEX invalid: %v\n  c=%v\n  p=%v", n, m, perm, err, c, p)
		}
		want := c.SortedPoints()
		for i := range want {
			want[i] = bitvec.PermutePoint(want[i], n, perm)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := p.SortedPoints()
		if len(got) != len(want) {
			t.Fatalf("point count changed: %d -> %d", len(want), len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d m=%d perm=%v: point sets differ\n  want %v\n  got  %v", n, m, perm, want, got)
			}
		}
	}
}

func TestPermuteVarsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 100; iter++ {
		n := 3 + rng.Intn(8)
		c := randomCEX(rng, n, rng.Intn(n+1))
		id := make([]int, n)
		for i := range id {
			id[i] = i
		}
		p := c.PermuteVars(id)
		if !c.Equal(p) {
			t.Fatalf("identity permutation changed the CEX:\n  c=%v\n  p=%v", c, p)
		}
	}
}

func TestPermuteVarsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 100; iter++ {
		n := 3 + rng.Intn(8)
		c := randomCEX(rng, n, rng.Intn(n+1))
		perm := rng.Perm(n)
		inv := make([]int, n)
		for i, v := range perm {
			inv[v] = i
		}
		back := c.PermuteVars(perm).PermuteVars(inv)
		if !c.Equal(back) {
			t.Fatalf("perm=%v round trip changed the CEX:\n  c=%v\n  back=%v", perm, c, back)
		}
	}
}
