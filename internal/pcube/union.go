package pcube

import (
	"repro/internal/bitvec"
)

// Union implements the paper's Algorithm 1: given two pseudocubes with
// the same structure (Theorem 1's condition), it builds the CEX of
// their union, a pseudocube of degree m+1, in time linear in the size of
// the inputs. It returns nil if the structures differ or the two CEX are
// identical (a pseudocube is not the union of itself with itself).
//
// Let α be the set of non-canonical variables whose factors differ in
// complementation, and x_k the variable of smallest index in α. Then:
//
//	x_k becomes canonical; its factor disappears;
//	factors of variables in α\{x_k} become NORM_EXOR(f_j, f_k);
//	factors of variables outside α are unchanged.
func Union(a, b *CEX) *CEX {
	if !a.SameStructure(b) {
		return nil
	}
	// Locate the differing factors and the minimum one.
	k := -1
	for i := range a.Factors {
		if a.Factors[i].Comp != b.Factors[i].Comp {
			k = i
			break
		}
	}
	if k == -1 {
		return nil // identical pseudocubes
	}
	fk := a.Factors[k] // f_k of P1 (the paper's f^1_{i_k})
	xk := fk.Vars &^ a.Canon

	fs := make([]Factor, 0, len(a.Factors)-1)
	for i := range a.Factors {
		if i == k {
			continue
		}
		if a.Factors[i].Comp != b.Factors[i].Comp {
			fs = append(fs, NormExor(b.Factors[i], fk))
		} else {
			fs = append(fs, b.Factors[i])
		}
	}
	return NewCEX(a.N, a.Canon|xk, fs)
}

// Alpha returns the mask of non-canonical variables whose factors differ
// in complementation between two same-structure CEX (the paper's α), or
// false if the structures differ.
func Alpha(a, b *CEX) (uint64, bool) {
	if !a.SameStructure(b) {
		return 0, false
	}
	var alpha uint64
	for i := range a.Factors {
		if a.Factors[i].Comp != b.Factors[i].Comp {
			alpha |= a.Factors[i].Vars &^ a.Canon
		}
	}
	return alpha, true
}

// SubPseudocubes enumerates all 2^{m+1}−2 distinct pseudocubes of degree
// m−1 strictly contained in c (paper Theorem 2): one per pair (S, b)
// with S a non-empty subset of the canonical variables and b ∈ {0,1},
// obtained by adjoining the constraint ⊕_{x∈S} x = b. The results are
// in CEX form (the theorem's A_1…A_q·A_{q+1} expressions are
// re-canonicalized as required by the theorem's footnote).
//
// The visit callback receives each sub-pseudocube; enumeration stops if
// it returns false.
func (c *CEX) SubPseudocubes(visit func(*CEX) bool) {
	if c.Degree() == 0 {
		return
	}
	pivots := bitvec.Vars(c.Canon, c.N)
	nsub := (1 << uint(len(pivots))) - 1
	for s := 1; s <= nsub; s++ {
		var sMask uint64
		for bit, p := range pivots {
			if s&(1<<uint(bit)) != 0 {
				sMask |= bitvec.VarMask(c.N, p)
			}
		}
		for b := uint8(0); b <= 1; b++ {
			if !visit(c.constrain(sMask, b)) {
				return
			}
		}
	}
}

// constrain adjoins the affine constraint parity(p & sMask) == b to the
// pseudocube, where sMask is a non-empty subset of canonical variables,
// and returns the CEX of the degree-(m−1) sub-pseudocube.
//
// The leaving pivot ℓ is the highest-index variable of S: under the
// leftmost-pivot RREF convention the new constraint row, fully reduced,
// solves for ℓ in terms of the remaining canonical variables. Every
// factor containing ℓ is rewritten by substitution (XOR with S), and a
// new factor for ℓ is inserted in non-canonical order.
func (c *CEX) constrain(sMask uint64, b uint8) *CEX {
	n := c.N
	// Leaving variable: highest index in S = lowest set bit under the
	// packing (x_0 most significant), i.e. the least significant bit.
	lMask := sMask & (^sMask + 1)
	l := bitvec.LowestVar(lMask, n)

	newFactor := Factor{Vars: sMask, Comp: 1 ^ b}
	fs := make([]Factor, 0, len(c.Factors)+1)
	inserted := false
	for _, f := range c.Factors {
		nc := bitvec.LowestVar(f.Vars&^c.Canon, n)
		if !inserted && nc > l {
			fs = append(fs, newFactor)
			inserted = true
		}
		if f.Vars&lMask != 0 {
			// Substitute x_ℓ = parity(S\{ℓ}) ⊕ b.
			fs = append(fs, Factor{Vars: f.Vars ^ sMask, Comp: f.Comp ^ b})
		} else {
			fs = append(fs, f)
		}
	}
	if !inserted {
		fs = append(fs, newFactor)
	}
	return NewCEX(n, c.Canon&^lMask, fs)
}
