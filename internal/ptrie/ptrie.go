// Package ptrie implements the partition trie of the DAC'01 paper
// (§3.2): a labeled rooted tree storing the CEX expressions of a set of
// pseudoproducts so that expressions with the same structure share a
// path. Internal nodes are C-nodes (canonical variable) or NC-nodes
// (non-canonical variable); every root-to-group path spells a structure,
// with each EXOR factor contributed as its NC-node followed by its
// C-nodes in increasing order, factors ordered by non-canonical
// variable. The leaves under a group node are the complement vectors of
// the member pseudoproducts (paper Property 1: leaves with the same
// parent have the same structure).
package ptrie

import (
	"sort"

	"repro/internal/bitvec"
	"repro/internal/pcube"
)

// kind distinguishes the two internal node types.
type kind uint8

const (
	ncNode kind = iota // non-canonical variable (double-circled in fig. 2)
	cNode              // canonical variable
)

// node is an internal trie node. Children are kept sorted: NC-nodes
// first by label, then C-nodes by label (the paper's child ordering;
// leaves are stored separately in the entries map of the group node).
type node struct {
	kind     kind
	label    int
	children []*node
	entries  []*Entry // leaves: one per complement vector
}

// Entry is a stored pseudoproduct: a leaf of the partition trie.
type Entry struct {
	CEX *pcube.CEX
	// Mark is caller-owned scratch state; the minimization algorithms
	// use it for the "discarded by a cheaper union" flag of Algorithm 2
	// step 2.
	Mark bool
	// MarkCnt is caller-owned scratch like Mark, but counting: the warm
	// engine stores how many same-group partners discard this entry
	// (Mark ⇔ MarkCnt > 0), so a later delta can retract exactly the
	// contributions of partners that died with removed care points.
	MarkCnt int32
}

// Trie is a partition trie over B^n.
type Trie struct {
	n       int
	root    node
	size    int // number of stored entries (leaves)
	groups  int // number of non-empty group nodes
	inodes  int // number of internal nodes created (C + NC)
	ncCount int
}

// New returns an empty partition trie for n-variable CEX expressions.
func New(n int) *Trie { return &Trie{n: n} }

// Len returns the number of stored pseudoproducts.
func (t *Trie) Len() int { return t.size }

// NumGroups returns the number of distinct structures stored.
func (t *Trie) NumGroups() int { return t.groups }

// NumInternalNodes returns the number of C- and NC-nodes allocated.
func (t *Trie) NumInternalNodes() int { return t.inodes }

// NumNCNodes returns the number of NC-nodes allocated.
func (t *Trie) NumNCNodes() int { return t.ncCount }

// child finds or creates the child of nd with the given kind and label,
// maintaining the sorted order (NC-nodes before C-nodes, then by label).
func (t *Trie) child(nd *node, k kind, label int) *node {
	i := sort.Search(len(nd.children), func(i int) bool {
		c := nd.children[i]
		if c.kind != k {
			return c.kind > k
		}
		return c.label >= label
	})
	if i < len(nd.children) && nd.children[i].kind == k && nd.children[i].label == label {
		return nd.children[i]
	}
	nc := &node{kind: k, label: label}
	nd.children = append(nd.children, nil)
	copy(nd.children[i+1:], nd.children[i:])
	nd.children[i] = nc
	t.inodes++
	if k == ncNode {
		t.ncCount++
	}
	return nc
}

// findChild returns the child or nil without creating it.
func (nd *node) findChild(k kind, label int) *node {
	i := sort.Search(len(nd.children), func(i int) bool {
		c := nd.children[i]
		if c.kind != k {
			return c.kind > k
		}
		return c.label >= label
	})
	if i < len(nd.children) && nd.children[i].kind == k && nd.children[i].label == label {
		return nd.children[i]
	}
	return nil
}

// compVector packs the complement bits of the CEX factors into a mask
// (factor i → bit i): the leaf vector L of the paper, with L[i]=1
// meaning "not complemented"... the paper stores L[i]=0 for
// complemented; we store Comp directly (bit set = complemented), which
// is the same information. Sealed CEX carry it precomputed.
func compVector(c *pcube.CEX) uint64 {
	return c.CompVector()
}

// walk descends the structure path of c, creating nodes if create is
// set; it returns the group node, or nil when absent and !create.
func (t *Trie) walk(c *pcube.CEX, create bool) *node {
	nd := &t.root
	for _, f := range c.Factors {
		ncVar := bitvec.LowestVar(f.Vars&^c.Canon, t.n)
		if create {
			nd = t.child(nd, ncNode, ncVar)
		} else if nd = nd.findChild(ncNode, ncVar); nd == nil {
			return nil
		}
		for _, v := range bitvec.Vars(f.Vars&c.Canon, t.n) {
			if create {
				nd = t.child(nd, cNode, v)
			} else if nd = nd.findChild(cNode, v); nd == nil {
				return nil
			}
		}
	}
	return nd
}

// Insert adds the pseudoproduct to the trie. If an identical CEX is
// already present it returns the existing entry and false; otherwise it
// returns the new entry and true.
func (t *Trie) Insert(c *pcube.CEX) (*Entry, bool) {
	if c.N != t.n {
		panic("ptrie: CEX dimension mismatch")
	}
	grp := t.walk(c, true)
	cv := compVector(c)
	for _, e := range grp.entries {
		if compVector(e.CEX) == cv {
			return e, false
		}
	}
	e := &Entry{CEX: c}
	if len(grp.entries) == 0 {
		t.groups++
	}
	grp.entries = append(grp.entries, e)
	t.size++
	return e, true
}

// Search returns the entry with CEX equal to c, or nil.
func (t *Trie) Search(c *pcube.CEX) *Entry {
	grp := t.walk(c, false)
	if grp == nil {
		return nil
	}
	cv := compVector(c)
	for _, e := range grp.entries {
		if compVector(e.CEX) == cv {
			return e
		}
	}
	return nil
}

// Groups visits every structure group (the entries sharing a parent),
// in depth-first child order. Iteration stops if visit returns false.
// The entries slice is shared; callers may flip Mark but must not
// append or reorder.
func (t *Trie) Groups(visit func(entries []*Entry) bool) {
	t.visitGroups(&t.root, visit)
}

func (t *Trie) visitGroups(nd *node, visit func([]*Entry) bool) bool {
	if len(nd.entries) > 0 {
		if !visit(nd.entries) {
			return false
		}
	}
	for _, c := range nd.children {
		if !t.visitGroups(c, visit) {
			return false
		}
	}
	return true
}

// PathGroups visits every structure group in DFS order together with
// the group node's path key: the (kind, label) byte sequence from the
// root. Children are sorted NC-before-C then by label and a parent's
// key is a proper prefix of its descendants', so lexicographic byte
// order of path keys equals DFS order; equal structures stored in
// different tries get equal path keys. This is what lets worker-local
// tries built in parallel be k-way merged back into the DFS order a
// single trie would have produced. The path slice is reused between
// visits — callers that retain it must copy.
func (t *Trie) PathGroups(visit func(path []byte, entries []*Entry) bool) {
	t.visitPathGroups(&t.root, make([]byte, 0, 2*t.n), visit)
}

func (t *Trie) visitPathGroups(nd *node, path []byte, visit func([]byte, []*Entry) bool) bool {
	if len(nd.entries) > 0 {
		if !visit(path, nd.entries) {
			return false
		}
	}
	for _, c := range nd.children {
		if !t.visitPathGroups(c, append(path, byte(c.kind), byte(c.label)), visit) {
			return false
		}
	}
	return true
}

// PathKey computes, without a trie, the path key a trie would file c
// under: the (kind, label) byte sequence PathGroups reports for c's
// structure group. Two CEX have equal path keys iff they have equal
// structure, and string comparison of path keys orders structures the
// way PathGroups visits them — which is what lets the warm delta
// engine splice groups that appear only after an edit into the DFS
// position a cold build would have given them.
func PathKey(c *pcube.CEX, dst []byte) []byte {
	n := c.N
	for _, f := range c.Factors {
		dst = append(dst, byte(ncNode), byte(bitvec.LowestVar(f.Vars&^c.Canon, n)))
		for _, v := range bitvec.Vars(f.Vars&c.Canon, n) {
			dst = append(dst, byte(cNode), byte(v))
		}
	}
	return dst
}

// Entries visits every stored entry.
func (t *Trie) Entries(visit func(*Entry) bool) {
	t.Groups(func(es []*Entry) bool {
		for _, e := range es {
			if !visit(e) {
				return false
			}
		}
		return true
	})
}
