package ptrie

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/pcube"
)

func randomCEX(rng *rand.Rand, n, degree int) *pcube.CEX {
	c := pcube.FromPoint(n, rng.Uint64()&bitvec.SpaceMask(n))
	for c.Degree() < degree {
		nc := bitvec.SpaceMask(n) &^ c.Canon
		var alpha uint64
		for alpha == 0 {
			alpha = rng.Uint64() & nc
		}
		c = pcube.Union(c, c.Transform(alpha))
	}
	return c
}

func TestInsertDedup(t *testing.T) {
	tr := New(6)
	c := pcube.FromPoint(6, 0b010101)
	e1, fresh1 := tr.Insert(c)
	if !fresh1 || tr.Len() != 1 {
		t.Fatalf("first insert: fresh=%v len=%d", fresh1, tr.Len())
	}
	e2, fresh2 := tr.Insert(pcube.FromPoint(6, 0b010101))
	if fresh2 || e1 != e2 || tr.Len() != 1 {
		t.Fatalf("duplicate insert must dedup")
	}
	// Same structure, different complement vector: same group.
	e3, fresh3 := tr.Insert(pcube.FromPoint(6, 0b111111))
	if !fresh3 || e3 == e1 {
		t.Fatal("distinct comp vector must create a new leaf")
	}
	if tr.NumGroups() != 1 {
		t.Fatalf("groups = %d, want 1 (all points share the structure x0·…·x5)", tr.NumGroups())
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestProperty1GroupsEqualStructures(t *testing.T) {
	// Paper Property 1: two leaves share a parent iff same structure.
	rng := rand.New(rand.NewSource(3))
	n := 7
	tr := New(n)
	var all []*pcube.CEX
	for i := 0; i < 400; i++ {
		c := randomCEX(rng, n, rng.Intn(n))
		if _, fresh := tr.Insert(c); fresh {
			all = append(all, c)
		}
	}
	if tr.Len() != len(all) {
		t.Fatalf("len=%d inserted=%d", tr.Len(), len(all))
	}
	// Count structures independently.
	structs := map[string]int{}
	for _, c := range all {
		structs[c.StructureKey()]++
	}
	if tr.NumGroups() != len(structs) {
		t.Fatalf("groups=%d, distinct structures=%d", tr.NumGroups(), len(structs))
	}
	seen := 0
	tr.Groups(func(es []*Entry) bool {
		seen++
		key := es[0].CEX.StructureKey()
		if len(es) != structs[key] {
			t.Fatalf("group size %d, want %d", len(es), structs[key])
		}
		for _, e := range es {
			if e.CEX.StructureKey() != key {
				t.Fatal("mixed structures in one group")
			}
		}
		return true
	})
	if seen != tr.NumGroups() {
		t.Fatalf("visited %d groups, NumGroups=%d", seen, tr.NumGroups())
	}
}

func TestSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 6
	tr := New(n)
	var members []*pcube.CEX
	for i := 0; i < 100; i++ {
		c := randomCEX(rng, n, rng.Intn(n))
		tr.Insert(c)
		members = append(members, c)
	}
	for _, c := range members {
		if tr.Search(c) == nil {
			t.Fatalf("Search missed inserted CEX %v", c)
		}
	}
	// A CEX not inserted (fresh structure) must not be found.
	missing := pcube.FromPoint(n, 0)
	missing = pcube.Union(missing, missing.Transform(bitvec.MaskOf(n, 0, 5)))
	if tr.Search(missing) != nil {
		// It might coincidentally be there; verify by checking equality.
		found := false
		for _, c := range members {
			if c.Equal(missing) {
				found = true
			}
		}
		if !found {
			t.Fatal("Search found a CEX that was never inserted")
		}
	}
}

func TestEntriesVisitAndEarlyStop(t *testing.T) {
	tr := New(4)
	for p := uint64(0); p < 8; p++ {
		tr.Insert(pcube.FromPoint(4, p))
	}
	count := 0
	tr.Entries(func(*Entry) bool {
		count++
		return true
	})
	if count != 8 {
		t.Fatalf("visited %d entries", count)
	}
	count = 0
	tr.Entries(func(*Entry) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop ignored: %d", count)
	}
}

func TestChildOrderingNCBeforeC(t *testing.T) {
	// The paper's figure-2 path: CEX (x0⊕x̄1)·x4·(x0⊕x2⊕x̄5)·(x3⊕x6)·
	// (x2⊕x3⊕x8) in B^9 — insert it and a few same-structure variants
	// and check trie accounting.
	n := 9
	c := &pcube.CEX{N: n, Canon: bitvec.MaskOf(n, 0, 2, 3, 7), Factors: []pcube.Factor{
		{Vars: bitvec.MaskOf(n, 0, 1), Comp: 1},
		{Vars: bitvec.MaskOf(n, 4), Comp: 0},
		{Vars: bitvec.MaskOf(n, 0, 2, 5), Comp: 1},
		{Vars: bitvec.MaskOf(n, 3, 6), Comp: 0},
		{Vars: bitvec.MaskOf(n, 2, 3, 8), Comp: 0},
	}}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	tr := New(n)
	tr.Insert(c)
	// Path nodes: NC1,C0 | NC4 | NC5,C0,C2 | NC6,C3 | NC8,C2,C3 = 11.
	if tr.NumInternalNodes() != 11 {
		t.Fatalf("internal nodes = %d, want 11", tr.NumInternalNodes())
	}
	if tr.NumNCNodes() != 5 {
		t.Fatalf("NC nodes = %d, want 5", tr.NumNCNodes())
	}
	// A same-structure variant shares the whole path.
	tr.Insert(c.Transform(bitvec.MaskOf(n, 1, 4)))
	if tr.NumInternalNodes() != 11 || tr.NumGroups() != 1 || tr.Len() != 2 {
		t.Fatalf("same-structure insert must reuse path: nodes=%d groups=%d len=%d",
			tr.NumInternalNodes(), tr.NumGroups(), tr.Len())
	}
	// A different structure sharing the first factor shares its prefix.
	d := &pcube.CEX{N: n, Canon: bitvec.MaskOf(n, 0, 2, 3, 4, 5, 6, 7), Factors: []pcube.Factor{
		{Vars: bitvec.MaskOf(n, 0, 1), Comp: 0},
		{Vars: bitvec.MaskOf(n, 2, 8), Comp: 1},
	}}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	tr.Insert(d)
	// New nodes: NC8,C2 under the existing NC1→C0 prefix = +2.
	if tr.NumInternalNodes() != 13 {
		t.Fatalf("prefix sharing failed: nodes=%d, want 13", tr.NumInternalNodes())
	}
	if tr.NumGroups() != 2 {
		t.Fatalf("groups = %d", tr.NumGroups())
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(4).Insert(pcube.FromPoint(5, 0))
}
