// Package qm implements Quine–McCluskey prime implicant generation for
// incompletely specified single-output Boolean functions. It provides
// the SP side of the paper's Table 1 comparison and the starting cover
// for the SPP heuristic (Algorithm 3 step 1).
//
// Source algorithm: the classical tabulation method (Quine 1952,
// McCluskey 1956) — group cubes by the popcount of their value bits
// and merge distance-1 pairs level by level until no merge applies;
// the unmerged survivors are exactly the prime implicants (maximal
// cubes inside ON ∪ DC). Primes are cost-neutral by themselves; the
// covering step that selects among them (internal/cover, driven by
// internal/sp) minimizes the literal count #L, the shared cost model
// of the portfolio engine (docs/forms.md).
package qm

import (
	"sort"

	"repro/internal/bfunc"
	"repro/internal/bitvec"
	"repro/internal/cube"
)

// Primes computes all prime implicants of f: maximal cubes contained in
// ON ∪ DC. The classic tabulation method groups cubes by popcount of the
// value bits and merges distance-1 pairs level by level.
func Primes(f *bfunc.Func) []cube.Cube {
	n := f.N()
	care := f.Care()
	if len(care) == 0 {
		return nil
	}
	if len(care) == 1<<uint(n) {
		// Constant one: the single empty cube is the only prime.
		return []cube.Cube{{}}
	}

	type level struct {
		cubes map[cube.Cube]bool // cube -> merged into next level?
	}
	cur := level{cubes: make(map[cube.Cube]bool, len(care))}
	for _, p := range care {
		cur.cubes[cube.FromPoint(n, p)] = false
	}

	var primes []cube.Cube
	for len(cur.cubes) > 0 {
		next := level{cubes: map[cube.Cube]bool{}}
		// Group by (Care mask, popcount(Val)) so only candidate pairs
		// are compared; distance-1 merges need equal Care and value
		// popcounts differing by one.
		groups := map[uint64]map[int][]cube.Cube{}
		for c := range cur.cubes {
			g, ok := groups[c.Care]
			if !ok {
				g = map[int][]cube.Cube{}
				groups[c.Care] = g
			}
			pc := bitvec.OnesCount(c.Val)
			g[pc] = append(g[pc], c)
		}
		for _, g := range groups {
			for pc, lo := range g {
				hi := g[pc+1]
				for _, a := range lo {
					for _, b := range hi {
						if m, ok := cube.MergeDistance1(a, b); ok {
							cur.cubes[a] = true
							cur.cubes[b] = true
							next.cubes[m] = false
						}
					}
				}
			}
		}
		for c, merged := range cur.cubes {
			if !merged {
				primes = append(primes, c)
			}
		}
		cur = next
	}
	sortCubes(primes)
	return primes
}

func sortCubes(cs []cube.Cube) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Care != cs[j].Care {
			return cs[i].Care < cs[j].Care
		}
		return cs[i].Val < cs[j].Val
	})
}
