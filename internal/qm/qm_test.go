package qm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfunc"
	"repro/internal/cube"
)

// bruteForcePrimes enumerates every cube over B^n and keeps the maximal
// implicants. Exponential; used as the oracle on tiny n.
func bruteForcePrimes(f *bfunc.Func) []cube.Cube {
	n := f.N()
	var implicants []cube.Cube
	var caremask uint64 = (1 << uint(n)) - 1
	for care := uint64(0); care <= caremask; care++ {
		sub := care
		for {
			c := cube.New(care, sub)
			ok := true
			for _, p := range c.Points(n) {
				if !f.IsCare(p) {
					ok = false
					break
				}
			}
			if ok {
				implicants = append(implicants, c)
			}
			if sub == 0 {
				break
			}
			sub = (sub - 1) & care
		}
	}
	var primes []cube.Cube
	for i, c := range implicants {
		maximal := true
		for j, d := range implicants {
			if i != j && d.Covers(c) {
				maximal = false
				break
			}
		}
		if maximal {
			primes = append(primes, c)
		}
	}
	return primes
}

func cubeSet(cs []cube.Cube) map[cube.Cube]bool {
	m := make(map[cube.Cube]bool, len(cs))
	for _, c := range cs {
		m[c] = true
	}
	return m
}

func TestPrimesAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		var on, dc []uint64
		for p := uint64(0); p < 16; p++ {
			switch rng.Intn(3) {
			case 0:
				on = append(on, p)
			case 1:
				dc = append(dc, p)
			}
		}
		fn := bfunc.NewDC(n, on, dc)
		got := cubeSet(Primes(fn))
		want := cubeSet(bruteForcePrimes(fn))
		if len(got) != len(want) {
			return false
		}
		for c := range want {
			if !got[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPrimesKnownFunctions(t *testing.T) {
	// XOR of 2 variables: primes are the two minterm products.
	xor2 := bfunc.New(2, []uint64{0b01, 0b10})
	ps := Primes(xor2)
	if len(ps) != 2 {
		t.Fatalf("xor2 primes = %d, want 2", len(ps))
	}
	for _, p := range ps {
		if p.Literals() != 2 {
			t.Fatalf("xor2 prime with %d literals", p.Literals())
		}
	}

	// Constant one.
	one := bfunc.New(3, []uint64{0, 1, 2, 3, 4, 5, 6, 7})
	ps = Primes(one)
	if len(ps) != 1 || ps[0].Literals() != 0 {
		t.Fatalf("constant-one primes wrong: %v", ps)
	}

	// Empty function.
	if got := Primes(bfunc.New(3, nil)); got != nil {
		t.Fatalf("empty function primes = %v", got)
	}

	// Classic example: f = x̄0x̄1 + x0x1 + DC(x̄0x1) over B^2
	// ON = {00, 11}, DC = {01}: primes are x̄0 (00,01), x1 (01,11).
	fn := bfunc.NewDC(2, []uint64{0b00, 0b11}, []uint64{0b01})
	ps = Primes(fn)
	if len(ps) != 2 {
		t.Fatalf("primes = %v", ps)
	}
}

func TestPrimesDontCareOnlyNotCovered(t *testing.T) {
	// Primes lie in ON ∪ DC; a function whose care set is a full cube
	// minus a point must produce primes of the right total.
	fn := bfunc.NewDC(3, []uint64{0, 1, 2, 3}, []uint64{4, 5, 6})
	for _, p := range Primes(fn) {
		for _, pt := range p.Points(3) {
			if !fn.IsCare(pt) {
				t.Fatalf("prime %v leaves care set", p)
			}
		}
	}
}

func BenchmarkPrimes8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var on []uint64
	for p := uint64(0); p < 256; p++ {
		if rng.Intn(2) == 0 {
			on = append(on, p)
		}
	}
	fn := bfunc.New(8, on)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Primes(fn)
	}
}
