package service

// Adaptive admission: the reaction layer between the telemetry ring and
// the admission gate. Three mechanisms, all ahead of the queue:
//
//   - deadline-aware load shedding — when the gate is full, the queue
//     wait a new compute would see is predicted from the recent p99 of
//     observed waits (the same signal the ftdc capture records); a
//     request whose remaining deadline budget cannot survive that wait
//     is rejected immediately with 429 + Retry-After instead of
//     queueing until it 504s, so doomed work never occupies the queue
//     or — worse — a slot it can only waste;
//   - priority classes — the sync path reads X-Priority (the job
//     tier's classes: interactive > batch > bulk, default interactive)
//     and sheds lower classes at a fraction of their budget, keeping
//     headroom for interactive traffic under pressure;
//   - per-tenant token-bucket quotas — X-Tenant identifies the tenant
//     (default "default"); with -quota-rps set, each tenant draws from
//     its own bucket (batch items and job submissions charge one token
//     each) and exhaustion is a fast 429 + Retry-After before any
//     decode-heavy work.
//
// Shedding only ever engages with live evidence of queueing: an empty
// observation window predicts zero wait, so an idle or freshly started
// server admits everything.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/jobs"
)

// shedError is a request rejected by the admission layer before it
// queued: deadline-doomed under the predicted wait, or out of tenant
// quota. statusFor maps it to 429; retryAfter feeds the Retry-After
// header and the response's retry_after_ms.
type shedError struct {
	retryAfter time.Duration
	reason     string
}

func (e *shedError) Error() string { return e.reason }

// applyShed copies a shed error's retry hint onto a failure response,
// so both single and batch-item 429s tell the client when to return.
func applyShed(resp Response, err error) Response {
	var se *shedError
	if errors.As(err, &se) {
		resp.Code = "shed"
		resp.RetryAfterMS = max(se.retryAfter.Milliseconds(), 1)
	}
	return resp
}

// retryAfterSeconds renders a millisecond hint as the Retry-After
// header value: whole seconds, rounded up, at least 1 — a 1500 ms hint
// must say 2, not 1, or clients poll early.
func retryAfterSeconds(ms int64) string {
	if ms < 1 {
		ms = 1
	}
	return fmt.Sprint((ms + 999) / 1000)
}

// prioKey carries the request's priority class to acquireSlot.
type prioKey struct{}

func withPriority(ctx context.Context, p string) context.Context {
	return context.WithValue(ctx, prioKey{}, p)
}

// priorityFrom defaults to interactive: the sync path is interactive
// traffic unless the client says otherwise.
func priorityFrom(ctx context.Context) string {
	if p, ok := ctx.Value(prioKey{}).(string); ok {
		return p
	}
	return jobs.PriorityInteractive
}

// budgetFactor is the fraction of its deadline budget a class may
// expect to spend queueing before it is shed. Interactive requests are
// shed only when genuinely doomed; batch and bulk yield earlier, which
// is what keeps the gate's headroom for the interactive class under
// overload.
func budgetFactor(priority string) float64 {
	switch priority {
	case jobs.PriorityBatch:
		return 0.5
	case jobs.PriorityBulk:
		return 0.25
	default:
		return 1.0
	}
}

// waitRing is a fixed ring of recent queue-wait observations — the
// live half of the telemetry loop. acquireSlot records every queued
// acquire (timeouts included, as a floor on the wait they were still
// suffering); p99 reads the observations inside the window. Fast-path
// acquires (free slot) are deliberately not recorded: when queueing
// stops, the window drains and the predictor decays to zero on its
// own.
type waitRing struct {
	mu     sync.Mutex
	at     []time.Time
	wait   []time.Duration
	pos    int
	n      int
	window time.Duration
}

func newWaitRing(size int, window time.Duration) *waitRing {
	return &waitRing{
		at:     make([]time.Time, size),
		wait:   make([]time.Duration, size),
		window: window,
	}
}

func (r *waitRing) observe(at time.Time, wait time.Duration) {
	r.mu.Lock()
	r.at[r.pos] = at
	r.wait[r.pos] = wait
	r.pos = (r.pos + 1) % len(r.at)
	if r.n < len(r.at) {
		r.n++
	}
	r.mu.Unlock()
}

// p99 returns the 99th-percentile wait among observations newer than
// the window, or 0 when there are none.
func (r *waitRing) p99(now time.Time) time.Duration {
	cutoff := now.Add(-r.window)
	r.mu.Lock()
	live := make([]time.Duration, 0, r.n)
	for i := 0; i < r.n; i++ {
		if r.at[i].After(cutoff) {
			live = append(live, r.wait[i])
		}
	}
	r.mu.Unlock()
	if len(live) == 0 {
		return 0
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	return live[(len(live)*99)/100]
}

// quotas is the per-tenant token-bucket registry. Buckets refill at
// rps tokens per second up to burst; take is called with the token
// count of the work (batch items each cost one).
type quotas struct {
	rps   float64
	burst float64

	mu sync.Mutex
	m  map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotas(rps float64, burst int) *quotas {
	if burst <= 0 {
		burst = int(math.Ceil(rps))
		if burst < 1 {
			burst = 1
		}
	}
	return &quotas{rps: rps, burst: float64(burst), m: make(map[string]*bucket)}
}

// take spends n tokens from tenant's bucket. On exhaustion it reports
// how long until the deficit refills — the Retry-After hint.
func (qs *quotas) take(tenant string, n int, now time.Time) (time.Duration, bool) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	b := qs.m[tenant]
	if b == nil {
		qs.pruneLocked(now)
		b = &bucket{tokens: qs.burst, last: now}
		qs.m[tenant] = b
	}
	b.tokens = math.Min(qs.burst, b.tokens+now.Sub(b.last).Seconds()*qs.rps)
	b.last = now
	if b.tokens >= float64(n) {
		b.tokens -= float64(n)
		return 0, true
	}
	deficit := float64(n) - b.tokens
	return time.Duration(deficit / qs.rps * float64(time.Second)), false
}

// pruneLocked bounds the registry against tenant-name cardinality
// attacks: before admitting a new tenant past the cap, drop buckets
// that have already refilled to full (forgetting them loses nothing —
// a returning tenant starts with a full bucket anyway).
func (qs *quotas) pruneLocked(now time.Time) {
	if len(qs.m) < 4096 {
		return
	}
	for id, b := range qs.m {
		if math.Min(qs.burst, b.tokens+now.Sub(b.last).Seconds()*qs.rps) >= qs.burst {
			delete(qs.m, id)
		}
	}
}

// tenantFrom names the requester's quota bucket.
func tenantFrom(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// shedCheck decides, with the gate already full, whether queueing this
// request could possibly serve it: the recent p99 queue wait is the
// prediction, scaled against the request's remaining deadline budget by
// its priority class. Requests without a deadline are never shed.
func (s *Server) shedCheck(ctx context.Context) error {
	deadline, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	now := time.Now()
	p99 := s.waits.p99(now)
	if p99 <= 0 {
		return nil // no queueing evidence; admit
	}
	prio := priorityFrom(ctx)
	budget := deadline.Sub(now)
	limit := time.Duration(float64(budget) * budgetFactor(prio))
	if p99 <= limit {
		return nil
	}
	s.statsMu.Lock()
	s.ctr.shedDeadline++
	s.statsMu.Unlock()
	return &shedError{
		retryAfter: p99,
		reason: fmt.Sprintf("shed: predicted queue wait %v exceeds the %s-class budget (%v of %v remaining)",
			p99.Round(time.Millisecond), prio, limit.Round(time.Millisecond), budget.Round(time.Millisecond)),
	}
}
