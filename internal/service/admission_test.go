package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
)

// postHdr is post with extra headers.
func postHdr(t testing.TB, h http.Handler, body string, hdr map[string]string) (int, string, http.Header) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/minimize", strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code, w.Body.String(), w.Result().Header
}

// holdAllSlots saturates the admission gate with distinct blocker
// requests and returns a release func.
func holdAllSlots(t *testing.T, s *Server, h http.Handler) func() {
	t.Helper()
	gate := make(chan struct{})
	s.testHookAfterAcquire = func(ctx context.Context) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	width := cap(s.slots)
	var wg sync.WaitGroup
	for i := 0; i < width; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct functions so the blockers don't coalesce.
			post(t, h, fmt.Sprintf(`{"n":3,"on":[%d,7]}`, i))
		}(i)
	}
	for i := 0; len(s.slots) < width && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}
	if len(s.slots) < width {
		t.Fatal("blockers never filled the gate")
	}
	return func() { close(gate); wg.Wait() }
}

// TestShed429WithRetryAfter: with the gate full and the wait ring
// predicting long queues, a deadlined request is rejected 429 up front —
// fast, with a Retry-After header and a machine-readable code — instead
// of queueing into a 504.
func TestShed429WithRetryAfter(t *testing.T) {
	cfg := testConfig()
	cfg.MaxConcurrent = 1
	s := New(cfg)
	h := s.Handler()
	release := holdAllSlots(t, s, h)
	defer release()

	// Seed the predictor: recent acquires waited ~2s, far over the
	// request's 200ms budget.
	now := time.Now()
	for i := 0; i < 10; i++ {
		s.waits.observe(now, 2*time.Second)
	}

	start := time.Now()
	code, out, hdr := postHdr(t, h,
		fmt.Sprintf(`{"n":3,"on":%s,"timeout_ms":200}`, pointsJSON(oddParity(3))), nil)
	shedLatency := time.Since(start)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", code, out)
	}
	res := decodeResp(t, out)
	if res.Code != "shed" {
		t.Errorf("code %q, want \"shed\": %s", res.Code, out)
	}
	if res.RetryAfterMS < 1 {
		t.Errorf("retry_after_ms = %d, want >= 1", res.RetryAfterMS)
	}
	if ra := hdr.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After header = %q, want positive seconds", ra)
	}
	// Shed-before-queue: the rejection must not have waited out the
	// 200ms deadline (the whole point is rejecting early).
	if shedLatency > 150*time.Millisecond {
		t.Errorf("shed took %v; must reject before the queue wait, not after", shedLatency)
	}

	// Counter surfaced on /statsz.
	_, stz := get(t, h, "/statsz")
	var st Statsz
	if err := json.Unmarshal([]byte(stz), &st); err != nil {
		t.Fatal(err)
	}
	if st.ShedDeadline < 1 {
		t.Errorf("shed_deadline = %d, want >= 1", st.ShedDeadline)
	}
	if st.QueueWaitP99MS < 1000 {
		t.Errorf("queue_wait_p99_ms = %d, want the seeded ~2000", st.QueueWaitP99MS)
	}
}

// TestShedSparesLongDeadlines: the same full gate and hot predictor
// must still admit (queue) a request whose budget covers the predicted
// wait — shedding is deadline-aware, not a blanket reject.
func TestShedSparesLongDeadlines(t *testing.T) {
	cfg := testConfig()
	cfg.MaxConcurrent = 1
	s := New(cfg)
	h := s.Handler()
	release := holdAllSlots(t, s, h)

	now := time.Now()
	for i := 0; i < 10; i++ {
		s.waits.observe(now, 50*time.Millisecond)
	}

	done := make(chan struct{})
	var code int
	var out string
	go func() {
		defer close(done)
		// 10s budget vs 50ms predicted wait: must queue, then serve.
		code, out = post(t, h, fmt.Sprintf(`{"n":3,"on":%s}`, pointsJSON(oddParity(3))))
	}()
	time.Sleep(50 * time.Millisecond)
	release()
	<-done
	if code != http.StatusOK {
		t.Fatalf("long-deadline request under mild pressure: status %d, want 200: %s", code, out)
	}
}

// TestQuotaPerTenantIsolation: tenant A exhausting its bucket gets 429
// + Retry-After while tenant B (and A again after refill) proceed —
// buckets are per-tenant, not global.
func TestQuotaPerTenantIsolation(t *testing.T) {
	cfg := testConfig()
	cfg.QuotaRPS = 0.5 // slow refill: 2s per token
	cfg.QuotaBurst = 2
	s := New(cfg)
	h := s.Handler()
	body := fmt.Sprintf(`{"n":3,"on":%s}`, pointsJSON(oddParity(3)))

	hdrA := map[string]string{"X-Tenant": "alice"}
	for i := 0; i < 2; i++ {
		if code, out, _ := postHdr(t, h, body, hdrA); code != http.StatusOK {
			t.Fatalf("alice %d within burst: status %d: %s", i, code, out)
		}
	}
	code, out, hdr := postHdr(t, h, body, hdrA)
	if code != http.StatusTooManyRequests {
		t.Fatalf("alice over burst: status %d, want 429: %s", code, out)
	}
	res := decodeResp(t, out)
	if res.Code != "quota_exhausted" || res.RetryAfterMS < 1 {
		t.Errorf("over-quota response = %+v, want code quota_exhausted with retry hint", res)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("over-quota response missing Retry-After header")
	}

	// A different tenant is unaffected.
	if code, out, _ := postHdr(t, h, body, map[string]string{"X-Tenant": "bob"}); code != http.StatusOK {
		t.Fatalf("bob blocked by alice's quota: status %d: %s", code, out)
	}
	// So is the default tenant (no header).
	if code, out, _ := postHdr(t, h, body, nil); code != http.StatusOK {
		t.Fatalf("default tenant blocked: status %d: %s", code, out)
	}

	// Quota rejections surface on /statsz without touching the served
	// invariant (served == hits+misses+waiters; the rejected request
	// appears in neither).
	_, stz := get(t, h, "/statsz")
	var st Statsz
	if err := json.Unmarshal([]byte(stz), &st); err != nil {
		t.Fatal(err)
	}
	if st.QuotaRejected != 1 {
		t.Errorf("quota_rejected = %d, want 1", st.QuotaRejected)
	}
	if st.Served != st.CacheHits+st.CacheMisses+st.CoalesceWaiters {
		t.Errorf("served invariant broken: %+v", st)
	}
}

// TestQuotaChargesBatchPerItem: a batch charges one token per item, so
// a burst-2 bucket refuses a 3-item batch outright.
func TestQuotaChargesBatchPerItem(t *testing.T) {
	cfg := testConfig()
	cfg.QuotaRPS = 0.001
	cfg.QuotaBurst = 2
	s := New(cfg)
	h := s.Handler()
	item := fmt.Sprintf(`{"n":3,"on":%s}`, pointsJSON(oddParity(3)))
	code, out, _ := postHdr(t, h, fmt.Sprintf(`{"requests":[%s,%s,%s]}`, item, item, item), nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("3-item batch on burst-2 bucket: status %d, want 429: %s", code, out)
	}
	var br batchResponse
	if err := json.Unmarshal([]byte(out), &br); err != nil {
		t.Fatalf("batch 429 lost the batch shape: %v\n%s", err, out)
	}
	if br.Error == "" || len(br.Results) != 0 {
		t.Errorf("batch 429 envelope = %+v", br)
	}
}

// TestPriorityHeader: a bogus X-Priority is a 400 before any work; a
// valid one is accepted.
func TestPriorityHeader(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()
	body := fmt.Sprintf(`{"n":3,"on":%s}`, pointsJSON(oddParity(3)))
	if code, out, _ := postHdr(t, h, body, map[string]string{"X-Priority": "urgent"}); code != http.StatusBadRequest {
		t.Errorf("unknown priority: status %d, want 400: %s", code, out)
	}
	if code, out, _ := postHdr(t, h, body, map[string]string{"X-Priority": "bulk"}); code != http.StatusOK {
		t.Errorf("bulk priority: status %d: %s", code, out)
	}
}

func TestBudgetFactorOrdering(t *testing.T) {
	i, b, u := budgetFactor(jobs.PriorityInteractive), budgetFactor(jobs.PriorityBatch), budgetFactor(jobs.PriorityBulk)
	if !(i > b && b > u) {
		t.Errorf("budget factors not ordered: interactive=%v batch=%v bulk=%v", i, b, u)
	}
}

func TestRetryAfterSecondsCeils(t *testing.T) {
	cases := []struct {
		ms   int64
		want string
	}{
		{0, "1"}, {-5, "1"}, {1, "1"}, {999, "1"}, {1000, "1"}, {1001, "2"}, {1500, "2"}, {15000, "15"},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.ms); got != c.want {
			t.Errorf("retryAfterSeconds(%d) = %s, want %s", c.ms, got, c.want)
		}
	}
}

func TestParseWaitMSClamps(t *testing.T) {
	mk := func(q string) *http.Request {
		return httptest.NewRequest(http.MethodGet, "/v1/jobs/x?wait_ms="+q, nil)
	}
	cases := []struct {
		q    string
		want time.Duration
	}{
		{"250", 250 * time.Millisecond},
		{"0", 0},
		{"-100", 0},
		{"garbage", 0},
		{"99999999999999999999999999", maxWaitMS * time.Millisecond}, // overflow clamps, not drops
		{"9223372036854775807", maxWaitMS * time.Millisecond},        // in-range but huge: clamped
	}
	for _, c := range cases {
		if got := parseWaitMS(mk(c.q)); got != c.want {
			t.Errorf("parseWaitMS(%q) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestStatszHistoryRoundTrip: the sampler writes the ftdc ring and
// /statsz/history replays it, columnar and monotone.
func TestStatszHistoryRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.FTDCDir = t.TempDir()
	cfg.FTDCInterval = 5 * time.Millisecond
	s := New(cfg)
	if err := s.StartTelemetry(); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if code, out := post(t, h, fmt.Sprintf(`{"n":3,"on":%s}`, pointsJSON(oddParity(3)))); code != http.StatusOK {
		t.Fatalf("serve: %d %s", code, out)
	}
	// Let the sampler take a few samples, then stop (flushes the tail).
	time.Sleep(60 * time.Millisecond)
	s.StopTelemetry()

	code, out := get(t, h, "/statsz/history")
	if code != http.StatusOK {
		t.Fatalf("history: status %d: %s", code, out)
	}
	var hist historyResponse
	if err := json.Unmarshal([]byte(out), &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Schema != "spp-ftdc-history/v1" {
		t.Errorf("schema = %q", hist.Schema)
	}
	if len(hist.Samples) < 2 {
		t.Fatalf("samples = %d, want a few", len(hist.Samples))
	}
	servedCol := -1
	for i, m := range hist.Metrics {
		if m == "serve.served" {
			servedCol = i
		}
	}
	if servedCol < 0 {
		t.Fatalf("metrics %v missing serve.served", hist.Metrics)
	}
	last := hist.Samples[len(hist.Samples)-1]
	if len(last.V) != len(hist.Metrics) {
		t.Fatalf("columnar mismatch: %d values for %d metrics", len(last.V), len(hist.Metrics))
	}
	if last.V[servedCol] < 1 {
		t.Errorf("final serve.served = %d, want >= 1", last.V[servedCol])
	}
	for i := 1; i < len(hist.Samples); i++ {
		if hist.Samples[i].T < hist.Samples[i-1].T {
			t.Fatalf("samples not time-ordered at %d", i)
		}
	}

	// ?last trims from the old end.
	code, out = get(t, h, "/statsz/history?last=1")
	if code != http.StatusOK {
		t.Fatal(out)
	}
	var one historyResponse
	if err := json.Unmarshal([]byte(out), &one); err != nil {
		t.Fatal(err)
	}
	if len(one.Samples) != 1 || one.Samples[0].T != last.T {
		t.Errorf("last=1 returned %d samples (want the newest)", len(one.Samples))
	}
}

// TestStatszHistoryDisabled: without -ftdc-dir the endpoint says so
// instead of 404ing.
func TestStatszHistoryDisabled(t *testing.T) {
	s := New(testConfig())
	code, out := get(t, s.Handler(), "/statsz/history")
	if code != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501: %s", code, out)
	}
	if !strings.Contains(out, "ftdc-dir") {
		t.Errorf("501 body does not name the flag: %s", out)
	}
}

// chopNewestSegment cuts the newest ftdc segment short mid-record —
// the on-disk shape a kill -9 leaves.
func chopNewestSegment(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".ftdc") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatal("no ftdc segments written")
	}
	sort.Strings(segs)
	path := filepath.Join(dir, segs[len(segs)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 4 {
		t.Fatalf("segment %s too small to chop", path)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStatszHistorySurvivesTruncatedTail: a crash-cut segment tail
// (kill -9 mid-append) drops only the partial sample and reports
// truncated.
func TestStatszHistorySurvivesTruncatedTail(t *testing.T) {
	cfg := testConfig()
	cfg.FTDCDir = t.TempDir()
	cfg.FTDCInterval = 5 * time.Millisecond
	s := New(cfg)
	if err := s.StartTelemetry(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	s.StopTelemetry()

	chopNewestSegment(t, cfg.FTDCDir)

	code, out := get(t, s.Handler(), "/statsz/history")
	if code != http.StatusOK {
		t.Fatalf("history after chop: status %d: %s", code, out)
	}
	var hist historyResponse
	if err := json.Unmarshal([]byte(out), &hist); err != nil {
		t.Fatal(err)
	}
	if !hist.Truncated {
		t.Error("chopped tail not reported truncated")
	}
	if len(hist.Samples) < 1 {
		t.Error("no intact samples survived the chop")
	}
}
