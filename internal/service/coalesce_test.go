package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bfunc"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fcache"
)

// derivedKey reconstructs the cache key the server uses for q, so tests
// can observe the coalescing group and pre-seed the cache.
func derivedKey(t *testing.T, s *Server, f *bfunc.Func, q Request) fcache.Key {
	t.Helper()
	key, _, _ := fcache.Canonicalize(f)
	alg, err := normalizeAlgorithm(q, f.N())
	if err != nil {
		t.Fatalf("normalizeAlgorithm: %v", err)
	}
	return key.Derive(s.optionTag(q, alg))
}

func statszOf(t *testing.T, h http.Handler) Statsz {
	t.Helper()
	code, out := get(t, h, "/statsz")
	if code != http.StatusOK {
		t.Fatalf("/statsz: status %d: %s", code, out)
	}
	var st Statsz
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("bad statsz JSON: %v\n%s", err, out)
	}
	return st
}

// waitForWaiters blocks until n callers are coalesced onto the flight
// for k.
func waitForWaiters(t *testing.T, s *Server, k fcache.Key, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.flights.Waiters(k) != n {
		if time.Now().After(deadline) {
			t.Fatalf("flight never reached %d waiters (at %d)", n, s.flights.Waiters(k))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalesceWaiterServed: a second identical request arriving while
// the first computes is served from the leader's flight — marked
// cached+coalesced, counted as a coalesce waiter, and slot-free.
func TestCoalesceWaiterServed(t *testing.T) {
	cfg := testConfig()
	cfg.MaxConcurrent = 1
	s := New(cfg)
	gate := make(chan struct{})
	s.testHookAfterAcquire = func(ctx context.Context) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	h := s.Handler()
	on := oddParity(3)
	body := fmt.Sprintf(`{"n":3,"on":%s}`, pointsJSON(on))
	key := derivedKey(t, s, bfunc.New(3, on), Request{})

	type reply struct {
		code int
		resp Response
	}
	leaderCh := make(chan reply, 1)
	go func() {
		code, out := post(t, h, body)
		leaderCh <- reply{code, decodeResp(t, out)}
	}()
	for i := 0; len(s.slots) == 0 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}

	waiterCh := make(chan reply, 1)
	go func() {
		code, out := post(t, h, body)
		waiterCh <- reply{code, decodeResp(t, out)}
	}()
	waitForWaiters(t, s, key, 1)
	close(gate)

	leader, waiter := <-leaderCh, <-waiterCh
	if leader.code != http.StatusOK || leader.resp.Cached || leader.resp.Coalesced {
		t.Errorf("leader: code=%d cached=%v coalesced=%v, want fresh 200",
			leader.code, leader.resp.Cached, leader.resp.Coalesced)
	}
	if waiter.code != http.StatusOK || !waiter.resp.Cached || !waiter.resp.Coalesced {
		t.Errorf("waiter: code=%d cached=%v coalesced=%v, want coalesced 200",
			waiter.code, waiter.resp.Cached, waiter.resp.Coalesced)
	}
	if leader.resp.Form != waiter.resp.Form {
		t.Errorf("leader and waiter forms differ: %q vs %q", leader.resp.Form, waiter.resp.Form)
	}

	st := statszOf(t, h)
	if st.Served != 2 || st.CacheMisses != 1 || st.CoalesceWaiters != 1 || st.CacheHits != 0 {
		t.Errorf("statsz = served %d hits %d misses %d waiters %d, want 2/0/1/1",
			st.Served, st.CacheHits, st.CacheMisses, st.CoalesceWaiters)
	}
	// The leader's run report records how many requests rode its flight.
	if st.Runs == nil || len(st.Runs.Reports) != 1 {
		t.Fatalf("statsz runs ring = %+v, want the leader's report", st.Runs)
	}
	if got := st.Runs.Reports[0].Sched["serve.flight_waiters"]; got != 1 {
		t.Errorf("serve.flight_waiters = %d, want 1 (sched=%v)", got, st.Runs.Reports[0].Sched)
	}
}

// TestCoalesceLeaderSurvivesWaiterCancel pins the acceptance
// criterion: a waiter that gives up (its own 50ms deadline) gets 504
// while the leader computes on undisturbed; the leader's result still
// populates the cache and serves the next request as a plain hit.
func TestCoalesceLeaderSurvivesWaiterCancel(t *testing.T) {
	cfg := testConfig()
	cfg.MaxConcurrent = 1
	s := New(cfg)
	gate := make(chan struct{})
	s.testHookAfterAcquire = func(ctx context.Context) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	h := s.Handler()
	on := oddParity(3)
	body := fmt.Sprintf(`{"n":3,"on":%s}`, pointsJSON(on))
	key := derivedKey(t, s, bfunc.New(3, on), Request{})

	leaderCh := make(chan int, 1)
	go func() {
		code, _ := post(t, h, body)
		leaderCh <- code
	}()
	for i := 0; len(s.slots) == 0 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}

	waiterCh := make(chan struct {
		code int
		out  string
	}, 1)
	go func() {
		code, out := post(t, h, fmt.Sprintf(`{"n":3,"on":%s,"timeout_ms":50}`, pointsJSON(on)))
		waiterCh <- struct {
			code int
			out  string
		}{code, out}
	}()
	waitForWaiters(t, s, key, 1)

	w := <-waiterCh // expires on its own 50ms deadline
	if w.code != http.StatusGatewayTimeout || !strings.Contains(w.out, "coalesced wait") {
		t.Fatalf("detached waiter: code=%d, want 504 coalesced-wait: %s", w.code, w.out)
	}
	if s.flights.Waiters(key) != 0 {
		t.Errorf("detached waiter still counted on the flight")
	}

	close(gate) // leader unpoisoned: finishes and caches
	if code := <-leaderCh; code != http.StatusOK {
		t.Fatalf("leader failed after waiter detach: %d", code)
	}
	code, out := post(t, h, body)
	r := decodeResp(t, out)
	if code != http.StatusOK || !r.Cached || r.Coalesced {
		t.Errorf("post-detach request: code=%d cached=%v coalesced=%v, want plain cache hit",
			code, r.Cached, r.Coalesced)
	}

	st := statszOf(t, h)
	if st.CoalesceDetached != 1 || st.Errors != 1 {
		t.Errorf("statsz detached=%d errors=%d, want 1/1", st.CoalesceDetached, st.Errors)
	}
	if st.Served != 2 || st.CacheHits != 1 || st.CacheMisses != 1 || st.CoalesceWaiters != 0 {
		t.Errorf("statsz served=%d hits=%d misses=%d waiters=%d, want 2/1/1/0",
			st.Served, st.CacheHits, st.CacheMisses, st.CoalesceWaiters)
	}
}

// TestFailureStatusBySite pins the HTTP status for each failure site,
// so a queue-wait expiry, an in-flight expiry, a client cancel and a
// budget abort each keep their own code instead of collapsing into 500
// (the double-shadow bug) or each other.
func TestFailureStatusBySite(t *testing.T) {
	holdSlot := func(t *testing.T, s *Server, h http.Handler) (release func()) {
		t.Helper()
		gate := make(chan struct{})
		s.testHookAfterAcquire = func(ctx context.Context) {
			select {
			case <-gate:
			case <-ctx.Done():
			}
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			// Distinct blocker function: later requests queue on the
			// slot rather than joining this flight.
			post(t, h, `{"n":3,"on":[0,7]}`)
		}()
		for i := 0; len(s.slots) == 0 && i < 5000; i++ {
			time.Sleep(time.Millisecond)
		}
		if len(s.slots) == 0 {
			t.Fatal("blocker never took the slot")
		}
		return func() { close(gate); <-done }
	}
	parity3 := fmt.Sprintf(`{"n":3,"on":%s,"timeout_ms":50}`, pointsJSON(oddParity(3)))

	cases := []struct {
		name     string
		run      func(t *testing.T) (int, string)
		wantCode int
		wantSub  string
	}{
		{
			name: "queue wait deadline",
			run: func(t *testing.T) (int, string) {
				cfg := testConfig()
				cfg.MaxConcurrent = 1
				s := New(cfg)
				h := s.Handler()
				release := holdSlot(t, s, h)
				defer release()
				return post(t, h, parity3)
			},
			wantCode: http.StatusGatewayTimeout,
			wantSub:  "queue wait",
		},
		{
			name: "queue wait client cancel",
			run: func(t *testing.T) (int, string) {
				cfg := testConfig()
				cfg.MaxConcurrent = 1
				s := New(cfg)
				h := s.Handler()
				release := holdSlot(t, s, h)
				defer release()
				ctx, cancel := context.WithCancel(context.Background())
				go func() { time.Sleep(30 * time.Millisecond); cancel() }()
				req := httptest.NewRequest(http.MethodPost, "/v1/minimize",
					strings.NewReader(fmt.Sprintf(`{"n":3,"on":%s}`, pointsJSON(oddParity(3))))).WithContext(ctx)
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				return w.Code, w.Body.String()
			},
			wantCode: 499,
			wantSub:  "queue wait",
		},
		{
			name: "in-flight deadline",
			run: func(t *testing.T) (int, string) {
				s := New(testConfig())
				s.testHookAfterAcquire = func(ctx context.Context) { <-ctx.Done() }
				return post(t, s.Handler(), parity3)
			},
			wantCode: http.StatusGatewayTimeout,
			wantSub:  "deadline",
		},
		{
			name: "in-flight client cancel",
			run: func(t *testing.T) (int, string) {
				s := New(testConfig())
				s.testHookAfterAcquire = func(ctx context.Context) { <-ctx.Done() }
				ctx, cancel := context.WithCancel(context.Background())
				go func() { time.Sleep(30 * time.Millisecond); cancel() }()
				req := httptest.NewRequest(http.MethodPost, "/v1/minimize",
					strings.NewReader(fmt.Sprintf(`{"n":3,"on":%s}`, pointsJSON(oddParity(3))))).WithContext(ctx)
				w := httptest.NewRecorder()
				s.Handler().ServeHTTP(w, req)
				return w.Code, w.Body.String()
			},
			wantCode: 499,
			wantSub:  "cancel",
		},
		{
			name: "budget abort",
			run: func(t *testing.T) (int, string) {
				cfg := testConfig()
				cfg.Core.MaxCandidates = 1
				return post(t, New(cfg).Handler(),
					fmt.Sprintf(`{"n":4,"on":%s}`, pointsJSON(oddParity(4))))
			},
			wantCode: http.StatusUnprocessableEntity,
			wantSub:  core.ErrBudget.Error(),
		},
		{
			name: "bad request",
			run: func(t *testing.T) (int, string) {
				return post(t, New(testConfig()).Handler(), `{"n":3,"on":[9]}`)
			},
			wantCode: http.StatusBadRequest,
			wantSub:  "outside",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := tc.run(t)
			if code != tc.wantCode {
				t.Errorf("status %d, want %d: %s", code, tc.wantCode, out)
			}
			if !strings.Contains(out, tc.wantSub) {
				t.Errorf("error %q does not mention %q", out, tc.wantSub)
			}
		})
	}
}

// TestServiceCollisionRecompute pins the accounting bugfix end to end:
// a cache entry whose canonical function does not match the request
// (a key collision) must be rejected as a miss, evicted, and the
// request freshly computed — never served the wrong form or counted as
// a hit.
func TestServiceCollisionRecompute(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()
	on := oddParity(3)
	key := derivedKey(t, s, bfunc.New(3, on), Request{})

	// Poison the exact slot the request will probe with a different
	// function's (empty) result.
	s.cache.Put(key, cacheEntry{canon: bfunc.New(3, []uint64{0}), form: engine.SPPForm{F: core.Form{N: 3}}, kind: "spp"})

	code, out := post(t, h, fmt.Sprintf(`{"n":3,"on":%s}`, pointsJSON(on)))
	r := decodeResp(t, out)
	if code != http.StatusOK || r.Error != "" {
		t.Fatalf("collision request failed: %d %s", code, out)
	}
	if r.Cached {
		t.Error("poisoned entry served as a cache hit")
	}
	if r.Form == "" || r.NumTerms == 0 {
		t.Errorf("collision victim got the poisoned empty form: %+v", r)
	}

	st := statszOf(t, h)
	if st.CacheHits != 0 || st.CacheMisses != 1 {
		t.Errorf("hits=%d misses=%d after collision, want 0/1", st.CacheHits, st.CacheMisses)
	}
	if st.CacheEvictions < 1 {
		t.Errorf("mismatched entry was not evicted (evictions=%d)", st.CacheEvictions)
	}

	// The recomputed entry owns the slot now: next request is a real hit.
	_, out = post(t, h, fmt.Sprintf(`{"n":3,"on":%s}`, pointsJSON(on)))
	if r := decodeResp(t, out); !r.Cached {
		t.Error("recomputed entry not served on the next request")
	}
}

// TestNoCacheBypassesCoalescing: no_cache requests always compute —
// they neither read the cache nor join flights — yet still populate
// the cache for later requests.
func TestNoCacheBypassesCoalescing(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()
	body := fmt.Sprintf(`{"n":3,"on":%s,"no_cache":true}`, pointsJSON(oddParity(3)))
	for i := 0; i < 2; i++ {
		_, out := post(t, h, body)
		if r := decodeResp(t, out); r.Cached || r.Coalesced {
			t.Errorf("no_cache request %d served from cache/flight: %+v", i, r)
		}
	}
	_, out := post(t, h, fmt.Sprintf(`{"n":3,"on":%s}`, pointsJSON(oddParity(3))))
	if r := decodeResp(t, out); !r.Cached {
		t.Error("no_cache result did not populate the cache")
	}
	st := statszOf(t, h)
	if st.CacheMisses != 2 || st.CacheHits != 1 {
		t.Errorf("misses=%d hits=%d, want 2/1", st.CacheMisses, st.CacheHits)
	}
}

// TestBatchWorkersConcurrent: with BatchWorkers >= 2 and two admission
// slots, two distinct batch items must be in flight simultaneously —
// the regression test against the old strictly-serial batch loop — and
// results must land at their item's index regardless of completion
// order.
func TestBatchWorkersConcurrent(t *testing.T) {
	cfg := testConfig()
	cfg.MaxConcurrent = 2
	cfg.BatchWorkers = 2
	s := New(cfg)
	arrivals := make(chan struct{}, 2)
	barrier := make(chan struct{})
	s.testHookAfterAcquire = func(ctx context.Context) {
		arrivals <- struct{}{}
		select {
		case <-barrier:
		case <-ctx.Done():
		}
	}
	h := s.Handler()
	body := fmt.Sprintf(`{"requests":[{"n":3,"on":%s},{"n":4,"on":%s}]}`,
		pointsJSON(oddParity(3)), pointsJSON(oddParity(4)))

	outCh := make(chan string, 1)
	go func() {
		_, out := post(t, h, body)
		outCh <- out
	}()
	for i := 0; i < 2; i++ {
		select {
		case <-arrivals:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of 2 batch items in flight: batch items did not run concurrently", i)
		}
	}
	close(barrier)

	var br batchResponse
	if err := json.Unmarshal([]byte(<-outCh), &br); err != nil {
		t.Fatalf("bad batch JSON: %v", err)
	}
	if len(br.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(br.Results))
	}
	// Deterministic ordering: item i's result is for item i's function.
	// Odd parity over n variables minimizes to one n-literal
	// pseudoproduct, so the literal counts identify the items.
	for i, wantLits := range []int{3, 4} {
		if br.Results[i].Error != "" {
			t.Fatalf("item %d errored: %s", i, br.Results[i].Error)
		}
		if br.Results[i].Literals != wantLits {
			t.Errorf("results[%d].Literals = %d, want %d (results out of order?)",
				i, br.Results[i].Literals, wantLits)
		}
	}
}

// TestLegacySerialMode: the A/B baseline keeps the old semantics —
// single-shard cache, no coalescing, serial batch items that hit the
// cache rather than join flights.
func TestLegacySerialMode(t *testing.T) {
	cfg := testConfig()
	cfg.LegacySerial = true
	s := New(cfg)
	h := s.Handler()
	on := pointsJSON(oddParity(3))

	code, out := post(t, h, fmt.Sprintf(`{"requests":[{"n":3,"on":%s},{"n":3,"on":%s}]}`, on, on))
	if code != http.StatusOK {
		t.Fatalf("legacy batch: status %d: %s", code, out)
	}
	var br batchResponse
	if err := json.Unmarshal([]byte(out), &br); err != nil {
		t.Fatalf("bad batch JSON: %v", err)
	}
	if br.Results[0].Cached || br.Results[0].Coalesced {
		t.Errorf("legacy first item: %+v, want fresh", br.Results[0])
	}
	if !br.Results[1].Cached || br.Results[1].Coalesced {
		t.Errorf("legacy duplicate item: cached=%v coalesced=%v, want serial cache hit",
			br.Results[1].Cached, br.Results[1].Coalesced)
	}
	st := statszOf(t, h)
	if st.CacheShards != 1 {
		t.Errorf("legacy cache shards = %d, want 1", st.CacheShards)
	}
	if st.CoalesceWaiters != 0 || st.Served != 2 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("legacy statsz = %+v", st)
	}
}

// TestStatszCoherentUnderLoad is the stress test: 32 goroutines of
// mixed hits/misses/coalesces while a poller hammers /statsz. Every
// snapshot — not just the final one — must satisfy
// served == hits + misses + waiters; at the end, misses must equal the
// number of distinct functions (each computed exactly once, however
// many requests raced for it).
func TestStatszCoherentUnderLoad(t *testing.T) {
	cfg := testConfig()
	cfg.MaxConcurrent = 4
	s := New(cfg)
	h := s.Handler()

	// Distinct ON-set sizes guarantee P-inequivalent functions (and so
	// distinct cache keys); all are tiny and fast.
	const keys = 8
	bodies := make([]string, keys)
	for i := 0; i < keys; i++ {
		var on []uint64
		for p := uint64(0); p <= uint64(i); p++ {
			on = append(on, p)
		}
		bodies[i] = fmt.Sprintf(`{"n":4,"on":%s}`, pointsJSON(on))
	}

	const (
		goroutines = 32
		reqsEach   = 25
	)
	stop := make(chan struct{})
	var pollerWG sync.WaitGroup
	pollerWG.Add(1)
	go func() {
		defer pollerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := statszOf(t, h)
			if st.Served != st.CacheHits+st.CacheMisses+st.CoalesceWaiters {
				t.Errorf("torn statsz snapshot: served=%d hits=%d misses=%d waiters=%d",
					st.Served, st.CacheHits, st.CacheMisses, st.CoalesceWaiters)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < reqsEach; i++ {
				code, out := post(t, h, bodies[(seed*7+i)%keys])
				if code != http.StatusOK {
					t.Errorf("request failed: %d %s", code, out)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	pollerWG.Wait()

	st := statszOf(t, h)
	if st.Served != goroutines*reqsEach {
		t.Errorf("served = %d, want %d", st.Served, goroutines*reqsEach)
	}
	if st.Served != st.CacheHits+st.CacheMisses+st.CoalesceWaiters {
		t.Errorf("final statsz incoherent: served=%d hits=%d misses=%d waiters=%d",
			st.Served, st.CacheHits, st.CacheMisses, st.CoalesceWaiters)
	}
	if st.CacheMisses != keys {
		t.Errorf("misses = %d, want %d (one compute per distinct function)", st.CacheMisses, keys)
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d under load, want 0", st.Errors)
	}
}
