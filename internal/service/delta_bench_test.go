package service

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// BenchmarkDeltaLoop measures the warm delta path end to end: one
// seeded base function, then a chain of single-swap edits, each resumed
// from the previous response's base_key. Compare against
// BenchmarkColdSubmit (full re-submission per edit) to see the
// edit-loop speedup the warm engine buys.
func BenchmarkDeltaLoop(b *testing.B) {
	cfg := testConfig()
	cfg.WarmCache = true
	cfg.CacheBytes = 512 << 20
	s := New(cfg)
	h := s.Handler()
	on, space := benchOnSet(9, 128)
	_, body := post(b, h, fmt.Sprintf(`{"n":9,"on":[%s]}`, joinPoints(on)))
	base := decodeResp(b, body).BaseKey
	if base == "" {
		b.Fatal("no base_key from seed")
	}
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		add, rem := swapPoints(rng, on, space)
		code, body := post(b, h, fmt.Sprintf(`{"base":%q,"add":[%d],"remove":[%d]}`, base, add, rem))
		if code != 200 {
			b.Fatalf("status %d: %s", code, body)
		}
		base = decodeResp(b, body).BaseKey
	}
}

// BenchmarkColdSubmit is the cold counterpart: each iteration submits
// the full edited function, missing the cache.
func BenchmarkColdSubmit(b *testing.B) {
	s := New(testConfig())
	h := s.Handler()
	on, space := benchOnSet(9, 128)
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		swapPoints(rng, on, space)
		code, body := post(b, h, fmt.Sprintf(`{"n":9,"on":[%s]}`, joinPoints(on)))
		if code != 200 {
			b.Fatalf("status %d: %s", code, body)
		}
	}
}

// swapPoints turns one random OFF point ON and one other ON point OFF,
// mutating on in place.
func swapPoints(rng *rand.Rand, on map[int]bool, space int) (add, rem int) {
	for {
		p := rng.Intn(space)
		if !on[p] {
			add = p
			on[p] = true
			break
		}
	}
	for p := range on {
		if p != add {
			rem = p
			delete(on, p)
			break
		}
	}
	return add, rem
}

func benchOnSet(n, size int) (map[int]bool, int) {
	rng := rand.New(rand.NewSource(3))
	space := 1 << n
	on := make(map[int]bool, size)
	for len(on) < size {
		on[rng.Intn(space)] = true
	}
	return on, space
}

func joinPoints(on map[int]bool) string {
	pts := make([]string, 0, len(on))
	for p := range on {
		pts = append(pts, fmt.Sprint(p))
	}
	return strings.Join(pts, ",")
}
