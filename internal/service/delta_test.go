package service

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bfunc"
	"repro/internal/bitvec"
	"repro/internal/core"
)

func warmConfig() Config {
	cfg := testConfig()
	cfg.WarmCache = true
	return cfg
}

func TestDeltaUnknownBase409(t *testing.T) {
	s := New(warmConfig())
	h := s.Handler()
	unknown := strings.Repeat("ab", 32)
	code, body := post(t, h, fmt.Sprintf(`{"base":%q,"add":[0]}`, unknown))
	if code != 409 {
		t.Fatalf("status = %d, want 409\n%s", code, body)
	}
	r := decodeResp(t, body)
	if r.Code != "cold_run_required" {
		t.Fatalf("code = %q, want cold_run_required\n%s", r.Code, body)
	}
	if r.Error == "" {
		t.Fatal("expected a human-readable error alongside the code")
	}
}

func TestDeltaWarmCacheDisabled409(t *testing.T) {
	s := New(testConfig()) // WarmCache off
	h := s.Handler()
	code, body := post(t, h, fmt.Sprintf(`{"base":%q,"add":[0]}`, strings.Repeat("00", 32)))
	if code != 409 {
		t.Fatalf("status = %d, want 409\n%s", code, body)
	}
	if r := decodeResp(t, body); r.Code != "cold_run_required" {
		t.Fatalf("code = %q, want cold_run_required", r.Code)
	}
}

func TestDeltaBadRequests(t *testing.T) {
	s := New(warmConfig())
	h := s.Handler()

	// Seed a real base to exercise the post-lookup validations.
	code, body := post(t, h, fmt.Sprintf(`{"n":5,"on":%s}`, pointsJSON(oddParity(5))))
	if code != 200 {
		t.Fatalf("seed: status %d\n%s", code, body)
	}
	base := decodeResp(t, body).BaseKey
	if base == "" {
		t.Fatal("warm server must advertise base_key on a computed response")
	}

	cases := []struct {
		name, body string
	}{
		{"malformed key", `{"base":"zz","add":[0]}`},
		{"function source too", fmt.Sprintf(`{"base":%q,"n":5,"on":[1],"add":[0]}`, base)},
		{"no_cache", fmt.Sprintf(`{"base":%q,"add":[0],"no_cache":true}`, base)},
		{"wrong algorithm", fmt.Sprintf(`{"base":%q,"add":[0],"algorithm":"naive"}`, base)},
		{"option mismatch", fmt.Sprintf(`{"base":%q,"add":[0],"exact_cover":true}`, base)},
		{"point out of range", fmt.Sprintf(`{"base":%q,"add":[32]}`, base)},
		{"add already ON", fmt.Sprintf(`{"base":%q,"add":[1]}`, base)},
		{"remove not ON", fmt.Sprintf(`{"base":%q,"remove":[0]}`, base)},
	}
	for _, tc := range cases {
		code, body := post(t, h, tc.body)
		if code != 400 {
			t.Errorf("%s: status = %d, want 400\n%s", tc.name, code, body)
		}
		if r := decodeResp(t, body); r.Code == "cold_run_required" {
			t.Errorf("%s: must not be classified cold_run_required", tc.name)
		}
	}
}

func TestDeltaTrivialEmptyOn(t *testing.T) {
	s := New(warmConfig())
	h := s.Handler()
	on := []uint64{3, 5}
	code, body := post(t, h, fmt.Sprintf(`{"n":4,"on":%s}`, pointsJSON(on)))
	if code != 200 {
		t.Fatalf("seed: status %d\n%s", code, body)
	}
	base := decodeResp(t, body).BaseKey

	code, body = post(t, h, fmt.Sprintf(`{"base":%q,"remove":[3,5]}`, base))
	if code != 200 {
		t.Fatalf("status = %d, want 200\n%s", code, body)
	}
	r := decodeResp(t, body)
	if r.Delta != "trivial" || r.Form != "0" || r.Literals != 0 || r.NumTerms != 0 {
		t.Fatalf("want trivial zero result, got %+v", r)
	}

	_, stats := get(t, h, "/statsz")
	var sz Statsz
	if err := json.Unmarshal([]byte(stats), &sz); err != nil {
		t.Fatal(err)
	}
	if sz.DeltaTrivial != 1 {
		t.Fatalf("delta_trivial = %d, want 1", sz.DeltaTrivial)
	}
	// The trivial path must not have entered the engine: exactly one
	// run (the seed) in the history.
	if sz.Runs == nil || len(sz.Runs.Reports) != 1 {
		t.Fatalf("trivial delta must not add an engine run, history: %+v", sz.Runs)
	}
}

func TestDeltaWarmResumeAndChain(t *testing.T) {
	s := New(warmConfig())
	h := s.Handler()
	on := oddParity(5)
	code, body := post(t, h, fmt.Sprintf(`{"n":5,"on":%s}`, pointsJSON(on)))
	if code != 200 {
		t.Fatalf("seed: status %d\n%s", code, body)
	}
	base := decodeResp(t, body).BaseKey

	// Edit: one OFF point turns ON (churn 1/16, well under the 0.25
	// default) and one ON point leaves.
	code, body = post(t, h, fmt.Sprintf(`{"base":%q,"add":[0],"remove":[1]}`, base))
	if code != 200 {
		t.Fatalf("delta: status %d\n%s", code, body)
	}
	r := decodeResp(t, body)
	if r.Delta != "warm" {
		t.Fatalf("delta = %q, want warm\n%s", r.Delta, body)
	}
	if r.BaseKey == "" || r.BaseKey == base {
		t.Fatalf("resumed response must advertise the edited function's own base_key, got %q", r.BaseKey)
	}
	if r.Cached {
		t.Fatal("first resume must be a fresh compute")
	}

	// The returned form must exactly describe the edited function.
	edited := editedParity(5, []uint64{0}, []uint64{1})
	verifyForm(t, 5, r.Form, edited)

	// The identical delta again: served from cache, byte-identical.
	code, body2 := post(t, h, fmt.Sprintf(`{"base":%q,"add":[0],"remove":[1]}`, base))
	if code != 200 {
		t.Fatalf("repeat delta: status %d\n%s", code, body2)
	}
	r2 := decodeResp(t, body2)
	if !r2.Cached || r2.Delta != "warm" {
		t.Fatalf("repeat delta should hit the warm cache, got %+v", r2)
	}
	if r2.Form != r.Form {
		t.Fatalf("cached delta form differs:\nfirst  %s\nsecond %s", r.Form, r2.Form)
	}

	// Chain a second edit off the resumed state's key.
	code, body3 := post(t, h, fmt.Sprintf(`{"base":%q,"remove":[0]}`, r.BaseKey))
	if code != 200 {
		t.Fatalf("chained delta: status %d\n%s", code, body3)
	}
	r3 := decodeResp(t, body3)
	if r3.Delta != "warm" {
		t.Fatalf("chained delta = %q, want warm", r3.Delta)
	}
	verifyForm(t, 5, r3.Form, editedParity(5, nil, []uint64{1}))

	_, stats := get(t, h, "/statsz")
	var sz Statsz
	if err := json.Unmarshal([]byte(stats), &sz); err != nil {
		t.Fatal(err)
	}
	if sz.DeltaWarm != 2 {
		t.Fatalf("delta_warm = %d, want 2", sz.DeltaWarm)
	}
	if sz.CacheBytes <= 0 {
		t.Fatal("cache_bytes must report the resident warm-state footprint")
	}
	if sz.Served != sz.CacheHits+sz.CacheMisses+sz.CoalesceWaiters {
		t.Fatalf("statsz invariant broken: %+v", sz)
	}
}

func TestDeltaColdFallback(t *testing.T) {
	cfg := warmConfig()
	cfg.DeltaMaxDirty = 0.01
	s := New(cfg)
	h := s.Handler()
	code, body := post(t, h, fmt.Sprintf(`{"n":5,"on":%s}`, pointsJSON(oddParity(5))))
	if code != 200 {
		t.Fatalf("seed: status %d\n%s", code, body)
	}
	base := decodeResp(t, body).BaseKey

	// churn 1/16 > 0.01: must fall back to a cold run, still 200.
	code, body = post(t, h, fmt.Sprintf(`{"base":%q,"add":[0]}`, base))
	if code != 200 {
		t.Fatalf("status = %d, want 200\n%s", code, body)
	}
	r := decodeResp(t, body)
	if r.Delta != "cold" {
		t.Fatalf("delta = %q, want cold\n%s", r.Delta, body)
	}
	if r.Key == "" {
		t.Fatal("cold fallback goes through the canonical path and must report its key")
	}
	if r.BaseKey == "" {
		t.Fatal("cold fallback on a warm server must advertise a fresh base_key")
	}
	verifyForm(t, 5, r.Form, editedParity(5, []uint64{0}, nil))

	_, stats := get(t, h, "/statsz")
	var sz Statsz
	if err := json.Unmarshal([]byte(stats), &sz); err != nil {
		t.Fatal(err)
	}
	if sz.DeltaCold != 1 {
		t.Fatalf("delta_cold_fallback = %d, want 1", sz.DeltaCold)
	}
}

func TestDeltaEquivalentToFullSubmission(t *testing.T) {
	// A delta-resumed result and an independent full submission of the
	// edited function may canonicalize differently (so the textual
	// forms can differ), but cost and correctness must agree.
	s := New(warmConfig())
	h := s.Handler()
	on := oddParity(4)
	_, body := post(t, h, fmt.Sprintf(`{"n":4,"on":%s}`, pointsJSON(on)))
	base := decodeResp(t, body).BaseKey

	code, body := post(t, h, fmt.Sprintf(`{"base":%q,"add":[0]}`, base))
	if code != 200 {
		t.Fatalf("delta: %d\n%s", code, body)
	}
	warm := decodeResp(t, body)

	edited := editedParity(4, []uint64{0}, nil)
	code, body = post(t, h, fmt.Sprintf(`{"n":4,"on":%s,"no_cache":true}`, pointsJSON(edited.On())))
	if code != 200 {
		t.Fatalf("full: %d\n%s", code, body)
	}
	full := decodeResp(t, body)
	if warm.Literals != full.Literals || warm.NumTerms != full.NumTerms || warm.EPPP != full.EPPP {
		t.Fatalf("delta result diverges from full submission:\nwarm %+v\nfull %+v", warm, full)
	}
	verifyForm(t, 4, warm.Form, edited)
	verifyForm(t, 4, full.Form, edited)
}

func TestWarmOffNoBaseKey(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()
	_, body := post(t, h, fmt.Sprintf(`{"n":4,"on":%s}`, pointsJSON(oddParity(4))))
	if r := decodeResp(t, body); r.BaseKey != "" {
		t.Fatalf("base_key must be absent with WarmCache off, got %q", r.BaseKey)
	}
}

// TestDeltaCanonicalSharing: the warm snapshot is stored once in
// canonical space and shared across permuted-equivalent bases. A client
// submitting a permuted version of an already-solved function must get
// a base_key minted from the canonical snapshot without any engine run,
// and a delta against that minted key must resume warm.
func TestDeltaCanonicalSharing(t *testing.T) {
	s := New(warmConfig())
	h := s.Handler()

	// Asymmetric function so the permutation genuinely moves points.
	on := []uint64{0b0001, 0b0011, 0b0111, 0b1111, 0b1000}
	code, body := post(t, h, fmt.Sprintf(`{"n":4,"on":%s}`, pointsJSON(on)))
	if code != 200 {
		t.Fatalf("seed: status %d\n%s", code, body)
	}
	seedKey := decodeResp(t, body).BaseKey
	if seedKey == "" {
		t.Fatal("seed must advertise a base_key")
	}

	// Permute x0<->x3, x1<->x2 (bit reversal over 4 bits).
	perm := []int{3, 2, 1, 0}
	pon := make([]uint64, len(on))
	for i, p := range on {
		pon[i] = bitvec.PermutePoint(p, 4, perm)
	}
	code, body = post(t, h, fmt.Sprintf(`{"n":4,"on":%s}`, pointsJSON(pon)))
	if code != 200 {
		t.Fatalf("permuted: status %d\n%s", code, body)
	}
	pr := decodeResp(t, body)
	if !pr.Cached {
		t.Fatal("permuted-equivalent request missed the canonical cache")
	}
	if pr.BaseKey == "" {
		t.Fatal("canonical snapshot hit must mint a base_key for the permuted client")
	}
	if pr.BaseKey == seedKey {
		t.Fatal("minted base_key must be per-client, not the seed client's key")
	}

	// Delta against the minted key: warm resume through the shared
	// canonical snapshot, no cold run.
	// One-point edit: churn 1/5 stays under the 0.25 dirty limit (the
	// care set here is just the five ON points).
	code, body = post(t, h, fmt.Sprintf(`{"base":%q,"add":[0]}`, pr.BaseKey))
	if code != 200 {
		t.Fatalf("delta: status %d\n%s", code, body)
	}
	dr := decodeResp(t, body)
	if dr.Delta != "warm" {
		t.Fatalf("delta = %q, want warm\n%s", dr.Delta, body)
	}
	edited := []uint64{8, 12, 14, 15, 1, 0} // pon with 0 added
	verifyForm(t, 4, dr.Form, bfunc.New(4, edited))

	_, stats := get(t, h, "/statsz")
	var sz Statsz
	if err := json.Unmarshal([]byte(stats), &sz); err != nil {
		t.Fatal(err)
	}
	if sz.DeltaWarm != 1 {
		t.Fatalf("delta_warm = %d, want 1", sz.DeltaWarm)
	}
	// Every warm resume is classified as either fully replayed from the
	// cover snapshot or partially re-solved.
	if sz.DeltaCoverReused+sz.DeltaCoverResolved != sz.DeltaWarm {
		t.Fatalf("delta_cover_reused (%d) + delta_cover_resolved (%d) != delta_warm (%d)",
			sz.DeltaCoverReused, sz.DeltaCoverResolved, sz.DeltaWarm)
	}
	// Engine runs: the seed and the resume. The permuted submission was
	// served entirely from the canonical cache.
	if sz.Runs == nil || len(sz.Runs.Reports) != 2 {
		t.Fatalf("want exactly 2 engine runs (seed + resume), history: %+v", sz.Runs)
	}
	if sz.Served != sz.CacheHits+sz.CacheMisses+sz.CoalesceWaiters {
		t.Fatalf("statsz invariant broken: %+v", sz)
	}
}

// editedParity returns n-variable odd parity with add turned ON and
// remove turned OFF.
func editedParity(n int, add, remove []uint64) *bfunc.Func {
	drop := map[uint64]bool{}
	for _, p := range remove {
		drop[p] = true
	}
	var on []uint64
	for _, p := range oddParity(n) {
		if !drop[p] {
			on = append(on, p)
		}
	}
	on = append(on, add...)
	return bfunc.New(n, on)
}

// verifyForm parses a response form and checks it computes fn exactly.
func verifyForm(t *testing.T, n int, form string, fn *bfunc.Func) {
	t.Helper()
	parsed, err := core.ParseForm(n, form)
	if err != nil {
		t.Fatalf("response form %q does not parse: %v", form, err)
	}
	if err := parsed.Verify(fn); err != nil {
		t.Fatalf("response form %q wrong: %v", form, err)
	}
}
