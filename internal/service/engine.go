package service

// The portfolio routing layer: the "form" request field selects one
// backend of internal/engine (or, with form=auto, races every eligible
// backend under ONE admission slot and one budget). Results cache
// per-(canonical key, backend salt), so a warm SPP entry never masks a
// cheaper ESOP answer; the auto verdict additionally caches under its
// own derived key so repeat auto requests are single-probe hits.
// docs/forms.md is the normative contract.

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/bfunc"
	"repro/internal/engine"
	"repro/internal/fcache"
	"repro/internal/stats"
)

// normalizeForm resolves the request's form field and enforces the
// option matrix: algorithm/k and factor_cost belong to the SPP
// backend, exact_cover to the covering backends (spp, sop, and auto —
// which races both), accept_literals to the auto race.
func (s *Server) normalizeForm(q Request) (string, error) {
	form := q.Form
	if form == "" {
		form = "spp"
	}
	switch form {
	case "spp":
		if q.AcceptLiterals != 0 {
			return "", fmt.Errorf("accept_literals applies only to form \"auto\"")
		}
	case "sop", "esop", "dsop":
		if q.Algorithm != "" || q.K != 0 {
			return "", fmt.Errorf("algorithm/k apply only to form \"spp\", not %q", form)
		}
		if q.FactorCost {
			return "", fmt.Errorf("factor_cost applies only to form \"spp\", not %q", form)
		}
		if q.ExactCover && form != "sop" {
			return "", fmt.Errorf("exact_cover applies to forms \"spp\" and \"sop\", not %q", form)
		}
		if q.AcceptLiterals != 0 {
			return "", fmt.Errorf("accept_literals applies only to form \"auto\"")
		}
	case "auto":
		if q.Algorithm != "" || q.K != 0 {
			return "", fmt.Errorf("algorithm/k apply only to form \"spp\"; auto races the default engines")
		}
		if q.FactorCost {
			// Racing needs one shared cost model; factor cost would score
			// the SPP entrant on a different axis than its rivals.
			return "", fmt.Errorf("factor_cost is incompatible with form \"auto\" (the race compares literal counts)")
		}
		if q.AcceptLiterals < 0 {
			return "", fmt.Errorf("accept_literals must be >= 0")
		}
	default:
		return "", fmt.Errorf("unknown form %q (have spp, sop, esop, dsop, auto)", form)
	}
	if form != "auto" {
		if _, ok := s.registry.Get(form); !ok {
			return "", fmt.Errorf("form %q is disabled on this server (enabled: %s)",
				form, strings.Join(s.registry.NamesEnabled(), ", "))
		}
	}
	return form, nil
}

// engineOptions assembles one backend run's options. The SPP entrant
// of an auto race always runs the exact algorithm (normalizeForm
// rejects algorithm/k for non-spp forms).
func (s *Server) engineOptions(ctx context.Context, q Request, rec *stats.Recorder) engine.Options {
	return engine.Options{
		Core:   s.coreOptions(ctx, q, rec),
		Target: q.AcceptLiterals,
	}
}

// processEngine serves a non-SPP explicit form or the auto race:
// canonicalize, probe the per-backend cache keys, and on miss lead or
// join a coalesced computation, exactly like the SPP path.
func (s *Server) processEngine(ctx context.Context, q Request, f *bfunc.Func, formName string, start time.Time) Response {
	elapsed := func() int64 { return time.Since(start).Nanoseconds() }
	fail := func(status int, err error, oc outcome) Response {
		return Response{Error: err.Error(), status: status, outcome: oc, ElapsedNS: elapsed()}
	}
	failErr := func(err error) Response {
		status := statusFor(err)
		if status == http.StatusInternalServerError {
			if ce := ctx.Err(); ce != nil {
				status = statusFor(ce)
			}
		}
		return applyShed(fail(status, err, outcomeError), err)
	}

	baseKey, perm, canon, err := fcache.CanonicalizeCtx(ctx, f)
	if err != nil {
		return failErr(err)
	}
	inv := fcache.InversePerm(perm)
	sameCanon := func(e cacheEntry) bool { return e.canon.Equal(canon) }
	engOpts := s.engineOptions(ctx, q, nil)

	respond := func(e cacheEntry, key fcache.Key, cached, coalesced bool, rep *stats.Report) Response {
		form := e.form.Permute(inv)
		oc := outcomeComputed
		if coalesced {
			oc = outcomeCoalesced
		} else if cached {
			oc = outcomeHit
		}
		out := Response{
			Form:         form.String(),
			Literals:     form.Literals(),
			NumTerms:     form.NumTerms(),
			FormKind:     e.kind,
			EPPP:         e.eppp,
			CoverOptimal: e.coverOptimal,
			Cached:       cached || coalesced,
			Coalesced:    coalesced,
			Key:          key.String(),
			ElapsedNS:    elapsed(),
			outcome:      oc,
		}
		if q.Stats && rep != nil {
			out.Stats = rep
		}
		return out
	}

	if formName == "auto" {
		return s.processAuto(ctx, q, canon, baseKey, engOpts, respond, fail, failErr)
	}

	b, _ := s.registry.Get(formName) // normalizeForm already vetted it
	if !b.SupportsDC() && len(f.DC()) > 0 {
		return fail(http.StatusBadRequest,
			fmt.Errorf("form %q requires a completely specified function (drop the dc set)", formName),
			outcomeError)
	}
	key := baseKey.Derive(b.Salt(engOpts))

	if q.NoCache {
		e, rep, err := s.computeEngine(ctx, b, key, canon, engOpts, !s.cfg.LegacySerial, nil)
		if err != nil {
			return failErr(err)
		}
		return respond(e, key, false, false, rep)
	}
	if e, ok := s.cache.GetIf(key, sameCanon); ok {
		return respond(e, key, true, false, nil)
	}
	if s.cfg.LegacySerial {
		e, rep, err := s.computeEngine(ctx, b, key, canon, engOpts, false, nil)
		if err != nil {
			return failErr(err)
		}
		return respond(e, key, false, false, rep)
	}

	var leaderRep *stats.Report
	e, oc, err := s.flights.Do(ctx, key, func(waiters func() int64) (cacheEntry, error) {
		e, rep, err := s.computeEngine(ctx, b, key, canon, engOpts, true, waiters)
		leaderRep = rep
		return e, err
	})
	switch oc {
	case fcache.Led:
		if err != nil {
			return failErr(err)
		}
		return respond(e, key, false, false, leaderRep)
	case fcache.Joined:
		if !e.canon.Equal(canon) {
			e, rep, err := s.computeEngine(ctx, b, key, canon, engOpts, true, nil)
			if err != nil {
				return failErr(err)
			}
			return respond(e, key, false, false, rep)
		}
		return respond(e, key, false, true, nil)
	default: // fcache.Detached
		return fail(statusFor(err), fmt.Errorf("coalesced wait: %w", err), outcomeDetached)
	}
}

// computeEngine runs one backend under an admission slot and caches
// the canonical-space result under its salted key.
func (s *Server) computeEngine(ctx context.Context, b engine.Backend, key fcache.Key, canon *bfunc.Func, engOpts engine.Options, acquireSlot bool, waiters func() int64) (cacheEntry, *stats.Report, error) {
	if acquireSlot {
		release, err := s.acquireSlot(ctx)
		if err != nil {
			return cacheEntry{}, nil, err
		}
		defer release()
	}

	rec := stats.New()
	engOpts.Core.Stats = rec
	res, err := b.Minimize(ctx, canon, engOpts)
	if err != nil {
		return cacheEntry{}, nil, err
	}
	if err := ctx.Err(); err != nil {
		return cacheEntry{}, nil, err
	}

	rep := s.recordRun(rec, b.Name(), waiters)
	e := cacheEntry{
		canon:        canon,
		form:         res.Form,
		kind:         b.Name(),
		eppp:         res.EPPP,
		coverOptimal: res.Optimal,
	}
	s.cache.Put(key, e)
	return e, rep, nil
}

// autoTag derives the auto verdict's own cache-key salt: it must
// change when the set of raced backends or the acceptance mode does,
// since either changes which entry the verdict may name.
func autoTag(salts []string, accept int) string {
	return fmt.Sprintf("form=auto;accept=%d;over=%s", accept, strings.Join(salts, "|"))
}

// processAuto races the eligible backends. Backends with a cached
// result for this canonical class skip recomputation — their cached
// cost joins the comparison — and each fresh result lands under its
// own per-backend key before the verdict is picked, so the best-cost
// answer is deterministic whether it came from cache or race. The
// whole race (all entrant goroutines) runs under ONE admission slot.
func (s *Server) processAuto(ctx context.Context, q Request, canon *bfunc.Func, baseKey fcache.Key, engOpts engine.Options,
	respond func(e cacheEntry, key fcache.Key, cached, coalesced bool, rep *stats.Report) Response,
	fail func(status int, err error, oc outcome) Response,
	failErr func(err error) Response) Response {

	eligible := s.registry.Eligible(canon)
	if len(eligible) == 0 {
		return fail(http.StatusBadRequest,
			fmt.Errorf("no eligible backends: the function has don't-cares and every enabled form (%s) requires complete specification",
				strings.Join(s.registry.NamesEnabled(), ", ")), outcomeError)
	}
	sameCanon := func(e cacheEntry) bool { return e.canon.Equal(canon) }
	keys := make([]fcache.Key, len(eligible))
	salts := make([]string, len(eligible))
	for i, b := range eligible {
		salts[i] = b.Salt(engOpts)
		keys[i] = baseKey.Derive(salts[i])
	}
	autoKey := baseKey.Derive(autoTag(salts, q.AcceptLiterals))

	// best picks the deterministic verdict: minimum literal count, ties
	// to the earliest backend in canonical registry order.
	best := func(entries []*cacheEntry) int {
		win := -1
		for i, e := range entries {
			if e == nil {
				continue
			}
			if win == -1 || e.form.Literals() < entries[win].form.Literals() {
				win = i
			}
		}
		return win
	}

	// raceMissing computes every backend lacking a cached entry and
	// returns the verdict entry. It runs inside the flight (or directly
	// for no_cache / legacy / collision paths).
	raceMissing := func(waiters func() int64) (cacheEntry, error) {
		entries := make([]*cacheEntry, len(eligible))
		var missing []engine.Backend
		var missingIdx []int
		for i, b := range eligible {
			if q.NoCache {
				missing = append(missing, b)
				missingIdx = append(missingIdx, i)
				continue
			}
			if e, ok := s.cache.GetIf(keys[i], sameCanon); ok {
				entries[i] = &e
				continue
			}
			missing = append(missing, b)
			missingIdx = append(missingIdx, i)
		}

		// First-acceptable mode: a cached entry at or under the target
		// settles the verdict without racing the missing backends.
		if q.AcceptLiterals > 0 {
			for _, e := range entries {
				if e != nil && e.form.Literals() <= q.AcceptLiterals {
					missing, missingIdx = nil, nil
					break
				}
			}
		}

		var raceErr error
		if len(missing) > 0 {
			release, err := s.acquireSlot(ctx)
			if err != nil {
				return cacheEntry{}, err
			}
			rec := stats.New()
			opts := engOpts
			opts.Core.Stats = rec
			rr, err := engine.Race(ctx, missing, canon, opts)
			release()
			raceErr = err
			for j, res := range rr.Results {
				if res == nil {
					continue
				}
				i := missingIdx[j]
				e := cacheEntry{
					canon:        canon,
					form:         res.Form,
					kind:         missing[j].Name(),
					eppp:         res.EPPP,
					coverOptimal: res.Optimal,
				}
				s.cache.Put(keys[i], e)
				entries[i] = &e
			}
			s.recordRun(rec, "auto", waiters)
			win := best(entries)
			s.statsMu.Lock()
			s.ctr.engineRaces++
			s.ctr.engineCancelled += int64(rr.Cancelled)
			if win >= 0 {
				if s.ctr.winsByForm == nil {
					s.ctr.winsByForm = make(map[string]int64)
				}
				s.ctr.winsByForm[entries[win].kind]++
			}
			s.statsMu.Unlock()
		}

		win := best(entries)
		if win == -1 {
			if raceErr != nil {
				return cacheEntry{}, raceErr
			}
			return cacheEntry{}, ctx.Err()
		}
		verdict := *entries[win]
		if !q.NoCache {
			s.cache.Put(autoKey, verdict)
		}
		return verdict, nil
	}

	// keyFor maps the verdict entry back to its backend key for the
	// response's key field (clients can re-request that form directly).
	keyFor := func(e cacheEntry) fcache.Key {
		for i, b := range eligible {
			if b.Name() == e.kind {
				return keys[i]
			}
		}
		return autoKey
	}

	if q.NoCache {
		e, err := raceMissing(nil)
		if err != nil {
			return failErr(err)
		}
		return respond(e, keyFor(e), false, false, nil)
	}
	if e, ok := s.cache.GetIf(autoKey, sameCanon); ok {
		return respond(e, keyFor(e), true, false, nil)
	}
	if s.cfg.LegacySerial {
		e, err := raceMissing(nil)
		if err != nil {
			return failErr(err)
		}
		return respond(e, keyFor(e), false, false, nil)
	}

	e, oc, err := s.flights.Do(ctx, autoKey, raceMissing)
	switch oc {
	case fcache.Led:
		if err != nil {
			return failErr(err)
		}
		return respond(e, keyFor(e), false, false, nil)
	case fcache.Joined:
		if !e.canon.Equal(canon) {
			e, err := raceMissing(nil)
			if err != nil {
				return failErr(err)
			}
			return respond(e, keyFor(e), false, false, nil)
		}
		return respond(e, keyFor(e), false, true, nil)
	default: // fcache.Detached
		return fail(statusFor(err), fmt.Errorf("coalesced wait: %w", err), outcomeDetached)
	}
}
