package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/bfunc"
	"repro/internal/engine"
)

// TestFormsExplicit drives one request per explicit form value through
// the HTTP handler and pins each response against the engine backend
// called directly — the service must be a pure router on top of the
// portfolio, adding nothing to the rendered form or its cost.
func TestFormsExplicit(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()
	on := []uint64{1, 2, 4, 7, 8, 11, 13, 14, 5}
	f := bfunc.New(4, on)
	reg, err := engine.NewRegistry()
	if err != nil {
		t.Fatal(err)
	}

	for _, form := range engine.Names() {
		t.Run(form, func(t *testing.T) {
			code, out := post(t, h, fmt.Sprintf(`{"n":4,"on":%s,"form":%q}`, pointsJSON(on), form))
			if code != http.StatusOK {
				t.Fatalf("status %d: %s", code, out)
			}
			r := decodeResp(t, out)
			if r.FormKind != form {
				t.Fatalf("form_kind %q, want %q", r.FormKind, form)
			}
			b, _ := reg.Get(form)
			want, err := b.Minimize(t.Context(), f, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			// The service permutes results out of canonical space, which
			// sorts terms; the identity permutation applies the same
			// normalization to the direct backend answer.
			wantForm := want.Form.Permute([]int{0, 1, 2, 3})
			if r.Form != wantForm.String() || r.Literals != wantForm.Literals() || r.NumTerms != wantForm.NumTerms() {
				t.Fatalf("served %q (#L=%d), backend says %q (#L=%d)",
					r.Form, r.Literals, wantForm, wantForm.Literals())
			}
			if r.CoverOptimal != want.Optimal {
				t.Fatalf("cover_optimal %v, backend says %v", r.CoverOptimal, want.Optimal)
			}

			// Second request: a hit under the same per-backend key.
			code, out = post(t, h, fmt.Sprintf(`{"n":4,"on":%s,"form":%q}`, pointsJSON(on), form))
			if code != http.StatusOK {
				t.Fatalf("warm status %d: %s", code, out)
			}
			if r := decodeResp(t, out); !r.Cached || r.FormKind != form {
				t.Fatalf("second request not a cache hit for %s: %+v", form, r)
			}
		})
	}
}

// TestFormsValidation pins the 400 matrix: unknown forms, SPP-only
// options on other forms, auto-only options elsewhere, and DC sets on
// backends requiring complete specification.
func TestFormsValidation(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()
	cases := []struct {
		name string
		body string
	}{
		{"unknown form", `{"n":3,"on":[1,2],"form":"pla"}`},
		{"algorithm on sop", `{"n":3,"on":[1,2],"form":"sop","algorithm":"sppk","k":2}`},
		{"k on esop", `{"n":3,"on":[1,2],"form":"esop","k":2}`},
		{"factor_cost on dsop", `{"n":3,"on":[1,2],"form":"dsop","factor_cost":true}`},
		{"factor_cost on auto", `{"n":3,"on":[1,2],"form":"auto","factor_cost":true}`},
		{"exact_cover on esop", `{"n":3,"on":[1,2],"form":"esop","exact_cover":true}`},
		{"accept_literals on spp", `{"n":3,"on":[1,2],"form":"spp","accept_literals":5}`},
		{"accept_literals on sop", `{"n":3,"on":[1,2],"form":"sop","accept_literals":5}`},
		{"esop with dc", `{"n":3,"on":[1],"dc":[2],"form":"esop"}`},
		{"dsop with dc", `{"n":3,"on":[1],"dc":[2],"form":"dsop"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := post(t, h, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", code, out)
			}
		})
	}

	// DC sets stay legal on the forms that support them.
	for _, form := range []string{"spp", "sop", "auto"} {
		code, out := post(t, h, fmt.Sprintf(`{"n":3,"on":[1],"dc":[2],"form":%q}`, form))
		if code != http.StatusOK {
			t.Fatalf("form %s rejected a DC set: %d %s", form, code, out)
		}
	}
}

// TestFormAutoBestCost pins the determinism contract for the race:
// form=auto returns exactly the minimum literal count over the
// eligible backends, on every repetition, including forced re-races.
func TestFormAutoBestCost(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := testConfig()
			cfg.Core.Workers = workers
			cfg.MaxConcurrent = 4
			s := New(cfg)
			h := s.Handler()
			on := oddParity(4) // parity: ESOP should beat SPP and crush SOP
			f := bfunc.New(4, on)

			reg, err := engine.NewRegistry()
			if err != nil {
				t.Fatal(err)
			}
			best := -1
			for _, b := range reg.Backends() {
				res, err := b.Minimize(t.Context(), f, engine.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if best == -1 || res.Form.Literals() < best {
					best = res.Form.Literals()
				}
			}

			body := fmt.Sprintf(`{"n":4,"on":%s,"form":"auto"}`, pointsJSON(on))
			for rep := 0; rep < 3; rep++ {
				code, out := post(t, h, body)
				if code != http.StatusOK {
					t.Fatalf("rep %d: status %d: %s", rep, code, out)
				}
				r := decodeResp(t, out)
				if r.Literals != best {
					t.Fatalf("rep %d: auto cost %d, want min-over-backends %d", rep, r.Literals, best)
				}
				if r.FormKind == "" || r.FormKind == "auto" {
					t.Fatalf("rep %d: auto verdict must name the winning backend, got %q", rep, r.FormKind)
				}
			}
			// Forced fresh races must land on the same cost too.
			for rep := 0; rep < 2; rep++ {
				code, out := post(t, h, fmt.Sprintf(`{"n":4,"on":%s,"form":"auto","no_cache":true}`, pointsJSON(on)))
				if code != http.StatusOK {
					t.Fatalf("no_cache rep %d: status %d: %s", rep, code, out)
				}
				if r := decodeResp(t, out); r.Literals != best {
					t.Fatalf("no_cache rep %d: auto cost %d, want %d", rep, r.Literals, best)
				}
			}
		})
	}
}

// TestFormAutoCacheInterplay pins the salting property end to end: a
// warm entry of one form must not satisfy a later form=auto request —
// the race still probes the other backends and returns the cheaper
// answer. Odd parity is the sharpest case: its SOP needs every
// minterm (32 literals at n=4) while its SPP is one pseudoproduct (4).
func TestFormAutoCacheInterplay(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()
	on := oddParity(4)
	f := bfunc.New(4, on)

	// Warm the SOP slot first.
	code, out := post(t, h, fmt.Sprintf(`{"n":4,"on":%s,"form":"sop"}`, pointsJSON(on)))
	if code != http.StatusOK {
		t.Fatalf("sop warmup: %d %s", code, out)
	}
	sop := decodeResp(t, out)

	reg, err := engine.NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	best := -1
	for _, b := range reg.Backends() {
		res, err := b.Minimize(t.Context(), f, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if best == -1 || res.Form.Literals() < best {
			best = res.Form.Literals()
		}
	}
	if best >= sop.Literals {
		t.Fatalf("test premise broken: want a backend cheaper than sop (%d), best %d", sop.Literals, best)
	}

	code, out = post(t, h, fmt.Sprintf(`{"n":4,"on":%s,"form":"auto"}`, pointsJSON(on)))
	if code != http.StatusOK {
		t.Fatalf("auto: %d %s", code, out)
	}
	auto := decodeResp(t, out)
	if auto.Cached {
		t.Fatal("warm sop entry masked the auto race")
	}
	if auto.Literals != best {
		t.Fatalf("auto after sop warmup: cost %d, want %d", auto.Literals, best)
	}
	if auto.FormKind == "sop" {
		t.Fatalf("auto picked the expensive cached sop answer (#L=%d) over best %d", sop.Literals, best)
	}

	// The per-form entries survive independently: an explicit sop
	// request still hits its own slot with the sop answer.
	code, out = post(t, h, fmt.Sprintf(`{"n":4,"on":%s,"form":"sop"}`, pointsJSON(on)))
	if code != http.StatusOK {
		t.Fatalf("sop reread: %d %s", code, out)
	}
	if r := decodeResp(t, out); !r.Cached || r.Literals != sop.Literals || r.FormKind != "sop" {
		t.Fatalf("sop entry lost after auto race: %+v", r)
	}
}

// TestFormAutoStatsz checks the race counters: races increment only on
// actual races, wins name the winning form, and the sums agree.
func TestFormAutoStatsz(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()
	on := oddParity(4)

	code, out := post(t, h, fmt.Sprintf(`{"n":4,"on":%s,"form":"auto"}`, pointsJSON(on)))
	if code != http.StatusOK {
		t.Fatalf("auto: %d %s", code, out)
	}
	// A repeat serves the cached verdict — no second race.
	code, out = post(t, h, fmt.Sprintf(`{"n":4,"on":%s,"form":"auto"}`, pointsJSON(on)))
	if code != http.StatusOK {
		t.Fatalf("auto repeat: %d %s", code, out)
	}
	if r := decodeResp(t, out); !r.Cached {
		t.Fatalf("auto repeat not served from cache: %+v", r)
	}

	st := statszOf(t, h)
	if st.EngineRaces != 1 {
		t.Fatalf("engine_races = %d, want 1 (repeat must not re-race)", st.EngineRaces)
	}
	var wins int64
	for form, c := range st.EngineWinsByForm {
		ok := false
		for _, n := range engine.Names() {
			if form == n {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("engine_wins_by_form names unknown form %q", form)
		}
		wins += c
	}
	if wins != st.EngineRaces {
		t.Fatalf("wins sum %d != races %d", wins, st.EngineRaces)
	}
	if st.EngineCancelled != 0 {
		t.Fatalf("best-cost race cancelled %d backends", st.EngineCancelled)
	}
}

// TestFormAutoAcceptLiterals: a generous target still returns a result
// at or under it; a zero target is plain best-cost.
func TestFormAutoAcceptLiterals(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()
	on := oddParity(3)
	code, out := post(t, h, fmt.Sprintf(`{"n":3,"on":%s,"form":"auto","accept_literals":1000}`, pointsJSON(on)))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, out)
	}
	r := decodeResp(t, out)
	if r.Literals > 1000 {
		t.Fatalf("accepted cost %d exceeds target", r.Literals)
	}
	if code, out := post(t, h, fmt.Sprintf(`{"n":3,"on":%s,"form":"auto","accept_literals":-1}`, pointsJSON(on))); code != http.StatusBadRequest {
		t.Fatalf("negative accept_literals: status %d: %s", code, out)
	}
}

// TestDeltaRejectsNonSPPForm pins the support matrix's 409: warm-state
// resume exists only for the SPP backend.
func TestDeltaRejectsNonSPPForm(t *testing.T) {
	cfg := testConfig()
	cfg.WarmCache = true
	s := New(cfg)
	h := s.Handler()
	for _, form := range []string{"sop", "esop", "dsop", "auto"} {
		code, out := post(t, h, fmt.Sprintf(`{"base":"zz","add":[3],"form":%q}`, form))
		if code != http.StatusConflict {
			t.Fatalf("form %s: status %d, want 409: %s", form, code, out)
		}
		var r Response
		if err := json.Unmarshal([]byte(out), &r); err != nil {
			t.Fatal(err)
		}
		if r.Code != "delta_unsupported_form" {
			t.Fatalf("form %s: code %q, want delta_unsupported_form", form, r.Code)
		}
	}
}

// TestFormsConfigSubset: a server restricted to a form subset rejects
// the rest and races only what is enabled.
func TestFormsConfigSubset(t *testing.T) {
	cfg := testConfig()
	cfg.Forms = []string{"spp", "esop"}
	s := New(cfg)
	h := s.Handler()
	on := oddParity(3)

	if code, out := post(t, h, fmt.Sprintf(`{"n":3,"on":%s,"form":"dsop"}`, pointsJSON(on))); code != http.StatusBadRequest {
		t.Fatalf("disabled form accepted: %d %s", code, out)
	}
	code, out := post(t, h, fmt.Sprintf(`{"n":3,"on":%s,"form":"auto"}`, pointsJSON(on)))
	if code != http.StatusOK {
		t.Fatalf("auto on subset: %d %s", code, out)
	}
	r := decodeResp(t, out)
	if r.FormKind != "spp" && r.FormKind != "esop" {
		t.Fatalf("auto raced a disabled backend: winner %q", r.FormKind)
	}

	// DC + a subset with no DC-capable backend → no eligible backends.
	cfg = testConfig()
	cfg.Forms = []string{"esop", "dsop"}
	s = New(cfg)
	h = s.Handler()
	if code, out := post(t, h, `{"n":3,"on":[1],"dc":[2],"form":"auto"}`); code != http.StatusBadRequest {
		t.Fatalf("DC race with no eligible backends: %d %s", code, out)
	}
}
