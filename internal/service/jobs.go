package service

// The async job tier: minimizations too heavy for one HTTP request
// deadline are accepted into a journaled priority queue
// (internal/jobs) and drained by a bounded worker pool that runs each
// job through the same process() path as interactive requests — same
// admission gate, same result cache, same coalescing. Lifecycle:
//
//	accept  — POST /v1/jobs validates the request, journals it, and
//	          returns the job id with 202 before any compute starts.
//	journal — the enqueue record is durable before the job is visible;
//	          a crash after the 202 loses nothing.
//	lease   — a worker leases the job (priority order) and heartbeats
//	          while computing; a dead worker's lease expires and the
//	          job is retried up to Config.JobRetries times, then parked
//	          as failed with the error preserved.
//	compute — the job runs under Config.JobTimeout (not the interactive
//	          default), taking an admission slot like any engine run.
//	land    — the result lands in fcache under the canonical key, the
//	          response JSON plus a canonical-space warm blob land in the
//	          journal, and the job goes terminal exactly once.
//	replay  — on StartJobs the journal is replayed: completed jobs
//	          restore their results AND re-warm fcache (the warm blob
//	          is parsed back with core.ParseForm — no recompute), while
//	          incomplete jobs re-enqueue. A kill -9 mid-drain only
//	          re-runs work, never loses or duplicates it.
//
// Clients poll GET /v1/jobs/{id}, or long-poll it with ?wait_ms=N; the
// wait is select-based (no watcher goroutine), so an abandoned
// long-poll cancels cleanly with its request context.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/bfunc"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fcache"
	"repro/internal/jobs"
)

// jobEnvelope is the POST /v1/jobs body: one minimize/delta Request
// plus a priority class. Batch envelopes are rejected — one job, one
// function.
type jobEnvelope struct {
	Priority string `json:"priority,omitempty"`
	Request
	Requests []Request `json:"requests,omitempty"`
}

// JobStatus is the job-facing API shape: the POST /v1/jobs response
// and every GET /v1/jobs/{id} response.
type JobStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Priority string `json:"priority"`
	// Attempts counts lease-expiry retries so far.
	Attempts int `json:"attempts,omitempty"`
	// Position is the 1-based queue position while queued.
	Position int `json:"position,omitempty"`
	// RetryAfterMS hints when to poll next (also sent as a Retry-After
	// header, in seconds); only on non-terminal states.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Result is the full minimize Response once done (and, for jobs
	// that failed inside the engines, the error-bearing response).
	Result json.RawMessage `json:"result,omitempty"`
	// Error is set on failed jobs.
	Error string `json:"error,omitempty"`
}

// jobWarmBlob is the journal side-channel that lets replay warm fcache
// without recomputing: the canonical-space function, its form (as
// text, re-parsed by core.ParseForm), and the exact cache key the
// entry lived under.
type jobWarmBlob struct {
	Key          string   `json:"key"`
	N            int      `json:"n"`
	On           []uint64 `json:"on"`
	Dc           []uint64 `json:"dc,omitempty"`
	Form         string   `json:"form"`
	EPPP         int      `json:"eppp,omitempty"`
	CoverOptimal bool     `json:"cover_optimal,omitempty"`
}

// StartJobs opens the journaled queue in Config.JobsDir, replays it —
// warming fcache from completed jobs and re-enqueueing incomplete ones
// — and starts the worker pool. It returns the replay summary.
func (s *Server) StartJobs() (*jobs.Replay, error) {
	if s.cfg.JobsDir == "" {
		return nil, errors.New("service: jobs tier needs Config.JobsDir")
	}
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	if s.jobq != nil {
		return nil, errors.New("service: jobs tier already started")
	}
	q, rep, err := jobs.Open(jobs.Options{
		Dir:        s.cfg.JobsDir,
		LeaseTTL:   s.cfg.JobLeaseTTL,
		MaxRetries: s.cfg.JobRetries,
		ResultTTL:  s.cfg.JobResultTTL,
	})
	if err != nil {
		return nil, err
	}

	for _, j := range rep.Completed {
		if j.State == jobs.StateDone && s.warmFromJournal(j.Warm) {
			s.jobsReplayed.Add(1)
		}
	}
	s.jobsRequeued.Store(int64(rep.Requeued))

	leaseCtx, stopLease := context.WithCancel(context.Background())
	hardCtx, stopHard := context.WithCancel(context.Background())
	s.jobq = q
	s.jobStopLease = stopLease
	s.jobStopHard = stopHard
	for i := 0; i < s.cfg.JobWorkers; i++ {
		s.jobWG.Add(1)
		go func() {
			defer s.jobWG.Done()
			s.jobWorker(leaseCtx, hardCtx)
		}()
	}
	return rep, nil
}

// StopJobs drains the worker pool: no new leases are taken, running
// computes get until ctx's deadline to finish, then are cancelled and
// their jobs released back to the queue (the journal re-runs them next
// start). Finally the queue is closed.
func (s *Server) StopJobs(ctx context.Context) error {
	s.jobMu.Lock()
	q := s.jobq
	stopLease, stopHard := s.jobStopLease, s.jobStopHard
	s.jobMu.Unlock()
	if q == nil {
		return nil
	}
	stopLease()
	done := make(chan struct{})
	go func() { s.jobWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		stopHard() // cut running computes loose; they Release their jobs
		<-done
	}
	stopHard()
	return q.Close()
}

// warmFromJournal rebuilds one result-cache entry from a replayed warm
// blob. Malformed or stale blobs are skipped (the journal is trusted
// for job state, not beyond): the key must re-derive from the stored
// canonical function's shape via the stored tag-bearing key, and the
// form must parse and re-canonicalize.
func (s *Server) warmFromJournal(blob json.RawMessage) bool {
	if len(blob) == 0 {
		return false
	}
	var wb jobWarmBlob
	if err := json.Unmarshal(blob, &wb); err != nil {
		return false
	}
	key, err := fcache.ParseKey(wb.Key)
	if err != nil {
		return false
	}
	if wb.N < 1 || len(wb.On) == 0 {
		return false
	}
	form, err := core.ParseForm(wb.N, wb.Form)
	if err != nil {
		return false
	}
	canon := bfunc.NewDC(wb.N, wb.On, wb.Dc)
	s.cache.Put(key, cacheEntry{
		canon:        canon,
		form:         engine.SPPForm{F: form},
		kind:         "spp",
		eppp:         wb.EPPP,
		coverOptimal: wb.CoverOptimal,
	})
	return true
}

// jobWorker leases and executes jobs until the lease context ends.
func (s *Server) jobWorker(leaseCtx, hardCtx context.Context) {
	for {
		lease, err := s.jobq.Lease(leaseCtx)
		if err != nil {
			return
		}
		s.executeJob(hardCtx, lease)
	}
}

// jobTimeout bounds one job compute: the request's own timeout_ms if
// set, capped by (and defaulting to) Config.JobTimeout — deliberately
// not the interactive DefaultTimeout, since outliving interactive
// budgets is the tier's whole point.
func (s *Server) jobTimeout(q Request) time.Duration {
	d := s.cfg.JobTimeout
	if q.TimeoutMS > 0 {
		d = min(time.Duration(q.TimeoutMS)*time.Millisecond, d)
	}
	return d
}

// executeJob runs one leased job through process() with a heartbeat
// keeping the lease alive, then resolves it exactly once. A hardCtx
// cancellation (graceful shutdown) releases the job back to the queue
// instead of failing it.
func (s *Server) executeJob(hardCtx context.Context, lease *jobs.Lease) {
	var req Request
	if err := json.Unmarshal(lease.Job.Payload, &req); err != nil {
		lease.Fail("undecodable job payload: " + err.Error())
		return
	}
	// The job's priority class rides into the admission gate, where a
	// full gate sheds bulk work earlier than interactive work.
	jobCtx, cancel := context.WithTimeout(withPriority(hardCtx, lease.Job.Priority), s.jobTimeout(req))
	defer cancel()

	// Heartbeat at a third of the TTL; losing the lease (reclaimed
	// after a stall) cancels the compute so the retry does not race a
	// half-finished duplicate for the admission gate.
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	ttl := s.cfg.JobLeaseTTL
	go func() {
		defer close(hbDone)
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				if !lease.Heartbeat() {
					cancel()
					return
				}
			}
		}
	}()

	resp := s.process(jobCtx, req)
	close(hbStop)
	<-hbDone
	s.record(resp.outcome)

	if hardCtx.Err() != nil && resp.Error != "" {
		// Shutdown interrupted the compute: not a job failure. Put it
		// back; the journal re-runs it next start.
		lease.Release()
		return
	}
	body, err := json.Marshal(resp)
	if err != nil {
		lease.Fail("unencodable result: " + err.Error())
		return
	}
	if resp.Error != "" {
		// Deterministic failure (bad request, budget, timeout under the
		// job deadline): terminal immediately — retrying cannot help.
		lease.Fail(resp.Error)
		return
	}
	lease.Done(body, s.warmBlobFor(resp))
}

// warmBlobFor captures the canonical-space cache entry behind a
// successful response so journal replay can re-warm fcache. Responses
// without a cache key (delta chains) yield no blob, and neither do
// non-SPP entries: the blob stores the form as text re-parsed by
// core.ParseForm, which only speaks the SPP grammar. Portfolio results
// simply recompute on replay instead of round-tripping lossily.
func (s *Server) warmBlobFor(resp Response) json.RawMessage {
	if resp.Key == "" {
		return nil
	}
	key, err := fcache.ParseKey(resp.Key)
	if err != nil {
		return nil
	}
	e, ok := s.cache.Get(key)
	if !ok || e.canon == nil || e.kind != "spp" {
		return nil
	}
	blob, err := json.Marshal(jobWarmBlob{
		Key:          resp.Key,
		N:            e.canon.N(),
		On:           e.canon.On(),
		Dc:           e.canon.DC(),
		Form:         e.form.String(),
		EPPP:         e.eppp,
		CoverOptimal: e.coverOptimal,
	})
	if err != nil {
		return nil
	}
	return blob
}

// handleJobSubmit accepts one job: POST /v1/jobs. Validation happens
// before the journal write, and draining refuses the request before
// either — a drained server must never journal-then-drop.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, Response{Error: "server draining"})
		return
	}
	s.jobMu.Lock()
	q := s.jobq
	s.jobMu.Unlock()
	if q == nil {
		writeJSON(w, http.StatusNotImplemented, Response{Error: "jobs tier disabled (start sppserve with -jobs-dir)"})
		return
	}
	// One token per submission, charged before the body is decoded —
	// over-quota tenants cannot make the server parse anything.
	if s.quotas != nil {
		tenant := tenantFrom(r)
		if wait, ok := s.quotas.take(tenant, 1, time.Now()); !ok {
			s.statsMu.Lock()
			s.ctr.shedQuota++
			s.statsMu.Unlock()
			ms := max(wait.Milliseconds(), 1)
			w.Header().Set("Retry-After", retryAfterSeconds(ms))
			writeJSON(w, http.StatusTooManyRequests, Response{
				Error:        fmt.Sprintf("tenant %q over quota (%.3g req/s)", tenant, s.quotas.rps),
				Code:         "quota_exhausted",
				RetryAfterMS: ms,
			})
			return
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var env jobEnvelope
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, Response{Error: "bad request: " + err.Error()})
		return
	}
	if env.Requests != nil {
		writeJSON(w, http.StatusBadRequest, Response{Error: "batch envelopes are not jobs: submit one job per request"})
		return
	}
	if _, err := jobs.NormalizePriority(env.Priority); err != nil {
		writeJSON(w, http.StatusBadRequest, Response{Error: err.Error()})
		return
	}
	// Reject garbage before it reaches the journal. Delta jobs get the
	// cheap checks only (the base may legitimately appear or vanish
	// between accept and compute).
	if env.Base == "" {
		f, err := resolveFunction(env.Request)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, Response{Error: err.Error()})
			return
		}
		formName, err := s.normalizeForm(env.Request)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, Response{Error: err.Error()})
			return
		}
		if formName == "spp" {
			if _, err := normalizeAlgorithm(env.Request, f.N()); err != nil {
				writeJSON(w, http.StatusBadRequest, Response{Error: err.Error()})
				return
			}
		}
	} else {
		if !s.cfg.WarmCache {
			writeJSON(w, http.StatusBadRequest, Response{Error: "delta jobs need the warm cache (-warm-cache)"})
			return
		}
		if env.Request.Form != "" && env.Request.Form != "spp" {
			writeJSON(w, http.StatusConflict, Response{Error: fmt.Sprintf(
				"delta jobs support form \"spp\", not %q: resubmit the full function", env.Request.Form)})
			return
		}
		if _, err := fcache.ParseKey(env.Base); err != nil {
			writeJSON(w, http.StatusBadRequest, Response{Error: err.Error()})
			return
		}
	}
	payload, err := json.Marshal(env.Request)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, Response{Error: err.Error()})
		return
	}
	j, err := q.Enqueue(env.Priority, payload)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, jobs.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, Response{Error: err.Error()})
		return
	}
	_, pos, _ := q.Get(j.ID)
	st := s.jobStatus(j, pos)
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, st)
}

// handleJobGet serves GET /v1/jobs/{id}, with optional long-poll via
// ?wait_ms=N (capped at Config.MaxTimeout). The wait selects on the
// job's terminal channel against the request context and a timer — no
// goroutine is spawned, so a client that hangs up leaks nothing.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.jobMu.Lock()
	q := s.jobq
	s.jobMu.Unlock()
	if q == nil {
		writeJSON(w, http.StatusNotImplemented, Response{Error: "jobs tier disabled (start sppserve with -jobs-dir)"})
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeJSON(w, http.StatusNotFound, Response{Error: "no such job"})
		return
	}
	j, pos, ok := q.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, Response{Error: "no such job"})
		return
	}

	if wait := parseWaitMS(r); wait > 0 && !j.State.Terminal() {
		if capd := s.cfg.MaxTimeout; wait > capd {
			wait = capd
		}
		final, ok := q.Watch(id)
		if ok {
			timer := time.NewTimer(wait)
			select {
			case <-final:
			case <-r.Context().Done():
			case <-timer.C:
			}
			timer.Stop()
			j, pos, ok = q.Get(id)
			if !ok { // trimmed while waiting
				writeJSON(w, http.StatusNotFound, Response{Error: "no such job"})
				return
			}
		}
	}

	st := s.jobStatus(j, pos)
	if st.RetryAfterMS > 0 {
		// Rounded up, never down: a 1500ms hint truncated to 1s makes
		// every client poll early.
		w.Header().Set("Retry-After", retryAfterSeconds(st.RetryAfterMS))
	}
	writeJSON(w, http.StatusOK, st)
}

// maxWaitMS caps ?wait_ms= long-polls at a day — far above
// Config.MaxTimeout (which still applies), but low enough that the
// millisecond-to-Duration conversion can never overflow.
const maxWaitMS = 24 * 60 * 60 * 1000

func parseWaitMS(r *http.Request) time.Duration {
	v := r.URL.Query().Get("wait_ms")
	if v == "" {
		return 0
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		// An out-of-range positive number is an emphatic "wait long",
		// not garbage: clamp instead of silently disabling the wait.
		if errors.Is(err, strconv.ErrRange) && !strings.HasPrefix(strings.TrimSpace(v), "-") {
			ms = maxWaitMS
		} else {
			return 0
		}
	}
	if ms <= 0 {
		return 0
	}
	return time.Duration(min(ms, maxWaitMS)) * time.Millisecond
}

// jobStatus shapes one queue snapshot for the API, with a crude
// poll-again hint: queued jobs scale with their position over the
// worker pool, running ones suggest a short beat.
func (s *Server) jobStatus(j jobs.Job, pos int) JobStatus {
	st := JobStatus{
		ID:       j.ID,
		State:    string(j.State),
		Priority: j.Priority,
		Attempts: j.Attempts,
	}
	switch j.State {
	case jobs.StateQueued:
		st.Position = pos
		per := int64(500)
		workers := int64(max(s.cfg.JobWorkers, 1))
		st.RetryAfterMS = min(max(per*int64(pos)/workers, 250), 15000)
	case jobs.StateRunning:
		st.RetryAfterMS = 500
	case jobs.StateDone:
		st.Result = j.Result
	case jobs.StateFailed:
		st.Error = j.Error
		st.Result = j.Result
	}
	return st
}
