package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
)

func jobsConfig(t *testing.T) Config {
	t.Helper()
	cfg := testConfig()
	cfg.JobsDir = t.TempDir()
	cfg.JobWorkers = 1
	cfg.JobLeaseTTL = 2 * time.Second
	return cfg
}

func startJobs(t *testing.T, s *Server) *jobs.Replay {
	t.Helper()
	rep, err := s.StartJobs()
	if err != nil {
		t.Fatalf("StartJobs: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.StopJobs(ctx); err != nil {
			t.Errorf("StopJobs: %v", err)
		}
	})
	return rep
}

func decodeJobStatus(t testing.TB, body string) JobStatus {
	t.Helper()
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("bad job status JSON: %v\n%s", err, body)
	}
	return st
}

// waitJob long-polls the job until it reaches a terminal state.
func waitJob(t *testing.T, h http.Handler, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, body := get(t, h, "/v1/jobs/"+id+"?wait_ms=500")
		if code != http.StatusOK {
			t.Fatalf("GET job: status %d: %s", code, body)
		}
		st := decodeJobStatus(t, body)
		if st.State == string(jobs.StateDone) || st.State == string(jobs.StateFailed) {
			return st
		}
	}
	t.Fatalf("job %s never went terminal", id)
	return JobStatus{}
}

func TestJobLifecycle(t *testing.T) {
	s := New(jobsConfig(t))
	startJobs(t, s)
	h := s.Handler()

	body := fmt.Sprintf(`{"priority":"interactive","n":4,"on":%s}`, pointsJSON(oddParity(4)))
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", w.Code, w.Body.String())
	}
	st := decodeJobStatus(t, w.Body.String())
	if st.ID == "" {
		t.Fatalf("submit returned no id: %s", w.Body.String())
	}
	if st.Priority != jobs.PriorityInteractive {
		t.Fatalf("priority = %q, want interactive", st.Priority)
	}
	if loc := w.Header().Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}

	final := waitJob(t, h, st.ID)
	if final.State != string(jobs.StateDone) {
		t.Fatalf("state = %s (error %q), want done", final.State, final.Error)
	}
	var resp Response
	if err := json.Unmarshal(final.Result, &resp); err != nil {
		t.Fatalf("result not a Response: %v", err)
	}
	if resp.Error != "" || resp.Form == "" {
		t.Fatalf("bad embedded result: %+v", resp)
	}

	// The job's compute landed in the shared result cache: the same
	// function over the synchronous API is a hit.
	code, out := post(t, h, fmt.Sprintf(`{"n":4,"on":%s}`, pointsJSON(oddParity(4))))
	if code != http.StatusOK {
		t.Fatalf("minimize after job: status %d: %s", code, out)
	}
	if r := decodeResp(t, out); !r.Cached {
		t.Fatalf("minimize after job not cached: %+v", r)
	}

	code, out = get(t, h, "/statsz")
	if code != http.StatusOK {
		t.Fatalf("statsz: %d", code)
	}
	var sz Statsz
	if err := json.Unmarshal([]byte(out), &sz); err != nil {
		t.Fatalf("statsz JSON: %v", err)
	}
	if sz.JobsDone != 1 || sz.JobsQueued != 0 || sz.JobsRunning != 0 {
		t.Fatalf("statsz jobs: done=%d queued=%d running=%d", sz.JobsDone, sz.JobsQueued, sz.JobsRunning)
	}
	if sz.JobsByPriority[jobs.PriorityInteractive] != 1 {
		t.Fatalf("jobs_by_priority = %v", sz.JobsByPriority)
	}
}

func TestJobSubmitValidation(t *testing.T) {
	s := New(jobsConfig(t))
	startJobs(t, s)
	h := s.Handler()

	cases := []struct {
		name string
		body string
		want int
		sub  string
	}{
		{"bad algorithm", `{"n":3,"on":[1,2],"algorithm":"bogus"}`, http.StatusBadRequest, "algorithm"},
		{"no function", `{"priority":"bulk"}`, http.StatusBadRequest, ""},
		{"batch rejected", `{"requests":[{"n":3,"on":[1]}]}`, http.StatusBadRequest, "batch"},
		{"unknown priority", `{"priority":"urgent","n":3,"on":[1]}`, http.StatusBadRequest, "priority"},
		{"delta without warm cache", `{"base":"` + strings.Repeat("00", 32) + `","add":[1]}`, http.StatusBadRequest, "warm cache"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != tc.want {
				t.Fatalf("status %d, want %d: %s", w.Code, tc.want, w.Body.String())
			}
			if tc.sub != "" && !strings.Contains(w.Body.String(), tc.sub) {
				t.Fatalf("error %q does not mention %q", w.Body.String(), tc.sub)
			}
		})
	}

	// Nothing above may have reached the journal.
	assertNoEnqueueRecords(t, s.cfg.JobsDir)
}

func TestJobsDisabled501(t *testing.T) {
	s := New(testConfig()) // no JobsDir, no StartJobs
	h := s.Handler()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(`{"n":3,"on":[1]}`))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusNotImplemented {
		t.Fatalf("submit: status %d, want 501", w.Code)
	}
	if code, _ := get(t, h, "/v1/jobs/j-1-dead"); code != http.StatusNotImplemented {
		t.Fatalf("get: status %d, want 501", code)
	}
}

func assertNoEnqueueRecords(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read journal dir: %v", err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		if strings.Contains(string(data), `"op":"enq"`) {
			t.Fatalf("journal %s has an enqueue record:\n%s", e.Name(), data)
		}
	}
}

// A drained server must 503 a job submission BEFORE journaling it —
// journal-then-drop would accept work it never runs.
func TestJobSubmitDuringDrain503NotJournaled(t *testing.T) {
	s := New(jobsConfig(t))
	startJobs(t, s)
	h := s.Handler()

	s.SetDraining(true)
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs",
		strings.NewReader(fmt.Sprintf(`{"n":3,"on":%s}`, pointsJSON(oddParity(3)))))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", w.Code)
	}
	assertNoEnqueueRecords(t, s.cfg.JobsDir)
	s.SetDraining(false)
}

// A long-poll abandoned by its client must return with the request
// context and leak no goroutine — the wait is a select, not a watcher.
func TestJobLongPollCancelNoGoroutineLeak(t *testing.T) {
	s := New(jobsConfig(t))
	gate := make(chan struct{})
	s.testHookAfterAcquire = func(ctx context.Context) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	startJobs(t, s)
	h := s.Handler()

	req := httptest.NewRequest(http.MethodPost, "/v1/jobs",
		strings.NewReader(fmt.Sprintf(`{"n":4,"on":%s}`, pointsJSON(oddParity(4)))))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", w.Code, w.Body.String())
	}
	id := decodeJobStatus(t, w.Body.String()).ID

	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() { time.Sleep(5 * time.Millisecond); cancel() }()
		greq := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id+"?wait_ms=60000", nil).WithContext(ctx)
		gw := httptest.NewRecorder()
		start := time.Now()
		h.ServeHTTP(gw, greq)
		cancel()
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("canceled long-poll took %v", elapsed)
		}
		if gw.Code != http.StatusOK {
			t.Fatalf("long-poll: status %d: %s", gw.Code, gw.Body.String())
		}
		if st := decodeJobStatus(t, gw.Body.String()); st.State == string(jobs.StateDone) {
			t.Fatalf("job finished while gated: %+v", st)
		}
	}
	// The selects unwound with their handlers; allow a little scheduler
	// noise but catch a per-poll watcher leak (20 would show plainly).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+5 {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+5 {
		t.Fatalf("goroutines grew %d -> %d across canceled long-polls", before, after)
	}

	close(gate)
	if st := waitJob(t, h, id); st.State != string(jobs.StateDone) {
		t.Fatalf("job after release: %+v", st)
	}
}

// Kill-and-replay at the service layer: results journaled by one
// server warm the next server's result cache with no recompute.
func TestJobReplayWarmsCache(t *testing.T) {
	cfg := jobsConfig(t)

	s1 := New(cfg)
	if _, err := s1.StartJobs(); err != nil {
		t.Fatalf("StartJobs: %v", err)
	}
	h1 := s1.Handler()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs",
		strings.NewReader(fmt.Sprintf(`{"n":4,"on":%s}`, pointsJSON(oddParity(4)))))
	w := httptest.NewRecorder()
	h1.ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", w.Code, w.Body.String())
	}
	id := decodeJobStatus(t, w.Body.String()).ID
	st := waitJob(t, h1, id)
	if st.State != string(jobs.StateDone) {
		t.Fatalf("job on s1: %+v", st)
	}
	var want Response
	if err := json.Unmarshal(st.Result, &want); err != nil {
		t.Fatalf("result: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.StopJobs(ctx); err != nil {
		t.Fatalf("StopJobs: %v", err)
	}

	// Second life: same journal dir, fresh cache.
	s2 := New(cfg)
	rep := startJobs(t, s2)
	if len(rep.Completed) != 1 || rep.Requeued != 0 {
		t.Fatalf("replay: completed=%d requeued=%d", len(rep.Completed), rep.Requeued)
	}
	h2 := s2.Handler()

	// The replayed job is still queryable, result intact.
	code, body := get(t, h2, "/v1/jobs/"+id)
	if code != http.StatusOK {
		t.Fatalf("GET replayed job: %d: %s", code, body)
	}
	if st2 := decodeJobStatus(t, body); st2.State != string(jobs.StateDone) {
		t.Fatalf("replayed job state: %+v", st2)
	}

	// And its warm blob repopulated fcache: the same function is an
	// immediate cache hit with the identical form.
	code, out := post(t, h2, fmt.Sprintf(`{"n":4,"on":%s}`, pointsJSON(oddParity(4))))
	if code != http.StatusOK {
		t.Fatalf("minimize on s2: %d: %s", code, out)
	}
	r := decodeResp(t, out)
	if !r.Cached {
		t.Fatalf("replay did not warm the cache: %+v", r)
	}
	if r.Form != want.Form || r.Key != want.Key {
		t.Fatalf("warmed entry differs: form %q vs %q, key %q vs %q", r.Form, want.Form, r.Key, want.Key)
	}

	var sz Statsz
	_, szBody := get(t, h2, "/statsz")
	if err := json.Unmarshal([]byte(szBody), &sz); err != nil {
		t.Fatalf("statsz: %v", err)
	}
	if sz.JobsReplayed != 1 {
		t.Fatalf("jobs_replayed = %d, want 1", sz.JobsReplayed)
	}
}

// A journaled job whose options no longer validate at execution time
// (here: a delta job replayed onto a server without the warm cache)
// must park as failed with the error preserved, not loop forever.
func TestJobInvalidAtExecutionFailsTerminally(t *testing.T) {
	cfg := jobsConfig(t)

	// Seed the journal out-of-band, as a previous server generation
	// would have: an accepted delta job that was never run.
	q, _, err := jobs.Open(jobs.Options{Dir: cfg.JobsDir})
	if err != nil {
		t.Fatalf("seed open: %v", err)
	}
	j, err := q.Enqueue(jobs.PriorityBatch,
		json.RawMessage(`{"base":"`+strings.Repeat("00", 32)+`","add":[1]}`))
	if err != nil {
		t.Fatalf("seed enqueue: %v", err)
	}
	if err := q.Close(); err != nil {
		t.Fatalf("seed close: %v", err)
	}

	s := New(cfg) // WarmCache off: the delta payload cannot run here
	rep := startJobs(t, s)
	if rep.Requeued != 1 {
		t.Fatalf("requeued = %d, want 1", rep.Requeued)
	}
	st := waitJob(t, s.Handler(), j.ID)
	if st.State != string(jobs.StateFailed) {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if st.Error == "" {
		t.Fatalf("failed job lost its error: %+v", st)
	}
}
