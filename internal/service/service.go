// Package service implements the long-running logic-minimization HTTP
// service behind cmd/sppserve: a JSON API over the portfolio engine
// (internal/engine — SPP, SOP, ESOP and DSOP backends behind one
// interface) with a sharded canonical-function result cache
// (internal/fcache), request coalescing for concurrent identical
// misses, a bounded admission gate around the compute path, per-request
// deadlines plumbed as context into the engines, and an observability
// endpoint serving the spp-stats/v1 reports of recent runs.
//
// Endpoints:
//
//	POST /v1/minimize  — minimize one function, or a batch via the
//	                     "requests" array; responses carry the SPP form,
//	                     its metrics, cache status and elapsed time.
//	GET  /healthz      — liveness plus the draining flag.
//	GET  /statsz       — service counters and the spp-stats-run/v1
//	                     report of the last N cold runs.
//
// Two requests whose functions differ only by an input-variable
// permutation or by DC-set spelling hit the same cache entry: the
// function is canonicalized (fcache.CanonicalizeCtx, under the request
// deadline) before the key lookup, and the cached canonical-space form
// is mapped back through the inverse permutation on the way out.
// Results cache per-(canonical key, backend salt) — docs/forms.md is
// the normative contract for the "form" request field, including the
// form=auto portfolio race.
//
// The serving hot path is built so that only actual engine runs occupy
// admission slots. A request resolves and canonicalizes its function,
// then: a cache hit returns immediately (no slot); a miss enters a
// per-key singleflight (fcache.Group) where one leader takes a slot and
// computes under its own deadline while identical concurrent requests
// wait slot-free for the broadcast result, detaching with their own
// 504/499 when their deadline dies first. Batch items run through a
// bounded per-batch worker pool (Config.BatchWorkers), so intra-batch
// duplicates coalesce exactly like cross-request ones. See
// ARCHITECTURE.md "The serving path" for the state machine.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/bfunc"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fcache"
	"repro/internal/ftdc"
	"repro/internal/harness"
	"repro/internal/jobs"
	"repro/internal/stats"
)

// Config tunes the server. The zero value gets sensible defaults from
// New.
type Config struct {
	// Core bounds each minimization (budgets, worker counts), shared
	// with the table harness so sppserve and spptables read the same
	// flags.
	Core harness.Config
	// MaxConcurrent is the admission-gate width: how many engine runs
	// may occupy the pipeline at once. Cache hits and coalesced waiters
	// do not consume slots. Default 2.
	MaxConcurrent int
	// CacheSize is the canonical-function LRU capacity. Default 256.
	CacheSize int
	// CacheShards overrides the result-cache shard count (rounded to a
	// power of two; 0 = automatic, see fcache.NewSharded).
	CacheShards int
	// BatchWorkers bounds how many items of one batch run concurrently
	// (each compute still needs an admission slot). 1 = strictly
	// serial. Default 4.
	BatchWorkers int
	// DefaultTimeout applies to requests that set no timeout_ms.
	// Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied timeouts. Default 2m.
	MaxTimeout time.Duration
	// HistorySize is how many recent cold-run reports /statsz returns.
	// Default 32.
	HistorySize int
	// MaxBodyBytes caps the /v1/minimize request body; oversized bodies
	// get 413. Default 8 MiB.
	MaxBodyBytes int64
	// MaxBatch caps the number of requests in one batch envelope.
	// Default 64.
	MaxBatch int
	// CacheBytes bounds the result cache's resident payload bytes
	// (entries are charged their estimated footprint, warm states
	// included, and evicted LRU-first past the budget). Default 256 MiB.
	CacheBytes int64
	// WarmCache retains a warm engine state alongside every exact
	// result, keyed by the exact (request-space) function, enabling the
	// delta request path. Exact computes then run the warm engine —
	// same cost, canonical candidate order, serial EPPP build — so that
	// full and delta results are mutually byte-identical. Off by
	// default.
	WarmCache bool
	// DeltaMaxDirty is the care-set churn fraction above which a delta
	// request falls back to a cold run instead of patching the warm
	// state. Default 0.25.
	DeltaMaxDirty float64
	// JobsDir enables the async job tier when non-empty: POST /v1/jobs
	// journals work here and a worker pool drains it (see jobs.go and
	// internal/jobs). The tier starts with StartJobs, not New.
	JobsDir string
	// JobWorkers bounds how many jobs compute concurrently (each still
	// takes an admission slot). Default 2.
	JobWorkers int
	// JobRetries caps lease-expiry retries before a job is parked as
	// failed. Default 2.
	JobRetries int
	// JobLeaseTTL is how long a job lease survives without a worker
	// heartbeat. Default 30s.
	JobLeaseTTL time.Duration
	// JobTimeout bounds one job compute (and caps job-supplied
	// timeout_ms); deliberately much larger than DefaultTimeout.
	// Default 10m.
	JobTimeout time.Duration
	// Forms lists the enabled portfolio backends ("spp", "sop",
	// "esop", "dsop"); empty enables all of them. Requests naming a
	// disabled form get 400; form=auto races only the enabled ones.
	// Unknown names panic in New — a deployment config error.
	Forms []string
	// LegacySerial restores the pre-coalescing serving path: one
	// admission slot around the whole request (cache hits included),
	// strictly serial batch items, no request coalescing, and a
	// single-shard cache unless CacheShards overrides it. It exists as
	// the measured baseline for cmd/sppload and for regression tests;
	// production servers leave it off.
	LegacySerial bool
	// JobResultTTL keeps the outcome of a terminal job queryable for
	// this long after KeepDone trims it, so pollers never see a freshly
	// finished job 404. Default 15m; negative disables.
	JobResultTTL time.Duration
	// FTDCDir enables the always-on telemetry ring when non-empty:
	// StartTelemetry samples the /statsz counter families there every
	// FTDCInterval (internal/ftdc segments), and GET /statsz/history
	// replays them. The capture is crash-tolerant — a kill -9 loses at
	// most the partial tail record.
	FTDCDir string
	// FTDCInterval is the telemetry sampling period. Default 1s.
	FTDCInterval time.Duration
	// FTDCSegmentSamples and FTDCMaxSegments bound the on-disk ring
	// (samples per segment file, segment files kept). Defaults from
	// internal/ftdc (512 and 8 — with a 1s interval, about 68 minutes
	// of history).
	FTDCSegmentSamples int
	FTDCMaxSegments    int
	// QuotaRPS enables per-tenant admission quotas when positive:
	// each tenant (X-Tenant header, "default" unset) gets a token
	// bucket refilling at this rate. A minimize request charges one
	// token per item; a job submission charges one. Exhaustion is a
	// fast 429 + Retry-After. Off (0) by default.
	QuotaRPS float64
	// QuotaBurst is the bucket depth. Default ceil(QuotaRPS), min 1.
	QuotaBurst int
}

// Request is one minimization job. Exactly one function source must be
// set: explicit minterms (N+On, optional Dc), a named built-in
// benchmark (Bench, optional Output), or inline PLA text (PLA, optional
// Output).
type Request struct {
	N  int      `json:"n,omitempty"`
	On []uint64 `json:"on,omitempty"`
	Dc []uint64 `json:"dc,omitempty"`

	Bench  string `json:"bench,omitempty"`
	PLA    string `json:"pla,omitempty"`
	Output int    `json:"output,omitempty"`

	// Form selects the output representation: "spp" (default), "sop",
	// "esop", "dsop", or "auto" to race every eligible backend and
	// return the cheapest form by literal count. docs/forms.md is the
	// normative contract.
	Form string `json:"form,omitempty"`
	// AcceptLiterals, with form=auto only, switches the race to
	// first-acceptable mode: the first backend at or under this literal
	// count wins immediately and the rest are cancelled. 0 (default)
	// keeps the deterministic best-cost race.
	AcceptLiterals int `json:"accept_literals,omitempty"`

	// Algorithm selects the SPP engine (form "spp" only): "exact"
	// (default), "naive", or "sppk" (the SPP_k heuristic, degree K).
	Algorithm string `json:"algorithm,omitempty"`
	K         int    `json:"k,omitempty"`

	ExactCover bool `json:"exact_cover,omitempty"`
	FactorCost bool `json:"factor_cost,omitempty"`

	// Base, when set, makes this a delta request: the function is the
	// base entry's function (identified by a base_key from an earlier
	// response) edited by Add/Remove/DcAdd/DcRemove, minimized by
	// patching the retained warm state. No other function source may be
	// set. Requires Config.WarmCache; an unknown or evicted base yields
	// 409 with code "cold_run_required".
	Base     string   `json:"base,omitempty"`
	Add      []uint64 `json:"add,omitempty"`
	Remove   []uint64 `json:"remove,omitempty"`
	DcAdd    []uint64 `json:"dc_add,omitempty"`
	DcRemove []uint64 `json:"dc_remove,omitempty"`

	// TimeoutMS bounds this request's wall clock, queue wait included;
	// 0 means the server default. Capped at Config.MaxTimeout. Batch
	// items are additionally bounded by the batch deadline (the max of
	// the items' timeouts).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache and the coalescing group — the
	// result is always freshly computed, never served from (or as) a
	// shared in-flight result. It still populates the cache.
	NoCache bool `json:"no_cache,omitempty"`
	// Stats embeds this run's spp-stats/v1 report in the response
	// (cold computes only; cached and coalesced responses ran nothing).
	Stats bool `json:"stats,omitempty"`
}

// envelope is the /v1/minimize body: either a bare Request or a batch.
type envelope struct {
	Request
	Requests []Request `json:"requests,omitempty"`
}

// outcome classifies how one request was resolved, for the coherent
// counter update in record. The zero value is outcomeError so every
// failure path defaults safely.
type outcome uint8

const (
	outcomeError     outcome = iota // failed (bad request, budget, expiry, ...)
	outcomeHit                      // served from the result cache
	outcomeComputed                 // ran the engines (leader or NoCache)
	outcomeCoalesced                // served from a concurrent leader's flight
	outcomeDetached                 // waiter expired before the leader finished
)

// Response is the result of one Request.
type Response struct {
	Form     string `json:"form,omitempty"`
	Literals int    `json:"literals"`
	NumTerms int    `json:"num_terms"`
	// FormKind names the backend that produced the form ("spp", "sop",
	// "esop", "dsop") — with form=auto, the race winner.
	FormKind     string `json:"form_kind,omitempty"`
	EPPP         int    `json:"eppp,omitempty"`
	CoverOptimal bool   `json:"cover_optimal"`
	Cached       bool   `json:"cached"`
	// Coalesced marks a response served by waiting on a concurrent
	// identical request's computation rather than by cache lookup or a
	// fresh run (such responses also report Cached, since they were
	// served without computing).
	Coalesced bool   `json:"coalesced,omitempty"`
	Key       string `json:"key,omitempty"`
	// BaseKey is the token delta requests chain on: the warm-state
	// cache key of this response's exact function. Present when the
	// server retains warm state for it; it may be evicted later, in
	// which case a delta against it returns 409 "cold_run_required".
	BaseKey string `json:"base_key,omitempty"`
	// Delta reports how a delta request was satisfied: "warm" (patched
	// resume), "cold" (fallback full run), or "trivial" (edit emptied
	// the ON-set; no engine ran).
	Delta     string        `json:"delta,omitempty"`
	ElapsedNS int64         `json:"elapsed_ns"`
	Stats     *stats.Report `json:"stats,omitempty"`
	Error     string        `json:"error,omitempty"`
	// Code is a machine-readable error discriminator
	// ("cold_run_required" on 409, "shed" and "quota_exhausted" on
	// 429).
	Code string `json:"code,omitempty"`
	// RetryAfterMS accompanies 429 responses (shed or over-quota): how
	// long the admission layer predicts the client should back off.
	// Also sent as a Retry-After header (in whole seconds) on single
	// responses; batch items carry it here only.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`

	status  int     // HTTP status for single-request responses
	outcome outcome // counter classification, see record
}

// batchResponse wraps the per-item results of a batch request. Errors
// that fail the batch as a whole (oversized/empty batch) are reported
// in the top-level Error with an empty Results, so batch clients always
// get the {"results": ...} shape back; per-item failures (deadlines
// included) are reported on the items themselves. (Errors raised before
// the body is parsed — draining, malformed JSON, oversized body —
// cannot know the request shape and use the single-response envelope,
// whose top-level "error" field matches this one.)
type batchResponse struct {
	Results []Response `json:"results"`
	Error   string     `json:"error,omitempty"`
}

// Statsz is the /statsz payload: service counters plus the recent-run
// report ring (docs/stats-schema.md documents the run schema). The
// request counters are written under one lock in a single critical
// section per request and snapshotted under the same lock, so every
// snapshot — even mid-traffic — satisfies
//
//	Served == CacheHits + CacheMisses + CoalesceWaiters
//
// exactly, with CoalesceDetached <= Errors.
type Statsz struct {
	Served int64 `json:"served"`
	// CacheHits counts requests served from the result cache;
	// CacheMisses counts requests that ran the engines (flight leaders
	// and no_cache requests).
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Errors      int64 `json:"errors"`
	// CoalesceWaiters counts requests served by joining a concurrent
	// identical request's in-flight computation; CoalesceDetached
	// counts waiters whose own deadline expired first (also included
	// in Errors).
	CoalesceWaiters  int64 `json:"coalesce_waiters"`
	CoalesceDetached int64 `json:"coalesce_detached"`
	// Delta-path counters: warm resumes computed, cold fallbacks (churn
	// over -delta-max-dirty), base-key misses (409), and edits that
	// emptied the ON-set (served trivially, no engine).
	DeltaWarm     int64 `json:"delta_warm"`
	DeltaCold     int64 `json:"delta_cold_fallback"`
	DeltaBaseMiss int64 `json:"delta_base_miss"`
	DeltaTrivial  int64 `json:"delta_trivial"`
	// Cover-phase split of the warm resumes: DeltaCoverReused counts
	// resumes whose covering solution was served entirely by replaying
	// the snapshot's pick trace; DeltaCoverResolved counts resumes that
	// had to re-enter greedy/B&B selection for part of the cover.
	// Reused + Resolved == DeltaWarm for greedy-cover workloads.
	DeltaCoverReused   int64 `json:"delta_cover_reused"`
	DeltaCoverResolved int64 `json:"delta_cover_resolved"`
	// Portfolio-engine counters: EngineRaces counts form=auto requests
	// that actually raced backends (all-cached auto requests are plain
	// cache hits); EngineWinsByForm tallies which backend won each race
	// (sums to EngineRaces); EngineCancelled counts backends cut off by
	// a first-acceptable (accept_literals) early win.
	EngineRaces      int64            `json:"engine_races"`
	EngineWinsByForm map[string]int64 `json:"engine_wins_by_form,omitempty"`
	EngineCancelled  int64            `json:"engine_cancelled"`
	// Cache-internal counters, aggregated over the LRU shards. These
	// count raw cache operations (a request may probe more than once on
	// collision or retry), unlike the request-level counters above.
	CacheEvictions int64 `json:"cache_evictions"`
	// CacheBytes is the resident payload weight of the result cache
	// (forms, canonical functions and retained warm states);
	// CacheRejected counts entries too large for a shard's byte budget
	// to ever admit.
	CacheBytes    int64 `json:"cache_bytes"`
	CacheRejected int64 `json:"cache_rejected"`
	CacheShards   int   `json:"cache_shards"`
	CacheLen      int   `json:"cache_len"`
	InFlight      int   `json:"in_flight"`
	Draining      bool  `json:"draining"`
	// Job-tier counters (all zero when the tier is disabled).
	// JobsQueued/JobsRunning are current occupancy; JobsDone, JobsFailed
	// and JobsRetried are cumulative including journal-replayed history.
	// JobsReplayed counts completed jobs whose journaled results
	// re-warmed fcache at the last StartJobs; JobsRequeued counts the
	// incomplete jobs it re-enqueued. JobsByPriority counts accepted
	// jobs per priority class.
	JobsQueued     int64            `json:"jobs_queued"`
	JobsRunning    int64            `json:"jobs_running"`
	JobsDone       int64            `json:"jobs_done"`
	JobsFailed     int64            `json:"jobs_failed"`
	JobsRetried    int64            `json:"jobs_retried"`
	JobsReplayed   int64            `json:"jobs_replayed"`
	JobsRequeued   int64            `json:"jobs_requeued"`
	JobsByPriority map[string]int64 `json:"jobs_by_priority,omitempty"`
	// JobsCompactions counts online journal compactions (the startup
	// one included); JobsQueuedByPriority is the current backlog per
	// priority class — the admission layer's per-class pressure signal.
	JobsCompactions      int64          `json:"jobs_compactions"`
	JobsQueuedByPriority map[string]int `json:"jobs_queued_by_priority,omitempty"`
	// Admission-layer counters (docs/stats-schema.md): AdmissionAdmitted
	// counts engine runs that took a gate slot, split by priority class
	// in AdmissionByPriority; ShedDeadline counts requests rejected
	// because the predicted queue wait exceeded their deadline budget;
	// QuotaRejected counts per-tenant token-bucket rejections (both shed
	// families answer 429 + Retry-After and are included in Errors only
	// when a request was actually processed — quota rejections happen
	// before processing and count in neither Served nor Errors).
	// QueueWaitP99MS is the live shedding signal: the 99th-percentile
	// admission queue wait over the recent window, 0 when nothing has
	// queued lately.
	AdmissionAdmitted   int64            `json:"admission_admitted"`
	AdmissionByPriority map[string]int64 `json:"admission_by_priority,omitempty"`
	ShedDeadline        int64            `json:"shed_deadline"`
	QuotaRejected       int64            `json:"quota_rejected"`
	QueueWaitP99MS      int64            `json:"queue_wait_p99_ms"`
	Runs                *stats.RunReport `json:"runs"`
}

// cacheEntry is one result-cache value, living in one of three
// disjoint key spaces of the same LRU:
//
//   - canonical entries (key = canonical key ⊕ option tag): canon is
//     kept for an Equal check on hit, so even a SHA-256 collision
//     cannot serve a wrong form; every warm field is nil/zero.
//   - warm state entries (key = fcache.WarmStateKey of the canonical
//     function): warm is the resumable engine state, form/eppp/
//     coverOptimal the canonical-space result it produced. One heavy
//     snapshot per canonical class — every permuted-equivalent client
//     shares it, so a fleet of equivalent functions charges
//     -cache-bytes once.
//   - warm pointer entries (key = fcache.WarmPointerKey of the exact
//     request-space function — the base_key clients chain deltas on):
//     fn is the submitter's request-space function, perm its map into
//     the canonical space the form and warm state live in, and warmRef
//     the state entry's key (hasWarmRef set). warm itself is nil —
//     pointers are thin.
//
// Pointer entries are keyed by the exact function — not the canonical
// class — because delta edits arrive in the client's variable order and
// permuted-equivalent clients must not chain on each other's keys; the
// per-client permutation lives in the pointer and is applied at the
// edges, while the snapshot behind it is shared.
type cacheEntry struct {
	canon *bfunc.Func
	form  engine.Form
	// kind is the backend tag the form came from ("spp", "sop", ...).
	kind         string
	eppp         int
	coverOptimal bool

	fn         *bfunc.Func
	perm       []int
	warm       *core.WarmState
	tag        string
	warmRef    fcache.Key
	hasWarmRef bool
}

// entryWeight estimates an entry's resident footprint for the
// size-aware cache: point sets, form terms, and the warm state's own
// accounting.
func entryWeight(e cacheEntry) int64 {
	w := int64(256)
	if e.canon != nil {
		w += int64(len(e.canon.On())+len(e.canon.DC())) * 8
	}
	if e.fn != nil {
		w += int64(len(e.fn.On())+len(e.fn.DC())) * 8
	}
	w += int64(len(e.perm)) * 8
	if e.form != nil {
		w += e.form.Bytes()
	}
	if e.warm != nil {
		w += e.warm.Bytes()
	}
	return w
}

// counters is the coherent request-counter block: every field is
// written under Server.statsMu in a single critical section per
// request, so any locked snapshot is internally consistent.
type counters struct {
	served, errors    int64
	hits, misses      int64
	waiters, detached int64

	deltaWarm, deltaCold                int64
	deltaBaseMiss, deltaTrivial         int64
	deltaCoverReused, deltaCoverResolve int64

	engineRaces, engineCancelled int64
	winsByForm                   map[string]int64

	admitted           int64
	admittedByPriority map[string]int64
	shedDeadline       int64
	shedQuota          int64
}

// Server is the minimization service. Create with New; expose with
// Handler.
type Server struct {
	cfg      Config
	registry *engine.Registry
	cache    *fcache.Cache[cacheEntry]
	flights  fcache.Group[cacheEntry]
	slots    chan struct{}

	statsMu sync.Mutex
	ctr     counters

	// Admission layer: recent queue-wait observations feed the shed
	// predictor; quotas is nil unless Config.QuotaRPS is set.
	waits  *waitRing
	quotas *quotas

	// Telemetry capture (nil until StartTelemetry).
	ftdcMu   sync.Mutex
	ftdcW    *ftdc.Writer
	ftdcStop chan struct{}
	ftdcWG   sync.WaitGroup

	draining atomic.Bool

	// Job tier (nil until StartJobs). jobMu guards the handle; the
	// queue itself is internally synchronized.
	jobMu        sync.Mutex
	jobq         *jobs.Queue
	jobStopLease context.CancelFunc
	jobStopHard  context.CancelFunc
	jobWG        sync.WaitGroup
	jobsReplayed atomic.Int64
	jobsRequeued atomic.Int64

	mu      sync.Mutex
	history []*stats.Report // ring, oldest first
	runSeq  int64

	// testHookAfterAcquire, when set, runs after a compute takes its
	// admission slot and before minimization — tests use it to hold
	// slots open deterministically.
	testHookAfterAcquire func(ctx context.Context)
}

// New builds a server, applying defaults for zero config fields.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 256
	}
	if cfg.BatchWorkers <= 0 {
		cfg.BatchWorkers = 4
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 2 * time.Minute
	}
	if cfg.HistorySize <= 0 {
		cfg.HistorySize = 32
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 256 << 20
	}
	if cfg.DeltaMaxDirty <= 0 {
		cfg.DeltaMaxDirty = 0.25
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 2
	}
	if cfg.JobRetries <= 0 {
		cfg.JobRetries = 2
	}
	if cfg.JobLeaseTTL <= 0 {
		cfg.JobLeaseTTL = 30 * time.Second
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 10 * time.Minute
	}
	switch {
	case cfg.JobResultTTL == 0:
		cfg.JobResultTTL = 15 * time.Minute
	case cfg.JobResultTTL < 0:
		cfg.JobResultTTL = 0
	}
	if cfg.FTDCInterval <= 0 {
		cfg.FTDCInterval = time.Second
	}
	if cfg.Core.PerOutput == 0 && cfg.Core.MaxCandidates == 0 {
		cfg.Core = harness.DefaultConfig()
	}
	shards := cfg.CacheShards
	if shards == 0 && cfg.LegacySerial {
		shards = 1
	}
	registry, err := engine.NewRegistry(cfg.Forms...)
	if err != nil {
		panic("service: " + err.Error())
	}
	s := &Server{
		cfg:      cfg,
		registry: registry,
		cache:    fcache.NewWeighted(cfg.CacheSize, cfg.CacheBytes, shards, entryWeight),
		slots:    make(chan struct{}, cfg.MaxConcurrent),
		waits:    newWaitRing(512, 30*time.Second),
	}
	if cfg.QuotaRPS > 0 {
		s.quotas = newQuotas(cfg.QuotaRPS, cfg.QuotaBurst)
	}
	return s
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/minimize", s.handleMinimize)
	mux.HandleFunc("/v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("/v1/jobs/", s.handleJobGet)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/statsz/history", s.handleStatszHistory)
	return mux
}

// SetDraining flips the draining flag: while set, new minimize
// requests are refused with 503 so http.Server.Shutdown can drain the
// in-flight ones. Reported by /healthz and /statsz.
func (s *Server) SetDraining(d bool) { s.draining.Store(d) }

// FinalReport snapshots the run history for the shutdown flush.
func (s *Server) FinalReport() *stats.RunReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return stats.NewRunReport(s.history...)
}

// record folds one request outcome into the coherent counter block.
// Exactly one call per processed request keeps the Statsz invariant
// (served == hits + misses + waiters) true under any interleaving.
func (s *Server) record(o outcome) {
	s.statsMu.Lock()
	switch o {
	case outcomeHit:
		s.ctr.served++
		s.ctr.hits++
	case outcomeComputed:
		s.ctr.served++
		s.ctr.misses++
	case outcomeCoalesced:
		s.ctr.served++
		s.ctr.waiters++
	case outcomeDetached:
		s.ctr.errors++
		s.ctr.detached++
	default:
		s.ctr.errors++
	}
	s.statsMu.Unlock()
}

// bumpDelta increments one delta-path counter under the same lock as
// the coherent block (the delta counters are informational and not part
// of the served invariant).
func (s *Server) bumpDelta(field *int64) {
	s.statsMu.Lock()
	*field++
	s.statsMu.Unlock()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": s.draining.Load(),
	})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	runs := stats.NewRunReport(s.history...)
	s.mu.Unlock()
	cst := s.cache.Stats()
	s.statsMu.Lock()
	ctr := s.ctr // one coherent snapshot of all request counters
	var wins map[string]int64
	if len(ctr.winsByForm) > 0 {
		wins = make(map[string]int64, len(ctr.winsByForm))
		for k, v := range ctr.winsByForm {
			wins[k] = v
		}
	}
	var admittedBy map[string]int64
	if len(ctr.admittedByPriority) > 0 {
		admittedBy = make(map[string]int64, len(ctr.admittedByPriority))
		for k, v := range ctr.admittedByPriority {
			admittedBy[k] = v
		}
	}
	s.statsMu.Unlock()
	var jst jobs.Stats
	s.jobMu.Lock()
	if s.jobq != nil {
		jst = s.jobq.Stats()
	}
	s.jobMu.Unlock()
	writeJSON(w, http.StatusOK, Statsz{
		Served:               ctr.served,
		CacheHits:            ctr.hits,
		CacheMisses:          ctr.misses,
		Errors:               ctr.errors,
		CoalesceWaiters:      ctr.waiters,
		CoalesceDetached:     ctr.detached,
		DeltaWarm:            ctr.deltaWarm,
		DeltaCold:            ctr.deltaCold,
		DeltaBaseMiss:        ctr.deltaBaseMiss,
		DeltaTrivial:         ctr.deltaTrivial,
		DeltaCoverReused:     ctr.deltaCoverReused,
		DeltaCoverResolved:   ctr.deltaCoverResolve,
		EngineRaces:          ctr.engineRaces,
		EngineWinsByForm:     wins,
		EngineCancelled:      ctr.engineCancelled,
		CacheEvictions:       int64(cst.Evictions),
		CacheBytes:           cst.Bytes,
		CacheRejected:        int64(cst.Rejected),
		CacheShards:          cst.Shards,
		CacheLen:             s.cache.Len(),
		InFlight:             len(s.slots),
		Draining:             s.draining.Load(),
		JobsQueued:           int64(jst.Queued),
		JobsRunning:          int64(jst.Running),
		JobsDone:             jst.Done,
		JobsFailed:           jst.Failed,
		JobsRetried:          jst.Retried,
		JobsReplayed:         s.jobsReplayed.Load(),
		JobsRequeued:         s.jobsRequeued.Load(),
		JobsByPriority:       jst.ByPriority,
		JobsCompactions:      jst.Compactions,
		JobsQueuedByPriority: jst.QueuedByPriority,
		AdmissionAdmitted:    ctr.admitted,
		AdmissionByPriority:  admittedBy,
		ShedDeadline:         ctr.shedDeadline,
		QuotaRejected:        ctr.shedQuota,
		QueueWaitP99MS:       s.waits.p99(time.Now()).Milliseconds(),
		Runs:                 runs,
	})
}

func (s *Server) handleMinimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, Response{Error: "server draining"})
		return
	}
	// The priority class rides a header, not the body, so admission can
	// read it before any decoding. Sync requests default to interactive.
	prio := jobs.PriorityInteractive
	if p := r.Header.Get("X-Priority"); p != "" {
		var err error
		if prio, err = jobs.NormalizePriority(p); err != nil {
			writeJSON(w, http.StatusBadRequest, Response{Error: err.Error()})
			return
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var env envelope
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, Response{Error: "bad request: " + err.Error()})
		return
	}
	batch := env.Requests != nil
	reqs := env.Requests
	if !batch {
		reqs = []Request{env.Request}
	}
	// Whole-batch failures from here on keep the batch response shape.
	batchFail := func(status int, msg string) {
		if batch {
			writeJSON(w, status, batchResponse{Results: []Response{}, Error: msg})
		} else {
			writeJSON(w, status, Response{Error: msg})
		}
	}
	if len(reqs) == 0 {
		batchFail(http.StatusBadRequest, "empty batch")
		return
	}
	if len(reqs) > s.cfg.MaxBatch {
		batchFail(http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds limit %d", len(reqs), s.cfg.MaxBatch))
		return
	}
	// Per-tenant quota: one token per item, charged before any compute.
	// Rejections happen before processing, so they touch neither the
	// Served/Errors invariant nor the cache — just the quota counter.
	if s.quotas != nil {
		tenant := tenantFrom(r)
		if wait, ok := s.quotas.take(tenant, len(reqs), time.Now()); !ok {
			s.statsMu.Lock()
			s.ctr.shedQuota++
			s.statsMu.Unlock()
			ms := max(wait.Milliseconds(), 1)
			w.Header().Set("Retry-After", retryAfterSeconds(ms))
			msg := fmt.Sprintf("tenant %q over quota (%.3g req/s)", tenant, s.quotas.rps)
			if batch {
				writeJSON(w, http.StatusTooManyRequests, batchResponse{Results: []Response{}, Error: msg})
			} else {
				writeJSON(w, http.StatusTooManyRequests,
					Response{Error: msg, Code: "quota_exhausted", RetryAfterMS: ms})
			}
			return
		}
	}

	// The batch deadline is the max of its items' timeouts; each item
	// additionally runs under its own (shorter or equal) deadline. Both
	// cover queue wait.
	var timeout time.Duration
	for _, q := range reqs {
		timeout = max(timeout, s.timeout(q))
	}
	ctx, cancel := context.WithTimeout(withPriority(r.Context(), prio), timeout)
	defer cancel()

	results := make([]Response, len(reqs))
	if s.cfg.LegacySerial {
		// Pre-coalescing path: one slot around everything, cache hits
		// included; items strictly serial; whole batch fails on queue
		// timeout.
		select {
		case s.slots <- struct{}{}:
			defer func() { <-s.slots }()
		case <-ctx.Done():
			s.record(outcomeError)
			batchFail(statusFor(ctx.Err()), "queue wait: "+ctx.Err().Error())
			return
		}
		if s.testHookAfterAcquire != nil {
			s.testHookAfterAcquire(ctx)
		}
		for i, q := range reqs {
			results[i] = s.process(ctx, q)
			s.record(results[i].outcome)
		}
	} else {
		workers := min(s.cfg.BatchWorkers, len(reqs))
		runItem := func(i int) {
			itemCtx, itemCancel := context.WithTimeout(ctx, s.timeout(reqs[i]))
			results[i] = s.process(itemCtx, reqs[i])
			itemCancel()
			s.record(results[i].outcome)
		}
		if workers <= 1 {
			for i := range reqs {
				runItem(i)
			}
		} else {
			// Bounded per-batch pool; results land at their item index,
			// so ordering stays deterministic no matter who finishes
			// first. Intra-batch duplicates coalesce via the flight
			// group instead of relying on serial ordering.
			idx := make(chan int)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range idx {
						runItem(i)
					}
				}()
			}
			for i := range reqs {
				idx <- i
			}
			close(idx)
			wg.Wait()
		}
	}

	if batch {
		writeJSON(w, http.StatusOK, batchResponse{Results: results})
		return
	}
	res := results[0]
	status := res.status
	if status == 0 {
		status = http.StatusOK
	}
	if res.RetryAfterMS > 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(res.RetryAfterMS))
	}
	writeJSON(w, status, res)
}

func (s *Server) timeout(q Request) time.Duration {
	d := s.cfg.DefaultTimeout
	if q.TimeoutMS > 0 {
		d = time.Duration(q.TimeoutMS) * time.Millisecond
	}
	return min(d, s.cfg.MaxTimeout)
}

// process runs one request: resolve the function, canonicalize, try
// the cache, and on miss either lead or join a coalesced computation.
// In LegacySerial mode the caller already holds the admission slot and
// no coalescing happens.
func (s *Server) process(ctx context.Context, q Request) Response {
	start := time.Now()
	elapsed := func() int64 { return time.Since(start).Nanoseconds() }
	fail := func(status int, err error, oc outcome) Response {
		return Response{Error: err.Error(), status: status, outcome: oc, ElapsedNS: elapsed()}
	}
	// failErr maps an in-flight failure to its HTTP status. The
	// request's own expiry wins over whatever error it surfaced as: an
	// engine abort that races the deadline must report 504 (or the
	// 499-style client cancel), never a blanket 500 — and never shadow
	// a real 4xx (bad request, budget) with the expiry status.
	failErr := func(err error) Response {
		status := statusFor(err)
		if status == http.StatusInternalServerError {
			if ce := ctx.Err(); ce != nil {
				status = statusFor(ce)
			}
		}
		return applyShed(fail(status, err, outcomeError), err)
	}

	if q.Base != "" {
		return s.processDelta(ctx, q)
	}
	f, err := resolveFunction(q)
	if err != nil {
		return fail(http.StatusBadRequest, err, outcomeError)
	}
	formName, err := s.normalizeForm(q)
	if err != nil {
		return fail(http.StatusBadRequest, err, outcomeError)
	}
	if formName != "spp" {
		// Non-SPP forms and the auto race route through the portfolio
		// engine; the SPP path below keeps its warm-state machinery.
		return s.processEngine(ctx, q, f, formName, start)
	}
	alg, err := normalizeAlgorithm(q, f.N())
	if err != nil {
		return fail(http.StatusBadRequest, err, outcomeError)
	}

	// Canonicalization honors the request deadline: its class
	// refinement and tie-break costs grow with n and point count. It
	// runs before (and outside) the admission slot — its work is
	// bounded by fcache's tie-break budget, and keeping it off the
	// slot lets cache hits complete without queueing at all.
	key, perm, canon, err := fcache.CanonicalizeCtx(ctx, f)
	if err != nil {
		return failErr(err)
	}
	tag := s.optionTag(q, alg)
	key = key.Derive(tag)
	inv := fcache.InversePerm(perm)
	sameCanon := func(e cacheEntry) bool { return e.canon.Equal(canon) }

	// Warm-enabled exact runs retain one resumable engine state per
	// canonical class plus a thin per-client pointer under the
	// exact-function key, advertised as base_key for delta requests.
	// Permuted-equivalent requests share the canonical state; a client
	// without a pointer yet gets one minted on the spot when the shared
	// state is resident, so equivalent clients can chain deltas without
	// ever computing cold themselves.
	warmRun := s.cfg.WarmCache && alg.name == "exact"
	var warmKey fcache.Key
	if warmRun {
		warmKey = fcache.WarmPointerKey(fcache.KeyOf(f), tag)
	}
	baseKeyIfRetained := func(e cacheEntry) string {
		if !warmRun {
			return ""
		}
		if pe, ok := s.cache.Get(warmKey); ok && pe.hasWarmRef && pe.fn.Equal(f) {
			return warmKey.String()
		}
		skey := fcache.WarmStateKey(fcache.KeyOf(canon), tag)
		if se, ok := s.cache.Get(skey); ok && se.warm != nil && se.warm.Function().Equal(canon) {
			s.cache.Put(warmKey, cacheEntry{
				form:         e.form,
				kind:         e.kind,
				eppp:         e.eppp,
				coverOptimal: e.coverOptimal,
				fn:           f,
				perm:         perm,
				tag:          tag,
				warmRef:      skey,
				hasWarmRef:   true,
			})
			return warmKey.String()
		}
		return ""
	}

	served := func(e cacheEntry, coalesced bool) Response {
		form := e.form.Permute(inv)
		oc := outcomeHit
		if coalesced {
			oc = outcomeCoalesced
		}
		return Response{
			Form:         form.String(),
			Literals:     form.Literals(),
			NumTerms:     form.NumTerms(),
			FormKind:     e.kind,
			EPPP:         e.eppp,
			CoverOptimal: e.coverOptimal,
			Cached:       true,
			Coalesced:    coalesced,
			Key:          key.String(),
			BaseKey:      baseKeyIfRetained(e),
			ElapsedNS:    elapsed(),
			outcome:      oc,
		}
	}
	computed := func(e cacheEntry, rep *stats.Report) Response {
		form := e.form.Permute(inv)
		out := Response{
			Form:         form.String(),
			Literals:     form.Literals(),
			NumTerms:     form.NumTerms(),
			FormKind:     e.kind,
			EPPP:         e.eppp,
			CoverOptimal: e.coverOptimal,
			Key:          key.String(),
			ElapsedNS:    elapsed(),
			outcome:      outcomeComputed,
		}
		if warmRun {
			out.BaseKey = warmKey.String()
		}
		if q.Stats {
			out.Stats = rep
		}
		return out
	}

	// acquireSlot: in the legacy path the handler already holds the
	// (single) slot for the whole request.
	acquireSlot := !s.cfg.LegacySerial

	if q.NoCache {
		// A forced fresh compute neither reads the cache nor joins a
		// flight, and its result is not broadcast; it still populates
		// the cache for later requests.
		e, rep, err := s.compute(ctx, q, alg, key, f, perm, canon, acquireSlot, nil)
		if err != nil {
			return failErr(err)
		}
		return computed(e, rep)
	}

	if e, ok := s.cache.GetIf(key, sameCanon); ok {
		return served(e, false)
	}

	if s.cfg.LegacySerial {
		e, rep, err := s.compute(ctx, q, alg, key, f, perm, canon, false, nil)
		if err != nil {
			return failErr(err)
		}
		return computed(e, rep)
	}

	// Coalesce: one leader computes under its own budget; identical
	// concurrent requests wait slot-free and share the result.
	var leaderRep *stats.Report
	e, oc, err := s.flights.Do(ctx, key, func(waiters func() int64) (cacheEntry, error) {
		e, rep, err := s.compute(ctx, q, alg, key, f, perm, canon, true, waiters)
		leaderRep = rep
		return e, err
	})
	switch oc {
	case fcache.Led:
		if err != nil {
			return failErr(err)
		}
		return computed(e, leaderRep)
	case fcache.Joined:
		if !e.canon.Equal(canon) {
			// Key collision against a concurrent leader's different
			// function: compute this one directly. (The stored-entry
			// collision case is handled by GetIf, which evicts.)
			e, rep, err := s.compute(ctx, q, alg, key, f, perm, canon, true, nil)
			if err != nil {
				return failErr(err)
			}
			return computed(e, rep)
		}
		return served(e, true)
	default: // fcache.Detached: this waiter's own deadline expired
		return fail(statusFor(err), fmt.Errorf("coalesced wait: %w", err), outcomeDetached)
	}
}

// compute runs one minimization — under an admission slot when
// acquireSlot is set — and populates the cache. waiters, when non-nil,
// reports how many coalesced requests were riding on this run at
// completion (recorded as the serve.flight_waiters sched counter).
// With WarmCache on, exact runs go through the warm engine and
// additionally store a resumable warm entry under the exact-function
// key.
func (s *Server) compute(ctx context.Context, q Request, alg algorithm, key fcache.Key, f *bfunc.Func, perm []int, canon *bfunc.Func, acquireSlot bool, waiters func() int64) (cacheEntry, *stats.Report, error) {
	if acquireSlot {
		release, err := s.acquireSlot(ctx)
		if err != nil {
			return cacheEntry{}, nil, err
		}
		defer release()
	}

	rec := stats.New()
	opts := s.coreOptions(ctx, q, rec)
	warmRun := s.cfg.WarmCache && alg.name == "exact"

	var res *core.Result
	var ws *core.WarmState
	var err error
	switch {
	case warmRun:
		res, ws, err = core.MinimizeExactWarm(canon, opts)
	case alg.name == "exact":
		res, err = core.MinimizeExact(canon, opts)
	case alg.name == "naive":
		res, err = core.MinimizeNaive(canon, opts)
	default: // sppk
		res, err = core.Heuristic(canon, alg.k, opts)
	}
	if err != nil {
		return cacheEntry{}, nil, err
	}
	// A deadline that expires inside the covering search yields a valid
	// but truncated form (cover.Exact degrades to its incumbent). Serve
	// nothing rather than cache a deadline-shaped result.
	if err := ctx.Err(); err != nil {
		return cacheEntry{}, nil, err
	}

	rep := s.recordRun(rec, alg.name, waiters)

	form := engine.SPPForm{F: res.Form}
	e := cacheEntry{
		canon:        canon,
		form:         form,
		kind:         "spp",
		eppp:         res.Build.EPPP,
		coverOptimal: res.CoverOptimal,
	}
	s.cache.Put(key, e)
	if warmRun {
		tag := s.optionTag(q, alg)
		skey := fcache.WarmStateKey(fcache.KeyOf(canon), tag)
		s.cache.Put(skey, cacheEntry{
			form:         form,
			kind:         "spp",
			eppp:         res.Build.EPPP,
			coverOptimal: res.CoverOptimal,
			warm:         ws,
			tag:          tag,
		})
		s.cache.Put(fcache.WarmPointerKey(fcache.KeyOf(f), tag), cacheEntry{
			form:         form,
			kind:         "spp",
			eppp:         res.Build.EPPP,
			coverOptimal: res.CoverOptimal,
			fn:           f,
			perm:         perm,
			tag:          tag,
			warmRef:      skey,
			hasWarmRef:   true,
		})
	}
	return e, rep, nil
}

// acquireSlot takes one admission-gate slot, honoring the context while
// queued; the returned release must be called when the compute ends.
//
// A free slot admits immediately and records nothing. A full gate first
// runs the shed check — if the predicted queue wait (recent p99) would
// eat the request's deadline budget, it is rejected now with a
// shedError (429 + Retry-After) instead of queueing toward a certain
// 504 — and then queues, feeding the observed wait (timeouts included,
// as a floor) back into the predictor.
func (s *Server) acquireSlot(ctx context.Context) (func(), error) {
	release := func() { <-s.slots }
	acquired := func() (func(), error) {
		if s.testHookAfterAcquire != nil {
			s.testHookAfterAcquire(ctx)
		}
		if err := ctx.Err(); err != nil {
			release()
			return nil, err
		}
		s.statsMu.Lock()
		s.ctr.admitted++
		if s.ctr.admittedByPriority == nil {
			s.ctr.admittedByPriority = make(map[string]int64)
		}
		s.ctr.admittedByPriority[priorityFrom(ctx)]++
		s.statsMu.Unlock()
		return release, nil
	}
	select {
	case s.slots <- struct{}{}:
		return acquired()
	default:
	}
	if err := s.shedCheck(ctx); err != nil {
		return nil, err
	}
	start := time.Now()
	select {
	case s.slots <- struct{}{}:
		s.waits.observe(time.Now(), time.Since(start))
	case <-ctx.Done():
		s.waits.observe(time.Now(), time.Since(start))
		return nil, fmt.Errorf("queue wait: %w", ctx.Err())
	}
	return acquired()
}

// coreOptions assembles the engine options for one request.
func (s *Server) coreOptions(ctx context.Context, q Request, rec *stats.Recorder) core.Options {
	opts := s.cfg.Core.CoreOptions()
	opts.Ctx = ctx
	opts.Stats = rec
	opts.CoverExact = q.ExactCover
	if q.FactorCost {
		opts.Cost = core.CostFactors
	}
	return opts
}

// recordRun files one engine run's report into the /statsz history
// ring.
func (s *Server) recordRun(rec *stats.Recorder, name string, waiters func() int64) *stats.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runSeq++
	rep := rec.Report(fmt.Sprintf("serve/%d/%s", s.runSeq, name))
	rep.Workers = s.cfg.Core.Workers
	rep.CoverWorkers = s.cfg.Core.CoverWorkers
	if waiters != nil {
		if w := waiters(); w > 0 {
			if rep.Sched == nil {
				rep.Sched = make(map[string]int64)
			}
			rep.Sched["serve.flight_waiters"] = w
		}
	}
	s.history = append(s.history, rep)
	if len(s.history) > s.cfg.HistorySize {
		s.history = s.history[1:]
	}
	return rep
}

// processDelta serves a delta request: resolve the base warm entry,
// validate and translate the edit into the base's canonical space, and
// either serve trivially (ON-set emptied), fall back to a cold run
// (churn above DeltaMaxDirty, with the fallback re-entering process as
// an explicit-minterm request), or resume the warm state — under the
// same admission gate and coalescing machinery as full requests, keyed
// by the edited function's own warm key so identical concurrent deltas
// coalesce.
func (s *Server) processDelta(ctx context.Context, q Request) Response {
	start := time.Now()
	elapsed := func() int64 { return time.Since(start).Nanoseconds() }
	fail := func(status int, code string, err error, oc outcome) Response {
		return Response{Error: err.Error(), Code: code, status: status, outcome: oc, ElapsedNS: elapsed()}
	}
	coldRequired := func(why string) Response {
		s.bumpDelta(&s.ctr.deltaBaseMiss)
		return fail(http.StatusConflict, "cold_run_required",
			fmt.Errorf("delta base unavailable (%s): resubmit the full function", why), outcomeError)
	}

	if q.N != 0 || len(q.On) > 0 || len(q.Dc) > 0 || q.Bench != "" || q.PLA != "" {
		return fail(http.StatusBadRequest, "", errors.New("delta request must not carry a function source"), outcomeError)
	}
	if q.NoCache {
		return fail(http.StatusBadRequest, "", errors.New("no_cache is incompatible with delta requests (the base lives in the cache)"), outcomeError)
	}
	if q.Form != "" && q.Form != "spp" {
		// Only the SPP backend retains resumable warm state; other forms
		// must resubmit the full edited function.
		return fail(http.StatusConflict, "delta_unsupported_form",
			fmt.Errorf("delta requests support form \"spp\", not %q: resubmit the full function", q.Form), outcomeError)
	}
	if q.Algorithm != "" && q.Algorithm != "exact" {
		return fail(http.StatusBadRequest, "", fmt.Errorf("delta requests support algorithm \"exact\", not %q", q.Algorithm), outcomeError)
	}
	alg := algorithm{name: "exact"}
	if !s.cfg.WarmCache {
		return coldRequired("warm cache disabled")
	}
	bkey, err := fcache.ParseKey(q.Base)
	if err != nil {
		return fail(http.StatusBadRequest, "", err, outcomeError)
	}
	// Plain Get, not GetIf: a canonical key passed as base must not
	// evict the (perfectly valid) canonical entry it points at.
	base, ok := s.cache.Get(bkey)
	if !ok || !base.hasWarmRef || base.fn == nil {
		return coldRequired("unknown or evicted base key")
	}
	if tag := s.optionTag(q, alg); tag != base.tag {
		return fail(http.StatusBadRequest, "",
			fmt.Errorf("delta options (%s) differ from the base entry's (%s)", tag, base.tag), outcomeError)
	}
	// The pointer names the shared canonical-space snapshot; both can be
	// evicted independently, and a stale/collided state must never be
	// resumed — the Equal check pins it to this base's canonical
	// function before any edit math trusts it.
	st, ok := s.cache.Get(base.warmRef)
	if !ok || st.warm == nil {
		return coldRequired("warm state evicted")
	}
	canonBase := permuteFunc(base.fn, base.perm)
	if !st.warm.Function().Equal(canonBase) {
		return coldRequired("warm state does not match the base function")
	}
	warm := st.warm

	n := base.fn.N()
	limit := uint64(1) << uint(n)
	mapPts := func(pts []uint64) ([]uint64, error) {
		if len(pts) == 0 {
			return nil, nil
		}
		out := make([]uint64, len(pts))
		for i, p := range pts {
			if p >= limit {
				return nil, fmt.Errorf("delta point %d outside B^%d", p, n)
			}
			out[i] = bitvec.PermutePoint(p, n, base.perm)
		}
		return out, nil
	}
	var cd core.Delta
	var mapErr error
	if cd.AddOn, mapErr = mapPts(q.Add); mapErr == nil {
		if cd.RemoveOn, mapErr = mapPts(q.Remove); mapErr == nil {
			if cd.AddDC, mapErr = mapPts(q.DcAdd); mapErr == nil {
				cd.RemoveDC, mapErr = mapPts(q.DcRemove)
			}
		}
	}
	if mapErr != nil {
		return fail(http.StatusBadRequest, "", mapErr, outcomeError)
	}
	editedCanon, err := warm.Apply(cd)
	if err != nil {
		return fail(http.StatusBadRequest, "", err, outcomeError)
	}

	// An edit that empties the ON-set is the constant-0 function: serve
	// it without entering the engine (and without caching — there is no
	// warm state to retain for it, and nothing to chain a delta on).
	if editedCanon.OnCount() == 0 {
		s.bumpDelta(&s.ctr.deltaTrivial)
		return Response{
			Form:         "0",
			FormKind:     "spp",
			CoverOptimal: true,
			Delta:        "trivial",
			ElapsedNS:    elapsed(),
			outcome:      outcomeComputed,
		}
	}

	// The edited function in the client's (request) variable space: the
	// base entry's perm maps request→canonical, so invert it.
	inv := fcache.InversePerm(base.perm)
	invPts := func(pts []uint64) []uint64 {
		out := make([]uint64, len(pts))
		for i, p := range pts {
			out[i] = bitvec.PermutePoint(p, n, inv)
		}
		return out
	}
	edited := bfunc.NewDC(n, invPts(editedCanon.On()), invPts(editedCanon.DC()))

	churn, err := warm.Churn(cd)
	if err != nil {
		return fail(http.StatusBadRequest, "", err, outcomeError)
	}
	care := len(base.fn.On()) + len(base.fn.DC())
	if care < 1 {
		care = 1
	}
	if float64(churn)/float64(care) > s.cfg.DeltaMaxDirty {
		// Too dirty to patch profitably: rerun cold on the edited
		// function. Warm entries only exist for functions small enough
		// to respell as explicit minterms, which resolveFunction caps
		// at n ≤ 30.
		if n > 30 {
			return coldRequired("edit too large to patch and function too wide to respell")
		}
		s.bumpDelta(&s.ctr.deltaCold)
		resp := s.process(ctx, Request{
			N: n, On: edited.On(), Dc: edited.DC(),
			ExactCover: q.ExactCover, FactorCost: q.FactorCost,
			TimeoutMS: q.TimeoutMS, Stats: q.Stats,
		})
		resp.Delta = "cold"
		resp.ElapsedNS = elapsed()
		return resp
	}

	wkey := fcache.WarmPointerKey(fcache.KeyOf(edited), base.tag)
	skeyEdited := fcache.WarmStateKey(fcache.KeyOf(editedCanon), base.tag)
	validEdited := func(e cacheEntry) bool { return e.hasWarmRef && e.fn != nil && e.fn.Equal(edited) }
	servedDelta := func(e cacheEntry, coalesced bool) Response {
		form := e.form.Permute(fcache.InversePerm(e.perm))
		oc := outcomeHit
		if coalesced {
			oc = outcomeCoalesced
		}
		return Response{
			Form:         form.String(),
			Literals:     form.Literals(),
			NumTerms:     form.NumTerms(),
			FormKind:     e.kind,
			EPPP:         e.eppp,
			CoverOptimal: e.coverOptimal,
			Cached:       true,
			Coalesced:    coalesced,
			BaseKey:      wkey.String(),
			Delta:        "warm",
			ElapsedNS:    elapsed(),
			outcome:      oc,
		}
	}
	computedDelta := func(e cacheEntry, rep *stats.Report) Response {
		form := e.form.Permute(fcache.InversePerm(e.perm))
		out := Response{
			Form:         form.String(),
			Literals:     form.Literals(),
			NumTerms:     form.NumTerms(),
			FormKind:     e.kind,
			EPPP:         e.eppp,
			CoverOptimal: e.coverOptimal,
			BaseKey:      wkey.String(),
			Delta:        "warm",
			ElapsedNS:    elapsed(),
			outcome:      outcomeComputed,
		}
		if q.Stats {
			out.Stats = rep
		}
		return out
	}
	failErr := func(err error) Response {
		status := statusFor(err)
		if status == http.StatusInternalServerError {
			if ce := ctx.Err(); ce != nil {
				status = statusFor(ce)
			}
		}
		return applyShed(fail(status, "", err, outcomeError), err)
	}

	if e, ok := s.cache.GetIf(wkey, validEdited); ok {
		return servedDelta(e, false)
	}
	// No pointer for this client's edited function, but a
	// permuted-equivalent client (or an equivalent chain) may have left
	// the shared canonical snapshot of the same edit: mint a thin
	// pointer at this client's key and serve without resuming.
	if se, ok := s.cache.Get(skeyEdited); ok && se.warm != nil && se.warm.Function().Equal(editedCanon) {
		e := cacheEntry{
			form:         se.form,
			kind:         se.kind,
			eppp:         se.eppp,
			coverOptimal: se.coverOptimal,
			fn:           edited,
			perm:         base.perm,
			tag:          base.tag,
			warmRef:      skeyEdited,
			hasWarmRef:   true,
		}
		s.cache.Put(wkey, e)
		return servedDelta(e, false)
	}

	if s.cfg.LegacySerial {
		e, rep, err := s.computeDelta(ctx, q, base, warm, cd, edited, editedCanon, wkey, false, nil)
		if err != nil {
			return failErr(err)
		}
		s.bumpDelta(&s.ctr.deltaWarm)
		return computedDelta(e, rep)
	}

	var leaderRep *stats.Report
	e, oc, err := s.flights.Do(ctx, wkey, func(waiters func() int64) (cacheEntry, error) {
		e, rep, err := s.computeDelta(ctx, q, base, warm, cd, edited, editedCanon, wkey, true, waiters)
		leaderRep = rep
		return e, err
	})
	switch oc {
	case fcache.Led:
		if err != nil {
			return failErr(err)
		}
		s.bumpDelta(&s.ctr.deltaWarm)
		return computedDelta(e, leaderRep)
	case fcache.Joined:
		if !validEdited(e) {
			// Warm-key collision against a different in-flight function:
			// resume directly for this request.
			e, rep, err := s.computeDelta(ctx, q, base, warm, cd, edited, editedCanon, wkey, true, nil)
			if err != nil {
				return failErr(err)
			}
			s.bumpDelta(&s.ctr.deltaWarm)
			return computedDelta(e, rep)
		}
		return servedDelta(e, true)
	default: // fcache.Detached
		return fail(statusFor(err), "", fmt.Errorf("coalesced wait: %w", err), outcomeDetached)
	}
}

// computeDelta resumes the base warm state under the translated delta —
// holding an admission slot like any engine run — and stores the
// resumed state at the edited function's canonical warm-state key plus
// a thin pointer entry at wkey for this client to chain on.
func (s *Server) computeDelta(ctx context.Context, q Request, base cacheEntry, warm *core.WarmState, cd core.Delta, edited, editedCanon *bfunc.Func, wkey fcache.Key, acquireSlot bool, waiters func() int64) (cacheEntry, *stats.Report, error) {
	if acquireSlot {
		release, err := s.acquireSlot(ctx)
		if err != nil {
			return cacheEntry{}, nil, err
		}
		defer release()
	}

	rec := stats.New()
	res, nws, err := core.ResumeExact(warm, cd, s.coreOptions(ctx, q, rec))
	if err != nil {
		return cacheEntry{}, nil, err
	}
	if err := ctx.Err(); err != nil {
		return cacheEntry{}, nil, err
	}

	rep := s.recordRun(rec, "delta", waiters)
	s.statsMu.Lock()
	if res.CoverReused {
		s.ctr.deltaCoverReused++
	} else {
		s.ctr.deltaCoverResolve++
	}
	s.statsMu.Unlock()

	skey := fcache.WarmStateKey(fcache.KeyOf(editedCanon), base.tag)
	form := engine.SPPForm{F: res.Form}
	s.cache.Put(skey, cacheEntry{
		form:         form,
		kind:         "spp",
		eppp:         res.Build.EPPP,
		coverOptimal: res.CoverOptimal,
		warm:         nws,
		tag:          base.tag,
	})
	e := cacheEntry{
		form:         form,
		kind:         "spp",
		eppp:         res.Build.EPPP,
		coverOptimal: res.CoverOptimal,
		fn:           edited,
		perm:         base.perm,
		tag:          base.tag,
		warmRef:      skey,
		hasWarmRef:   true,
	}
	s.cache.Put(wkey, e)
	return e, rep, nil
}

type algorithm struct {
	name string
	k    int
}

func normalizeAlgorithm(q Request, n int) (algorithm, error) {
	switch q.Algorithm {
	case "", "exact":
		return algorithm{name: "exact"}, nil
	case "naive":
		return algorithm{name: "naive"}, nil
	case "sppk", "spp_k":
		if q.K < 0 || q.K > n-1 {
			return algorithm{}, fmt.Errorf("k=%d outside [0, %d]", q.K, n-1)
		}
		return algorithm{name: "sppk", k: q.K}, nil
	default:
		return algorithm{}, fmt.Errorf("unknown algorithm %q", q.Algorithm)
	}
}

// optionTag spells out every option that can change a successful
// result, so different options occupy different cache slots. Budgets
// that abort with an error rather than truncate (PerOutput,
// MaxCandidates) still matter: a function minimized under a larger
// budget is not the same cache entry as one that fit a smaller one
// only because both succeeded. Timeouts and worker counts are absent —
// results are worker-count-independent, and a request that survives
// its deadline is complete.
func (s *Server) optionTag(q Request, alg algorithm) string {
	return fmt.Sprintf("alg=%s;k=%d;xc=%t;fc=%t;cand=%d;nodes=%d",
		alg.name, alg.k, q.ExactCover, q.FactorCost,
		s.cfg.Core.MaxCandidates, s.cfg.Core.CoverMaxNodes)
}

func resolveFunction(q Request) (*bfunc.Func, error) {
	sources := 0
	if len(q.On) > 0 || q.N > 0 {
		sources++
	}
	if q.Bench != "" {
		sources++
	}
	if q.PLA != "" {
		sources++
	}
	if sources != 1 {
		return nil, errors.New("exactly one of (n,on), bench, pla must be set")
	}
	switch {
	case q.Bench != "":
		m, err := bench.Load(q.Bench)
		if err != nil {
			return nil, err
		}
		return pickOutput(m, q.Output)
	case q.PLA != "":
		m, err := bfunc.ParsePLA(strings.NewReader(q.PLA), "request")
		if err != nil {
			return nil, err
		}
		return pickOutput(m, q.Output)
	default:
		if q.N < 1 || q.N > bitvec.MaxVars {
			return nil, fmt.Errorf("n=%d outside [1, %d]", q.N, bitvec.MaxVars)
		}
		if q.N > 30 {
			return nil, fmt.Errorf("n=%d too large for explicit minterms (max 30)", q.N)
		}
		limit := uint64(1) << uint(q.N)
		for _, p := range append(append([]uint64{}, q.On...), q.Dc...) {
			if p >= limit {
				return nil, fmt.Errorf("point %d outside B^%d", p, q.N)
			}
		}
		if len(q.On) == 0 {
			return nil, errors.New("empty ON-set")
		}
		return bfunc.NewDC(q.N, q.On, q.Dc), nil
	}
}

func pickOutput(m *bfunc.Multi, idx int) (*bfunc.Func, error) {
	if idx < 0 || idx >= m.NOutputs() {
		return nil, fmt.Errorf("output %d outside [0, %d)", idx, m.NOutputs())
	}
	return m.Output(idx), nil
}

// permuteFunc maps a request-space function into canonical space under
// perm (perm[i] is the canonical variable for request variable i).
func permuteFunc(f *bfunc.Func, perm []int) *bfunc.Func {
	n := f.N()
	mapAll := func(pts []uint64) []uint64 {
		out := make([]uint64, len(pts))
		for i, p := range pts {
			out[i] = bitvec.PermutePoint(p, n, perm)
		}
		return out
	}
	return bfunc.NewDC(n, mapAll(f.On()), mapAll(f.DC()))
}

func statusFor(err error) int {
	var se *shedError
	switch {
	case errors.As(err, &se):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, core.ErrBudget):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
